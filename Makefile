GO ?= go

.PHONY: build test race vet serve bench smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# serve builds sidrd and runs it against DATA (default: ./datasets).
DATA ?= ./datasets
serve:
	$(GO) run ./cmd/sidrd -data $(DATA)

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# smoke runs the multi-process cluster smoke test (sidrd + 2 workers).
smoke:
	scripts/cluster_smoke.sh

clean:
	$(GO) clean ./...
