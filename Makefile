GO ?= go

.PHONY: build test race vet serve bench bench-prune bench-shuffle bench-serve bench-join bench-churn fuzz smoke smoke-serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# serve builds sidrd and runs it against DATA (default: ./datasets).
DATA ?= ./datasets
serve:
	$(GO) run ./cmd/sidrd -data $(DATA)

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-prune times the structural-index pruning experiment and emits
# the cross-PR perf snapshot.
BENCH_OUT ?= BENCH_PR6.json
bench-prune:
	$(GO) run ./cmd/sidrbench -json $(BENCH_OUT)

# bench-shuffle runs the batched-vs-per-spill shuffle head-to-head on
# real loopback workers and emits the cross-PR perf snapshot.
SHUFFLE_OUT ?= BENCH_PR7.json
bench-shuffle:
	$(GO) run ./cmd/sidrbench -json $(SHUFFLE_OUT)

# bench-serve drives the serving tier with >=1000 concurrent streaming
# clients (zipf mix + identical-query burst) and emits the cross-PR perf
# snapshot with cold/cached/collapsed latency percentiles.
SERVE_OUT ?= BENCH_PR8.json
SERVE_CLIENTS ?= 1000
bench-serve:
	$(GO) run ./cmd/sidrbench -serveclients $(SERVE_CLIENTS) -json $(SERVE_OUT)

# bench-join runs the structural-join skew experiment (zipf-skewed side
# B, re-tiling on vs off) and emits the cross-PR perf snapshot with
# reduce wall-clock and keyblock skew statistics. JOIN_SCALE scales the
# input extents (CI uses a reduced scale).
JOIN_OUT ?= BENCH_PR9.json
JOIN_SCALE ?= 1.0
bench-join:
	$(GO) run ./cmd/sidrbench -exp join -joinscale $(JOIN_SCALE) -json $(JOIN_OUT)

# bench-churn runs the elastic-membership churn experiment (post-Map
# worker death: replica re-fetch vs split re-execution, plus the
# dispatch locality ratio) and emits the cross-PR perf snapshot.
CHURN_OUT ?= BENCH_PR10.json
bench-churn:
	$(GO) run ./cmd/sidrbench -json $(CHURN_OUT)

# fuzz exercises the untrusted-bytes decoders briefly (CI runs the same
# targets; crashers land in testdata/fuzz).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadSpill$$ -fuzztime=$(FUZZTIME) ./internal/kv/
	$(GO) test -run=^$$ -fuzz=FuzzReadSpillV3 -fuzztime=$(FUZZTIME) ./internal/kv/
	$(GO) test -run=^$$ -fuzz=FuzzReadIndex -fuzztime=$(FUZZTIME) ./internal/sidx/
	$(GO) test -run=^$$ -fuzz=FuzzIndexCRC -fuzztime=$(FUZZTIME) ./internal/sidx/
	$(GO) test -run=^$$ -fuzz=FuzzParseJoin -fuzztime=$(FUZZTIME) ./internal/query/

# smoke runs the multi-process cluster smoke test (sidrd + 2 workers).
smoke:
	scripts/cluster_smoke.sh

# smoke-serve checks the serving tier end to end over real HTTP: repeat
# query is a recorded byte-identical cache hit, gzip decodes to identity
# bytes, tenant quota breaches 429.
smoke-serve:
	scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
