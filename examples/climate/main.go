// Climate: early, correct, partial results with keyblock prioritisation
// (computational steering, §3.4). A SIDR query over a temperature
// dataset delivers each region of the output as soon as its data
// dependencies are met — with the scientist's region of interest
// scheduled first — and the run is contrasted against the global-barrier
// engines, which deliver nothing until every Map task has finished.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"sidr"
)

func temperature(k []int64) float64 {
	day, lat, lon := float64(k[0]), float64(k[1]), float64(k[2])
	return 15 - 12*math.Cos(2*math.Pi*day/365) - 0.04*lat + 0.01*lon
}

func main() {
	ds, err := sidr.Synthetic([]int64{364, 60, 40}, temperature)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// Monthly (28-day) averages over 10°×10° regions.
	q, err := sidr.ParseQuery("avg temperature[0,0,0 : 364,60,40] es {28,10,10}")
	if err != nil {
		log.Fatal(err)
	}

	// The scientist cares about the END of the year first: prioritise
	// the last keyblock.
	const reducers = 4
	priority := []int{3, 2, 1, 0}

	var mu sync.Mutex
	start := time.Now()
	fmt.Println("SIDR run with keyblock priority {3, 2, 1, 0}:")
	res, err := sidr.Run(ds, q, sidr.RunOptions{
		Engine:   sidr.SIDR,
		Reducers: reducers,
		Priority: priority,
		Workers:  1, // serialise so the priority effect is visible
		OnPartial: func(pr sidr.PartialResult) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Printf("  +%8v keyblock %d ready: %d keys (first key %v)\n",
				time.Since(start).Round(time.Microsecond), pr.Keyblock, len(pr.Keys), pr.Keys[0])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total %v, first region after %v\n\n", res.Elapsed.Round(time.Microsecond), res.FirstResult.Round(time.Microsecond))

	for _, engine := range []sidr.Engine{sidr.SciHadoop, sidr.SIDR} {
		r, err := sidr.Run(ds, q, sidr.RunOptions{Engine: engine, Reducers: reducers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v first result at %5.1f%% of total runtime (%d connections)\n",
			engine, 100*float64(r.FirstResult)/float64(r.Elapsed), r.Connections)
	}
}
