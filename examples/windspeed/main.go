// Windspeed: the paper's Query 1 (§4.1) at laptop scale — a median over
// a 4-dimensional windspeed dataset — run under all three engines plus a
// paper-scale discrete-event simulation of the same query, reproducing
// the Figure 9 comparison end to end.
package main

import (
	"fmt"
	"log"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/datagen"
	"sidr/internal/experiments"
)

func main() {
	// Laptop-scale analogue of Query 1: same rank, same extraction-shape
	// structure, reduced extents ({7200,360,720,50} -> {48,36,36,10}).
	gen := datagen.Windspeed(1)
	ds, err := sidr.Synthetic([]int64{48, 36, 36, 10}, func(k []int64) float64 {
		return gen(coords.Coord(k))
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	q, err := sidr.ParseQuery("median windspeed[0,0,0,0 : 48,36,36,10] es {2,36,36,10}")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Query 1 at laptop scale (real execution):")
	var reference *sidr.Result
	for _, engine := range []sidr.Engine{sidr.Hadoop, sidr.SciHadoop, sidr.SIDR} {
		res, err := sidr.Run(ds, q, sidr.RunOptions{Engine: engine, Reducers: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %4d medians, first result at %5.1f%% of runtime, %5d connections\n",
			engine, len(res.Keys), 100*float64(res.FirstResult)/float64(res.Elapsed), res.Connections)
		if reference == nil {
			reference = res
		} else {
			for i := range res.Keys {
				if res.Values[i][0] != reference.Values[i][0] {
					log.Fatalf("%v disagrees with Hadoop at key %v", engine, res.Keys[i])
				}
			}
		}
	}
	fmt.Println("  all engines produced identical medians")

	fmt.Println("\nQuery 1 at paper scale (simulated 24-node testbed, Figure 9):")
	cfg := experiments.TestbedConfig(1)
	for _, engine := range []core.Engine{core.EngineHadoop, core.EngineSciHadoop, core.EngineSIDR} {
		p, err := experiments.PaperPlan(experiments.Query1(), engine, 22)
		if err != nil {
			log.Fatal(err)
		}
		w, err := experiments.PaperWorkload(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Simulate(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v first result %7.1fs, total %7.1fs\n",
			engine, res.Stats.FirstResult, res.Stats.Makespan)
	}
}
