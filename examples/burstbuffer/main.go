// Burstbuffer: the paper's second prioritisation scenario (§3.4) — in-situ
// processing on burst-buffer staging nodes where "compute resources are
// not guaranteed and data may be evicted at any point". The scientist has
// a window of opportunity before eviction; SIDR's keyblock prioritisation
// processes the regions they care about first, so an eviction mid-query
// still yields the salient results.
//
// The demo runs the same query twice with an eviction deadline: once with
// default keyblock order and once prioritising the region of interest,
// then reports which regions were complete when the buffer was "evicted".
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"sidr"
)

// simulation: daily sensor data staged on the burst buffer.
func sensor(k []int64) float64 {
	t, x := float64(k[0]), float64(k[1])
	return math.Sin(t/40) * (1 + x/50)
}

func main() {
	ds, err := sidr.Synthetic([]int64{512, 32}, sensor)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// 8 output regions (keyblocks) of 64 time steps each.
	q, err := sidr.ParseQuery("avg sensor[0,0 : 512,32] es {8,32}")
	if err != nil {
		log.Fatal(err)
	}
	const reducers = 8

	// The region of interest is the LAST eighth of the time range
	// (keyblock 7) — under default order it would be processed last.
	interest := 7

	run := func(priority []int, evictAfter int) (completed []int) {
		var mu sync.Mutex
		n := 0
		_, err := sidr.Run(ds, q, sidr.RunOptions{
			Engine:   sidr.SIDR,
			Reducers: reducers,
			Priority: priority,
			Workers:  1, // staging nodes are resource-constrained
			OnPartial: func(pr sidr.PartialResult) {
				mu.Lock()
				defer mu.Unlock()
				// Regions committed before the eviction point count as
				// saved; later ones are lost with the buffer.
				if n < evictAfter {
					completed = append(completed, pr.Keyblock)
				}
				n++
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return completed
	}

	// The buffer is evicted after only 3 of 8 regions finish.
	const window = 3

	fmt.Println("burst buffer evicted after 3 of 8 regions complete")
	saved := run(nil, window)
	fmt.Printf("  default order: saved regions %v — region %d lost\n", saved, interest)

	priority := []int{7, 6, 5, 4, 3, 2, 1, 0}
	saved = run(priority, window)
	fmt.Printf("  prioritised:   saved regions %v — region %d captured before eviction\n", saved, interest)

	got := false
	for _, r := range saved {
		if r == interest {
			got = true
		}
	}
	if !got {
		log.Fatal("prioritisation failed to save the region of interest")
	}
}
