// Pipelined: the paper's §6 vision of feeding SIDR's early, orderable,
// correct results into pipe-lined computations. A two-stage analysis —
// daily→weekly averages, then weekly→monthly ranges — runs with the
// stages overlapped: each downstream Map task starts as soon as the
// upstream keyblocks covering its input have committed, instead of
// waiting for stage 1 to finish.
package main

import (
	"fmt"
	"log"

	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/mapreduce"
	"sidr/internal/pipeline"
	"sidr/internal/query"
)

func main() {
	mustQ := func(s string) *query.Query {
		q, err := query.Parse(s)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}

	// Stage 1: {364, 40} daily temperatures -> {52, 8} weekly averages
	// over 5-latitude bands. Stage 2: -> {13, 8} four-week temperature
	// ranges (a simple variability index).
	stages := []pipeline.Stage{
		{Query: mustQ("avg temp[0,0 : 364,40] es {7,5}"), Reducers: 4},
		{Query: mustQ("range weekly[0,0 : 52,8] es {4,1}"), Reducers: 2},
	}

	events := make(chan string, 256)
	res, err := pipeline.RunWithOptions(
		&mapreduce.FuncReader{Fn: datagen.Temperature(11)},
		stages,
		pipeline.Options{
			OnEvent: func(stage int, e mapreduce.Event) {
				if e.Kind == mapreduce.ReduceEnd {
					events <- fmt.Sprintf("stage %d keyblock %d committed", stage+1, e.Detail)
				}
			},
		},
	)
	close(events)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("commit order (interleaving = overlapped stages):")
	for line := range events {
		fmt.Println("  " + line)
	}
	fmt.Printf("\n%d downstream map tasks started before stage 1 finished\n", res.OverlappedStarts)

	out := res.Final.Outputs
	var keys []coords.Coord
	var vals []float64
	for _, o := range out {
		for i := range o.Keys {
			keys = append(keys, o.Keys[i])
			vals = append(vals, o.Values[i][0])
		}
	}
	fmt.Printf("final output: %d four-week variability indices; e.g. period %v -> %.2f °C swing\n",
		len(keys), keys[0], vals[0])
}
