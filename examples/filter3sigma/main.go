// Filter3sigma: the paper's Query 2 (§4.1) at laptop scale — return all
// values more than three standard deviations above the mean of a
// normally distributed dataset (~0.1% of the data) — demonstrating
// filter queries, early partial anomaly reports, and dense output files.
package main

import (
	"fmt"
	"log"
	"os"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/datagen"
)

func main() {
	const mean, std = 20.0, 5.0
	gen := datagen.Gaussian(7, mean, std)
	ds, err := sidr.Synthetic([]int64{200, 40, 40, 10}, func(k []int64) float64 {
		return gen(coords.Coord(k))
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// filter_gt with param mean+3σ; extraction shape {2,40,40,10} as in
	// the paper.
	q, err := sidr.ParseQuery(fmt.Sprintf(
		"filter_gt gauss[0,0,0,0 : 200,40,40,10] es {2,40,40,10} param %g", mean+3*std))
	if err != nil {
		log.Fatal(err)
	}

	anomalies := 0
	res, err := sidr.Run(ds, q, sidr.RunOptions{
		Engine:   sidr.SIDR,
		Reducers: 4,
		OnPartial: func(pr sidr.PartialResult) {
			n := 0
			for _, vals := range pr.Values {
				n += len(vals)
			}
			fmt.Printf("  region %d reported %d anomalies early\n", pr.Keyblock, n)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	var total, points int
	for i := range res.Keys {
		total += len(res.Values[i])
		points++
	}
	anomalies = total
	fmt.Printf("dataset: %d values, anomalies above %g: %d (%.3f%%)\n",
		200*40*40*10, mean+3*std, anomalies, 100*float64(anomalies)/float64(200*40*40*10))

	// Write the per-region anomaly counts as dense contiguous output.
	dir, err := os.MkdirTemp("", "sidr-filter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	counts := &sidr.Result{Partials: res.Partials, Keys: res.Keys}
	for _, pr := range counts.Partials {
		for i := range pr.Values {
			pr.Values[i] = []float64{float64(len(pr.Values[i]))}
		}
	}
	paths, err := sidr.WriteDense(dir, ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: 4}, counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d dense anomaly-count files (contiguous keyblocks with origins)\n", len(paths))
}
