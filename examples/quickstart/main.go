// Quickstart: the paper's running example — down-sampling a year of
// daily temperature measurements to weekly averages at reduced latitude
// resolution (Figures 1, 2 and 8) — via the public API.
package main

import (
	"fmt"
	"log"
	"math"

	"sidr"
)

func main() {
	// The Figure 1 dataset: temperature(time, lat, lon) = {365, 50, 40} —
	// a year of daily measurements over a 25°×20° region at 1/2°
	// resolution (the Figure 1 grid scaled for a quick run). We synthesise it with a seasonal/latitudinal model.
	ds, err := sidr.Synthetic([]int64{365, 50, 40}, func(k []int64) float64 {
		day, lat := float64(k[0]), float64(k[1])
		return 15 - 12*math.Cos(2*math.Pi*day/365) - 0.05*lat
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// Weekly averages, down-sampling latitude 5×: extraction shape
	// {7, 5, 1}, discarding the partial 53rd week
	// (the paper "throws away the data from the 365-th day").
	q, err := sidr.ParseQuery("avg temperature[0,0,0 : 364,50,40] es {7,5,1}")
	if err != nil {
		log.Fatal(err)
	}
	space, err := q.OutputSpace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("intermediate keyspace K'^T: %v\n", space)

	res, err := sidr.Run(ds, q, sidr.RunOptions{
		Engine:   sidr.SIDR,
		Reducers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("produced %d output keys in %v (first keyblock after %v, %d shuffle connections)\n",
		len(res.Keys), res.Elapsed.Round(0), res.FirstResult.Round(0), res.Connections)
	fmt.Printf("week 0 @ 25.0°N: %6.2f °C\n", res.Values[0][0])
	last := len(res.Keys) - 1
	fmt.Printf("week %d @ %v: %6.2f °C\n", res.Keys[last][0], res.Keys[last][1:], res.Values[last][0])
}
