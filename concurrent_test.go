package sidr

import (
	"fmt"
	"sync"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/datagen"
)

// TestConcurrentRunsSharedDataset guards the reader/registry sharing the
// daemon depends on: N simultaneous Run calls against one shared
// *Dataset (run under -race in CI) must each produce the same result as
// a serial run.
func TestConcurrentRunsSharedDataset(t *testing.T) {
	path := t.TempDir() + "/shared.ncf"
	if err := datagen.WriteDataset(path, "temp", coords.NewShape(48, 24), datagen.Temperature(1)); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path, "temp")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	q, err := ParseQuery("avg temp[0,0 : 48,24] es {6,6}")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Engine: SIDR, Reducers: 4}
	serial, err := Run(ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(ds, q, opts)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if len(results[i].Keys) != len(serial.Keys) {
			t.Fatalf("run %d: %d rows, serial %d", i, len(results[i].Keys), len(serial.Keys))
		}
		for r := range serial.Keys {
			if fmt.Sprint(results[i].Keys[r]) != fmt.Sprint(serial.Keys[r]) ||
				fmt.Sprint(results[i].Values[r]) != fmt.Sprint(serial.Values[r]) {
				t.Fatalf("run %d row %d: got %v=%v, want %v=%v", i, r,
					results[i].Keys[r], results[i].Values[r], serial.Keys[r], serial.Values[r])
			}
		}
	}
}

// TestConcurrentRunsSharedSynthetic covers the FuncReader path the same
// way: one synthetic dataset, many engines in flight.
func TestConcurrentRunsSharedSynthetic(t *testing.T) {
	ds, err := Synthetic([]int64{40, 20}, func(k []int64) float64 { return float64(3*k[0] + k[1]) })
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("max v[0,0 : 40,20] es {5,5}")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Engine: SIDR, Reducers: 4}
	serial, err := Run(ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(ds, q, opts)
			if err != nil {
				t.Error(err)
				return
			}
			if fmt.Sprint(res.Keys) != fmt.Sprint(serial.Keys) || fmt.Sprint(res.Values) != fmt.Sprint(serial.Values) {
				t.Error("concurrent synthetic run diverged from serial result")
			}
		}()
	}
	wg.Wait()
}
