// Package sidr is the public API of this repository: a from-scratch Go
// implementation of SIDR — Structure-Aware Intelligent Data Routing
// (Buck et al., SC '13) — together with the MapReduce runtime, scientific
// file format, and cluster substrates it builds on.
//
// SIDR exploits the structure of scientific array data to make MapReduce
// communication deterministic for structural queries: it computes, before
// execution, which input splits feed which Reduce tasks, and uses that to
// remove the global Map→Reduce barrier, produce early correct results,
// eliminate intermediate key skew, and write dense contiguous output.
//
// A minimal session:
//
//	ds, _ := sidr.Synthetic([]int64{364, 250, 200}, myTemperatureFn)
//	q, _ := sidr.ParseQuery("avg temp[0,0,0 : 364,250,200] es {7,5,1}")
//	res, _ := sidr.Run(ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: 4})
//
// The facade accepts plain []int64 coordinates; the internal packages
// (coords, mapreduce, partition, depgraph, sched, simcluster, ...) expose
// the full machinery for advanced use within this module.
package sidr

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/exec"
	"sidr/internal/join"
	"sidr/internal/mapreduce"
	"sidr/internal/ncfile"
	"sidr/internal/query"
	"sidr/internal/sidx"
)

// VarIndex is a structural block-range index over one dataset variable:
// per-block min/max/count summaries that let the planner prune input
// splits a value-predicated query provably cannot match. Build one with
// Dataset.BuildIndex and pass it via RunOptions.Index. See internal/sidx.
type VarIndex = sidx.VarIndex

// Executor is a bounded shared worker pool that many concurrent runs can
// be scheduled onto; see RunOptions.Exec. Create with NewExecutor and
// Close it when no more runs will use it.
type Executor = exec.Executor

// NewExecutor starts a shared pool of the given size (minimum 1).
func NewExecutor(workers int) *Executor { return exec.New(workers) }

// Engine selects execution semantics: stock Hadoop, SciHadoop, or SIDR.
type Engine = core.Engine

// Engine values, named as in the paper's figures.
const (
	Hadoop    = core.EngineHadoop
	SciHadoop = core.EngineSciHadoop
	SIDR      = core.EngineSIDR
)

// Dataset is a queryable n-dimensional array: either an ncfile container
// on disk or a synthetic dataset defined by a pure function of the
// coordinate.
type Dataset struct {
	shape    coords.Shape
	variable string
	file     *ncfile.File
	fn       func(coords.Coord) float64
}

// Open opens the named variable of an ncfile container.
func Open(path, variable string) (*Dataset, error) {
	f, err := ncfile.Open(path)
	if err != nil {
		return nil, err
	}
	shape, err := f.Header().VarShape(variable)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Dataset{shape: shape, variable: variable, file: f}, nil
}

// Synthetic wraps a pure coordinate function as a dataset of the given
// shape; nothing is materialised.
func Synthetic(shape []int64, fn func(k []int64) float64) (*Dataset, error) {
	s := coords.NewShape(shape...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, fmt.Errorf("sidr: nil dataset function")
	}
	return &Dataset{
		shape: s,
		fn:    func(k coords.Coord) float64 { return fn(k) },
	}, nil
}

// Shape returns the dataset's extents.
func (d *Dataset) Shape() []int64 {
	return append([]int64(nil), d.shape...)
}

// Close releases the underlying file, if any.
func (d *Dataset) Close() error {
	if d.file != nil {
		return d.file.Close()
	}
	return nil
}

// reader returns the dataset's record reader.
func (d *Dataset) reader() mapreduce.RecordReader {
	if d.file != nil {
		return &mapreduce.FileReader{File: d.file, Var: d.variable}
	}
	return &mapreduce.FuncReader{Fn: d.fn}
}

// BuildIndex scans the dataset once and builds a structural block-range
// index over it, splitting the leading dimension into the given number
// of blocks (0 means the sidx default). The index is conservative:
// plans that consult it (RunOptions.Index) return byte-identical
// results to unindexed plans, only faster on selective predicates.
func (d *Dataset) BuildIndex(blocks int) (*VarIndex, error) {
	variable := d.variable
	if variable == "" {
		variable = "*" // synthetic datasets answer any variable name
	}
	return sidx.BuildVar(variable, d.shape, d.reader(), sidx.BuildOptions{Blocks: blocks})
}

// Query is a validated structural query.
type Query struct {
	q *query.Query
}

// ParseQuery parses the query language, e.g.
//
//	median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}
//	filter_gt temp[0,0 : 100,100] es {2,2} param 30
//
// See the internal/query package for the full syntax (stride,
// keep-partial).
func ParseQuery(s string) (*Query, error) {
	q, err := query.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// String renders the query in its canonical text form.
func (q *Query) String() string { return q.q.String() }

// Variable returns the dataset variable the query reads.
func (q *Query) Variable() string { return q.q.Variable }

// IsJoin reports whether this is a two-input structural join query.
func (q *Query) IsJoin() bool { return q.q.Join }

// Variable2 returns the join's side-B variable (empty for single-input
// queries).
func (q *Query) Variable2() string { return q.q.Variable2 }

// PartialResult is one keyblock's committed output, delivered as soon as
// its data dependencies are met (SIDR's early correct results).
type PartialResult struct {
	// Keyblock identifies the Reduce task.
	Keyblock int
	// Keys are intermediate-space (K') coordinates in row-major order.
	Keys [][]int64
	// Values holds the operator outputs per key (one value for
	// aggregates, zero or more for filters).
	Values [][]float64
	// At is the wall-clock commit time.
	At time.Time
}

// Result is a completed query.
type Result struct {
	// Keys and Values list every output key (sorted row-major) with its
	// values.
	Keys   [][]int64
	Values [][]float64
	// Partials are the per-keyblock outputs in commit order.
	Partials []PartialResult
	// FirstResult is the latency until the first keyblock committed.
	FirstResult time.Duration
	// Elapsed is the total query latency.
	Elapsed time.Duration
	// Connections counts shuffle fetches performed.
	Connections int64
	// TasksDispatched counts the Map and Reduce tasks the executor
	// dispatched for this run.
	TasksDispatched int64
	// KeyblockLoads is the plan's per-keyblock expected intermediate
	// load: sampled estimates for join plans, geometric expected counts
	// otherwise. Skew statistics (internal/skew) derive from it.
	KeyblockLoads []int64
}

// RunOptions tunes execution.
type RunOptions struct {
	// Engine selects semantics; the zero value is Hadoop.
	Engine Engine
	// Reducers is the Reduce task count (default 4).
	Reducers int
	// SplitPoints is the target input-split granularity in points
	// (default: the whole input split into ~8 pieces).
	SplitPoints int64
	// MaxSkew bounds partition+ keyblock skew in K' keys (SIDR only).
	MaxSkew int64
	// Priority orders keyblock scheduling for computational steering
	// (SIDR only).
	Priority []int
	// Index, when set, lets the planner prune input splits that a
	// value-predicated query (filter_gt, filter_lt, filter_range)
	// provably cannot match, before the dependency graph is derived.
	// Results are identical to running without the index. Build one
	// with Dataset.BuildIndex.
	Index *VarIndex
	// Workers bounds the run's task concurrency. Without an injected
	// executor it sizes the run's private worker pool (default
	// runtime.GOMAXPROCS(0), so the engine scales with the machine);
	// with Exec set it caps how many of the run's tasks execute
	// concurrently on the shared pool (0 = bounded only by the pool).
	Workers int
	// Exec, when set, runs the query's Map and Reduce tasks on a shared
	// bounded executor instead of a private per-run pool, so many
	// concurrent runs stay within one process-wide worker budget. The
	// executor must outlive the call.
	Exec *exec.Executor
	// Weight is the run's weighted-fair share of the shared executor:
	// when several runs have runnable tasks, a weight-w run dispatches up
	// to w consecutive tasks per scheduling turn (default 1; only
	// meaningful with Exec). The daemon maps per-tenant weights onto it.
	Weight int
	// OnPartial receives each keyblock's output as soon as it commits.
	// Callbacks may arrive concurrently.
	OnPartial func(PartialResult)
	// NoJoinRetile disables skew-adaptive keyblock re-tiling for join
	// queries, keeping the base partition+ layout (the naive baseline;
	// join queries only).
	NoJoinRetile bool
}

// Prepared is a derived execution plan bound to a dataset shape. Plans
// are pure functions of (dataset shape, query, engine, reducers, split
// granularity, skew bound) — SIDR's routing is computable before
// execution (§3) — so a Prepared can be cached and reused across
// requests and across datasets of the same shape. It is safe for
// concurrent Run calls.
type Prepared struct {
	q     *Query
	shape coords.Shape
	opts  RunOptions // plan-time options, normalised
	plan  *core.Plan
}

// Prepare derives the execution plan for the query against any dataset
// of the given shape. Plan-time options (Engine, Reducers, SplitPoints,
// MaxSkew, Priority) are fixed here; execution-time options (Workers,
// OnPartial) are taken per Run call.
func Prepare(shape []int64, q *Query, opts RunOptions) (*Prepared, error) {
	if q == nil {
		return nil, fmt.Errorf("sidr: nil query")
	}
	s := coords.NewShape(shape...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := q.q.Validate(s); err != nil {
		return nil, err
	}
	if opts.Reducers <= 0 {
		opts.Reducers = 4
	}
	if opts.SplitPoints <= 0 {
		opts.SplitPoints = q.q.Input.Size()/8 + 1
	}
	plan, err := core.NewPlan(q.q, opts.Engine, core.Options{
		Reducers:    opts.Reducers,
		SplitPoints: opts.SplitPoints,
		MaxSkew:     opts.MaxSkew,
		Priority:    opts.Priority,
		Index:       opts.Index,
	})
	if err != nil {
		return nil, err
	}
	return &Prepared{q: q, shape: s, opts: opts, plan: plan}, nil
}

// Query returns the prepared query.
func (p *Prepared) Query() *Query { return p.q }

// SplitCount returns how many input splits the plan will dispatch Map
// tasks for (after any index pruning).
func (p *Prepared) SplitCount() int { return len(p.plan.Splits) }

// PrunedSplits returns how many input splits the structural index
// proved irrelevant and removed from the plan (0 when no index was
// supplied or nothing could be pruned).
func (p *Prepared) PrunedSplits() int { return p.plan.PrunedSplits }

// Run executes the prepared plan over a dataset of the prepared shape.
// Only the execution-time fields of opts (Workers, Weight, Exec, OnPartial) are used;
// ctx cancellation aborts the run promptly, returning ctx.Err().
func (p *Prepared) Run(ctx context.Context, ds *Dataset, opts RunOptions) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("sidr: nil dataset")
	}
	if !coords.Shape(ds.shape).Equal(p.shape) {
		return nil, fmt.Errorf("sidr: dataset shape %v does not match prepared shape %v", ds.shape, p.shape)
	}
	res := &Result{}
	start := time.Now()
	mrRes, err := p.plan.RunLocal(ds.reader(), func(cfg *mapreduce.Config) {
		cfg.Ctx = ctx
		cfg.Workers = opts.Workers
		cfg.Exec = opts.Exec
		cfg.Weight = opts.Weight
		cfg.OnReduceOutput = func(out mapreduce.ReduceOutput) {
			pr := toPartial(out)
			if opts.OnPartial != nil {
				opts.OnPartial(pr)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.Connections = mrRes.Counters.Connections
	res.TasksDispatched = mrRes.Counters.TasksDispatched
	res.KeyblockLoads = append([]int64(nil), p.plan.Graph.ExpectedCount...)

	// Rebuild partials in commit order from the event stream and attach
	// outputs, then flatten into the sorted global result.
	firstSet := false
	for _, e := range mrRes.Events {
		if e.Kind != mapreduce.ReduceEnd {
			continue
		}
		pr := toPartial(mrRes.Outputs[e.Detail])
		pr.At = e.At
		res.Partials = append(res.Partials, pr)
		if !firstSet {
			res.FirstResult = e.At.Sub(mrRes.Started)
			firstSet = true
		}
	}
	type row struct {
		key  coords.Coord
		vals []float64
	}
	var rows []row
	for _, out := range mrRes.Outputs {
		for i, k := range out.Keys {
			rows = append(rows, row{key: k, vals: out.Values[i]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key.Less(rows[j].key) })
	for _, r := range rows {
		res.Keys = append(res.Keys, append([]int64(nil), r.key...))
		res.Values = append(res.Values, r.vals)
	}
	return res, nil
}

// Run executes the query over the dataset.
func Run(ds *Dataset, q *Query, opts RunOptions) (*Result, error) {
	return RunContext(context.Background(), ds, q, opts)
}

// RunContext is Run with cancellation: when ctx is done the Map and
// Reduce loops and barrier waits abort promptly and ctx.Err() is
// returned.
func RunContext(ctx context.Context, ds *Dataset, q *Query, opts RunOptions) (*Result, error) {
	if ds == nil || q == nil {
		return nil, fmt.Errorf("sidr: nil dataset or query")
	}
	p, err := Prepare(ds.Shape(), q, opts)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx, ds, opts)
}

// RunJoin executes a two-input structural join query (parsed from the
// `join <op> A[...] es {..} with B[...] es {..}` grammar) over the two
// datasets. See RunJoinContext.
func RunJoin(a, b *Dataset, q *Query, opts RunOptions) (*Result, error) {
	return RunJoinContext(context.Background(), a, b, q, opts)
}

// JoinSplitPoints returns the default split granularity for a join
// query: the larger side split into ~8 pieces. The daemon's cluster
// path uses the same rule so both engines derive identical split sets.
func JoinSplitPoints(q *Query) int64 {
	n := q.q.Input.Size()
	if s := q.q.Input2.Size(); s > n {
		n = s
	}
	return n/8 + 1
}

// RunJoinContext plans and executes a join: both sides' per-keyblock
// expected load is sampled at plan time, hot keyblocks are re-tiled
// (unless opts.NoJoinRetile), and the job runs on the in-process engine
// with the chosen engine's barrier and shuffle semantics. Partials carry
// raw per-keyblock reduce output — for a heavy tile carved into shares
// these are 4-wide moment rows, folded into final values during result
// assembly — while Keys/Values always hold the assembled final rows.
func RunJoinContext(ctx context.Context, a, b *Dataset, q *Query, opts RunOptions) (*Result, error) {
	if a == nil || b == nil || q == nil {
		return nil, fmt.Errorf("sidr: nil dataset or query")
	}
	if !q.q.Join {
		return nil, fmt.Errorf("sidr: RunJoin needs a join query")
	}
	if err := q.q.Validate(a.shape); err != nil {
		return nil, err
	}
	if err := q.q.ValidateSecond(b.shape); err != nil {
		return nil, err
	}
	if opts.Reducers <= 0 {
		opts.Reducers = 4
	}
	if opts.SplitPoints <= 0 {
		opts.SplitPoints = JoinSplitPoints(q)
	}
	plan, err := core.NewPlan(q.q, opts.Engine, core.Options{
		Reducers:     opts.Reducers,
		SplitPoints:  opts.SplitPoints,
		MaxSkew:      opts.MaxSkew,
		Priority:     opts.Priority,
		JoinSamplerA: a.reader(),
		JoinSamplerB: b.reader(),
		NoJoinRetile: opts.NoJoinRetile,
	})
	if err != nil {
		return nil, err
	}
	return finishJoin(ctx, plan, a, b, opts)
}

// finishJoin runs a derived join plan and assembles the final result.
func finishJoin(ctx context.Context, plan *core.Plan, a, b *Dataset, opts RunOptions) (*Result, error) {
	res := &Result{}
	start := time.Now()
	mrRes, err := plan.RunLocalJoin(a.reader(), b.reader(), func(cfg *mapreduce.Config) {
		cfg.Ctx = ctx
		cfg.Workers = opts.Workers
		cfg.Exec = opts.Exec
		cfg.Weight = opts.Weight
		if opts.OnPartial != nil {
			cfg.OnReduceOutput = func(out mapreduce.ReduceOutput) {
				opts.OnPartial(toPartial(out))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.Connections = mrRes.Counters.Connections
	res.TasksDispatched = mrRes.Counters.TasksDispatched
	res.KeyblockLoads = append([]int64(nil), plan.Join.EstLoads...)

	firstSet := false
	for _, e := range mrRes.Events {
		if e.Kind != mapreduce.ReduceEnd {
			continue
		}
		pr := toPartial(mrRes.Outputs[e.Detail])
		pr.At = e.At
		res.Partials = append(res.Partials, pr)
		if !firstSet {
			res.FirstResult = e.At.Sub(mrRes.Started)
			firstSet = true
		}
	}
	var rows []join.Row
	for _, out := range mrRes.Outputs {
		for i, k := range out.Keys {
			rows = append(rows, join.Row{KB: out.Keyblock, Key: k, Values: out.Values[i]})
		}
	}
	assembled, err := join.Assemble(plan.Join, rows)
	if err != nil {
		return nil, err
	}
	for _, r := range assembled {
		res.Keys = append(res.Keys, append([]int64(nil), r.Key...))
		res.Values = append(res.Values, r.Values)
	}
	return res, nil
}

func toPartial(out mapreduce.ReduceOutput) PartialResult {
	pr := PartialResult{Keyblock: out.Keyblock, At: time.Now()}
	for i, k := range out.Keys {
		pr.Keys = append(pr.Keys, append([]int64(nil), k...))
		pr.Values = append(pr.Values, out.Values[i])
	}
	return pr
}

// OutputSpace returns the shape of the query's intermediate/output
// keyspace K'^T.
func (q *Query) OutputSpace() ([]int64, error) {
	s, err := q.q.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	return append([]int64(nil), s.Shape...), nil
}

// WriteDense writes a result as one dense ncfile per keyblock under dir,
// each with its global origin recorded — the contiguous output layout
// partition+ enables (§4.4). It requires a SIDR run whose keyblocks are
// rectangular and returns the file paths.
func WriteDense(dir string, ds *Dataset, q *Query, opts RunOptions, res *Result) ([]string, error) {
	if opts.Engine != SIDR {
		return nil, fmt.Errorf("sidr: dense output requires the SIDR engine")
	}
	if opts.Reducers <= 0 {
		opts.Reducers = 4
	}
	plan, err := core.NewPlan(q.q, SIDR, core.Options{
		Reducers:    opts.Reducers,
		SplitPoints: q.q.Input.Size()/8 + 1,
		MaxSkew:     opts.MaxSkew,
	})
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, pr := range res.Partials {
		slab, ok := plan.KeyblockSlab(pr.Keyblock)
		if !ok {
			if len(pr.Keys) == 0 {
				continue // empty keyblock
			}
			return nil, fmt.Errorf("sidr: keyblock %d is not rectangular", pr.Keyblock)
		}
		vals := make([]float64, slab.Size())
		for i, k := range pr.Keys {
			off, err := slab.Linearize(coords.NewCoord(k...))
			if err != nil {
				return nil, err
			}
			if len(pr.Values[i]) > 0 {
				vals[off] = pr.Values[i][0]
			}
		}
		path := fmt.Sprintf("%s/keyblock-%04d.ncf", dir, pr.Keyblock)
		if _, err := ncfile.WriteDense(path, "out", slab, vals); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
