package sidr

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation (§4), plus ablation benchmarks for the design
// choices called out in DESIGN.md. Figure benchmarks drive the
// paper-scale discrete-event simulation; Table 2 and the §4.5 micro
// benchmark do real work (file IO, partitioning). Run with:
//
//	go test -bench=. -benchmem
//
// and see cmd/sidrbench for the human-readable rows each experiment
// regenerates.

import (
	"fmt"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/datagen"
	"sidr/internal/experiments"
	"sidr/internal/mapreduce"
	"sidr/internal/ncfile"
	"sidr/internal/partition"
	"sidr/internal/sched"
)

// BenchmarkFigure9 regenerates Figure 9: Query 1 under Hadoop, SciHadoop
// and SIDR at 22 Reduce tasks on the simulated 24-node testbed.
func BenchmarkFigure9(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, cr := range rs {
				b.Log(cr.Format())
			}
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: the SIDR reduce-count sweep.
func BenchmarkFigure10(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, cr := range rs {
				b.Log(cr.Format())
			}
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: the Query 2 filter sweep.
func BenchmarkFigure11(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, cr := range rs {
				b.Log(cr.Format())
			}
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12: completion-time variance at 22
// vs 88 Reduce tasks over 4 seeded runs.
func BenchmarkFigure12(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure12(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Log(r.Format())
			}
		}
	}
}

// BenchmarkFigure13 regenerates Figure 13: the intermediate-key-skew
// pathology, stock modulo vs partition+.
func BenchmarkFigure13(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Figure13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gain := (rs[0].Makespan - rs[1].Makespan) / rs[0].Makespan * 100
			b.Logf("%s | %s | SIDR %.0f%% faster", rs[0].Format(), rs[1].Format(), gain)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 with real file IO: per-Reduce
// output write cost under the sentinel strategy as the total output
// scales, against SIDR's constant dense write.
func BenchmarkTable2(b *testing.B) {
	for _, reduces := range []int{20, 40, 80} {
		b.Run(fmt.Sprintf("sentinel-%d", reduces), func(b *testing.B) {
			cfg := experiments.Table2Config{
				Dir:           b.TempDir(),
				PointsPerTask: 1 << 14,
				ReduceCounts:  []int{reduces},
				Runs:          1,
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table2(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("dense", func(b *testing.B) {
		dir := b.TempDir()
		kb := coords.MustSlab(coords.NewCoord(0), coords.NewShape(1<<14))
		vals := make([]float64, kb.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			path := fmt.Sprintf("%s/d-%d.ncf", dir, i)
			if _, err := ncfile.WriteDense(path, "out", kb, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairs", func(b *testing.B) {
		dir := b.TempDir()
		n := 1 << 14
		keys := make([]coords.Coord, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = coords.NewCoord(int64(i) * 20)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			path := fmt.Sprintf("%s/p-%d.ncfp", dir, i)
			if _, err := ncfile.WritePairs(path, 1, keys, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3 regenerates Table 3: shuffle-connection scaling
// computed from real paper-scale dependency graphs.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Log(r.Format())
			}
		}
	}
}

// BenchmarkPartitionDefault measures Hadoop's modulo partitioner on the
// §4.5 workload shape (per-pair cost; the paper partitioned 6.48M pairs
// in ~200 ms).
func BenchmarkPartitionDefault(b *testing.B) {
	benchPartition(b, false)
}

// BenchmarkPartitionPlus measures partition+ on the same workload (the
// paper saw 223 ms for 6.48M pairs — a negligible ~10% penalty).
func BenchmarkPartitionPlus(b *testing.B) {
	benchPartition(b, true)
}

func benchPartition(b *testing.B, plus bool) {
	space := coords.Slab{Corner: coords.NewCoord(0, 0), Shape: coords.NewShape(6480, 1000)}
	var p partition.Partitioner
	var err error
	if plus {
		p, err = partition.NewPartitionPlus(space, 22, 0)
	} else {
		p, err = partition.NewModulo(22, partition.TileIndexEncoding{Space: space})
	}
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]coords.Coord, 10000)
	for i := range keys {
		kp, err := space.Delinearize(int64(i) * 647)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = kp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunLocal measures real end-to-end query execution through the
// in-process engine for each engine mode (laptop-scale Query 1
// analogue).
func BenchmarkRunLocal(b *testing.B) {
	gen := datagen.Windspeed(1)
	ds, err := Synthetic([]int64{24, 36, 36, 10}, func(k []int64) float64 {
		return gen(coords.Coord(k))
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	q, err := ParseQuery("median windspeed[0,0,0,0 : 24,36,36,10] es {2,36,36,10}")
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []Engine{Hadoop, SciHadoop, SIDR} {
		b.Run(engine.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(ds, q, RunOptions{Engine: engine, Reducers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationDependencyStoreVsRecompute compares precomputing I_ℓ
// at plan time (store) against each Reduce task re-deriving its source
// range on demand (re-compute) — the paper's §3.2.1 trade-off.
func BenchmarkAblationDependencyStoreVsRecompute(b *testing.B) {
	q := experiments.Query1()
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := experiments.PaperPlan(q, core.EngineSIDR, 22)
			if err != nil {
				b.Fatal(err)
			}
			_ = p.Graph.SIDRConnections()
		}
	})
	b.Run("recompute", func(b *testing.B) {
		p, err := experiments.PaperPlan(q, core.EngineSIDR, 22)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Each of the 22 Reduce tasks derives its input range from
			// its keyblock alone.
			for l := 0; l < 22; l++ {
				slab, ok := p.KeyblockSlab(l)
				if !ok {
					b.Fatal("keyblock not rectangular")
				}
				if _, err := q.Extraction.SourceRange(slab); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationBarrierMethod compares the two correctness barriers of
// §3.2.1 on real executions: method 1 (I_ℓ dependency sets only) vs
// method 2 validation on top (kv-count annotations).
func BenchmarkAblationBarrierMethod(b *testing.B) {
	gen := datagen.Windspeed(3)
	q, err := ParseQuery("avg w[0,0 : 256,16] es {4,4}")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := Synthetic([]int64{256, 16}, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, validate bool) {
		plan, err := core.NewPlan(q.q, core.EngineSIDR, core.Options{Reducers: 4, SplitPoints: 256})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_, err := plan.RunLocal(ds.reader(), func(cfg *mapreduce.Config) {
				cfg.ValidateCounts = validate
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("deps-only", func(b *testing.B) { run(b, false) })
	b.Run("deps+annotations", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCombiner compares Map-side combining on and off for a
// filter query (uncombined runs ship one pair per source sample).
func BenchmarkAblationCombiner(b *testing.B) {
	gen := datagen.Gaussian(5, 0, 1)
	q, err := ParseQuery("filter_gt g[0,0 : 128,16] es {4,4} param 2")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := Synthetic([]int64{128, 16}, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, combine bool) {
		plan, err := core.NewPlan(q.q, core.EngineSIDR, core.Options{Reducers: 4, SplitPoints: 128})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_, err := plan.RunLocal(ds.reader(), func(cfg *mapreduce.Config) {
				cfg.Combine = combine
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("combine", func(b *testing.B) { run(b, true) })
	b.Run("no-combine", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationFailureRecovery compares the two Reduce-failure
// recovery strategies (§6 future work): refetching persisted
// intermediate data vs re-executing the failed task's Map dependencies.
func BenchmarkAblationFailureRecovery(b *testing.B) {
	gen := datagen.Windspeed(9)
	q, err := ParseQuery("median w[0,0 : 128,16] es {4,4}")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := Synthetic([]int64{128, 16}, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, recompute bool) {
		for i := 0; i < b.N; i++ {
			plan, err := core.NewPlan(q.q, core.EngineSIDR, core.Options{Reducers: 4, SplitPoints: 128})
			if err != nil {
				b.Fatal(err)
			}
			_, err = plan.RunLocal(ds.reader(), func(cfg *mapreduce.Config) {
				cfg.FailReduceOnce = map[int]bool{1: true}
				cfg.RecoverByRecompute = recompute
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("refetch", func(b *testing.B) { run(b, false) })
	b.Run("recompute", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationSkewBound sweeps partition+'s permissible-skew bound
// (the Figure 7 tile size): finer tiles balance keyblocks more exactly
// but fragment them, which widens dependency sets and shuffle fan-in —
// the paper's footnote 1 trade-off ("accepting a small amount of skew
// ... can result in more efficient communications and reduced data
// dependencies").
func BenchmarkAblationSkewBound(b *testing.B) {
	q := experiments.Query1()
	space, err := q.IntermediateSpace()
	if err != nil {
		b.Fatal(err)
	}
	for _, bound := range []int64{1000, 10_000, 65_536, 500_000} {
		b.Run(fmt.Sprintf("maxskew-%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pp, err := partition.NewPartitionPlus(space, 22, bound)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("tile=%v tileCountSkew=%d", pp.TileShape, pp.TileCountSkew())
				}
			}
		})
	}
}

// BenchmarkAblationSpill compares in-memory intermediate data against
// on-disk spill files with annotated headers (Hadoop's real shuffle
// path): the cost of serialising, persisting and re-reading every
// intermediate pair.
func BenchmarkAblationSpill(b *testing.B) {
	gen := datagen.Windspeed(4)
	q, err := ParseQuery("median w[0,0 : 128,16] es {4,4}")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := Synthetic([]int64{128, 16}, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, spillDir string) {
		plan, err := core.NewPlan(q.q, core.EngineSIDR, core.Options{Reducers: 4, SplitPoints: 128})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_, err := plan.RunLocal(ds.reader(), func(cfg *mapreduce.Config) {
				cfg.SpillDir = spillDir
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, "") })
	b.Run("spill-to-disk", func(b *testing.B) { run(b, b.TempDir()) })
}

// BenchmarkFailureStudy runs the §6 recovery study: persist-and-refetch
// vs no-persist-and-recompute across failure probabilities at paper
// scale.
func BenchmarkFailureStudy(b *testing.B) {
	cfg := experiments.TestbedConfig(1)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FailureStudy(cfg, 176, []float64{0, 0.05, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Log(r.Format())
			}
		}
	}
}

// BenchmarkAblationSpeculation measures Hadoop-style speculative
// execution against an injected straggler population at paper scale —
// the long-tail mitigation that interacts with Figure 12's variance.
func BenchmarkAblationSpeculation(b *testing.B) {
	q := experiments.Query1()
	p, err := experiments.PaperPlan(q, core.EngineSIDR, 88)
	if err != nil {
		b.Fatal(err)
	}
	w, err := experiments.PaperWorkload(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []bool{false, true} {
		name := "no-speculation"
		if spec {
			name = "speculation"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.TestbedConfig(1)
			cfg.StragglerProb = 0.02
			cfg.StragglerFactor = 6
			cfg.Speculation = spec
			for i := 0; i < b.N; i++ {
				res, err := p.Simulate(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("makespan=%.1fs stragglers=%d specWins=%d",
						res.Stats.Makespan, res.Stats.Stragglers, res.Stats.SpeculativeWins)
				}
			}
		})
	}
}

// BenchmarkAblationSchedulerPolicy compares the pure scheduling state
// machines: stock Hadoop dispensing vs SIDR's gated, reduce-first policy
// at paper-scale task counts.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	q := experiments.Query1()
	p, err := experiments.PaperPlan(q, core.EngineSIDR, 528)
	if err != nil {
		b.Fatal(err)
	}
	maps := make([]sched.MapInfo, len(p.Splits))
	hosts := make([]string, 24)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("node%02d", i)
	}
	for i := range maps {
		maps[i] = sched.MapInfo{Hosts: []string{hosts[i%24]}}
	}
	b.Run("hadoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sched.NewHadoop(maps, 528)
			drainScheduler(b, s, hosts)
		}
	})
	b.Run("sidr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sched.NewSIDR(maps, p.Graph, nil)
			if err != nil {
				b.Fatal(err)
			}
			drainScheduler(b, s, hosts)
		}
	})
}

func drainScheduler(b *testing.B, s sched.Scheduler, hosts []string) {
	b.Helper()
	for s.PendingReduces() > 0 {
		if s.NextReduce() < 0 {
			b.Fatal("reduce starvation")
		}
		// Interleave map dispensing the way slot churn does.
		for j := 0; j < 5; j++ {
			s.NextMap(hosts[j%len(hosts)])
		}
	}
	for s.PendingMaps() > 0 {
		if s.NextMap(hosts[0]) < 0 {
			b.Fatal("map starvation")
		}
	}
}
