module sidr

go 1.22
