package sidr

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/ncfile"
)

func synthTemp(k []int64) float64 {
	return datagen.Temperature(1)(coords.Coord(k))
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic([]int64{0}, synthTemp); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := Synthetic([]int64{4}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	ds, err := Synthetic([]int64{4, 5}, synthTemp)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	sh := ds.Shape()
	if len(sh) != 2 || sh[0] != 4 || sh[1] != 5 {
		t.Fatalf("Shape = %v", sh)
	}
	sh[0] = 99
	if ds.Shape()[0] != 4 {
		t.Fatal("Shape aliases internal state")
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := ParseQuery("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	q, err := ParseQuery("avg t[0,0 : 28,10] es {7,5}")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() == "" {
		t.Fatal("empty String")
	}
	space, err := q.OutputSpace()
	if err != nil {
		t.Fatal(err)
	}
	if space[0] != 4 || space[1] != 2 {
		t.Fatalf("OutputSpace = %v", space)
	}
}

func TestRunValidation(t *testing.T) {
	ds, _ := Synthetic([]int64{28, 10}, synthTemp)
	q, _ := ParseQuery("avg t[0,0 : 28,10] es {7,5}")
	if _, err := Run(nil, q, RunOptions{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Run(ds, nil, RunOptions{}); err == nil {
		t.Fatal("nil query accepted")
	}
	// Query exceeding the dataset's shape.
	big, _ := ParseQuery("avg t[0,0 : 100,10] es {7,5}")
	if _, err := Run(ds, big, RunOptions{}); err == nil {
		t.Fatal("oversized query accepted")
	}
}

func TestRunAllEnginesAgree(t *testing.T) {
	ds, err := Synthetic([]int64{56, 10}, synthTemp)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("avg t[0,0 : 56,10] es {7,5}")
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for _, e := range []Engine{Hadoop, SciHadoop, SIDR} {
		res, err := Run(ds, q, RunOptions{Engine: e, Reducers: 3})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if len(res.Keys) != 16 { // 8 weeks × 2 lat bands
			t.Fatalf("%v: %d keys", e, len(res.Keys))
		}
		if first == nil {
			first = res
			continue
		}
		for i := range res.Keys {
			if res.Values[i][0] != first.Values[i][0] {
				t.Fatalf("%v disagrees at key %v", e, res.Keys[i])
			}
		}
	}
}

func TestRunMatchesDirectComputation(t *testing.T) {
	ds, _ := Synthetic([]int64{14, 5}, synthTemp)
	q, _ := ParseQuery("avg t[0,0 : 14,5] es {7,5}")
	res, err := Run(ds, q, RunOptions{Engine: SIDR, Reducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 2 {
		t.Fatalf("%d keys", len(res.Keys))
	}
	// Direct computation of week 0's average.
	var sum float64
	for d := int64(0); d < 7; d++ {
		for l := int64(0); l < 5; l++ {
			sum += synthTemp([]int64{d, l})
		}
	}
	want := sum / 35
	if math.Abs(res.Values[0][0]-want) > 1e-9 {
		t.Fatalf("week 0 avg = %v, want %v", res.Values[0][0], want)
	}
}

func TestRunKeysSortedRowMajor(t *testing.T) {
	ds, _ := Synthetic([]int64{16, 16}, synthTemp)
	q, _ := ParseQuery("max t[0,0 : 16,16] es {4,4}")
	res, err := Run(ds, q, RunOptions{Engine: SIDR, Reducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Keys); i++ {
		if !coords.Coord(res.Keys[i-1]).Less(coords.Coord(res.Keys[i])) {
			t.Fatalf("keys not sorted at %d: %v >= %v", i, res.Keys[i-1], res.Keys[i])
		}
	}
}

func TestEarlyPartialsDelivered(t *testing.T) {
	ds, _ := Synthetic([]int64{64, 8}, synthTemp)
	q, _ := ParseQuery("avg t[0,0 : 64,8] es {4,4}")
	var mu sync.Mutex
	var callbacks []int
	res, err := Run(ds, q, RunOptions{
		Engine:   SIDR,
		Reducers: 4,
		OnPartial: func(pr PartialResult) {
			mu.Lock()
			callbacks = append(callbacks, pr.Keyblock)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(callbacks) != 4 {
		t.Fatalf("%d partial callbacks", len(callbacks))
	}
	if len(res.Partials) != 4 {
		t.Fatalf("%d partials", len(res.Partials))
	}
	if res.FirstResult <= 0 || res.FirstResult > res.Elapsed {
		t.Fatalf("FirstResult = %v of %v", res.FirstResult, res.Elapsed)
	}
	// Partials must be in commit order.
	for i := 1; i < len(res.Partials); i++ {
		if res.Partials[i].At.Before(res.Partials[i-1].At) {
			t.Fatal("partials not in commit order")
		}
	}
	total := 0
	for _, pr := range res.Partials {
		total += len(pr.Keys)
	}
	if total != len(res.Keys) {
		t.Fatalf("partials cover %d keys of %d", total, len(res.Keys))
	}
}

func TestPriorityControlsFirstPartial(t *testing.T) {
	ds, _ := Synthetic([]int64{64, 8}, synthTemp)
	q, _ := ParseQuery("avg t[0,0 : 64,8] es {4,4}")
	res, err := Run(ds, q, RunOptions{
		Engine:   SIDR,
		Reducers: 4,
		Priority: []int{2, 3, 0, 1},
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partials[0].Keyblock != 2 {
		t.Fatalf("first partial = keyblock %d, want prioritised 2", res.Partials[0].Keyblock)
	}
}

func TestOpenFileDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ncf")
	if err := datagen.WriteDataset(path, "temp", coords.NewShape(28, 10), datagen.Temperature(1)); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path, "temp")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := Open(path, "nope"); err == nil {
		t.Fatal("missing variable accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing.ncf"), "temp"); err == nil {
		t.Fatal("missing file accepted")
	}
	q, _ := ParseQuery("avg temp[0,0 : 28,10] es {7,5}")
	res, err := Run(ds, q, RunOptions{Engine: SIDR, Reducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the synthetic path.
	sds, _ := Synthetic([]int64{28, 10}, synthTemp)
	sres, err := Run(sds, q, RunOptions{Engine: SIDR, Reducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Keys {
		if res.Values[i][0] != sres.Values[i][0] {
			t.Fatalf("file/synthetic disagree at %v", res.Keys[i])
		}
	}
}

func TestWriteDenseOutputs(t *testing.T) {
	ds, _ := Synthetic([]int64{64, 8}, synthTemp)
	q, _ := ParseQuery("avg t[0,0 : 64,8] es {4,4}")
	opts := RunOptions{Engine: SIDR, Reducers: 4}
	res, err := Run(ds, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WriteDense(dir, ds, q, opts, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("%d files", len(paths))
	}
	// Reassemble: every output key must be recoverable from some file's
	// origin + local coordinate.
	got := map[string]float64{}
	for _, p := range paths {
		f, err := ncfile.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Header().Var("out")
		if err != nil {
			t.Fatal(err)
		}
		vals, err := f.ReadAll("out")
		if err != nil {
			t.Fatal(err)
		}
		shape, _ := f.Header().VarShape("out")
		slab := coords.Slab{Corner: coords.NewCoord(v.Origin...), Shape: shape}
		i := 0
		slab.Each(func(k coords.Coord) bool {
			got[k.String()] = vals[i]
			i++
			return true
		})
		f.Close()
		os.Remove(p)
	}
	for i, k := range res.Keys {
		kc := coords.NewCoord(k...)
		if got[kc.String()] != res.Values[i][0] {
			t.Fatalf("dense files disagree at %v", k)
		}
	}
	if _, err := WriteDense(dir, ds, q, RunOptions{Engine: Hadoop}, res); err == nil {
		t.Fatal("non-SIDR dense write accepted")
	}
}

func TestFilterQueryThroughFacade(t *testing.T) {
	ds, _ := Synthetic([]int64{40, 10}, datagenGaussian)
	q, _ := ParseQuery("filter_gt g[0,0 : 40,10] es {4,5} param 2.5")
	res, err := Run(ds, q, RunOptions{Engine: SIDR, Reducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every returned value must satisfy the predicate; keys with no
	// survivors are omitted from the result entirely.
	matched := 0
	for i := range res.Keys {
		for _, v := range res.Values[i] {
			if v <= 2.5 {
				t.Fatalf("filter returned %v <= 2.5", v)
			}
			matched++
		}
	}
	// Cross-check survivor count directly.
	want := 0
	for a := int64(0); a < 40; a++ {
		for b := int64(0); b < 10; b++ {
			if datagenGaussian([]int64{a, b}) > 2.5 {
				want++
			}
		}
	}
	if matched != want {
		t.Fatalf("found %d survivors, want %d", matched, want)
	}
}

func datagenGaussian(k []int64) float64 {
	return datagen.Gaussian(3, 0, 1)(coords.Coord(k))
}
