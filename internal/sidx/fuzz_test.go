package sidx

import (
	"bytes"
	"errors"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/mapreduce"
)

// FuzzReadIndex drives the codec with arbitrary bytes. Read must never
// panic, and any index it accepts must re-encode to a decode fixed
// point: encode(decode(encode(ix))) == encode(ix) byte for byte. The
// comparison is between encodings, not structs, so NaN min/max values
// (which compare unequal to themselves) cannot produce false alarms.
func FuzzReadIndex(f *testing.F) {
	vi, err := BuildVar("temp", coords.NewShape(48, 4),
		&mapreduce.FuncReader{Fn: func(k coords.Coord) float64 { return float64(k[0]*10 + k[1]) }},
		BuildOptions{Blocks: 6})
	if err != nil {
		f.Fatalf("BuildVar: %v", err)
	}
	var good bytes.Buffer
	if err := Write(&good, &Index{Vars: []*VarIndex{vi}}); err != nil {
		f.Fatalf("Write: %v", err)
	}
	f.Add(good.Bytes())
	var empty bytes.Buffer
	if err := Write(&empty, &Index{}); err != nil {
		f.Fatalf("Write empty: %v", err)
	}
	f.Add(empty.Bytes())

	truncated := good.Bytes()[:good.Len()-5]
	f.Add(append([]byte(nil), truncated...))
	corrupt := append([]byte(nil), good.Bytes()...)
	corrupt[indexHeaderLen+1] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte("SIDX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var first bytes.Buffer
		if err := Write(&first, ix); err != nil {
			t.Fatalf("re-encoding accepted index: %v", err)
		}
		back, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var second bytes.Buffer
		if err := Write(&second, back); err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode∘decode is not a fixed point")
		}
	})
}

// FuzzReadIndex above covers arbitrary corruption; this regression
// pins the specific guarantee pruning relies on — a bit flip anywhere
// in a valid payload is rejected with ErrChecksum, never silently
// decoded into wrong statistics.
func FuzzIndexCRC(f *testing.F) {
	vi, err := BuildVar("t", coords.NewShape(16, 2),
		&mapreduce.FuncReader{Fn: func(k coords.Coord) float64 { return float64(k[0]) }},
		BuildOptions{Blocks: 4})
	if err != nil {
		f.Fatalf("BuildVar: %v", err)
	}
	var good bytes.Buffer
	if err := Write(&good, &Index{Vars: []*VarIndex{vi}}); err != nil {
		f.Fatalf("Write: %v", err)
	}
	payloadLen := good.Len() - indexHeaderLen
	f.Add(0, uint8(1))
	f.Add(payloadLen-1, uint8(0x80))
	f.Fuzz(func(t *testing.T, off int, mask uint8) {
		if off < 0 || off >= payloadLen || mask == 0 {
			return
		}
		mutated := append([]byte(nil), good.Bytes()...)
		mutated[indexHeaderLen+off] ^= mask
		if _, err := Read(bytes.NewReader(mutated)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("payload flip at %d (mask %02x): got %v, want ErrChecksum", off, mask, err)
		}
	})
}
