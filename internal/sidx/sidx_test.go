package sidx

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/mapreduce"
)

// rowValue indexes a dataset whose every element equals its dim-0 row,
// so block stats are predictable exactly.
func rowValue(k coords.Coord) float64 { return float64(k[0]) }

func buildRowIndex(t *testing.T, shape coords.Shape, blocks int) *VarIndex {
	t.Helper()
	vi, err := BuildVar("t", shape, &mapreduce.FuncReader{Fn: rowValue}, BuildOptions{Blocks: blocks})
	if err != nil {
		t.Fatalf("BuildVar: %v", err)
	}
	return vi
}

func TestBuildVarStats(t *testing.T) {
	shape := coords.NewShape(100, 4)
	vi := buildRowIndex(t, shape, 0) // default 64 blocks

	if len(vi.Blocks) != 64 {
		t.Fatalf("got %d blocks, want 64", len(vi.Blocks))
	}
	var row, count int64
	for i, b := range vi.Blocks {
		if b.Row0 != row {
			t.Fatalf("block %d starts at row %d, want %d", i, b.Row0, row)
		}
		if b.Rows <= 0 {
			t.Fatalf("block %d has %d rows", i, b.Rows)
		}
		if b.Count != b.Rows*4 {
			t.Fatalf("block %d count %d, want %d", i, b.Count, b.Rows*4)
		}
		// Every element equals its row, so the band's min/max are its
		// first and last rows.
		if b.Min != float64(b.Row0) || b.Max != float64(b.Row0+b.Rows-1) {
			t.Fatalf("block %d range [%g, %g], want [%d, %d]", i, b.Min, b.Max, b.Row0, b.Row0+b.Rows-1)
		}
		row += b.Rows
		count += b.Count
	}
	if row != 100 {
		t.Fatalf("blocks cover %d rows, want 100", row)
	}
	if count != shape.Size() {
		t.Fatalf("blocks count %d elements, want %d", count, shape.Size())
	}
}

func TestBuildVarFewerRowsThanBlocks(t *testing.T) {
	vi := buildRowIndex(t, coords.NewShape(5, 2), 64)
	if len(vi.Blocks) != 5 {
		t.Fatalf("got %d blocks for 5 rows, want 5", len(vi.Blocks))
	}
}

func TestBuildVarReadError(t *testing.T) {
	bad := readerFunc(func(slab coords.Slab, emit func(coords.Coord, float64) error) error {
		return fmt.Errorf("boom")
	})
	if _, err := BuildVar("t", coords.NewShape(16, 2), bad, BuildOptions{Blocks: 4}); err == nil {
		t.Fatal("BuildVar swallowed the reader error")
	}
}

type readerFunc func(coords.Slab, func(coords.Coord, float64) error) error

func (f readerFunc) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	return f(slab, emit)
}

func TestCovers(t *testing.T) {
	vi := buildRowIndex(t, coords.NewShape(32, 4), 8)
	in := func(corner, shape []int64) coords.Slab {
		return coords.Slab{Corner: coords.NewCoord(corner...), Shape: coords.NewShape(shape...)}
	}
	if !vi.Covers(in([]int64{0, 0}, []int64{32, 4})) {
		t.Fatal("full slab not covered")
	}
	if !vi.Covers(in([]int64{10, 1}, []int64{5, 2})) {
		t.Fatal("interior slab not covered")
	}
	if vi.Covers(in([]int64{0, 0}, []int64{33, 4})) {
		t.Fatal("covered a slab exceeding the indexed shape")
	}
	if vi.Covers(coords.Slab{Corner: coords.NewCoord(0), Shape: coords.NewShape(4)}) {
		t.Fatal("covered a rank-mismatched slab")
	}
	var nilVI *VarIndex
	if nilVI.Covers(in([]int64{0, 0}, []int64{1, 1})) {
		t.Fatal("nil index claimed coverage")
	}
}

// TestPruneSplitsConservative cross-checks pruning against a direct
// scan: a dropped split must contain no value satisfying the
// predicate, and kept splits must include every split that does.
func TestPruneSplitsConservative(t *testing.T) {
	shape := coords.NewShape(64, 8)
	// Hot band: rows [8, 16) carry +1000.
	fn := func(k coords.Coord) float64 {
		v := float64(k[0])
		if k[0] >= 8 && k[0] < 16 {
			v += 1000
		}
		return v
	}
	vi, err := BuildVar("t", shape, &mapreduce.FuncReader{Fn: fn}, BuildOptions{Blocks: 16})
	if err != nil {
		t.Fatalf("BuildVar: %v", err)
	}
	input := coords.Slab{Corner: coords.NewCoord(0, 0), Shape: shape}
	raw, err := mapreduce.GenerateSplits(input, input.Size()/16+1, nil, "", 8)
	if err != nil {
		t.Fatalf("GenerateSplits: %v", err)
	}
	splits := mapreduce.Slabs(raw)

	threshold := 500.0
	keepIdx := vi.PruneSplits(splits, func(min, max float64) bool { return max > threshold })
	kept := make(map[int]bool, len(keepIdx))
	for _, i := range keepIdx {
		kept[i] = true
	}
	if len(keepIdx) == 0 || len(keepIdx) == len(splits) {
		t.Fatalf("pruning had no effect: kept %d of %d", len(keepIdx), len(splits))
	}
	for i, s := range splits {
		matches := false
		r := &mapreduce.FuncReader{Fn: fn}
		if err := r.ReadSplit(s, func(_ coords.Coord, v float64) error {
			if v > threshold {
				matches = true
			}
			return nil
		}); err != nil {
			t.Fatalf("scan split %d: %v", i, err)
		}
		if matches && !kept[i] {
			t.Fatalf("split %d has matching values but was pruned", i)
		}
	}
}

func TestPruneKeepsUncoveredRows(t *testing.T) {
	vi := buildRowIndex(t, coords.NewShape(16, 2), 4)
	// A split reaching past the indexed rows must be kept even when no
	// block passes the predicate.
	beyond := coords.Slab{Corner: coords.NewCoord(12, 0), Shape: coords.NewShape(8, 2)}
	keep := vi.PruneSplits([]coords.Slab{beyond}, func(min, max float64) bool { return false })
	if len(keep) != 1 {
		t.Fatal("split reaching uncovered rows was pruned")
	}
	// Rank-mismatched splits are likewise never dropped.
	odd := coords.Slab{Corner: coords.NewCoord(0), Shape: coords.NewShape(4)}
	if keep := vi.PruneSplits([]coords.Slab{odd}, func(min, max float64) bool { return false }); len(keep) != 1 {
		t.Fatal("rank-mismatched split was pruned")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a := buildRowIndex(t, coords.NewShape(40, 3), 7)
	b := buildRowIndex(t, coords.NewShape(12, 5), 3)
	b.Variable = "other"
	ix := &Index{Vars: []*VarIndex{a, b}}

	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := ix.EncodedSize(); got != int64(buf.Len()) {
		t.Fatalf("EncodedSize %d != written %d", got, buf.Len())
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(back.Vars) != 2 {
		t.Fatalf("got %d vars, want 2", len(back.Vars))
	}
	for i, want := range ix.Vars {
		got := back.Vars[i]
		if got.Variable != want.Variable || !got.Shape.Equal(want.Shape) || !reflect.DeepEqual(got.Blocks, want.Blocks) {
			t.Fatalf("var %d round-trip mismatch", i)
		}
	}
	if back.Var("other") == nil || back.Var("missing") != nil {
		t.Fatal("Var lookup broken after round trip")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	ix := &Index{Vars: []*VarIndex{buildRowIndex(t, coords.NewShape(20, 2), 5)}}
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[indexHeaderLen+3] ^= 0xFF // corrupt payload
	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: got %v, want ErrChecksum", err)
	}

	magic := append([]byte(nil), good...)
	magic[0] = 'x'
	if _, err := Read(bytes.NewReader(magic)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}

	ver := append([]byte(nil), good...)
	ver[4] = 99
	if _, err := Read(bytes.NewReader(ver)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v, want ErrBadVersion", err)
	}

	if _, err := Read(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated index decoded cleanly")
	}
}

func TestSaveLoad(t *testing.T) {
	ix := &Index{Vars: []*VarIndex{buildRowIndex(t, coords.NewShape(24, 2), 6)}}
	path := filepath.Join(t.TempDir(), "data.ncf.sidx")
	if err := ix.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if vi := back.Var("t"); vi == nil || !reflect.DeepEqual(vi.Blocks, ix.Vars[0].Blocks) {
		t.Fatal("Save/Load round trip mismatch")
	}
}

func TestFingerprint(t *testing.T) {
	a := buildRowIndex(t, coords.NewShape(30, 2), 5)
	b := buildRowIndex(t, coords.NewShape(30, 2), 5)
	if a.Fingerprint() != b.Fingerprint() || a.Fingerprint() == 0 {
		t.Fatalf("identical indexes fingerprint %08x vs %08x", a.Fingerprint(), b.Fingerprint())
	}
	c, err := BuildVar("t", coords.NewShape(30, 2),
		&mapreduce.FuncReader{Fn: func(k coords.Coord) float64 { return math.Sqrt(float64(k[0] + 1)) }},
		BuildOptions{Blocks: 5})
	if err != nil {
		t.Fatalf("BuildVar: %v", err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different data, same fingerprint")
	}
}
