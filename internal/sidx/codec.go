package sidx

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"sidr/internal/coords"
)

// This file implements the versioned on-disk format of the structural
// index, mirroring the kv spill codec's integrity idiom: a magic tag,
// an explicit version, and a CRC32C of the payload recorded in the
// header ahead of the bytes it covers. A stale or truncated sidecar is
// rejected rather than silently pruning against wrong statistics —
// pruning correctness depends on the stats being the dataset's.
//
// Layout (little-endian):
//
//	magic "SIDX" | u16 version | u32 nVars | u32 crc32c(payload)
//	payload: nVars × (
//	    u16 nameLen | nameLen bytes
//	    u16 rank | rank × i64 shape
//	    u32 nBlocks | nBlocks × ( i64 row0 | i64 rows
//	                              | f64 min | f64 max | i64 count )
//	)

var indexMagic = [4]byte{'S', 'I', 'D', 'X'}

const indexVersion uint16 = 1

// indexHeaderLen is the fixed byte length of the header:
// magic(4) + version(2) + nVars(4) + crc(4).
const indexHeaderLen = 14

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the codec.
var (
	ErrBadMagic   = errors.New("sidx: bad index magic")
	ErrBadVersion = errors.New("sidx: unsupported index version")
	// ErrChecksum reports that the payload does not match the CRC32C in
	// the header — the index bytes were corrupted since they were
	// written; pruning with them would be unsound.
	ErrChecksum = errors.New("sidx: index payload checksum mismatch")
)

// Write serialises the index.
func Write(w io.Writer, ix *Index) error {
	payload, err := encodePayload(ix)
	if err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [indexHeaderLen]byte
	copy(hdr[:4], indexMagic[:])
	le.PutUint16(hdr[4:6], indexVersion)
	le.PutUint32(hdr[6:10], uint32(len(ix.Vars)))
	le.PutUint32(hdr[10:14], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func encodePayload(ix *Index) ([]byte, error) {
	var bw bytes.Buffer
	le := binary.LittleEndian
	var b8 [8]byte
	put64 := func(v uint64) {
		le.PutUint64(b8[:], v)
		bw.Write(b8[:])
	}
	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	put16 := func(v uint16) {
		var b [2]byte
		le.PutUint16(b[:], v)
		bw.Write(b[:])
	}
	for _, vi := range ix.Vars {
		if len(vi.Variable) > math.MaxUint16 {
			return nil, fmt.Errorf("sidx: variable name too long (%d bytes)", len(vi.Variable))
		}
		if vi.Shape.Rank() > coords.MaxRank {
			return nil, fmt.Errorf("sidx: implausible rank %d", vi.Shape.Rank())
		}
		put16(uint16(len(vi.Variable)))
		bw.WriteString(vi.Variable)
		put16(uint16(vi.Shape.Rank()))
		for _, d := range vi.Shape {
			put64(uint64(d))
		}
		put32(uint32(len(vi.Blocks)))
		for _, blk := range vi.Blocks {
			put64(uint64(blk.Row0))
			put64(uint64(blk.Rows))
			put64(math.Float64bits(blk.Min))
			put64(math.Float64bits(blk.Max))
			put64(uint64(blk.Count))
		}
	}
	return bw.Bytes(), nil
}

// Read deserialises an index, verifying the payload against the
// header's CRC32C. A mismatch returns ErrChecksum; the caller must
// discard the index and rebuild.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [indexHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != indexMagic {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	if le.Uint16(hdr[4:6]) != indexVersion {
		return nil, ErrBadVersion
	}
	nVars := int(le.Uint32(hdr[6:10]))
	wantCRC := le.Uint32(hdr[10:14])

	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, fmt.Errorf("sidx: index crc mismatch: %w", ErrChecksum)
	}

	pr := bytes.NewReader(payload)
	var b8 [8]byte
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(pr, b8[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b8[:]), nil
	}
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(pr, b8[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(b8[:4]), nil
	}
	get16 := func() (uint16, error) {
		if _, err := io.ReadFull(pr, b8[:2]); err != nil {
			return 0, err
		}
		return le.Uint16(b8[:2]), nil
	}

	// Counts are untrusted even after the CRC (a corrupt file can still
	// carry a matching checksum of garbage): cap preallocation and let
	// append grow as data actually arrives.
	ix := &Index{Vars: make([]*VarIndex, 0, min(nVars, 64))}
	for v := 0; v < nVars; v++ {
		nameLen, err := get16()
		if err != nil {
			return nil, fmt.Errorf("sidx: truncated index var %d: %w", v, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(pr, name); err != nil {
			return nil, fmt.Errorf("sidx: truncated index var %d: %w", v, err)
		}
		rank, err := get16()
		if err != nil {
			return nil, err
		}
		if int(rank) > coords.MaxRank {
			return nil, fmt.Errorf("sidx: implausible rank %d", rank)
		}
		shape := make(coords.Shape, rank)
		for d := range shape {
			u, err := get64()
			if err != nil {
				return nil, err
			}
			shape[d] = int64(u)
		}
		nBlocks, err := get32()
		if err != nil {
			return nil, err
		}
		vi := &VarIndex{
			Variable: string(name),
			Shape:    shape,
			Blocks:   make([]Block, 0, min(int(nBlocks), 1024)),
		}
		for b := uint32(0); b < nBlocks; b++ {
			var blk Block
			u, err := get64()
			if err != nil {
				return nil, fmt.Errorf("sidx: truncated block %d of %q: %w", b, vi.Variable, err)
			}
			blk.Row0 = int64(u)
			if u, err = get64(); err != nil {
				return nil, err
			}
			blk.Rows = int64(u)
			if u, err = get64(); err != nil {
				return nil, err
			}
			blk.Min = math.Float64frombits(u)
			if u, err = get64(); err != nil {
				return nil, err
			}
			blk.Max = math.Float64frombits(u)
			if u, err = get64(); err != nil {
				return nil, err
			}
			blk.Count = int64(u)
			vi.Blocks = append(vi.Blocks, blk)
		}
		ix.Vars = append(ix.Vars, vi)
	}
	if pr.Len() != 0 {
		return nil, fmt.Errorf("sidx: %d trailing bytes after index payload", pr.Len())
	}
	return ix, nil
}

// EncodedSize returns the serialised byte size of the index.
func (ix *Index) EncodedSize() int64 {
	payload, err := encodePayload(ix)
	if err != nil {
		return 0
	}
	return int64(indexHeaderLen + len(payload))
}

// Fingerprint is a stable identity of the variable's statistics — the
// CRC32C of its single-variable encoding. Plan caches that key on
// (shape, query, engine) alone would be poisoned by pruning, which is
// data-dependent; mixing the fingerprint into the key scopes cached
// pruned plans to the exact index that produced them.
func (vi *VarIndex) Fingerprint() uint32 {
	vi.fpOnce.Do(func() {
		payload, err := encodePayload(&Index{Vars: []*VarIndex{vi}})
		if err == nil {
			vi.fp = crc32.Checksum(payload, castagnoli)
		}
	})
	return vi.fp
}

// Save writes the index to path atomically (temp file + rename), so a
// concurrent reader never observes a half-written sidecar.
func (ix *Index) Save(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sidx-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, ix); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads an index sidecar from disk.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
