// Package sidx implements the structural block-range index: a compact
// per-dataset summary holding, for each variable and each contiguous
// band of leading-dimension rows, the minimum and maximum value plus the
// element count. SIDR's premise is that structural metadata makes
// dependencies computable before execution (§3); sidx extends that from
// routing to skipping — a value-predicated query (filter_gt, filter_lt,
// filter_range) consults the index at plan time and drops every input
// split whose indexed value range cannot satisfy the predicate, before
// the dependency graph derives I_ℓ. Pruning is conservative by
// construction: a block's [min, max] is a superset of any sub-slab's
// value range, so a dropped split provably contributes no surviving
// sample and the pruned plan's output is identical to the unpruned
// plan's.
//
// The index is tiny relative to the data it summarises (a few dozen
// blocks of five scalars per variable), is built in parallel at
// dataset-register time, and persists in a versioned CRC-protected
// on-disk format (see codec.go) alongside file datasets.
package sidx

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sidr/internal/coords"
)

// Block summarises one contiguous band of leading-dimension rows across
// the variable's full trailing cross-section.
type Block struct {
	// Row0 is the first dim-0 row the block covers.
	Row0 int64
	// Rows is the number of dim-0 rows covered.
	Rows int64
	// Min and Max bound every value in the band.
	Min, Max float64
	// Count is the number of elements summarised.
	Count int64
}

// VarIndex is the block-range index of one variable. Blocks partition
// the leading dimension in ascending row order; together they cover
// rows [0, Shape[0]).
type VarIndex struct {
	// Variable names the indexed variable ("*" for synthetic datasets
	// whose every variable resolves to the same function).
	Variable string
	// Shape is the variable's extents at build time; pruning refuses to
	// apply an index whose shape does not cover the query input.
	Shape coords.Shape
	// Blocks are the per-band summaries, ascending by Row0.
	Blocks []Block
	// BuildTime is how long the parallel build took (not serialized).
	BuildTime time.Duration

	fpOnce sync.Once
	fp     uint32
}

// Index bundles the per-variable indexes of one dataset, the unit of
// (de)serialisation: a file dataset's sidecar holds every variable.
type Index struct {
	Vars []*VarIndex
}

// Var returns the index for the named variable, accepting the "*"
// wildcard entry synthetic datasets register; nil when absent.
func (ix *Index) Var(name string) *VarIndex {
	if ix == nil {
		return nil
	}
	for _, vi := range ix.Vars {
		if vi.Variable == name || vi.Variable == "*" {
			return vi
		}
	}
	return nil
}

// Reader is the structural data source the builder scans. It is
// satisfied by the engine's record readers (mapreduce.FileReader,
// mapreduce.FuncReader) without an adapter.
type Reader interface {
	ReadSplit(slab coords.Slab, emit func(k coords.Coord, v float64) error) error
}

// BuildOptions tunes index construction.
type BuildOptions struct {
	// Blocks is the target block count along the leading dimension
	// (default 64, capped at the row count). More blocks prune at finer
	// granularity and cost proportionally more index bytes.
	Blocks int
	// Workers bounds the parallel block scans (default GOMAXPROCS).
	Workers int
}

// BuildVar scans the variable once and returns its block-range index.
// Blocks are scanned in parallel: each covers a near-equal band of
// leading-dimension rows over the full trailing cross-section.
func BuildVar(variable string, shape coords.Shape, r Reader, opts BuildOptions) (*VarIndex, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("sidx: %w", err)
	}
	if r == nil {
		return nil, fmt.Errorf("sidx: nil reader")
	}
	rows := shape[0]
	n := opts.Blocks
	if n <= 0 {
		n = 64
	}
	if int64(n) > rows {
		n = int(rows)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	start := time.Now()
	vi := &VarIndex{Variable: variable, Shape: shape.Clone(), Blocks: make([]Block, n)}
	// Near-equal row bands: the first rem blocks take one extra row.
	base, rem := rows/int64(n), rows%int64(n)
	row := int64(0)
	for i := range vi.Blocks {
		span := base
		if int64(i) < rem {
			span++
		}
		vi.Blocks[i] = Block{Row0: row, Rows: span, Min: math.Inf(1), Max: math.Inf(-1)}
		row += span
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue // drain; the build is already doomed
				}
				b := &vi.Blocks[i]
				slab := coords.Slab{
					Corner: make(coords.Coord, shape.Rank()),
					Shape:  shape.Clone(),
				}
				slab.Corner[0] = b.Row0
				slab.Shape[0] = b.Rows
				err := r.ReadSplit(slab, func(_ coords.Coord, v float64) error {
					if v < b.Min {
						b.Min = v
					}
					if v > b.Max {
						b.Max = v
					}
					b.Count++
					return nil
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range vi.Blocks {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("sidx: building %q: %w", variable, firstErr)
	}
	vi.BuildTime = time.Since(start)
	return vi, nil
}

// Covers reports whether the index may prune a query over the given
// input slab: ranks match and the slab lies within the indexed shape.
// A mismatched index (stale sidecar, wrong variable) never prunes.
func (vi *VarIndex) Covers(input coords.Slab) bool {
	if vi == nil || input.Rank() != vi.Shape.Rank() || len(vi.Blocks) == 0 {
		return false
	}
	full := coords.Slab{Corner: make(coords.Coord, vi.Shape.Rank()), Shape: vi.Shape}
	return full.ContainsSlab(input)
}

// PruneSplits returns the indices of splits that may contain a value
// satisfying the block predicate keep. A split is kept when ANY block
// overlapping its leading-dimension rows satisfies keep(min, max) —
// the block range is a superset of the split's, so dropping a split
// whose every overlapping block fails the predicate is provably safe.
// Splits reaching rows the index does not cover are kept outright.
func (vi *VarIndex) PruneSplits(splits []coords.Slab, keep func(min, max float64) bool) []int {
	out := make([]int, 0, len(splits))
	for i, s := range splits {
		if vi.splitMayMatch(s, keep) {
			out = append(out, i)
		}
	}
	return out
}

func (vi *VarIndex) splitMayMatch(s coords.Slab, keep func(min, max float64) bool) bool {
	if s.Rank() != vi.Shape.Rank() || s.Rank() == 0 {
		return true // never wrongly drop what we cannot reason about
	}
	lo, hi := s.Corner[0], s.Corner[0]+s.Shape[0] // rows [lo, hi)
	covered := int64(0)
	if n := len(vi.Blocks); n > 0 {
		last := vi.Blocks[n-1]
		covered = last.Row0 + last.Rows
	}
	if lo < 0 || hi > covered {
		return true // split reaches uncovered rows
	}
	for _, b := range vi.Blocks {
		if b.Row0+b.Rows <= lo {
			continue
		}
		if b.Row0 >= hi {
			break
		}
		if b.Count > 0 && keep(b.Min, b.Max) {
			return true
		}
	}
	return false
}
