// Package skew quantifies intermediate-data imbalance across keyblocks —
// the phenomenon §4.3 studies. partition+'s guarantee is a bound on
// these statistics; Hadoop's modulo partitioner offers none and can
// starve half the Reduce tasks outright.
package skew

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the imbalance statistics of one keyblock load vector.
type Summary struct {
	// Keyblocks is the number of keyblocks measured.
	Keyblocks int
	// Total is the summed load.
	Total int64
	// Starved counts keyblocks with zero load.
	Starved int
	// Max and Min are the extreme loads (Min over all keyblocks,
	// including starved ones).
	Max, Min int64
	// MaxOverMean is the heaviest keyblock relative to the mean load; 1
	// is perfect balance.
	MaxOverMean float64
	// CV is the coefficient of variation (σ/mean); 0 is perfect balance.
	CV float64
	// Gini is the Gini coefficient of the load distribution in [0, 1);
	// 0 is perfect balance, values near 1 mean a few keyblocks hold
	// nearly everything.
	Gini float64
}

// Summarize computes imbalance statistics for per-keyblock loads
// (typically depgraph.Graph.ExpectedCount).
func Summarize(loads []int64) Summary {
	s := Summary{Keyblocks: len(loads)}
	if len(loads) == 0 {
		return s
	}
	s.Min = loads[0]
	var sum, sumSq float64
	for _, l := range loads {
		if l == 0 {
			s.Starved++
		}
		if l > s.Max {
			s.Max = l
		}
		if l < s.Min {
			s.Min = l
		}
		s.Total += l
		sum += float64(l)
		sumSq += float64(l) * float64(l)
	}
	n := float64(len(loads))
	mean := sum / n
	if mean > 0 {
		s.MaxOverMean = float64(s.Max) / mean
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		s.CV = math.Sqrt(variance) / mean
		s.Gini = gini(loads, sum)
	}
	return s
}

// gini computes the Gini coefficient via the sorted-rank formula.
func gini(loads []int64, sum float64) float64 {
	sorted := append([]int64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	var weighted float64
	for i, l := range sorted {
		weighted += float64(i+1) * float64(l)
	}
	return (2*weighted)/(n*sum) - (n+1)/n
}

// Format renders the summary as one diagnostics line.
func (s Summary) Format() string {
	return fmt.Sprintf("keyblocks=%d total=%d starved=%d max/mean=%.3f cv=%.3f gini=%.3f",
		s.Keyblocks, s.Total, s.Starved, s.MaxOverMean, s.CV, s.Gini)
}

// Balanced reports whether loads satisfy partition+'s guarantee: no
// starved keyblock and every load within `slack` of the mean (e.g. one
// tile instance).
func Balanced(loads []int64, slack int64) bool {
	if len(loads) == 0 {
		return true
	}
	var total int64
	for _, l := range loads {
		if l == 0 {
			return false
		}
		total += l
	}
	mean := float64(total) / float64(len(loads))
	for _, l := range loads {
		if math.Abs(float64(l)-mean) > float64(slack) {
			return false
		}
	}
	return true
}
