package skew

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Keyblocks != 0 || s.Total != 0 || s.Gini != 0 {
		t.Fatalf("empty = %+v", s)
	}
}

func TestSummarizeUniform(t *testing.T) {
	s := Summarize([]int64{10, 10, 10, 10})
	if s.Starved != 0 || s.Max != 10 || s.Min != 10 {
		t.Fatalf("uniform = %+v", s)
	}
	if s.MaxOverMean != 1 || s.CV != 0 {
		t.Fatalf("uniform imbalance nonzero: %+v", s)
	}
	if math.Abs(s.Gini) > 1e-12 {
		t.Fatalf("uniform gini = %v", s.Gini)
	}
}

func TestSummarizePathological(t *testing.T) {
	// The §4.3 case: half the keyblocks starve, the rest carry double.
	s := Summarize([]int64{20, 0, 20, 0, 20, 0})
	if s.Starved != 3 {
		t.Fatalf("starved = %d", s.Starved)
	}
	if s.MaxOverMean != 2 {
		t.Fatalf("max/mean = %v", s.MaxOverMean)
	}
	if s.CV != 1 {
		t.Fatalf("cv = %v", s.CV)
	}
	if math.Abs(s.Gini-0.5) > 1e-12 {
		t.Fatalf("gini = %v, want 0.5", s.Gini)
	}
}

func TestSummarizeSingleHolder(t *testing.T) {
	s := Summarize([]int64{0, 0, 0, 100})
	if s.Gini < 0.74 || s.Gini >= 1 {
		t.Fatalf("gini = %v", s.Gini)
	}
	if s.Max != 100 || s.Min != 0 || s.Total != 100 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestFormat(t *testing.T) {
	out := Summarize([]int64{1, 2, 3}).Format()
	for _, part := range []string{"keyblocks=3", "total=6", "gini="} {
		if !strings.Contains(out, part) {
			t.Fatalf("format %q missing %q", out, part)
		}
	}
}

func TestBalanced(t *testing.T) {
	if !Balanced([]int64{10, 11, 9}, 2) {
		t.Fatal("near-uniform rejected")
	}
	if Balanced([]int64{10, 0, 20}, 2) {
		t.Fatal("starved accepted")
	}
	if Balanced([]int64{10, 10, 30}, 5) {
		t.Fatal("outlier accepted")
	}
	if !Balanced(nil, 0) {
		t.Fatal("empty rejected")
	}
}

func TestQuickGiniBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loads := make([]int64, 1+r.Intn(30))
		for i := range loads {
			loads[i] = r.Int63n(100)
		}
		s := Summarize(loads)
		if s.Total == 0 {
			return s.Gini == 0
		}
		// Gini lies in [0, 1) and is invariant under permutation.
		if s.Gini < -1e-9 || s.Gini >= 1 {
			return false
		}
		r.Shuffle(len(loads), func(i, j int) { loads[i], loads[j] = loads[j], loads[i] })
		s2 := Summarize(loads)
		return math.Abs(s.Gini-s2.Gini) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleInvariance(t *testing.T) {
	// Gini, CV and MaxOverMean are scale-invariant.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loads := make([]int64, 2+r.Intn(20))
		for i := range loads {
			loads[i] = 1 + r.Int63n(50)
		}
		scaled := make([]int64, len(loads))
		for i := range loads {
			scaled[i] = loads[i] * 7
		}
		a, b := Summarize(loads), Summarize(scaled)
		return math.Abs(a.Gini-b.Gini) < 1e-9 &&
			math.Abs(a.CV-b.CV) < 1e-9 &&
			math.Abs(a.MaxOverMean-b.MaxOverMean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
