package datagen

import (
	"math"
	"path/filepath"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/ncfile"
)

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(coords.Coord) float64{
		"windspeed":   Windspeed(1),
		"gaussian":    Gaussian(1, 0, 1),
		"temperature": Temperature(1),
		"evenkeyed":   EvenKeyed(1),
	}
	k := coords.NewCoord(3, 4, 5, 6)
	for name, g := range gens {
		if g(k) != g(k.Clone()) {
			t.Errorf("%s not deterministic", name)
		}
	}
	// Different seeds produce different fields.
	if Windspeed(1)(k) == Windspeed(2)(k) {
		t.Error("seed has no effect")
	}
}

func TestGaussianMoments(t *testing.T) {
	g := Gaussian(42, 10, 2)
	var sum, sumSq float64
	n := 0
	slab := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(200, 200))
	slab.Each(func(k coords.Coord) bool {
		v := g(k)
		sum += v
		sumSq += v * v
		n++
		return true
	})
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v", std)
	}
}

func TestGaussianTailFraction(t *testing.T) {
	// Query 2 relies on ~0.1% of values exceeding mean+3σ. Irwin-Hall(4)
	// is lighter-tailed than a true normal; just require a small nonzero
	// tail in the right ballpark (between 0.01% and 0.5%).
	g := Gaussian(7, 0, 1)
	count, n := 0, 0
	slab := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(400, 400))
	slab.Each(func(k coords.Coord) bool {
		if g(k) > 3 {
			count++
		}
		n++
		return true
	})
	frac := float64(count) / float64(n)
	if frac <= 0.0001 || frac >= 0.005 {
		t.Fatalf("3σ tail fraction = %v", frac)
	}
}

func TestWindspeedStructure(t *testing.T) {
	g := Windspeed(3)
	// Elevation gradient: averaged over time, higher elevation -> higher
	// speed.
	avgAt := func(elev int64) float64 {
		var sum float64
		n := 0
		for tm := int64(0); tm < 240; tm++ {
			sum += g(coords.NewCoord(tm, 0, 0, elev))
			n++
		}
		return sum / float64(n)
	}
	if !(avgAt(40) > avgAt(0)+4) {
		t.Fatalf("no elevation gradient: %v vs %v", avgAt(40), avgAt(0))
	}
}

func TestTemperatureSeasons(t *testing.T) {
	g := Temperature(5)
	avgDay := func(day int64) float64 {
		var sum float64
		for lat := int64(0); lat < 50; lat++ {
			sum += g(coords.NewCoord(day, lat, 0))
		}
		return sum / 50
	}
	if !(avgDay(182) > avgDay(0)+15) {
		t.Fatalf("no seasonal swing: summer %v vs winter %v", avgDay(182), avgDay(0))
	}
}

func TestWriteDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ncf")
	shape := coords.NewShape(6, 5, 4)
	gen := Windspeed(9)
	if err := WriteDataset(path, "wind", shape, gen); err != nil {
		t.Fatal(err)
	}
	f, err := ncfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadAll("wind")
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	coords.Slab{Corner: coords.NewCoord(0, 0, 0), Shape: shape}.Each(func(k coords.Coord) bool {
		if got[i] != gen(k) {
			t.Fatalf("value at %v: got %v want %v", k, got[i], gen(k))
		}
		i++
		return true
	})
	if err := WriteDataset(path, "w", coords.Shape{0}, gen); err == nil {
		t.Fatal("invalid shape accepted")
	}
}
