// Package datagen synthesises the datasets the paper's experiments read:
// windspeed-like fields (Query 1), normally distributed values (Query 2's
// 3σ filter), and seasonal temperature grids (the running example). All
// generators are pure functions of the coordinate and a seed, so datasets
// of any size can be streamed without materialisation and runs are
// reproducible bit-for-bit.
package datagen

import (
	"fmt"
	"math"

	"sidr/internal/coords"
	"sidr/internal/ncfile"
)

// hash64 mixes a coordinate and seed into a uniform uint64
// (FNV-1a-style).
func hash64(seed int64, k coords.Coord) uint64 {
	h := uint64(1469598103934665603) ^ uint64(seed)*1099511628211
	for _, x := range k {
		h ^= uint64(x)
		h *= 1099511628211
	}
	// Finalise (xorshift-multiply) so low bits are well mixed.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// uniform returns a deterministic uniform value in [0, 1).
func uniform(seed int64, k coords.Coord) float64 {
	return float64(hash64(seed, k)>>11) / float64(1<<53)
}

// Windspeed returns a generator resembling hourly windspeed measurements:
// a diurnal cycle plus elevation gradient plus noise, in m/s. The paper's
// Query 1 dataset is {time, lat, lon, elevation}.
func Windspeed(seed int64) func(coords.Coord) float64 {
	return func(k coords.Coord) float64 {
		var t, elev float64
		if len(k) > 0 {
			t = float64(k[0])
		}
		if len(k) > 3 {
			elev = float64(k[3])
		}
		base := 8 + 3*math.Sin(2*math.Pi*t/24) + 0.2*elev
		return base + 4*(uniform(seed, k)-0.5)
	}
}

// Gaussian returns a generator of approximately normal values with the
// given mean and standard deviation, built from the sum of four uniforms
// (Irwin–Hall) — accurate enough in the ±4σ range the 3σ filter probes
// while staying a pure coordinate hash.
func Gaussian(seed int64, mean, std float64) func(coords.Coord) float64 {
	return func(k coords.Coord) float64 {
		var sum float64
		for i := int64(0); i < 4; i++ {
			sum += uniform(seed+i*7919, k)
		}
		// Irwin-Hall(4): mean 2, variance 4/12 -> std 1/sqrt(3).
		z := (sum - 2) * math.Sqrt(3)
		return mean + std*z
	}
}

// Temperature returns a generator of daily temperatures (°C) over a
// {time, lat, lon} grid with seasonal and latitudinal structure — the
// Figure 2 dataset.
func Temperature(seed int64) func(coords.Coord) float64 {
	return func(k coords.Coord) float64 {
		var day, lat float64
		if len(k) > 0 {
			day = float64(k[0])
		}
		if len(k) > 1 {
			lat = float64(k[1])
		}
		seasonal := 15 - 12*math.Cos(2*math.Pi*day/365)
		gradient := -0.05 * lat
		return seasonal + gradient + 3*(uniform(seed, k)-0.5)
	}
}

// EvenKeyed returns a generator whose values are immaterial; it exists to
// pair with queries whose intermediate keys are patterned (the §4.3 skew
// scenario) where only the key structure matters.
func EvenKeyed(seed int64) func(coords.Coord) float64 {
	return func(k coords.Coord) float64 {
		return uniform(seed, k) * 100
	}
}

// Zipf returns a generator with Zipf-distributed data presence along the
// leading dimension: early rows are dense, deep rows are mostly missing
// (NaN), with presence probability (1 + r/4)^-skew for leading
// coordinate r. A skew <= 0 defaults to 1.2. Present cells hold small
// integers, so float sums over them are exact and order-independent —
// the property the join byte-identity tests rely on. Joining a Zipf side
// against a uniform one concentrates value-dependent load in the low
// keyblocks, the skew the planner's re-tiling exists to absorb.
func Zipf(seed int64, skew float64) func(coords.Coord) float64 {
	if skew <= 0 {
		skew = 1.2
	}
	return func(k coords.Coord) float64 {
		var r float64
		if len(k) > 0 {
			r = float64(k[0])
		}
		p := math.Pow(1+r/4, -skew)
		if uniform(seed^0x5eedface, k) >= p {
			return math.NaN()
		}
		return float64(hash64(seed, k) % 1024)
	}
}

// Integers returns a generator of dense small-integer values — the
// uniform counterpart to Zipf for join tests and benches where exact,
// order-independent float summation matters.
func Integers(seed int64) func(coords.Coord) float64 {
	return func(k coords.Coord) float64 {
		return float64(hash64(seed, k) % 1024)
	}
}

// WriteDataset materialises a generated dataset into an ncfile container
// with a single float64 variable named varName over dims d0, d1, ....
func WriteDataset(path, varName string, shape coords.Shape, fn func(coords.Coord) float64) error {
	if err := shape.Validate(); err != nil {
		return err
	}
	h := &ncfile.Header{
		Attrs: []ncfile.Attribute{{Name: "generator", Value: "sidr/datagen"}},
	}
	dims := make([]string, shape.Rank())
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
		h.Dims = append(h.Dims, ncfile.Dimension{Name: dims[i], Length: shape[i]})
	}
	h.Vars = append(h.Vars, ncfile.Variable{Name: varName, Type: ncfile.Float64, Dims: dims})
	f, err := ncfile.CreateEmpty(path, h)
	if err != nil {
		return err
	}
	defer f.Close()
	// Stream row by row to bound memory for large datasets.
	rowShape := shape.Clone()
	rowShape[0] = 1
	buf := make([]float64, rowShape.Size())
	for row := int64(0); row < shape[0]; row++ {
		corner := make(coords.Coord, shape.Rank())
		corner[0] = row
		slab := coords.Slab{Corner: corner, Shape: rowShape}
		i := 0
		slab.Each(func(k coords.Coord) bool {
			buf[i] = fn(k)
			i++
			return true
		})
		if err := f.WriteSlab(varName, slab, buf); err != nil {
			return err
		}
	}
	return f.Sync()
}
