// Package ops implements the operator library applied by structural
// queries: the function each Reduce task evaluates over the values of one
// intermediate key (one extraction-shape tile of input).
//
// Operators are classified the way the MapReduce-Online comparison in the
// paper requires (§5): distributive operators admit combiners and
// constant-size intermediate state; holistic operators (median, sort)
// need every raw sample; filters emit variable-length results and admit
// combiners that pre-filter.
package ops

import (
	"fmt"
	"math"
	"sort"

	"sidr/internal/kv"
)

// Kind classifies an operator's aggregation structure.
type Kind int

const (
	// Distributive operators (sum, min, ...) can be computed from
	// partial aggregates; combiners are lossless.
	Distributive Kind = iota
	// Holistic operators (median, sort) need all raw samples at the
	// Reduce task; combiners may only concatenate.
	Holistic
	// Filter operators emit the subset of samples satisfying a
	// predicate; combiners may pre-filter.
	Filter
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Distributive:
		return "distributive"
	case Holistic:
		return "holistic"
	case Filter:
		return "filter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Operator evaluates a structural query's function over one intermediate
// key's merged value.
type Operator interface {
	// Name is the operator's query-language name.
	Name() string
	// Kind classifies the operator.
	Kind() Kind
	// NeedsSamples reports whether Map tasks must retain raw samples in
	// intermediate values for this operator.
	NeedsSamples() bool
	// Apply computes the outputs for one intermediate key from its fully
	// merged value. params carry the operator parameters (e.g. a filter
	// threshold, or a range's two bounds); most operators ignore them.
	// Distributive and holistic operators return exactly one value;
	// filters return zero or more.
	Apply(v kv.Value, params ...float64) []float64
}

// fn is a table-driven operator implementation. Single-parameter
// operators set apply; the two-parameter filter_range sets apply2.
type fn struct {
	name    string
	kind    Kind
	samples bool
	nparams int // parameters the operator consumes (for query validation)
	apply   func(v kv.Value, param float64) []float64
	apply2  func(v kv.Value, p, p2 float64) []float64
	// prune, when set, derives the conservative block-level predicate
	// the structural index (internal/sidx) prunes splits with.
	prune func(params []float64) func(min, max float64) bool
}

func (f fn) Name() string       { return f.name }
func (f fn) Kind() Kind         { return f.kind }
func (f fn) NeedsSamples() bool { return f.samples }
func (f fn) Apply(v kv.Value, params ...float64) []float64 {
	var p, p2 float64
	if len(params) > 0 {
		p = params[0]
	}
	if len(params) > 1 {
		p2 = params[1]
	}
	if f.apply2 != nil {
		return f.apply2(v, p, p2)
	}
	return f.apply(v, p)
}

var registry = map[string]Operator{}

func register(op Operator) {
	if _, dup := registry[op.Name()]; dup {
		panic("ops: duplicate operator " + op.Name())
	}
	registry[op.Name()] = op
}

func init() {
	register(fn{name: "sum", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{v.Sum}
	}})
	register(fn{name: "count", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{float64(v.Count)}
	}})
	register(fn{name: "avg", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{v.Mean()}
	}})
	register(fn{name: "min", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{v.Min}
	}})
	register(fn{name: "max", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{v.Max}
	}})
	register(fn{name: "stddev", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		return []float64{v.StdDev()}
	}})
	register(fn{name: "median", kind: Holistic, samples: true, apply: func(v kv.Value, _ float64) []float64 {
		s := v.SortedSamples()
		if len(s) == 0 {
			return []float64{0}
		}
		if len(s)%2 == 1 {
			return []float64{s[len(s)/2]}
		}
		return []float64{(s[len(s)/2-1] + s[len(s)/2]) / 2}
	}})
	register(fn{name: "sort", kind: Holistic, samples: true, apply: func(v kv.Value, _ float64) []float64 {
		return v.SortedSamples()
	}})
	// The three value-predicated filters also declare how the structural
	// index may prune for them: a split is droppable when no overlapping
	// block's [min, max] can contain a satisfying sample. The block range
	// is a superset of the split's values, so the predicate is
	// conservative — it never drops a contributing split.
	register(fn{name: "filter_gt", kind: Filter, samples: true, nparams: 1,
		apply: func(v kv.Value, p float64) []float64 {
			var out []float64
			for _, s := range v.Samples {
				if s > p {
					out = append(out, s)
				}
			}
			sort.Float64s(out)
			return out
		},
		prune: func(params []float64) func(min, max float64) bool {
			p := params[0]
			return func(_, max float64) bool { return max > p }
		}})
	register(fn{name: "filter_lt", kind: Filter, samples: true, nparams: 1,
		apply: func(v kv.Value, p float64) []float64 {
			var out []float64
			for _, s := range v.Samples {
				if s < p {
					out = append(out, s)
				}
			}
			sort.Float64s(out)
			return out
		},
		prune: func(params []float64) func(min, max float64) bool {
			p := params[0]
			return func(min, _ float64) bool { return min < p }
		}})
	// filter_range keeps samples in the closed interval [lo, hi]; the
	// query syntax supplies both bounds as "param lo,hi".
	register(fn{name: "filter_range", kind: Filter, samples: true, nparams: 2,
		apply2: func(v kv.Value, lo, hi float64) []float64 {
			var out []float64
			for _, s := range v.Samples {
				if s >= lo && s <= hi {
					out = append(out, s)
				}
			}
			sort.Float64s(out)
			return out
		},
		prune: func(params []float64) func(min, max float64) bool {
			lo, hi := params[0], params[1]
			return func(min, max float64) bool { return max >= lo && min <= hi }
		}})
	register(fn{name: "range", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		if v.Count == 0 {
			return []float64{0}
		}
		return []float64{v.Max - v.Min}
	}})
	register(fn{name: "absmax", kind: Distributive, apply: func(v kv.Value, _ float64) []float64 {
		a, b := v.Min, v.Max
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			return []float64{a}
		}
		return []float64{b}
	}})
	// percentile returns the p-th percentile (param in [0, 100]) using
	// nearest-rank; param 50 matches median for odd sample counts.
	register(fn{name: "percentile", kind: Holistic, samples: true, nparams: 1, apply: func(v kv.Value, p float64) []float64 {
		s := v.SortedSamples()
		if len(s) == 0 {
			return []float64{0}
		}
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		rank := int(math.Ceil(p / 100 * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		return []float64{s[rank-1]}
	}})
}

// Lookup resolves an operator by its query-language name.
func Lookup(name string) (Operator, error) {
	op, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ops: unknown operator %q", name)
	}
	return op, nil
}

// Names returns all registered operator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CombinerLossless reports whether running a combiner preserves the
// operator's exact result. Distributive operators aggregate losslessly;
// filters pre-filter losslessly; holistic operators only concatenate, so
// a combiner is legal but pointless and the engine skips it.
func CombinerLossless(op Operator) bool {
	return op.Kind() != Holistic
}

// NumParams returns how many parameters the operator consumes (0, 1 or
// 2) — the query parser validates the "param" clause against it.
func NumParams(op Operator) int {
	if f, ok := op.(fn); ok {
		return f.nparams
	}
	return 0
}

// PrunePredicate returns the conservative block-level predicate the
// structural index uses to drop splits for a value-predicated operator:
// keep(min, max) is true when a block whose values lie in [min, max]
// may contain a satisfying sample. ok is false for operators that admit
// no pruning (aggregates consume every point regardless of value).
func PrunePredicate(op Operator, params ...float64) (keep func(min, max float64) bool, ok bool) {
	f, isFn := op.(fn)
	if !isFn || f.prune == nil {
		return nil, false
	}
	ps := make([]float64, max(f.nparams, len(params)))
	copy(ps, params)
	return f.prune(ps), true
}

// PreFilter applies a filter operator's predicate inside a combiner,
// discarding non-matching samples early. For non-filter operators it
// returns the value unchanged.
func PreFilter(op Operator, v kv.Value, params ...float64) kv.Value {
	if op.Kind() != Filter {
		return v
	}
	kept := op.Apply(v, params...)
	var out kv.Value
	for _, s := range kept {
		out.Add(s, true)
	}
	// The Count annotation keeps tracking SOURCE pairs (not survivors) so
	// the Reduce barrier tally stays correct after pre-filtering.
	out.Count = v.Count
	if out.Samples == nil {
		out.Samples = []float64{} // distinguish "pre-filtered empty" from "no samples kept"
	}
	return out
}
