package ops

import (
	"fmt"
	"math"
	"sort"
)

// SideAgg is one side's fully merged aggregate for one join key (one
// extraction-shape tile): the distributive moments every join operator
// consumes, plus the raw samples in row-major cell order for operators
// that declare NeedsSamples. NaN source cells are missing data and are
// never accumulated, so Count is the number of present cells.
type SideAgg struct {
	Sum     float64
	Count   int64
	Samples []float64
}

// JoinOperator combines the two sides' co-keyed aggregates into one
// output row. Join queries are inner joins on tiles: a key missing from
// either side produces no row (ok = false).
type JoinOperator interface {
	// Name is the operator's query-language name.
	Name() string
	// NeedsSamples reports whether Map tasks must retain raw samples for
	// this operator. Sample-carrying operators are holistic: heavy-key
	// re-tiling may range-split their keyblocks but never cell-splits a
	// single tile (sub-aggregates would lose positional alignment).
	NeedsSamples() bool
	// Combine computes the output for one join key from both sides'
	// merged aggregates. ok is false when the row must be omitted.
	Combine(a, b SideAgg, params ...float64) (out []float64, ok bool)
}

// jfn is a table-driven join operator.
type jfn struct {
	name    string
	samples bool
	combine func(a, b SideAgg) []float64
}

func (f jfn) Name() string       { return f.name }
func (f jfn) NeedsSamples() bool { return f.samples }
func (f jfn) Combine(a, b SideAgg, _ ...float64) ([]float64, bool) {
	if a.Count == 0 || b.Count == 0 {
		return nil, false
	}
	return f.combine(a, b), true
}

var joinRegistry = map[string]JoinOperator{}

func registerJoin(op JoinOperator) {
	if _, dup := joinRegistry[op.Name()]; dup {
		panic("ops: duplicate join operator " + op.Name())
	}
	joinRegistry[op.Name()] = op
}

func init() {
	// jsum: total of both sides' present cells.
	registerJoin(jfn{name: "jsum", combine: func(a, b SideAgg) []float64 {
		return []float64{a.Sum + b.Sum}
	}})
	// javg: mean of the two per-side means, so a side with fewer present
	// cells still carries half the weight.
	registerJoin(jfn{name: "javg", combine: func(a, b SideAgg) []float64 {
		return []float64{(a.Sum/float64(a.Count) + b.Sum/float64(b.Count)) / 2}
	}})
	// jcorr: Pearson correlation of the two sides' sample vectors zipped
	// positionally (row-major cell order, missing cells compressed out);
	// pairs beyond the shorter vector are dropped. Degenerate variance on
	// either side yields 0.
	registerJoin(jfn{name: "jcorr", samples: true, combine: func(a, b SideAgg) []float64 {
		n := len(a.Samples)
		if len(b.Samples) < n {
			n = len(b.Samples)
		}
		if n == 0 {
			return []float64{0}
		}
		var sa, sb, sab, saa, sbb float64
		for i := 0; i < n; i++ {
			x, y := a.Samples[i], b.Samples[i]
			sa += x
			sb += y
			sab += x * y
			saa += x * x
			sbb += y * y
		}
		fn := float64(n)
		cov := sab - sa*sb/fn
		va := saa - sa*sa/fn
		vb := sbb - sb*sb/fn
		if va <= 0 || vb <= 0 {
			return []float64{0}
		}
		return []float64{cov / math.Sqrt(va*vb)}
	}})
}

// LookupJoin resolves a join operator by its query-language name.
func LookupJoin(name string) (JoinOperator, error) {
	op, ok := joinRegistry[name]
	if !ok {
		return nil, fmt.Errorf("ops: unknown join operator %q", name)
	}
	return op, nil
}

// JoinNames returns all registered join operator names, sorted.
func JoinNames() []string {
	out := make([]string, 0, len(joinRegistry))
	for n := range joinRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
