package ops

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sidr/internal/kv"
)

func valueOf(samples bool, xs ...float64) kv.Value {
	var v kv.Value
	for _, x := range xs {
		v.Add(x, samples)
	}
	return v
}

func apply(t *testing.T, name string, param float64, xs ...float64) []float64 {
	t.Helper()
	op, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return op.Apply(valueOf(op.NeedsSamples(), xs...), param)
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("frobnicate"); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	want := []string{"absmax", "avg", "count", "filter_gt", "filter_lt", "filter_range", "max", "median", "min", "percentile", "range", "sort", "stddev", "sum"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRangeAbsmax(t *testing.T) {
	if got := apply(t, "range", 0, 4, -1, 7, 2); got[0] != 8 {
		t.Fatalf("range = %v", got)
	}
	op, _ := Lookup("range")
	if got := op.Apply(kv.Value{}, 0); got[0] != 0 {
		t.Fatalf("empty range = %v", got)
	}
	if got := apply(t, "absmax", 0, -9, 3); got[0] != 9 {
		t.Fatalf("absmax = %v", got)
	}
	if got := apply(t, "absmax", 0, -2, 7); got[0] != 7 {
		t.Fatalf("absmax = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7} // sorted: 1 3 5 7 9
	cases := map[float64]float64{0: 1, 20: 1, 50: 5, 100: 9, 150: 9, -5: 1}
	for p, want := range cases {
		if got := apply(t, "percentile", p, xs...); got[0] != want {
			t.Errorf("percentile(%v) = %v, want %v", p, got, want)
		}
	}
	op, _ := Lookup("percentile")
	if got := op.Apply(kv.Value{}, 50); got[0] != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Median equivalence for odd sample counts.
	if apply(t, "percentile", 50, xs...)[0] != apply(t, "median", 0, xs...)[0] {
		t.Fatal("percentile(50) != median on odd count")
	}
}

func TestDistributiveOps(t *testing.T) {
	xs := []float64{4, -1, 7, 2}
	cases := map[string]float64{
		"sum":   12,
		"count": 4,
		"avg":   3,
		"min":   -1,
		"max":   7,
	}
	for name, want := range cases {
		got := apply(t, name, 0, xs...)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	sd := apply(t, "stddev", 0, 2, 4, 4, 4, 5, 5, 7, 9)
	if math.Abs(sd[0]-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", sd)
	}
}

func TestMedian(t *testing.T) {
	if got := apply(t, "median", 0, 5, 1, 9); got[0] != 5 {
		t.Fatalf("odd median = %v", got)
	}
	if got := apply(t, "median", 0, 1, 2, 3, 4); got[0] != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	op, _ := Lookup("median")
	if got := op.Apply(kv.Value{}, 0); got[0] != 0 {
		t.Fatalf("empty median = %v", got)
	}
}

func TestSortOp(t *testing.T) {
	got := apply(t, "sort", 0, 3, 1, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort = %v", got)
		}
	}
}

func TestFilters(t *testing.T) {
	gt := apply(t, "filter_gt", 5, 1, 9, 5, 6)
	if len(gt) != 2 || gt[0] != 6 || gt[1] != 9 {
		t.Fatalf("filter_gt = %v", gt)
	}
	lt := apply(t, "filter_lt", 5, 1, 9, 5, 6)
	if len(lt) != 1 || lt[0] != 1 {
		t.Fatalf("filter_lt = %v", lt)
	}
	if got := apply(t, "filter_gt", 100, 1, 2); len(got) != 0 {
		t.Fatalf("filter_gt none = %v", got)
	}
}

func TestFilterRange(t *testing.T) {
	op, err := Lookup("filter_range")
	if err != nil {
		t.Fatal(err)
	}
	// Bounds are inclusive and survivors come out sorted.
	got := op.Apply(valueOf(true, 9, 2, 5, 3, 7), 3, 7)
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("filter_range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("filter_range = %v, want %v", got, want)
		}
	}
	if got := op.Apply(valueOf(true, 1, 9), 3, 7); len(got) != 0 {
		t.Fatalf("filter_range none = %v", got)
	}
	if op.Kind() != Filter {
		t.Fatal("filter_range is not Filter-kind")
	}
	if NumParams(op) != 2 {
		t.Fatalf("filter_range NumParams = %d", NumParams(op))
	}
}

func TestPrunePredicates(t *testing.T) {
	cases := []struct {
		name     string
		params   []float64
		min, max float64
		keep     bool
	}{
		// filter_gt p keeps a block iff max > p.
		{"filter_gt", []float64{10}, 0, 11, true},
		{"filter_gt", []float64{10}, 0, 10, false},
		// filter_lt p keeps a block iff min < p.
		{"filter_lt", []float64{10}, 9, 20, true},
		{"filter_lt", []float64{10}, 10, 20, false},
		// filter_range lo,hi keeps a block iff [min,max] ∩ [lo,hi] ≠ ∅.
		{"filter_range", []float64{3, 7}, 7, 9, true},
		{"filter_range", []float64{3, 7}, 8, 9, false},
		{"filter_range", []float64{3, 7}, 0, 2, false},
		{"filter_range", []float64{3, 7}, 0, 100, true},
	}
	for _, c := range cases {
		op, err := Lookup(c.name)
		if err != nil {
			t.Fatal(err)
		}
		keep, ok := PrunePredicate(op, c.params...)
		if !ok {
			t.Fatalf("%s has no prune predicate", c.name)
		}
		if got := keep(c.min, c.max); got != c.keep {
			t.Fatalf("%s%v keep(%g, %g) = %v, want %v", c.name, c.params, c.min, c.max, got, c.keep)
		}
	}
	// Aggregates are not prunable: no value predicate to test blocks
	// against.
	for _, name := range []string{"avg", "sum", "median", "percentile"} {
		op, _ := Lookup(name)
		if _, ok := PrunePredicate(op, 1); ok {
			t.Fatalf("%s unexpectedly prunable", name)
		}
	}
}

func TestKinds(t *testing.T) {
	kinds := map[string]Kind{
		"sum": Distributive, "avg": Distributive, "stddev": Distributive,
		"median": Holistic, "sort": Holistic,
		"filter_gt": Filter, "filter_lt": Filter,
	}
	for name, want := range kinds {
		op, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if op.Kind() != want {
			t.Errorf("%s kind = %v, want %v", name, op.Kind(), want)
		}
	}
	if Distributive.String() != "distributive" || Holistic.String() != "holistic" || Filter.String() != "filter" {
		t.Fatal("Kind names changed")
	}
}

func TestNeedsSamples(t *testing.T) {
	for _, name := range []string{"median", "sort", "filter_gt", "percentile"} {
		op, _ := Lookup(name)
		if !op.NeedsSamples() {
			t.Errorf("%s should need samples", name)
		}
	}
	for _, name := range []string{"sum", "avg", "min", "max", "count", "stddev", "range", "absmax"} {
		op, _ := Lookup(name)
		if op.NeedsSamples() {
			t.Errorf("%s should not need samples", name)
		}
	}
}

func TestCombinerLossless(t *testing.T) {
	sum, _ := Lookup("sum")
	med, _ := Lookup("median")
	flt, _ := Lookup("filter_gt")
	if !CombinerLossless(sum) || CombinerLossless(med) || !CombinerLossless(flt) {
		t.Fatal("combiner legality wrong")
	}
}

func TestPreFilter(t *testing.T) {
	flt, _ := Lookup("filter_gt")
	v := valueOf(true, 1, 9, 5, 6)
	out := PreFilter(flt, v, 5)
	if out.Count != 4 {
		t.Fatalf("PreFilter lost the source-count annotation: %d", out.Count)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("PreFilter samples = %v", out.Samples)
	}
	// Pre-filtering to nothing must still carry Count and a non-nil
	// samples slice.
	none := PreFilter(flt, v, 100)
	if none.Count != 4 || none.Samples == nil || len(none.Samples) != 0 {
		t.Fatalf("PreFilter empty = %+v", none)
	}
	// Non-filter operators pass through untouched.
	sum, _ := Lookup("sum")
	same := PreFilter(sum, v, 5)
	if same.Sum != v.Sum || same.Count != v.Count {
		t.Fatal("PreFilter modified non-filter value")
	}
}

// TestQuickDistributiveCombinerEquivalence: applying a distributive
// operator to merged partial aggregates equals applying it to the full
// sample set — the exact property that makes SIDR's combiner-folded
// counts safe for distributive operators.
func TestQuickDistributiveCombinerEquivalence(t *testing.T) {
	names := []string{"sum", "count", "avg", "min", "max", "stddev", "range", "absmax"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		parts := 1 + r.Intn(5)
		partials := make([]kv.Value, parts)
		var full kv.Value
		for i, x := range xs {
			partials[i%parts].Add(x, false)
			full.Add(x, false)
		}
		var merged kv.Value
		for _, p := range partials {
			merged.Merge(p)
		}
		for _, name := range names {
			op, err := Lookup(name)
			if err != nil {
				return false
			}
			a := op.Apply(merged, 0)
			b := op.Apply(full, 0)
			if len(a) != 1 || len(b) != 1 || math.Abs(a[0]-b[0]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilterPreFilterEquivalence: pre-filtering in a combiner then
// filtering again at the reducer yields the same survivors as filtering
// once at the reducer.
func TestQuickFilterPreFilterEquivalence(t *testing.T) {
	flt, _ := Lookup("filter_gt")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		thresh := r.NormFloat64()
		var full kv.Value
		parts := make([]kv.Value, 1+r.Intn(4))
		for i := 0; i < n; i++ {
			x := r.NormFloat64()
			full.Add(x, true)
			parts[i%len(parts)].Add(x, true)
		}
		var merged kv.Value
		for _, p := range parts {
			pf := PreFilter(flt, p, thresh)
			merged.Merge(pf)
		}
		a := flt.Apply(merged, thresh)
		b := flt.Apply(full, thresh)
		if merged.Count != full.Count || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
