package simcluster

import (
	"testing"

	"sidr/internal/sched"
)

func stragglerJob() Job {
	return alignedJob(64, 4, sched.NewHadoop(noHosts(64), 4), true)
}

func TestStragglersSlowTheJob(t *testing.T) {
	cfg := tinyConfig()
	plain := stragglerJob()
	plain.FetchAll = true
	r0, err := Simulate(cfg, plain)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StragglerProb = 0.1
	cfg.StragglerFactor = 5
	slow := stragglerJob()
	slow.FetchAll = true
	r1, err := Simulate(cfg, slow)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Stragglers == 0 {
		t.Fatal("no stragglers injected")
	}
	if !(r1.Stats.MapsDone > r0.Stats.MapsDone) {
		t.Fatalf("stragglers did not slow maps: %v vs %v", r1.Stats.MapsDone, r0.Stats.MapsDone)
	}
}

func TestSpeculationMitigatesStragglers(t *testing.T) {
	base := tinyConfig()
	base.StragglerProb = 0.1
	base.StragglerFactor = 8

	noSpec := stragglerJob()
	noSpec.FetchAll = true
	r0, err := Simulate(base, noSpec)
	if err != nil {
		t.Fatal(err)
	}

	spec := base
	spec.Speculation = true
	specJob := stragglerJob()
	specJob.FetchAll = true
	r1, err := Simulate(spec, specJob)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.SpeculativeWins == 0 {
		t.Fatal("no speculative wins recorded")
	}
	if !(r1.Stats.MapsDone < r0.Stats.MapsDone) {
		t.Fatalf("speculation did not help: %v vs %v", r1.Stats.MapsDone, r0.Stats.MapsDone)
	}
}

func TestSpeculationNoOpWithoutStragglers(t *testing.T) {
	cfg := tinyConfig()
	cfg.Speculation = true
	job := stragglerJob()
	job.FetchAll = true
	res, err := Simulate(cfg, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stragglers != 0 || res.Stats.SpeculativeWins != 0 {
		t.Fatalf("phantom stragglers: %+v", res.Stats)
	}
}
