package simcluster

import (
	"testing"

	"sidr/internal/sched"
)

// BenchmarkSimulate measures the discrete-event engine on a mid-size
// job: 512 Map and 64 Reduce tasks on the default 24-node testbed.
func BenchmarkSimulate(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := alignedDepGraph(512, 64)
		s, err := sched.NewSIDR(noHosts(512), g, nil)
		if err != nil {
			b.Fatal(err)
		}
		job := alignedJob(512, 64, s, false)
		if _, err := Simulate(cfg, job); err != nil {
			b.Fatal(err)
		}
	}
}
