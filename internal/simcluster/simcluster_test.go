package simcluster

import (
	"math"
	"testing"

	"sidr/internal/depgraph"
	"sidr/internal/sched"
	"sidr/internal/trace"
)

// tinyConfig is a fast, noise-free cluster for unit tests.
func tinyConfig() Config {
	return Config{
		Workers:          2,
		MapSlots:         2,
		ReduceSlots:      1,
		MapBase:          10,
		MapPerPoint:      0,
		LocalityPenalty:  2,
		ShuffleBandwidth: 1e6,
		ReduceBase:       5,
		ReducePerPair:    0,
		JitterFrac:       0,
		Seed:             1,
	}
}

// alignedJob builds m splits and r reduces where reduce l depends on the
// contiguous run of m/r splits starting at l*m/r.
func alignedJob(m, r int, sched sched.Scheduler, global bool) Job {
	job := Job{Scheduler: sched, GlobalBarrier: global, MapCostFactor: 1}
	for i := 0; i < m; i++ {
		job.Splits = append(job.Splits, Split{Points: 100, Bytes: 1000})
	}
	per := m / r
	for l := 0; l < r; l++ {
		var deps []int
		for i := l * per; i < (l+1)*per && i < m; i++ {
			deps = append(deps, i)
		}
		job.Reduces = append(job.Reduces, Reduce{Pairs: 10, InBytes: 1000, Deps: deps})
	}
	return job
}

// alignedDepGraph mirrors alignedJob's dependency structure as a
// depgraph.Graph for the SIDR scheduler.
func alignedDepGraph(m, r int) *depgraph.Graph {
	g := &depgraph.Graph{
		SplitToKB:     make([][]int, m),
		KBToSplits:    make([][]int, r),
		ExpectedCount: make([]int64, r),
		SplitPoints:   make([]int64, m),
	}
	per := m / r
	for i := 0; i < m; i++ {
		kb := i / per
		if kb >= r {
			kb = r - 1
		}
		g.SplitToKB[i] = []int{kb}
		g.KBToSplits[kb] = append(g.KBToSplits[kb], i)
	}
	return g
}

func noHosts(m int) []sched.MapInfo { return make([]sched.MapInfo, m) }

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}, Job{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Simulate(tinyConfig(), Job{}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestGlobalBarrierReducesAfterAllMaps(t *testing.T) {
	cfg := tinyConfig()
	job := alignedJob(8, 2, sched.NewHadoop(noHosts(8), 2), true)
	job.FetchAll = true
	res, err := Simulate(cfg, job)
	if err != nil {
		t.Fatal(err)
	}
	// 8 maps on 4 slots at 10s (with locality penalty 2 since no hosts
	// are local): 2 waves of 20s = 40s. No reduce may finish before then.
	if res.Stats.MapsDone != 40 {
		t.Fatalf("MapsDone = %v", res.Stats.MapsDone)
	}
	if res.Stats.FirstResult <= res.Stats.MapsDone {
		t.Fatalf("global barrier violated: first result %v before maps done %v", res.Stats.FirstResult, res.Stats.MapsDone)
	}
	if res.Stats.Connections != 8*2 {
		t.Fatalf("Connections = %d, want 16", res.Stats.Connections)
	}
}

func TestDependencyBarrierProducesEarlyResults(t *testing.T) {
	cfg := tinyConfig()
	g := alignedDepGraph(8, 2)
	s, err := sched.NewSIDR(noHosts(8), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	job := alignedJob(8, 2, s, false)
	res, err := Simulate(cfg, job)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce 0 depends only on splits 0-3 (first map wave): its result
	// must land before the last map finishes.
	if !(res.Stats.FirstResult < res.Stats.MapsDone) {
		t.Fatalf("no early result: first %v, maps done %v", res.Stats.FirstResult, res.Stats.MapsDone)
	}
	if res.Stats.Connections != 8 {
		t.Fatalf("Connections = %d, want 8 (Σ|I_ℓ|)", res.Stats.Connections)
	}
	if res.Trace.Len() != 10 {
		t.Fatalf("trace has %d entries", res.Trace.Len())
	}
}

func TestSIDRBeatsGlobalBarrierMakespan(t *testing.T) {
	// Overlap pays off when Reduce tasks outnumber Reduce slots: under
	// the global barrier all four reduces queue for the two slots after
	// the last Map; under the dependency barrier the first wave runs
	// during the Map phase.
	cfg := tinyConfig()
	cfg.ReduceBase = 30 // substantial reduce work makes overlap matter

	g := alignedDepGraph(8, 4)
	s, _ := sched.NewSIDR(noHosts(8), g, nil)
	sidrRes, err := Simulate(cfg, alignedJob(8, 4, s, false))
	if err != nil {
		t.Fatal(err)
	}
	hJob := alignedJob(8, 4, sched.NewHadoop(noHosts(8), 4), true)
	hJob.FetchAll = true
	hRes, err := Simulate(cfg, hJob)
	if err != nil {
		t.Fatal(err)
	}
	if !(sidrRes.Stats.Makespan < hRes.Stats.Makespan) {
		t.Fatalf("SIDR %v not faster than global %v", sidrRes.Stats.Makespan, hRes.Stats.Makespan)
	}
}

func TestLocalityReducesMapTime(t *testing.T) {
	cfg := tinyConfig()
	mkJob := func(local bool) Job {
		hosts := noHosts(4)
		if local {
			for i := range hosts {
				hosts[i] = sched.MapInfo{Hosts: []string{NodeName(i % cfg.Workers)}}
			}
		}
		job := Job{Scheduler: sched.NewHadoop(hosts, 1), GlobalBarrier: true, FetchAll: true, MapCostFactor: 1}
		for i := 0; i < 4; i++ {
			sp := Split{Points: 100, Bytes: 100}
			if local {
				sp.Hosts = []string{NodeName(i % cfg.Workers)}
			}
			job.Splits = append(job.Splits, sp)
		}
		job.Reduces = []Reduce{{Pairs: 1, InBytes: 100}}
		return job
	}
	localRes, err := Simulate(cfg, mkJob(true))
	if err != nil {
		t.Fatal(err)
	}
	remoteRes, err := Simulate(cfg, mkJob(false))
	if err != nil {
		t.Fatal(err)
	}
	if !(localRes.Stats.MapsDone < remoteRes.Stats.MapsDone) {
		t.Fatalf("locality had no effect: %v vs %v", localRes.Stats.MapsDone, remoteRes.Stats.MapsDone)
	}
	if localRes.Stats.LocalMaps == 0 || remoteRes.Stats.LocalMaps != 0 {
		t.Fatalf("LocalMaps = %d / %d", localRes.Stats.LocalMaps, remoteRes.Stats.LocalMaps)
	}
}

func TestMapCostFactorSlowsMaps(t *testing.T) {
	cfg := tinyConfig()
	base := alignedJob(4, 2, sched.NewHadoop(noHosts(4), 2), true)
	base.FetchAll = true
	r1, err := Simulate(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	slow := alignedJob(4, 2, sched.NewHadoop(noHosts(4), 2), true)
	slow.FetchAll = true
	slow.MapCostFactor = 2.35
	r2, err := Simulate(cfg, slow)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.Stats.MapsDone / r1.Stats.MapsDone
	if math.Abs(ratio-2.35) > 1e-9 {
		t.Fatalf("map cost factor ratio = %v", ratio)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	run := func() float64 {
		g := alignedDepGraph(16, 4)
		s, _ := sched.NewSIDR(noHosts(16), g, nil)
		res, err := Simulate(cfg, alignedJob(16, 4, s, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Makespan
	}
	if run() != run() {
		t.Fatal("same seed produced different makespans")
	}
	cfg.Seed = 99
	// Different seed should (almost surely) change the jittered result.
	if run() == func() float64 { cfg.Seed = 1; return run() }() {
		t.Log("seeds collided; not fatal but suspicious")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A SIDR-scheduled job where one split is referenced by no reduce:
	// the map never becomes eligible and the simulator must report it.
	g := &depgraph.Graph{
		SplitToKB:     [][]int{{0}, {}},
		KBToSplits:    [][]int{{0}},
		ExpectedCount: []int64{1},
		SplitPoints:   []int64{1, 1},
	}
	s, err := sched.NewSIDR(noHosts(2), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{
		Scheduler: s,
		Splits:    []Split{{Points: 1}, {Points: 1}},
		Reduces:   []Reduce{{Pairs: 1, Deps: []int{0}}},
	}
	if _, err := Simulate(tinyConfig(), job); err == nil {
		t.Fatal("stranded map not reported")
	}
}

func TestMoreReducersTrackMapCurve(t *testing.T) {
	// Figure 10's shape: with the dependency barrier, more Reduce tasks
	// move the Reduce completion curve closer to the Map completion
	// curve (and shrink time-to-first-result).
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	gap := func(r int) (first, makespan float64) {
		m := 96
		g := alignedDepGraph(m, r)
		s, err := sched.NewSIDR(noHosts(m), g, nil)
		if err != nil {
			t.Fatal(err)
		}
		job := alignedJob(m, r, s, false)
		for i := range job.Reduces {
			// Fixed total reduce work split across r tasks.
			job.Reduces[i].Pairs = int64(96000 / r)
			job.Reduces[i].InBytes = int64(9600000 / r)
		}
		res, err := Simulate(cfg, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.FirstResult, res.Stats.Makespan
	}
	f4, m4 := gap(4)
	f24, m24 := gap(24)
	if !(f24 < f4) {
		t.Fatalf("first result did not improve: %v -> %v", f4, f24)
	}
	if !(m24 <= m4) {
		t.Fatalf("makespan did not improve: %v -> %v", m4, m24)
	}
}

func TestNodes(t *testing.T) {
	ns := Nodes(3)
	if len(ns) != 3 || ns[0] != "node00" || ns[2] != "node02" {
		t.Fatalf("Nodes = %v", ns)
	}
}

var _ = trace.Map // keep the trace import for the helper types
