// Package simcluster is a deterministic discrete-event model of the
// paper's evaluation testbed: 24 worker nodes with 4 Map and 3 Reduce
// slots each, single-GigE networking, and HDFS-style data locality. It
// executes a job's *real* scheduling and dependency structure — the same
// sched.Scheduler policies and depgraph output the in-process engine uses
// — while advancing virtual time, so cluster-scale completion curves
// (Figures 9-13) can be regenerated on one machine.
//
// The duration model is intentionally simple and fully documented:
//
//	mapTime    = (MapBase + MapPerPoint·points) · costFactor · locality · jitter
//	reduceTime = shuffleTail + ReduceBase + ReducePerPair·pairs + output
//
// where shuffleTail is the fetch work that could not be overlapped with
// waiting: one dependency's worth of bytes when the Reduce task was
// assigned before its barrier cleared (prefetching hid the rest), or all
// of its bytes when it was assigned late (nothing could be prefetched).
package simcluster

import (
	"fmt"
	"math"
	"math/rand"

	"sidr/internal/sched"
	"sidr/internal/simevent"
	"sidr/internal/trace"
)

// Config describes the cluster and its cost model.
type Config struct {
	// Workers is the number of DataNode/TaskTracker nodes (paper: 24).
	Workers int
	// MapSlots and ReduceSlots are per-node task slots (paper: 4 and 3).
	MapSlots    int
	ReduceSlots int

	// MapBase and MapPerPoint set Map task duration (seconds,
	// seconds/point).
	MapBase     float64
	MapPerPoint float64
	// LocalityPenalty multiplies Map duration when the split is not
	// node-local (remote HDFS read).
	LocalityPenalty float64
	// JitterFrac is the +/- fractional duration noise applied per task
	// (straggler model); 0 disables noise.
	JitterFrac float64
	// StragglerProb makes a Map task a straggler with this probability,
	// running StragglerFactor× slower — the long-tail behaviour Hadoop's
	// speculative execution targets. 0 disables stragglers.
	StragglerProb float64
	// StragglerFactor is the straggler slowdown multiple (default 4 when
	// StragglerProb > 0).
	StragglerFactor float64
	// Speculation enables Hadoop-style speculative execution: when the
	// Map phase is nearly drained and a running Map task has taken
	// longer than SpeculationThreshold× the typical duration, a backup
	// copy runs and the earliest finisher wins. SIDR inherits this
	// unchanged; it is orthogonal to the dependency barrier.
	Speculation bool
	// SpeculationThreshold is the slowdown multiple that triggers a
	// backup copy (default 1.5).
	SpeculationThreshold float64

	// ShuffleBandwidth is bytes/second a Reduce task fetches at.
	ShuffleBandwidth float64
	// ConnSetup is the per-shuffle-connection setup cost in seconds;
	// with MaxFetchConcurrency it models §4.6's serialisation of
	// communication when a Reduce task must contact thousands of Map
	// tasks. Zero disables connection costs.
	ConnSetup float64
	// MaxFetchConcurrency bounds a Reduce task's concurrent fetch
	// streams (Hadoop's default is 10); <= 0 means unbounded.
	MaxFetchConcurrency int
	// ReduceBase and ReducePerPair set Reduce processing time.
	ReduceBase    float64
	ReducePerPair float64
	// OutputTime converts output bytes to commit time; nil means free.
	OutputTime func(bytes int64) float64

	// Seed drives the deterministic jitter.
	Seed int64
}

// DefaultConfig returns the paper-testbed topology with a cost model
// calibrated so Query 1's curves land in the same regime as Figure 9
// (map phase ~1,100 s for SciHadoop-style execution at 22 reducers).
func DefaultConfig() Config {
	return Config{
		Workers:          24,
		MapSlots:         4,
		ReduceSlots:      3,
		MapBase:          2.0,
		MapPerPoint:      8.0e-7,
		LocalityPenalty:  1.3,
		JitterFrac:       0.08,
		ShuffleBandwidth: 80e6,
		ReduceBase:       1.0,
		ReducePerPair:    1.2e-6,
		Seed:             1,
	}
}

// Split is one Map task's workload.
type Split struct {
	// Points is the number of source points the task reads.
	Points int64
	// Bytes is the split's on-disk size (locality/shuffle accounting).
	Bytes int64
	// Hosts lists nodes holding the split's blocks.
	Hosts []string
}

// Reduce is one Reduce task's workload.
type Reduce struct {
	// Pairs is the number of intermediate pairs the task merges.
	Pairs int64
	// InBytes is the shuffled input volume.
	InBytes int64
	// OutBytes is the committed output volume.
	OutBytes int64
	// Deps lists the Map tasks the keyblock depends on (I_ℓ). Under a
	// global barrier it is ignored: the barrier is all Map tasks.
	Deps []int
}

// Job binds workloads to a scheduling policy and barrier mode.
type Job struct {
	Splits  []Split
	Reduces []Reduce
	// Scheduler dispenses tasks (sched.Hadoop or sched.SIDR).
	Scheduler sched.Scheduler
	// GlobalBarrier makes every Reduce wait for all Maps (stock
	// semantics); false uses each Reduce's Deps.
	GlobalBarrier bool
	// MapCostFactor scales Map durations — >1 models stock Hadoop's
	// byte-oriented splits reading data it cannot align to records
	// (SciHadoop's headline improvement).
	MapCostFactor float64
	// FetchAll makes every Reduce contact every Map during shuffle
	// (stock Hadoop); false contacts only Deps (SIDR). Affects
	// connection accounting and, with Config.ConnSetup, shuffle time.
	FetchAll bool

	// Failure optionally injects Reduce-task failures to study the §6
	// recovery trade-off.
	Failure *FailureModel
}

// FailureModel parametrises the §6 failure-recovery study: stock Hadoop
// persists all intermediate data (slowing every Map task) so a failed
// Reduce task just refetches; SIDR's proposed alternative skips
// persistence and re-executes only the failed task's I_ℓ Map subset.
type FailureModel struct {
	// Prob is the per-Reduce-task failure probability.
	Prob float64
	// Recompute selects the no-persist strategy: Map tasks run without
	// the persistence overhead, and recovery re-executes the failed
	// task's dependencies (charged to the recovering node's Map slots).
	// False models stock persist-and-refetch.
	Recompute bool
	// PersistOverhead is the fractional Map slowdown paid for persisting
	// intermediate data (applied only when Recompute is false).
	PersistOverhead float64
}

// Stats aggregates a simulated run.
type Stats struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// FirstResult is the first Reduce commit time.
	FirstResult float64
	// MapsDone is when the last Map task finished.
	MapsDone float64
	// Connections counts shuffle fetches (Table 3's metric).
	Connections int64
	// LocalMaps counts node-local Map executions.
	LocalMaps int
	// FailedReduces counts Reduce tasks that failed and recovered.
	FailedReduces int
	// Stragglers counts Map tasks that ran at the straggler slowdown.
	Stragglers int
	// SpeculativeWins counts stragglers whose backup copy finished
	// first under speculative execution.
	SpeculativeWins int
}

// Result carries the trace and stats of one simulated run.
type Result struct {
	Trace trace.Trace
	Stats Stats
}

// NodeName returns the canonical name of worker i, shared with the HDFS
// namespace so locality hints resolve.
func NodeName(i int) string { return fmt.Sprintf("node%02d", i) }

// Nodes returns the canonical node names for a worker count.
func Nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = NodeName(i)
	}
	return out
}

// reduceState tracks one Reduce task's lifecycle in the simulator.
type reduceState struct {
	assigned   bool
	assignedAt float64
	node       int
	remaining  int  // unmet dependencies
	processing bool // barrier met, completion scheduled
	done       bool
}

// Simulate runs the job to completion and returns its trace and stats.
func Simulate(cfg Config, job Job) (*Result, error) {
	if cfg.Workers <= 0 || cfg.MapSlots <= 0 || cfg.ReduceSlots <= 0 {
		return nil, fmt.Errorf("simcluster: invalid topology %d/%d/%d", cfg.Workers, cfg.MapSlots, cfg.ReduceSlots)
	}
	if job.Scheduler == nil {
		return nil, fmt.Errorf("simcluster: job needs a scheduler")
	}
	if job.MapCostFactor <= 0 {
		job.MapCostFactor = 1
	}
	eng := simevent.New()
	res := &Result{}
	res.Stats.FirstResult = math.NaN()

	nMaps := len(job.Splits)
	nReduces := len(job.Reduces)
	freeMap := make([]int, cfg.Workers)
	freeReduce := make([]int, cfg.Workers)
	for i := range freeMap {
		freeMap[i] = cfg.MapSlots
		freeReduce[i] = cfg.ReduceSlots
	}
	mapDone := make([]bool, nMaps)
	mapsRemaining := nMaps
	reduces := make([]reduceState, nReduces)
	// dependents[m] lists reduces whose barrier includes map m.
	dependents := make([][]int, nMaps)
	for r, rd := range job.Reduces {
		if job.GlobalBarrier {
			reduces[r].remaining = nMaps
			continue
		}
		reduces[r].remaining = len(rd.Deps)
		for _, m := range rd.Deps {
			dependents[m] = append(dependents[m], r)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	jitter := func() float64 {
		if cfg.JitterFrac <= 0 {
			return 1
		}
		return 1 + cfg.JitterFrac*(2*rng.Float64()-1)
	}

	var scheduleNode func(node int)

	// startReduceProcessing schedules the post-barrier phase of reduce r.
	startReduceProcessing := func(r int) {
		st := &reduces[r]
		if st.processing || st.done || !st.assigned || st.remaining > 0 {
			return
		}
		st.processing = true
		rd := job.Reduces[r]
		deps := int64(len(rd.Deps))
		conns := deps
		if job.GlobalBarrier {
			deps = int64(nMaps)
		}
		if job.FetchAll {
			conns = int64(nMaps)
		}
		if deps == 0 {
			deps = 1
		}
		// Shuffle tail: prefetching while waiting hides all but the last
		// dependency's bytes; a late-assigned task prefetched nothing.
		tailBytes := rd.InBytes / deps
		if st.assignedAt >= eng.Now() {
			tailBytes = rd.InBytes
		}
		var shuffle float64
		if cfg.ShuffleBandwidth > 0 {
			shuffle = float64(tailBytes) / cfg.ShuffleBandwidth
		}
		// Connection setup, serialised in MaxFetchConcurrency batches
		// (§4.6's "undesirable serialization of communication").
		if cfg.ConnSetup > 0 && conns > 0 {
			batches := conns
			if cfg.MaxFetchConcurrency > 0 {
				batches = (conns + int64(cfg.MaxFetchConcurrency) - 1) / int64(cfg.MaxFetchConcurrency)
			}
			shuffle += float64(batches) * cfg.ConnSetup
		}
		processing := cfg.ReduceBase + cfg.ReducePerPair*float64(rd.Pairs)
		dur := shuffle + processing
		if cfg.OutputTime != nil {
			dur += cfg.OutputTime(rd.OutBytes)
		}
		dur *= jitter()
		// Failure injection: the task fails once and recovers, either by
		// refetching persisted intermediate data or by re-executing its
		// Map dependencies on this node's Map slots (§6).
		if fm := job.Failure; fm != nil && rng.Float64() < fm.Prob {
			res.Stats.FailedReduces++
			var recovery float64
			if cfg.ShuffleBandwidth > 0 {
				recovery += float64(rd.InBytes) / cfg.ShuffleBandwidth
			}
			recovery += processing
			if fm.Recompute {
				var remap float64
				for _, m := range rd.Deps {
					sp := job.Splits[m]
					remap += (cfg.MapBase + cfg.MapPerPoint*float64(sp.Points)) * job.MapCostFactor
				}
				recovery += remap / float64(cfg.MapSlots)
			}
			dur += recovery
		}
		node := st.node
		eng.After(dur, func() {
			st.done = true
			res.Trace.Add(trace.Reduce, r, eng.Now())
			if math.IsNaN(res.Stats.FirstResult) {
				res.Stats.FirstResult = eng.Now()
			}
			freeReduce[node]++
			scheduleNode(node)
			// Dispensing the next reduce may unlock maps on any node.
			for n := 0; n < cfg.Workers; n++ {
				scheduleNode(n)
			}
		})
	}

	finishMap := func(m, node int) {
		mapDone[m] = true
		mapsRemaining--
		res.Trace.Add(trace.Map, m, eng.Now())
		if mapsRemaining == 0 {
			res.Stats.MapsDone = eng.Now()
		}
		if job.GlobalBarrier {
			if mapsRemaining == 0 {
				for r := range reduces {
					reduces[r].remaining = 0
					startReduceProcessing(r)
				}
			} else {
				// remaining counts are bulk-resolved above.
			}
		} else {
			for _, r := range dependents[m] {
				reduces[r].remaining--
				startReduceProcessing(r)
			}
		}
		freeMap[node]++
		scheduleNode(node)
	}

	scheduleNode = func(node int) {
		host := NodeName(node)
		// Reduce slots first: SIDR schedules Reduce tasks ahead of the
		// Map tasks they depend on; for stock Hadoop the order is
		// irrelevant because Map eligibility is unconditional.
		for freeReduce[node] > 0 {
			r := job.Scheduler.NextReduce()
			if r < 0 {
				break
			}
			freeReduce[node]--
			st := &reduces[r]
			st.assigned = true
			st.assignedAt = eng.Now()
			st.node = node
			// Count this task's shuffle connections at assignment.
			if job.FetchAll {
				res.Stats.Connections += int64(nMaps)
			} else {
				res.Stats.Connections += int64(len(job.Reduces[r].Deps))
			}
			if st.remaining == 0 {
				startReduceProcessing(r)
			}
		}
		for freeMap[node] > 0 {
			m := job.Scheduler.NextMap(host)
			if m < 0 {
				break
			}
			freeMap[node]--
			sp := job.Splits[m]
			locality := cfg.LocalityPenalty
			for _, h := range sp.Hosts {
				if h == host {
					locality = 1
					res.Stats.LocalMaps++
					break
				}
			}
			if locality == 0 {
				locality = 1
			}
			dur := (cfg.MapBase + cfg.MapPerPoint*float64(sp.Points)) * job.MapCostFactor * locality * jitter()
			if fm := job.Failure; fm != nil && !fm.Recompute {
				// Persisting intermediate data to disk slows every Map
				// task (the cost §6 proposes to eliminate).
				dur *= 1 + fm.PersistOverhead
			}
			if cfg.StragglerProb > 0 && rng.Float64() < cfg.StragglerProb {
				res.Stats.Stragglers++
				factor := cfg.StragglerFactor
				if factor <= 1 {
					factor = 4
				}
				straggled := dur * factor
				if cfg.Speculation {
					// A backup copy launches once the task exceeds the
					// threshold and runs at normal speed; the earliest
					// finisher wins. (The backup's slot is modelled as
					// opportunistic spare capacity.)
					threshold := cfg.SpeculationThreshold
					if threshold <= 0 {
						threshold = 1.5
					}
					backup := dur*threshold + dur
					if backup < straggled {
						res.Stats.SpeculativeWins++
						straggled = backup
					}
				}
				dur = straggled
			}
			mID := m
			eng.After(dur, func() { finishMap(mID, node) })
		}
	}

	// Kick off: fill every node's slots at t=0.
	for n := 0; n < cfg.Workers; n++ {
		scheduleNode(n)
	}
	eng.Run()

	if mapsRemaining > 0 || anyReduceUnfinished(reduces) {
		return nil, fmt.Errorf("simcluster: deadlock — %d maps and some reduces unfinished (scheduler/barrier mismatch?)", mapsRemaining)
	}
	res.Stats.Makespan = res.Trace.Makespan()
	return res, nil
}

func anyReduceUnfinished(rs []reduceState) bool {
	for i := range rs {
		if !rs[i].done {
			return true
		}
	}
	return false
}
