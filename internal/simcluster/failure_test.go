package simcluster

import (
	"testing"

	"sidr/internal/sched"
)

func TestConnSetupSerialisation(t *testing.T) {
	// §4.6: with a per-connection cost and a concurrency cap, a Reduce
	// task that must contact every Map pays for ceil(M/10) serial
	// batches; a dependency-only fetch pays almost nothing.
	cfg := tinyConfig()
	cfg.ConnSetup = 1.0
	cfg.MaxFetchConcurrency = 10

	mk := func(fetchAll bool) float64 {
		var job Job
		if fetchAll {
			job = alignedJob(40, 2, sched.NewHadoop(noHosts(40), 2), true)
			job.FetchAll = true
		} else {
			g := alignedDepGraph(40, 2)
			s, err := sched.NewSIDR(noHosts(40), g, nil)
			if err != nil {
				t.Fatal(err)
			}
			job = alignedJob(40, 2, s, false)
		}
		res, err := Simulate(cfg, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Makespan
	}
	all := mk(true)
	deps := mk(false)
	// FetchAll pays ceil(40/10)=4s of setup per reduce; deps pay
	// ceil(20/10)=2s — and the dependency barrier saves more on top.
	if !(deps < all) {
		t.Fatalf("connection setup had no effect: deps %v vs all %v", deps, all)
	}
}

func TestFailureModelPersistOverheadSlowsMaps(t *testing.T) {
	cfg := tinyConfig()
	base := alignedJob(8, 2, sched.NewHadoop(noHosts(8), 2), true)
	base.FetchAll = true
	r0, err := Simulate(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	persisted := alignedJob(8, 2, sched.NewHadoop(noHosts(8), 2), true)
	persisted.FetchAll = true
	persisted.Failure = &FailureModel{Prob: 0, Recompute: false, PersistOverhead: 0.5}
	r1, err := Simulate(cfg, persisted)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1.Stats.MapsDone / r0.Stats.MapsDone
	if ratio < 1.49 || ratio > 1.51 {
		t.Fatalf("persist overhead ratio = %v, want 1.5", ratio)
	}
	// Recompute mode pays no persistence overhead.
	recomp := alignedJob(8, 2, sched.NewHadoop(noHosts(8), 2), true)
	recomp.FetchAll = true
	recomp.Failure = &FailureModel{Prob: 0, Recompute: true, PersistOverhead: 0.5}
	r2, err := Simulate(cfg, recomp)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.MapsDone != r0.Stats.MapsDone {
		t.Fatalf("recompute mode paid persistence: %v vs %v", r2.Stats.MapsDone, r0.Stats.MapsDone)
	}
}

func TestFailureRecoveryCosts(t *testing.T) {
	cfg := tinyConfig()
	cfg.JitterFrac = 0
	run := func(recompute bool) *Result {
		g := alignedDepGraph(8, 2)
		s, err := sched.NewSIDR(noHosts(8), g, nil)
		if err != nil {
			t.Fatal(err)
		}
		job := alignedJob(8, 2, s, false)
		job.Failure = &FailureModel{Prob: 1.0, Recompute: recompute, PersistOverhead: 0.1}
		res, err := Simulate(cfg, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	refetch := run(false)
	recompute := run(true)
	if refetch.Stats.FailedReduces != 2 || recompute.Stats.FailedReduces != 2 {
		t.Fatalf("failures = %d / %d, want 2 each", refetch.Stats.FailedReduces, recompute.Stats.FailedReduces)
	}
	// With every task failing, recompute pays re-executed Map work on
	// top of the refetch cost; it must be strictly slower.
	if !(recompute.Stats.Makespan > refetch.Stats.Makespan) {
		t.Fatalf("recompute %v not slower than refetch %v at 100%% failures",
			recompute.Stats.Makespan, refetch.Stats.Makespan)
	}
}

func TestFailureFreeRunsUnaffected(t *testing.T) {
	cfg := tinyConfig()
	g := alignedDepGraph(8, 2)
	s, _ := sched.NewSIDR(noHosts(8), g, nil)
	plain, err := Simulate(cfg, alignedJob(8, 2, s, false))
	if err != nil {
		t.Fatal(err)
	}
	g2 := alignedDepGraph(8, 2)
	s2, _ := sched.NewSIDR(noHosts(8), g2, nil)
	job := alignedJob(8, 2, s2, false)
	job.Failure = &FailureModel{Prob: 0, Recompute: true}
	withModel, err := Simulate(cfg, job)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Makespan != withModel.Stats.Makespan {
		t.Fatalf("zero-probability failure model changed the run: %v vs %v",
			plain.Stats.Makespan, withModel.Stats.Makespan)
	}
}
