package depgraph

import (
	"testing"

	"sidr/internal/partition"
	"sidr/internal/query"
)

// BenchmarkBuildPaperScale measures dependency planning for Query 1 at
// full paper geometry: 2,781 splits × their K' tile ranges against 22
// partition+ keyblocks — the "small IO cost to job submission" §3.2.1
// weighs against per-task recomputation.
func BenchmarkBuildPaperScale(b *testing.B) {
	q, err := query.Parse("median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}")
	if err != nil {
		b.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		b.Fatal(err)
	}
	pp, err := partition.NewPartitionPlus(space, 22, 0)
	if err != nil {
		b.Fatal(err)
	}
	splits, err := q.Input.SplitDimCount(0, 2781)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Build(q, splits, pp)
		if err != nil {
			b.Fatal(err)
		}
		if g.TotalPoints() != q.Input.Size() {
			b.Fatal("wrong coverage")
		}
	}
}
