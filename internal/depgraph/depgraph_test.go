package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// weeklyQuery is the paper's running example: weekly averages over a
// {364, 10} dataset with extraction {7, 5} (trimmed to full weeks).
func weeklyQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.Parse("avg temp[0,0 : 364,10] es {7,5}")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// rowSplits slices the input into contiguous row bands.
func rowSplits(input coords.Slab, rows int64) []coords.Slab {
	parts, err := input.SplitDim(0, rows)
	if err != nil {
		panic(err)
	}
	return parts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestPartitionPlusAlignedDependencies(t *testing.T) {
	q := weeklyQuery(t)
	// K'^T = {52, 2}; 4 contiguous keyblocks of 26 keys each.
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := partition.NewPartitionPlus(space, 4, 26)
	if err != nil {
		t.Fatal(err)
	}
	// 4 splits of 91 rows = 13 weeks each: dependencies must align 1:1.
	splits := rowSplits(q.Input, 91)
	g, err := Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSplits() != 4 || g.NumKeyblocks() != 4 {
		t.Fatalf("graph %dx%d", g.NumSplits(), g.NumKeyblocks())
	}
	for l := 0; l < 4; l++ {
		deps := g.Deps(l)
		if len(deps) != 1 || deps[0] != l {
			t.Fatalf("keyblock %d deps = %v, want [%d] (natural alignment, Figure 8b)", l, deps, l)
		}
	}
	if g.SIDRConnections() != 4 {
		t.Fatalf("SIDR connections = %d", g.SIDRConnections())
	}
	if g.HadoopConnections() != 16 {
		t.Fatalf("Hadoop connections = %d", g.HadoopConnections())
	}
	if g.MaxDeps() != 1 {
		t.Fatalf("MaxDeps = %d", g.MaxDeps())
	}
}

func TestModuloCreatesGlobalDependencies(t *testing.T) {
	q := weeklyQuery(t)
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	m, err := partition.NewModulo(4, partition.TileIndexEncoding{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	splits := rowSplits(q.Input, 91)
	g, err := Build(q, splits, m)
	if err != nil {
		t.Fatal(err)
	}
	// §3.4: modulo scatters keys, so every keyblock depends on every
	// split.
	for l := 0; l < 4; l++ {
		if len(g.Deps(l)) != 4 {
			t.Fatalf("keyblock %d deps = %v, want all 4 (global dependency)", l, g.Deps(l))
		}
	}
	if g.SIDRConnections() != g.HadoopConnections() {
		t.Fatalf("modulo should degenerate to global: %d vs %d", g.SIDRConnections(), g.HadoopConnections())
	}
}

func TestExpectedCounts(t *testing.T) {
	q := weeklyQuery(t)
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 4, 26)
	splits := rowSplits(q.Input, 91)
	g, err := Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	// Every input point lands in exactly one keyblock.
	if g.TotalPoints() != q.Input.Size() {
		t.Fatalf("TotalPoints = %d, want %d", g.TotalPoints(), q.Input.Size())
	}
	// Balanced alignment: each keyblock receives a quarter of the input.
	want := q.Input.Size() / 4
	for l, c := range g.ExpectedCount {
		if c != want {
			t.Fatalf("keyblock %d expects %d pairs, want %d", l, c, want)
		}
	}
	for i, n := range g.SplitPoints {
		if n != splits[i].Size() {
			t.Fatalf("split %d points = %d, want %d", i, n, splits[i].Size())
		}
	}
}

func TestSplitsOutsideQueryInput(t *testing.T) {
	// Query covers only the first half of the dataset; second-half splits
	// must contribute nothing.
	q, err := query.Parse("avg temp[0,0 : 50,10] es {5,5}")
	if err != nil {
		t.Fatal(err)
	}
	dataset := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(100, 10))
	splits := rowSplits(dataset, 25)
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 2, 0)
	g, err := Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.SplitToKB[2]) != 0 || len(g.SplitToKB[3]) != 0 {
		t.Fatalf("out-of-query splits have deps: %v", g.SplitToKB)
	}
	if g.SplitPoints[2] != 0 || g.SplitPoints[3] != 0 {
		t.Fatal("out-of-query splits counted points")
	}
	if g.TotalPoints() != q.Input.Size() {
		t.Fatalf("TotalPoints = %d", g.TotalPoints())
	}
}

func TestStridedQueryCounts(t *testing.T) {
	// Shape 2 stride 4 over 16 rows: tiles cover rows 0-1, 4-5, 8-9,
	// 12-13; half the points are in gaps.
	q, err := query.Parse("avg t[0 : 16] es {2} stride {4}")
	if err != nil {
		t.Fatal(err)
	}
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 2, 0)
	splits := rowSplits(q.Input, 4)
	g, err := Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalPoints() != 8 {
		t.Fatalf("TotalPoints = %d, want 8 (gaps excluded)", g.TotalPoints())
	}
}

func TestSplitEntirelyInGap(t *testing.T) {
	// Shape 1 stride 4: splits covering rows 1-3 are all gap.
	q, err := query.Parse("avg t[0 : 16] es {1} stride {4}")
	if err != nil {
		t.Fatal(err)
	}
	gapSplit := coords.MustSlab(coords.NewCoord(1), coords.NewShape(3))
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 2, 0)
	g, err := Build(q, []coords.Slab{gapSplit}, pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.SplitToKB[0]) != 0 {
		t.Fatalf("gap split has deps: %v", g.SplitToKB[0])
	}
}

func TestDependencyBarrierMet(t *testing.T) {
	q := weeklyQuery(t)
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 4, 26)
	g, err := Build(q, rowSplits(q.Input, 91), pp)
	if err != nil {
		t.Fatal(err)
	}
	done := map[int]bool{0: true}
	if !g.DependencyBarrierMet(0, func(s int) bool { return done[s] }) {
		t.Fatal("keyblock 0 should be unblocked by split 0 alone (Figure 4b)")
	}
	if g.DependencyBarrierMet(3, func(s int) bool { return done[s] }) {
		t.Fatal("keyblock 3 unblocked without its dependency")
	}
}

func TestQuery1PaperScaleGeometry(t *testing.T) {
	// The planner math must run at full paper scale: Query 1 over
	// {7200,360,720,50} with ES {2,36,36,10}, 2,781 splits (the paper's
	// count for 348 GB / 128 MB), 22 reducers. This exercises the exact
	// geometry behind Figures 9-10 and Table 3.
	if testing.Short() {
		t.Skip("paper-scale geometry in -short mode")
	}
	q, err := query.Parse("median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}")
	if err != nil {
		t.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := partition.NewPartitionPlus(space, 22, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous 3-row bands along dim 0 give 2,400 splits — the same
	// order of magnitude as the paper's 2,781 (whose exact count depends
	// on HDFS byte layout).
	splits, err := q.Input.SplitDim(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalPoints() != q.Input.Size() {
		t.Fatalf("TotalPoints = %d, want %d", g.TotalPoints(), q.Input.Size())
	}
	// SIDR connections must be dramatically below Hadoop's M×R.
	sidr, hadoop := g.SIDRConnections(), g.HadoopConnections()
	if sidr >= hadoop/10 {
		t.Fatalf("SIDR connections %d not ≪ Hadoop %d", sidr, hadoop)
	}
	// Contiguous keyblocks over a leading-dimension split: each split
	// feeds at most 2 keyblocks (it straddles at most one boundary).
	for i, kbs := range g.SplitToKB {
		if len(kbs) > 2 {
			t.Fatalf("split %d feeds %d keyblocks: %v", i, len(kbs), kbs)
		}
	}
}

// TestQuickInversionConsistent: KBToSplits is exactly the inverse
// relation of SplitToKB for random queries, splits, and partitioners.
func TestQuickInversionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := int64(8 + r.Intn(40))
		cols := int64(1 + r.Intn(8))
		q := &query.Query{
			Operator:   "sum",
			Variable:   "v",
			Input:      coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(rows, cols)),
			Extraction: coords.MustExtraction(coords.NewShape(1+int64(r.Intn(4)), 1+int64(r.Intn(3))), nil),
		}
		space, err := q.IntermediateSpace()
		if err != nil {
			return false
		}
		reducers := 1 + r.Intn(5)
		var p partition.Partitioner
		if r.Intn(2) == 0 {
			p, err = partition.NewPartitionPlus(space, reducers, 1+r.Int63n(20))
		} else {
			p, err = partition.NewModulo(reducers, partition.TileIndexEncoding{Space: space})
		}
		if err != nil {
			return false
		}
		splits := rowSplits(q.Input, 1+int64(r.Intn(int(rows))))
		g, err := Build(q, splits, p)
		if err != nil {
			return false
		}
		// Forward edges all appear inverted...
		for s, kbs := range g.SplitToKB {
			for _, kb := range kbs {
				if !containsInt(g.KBToSplits[kb], s) {
					return false
				}
			}
		}
		// ...and no phantom inverse edges exist.
		for kb, ss := range g.KBToSplits {
			for _, s := range ss {
				if !containsInt(g.SplitToKB[s], kb) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestQuickCountsPartitionIndependent: the total source-pair count is
// invariant across partitioners — partitioning only routes pairs.
func TestQuickCountsPartitionIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := int64(10 + r.Intn(50))
		cols := int64(1 + r.Intn(10))
		es := int64(1 + r.Intn(4))
		q := &query.Query{
			Operator:   "avg",
			Variable:   "v",
			Input:      coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(rows, cols)),
			Extraction: coords.MustExtraction(coords.NewShape(es, 1), nil),
		}
		space, err := q.IntermediateSpace()
		if err != nil {
			return false
		}
		reducers := 1 + r.Intn(6)
		pp, err := partition.NewPartitionPlus(space, reducers, 0)
		if err != nil {
			return false
		}
		mod, err := partition.NewModulo(reducers, partition.TileIndexEncoding{Space: space})
		if err != nil {
			return false
		}
		splits := rowSplits(q.Input, 1+int64(r.Intn(int(rows))))
		g1, err := Build(q, splits, pp)
		if err != nil {
			return false
		}
		g2, err := Build(q, splits, mod)
		if err != nil {
			return false
		}
		return g1.TotalPoints() == g2.TotalPoints() && g1.TotalPoints() == q.Input.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
