// Package depgraph computes the Map↔Reduce data-dependency relation SIDR
// schedules with (§3.2): which keyblocks each input split contributes
// intermediate data to, and — inverted — the set I_ℓ of splits each
// keyblock ℓ depends on. A Reduce task may start as soon as every split
// in its I_ℓ has been processed, instead of waiting on the global
// MapReduce barrier.
//
// The package also computes the expected source-pair count per keyblock,
// backing the kv-count-annotation barrier (the paper's §3.2.1
// "approach 2", which SIDR implements to validate approach 1).
package depgraph

import (
	"fmt"

	"sidr/internal/coords"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// Graph is the dependency relation for one query execution.
type Graph struct {
	// SplitToKB[i] lists, in ascending order, the keyblocks split i
	// produces data for.
	SplitToKB [][]int
	// KBToSplits[l] is I_ℓ: the splits keyblock l depends on, ascending.
	KBToSplits [][]int
	// ExpectedCount[l] is the number of source ⟨k,v⟩ pairs that map to
	// keyblock l — the tally target for the annotation barrier.
	ExpectedCount []int64
	// SplitPoints[i] is the number of source points in split i that fall
	// inside the query input (and inside extraction tiles, for strided
	// queries).
	SplitPoints []int64
}

// Build computes the dependency graph for the query over the given
// splits under the given partitioner. Splits are slabs in the input
// keyspace K. Splits that fall entirely outside the query input (or
// entirely in stride gaps) contribute to no keyblock and get an empty
// dependency list.
func Build(q *query.Query, splits []coords.Slab, p partition.Partitioner) (*Graph, error) {
	if q == nil || p == nil {
		return nil, fmt.Errorf("depgraph: nil query or partitioner")
	}
	r := p.NumKeyblocks()
	g := &Graph{
		SplitToKB:     make([][]int, len(splits)),
		KBToSplits:    make([][]int, r),
		ExpectedCount: make([]int64, r),
		SplitPoints:   make([]int64, len(splits)),
	}
	for i, split := range splits {
		in, ok := split.Intersect(q.Input)
		if !ok {
			continue
		}
		tiles, err := q.Extraction.TileRange(in)
		if err != nil {
			// The split's live region sits entirely inside stride gaps.
			continue
		}
		touched := make(map[int]int64) // keyblock -> source pairs from this split
		var iterErr error
		tiles.Each(func(kp coords.Coord) bool {
			tile, err := q.Extraction.Tile(kp)
			if err != nil {
				iterErr = err
				return false
			}
			overlap, ok := tile.Intersect(in)
			if !ok {
				return true // strided gap tile grazed by TileRange bounds
			}
			kb, err := p.Partition(kp)
			if err != nil {
				iterErr = err
				return false
			}
			touched[kb] += overlap.Size()
			return true
		})
		if iterErr != nil {
			return nil, fmt.Errorf("depgraph: split %d: %w", i, iterErr)
		}
		kbs := make([]int, 0, len(touched))
		for kb, n := range touched {
			kbs = append(kbs, kb)
			g.ExpectedCount[kb] += n
			g.SplitPoints[i] += n
		}
		sortInts(kbs)
		g.SplitToKB[i] = kbs
	}
	// Invert.
	for i, kbs := range g.SplitToKB {
		for _, kb := range kbs {
			g.KBToSplits[kb] = append(g.KBToSplits[kb], i)
		}
	}
	return g, nil
}

// Builder accumulates per-(split, keyblock) source-pair contributions
// and finalizes them into a Graph. Multi-input planners (internal/join)
// use it to derive I_ℓ as the union of contributing splits across all
// inputs, with splits addressed in one combined index space.
type Builder struct {
	contribs []map[int]int64
	numKB    int
}

// NewBuilder returns a builder for the given split and keyblock counts.
func NewBuilder(numSplits, numKeyblocks int) *Builder {
	return &Builder{contribs: make([]map[int]int64, numSplits), numKB: numKeyblocks}
}

// Add records n source pairs flowing from split to keyblock kb.
func (b *Builder) Add(split, kb int, n int64) {
	if n <= 0 {
		return
	}
	m := b.contribs[split]
	if m == nil {
		m = make(map[int]int64)
		b.contribs[split] = m
	}
	m[kb] += n
}

// Graph finalizes the accumulated contributions.
func (b *Builder) Graph() *Graph {
	g := &Graph{
		SplitToKB:     make([][]int, len(b.contribs)),
		KBToSplits:    make([][]int, b.numKB),
		ExpectedCount: make([]int64, b.numKB),
		SplitPoints:   make([]int64, len(b.contribs)),
	}
	for i, touched := range b.contribs {
		kbs := make([]int, 0, len(touched))
		for kb, n := range touched {
			kbs = append(kbs, kb)
			g.ExpectedCount[kb] += n
			g.SplitPoints[i] += n
		}
		sortInts(kbs)
		g.SplitToKB[i] = kbs
	}
	for i, kbs := range g.SplitToKB {
		for _, kb := range kbs {
			g.KBToSplits[kb] = append(g.KBToSplits[kb], i)
		}
	}
	return g
}

// NumSplits returns the split count.
func (g *Graph) NumSplits() int { return len(g.SplitToKB) }

// NumKeyblocks returns the keyblock count.
func (g *Graph) NumKeyblocks() int { return len(g.KBToSplits) }

// Deps returns I_ℓ for keyblock l.
func (g *Graph) Deps(l int) []int { return g.KBToSplits[l] }

// SIDRConnections returns the total number of shuffle connections SIDR
// opens: each Reduce task contacts exactly the Map tasks in its I_ℓ
// (Table 3, SIDR column).
func (g *Graph) SIDRConnections() int64 {
	var n int64
	for _, deps := range g.KBToSplits {
		n += int64(len(deps))
	}
	return n
}

// HadoopConnections returns the total number of shuffle connections stock
// Hadoop opens: every Reduce task contacts every Map task (Table 3,
// Hadoop column).
func (g *Graph) HadoopConnections() int64 {
	return int64(g.NumSplits()) * int64(g.NumKeyblocks())
}

// MaxDeps returns the largest dependency set size — the worst-case
// barrier any single Reduce task observes.
func (g *Graph) MaxDeps() int {
	m := 0
	for _, deps := range g.KBToSplits {
		if len(deps) > m {
			m = len(deps)
		}
	}
	return m
}

// TotalPoints returns the total number of source pairs across all
// keyblocks; it must equal the query input size for dense extractions.
func (g *Graph) TotalPoints() int64 {
	var n int64
	for _, c := range g.ExpectedCount {
		n += c
	}
	return n
}

// DependencyBarrierMet reports whether keyblock l's data dependencies are
// satisfied given the set of completed splits — the per-Reduce-task
// barrier replacing Hadoop's global one (Figure 4b).
func (g *Graph) DependencyBarrierMet(l int, done func(split int) bool) bool {
	for _, s := range g.KBToSplits[l] {
		if !done(s) {
			return false
		}
	}
	return true
}

// sortInts is insertion sort: dependency lists per split are small and
// nearly sorted (map iteration aside), so this avoids pulling in
// sort.Ints allocations in the hot planning loop.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
