package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := Parse("seed=42,match=/v1/shuffle/,delay=0.2:50ms,drop=0.05,error=0.1,slow=0.25:2ms,flip=0.05,map-delay=0.2:100ms,hang=0.01,kill-after-maps=5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 42, Match: "/v1/shuffle/",
		DelayP: 0.2, Delay: 50 * time.Millisecond,
		DropP: 0.05, ErrorP: 0.1,
		SlowP: 0.25, SlowChunk: 1024, SlowPause: 2 * time.Millisecond,
		FlipP:     0.05,
		MapDelayP: 0.2, MapDelay: 100 * time.Millisecond,
		HangP: 0.01, KillAfterMaps: 5,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
	for _, bad := range []string{"bogus=1", "drop=1.5", "delay=0.1:nope", "kill-after-maps=-2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestDeterminism: two injectors with the same seed make identical
// decisions for the same probe sequence.
func TestDeterminism(t *testing.T) {
	seq := func() []bool {
		in := New(Spec{Seed: 7})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.roll(0.3, "x")
		}
		return out
	}
	if !reflect.DeepEqual(seq(), seq()) {
		t.Fatal("same seed produced different schedules")
	}
}

// roundTripperFunc adapts a func to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okResponse(body string) *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Header:     make(http.Header),
	}
}

func TestTransportDropAndError(t *testing.T) {
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return okResponse("payload"), nil
	})
	req := httptest.NewRequest(http.MethodGet, "http://x/v1/map", nil)

	in := New(Spec{Seed: 1, DropP: 1})
	if _, err := in.Transport(inner).RoundTrip(req); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	if in.Counts()["drop"] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}

	in = New(Spec{Seed: 1, ErrorP: 1})
	resp, err := in.Transport(inner).RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTransportFlipChangesExactlyOneBit: the flipped body differs from
// the original in exactly one bit, and the full body still arrives.
func TestTransportFlipChangesExactlyOneBit(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 4096)
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return okResponse(string(orig)), nil
	})
	in := New(Spec{Seed: 3, FlipP: 1})
	resp, err := in.Transport(inner).RoundTrip(httptest.NewRequest(http.MethodGet, "http://x/", nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got) != len(orig) {
		t.Fatalf("flip changed body length: %d != %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diff)
	}
}

// TestTransportSlowStreamDeliversEverything: slow streaming trickles
// but loses nothing.
func TestTransportSlowStreamDeliversEverything(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 64)
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return okResponse(string(body)), nil
	})
	in := New(Spec{Seed: 9, SlowP: 1, SlowChunk: 16, SlowPause: time.Microsecond})
	resp, err := in.Transport(inner).RoundTrip(httptest.NewRequest(http.MethodGet, "http://x/", nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Equal(got, body) {
		t.Fatalf("slow stream corrupted body: %d bytes vs %d", len(got), len(body))
	}
	if in.Counts()["slow"] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

// TestTransportMatchFilter: chaos only applies to matching paths.
func TestTransportMatchFilter(t *testing.T) {
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return okResponse("ok"), nil
	})
	in := New(Spec{Seed: 1, DropP: 1, Match: "/v1/shuffle/"})
	resp, err := in.Transport(inner).RoundTrip(httptest.NewRequest(http.MethodGet, "http://x/v1/map", nil))
	if err != nil {
		t.Fatalf("non-matching path was chaosed: %v", err)
	}
	resp.Body.Close()
	if _, err := in.Transport(inner).RoundTrip(httptest.NewRequest(http.MethodGet, "http://x/v1/shuffle/j/0/0/0", nil)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("matching path not dropped: %v", err)
	}
}

// TestMiddlewareFlip: server-side flip corrupts the served bytes while
// an untouched request passes through verbatim.
func TestMiddlewareFlip(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5C}, 1024)
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Write(payload)
	})
	in := New(Spec{Seed: 11, FlipP: 1, Match: "/v1/shuffle/"})
	srv := httptest.NewServer(in.Middleware(inner))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/shuffle/j/0/0/0")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(got, payload) {
		t.Fatal("middleware flip left payload intact")
	}
	if len(got) != len(payload) {
		t.Fatalf("flip changed length: %d != %d", len(got), len(payload))
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("non-matching path was altered")
	}
}

// TestBeforeMapKillSchedule: the kill fires exactly at the scheduled
// attempt, through the overridable exit hook.
func TestBeforeMapKillSchedule(t *testing.T) {
	in := New(Spec{Seed: 5, KillAfterMaps: 3})
	var killed []int
	in.SetExit(func(code int) { killed = append(killed, code) })
	for i := 0; i < 3; i++ {
		in.BeforeMap(context.Background())
	}
	if len(killed) != 1 || killed[0] != 137 {
		t.Fatalf("kills = %v, want one exit(137) on attempt 3", killed)
	}
	if in.Counts()["kill"] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

// TestBeforeMapHangRespectsContext: a hung attempt unblocks when its
// context is cancelled and reports the injected hang.
func TestBeforeMapHangRespectsContext(t *testing.T) {
	in := New(Spec{Seed: 5, HangP: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.BeforeMap(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjectedHang) {
			t.Fatalf("err = %v, want ErrInjectedHang", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not unblock on cancel")
	}
}
