// Package faultinject is a deterministic, seeded chaos layer for the
// distributed runtime. One Injector, built from a scriptable Spec,
// drives every kind of adversity the cluster must survive:
//
//   - a client-side http.RoundTripper wrapper (Transport) that can
//     delay requests, drop them at the connection level, replace
//     responses with injected 503s, slow-stream response bodies, or
//     flip one bit of a response payload in transit;
//   - a server-side http.Handler wrapper (Middleware) applying the same
//     error/slow/flip actions to responses a worker serves;
//   - worker-side task hooks (BeforeMap) that stall a Map attempt, hang
//     it until its context is cancelled, or kill the whole process
//     after a scheduled number of attempts.
//
// Every decision comes from one seeded PRNG behind a mutex, so a given
// (seed, sequence of probes) replays the same schedule — chaos tests
// are reproducible, and `sidr-worker -chaos` / `sidrd -chaos` schedules
// can be pinned in CI. Counts() reports how many of each action
// actually fired, so tests can assert the chaos they asked for
// happened.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjectedDrop is the connection-level failure Transport returns for
// a dropped request; the coordinator treats it like any dial failure.
var ErrInjectedDrop = errors.New("faultinject: injected connection drop")

// ErrInjectedHang is returned by BeforeMap when a hung attempt's
// context is cancelled out from under it.
var ErrInjectedHang = errors.New("faultinject: injected hang cancelled")

// Spec is one chaos schedule. Probabilities are per-decision in [0,1];
// zero values disable an action. Parse builds one from the compact
// flag syntax shared by -chaos on sidrd and sidr-worker.
type Spec struct {
	// Seed seeds the schedule's PRNG; the same seed replays the same
	// decisions in the same probe order.
	Seed int64
	// Match restricts transport/middleware chaos to URL paths containing
	// this substring ("" = all paths).
	Match string

	// DelayP delays a request by Delay before forwarding it.
	DelayP float64
	Delay  time.Duration
	// DropP fails a request at the connection level (ErrInjectedDrop).
	DropP float64
	// ErrorP replaces a response with an injected 503.
	ErrorP float64
	// SlowP streams the response body in SlowChunk-byte pieces with a
	// SlowPause sleep between them.
	SlowP     float64
	SlowChunk int
	SlowPause time.Duration
	// FlipP flips one seeded-random bit of the response body.
	FlipP float64

	// MapDelayP stalls a worker's Map attempt by MapDelay (straggler).
	MapDelayP float64
	MapDelay  time.Duration
	// HangP hangs a Map attempt until its context is cancelled.
	HangP float64
	// KillAfterMaps, when > 0, kills the worker process (exit 137, as if
	// SIGKILLed) the moment it has begun this many Map attempts.
	KillAfterMaps int
}

// Parse decodes the -chaos flag syntax: comma-separated actions, each
// "name", "name=p" or "name=p:arg". Example:
//
//	seed=42,match=/v1/shuffle/,delay=0.2:50ms,drop=0.05,error=0.1,
//	slow=0.1:2ms,flip=0.05,map-delay=0.2:100ms,hang=0.01,kill-after-maps=5
func Parse(s string) (Spec, error) {
	spec := Spec{SlowChunk: 1024, SlowPause: time.Millisecond, Delay: 25 * time.Millisecond, MapDelay: 100 * time.Millisecond}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, _ := strings.Cut(field, "=")
		val, arg, hasArg := strings.Cut(val, ":")
		p := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("faultinject: %s wants a probability in [0,1], got %q", name, val)
			}
			return f, nil
		}
		dur := func(dst *time.Duration) error {
			if !hasArg {
				return nil
			}
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return fmt.Errorf("faultinject: %s: bad duration %q", name, arg)
			}
			*dst = d
			return nil
		}
		var err error
		switch name {
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "match":
			spec.Match = val
		case "delay":
			if spec.DelayP, err = p(); err == nil {
				err = dur(&spec.Delay)
			}
		case "drop":
			spec.DropP, err = p()
		case "error":
			spec.ErrorP, err = p()
		case "slow":
			if spec.SlowP, err = p(); err == nil {
				err = dur(&spec.SlowPause)
			}
		case "flip":
			spec.FlipP, err = p()
		case "map-delay":
			if spec.MapDelayP, err = p(); err == nil {
				err = dur(&spec.MapDelay)
			}
		case "hang":
			spec.HangP, err = p()
		case "kill-after-maps":
			spec.KillAfterMaps, err = strconv.Atoi(val)
			if err == nil && spec.KillAfterMaps < 0 {
				err = fmt.Errorf("faultinject: kill-after-maps must be >= 0")
			}
		default:
			return spec, fmt.Errorf("faultinject: unknown chaos action %q", name)
		}
		if err != nil {
			return spec, fmt.Errorf("faultinject: parsing %q: %w", field, err)
		}
	}
	return spec, nil
}

// Injector applies one Spec's schedule. Safe for concurrent use; all
// randomness flows through one seeded PRNG so a fixed probe order
// replays identically.
type Injector struct {
	spec Spec

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int64
	maps   int

	// exit terminates the process on a kill schedule; tests override it.
	exit func(code int)
}

// New builds an injector for the spec.
func New(spec Spec) *Injector {
	if spec.SlowChunk <= 0 {
		spec.SlowChunk = 1024
	}
	return &Injector{
		spec:   spec,
		rng:    rand.New(rand.NewSource(spec.Seed)),
		counts: make(map[string]int64),
		exit:   os.Exit,
	}
}

// SetExit replaces the process-kill hook (tests; default os.Exit).
func (in *Injector) SetExit(fn func(code int)) { in.exit = fn }

// Counts snapshots how many of each action fired, keyed by action name
// ("delay", "drop", "error", "slow", "flip", "map-delay", "hang",
// "kill"). Tests assert the chaos they scheduled actually happened.
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// roll draws one decision; fires with probability p and counts it.
func (in *Injector) roll(p float64, action string) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	hit := in.rng.Float64() < p
	if hit {
		in.counts[action]++
	}
	in.mu.Unlock()
	return hit
}

// intn draws a seeded integer in [0, n).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

func (in *Injector) matches(path string) bool {
	return in.spec.Match == "" || strings.Contains(path, in.spec.Match)
}

// sleep waits for d or ctx, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transport wraps an http.RoundTripper with the spec's client-side
// chaos. nil inner uses http.DefaultTransport.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &chaosTransport{in: in, inner: inner}
}

type chaosTransport struct {
	in    *Injector
	inner http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if !in.matches(req.URL.Path) {
		return t.inner.RoundTrip(req)
	}
	if in.roll(in.spec.DelayP, "delay") {
		if err := sleep(req.Context(), in.spec.Delay); err != nil {
			return nil, err
		}
	}
	if in.roll(in.spec.DropP, "drop") {
		return nil, ErrInjectedDrop
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if in.roll(in.spec.ErrorP, "error") {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return injectedError(req), nil
	}
	if in.roll(in.spec.FlipP, "flip") {
		resp.Body = &flipReader{in: in, inner: resp.Body}
	}
	if in.roll(in.spec.SlowP, "slow") {
		resp.Body = &slowReader{
			inner: resp.Body,
			ctx:   req.Context(),
			chunk: in.spec.SlowChunk,
			pause: in.spec.SlowPause,
		}
	}
	return resp, nil
}

// injectedError is the synthetic 503 the error action substitutes.
func injectedError(req *http.Request) *http.Response {
	body := "chaos: injected error\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// flipReader buffers the body on first read and flips one seeded-random
// bit — preferring an offset past the typical spill header so payload
// checksums, not header parsing, catch the corruption.
type flipReader struct {
	in    *Injector
	inner io.ReadCloser
	buf   []byte
	off   int
	read  bool
	err   error
}

// flipSkip is the byte offset corruption prefers to land past: the
// size of a v3 kv spill header (28 bytes; v2's was 26), so flips land
// in CRC-guarded territory — block payloads, block headers, or batch
// frame headers — rather than in uncovered structural header fields.
const flipSkip = 28

func (f *flipReader) Read(p []byte) (int, error) {
	if !f.read {
		f.read = true
		f.buf, f.err = io.ReadAll(f.inner)
		if len(f.buf) > 0 {
			lo := 0
			if len(f.buf) > flipSkip {
				lo = flipSkip
			}
			i := lo + f.in.intn(len(f.buf)-lo)
			f.buf[i] ^= 1 << f.in.intn(8)
		}
	}
	if f.off >= len(f.buf) {
		if f.err != nil {
			return 0, f.err
		}
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.off:])
	f.off += n
	return n, nil
}

func (f *flipReader) Close() error { return f.inner.Close() }

// slowReader trickles the body chunk-by-chunk with a pause between
// chunks — the slow-stream failure a whole-response client timeout
// mistakes for a dead peer.
type slowReader struct {
	inner io.ReadCloser
	ctx   context.Context
	chunk int
	pause time.Duration
	begun bool
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.begun {
		if err := sleep(s.ctx, s.pause); err != nil {
			return 0, err
		}
	}
	s.begun = true
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.inner.Read(p)
}

func (s *slowReader) Close() error { return s.inner.Close() }

// Middleware wraps a server handler with the spec's response-side chaos
// (error, flip, slow) on matching paths — how a chaotic worker serves
// corrupt or crawling shuffle responses without the coordinator's
// transport being in on it.
func (in *Injector) Middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !in.matches(r.URL.Path) {
			inner.ServeHTTP(rw, r)
			return
		}
		if in.roll(in.spec.ErrorP, "error") {
			http.Error(rw, "chaos: injected error", http.StatusServiceUnavailable)
			return
		}
		flip := in.roll(in.spec.FlipP, "flip")
		slow := in.roll(in.spec.SlowP, "slow")
		if !flip && !slow {
			inner.ServeHTTP(rw, r)
			return
		}
		rec := &bufferedResponse{header: make(http.Header), code: http.StatusOK}
		inner.ServeHTTP(rec, r)
		body := rec.body
		if flip && len(body) > 0 {
			lo := 0
			if len(body) > flipSkip {
				lo = flipSkip
			}
			i := lo + in.intn(len(body)-lo)
			body[i] ^= 1 << in.intn(8)
		}
		h := rw.Header()
		for k, v := range rec.header {
			h[k] = v
		}
		rw.WriteHeader(rec.code)
		if !slow {
			rw.Write(body)
			return
		}
		fl, _ := rw.(http.Flusher)
		for off := 0; off < len(body); off += in.spec.SlowChunk {
			end := off + in.spec.SlowChunk
			if end > len(body) {
				end = len(body)
			}
			if _, err := rw.Write(body[off:end]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			if sleep(r.Context(), in.spec.SlowPause) != nil {
				return
			}
		}
	})
}

// bufferedResponse captures a handler's response for post-processing.
type bufferedResponse struct {
	header http.Header
	code   int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(code int) {
	b.code = code
}
func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// BeforeMap is the worker-side hook run as a Map attempt begins. It
// applies the straggler schedule (map-delay, hang) and the kill
// schedule (kill-after-maps). A non-nil error means the attempt was
// aborted (hang cancelled); the worker fails the dispatch.
func (in *Injector) BeforeMap(ctx context.Context) error {
	in.mu.Lock()
	in.maps++
	kill := in.spec.KillAfterMaps > 0 && in.maps >= in.spec.KillAfterMaps
	if kill {
		in.counts["kill"]++
	}
	exit := in.exit
	in.mu.Unlock()
	if kill {
		// Exit as if SIGKILLed: no graceful shutdown, spills abandoned.
		exit(137)
		return errors.New("faultinject: kill scheduled") // reached only under a test exit hook
	}
	if in.roll(in.spec.MapDelayP, "map-delay") {
		if err := sleep(ctx, in.spec.MapDelay); err != nil {
			return err
		}
	}
	if in.roll(in.spec.HangP, "hang") {
		<-ctx.Done()
		return fmt.Errorf("%w: %v", ErrInjectedHang, ctx.Err())
	}
	return nil
}
