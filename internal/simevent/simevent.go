// Package simevent is a minimal deterministic discrete-event simulation
// core: a priority queue of timestamped callbacks and a virtual clock.
// Ties are broken by scheduling order, so runs with the same inputs and
// seeds replay identically — a requirement for the paper's averaged,
// seeded experiments (Figure 12).
package simevent

import (
	"container/heap"
	"fmt"
)

// Engine owns the virtual clock and event queue.
type Engine struct {
	now   float64
	seq   int64
	queue eventHeap
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t; t must not precede the clock.
func (e *Engine) At(t float64, fn func()) error {
	if t < e.now {
		return fmt.Errorf("simevent: cannot schedule at %v before now %v", t, e.now)
	}
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
	e.seq++
	return nil
}

// After schedules fn d time units from now; negative d is clamped to 0.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	// The error path is unreachable: now+d >= now.
	_ = e.At(e.now+d, fn)
}

// Run processes events in timestamp order until the queue drains,
// returning the final clock value.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
