package simevent

import (
	"testing"
)

func TestRunOrdersEvents(t *testing.T) {
	e := New()
	var got []int
	e.After(3, func() { got = append(got, 3) })
	e.After(1, func() { got = append(got, 1) })
	e.After(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final clock = %v", end)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestTiesBreakInScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.After(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var at []float64
	e.After(1, func() {
		at = append(at, e.Now())
		e.After(2, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 1 || at[1] != 3 {
		t.Fatalf("at = %v", at)
	}
}

func TestAtRejectsPast(t *testing.T) {
	e := New()
	e.After(5, func() {
		if err := e.At(1, func() {}); err == nil {
			t.Error("past event accepted")
		}
	})
	e.Run()
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New()
	ran := false
	e.After(-3, func() { ran = true })
	if e.Run() != 0 || !ran {
		t.Fatal("negative After mishandled")
	}
}

func TestPending(t *testing.T) {
	e := New()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.After(1, func() {})
	if e.Pending() != 1 {
		t.Fatal("Pending != 1")
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatal("Pending after Run != 0")
	}
}
