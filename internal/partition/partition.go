// Package partition implements the two intermediate-data partitioners the
// paper compares:
//
//   - Modulo — Hadoop's default: the modulo of the key's binary
//     representation by the number of Reduce tasks (§3.1). It partitions
//     the whole representable keyspace, so patterned coordinate keys
//     produce skewed keyblocks (§4.3) and its keyblocks are scattered
//     across K', creating global Map→Reduce dependencies (§3.4).
//   - PartitionPlus — SIDR's partitioner: computes the actual
//     intermediate keyspace K'^T, tiles it with an n-dimensional shape
//     bounded by a permissible skew, and assigns contiguous runs of tiles
//     to keyblocks (Figure 7). Keyblocks are balanced to within one tile
//     and contiguous in row-major K' order.
package partition

import (
	"fmt"
	"sort"

	"sidr/internal/coords"
)

// Partitioner deterministically maps an intermediate key in K' to a
// keyblock index in [0, NumKeyblocks).
type Partitioner interface {
	// Name identifies the partitioner in traces and benchmarks.
	Name() string
	// NumKeyblocks returns the keyblock (Reduce task) count.
	NumKeyblocks() int
	// Partition maps an intermediate key to its keyblock.
	Partition(kp coords.Coord) (int, error)
}

// KeyEncoding converts an intermediate coordinate key into the integer
// "binary representation" Hadoop's modulo partitioner operates on. The
// choice of encoding is exactly what makes stock Hadoop vulnerable to the
// patterned-key skew of §4.3.
type KeyEncoding interface {
	// Name identifies the encoding.
	Name() string
	// Encode converts a key to its integer representation.
	Encode(kp coords.Coord) (int64, error)
}

// TileIndexEncoding linearises the key within the actual intermediate
// keyspace K'^T (dense, gap-free): the benign encoding.
type TileIndexEncoding struct {
	// Space is the intermediate keyspace K'^T.
	Space coords.Slab
}

// Name implements KeyEncoding.
func (e TileIndexEncoding) Name() string { return "tile-index" }

// Encode implements KeyEncoding.
func (e TileIndexEncoding) Encode(kp coords.Coord) (int64, error) {
	return e.Space.Linearize(kp)
}

// CornerInKEncoding represents the key as the row-major linearisation of
// its tile's *corner coordinate in the input space K* — how SciHadoop
// materialises intermediate keys. Because tile corners sit at multiples
// of the extraction shape, the encoded integers share common factors:
// with an even extraction stride every encoded key is even, and an even
// Reduce count leaves half the Reduce tasks without data (Figure 13).
type CornerInKEncoding struct {
	// InputSpace is the full input keyspace shape (K).
	InputSpace coords.Shape
	// Extraction maps K' keys back to their tile corners in K.
	Extraction coords.Extraction
}

// Name implements KeyEncoding.
func (e CornerInKEncoding) Name() string { return "corner-in-K" }

// Encode implements KeyEncoding.
func (e CornerInKEncoding) Encode(kp coords.Coord) (int64, error) {
	tile, err := e.Extraction.Tile(kp)
	if err != nil {
		return 0, err
	}
	return e.InputSpace.Linearize(tile.Corner)
}

// Modulo is Hadoop's default partitioner: encoded key modulo the Reduce
// task count.
type Modulo struct {
	R   int
	Enc KeyEncoding
}

// NewModulo builds a modulo partitioner over r keyblocks.
func NewModulo(r int, enc KeyEncoding) (*Modulo, error) {
	if r <= 0 {
		return nil, fmt.Errorf("partition: reducer count %d must be positive", r)
	}
	if enc == nil {
		return nil, fmt.Errorf("partition: nil key encoding")
	}
	return &Modulo{R: r, Enc: enc}, nil
}

// Name implements Partitioner.
func (m *Modulo) Name() string { return "modulo/" + m.Enc.Name() }

// NumKeyblocks implements Partitioner.
func (m *Modulo) NumKeyblocks() int { return m.R }

// Partition implements Partitioner.
func (m *Modulo) Partition(kp coords.Coord) (int, error) {
	v, err := m.Enc.Encode(kp)
	if err != nil {
		return 0, err
	}
	idx := int(v % int64(m.R))
	if idx < 0 {
		idx += m.R
	}
	return idx, nil
}

// Keyblock is one PartitionPlus keyblock: a contiguous run of row-major
// linear positions within K'^T, with its rectangular slab when the run is
// a rectangle (which holds whenever the run is whole tiles stacked along
// the leading dimension — the common case, including every paper query).
type Keyblock struct {
	// Index is the keyblock id (== Reduce task id).
	Index int
	// Lo and Hi bound the row-major linear range [Lo, Hi) within K'^T.
	Lo, Hi int64
	// Slab is the rectangular extent when the range is rectangular;
	// Rect reports whether it is.
	Slab coords.Slab
	Rect bool
}

// Size returns the number of K' keys in the keyblock.
func (k Keyblock) Size() int64 { return k.Hi - k.Lo }

// PartitionPlus is SIDR's structure-aware partitioner.
type PartitionPlus struct {
	// Space is the intermediate keyspace K'^T.
	Space coords.Slab
	// TileShape is the skew-bounding shape chosen per Figure 7 step A.
	TileShape coords.Shape
	// Blocks are the keyblocks, contiguous and in row-major order.
	Blocks []Keyblock

	r int
}

// DefaultMaxSkew is the permissible-skew bound used when the query does
// not specify one: keyblock sizes may differ by at most this many K'
// keys.
const DefaultMaxSkew = 1 << 16

// NewPartitionPlus partitions the intermediate keyspace `space` (K'^T)
// into r contiguous, balanced keyblocks whose sizes differ by at most
// maxSkew keys (Figure 7). maxSkew <= 0 selects DefaultMaxSkew.
func NewPartitionPlus(space coords.Slab, r int, maxSkew int64) (*PartitionPlus, error) {
	if r <= 0 {
		return nil, fmt.Errorf("partition: reducer count %d must be positive", r)
	}
	if err := space.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("partition: intermediate space: %w", err)
	}
	if maxSkew <= 0 {
		maxSkew = DefaultMaxSkew
	}
	total := space.Shape.Size()

	// The effective skew bound is tightened to the per-reducer share when
	// the user bound is coarser, so a tile never spans more than one
	// reducer's worth of keys (the "chosen by the system based on the
	// query" case of §3.1).
	eff := maxSkew
	if share := total / int64(r); share < eff {
		eff = share
		if eff < 1 {
			eff = 1
		}
	}

	// Step A: choose an n-dimensional tile no larger than the bound.
	// Greedily take full trailing extents while they fit, then a partial
	// extent of the next dimension. The tile always spans full extents of
	// every dimension after its partial one, so whole tiles stack
	// contiguously in row-major order.
	tile := space.Shape.Clone()
	rowSize := int64(1)
	dim := 0
	for dim = len(tile) - 1; dim >= 0; dim-- {
		if rowSize*tile[dim] > eff {
			break
		}
		rowSize *= tile[dim]
	}
	if dim >= 0 {
		// Partial extent in dimension dim; everything before it is 1.
		t := eff / rowSize
		if t < 1 {
			t = 1
		}
		if t > tile[dim] {
			t = tile[dim]
		}
		tile[dim] = t
		for i := 0; i < dim; i++ {
			tile[i] = 1
		}
	}
	tileSize := tile.Size()

	// Step B: count tile instances and split them across r keyblocks.
	// Instances tile the space in row-major order; treat them as a linear
	// sequence and give each keyblock floor(instances/r) of them, with the
	// first (instances mod r) keyblocks taking one extra — keyblocks
	// differ by at most one instance of the chosen shape (§3.1, Figure 7).
	instances := (total + tileSize - 1) / tileSize
	per := instances / int64(r)
	rem := instances % int64(r)

	pp := &PartitionPlus{Space: space.Clone(), TileShape: tile, r: r}
	startTile := int64(0)
	for i := 0; i < r; i++ {
		n := per
		if int64(i) < rem {
			n++
		}
		lo := startTile * tileSize
		hi := (startTile + n) * tileSize
		startTile += n
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		kb := Keyblock{Index: i, Lo: lo, Hi: hi}
		if hi > lo {
			kb.Slab, kb.Rect = rangeToSlab(space, lo, hi)
		}
		pp.Blocks = append(pp.Blocks, kb)
	}
	return pp, nil
}

// rangeToSlab converts a row-major linear range of the space into a
// rectangular slab when possible.
func rangeToSlab(space coords.Slab, lo, hi int64) (coords.Slab, bool) {
	if hi <= lo {
		return coords.Slab{}, false
	}
	rowSize := int64(1)
	for i := 1; i < space.Rank(); i++ {
		rowSize *= space.Shape[i]
	}
	if space.Rank() == 1 {
		rowSize = 1
	}
	// Rectangular iff the range is whole leading-dimension rows.
	if rowSize > 0 && lo%rowSize == 0 && hi%rowSize == 0 {
		loC, err1 := space.Delinearize(lo)
		if err1 != nil {
			return coords.Slab{}, false
		}
		sh := space.Shape.Clone()
		sh[0] = (hi - lo) / rowSize
		return coords.Slab{Corner: loC, Shape: sh}, true
	}
	// A range within a single row of a rank-1 space is trivially a slab.
	if space.Rank() == 1 {
		loC, err := space.Delinearize(lo)
		if err != nil {
			return coords.Slab{}, false
		}
		return coords.Slab{Corner: loC, Shape: coords.NewShape(hi - lo)}, true
	}
	return coords.Slab{}, false
}

// Name implements Partitioner.
func (p *PartitionPlus) Name() string { return "partition+" }

// NumKeyblocks implements Partitioner.
func (p *PartitionPlus) NumKeyblocks() int { return p.r }

// Partition implements Partitioner. Keyblock spans are sorted and
// contiguous, so a binary search over block lower bounds resolves the
// lookup.
func (p *PartitionPlus) Partition(kp coords.Coord) (int, error) {
	off, err := p.Space.Linearize(kp)
	if err != nil {
		return 0, err
	}
	if len(p.Blocks) == 0 {
		return 0, fmt.Errorf("partition: no keyblocks")
	}
	idx := sort.Search(len(p.Blocks), func(i int) bool { return p.Blocks[i].Hi > off })
	if idx >= len(p.Blocks) || off < p.Blocks[idx].Lo {
		return 0, fmt.Errorf("partition: key %v (offset %d) outside all keyblocks", kp, off)
	}
	return idx, nil
}

// BlockSizes returns the number of K' keys in each keyblock, in order —
// the key-distribution guarantee the skew experiments measure.
func (p *PartitionPlus) BlockSizes() []int64 {
	out := make([]int64, len(p.Blocks))
	for i, b := range p.Blocks {
		out[i] = b.Size()
	}
	return out
}

// TileCountSkew returns the difference in tile-instance counts between
// the largest and smallest non-empty keyblock; §3.1 guarantees this is at
// most one.
func (p *PartitionPlus) TileCountSkew() int64 {
	tileSize := p.TileShape.Size()
	var lo, hi int64 = -1, 0
	for _, b := range p.Blocks {
		if b.Size() == 0 {
			continue
		}
		n := (b.Size() + tileSize - 1) / tileSize
		if lo < 0 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo < 0 {
		return 0
	}
	return hi - lo
}
