package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
)

func originSlab(shape ...int64) coords.Slab {
	s := coords.NewShape(shape...)
	return coords.Slab{Corner: make(coords.Coord, s.Rank()), Shape: s}
}

func TestModuloValidation(t *testing.T) {
	enc := TileIndexEncoding{Space: originSlab(10)}
	if _, err := NewModulo(0, enc); err == nil {
		t.Fatal("zero reducers accepted")
	}
	if _, err := NewModulo(2, nil); err == nil {
		t.Fatal("nil encoding accepted")
	}
}

func TestModuloTileIndex(t *testing.T) {
	space := originSlab(4, 5)
	m, err := NewModulo(3, TileIndexEncoding{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumKeyblocks() != 3 {
		t.Fatalf("NumKeyblocks = %d", m.NumKeyblocks())
	}
	counts := make([]int, 3)
	space.Each(func(kp coords.Coord) bool {
		idx, err := m.Partition(kp)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
		return true
	})
	// 20 keys across 3 blocks: 7/7/6.
	if counts[0]+counts[1]+counts[2] != 20 {
		t.Fatalf("counts = %v", counts)
	}
	for _, c := range counts {
		if c < 6 || c > 7 {
			t.Fatalf("modulo over dense index should balance: %v", counts)
		}
	}
	if _, err := m.Partition(coords.NewCoord(99, 0)); err == nil {
		t.Fatal("out-of-space key accepted")
	}
}

func TestCornerInKEncodingSkewPathology(t *testing.T) {
	// §4.3: with the corner-in-K encoding and an even extraction stride,
	// every encoded key is even, so an even Reduce count starves all
	// odd-numbered Reduce tasks.
	input := coords.NewShape(16, 16)
	ex := coords.MustExtraction(coords.NewShape(2, 2), nil)
	enc := CornerInKEncoding{InputSpace: input, Extraction: ex}
	m, err := NewModulo(2, enc)
	if err != nil {
		t.Fatal(err)
	}
	kspace := originSlab(8, 8)
	counts := make([]int, 2)
	kspace.Each(func(kp coords.Coord) bool {
		idx, err := m.Partition(kp)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
		return true
	})
	if counts[1] != 0 {
		t.Fatalf("expected all keys on even reducer, got %v", counts)
	}
	if counts[0] != 64 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCornerInKEncodingName(t *testing.T) {
	enc := CornerInKEncoding{}
	if enc.Name() != "corner-in-K" {
		t.Fatal("encoding name changed")
	}
	if (TileIndexEncoding{}).Name() != "tile-index" {
		t.Fatal("encoding name changed")
	}
}

func TestPartitionPlusValidation(t *testing.T) {
	if _, err := NewPartitionPlus(originSlab(10), 0, 0); err == nil {
		t.Fatal("zero reducers accepted")
	}
	if _, err := NewPartitionPlus(coords.Slab{}, 2, 0); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestPartitionPlusPaperGeometry(t *testing.T) {
	// Query 1: K'^T = {3600, 10, 20, 5}, 22 reducers, skew bound 10000.
	space := originSlab(3600, 10, 20, 5)
	pp, err := NewPartitionPlus(space, 22, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Blocks) != 22 {
		t.Fatalf("%d blocks", len(pp.Blocks))
	}
	// Tile should be {10,10,20,5}: one K' row is 1000 keys, 10 rows fit
	// in the 10000 bound.
	if !pp.TileShape.Equal(coords.NewShape(10, 10, 20, 5)) {
		t.Fatalf("tile = %v", pp.TileShape)
	}
	var total int64
	for i, b := range pp.Blocks {
		total += b.Size()
		if i > 0 && b.Lo != pp.Blocks[i-1].Hi {
			t.Fatalf("blocks %d and %d not contiguous", i-1, i)
		}
		if !b.Rect && b.Size() > 0 {
			t.Fatalf("block %d not rectangular", i)
		}
	}
	if total != space.Size() {
		t.Fatalf("blocks cover %d keys of %d", total, space.Size())
	}
	// §3.1: keyblocks differ by at most one instance of the chosen shape.
	if skew := pp.TileCountSkew(); skew > 1 {
		t.Fatalf("tile-count skew %d exceeds 1", skew)
	}
	// 360 instances across 22 reducers: 8 blocks of 17 tiles then 14 of
	// 16 tiles.
	sizes := pp.BlockSizes()
	for i, want := range []int64{170000, 170000, 160000} {
		idx := []int{0, 7, 8}[i]
		if sizes[idx] != want {
			t.Fatalf("block %d size %d, want %d (all: %v)", idx, sizes[idx], want, sizes)
		}
	}
}

func TestPartitionPlusLookupMatchesBlocks(t *testing.T) {
	space := originSlab(37, 7)
	pp, err := NewPartitionPlus(space, 5, 14)
	if err != nil {
		t.Fatal(err)
	}
	space.Each(func(kp coords.Coord) bool {
		idx, err := pp.Partition(kp)
		if err != nil {
			t.Fatalf("Partition(%v): %v", kp, err)
		}
		off, _ := space.Linearize(kp)
		b := pp.Blocks[idx]
		if off < b.Lo || off >= b.Hi {
			t.Fatalf("key %v (off %d) assigned to block %d [%d,%d)", kp, off, idx, b.Lo, b.Hi)
		}
		return true
	})
	if _, err := pp.Partition(coords.NewCoord(99, 0)); err == nil {
		t.Fatal("out-of-space key accepted")
	}
}

func TestPartitionPlusMoreReducersThanKeys(t *testing.T) {
	space := originSlab(3)
	pp, err := NewPartitionPlus(space, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, b := range pp.Blocks {
		if b.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("%d non-empty blocks for 3 keys", nonEmpty)
	}
	for _, kp := range []coords.Coord{coords.NewCoord(0), coords.NewCoord(1), coords.NewCoord(2)} {
		if _, err := pp.Partition(kp); err != nil {
			t.Fatalf("Partition(%v): %v", kp, err)
		}
	}
}

func TestPartitionPlusContiguousOrderPreserving(t *testing.T) {
	// §3.4: partition+ preserves row-major order — keyblock indices are
	// monotone in the linearised key.
	space := originSlab(52, 50)
	pp, err := NewPartitionPlus(space, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for off := int64(0); off < space.Size(); off++ {
		kp, _ := space.Delinearize(off)
		idx, err := pp.Partition(kp)
		if err != nil {
			t.Fatal(err)
		}
		if idx < prev {
			t.Fatalf("keyblock index decreased at offset %d", off)
		}
		prev = idx
	}
}

func TestQuickPartitionPlusInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		sh := make(coords.Shape, rank)
		for i := range sh {
			sh[i] = 1 + r.Int63n(20)
		}
		space := coords.Slab{Corner: make(coords.Coord, rank), Shape: sh}
		reducers := 1 + r.Intn(10)
		maxSkew := 1 + r.Int63n(50)
		pp, err := NewPartitionPlus(space, reducers, maxSkew)
		if err != nil {
			return false
		}
		// Coverage, contiguity, balance.
		var total int64
		prevHi := int64(0)
		for _, b := range pp.Blocks {
			if b.Lo != prevHi && b.Size() > 0 {
				// Empty trailing blocks may repeat [total,total).
				if !(b.Lo >= prevHi) {
					return false
				}
			}
			if b.Size() > 0 {
				if b.Lo != prevHi {
					return false
				}
				prevHi = b.Hi
			}
			total += b.Size()
		}
		if total != space.Size() || prevHi != space.Size() {
			return false
		}
		// Keyblocks differ by at most one tile instance.
		if pp.TileCountSkew() > 1 {
			return false
		}
		// Every key maps into the block containing its offset.
		for i := 0; i < 20; i++ {
			off := r.Int63n(space.Size())
			kp, _ := space.Delinearize(off)
			idx, err := pp.Partition(kp)
			if err != nil {
				return false
			}
			if off < pp.Blocks[idx].Lo || off >= pp.Blocks[idx].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	pp, _ := NewPartitionPlus(originSlab(4), 2, 0)
	if pp.Name() != "partition+" {
		t.Fatal("name changed")
	}
	m, _ := NewModulo(2, TileIndexEncoding{Space: originSlab(4)})
	if m.Name() != "modulo/tile-index" {
		t.Fatal("name changed")
	}
}
