// Package core implements the SIDR planner — the paper's primary
// contribution assembled from the substrate packages. Given a structural
// query, an execution engine (Hadoop, SciHadoop, or SIDR) and a reducer
// count, the planner derives everything SIDR needs before a single task
// runs: the input splits, the intermediate keyspace K'^T, the
// partitioner, the keyblocks, and the Map↔Reduce dependency graph.
//
// A Plan can then execute two ways:
//
//   - RunLocal: on the real in-process MapReduce engine, with the barrier
//     mode, shuffle pattern, kv-count validation and Map order the chosen
//     engine implies.
//   - Simulate: on the discrete-event cluster model at paper scale, with
//     the same scheduler policies and the plan's real dependency graph.
package core

import (
	"fmt"
	"strings"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/hdfs"
	"sidr/internal/join"
	"sidr/internal/mapreduce"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
	"sidr/internal/sched"
	"sidr/internal/sidx"
	"sidr/internal/simcluster"
)

// Engine selects the execution semantics being compared in the paper.
type Engine int

const (
	// EngineHadoop models stock Hadoop: byte-oriented splits (slow,
	// poorly localised Map tasks), modulo partitioning, global barrier,
	// all-to-all shuffle.
	EngineHadoop Engine = iota
	// EngineSciHadoop models SciHadoop: logical-coordinate splits with
	// good locality, but stock partitioning, barrier and shuffle.
	EngineSciHadoop
	// EngineSIDR models SIDR: SciHadoop's input handling plus
	// partition+, the dependency barrier, dependency-only shuffle and
	// reduce-first scheduling.
	EngineSIDR
)

// ParseEngine maps a wire engine name ("hadoop", "scihadoop", "sidr" or
// empty for the default) to an Engine — the inverse of the lower-cased
// String, shared by the daemon's JSON surface and the cluster protocol
// so coordinator and workers derive identical plans from the same text.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(s) {
	case "", "sidr":
		return EngineSIDR, nil
	case "hadoop":
		return EngineHadoop, nil
	case "scihadoop":
		return EngineSciHadoop, nil
	default:
		return 0, fmt.Errorf("core: unknown engine %q", s)
	}
}

// String names the engine the way the paper's figures label them.
func (e Engine) String() string {
	switch e {
	case EngineHadoop:
		return "Hadoop"
	case EngineSciHadoop:
		return "SciHadoop"
	case EngineSIDR:
		return "SIDR"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// MapCostFactor returns the Map-phase slowdown relative to SciHadoop.
// Stock Hadoop's byte-oriented splits force whole-file scans and poor
// locality; the factor is calibrated to the ~2.4× Map-phase gap between
// the Hadoop and SciHadoop curves of Figure 9.
func (e Engine) MapCostFactor() float64 {
	if e == EngineHadoop {
		return 2.4
	}
	return 1.0
}

// Options tunes plan construction.
type Options struct {
	// Reducers is the Reduce task count (required, >= 1).
	Reducers int
	// SplitPoints is the target number of source points per input split;
	// <= 0 derives it from a 128 MB block of 8-byte values.
	SplitPoints int64
	// MaxSkew bounds partition+ keyblock skew in K' keys; <= 0 uses
	// partition.DefaultMaxSkew.
	MaxSkew int64
	// KeyEncoding overrides the modulo partitioner's key encoding for
	// Hadoop/SciHadoop plans; nil uses the benign tile-index encoding.
	// Supplying partition.CornerInKEncoding reproduces the §4.3 skew
	// pathology.
	KeyEncoding partition.KeyEncoding
	// Priority optionally orders SIDR keyblock scheduling
	// (computational steering, §3.4); nil means keyblock order.
	Priority []int
	// Namespace and File attach HDFS locality hints to splits.
	Namespace *hdfs.Namespace
	File      string
	// BytesPerPoint is the on-disk element size for locality math
	// (default 8).
	BytesPerPoint int64
	// Index, when set, enables structural pruning: for value-predicated
	// operators, splits whose indexed [min, max] block ranges cannot
	// satisfy the predicate are dropped BEFORE the dependency graph is
	// derived, so every keyblock's I_ℓ and expected kv-count reflect
	// only contributing splits. The pruned plan's output is identical
	// to the unpruned plan's by construction (the index is a
	// conservative superset summary). Ignored when the index does not
	// cover the query input or the operator admits no pruning.
	Index *sidx.VarIndex
	// KeepSplits, when non-nil, restricts the plan to these indices of
	// the unpruned split generation order — the kept list a coordinator
	// computed from its index, shipped to workers (which hold no index)
	// so every party derives the identical pruned plan. Takes
	// precedence over Index.
	KeepSplits []int

	// File2 names side B's HDFS file for locality hints (join queries).
	File2 string
	// JoinSamplerA/B, when both set for a join query, let the planner
	// sample per-keyblock expected load from the data and re-tile hot
	// keyblocks. Nil skips sampling (base partition+ layout).
	JoinSamplerA mapreduce.RecordReader
	JoinSamplerB mapreduce.RecordReader
	// Retile, when set for a join query, rebuilds the recorded keyblock
	// layout instead of sampling — how clustered workers derive the exact
	// plan the coordinator shipped. Takes precedence over the samplers.
	Retile *join.Retile
	// NoJoinRetile keeps the base partition+ layout for a join even when
	// samplers are supplied (loads are still sampled and recorded) — the
	// naive baseline the bench compares against.
	NoJoinRetile bool
}

// Plan is a fully derived execution plan.
type Plan struct {
	Query    *query.Query
	Engine   Engine
	Reducers int

	// Splits are the Map-task work units.
	Splits []mapreduce.InputSplit
	// Space is the intermediate keyspace K'^T.
	Space coords.Slab
	// Part assigns K' keys to keyblocks.
	Part partition.Partitioner
	// Graph is the Map↔Reduce dependency relation (I_ℓ inverted from
	// split contributions) with expected source counts.
	Graph *depgraph.Graph
	// Keyblocks holds partition+'s contiguous keyblocks (SIDR only; nil
	// for modulo engines).
	Keyblocks []partition.Keyblock
	// Priority is the keyblock scheduling order (SIDR only).
	Priority []int
	// KeptSplits maps Splits back to the unpruned generation order when
	// structural pruning applied (KeptSplits[i] is Splits[i]'s original
	// index); nil for unpruned plans.
	KeptSplits []int
	// PrunedSplits counts the splits the structural index dropped.
	PrunedSplits int
	// Join is the resolved join plan for two-input queries: Splits is then
	// the combined two-sided list (side A first) and Part/Keyblocks come
	// from the join's (possibly re-tiled) keyblock layout. Nil for
	// single-input queries.
	Join *join.Plan
}

// NewPlan derives a plan for the query under the given engine.
func NewPlan(q *query.Query, engine Engine, opts Options) (*Plan, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if err := q.Validate(nil); err != nil {
		return nil, err
	}
	if opts.Reducers < 1 {
		return nil, fmt.Errorf("core: need at least one reducer, got %d", opts.Reducers)
	}
	bpp := opts.BytesPerPoint
	if bpp <= 0 {
		bpp = 8
	}
	splitPoints := opts.SplitPoints
	if splitPoints <= 0 {
		splitPoints = (128 << 20) / bpp
	}
	if q.Join {
		return newJoinPlan(q, engine, opts, splitPoints, bpp)
	}
	splits, err := mapreduce.GenerateSplits(q.Input, splitPoints, opts.Namespace, opts.File, bpp)
	if err != nil {
		return nil, err
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		return nil, err
	}

	p := &Plan{Query: q, Engine: engine, Reducers: opts.Reducers, Splits: splits, Space: space}

	// Structural pruning happens here — after split generation, before
	// the dependency graph — so I_ℓ and the kv-count barrier are derived
	// from contributing splits only.
	keep := opts.KeepSplits
	if keep == nil && opts.Index != nil {
		keep, _ = pruneKeepList(q, mapreduce.Slabs(splits), opts.Index)
	}
	if keep != nil {
		kept := make([]mapreduce.InputSplit, 0, len(keep))
		orig := make([]int, 0, len(keep))
		for _, i := range keep {
			if i < 0 || i >= len(splits) {
				return nil, fmt.Errorf("core: kept split index %d out of range [0,%d)", i, len(splits))
			}
			kept = append(kept, splits[i])
			orig = append(orig, i)
		}
		p.PrunedSplits = len(splits) - len(kept)
		p.Splits, p.KeptSplits = kept, orig
	}
	switch engine {
	case EngineSIDR:
		pp, err := partition.NewPartitionPlus(space, opts.Reducers, opts.MaxSkew)
		if err != nil {
			return nil, err
		}
		p.Part = pp
		p.Keyblocks = pp.Blocks
	case EngineHadoop, EngineSciHadoop:
		enc := opts.KeyEncoding
		if enc == nil {
			enc = partition.TileIndexEncoding{Space: space}
		}
		m, err := partition.NewModulo(opts.Reducers, enc)
		if err != nil {
			return nil, err
		}
		p.Part = m
	default:
		return nil, fmt.Errorf("core: unknown engine %v", engine)
	}

	p.Graph, err = depgraph.Build(q, mapreduce.Slabs(p.Splits), p.Part)
	if err != nil {
		return nil, err
	}
	if engine == EngineSIDR {
		if opts.Priority != nil {
			if len(opts.Priority) != opts.Reducers {
				return nil, fmt.Errorf("core: priority has %d entries for %d reducers", len(opts.Priority), opts.Reducers)
			}
			p.Priority = append([]int(nil), opts.Priority...)
		}
	}
	return p, nil
}

// newJoinPlan derives a plan for a two-input join query. Both sides'
// splits are generated with the same geometry rules and concatenated
// into one combined index space (side A first), so dispatch, shuffle and
// spill addressing work unchanged; the keyblock layout comes from the
// join planner — sampled and re-tiled when samplers are supplied,
// rebuilt verbatim when a recorded Retile is (the clustered-worker
// path). Structural index pruning does not apply to joins.
func newJoinPlan(q *query.Query, engine Engine, opts Options, splitPoints, bpp int64) (*Plan, error) {
	splitsA, err := mapreduce.GenerateSplits(q.Input, splitPoints, opts.Namespace, opts.File, bpp)
	if err != nil {
		return nil, fmt.Errorf("core: side A splits: %w", err)
	}
	splitsB, err := mapreduce.GenerateSplits(q.Input2, splitPoints, opts.Namespace, opts.File2, bpp)
	if err != nil {
		return nil, fmt.Errorf("core: side B splits: %w", err)
	}
	slabsA, slabsB := mapreduce.Slabs(splitsA), mapreduce.Slabs(splitsB)

	var jp *join.Plan
	if opts.Retile != nil {
		jp, err = join.Rebuild(q, len(splitsA), *opts.Retile)
	} else {
		jp, err = join.Build(q, join.Options{
			Reducers: opts.Reducers,
			MaxSkew:  opts.MaxSkew,
			NoRetile: opts.NoJoinRetile,
		}, opts.JoinSamplerA, opts.JoinSamplerB, slabsA, slabsB)
	}
	if err != nil {
		return nil, err
	}
	graph, err := join.BuildGraph(jp, slabsA, slabsB)
	if err != nil {
		return nil, err
	}

	splits := make([]mapreduce.InputSplit, 0, len(splitsA)+len(splitsB))
	splits = append(splits, splitsA...)
	for _, s := range splitsB {
		s.ID += len(splitsA)
		splits = append(splits, s)
	}
	p := &Plan{
		Query:     q,
		Engine:    engine,
		Reducers:  opts.Reducers,
		Splits:    splits,
		Space:     jp.Space,
		Part:      jp.Partitioner(),
		Graph:     graph,
		Keyblocks: jp.Keyblocks(),
		Join:      jp,
	}
	if engine == EngineSIDR && opts.Priority != nil {
		if len(opts.Priority) != jp.NumKeyblocks() {
			return nil, fmt.Errorf("core: priority has %d entries for %d keyblocks", len(opts.Priority), jp.NumKeyblocks())
		}
		p.Priority = append([]int(nil), opts.Priority...)
	}
	return p, nil
}

// pruneKeepList computes the kept-split indices for a query whose
// operator admits index pruning; ok is false (keep nil) when no pruning
// applies, which callers must treat as "run unpruned".
func pruneKeepList(q *query.Query, slabs []coords.Slab, vi *sidx.VarIndex) ([]int, bool) {
	if !vi.Covers(q.Input) || vi.Variable != "*" && vi.Variable != q.Variable {
		return nil, false
	}
	op, err := q.Op()
	if err != nil {
		return nil, false
	}
	pred, ok := ops.PrunePredicate(op, q.Params()...)
	if !ok {
		return nil, false
	}
	return vi.PruneSplits(slabs, pred), true
}

// PruneSplits computes the index-pruned keep list for a query without
// deriving a full plan: the same split geometry NewPlan generates,
// filtered by the operator's conservative block predicate. The
// coordinator path uses it to fill JobPlan.Pruned before dispatch.
// pruned is false when the operator or index admits no pruning (keep is
// nil — run unpruned); total is the unpruned split count.
func PruneSplits(q *query.Query, splitPoints int64, vi *sidx.VarIndex) (keep []int, total int, pruned bool, err error) {
	if vi == nil {
		return nil, 0, false, nil
	}
	if splitPoints <= 0 {
		return nil, 0, false, fmt.Errorf("core: PruneSplits needs explicit split points")
	}
	splits, err := mapreduce.GenerateSplits(q.Input, splitPoints, nil, "", 8)
	if err != nil {
		return nil, 0, false, err
	}
	keep, ok := pruneKeepList(q, mapreduce.Slabs(splits), vi)
	if !ok {
		return nil, len(splits), false, nil
	}
	return keep, len(splits), true, nil
}

// KeyblockSlab returns the rectangular K' extent of keyblock l for dense
// output writing; ok is false when the keyblock is not rectangular or the
// plan is not SIDR.
func (p *Plan) KeyblockSlab(l int) (coords.Slab, bool) {
	if p.Keyblocks == nil || l < 0 || l >= len(p.Keyblocks) {
		return coords.Slab{}, false
	}
	kb := p.Keyblocks[l]
	return kb.Slab, kb.Rect && kb.Size() > 0
}

// RunLocal executes the plan on the in-process engine. For SIDR plans it
// enables the dependency barrier, dependency-only shuffle, kv-count
// validation, and dependency-driven Map order; Hadoop/SciHadoop plans run
// with the global barrier and all-to-all shuffle.
func (p *Plan) RunLocal(reader mapreduce.RecordReader, tweak func(*mapreduce.Config)) (*mapreduce.Result, error) {
	cfg := mapreduce.Config{
		Query:   p.Query,
		Splits:  p.Splits,
		Reader:  reader,
		Part:    p.Part,
		Graph:   p.Graph,
		Combine: true,
	}
	if p.Engine == EngineSIDR {
		cfg.Barrier = mapreduce.DependencyBarrier
		cfg.ValidateCounts = true
		cfg.MapOrder = sched.DependencyDrivenMapOrder(p.Graph, p.Priority)
		cfg.ReduceOrder = p.Priority // nil keeps keyblock order
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return mapreduce.Run(cfg)
}

// RunLocalJoin executes a join plan on the in-process engine, one reader
// per side. Engine semantics (barrier, shuffle, count validation, task
// order) follow RunLocal.
func (p *Plan) RunLocalJoin(readerA, readerB mapreduce.RecordReader, tweak func(*mapreduce.Config)) (*mapreduce.Result, error) {
	if p.Join == nil {
		return nil, fmt.Errorf("core: RunLocalJoin on a non-join plan")
	}
	cfg := mapreduce.Config{
		Query:   p.Query,
		Splits:  p.Splits,
		Reader:  readerA,
		Reader2: readerB,
		Join:    p.Join,
		Part:    p.Part,
		Graph:   p.Graph,
	}
	if p.Engine == EngineSIDR {
		cfg.Barrier = mapreduce.DependencyBarrier
		cfg.ValidateCounts = true
		cfg.MapOrder = sched.DependencyDrivenMapOrder(p.Graph, p.Priority)
		cfg.ReduceOrder = p.Priority
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return mapreduce.Run(cfg)
}

// SimWorkload carries the per-task data volumes the simulator charges
// for; Derive computes it from the plan and query.
type SimWorkload struct {
	Splits  []simcluster.Split
	Reduces []simcluster.Reduce
}

// DeriveWorkload computes simulator workloads from the plan's real
// geometry: split points from the dependency analysis, per-keyblock pair
// and byte counts from the expected-count calculation.
//
// pairBytes is the serialised size of one intermediate pair; combined
// controls whether Map-side combining collapses each tile's points into
// one pair (distributive/holistic queries ship combined pairs in the
// paper's runs).
func (p *Plan) DeriveWorkload(pairBytes int64, combined bool) SimWorkload {
	w := SimWorkload{}
	for _, s := range p.Splits {
		w.Splits = append(w.Splits, simcluster.Split{
			Points: s.Slab.Size(),
			Bytes:  s.Slab.Size() * 8,
			Hosts:  s.Hosts,
		})
	}
	r := p.Part.NumKeyblocks()
	// Keys per keyblock: for partition+ the block sizes are exact; for
	// modulo we approximate by expected count / points-per-tile.
	tilePoints := p.Query.Extraction.Shape.Size()
	for l := 0; l < r; l++ {
		var pairs int64
		if combined {
			// Combining folds each tile's points into roughly one pair
			// per K' key: exact block sizes for partition+, expected
			// count divided by tile size for modulo keyblocks.
			if p.Keyblocks != nil {
				pairs = p.Keyblocks[l].Size()
			} else {
				pairs = p.Graph.ExpectedCount[l] / maxI64(tilePoints, 1)
			}
		} else {
			pairs = p.Graph.ExpectedCount[l]
		}
		w.Reduces = append(w.Reduces, simcluster.Reduce{
			Pairs:    pairs,
			InBytes:  pairs * pairBytes,
			OutBytes: pairs * 8,
			Deps:     p.Graph.KBToSplits[l],
		})
	}
	return w
}

// Simulate runs the plan on the discrete-event cluster model, using the
// engine's scheduler policy, barrier mode, shuffle pattern, and Map cost
// factor.
func (p *Plan) Simulate(cfg simcluster.Config, w SimWorkload) (*simcluster.Result, error) {
	return p.SimulateWith(cfg, w, nil)
}

// SimulateWith is Simulate with an optional Reduce-failure model for the
// §6 recovery study.
func (p *Plan) SimulateWith(cfg simcluster.Config, w SimWorkload, failure *simcluster.FailureModel) (*simcluster.Result, error) {
	maps := make([]sched.MapInfo, len(w.Splits))
	for i, s := range w.Splits {
		maps[i] = sched.MapInfo{Hosts: s.Hosts}
	}
	job := simcluster.Job{
		Splits:        w.Splits,
		Reduces:       w.Reduces,
		MapCostFactor: p.Engine.MapCostFactor(),
		Failure:       failure,
	}
	switch p.Engine {
	case EngineSIDR:
		s, err := sched.NewSIDR(maps, p.Graph, p.Priority)
		if err != nil {
			return nil, err
		}
		job.Scheduler = s
		job.GlobalBarrier = false
		job.FetchAll = false
	default:
		job.Scheduler = sched.NewHadoop(maps, p.Reducers)
		job.GlobalBarrier = true
		job.FetchAll = true
	}
	return simcluster.Simulate(cfg, job)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
