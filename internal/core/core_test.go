package core

import (
	"testing"

	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/hdfs"
	"sidr/internal/mapreduce"
	"sidr/internal/partition"
	"sidr/internal/query"
	"sidr/internal/simcluster"
)

func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewPlanValidation(t *testing.T) {
	q := mustParse(t, "avg t[0,0 : 16,4] es {4,4}")
	if _, err := NewPlan(nil, EngineSIDR, Options{Reducers: 2}); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, err := NewPlan(q, EngineSIDR, Options{}); err == nil {
		t.Fatal("zero reducers accepted")
	}
	if _, err := NewPlan(q, Engine(99), Options{Reducers: 2}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := NewPlan(q, EngineSIDR, Options{Reducers: 2, Priority: []int{0}}); err == nil {
		t.Fatal("short priority accepted")
	}
}

func TestPlanPartitionerPerEngine(t *testing.T) {
	q := mustParse(t, "avg t[0,0 : 16,4] es {4,4}")
	sidr, err := NewPlan(q, EngineSIDR, Options{Reducers: 2, SplitPoints: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sidr.Part.(*partition.PartitionPlus); !ok {
		t.Fatalf("SIDR partitioner = %T", sidr.Part)
	}
	if sidr.Keyblocks == nil {
		t.Fatal("SIDR plan missing keyblocks")
	}
	for _, e := range []Engine{EngineHadoop, EngineSciHadoop} {
		p, err := NewPlan(q, e, Options{Reducers: 2, SplitPoints: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Part.(*partition.Modulo); !ok {
			t.Fatalf("%v partitioner = %T", e, p.Part)
		}
		if p.Keyblocks != nil {
			t.Fatalf("%v plan has keyblocks", e)
		}
	}
}

func TestEngineStringsAndFactors(t *testing.T) {
	if EngineHadoop.String() != "Hadoop" || EngineSciHadoop.String() != "SciHadoop" || EngineSIDR.String() != "SIDR" {
		t.Fatal("engine names changed")
	}
	if EngineHadoop.MapCostFactor() <= 1 {
		t.Fatal("Hadoop map cost factor must exceed SciHadoop's")
	}
	if EngineSIDR.MapCostFactor() != 1 || EngineSciHadoop.MapCostFactor() != 1 {
		t.Fatal("SciHadoop/SIDR factors changed")
	}
}

func TestKeyblockSlab(t *testing.T) {
	q := mustParse(t, "avg t[0,0 : 16,4] es {4,4}")
	p, err := NewPlan(q, EngineSIDR, Options{Reducers: 2, SplitPoints: 16, MaxSkew: 2})
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := p.KeyblockSlab(0)
	if !ok {
		t.Fatal("keyblock 0 not rectangular")
	}
	if slab.Size() != 2 {
		t.Fatalf("keyblock 0 slab = %v", slab)
	}
	if _, ok := p.KeyblockSlab(99); ok {
		t.Fatal("out-of-range keyblock accepted")
	}
	h, _ := NewPlan(q, EngineHadoop, Options{Reducers: 2, SplitPoints: 16})
	if _, ok := h.KeyblockSlab(0); ok {
		t.Fatal("modulo plan returned a keyblock slab")
	}
}

func TestRunLocalAllEnginesAgree(t *testing.T) {
	q := mustParse(t, "median w[0,0 : 24,8] es {4,4}")
	gen := datagen.Windspeed(11)
	reader := &mapreduce.FuncReader{Fn: gen}
	var outputs []map[string][]float64
	for _, e := range []Engine{EngineHadoop, EngineSciHadoop, EngineSIDR} {
		p, err := NewPlan(q, e, Options{Reducers: 3, SplitPoints: 40})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunLocal(reader, nil)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		m := map[string][]float64{}
		for _, out := range res.Outputs {
			for i, k := range out.Keys {
				m[k.String()] = out.Values[i]
			}
		}
		outputs = append(outputs, m)
	}
	if len(outputs[0]) == 0 {
		t.Fatal("no outputs")
	}
	for k, v := range outputs[0] {
		for e := 1; e < 3; e++ {
			got, ok := outputs[e][k]
			if !ok || len(got) != len(v) {
				t.Fatalf("engines disagree on key %s", k)
			}
			for i := range v {
				if got[i] != v[i] {
					t.Fatalf("engines disagree on key %s: %v vs %v", k, got[i], v[i])
				}
			}
		}
	}
}

func TestRunLocalSIDRPriority(t *testing.T) {
	q := mustParse(t, "avg w[0,0 : 16,4] es {4,4}")
	p, err := NewPlan(q, EngineSIDR, Options{Reducers: 4, SplitPoints: 16, MaxSkew: 1, Priority: []int{3, 2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	var mapStarts []int
	res, err := p.RunLocal(&mapreduce.FuncReader{Fn: datagen.Windspeed(1)}, func(cfg *mapreduce.Config) {
		cfg.Workers = 1
		cfg.OnEvent = func(e mapreduce.Event) {
			if e.Kind == mapreduce.MapStart {
				mapStarts = append(mapStarts, e.Detail)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
	// Priority {3,2,1,0} with aligned splits runs maps in reverse order.
	if len(mapStarts) == 0 || mapStarts[0] != 3 {
		t.Fatalf("map starts = %v, want prioritised split 3 first", mapStarts)
	}
}

func TestPlanWithHDFSLocality(t *testing.T) {
	q := mustParse(t, "avg w[0,0 : 64,8] es {4,4}")
	ns, err := hdfs.NewNamespace(simcluster.Nodes(4), hdfs.Config{BlockSize: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.AddFile("w.ncf", 64*8*8); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(q, EngineSIDR, Options{
		Reducers: 2, SplitPoints: 64, Namespace: ns, File: "w.ncf",
	})
	if err != nil {
		t.Fatal(err)
	}
	withHosts := 0
	for _, s := range p.Splits {
		if len(s.Hosts) > 0 {
			withHosts++
		}
	}
	if withHosts != len(p.Splits) {
		t.Fatalf("%d of %d splits have locality hints", withHosts, len(p.Splits))
	}
}

func TestDeriveWorkloadAndSimulate(t *testing.T) {
	q := mustParse(t, "avg w[0,0 : 128,8] es {4,4}")
	cfg := simcluster.DefaultConfig()
	cfg.Workers = 2 // 8 map slots for 32 splits: four Map waves
	cfg.JitterFrac = 0

	var results []*simcluster.Result
	for _, e := range []Engine{EngineHadoop, EngineSciHadoop, EngineSIDR} {
		p, err := NewPlan(q, e, Options{Reducers: 4, SplitPoints: 32})
		if err != nil {
			t.Fatal(err)
		}
		w := p.DeriveWorkload(48, true)
		if len(w.Splits) != len(p.Splits) || len(w.Reduces) != 4 {
			t.Fatalf("workload %d/%d", len(w.Splits), len(w.Reduces))
		}
		res, err := p.Simulate(cfg, w)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		results = append(results, res)
	}
	hadoop, sci, sidr := results[0], results[1], results[2]
	// The paper's headline ordering: SIDR first result << SciHadoop <<
	// Hadoop; Hadoop slowest overall.
	if !(sidr.Stats.FirstResult < sci.Stats.FirstResult) {
		t.Fatalf("SIDR first result %v not before SciHadoop %v", sidr.Stats.FirstResult, sci.Stats.FirstResult)
	}
	if !(sci.Stats.FirstResult < hadoop.Stats.FirstResult) {
		t.Fatalf("SciHadoop first result %v not before Hadoop %v", sci.Stats.FirstResult, hadoop.Stats.FirstResult)
	}
	if !(sci.Stats.Makespan < hadoop.Stats.Makespan) {
		t.Fatalf("SciHadoop %v not faster than Hadoop %v", sci.Stats.Makespan, hadoop.Stats.Makespan)
	}
	// Connection accounting: SIDR ≪ Hadoop-mode.
	if !(sidr.Stats.Connections < hadoop.Stats.Connections) {
		t.Fatalf("connections: SIDR %d vs Hadoop %d", sidr.Stats.Connections, hadoop.Stats.Connections)
	}
}

func TestDeriveWorkloadUncombined(t *testing.T) {
	q := mustParse(t, "avg w[0,0 : 16,4] es {4,4}")
	p, err := NewPlan(q, EngineSIDR, Options{Reducers: 2, SplitPoints: 16})
	if err != nil {
		t.Fatal(err)
	}
	combined := p.DeriveWorkload(48, true)
	raw := p.DeriveWorkload(48, false)
	var cPairs, rPairs int64
	for i := range combined.Reduces {
		cPairs += combined.Reduces[i].Pairs
		rPairs += raw.Reduces[i].Pairs
	}
	if !(cPairs < rPairs) {
		t.Fatalf("combined pairs %d not below raw %d", cPairs, rPairs)
	}
	if rPairs != q.Input.Size() {
		t.Fatalf("raw pairs = %d, want input size %d", rPairs, q.Input.Size())
	}
}

func TestSkewEncodingOption(t *testing.T) {
	// Supplying the corner-in-K encoding reproduces §4.3: with an even
	// extraction stride and even reducer count, half the keyblocks
	// receive nothing.
	q := mustParse(t, "avg w[0,0 : 32,8] es {2,2}")
	p, err := NewPlan(q, EngineSciHadoop, Options{
		Reducers:    2,
		SplitPoints: 32,
		KeyEncoding: partition.CornerInKEncoding{
			InputSpace: coords.NewShape(32, 8),
			Extraction: q.Extraction,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.ExpectedCount[1] != 0 {
		t.Fatalf("expected starved keyblock, got counts %v", p.Graph.ExpectedCount)
	}
	if p.Graph.ExpectedCount[0] != q.Input.Size() {
		t.Fatalf("keyblock 0 count = %d", p.Graph.ExpectedCount[0])
	}
}
