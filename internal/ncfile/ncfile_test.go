package ncfile

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

// paperHeader mirrors Figure 1 of the paper: int temperature(time, lat,
// lon) with dims {365, 250, 200}.
func paperHeader() *Header {
	return &Header{
		Dims: []Dimension{
			{Name: "time", Length: 365},
			{Name: "lat", Length: 250},
			{Name: "lon", Length: 200},
		},
		Vars: []Variable{
			{Name: "temperature", Type: Int64, Dims: []string{"time", "lat", "lon"}},
		},
	}
}

func TestHeaderValidate(t *testing.T) {
	if err := paperHeader().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Header{
		{Dims: []Dimension{{Name: "", Length: 1}}},
		{Dims: []Dimension{{Name: "x", Length: 0}}},
		{Dims: []Dimension{{Name: "x", Length: 1}, {Name: "x", Length: 2}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{{Name: "", Type: Float64, Dims: []string{"x"}}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{{Name: "v", Type: 0, Dims: []string{"x"}}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"y"}}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{{Name: "v", Type: Float64, Dims: nil}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"x"}, Origin: []int64{0, 0}}}},
		{Dims: []Dimension{{Name: "x", Length: 1}}, Vars: []Variable{
			{Name: "v", Type: Float64, Dims: []string{"x"}},
			{Name: "v", Type: Float64, Dims: []string{"x"}},
		}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad header %d accepted", i)
		}
	}
}

func TestHeaderLookups(t *testing.T) {
	h := paperHeader()
	if l, err := h.DimLength("lat"); err != nil || l != 250 {
		t.Fatalf("DimLength(lat) = %d, %v", l, err)
	}
	if _, err := h.DimLength("nope"); err == nil {
		t.Fatal("missing dim accepted")
	}
	shape, err := h.VarShape("temperature")
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(coords.NewShape(365, 250, 200)) {
		t.Fatalf("VarShape = %v", shape)
	}
	if _, err := h.VarShape("nope"); err == nil {
		t.Fatal("missing var accepted")
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	path := tempPath(t, "t.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "t", Length: 4}, {Name: "x", Length: 6}},
		Vars: []Variable{
			{Name: "wind", Type: Float64, Dims: []string{"t", "x"}},
			{Name: "flags", Type: Int64, Dims: []string{"x"}, Origin: []int64{10}},
		},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := g.Header()
	if len(got.Dims) != 2 || len(got.Vars) != 2 {
		t.Fatalf("header round trip: %+v", got)
	}
	v, err := got.Var("flags")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Origin) != 1 || v.Origin[0] != 10 {
		t.Fatalf("origin round trip: %v", v.Origin)
	}
	all, err := g.ReadAll("wind")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 24 {
		t.Fatalf("ReadAll returned %d values", len(all))
	}
	for i, x := range all {
		if x != 0 {
			t.Fatalf("fill mismatch at %d: %v", i, x)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tempPath(t, "bad.ncf")
	if err := os.WriteFile(path, []byte("not an ncfile at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("garbage file accepted")
	}
	if err := os.WriteFile(path, []byte{'N', 'C', 'F', 'G', 9, 9}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteReadSlab(t *testing.T) {
	path := tempPath(t, "slab.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 5}, {Name: "b", Length: 7}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a", "b"}}},
	}
	f, err := Create(path, h, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slab := coords.MustSlab(coords.NewCoord(1, 2), coords.NewShape(3, 4))
	vals := make([]float64, slab.Size())
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	if err := f.WriteSlab("v", slab, vals); err != nil {
		t.Fatal(err)
	}
	back, err := f.ReadSlab("v", slab)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d: got %v want %v", i, back[i], vals[i])
		}
	}
	// Everything outside the slab must still hold the fill value.
	all, err := f.ReadAll("v")
	if err != nil {
		t.Fatal(err)
	}
	full := coords.NewShape(5, 7)
	for off := int64(0); off < full.Size(); off++ {
		c, _ := full.Delinearize(off)
		if slab.Contains(c) {
			continue
		}
		if all[off] != -1 {
			t.Fatalf("outside-slab value at %v = %v, want -1", c, all[off])
		}
	}
}

func TestWriteSlabErrors(t *testing.T) {
	path := tempPath(t, "err.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 4}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a"}}},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteSlab("v", coords.MustSlab(coords.NewCoord(0), coords.NewShape(2)), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := f.WriteSlab("v", coords.MustSlab(coords.NewCoord(3), coords.NewShape(2)), []float64{1, 2}); err == nil {
		t.Fatal("out-of-bounds slab accepted")
	}
	if err := f.WriteSlab("nope", coords.MustSlab(coords.NewCoord(0), coords.NewShape(1)), []float64{1}); err == nil {
		t.Fatal("missing variable accepted")
	}
	if _, err := f.ReadSlab("v", coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(1, 1))); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestInt64Rounding(t *testing.T) {
	path := tempPath(t, "int.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 3}},
		Vars: []Variable{{Name: "v", Type: Int64, Dims: []string{"a"}}},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slab := coords.MustSlab(coords.NewCoord(0), coords.NewShape(3))
	if err := f.WriteSlab("v", slab, []float64{1.9, -2.9, 42}); err != nil {
		t.Fatal(err)
	}
	back, err := f.ReadSlab("v", slab)
	if err != nil {
		t.Fatal(err)
	}
	// Int64 stores truncate toward zero as Go's float64->int64 conversion.
	want := []float64{1, -2, 42}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("value %d: got %v want %v", i, back[i], want[i])
		}
	}
}

func TestCountRuns(t *testing.T) {
	path := tempPath(t, "runs.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 10}, {Name: "b", Length: 10}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a", "b"}}},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A full-width slab is 1 run per row unless it spans whole rows.
	n, err := f.CountRuns("v", coords.MustSlab(coords.NewCoord(2, 0), coords.NewShape(3, 10)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("full-width runs = %d, want 3", n)
	}
	n, err = f.CountRuns("v", coords.MustSlab(coords.NewCoord(0, 3), coords.NewShape(5, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("narrow runs = %d, want 5", n)
	}
}

func TestQuickSlabRoundTrip(t *testing.T) {
	path := tempPath(t, "quick.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 6}, {Name: "b", Length: 5}, {Name: "c", Length: 4}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a", "b", "c"}}},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	full := coords.NewShape(6, 5, 4)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := make(coords.Coord, 3)
		s := make(coords.Shape, 3)
		for i := range c {
			c[i] = r.Int63n(full[i])
			s[i] = 1 + r.Int63n(full[i]-c[i])
		}
		slab := coords.Slab{Corner: c, Shape: s}
		vals := make([]float64, slab.Size())
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		if err := f.WriteSlab("v", slab, vals); err != nil {
			return false
		}
		back, err := f.ReadSlab("v", slab)
		if err != nil {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDenseOutput(t *testing.T) {
	path := tempPath(t, "dense.ncf")
	kb := coords.MustSlab(coords.NewCoord(100, 20), coords.NewShape(4, 5))
	vals := make([]float64, kb.Size())
	for i := range vals {
		vals[i] = float64(i)
	}
	size, err := WriteDense(path, "out", kb, vals)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, err := f.Header().Var("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Origin) != 2 || v.Origin[0] != 100 || v.Origin[1] != 20 {
		t.Fatalf("origin = %v", v.Origin)
	}
	back, err := f.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d: got %v want %v", i, back[i], vals[i])
		}
	}
	if _, err := WriteDense(path, "out", kb, vals[:1]); err == nil {
		t.Fatal("short values accepted")
	}
}

func TestWriteSentinelOutput(t *testing.T) {
	path := tempPath(t, "sent.ncf")
	total := coords.NewShape(6, 6)
	keys := []coords.Coord{coords.NewCoord(0, 0), coords.NewCoord(3, 4), coords.NewCoord(5, 5)}
	vals := []float64{1, 2, 3}
	size, err := WriteSentinel(path, "out", total, DefaultSentinel, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Sentinel output is always the full space regardless of useful data.
	if size < total.Size()*8 {
		t.Fatalf("sentinel size %d < payload %d", size, total.Size()*8)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	all, err := f.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{}
	for i, k := range keys {
		off, _ := total.Linearize(k)
		want[off] = vals[i]
	}
	for off := int64(0); off < total.Size(); off++ {
		if v, ok := want[off]; ok {
			if all[off] != v {
				t.Fatalf("offset %d = %v, want %v", off, all[off], v)
			}
		} else if all[off] != DefaultSentinel {
			t.Fatalf("offset %d = %v, want sentinel", off, all[off])
		}
	}
	if _, err := WriteSentinel(path, "out", total, 0, keys, vals[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteReadPairs(t *testing.T) {
	path := tempPath(t, "pairs.ncfp")
	keys := []coords.Coord{coords.NewCoord(1, 2, 3), coords.NewCoord(4, 5, 6)}
	vals := []float64{math.Pi, -1}
	size, err := WritePairs(path, 3, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// magic + rank + count + 2 records × (3 coords + value) × 8 bytes
	want := int64(4 + 4 + 8 + 2*(3+1)*8)
	if size != want {
		t.Fatalf("pair size = %d, want %d", size, want)
	}
	gotKeys, gotVals, err := ReadPairs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != 2 || !gotKeys[1].Equal(keys[1]) || gotVals[0] != math.Pi {
		t.Fatalf("ReadPairs = %v, %v", gotKeys, gotVals)
	}
	if _, err := WritePairs(path, 2, keys, vals); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, _, err := ReadPairs(tempPath(t, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCreateEmptyIsCheap(t *testing.T) {
	// CreateEmpty must produce a file whose logical size matches Create's
	// but without writing the payload; both must read back as usable.
	h := &Header{
		Dims: []Dimension{{Name: "a", Length: 100}, {Name: "b", Length: 100}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a", "b"}}},
	}
	p1 := tempPath(t, "full.ncf")
	p2 := tempPath(t, "empty.ncf")
	f1, err := Create(p1, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := f1.Size()
	f1.Close()
	h2 := &Header{Dims: h.Dims, Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"a", "b"}}}}
	f2, err := CreateEmpty(p2, h2)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := f2.Size()
	f2.Close()
	if s1 != s2 {
		t.Fatalf("sizes differ: %d vs %d", s1, s2)
	}
	g, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.ReadAll("v"); err != nil {
		t.Fatal(err)
	}
}

func TestTotalSize(t *testing.T) {
	h := paperHeader()
	total, err := h.TotalSize()
	if err != nil {
		t.Fatal(err)
	}
	payload := int64(365*250*200) * 8
	if total <= payload {
		t.Fatalf("TotalSize %d <= payload %d", total, payload)
	}
	if total-payload > 4096 {
		t.Fatalf("header overhead %d implausibly large", total-payload)
	}
}

func TestDataTypeString(t *testing.T) {
	if Float64.String() != "double" || Int64.String() != "int64" {
		t.Fatal("DataType names changed")
	}
	if DataType(99).Size() != 0 {
		t.Fatal("unknown type has nonzero size")
	}
}
