package ncfile

import (
	"fmt"
	"io"
	"os"

	"sidr/internal/coords"
)

// File is an open ncfile container supporting coordinate-based hyperslab
// reads and writes. It is safe for concurrent reads (ReadSlab uses
// positional IO) but writes must be externally serialised per region.
type File struct {
	f      *os.File
	header *Header
	path   string
}

// Create writes a new container at path with the given header. The data
// payload is materialised immediately: fill holds the initial value for
// every element of every variable (the "sentinel" when building sparse
// output files; zero is typical for dense files about to be fully
// written).
func Create(path string, h *Header, fill float64) (*File, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if err := h.assignOffsets(); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := h.encode(f); err != nil {
		f.Close()
		return nil, err
	}
	// Materialise every variable's payload with the fill value, streaming
	// a reused buffer so huge files do not require huge memory.
	const bufElems = 64 * 1024
	buf := make([]byte, bufElems*8)
	for _, v := range h.Vars {
		shape, err := h.VarShape(v.Name)
		if err != nil {
			f.Close()
			return nil, err
		}
		var one [8]byte
		encodeValue(v.Type, fill, one[:])
		for i := 0; i < bufElems; i++ {
			copy(buf[i*8:], one[:])
		}
		remaining := shape.Size()
		for remaining > 0 {
			n := int64(bufElems)
			if remaining < n {
				n = remaining
			}
			if _, err := f.Write(buf[:n*8]); err != nil {
				f.Close()
				return nil, fmt.Errorf("ncfile: filling %q: %w", v.Name, err)
			}
			remaining -= n
		}
	}
	return &File{f: f, header: h, path: path}, nil
}

// CreateEmpty writes a new container whose payload space is allocated via
// truncation rather than explicit writes. On filesystems with sparse-file
// support this is nearly free — it models the cheap allocation of a dense
// output file that a task will fully overwrite, as opposed to Create with
// a sentinel which pays for every byte.
func CreateEmpty(path string, h *Header) (*File, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if err := h.assignOffsets(); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := h.encode(f); err != nil {
		f.Close()
		return nil, err
	}
	total, err := h.TotalSize()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(total); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, header: h, path: path}, nil
}

// Open opens an existing container read-write.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, header: h, path: path}, nil
}

// Header returns the container's structural metadata. Callers must not
// mutate it.
func (fl *File) Header() *Header { return fl.header }

// Path returns the file's path.
func (fl *File) Path() string { return fl.path }

// Close flushes and closes the underlying file.
func (fl *File) Close() error { return fl.f.Close() }

// Sync flushes file contents to stable storage.
func (fl *File) Sync() error { return fl.f.Sync() }

// Size returns the current byte size of the file on disk.
func (fl *File) Size() (int64, error) {
	st, err := fl.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// slabRuns invokes fn for every maximal contiguous element run of slab
// within a variable of shape full, passing the linear element offset of
// the run's start and its length. Runs follow row-major order, so
// concatenating them yields the slab's values in row-major order.
func slabRuns(full coords.Shape, slab coords.Slab, fn func(offset, length int64) error) error {
	if full.Rank() != slab.Rank() {
		return coords.ErrRankMismatch
	}
	fullSlab := coords.Slab{Corner: make(coords.Coord, full.Rank()), Shape: full}
	if !fullSlab.ContainsSlab(slab) {
		return fmt.Errorf("%w: %v in %v", ErrOutOfBound, slab, full)
	}
	rank := slab.Rank()
	runLen := slab.Shape[rank-1]
	// Iterate over the slab collapsed to its leading rank-1 dimensions.
	if rank == 1 {
		off, err := full.Linearize(slab.Corner)
		if err != nil {
			return err
		}
		return fn(off, runLen)
	}
	outer := coords.Slab{
		Corner: slab.Corner[:rank-1].Clone(),
		Shape:  slab.Shape[:rank-1].Clone(),
	}
	var iterErr error
	outer.Each(func(head coords.Coord) bool {
		c := append(head.Clone(), slab.Corner[rank-1])
		off, err := full.Linearize(c)
		if err != nil {
			iterErr = err
			return false
		}
		if err := fn(off, runLen); err != nil {
			iterErr = err
			return false
		}
		return true
	})
	return iterErr
}

// ReadSlab reads the hyperslab of the named variable into a freshly
// allocated row-major []float64.
func (fl *File) ReadSlab(varName string, slab coords.Slab) ([]float64, error) {
	v, err := fl.header.Var(varName)
	if err != nil {
		return nil, err
	}
	full, err := fl.header.VarShape(varName)
	if err != nil {
		return nil, err
	}
	out := make([]float64, slab.Size())
	esz := v.Type.Size()
	var buf []byte
	pos := 0
	err = slabRuns(full, slab, func(off, length int64) error {
		need := length * esz
		if int64(len(buf)) < need {
			buf = make([]byte, need)
		}
		if _, err := fl.f.ReadAt(buf[:need], v.dataOffset+off*esz); err != nil {
			return fmt.Errorf("ncfile: reading %q at %d: %w", varName, off, err)
		}
		for i := int64(0); i < length; i++ {
			out[pos] = decodeValue(v.Type, buf[i*esz:])
			pos++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSlab writes row-major values into the hyperslab of the named
// variable. len(values) must equal slab.Size().
func (fl *File) WriteSlab(varName string, slab coords.Slab, values []float64) error {
	v, err := fl.header.Var(varName)
	if err != nil {
		return err
	}
	full, err := fl.header.VarShape(varName)
	if err != nil {
		return err
	}
	if int64(len(values)) != slab.Size() {
		return fmt.Errorf("ncfile: %d values for slab of %d elements", len(values), slab.Size())
	}
	esz := v.Type.Size()
	var buf []byte
	pos := 0
	return slabRuns(full, slab, func(off, length int64) error {
		need := length * esz
		if int64(len(buf)) < need {
			buf = make([]byte, need)
		}
		for i := int64(0); i < length; i++ {
			encodeValue(v.Type, values[pos], buf[i*esz:])
			pos++
		}
		if _, err := fl.f.WriteAt(buf[:need], v.dataOffset+off*esz); err != nil {
			return fmt.Errorf("ncfile: writing %q at %d: %w", varName, off, err)
		}
		return nil
	})
}

// ReadAll reads a variable's entire payload; a convenience for small
// files and tests.
func (fl *File) ReadAll(varName string) ([]float64, error) {
	full, err := fl.header.VarShape(varName)
	if err != nil {
		return nil, err
	}
	return fl.ReadSlab(varName, coords.Slab{Corner: make(coords.Coord, full.Rank()), Shape: full})
}

// CountRuns reports how many contiguous byte runs (seeks, effectively) a
// hyperslab access of the named variable requires. Sparse, strided output
// assignments translate into many runs; SIDR's contiguous keyblocks
// translate into few — the effect Table 2 measures.
func (fl *File) CountRuns(varName string, slab coords.Slab) (int64, error) {
	full, err := fl.header.VarShape(varName)
	if err != nil {
		return 0, err
	}
	var n int64
	err = slabRuns(full, slab, func(off, length int64) error {
		n++
		return nil
	})
	return n, err
}

var _ io.Closer = (*File)(nil)
