package ncfile

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestAttributesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attrs.ncf")
	h := &Header{
		Dims: []Dimension{{Name: "time", Length: 4}, {Name: "lat", Length: 3}},
		Vars: []Variable{{
			Name: "temperature",
			Type: Float64,
			Dims: []string{"time", "lat"},
			Attrs: []Attribute{
				{Name: "units", Value: "degC"},
				{Name: "long_name", Value: "surface air temperature"},
			},
		}},
		Attrs: []Attribute{
			{Name: "institution", Value: "UCSC Systems Research Lab"},
			{Name: "grid", Value: "25N-50N 1/10 deg"},
		},
	}
	f, err := Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := g.Header()
	if v, ok := got.Attr("institution"); !ok || v != "UCSC Systems Research Lab" {
		t.Fatalf("global attr = %q, %v", v, ok)
	}
	if _, ok := got.Attr("missing"); ok {
		t.Fatal("phantom global attr")
	}
	tv, err := got.Var("temperature")
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := tv.Attr("units"); !ok || u != "degC" {
		t.Fatalf("var attr = %q, %v", u, ok)
	}
	if _, ok := tv.Attr("nope"); ok {
		t.Fatal("phantom var attr")
	}
	// Data offsets must account for the attribute bytes: the payload
	// must read back intact.
	vals, err := g.ReadAll("temperature")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 12 {
		t.Fatalf("%d values", len(vals))
	}
}

func TestDescribeFigure1Style(t *testing.T) {
	// The paper's Figure 1 metadata rendered from a header.
	h := &Header{
		Dims: []Dimension{
			{Name: "time", Length: 365},
			{Name: "lat", Length: 250},
			{Name: "lon", Length: 200},
		},
		Vars: []Variable{{
			Name:   "temperature",
			Type:   Int64,
			Dims:   []string{"time", "lat", "lon"},
			Origin: []int64{0, 0, 0},
			Attrs:  []Attribute{{Name: "units", Value: "degC"}},
		}},
		Attrs: []Attribute{{Name: "source", Value: "figure 1"}},
	}
	out := h.Describe()
	for _, want := range []string{
		"dimensions:",
		"time = 365;",
		"lat = 250;",
		"variables:",
		"int64 temperature(time, lat, lon);",
		`temperature:units = "degC";`,
		"temperature:origin = [0 0 0];",
		`:source = "figure 1";`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestAttributesAffectHeaderSize(t *testing.T) {
	plain := &Header{
		Dims: []Dimension{{Name: "x", Length: 2}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"x"}}},
	}
	attributed := &Header{
		Dims:  plain.Dims,
		Vars:  []Variable{{Name: "v", Type: Float64, Dims: []string{"x"}, Attrs: []Attribute{{Name: "a", Value: "bb"}}}},
		Attrs: []Attribute{{Name: "g", Value: "vv"}},
	}
	p, err := plain.TotalSize()
	if err != nil {
		t.Fatal(err)
	}
	a, err := attributed.TotalSize()
	if err != nil {
		t.Fatal(err)
	}
	// Two attributes: (2+1 + 2+2) + (2+1 + 2+2) = 14 bytes of entries.
	if a-p != 14 {
		t.Fatalf("attribute bytes = %d, want 14", a-p)
	}
}
