// Package ncfile implements a NetCDF-classic-like binary container for
// dense n-dimensional scientific arrays. It is the repository's stand-in
// for NetCDF/HDF5: structural metadata (dimensions and variables) is
// encoded alongside the data in a single file, and all data access happens
// through logical coordinates (hyperslabs) rather than byte offsets —
// exactly the property SciHadoop and SIDR rely on.
//
// The on-disk layout is:
//
//	magic "NCFG" | u16 version | header | per-variable row-major payload
//
// Values are stored per the variable's declared type (float64 or int64)
// and surfaced to callers as float64, which is sufficient for every
// operator in this repository and keeps the public API small.
package ncfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"sidr/internal/coords"
)

// Magic identifies an ncfile container.
var Magic = [4]byte{'N', 'C', 'F', 'G'}

// Version is the current format version.
const Version uint16 = 1

// DataType enumerates supported element types.
type DataType uint8

const (
	// Float64 stores IEEE-754 doubles.
	Float64 DataType = iota + 1
	// Int64 stores signed 64-bit integers.
	Int64
)

// Size returns the element size in bytes.
func (d DataType) Size() int64 {
	switch d {
	case Float64, Int64:
		return 8
	default:
		return 0
	}
}

// String names the data type in metadata dumps.
func (d DataType) String() string {
	switch d {
	case Float64:
		return "double"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(d))
	}
}

// Dimension is a named axis of the dataset, e.g. time = 365.
type Dimension struct {
	Name   string
	Length int64
}

// Attribute is a free-form name/value metadata entry, mirroring NetCDF
// attributes ("units" = "m/s", "origin" = "25N 85W", ...).
type Attribute struct {
	Name  string
	Value string
}

// Variable is a typed array defined over an ordered list of dimensions.
type Variable struct {
	Name string
	Type DataType
	Dims []string // names into Header.Dims, slowest-varying first

	// Origin optionally records the variable's global position when the
	// file holds a dense sub-array of a larger logical dataset (paper
	// §4.4: "coordinates of individual points are relative to the origin
	// of that dense array"). Nil means the variable is rooted at the
	// global origin. When present its rank must equal len(Dims).
	Origin []int64

	// Attrs carries per-variable metadata attributes.
	Attrs []Attribute

	// dataOffset is the absolute byte offset of the variable's payload;
	// populated when a header is encoded or decoded.
	dataOffset int64
}

// Header is the structural metadata of an ncfile container.
type Header struct {
	Dims []Dimension
	Vars []Variable
	// Attrs carries global metadata attributes.
	Attrs []Attribute
}

// Attr returns the named global attribute value.
func (h *Header) Attr(name string) (string, bool) {
	for _, a := range h.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Attr returns the named per-variable attribute value.
func (v *Variable) Attr(name string) (string, bool) {
	for _, a := range v.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Errors reported by the package.
var (
	ErrBadMagic   = errors.New("ncfile: bad magic")
	ErrBadVersion = errors.New("ncfile: unsupported version")
	ErrNoVariable = errors.New("ncfile: no such variable")
	ErrNoDim      = errors.New("ncfile: no such dimension")
	ErrOutOfBound = errors.New("ncfile: hyperslab outside variable bounds")
)

// DimLength returns the length of the named dimension.
func (h *Header) DimLength(name string) (int64, error) {
	for _, d := range h.Dims {
		if d.Name == name {
			return d.Length, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoDim, name)
}

// Var returns the named variable.
func (h *Header) Var(name string) (*Variable, error) {
	for i := range h.Vars {
		if h.Vars[i].Name == name {
			return &h.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNoVariable, name)
}

// VarShape returns the full shape of the named variable.
func (h *Header) VarShape(name string) (coords.Shape, error) {
	v, err := h.Var(name)
	if err != nil {
		return nil, err
	}
	shape := make(coords.Shape, len(v.Dims))
	for i, dn := range v.Dims {
		l, err := h.DimLength(dn)
		if err != nil {
			return nil, err
		}
		shape[i] = l
	}
	return shape, nil
}

// Validate checks internal consistency: unique names, positive lengths,
// variables referencing declared dimensions.
func (h *Header) Validate() error {
	seen := make(map[string]bool, len(h.Dims))
	for _, d := range h.Dims {
		if d.Name == "" {
			return errors.New("ncfile: empty dimension name")
		}
		if d.Length <= 0 {
			return fmt.Errorf("ncfile: dimension %q has non-positive length %d", d.Name, d.Length)
		}
		if seen[d.Name] {
			return fmt.Errorf("ncfile: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
	}
	vseen := make(map[string]bool, len(h.Vars))
	for _, v := range h.Vars {
		if v.Name == "" {
			return errors.New("ncfile: empty variable name")
		}
		if vseen[v.Name] {
			return fmt.Errorf("ncfile: duplicate variable %q", v.Name)
		}
		vseen[v.Name] = true
		if v.Type.Size() == 0 {
			return fmt.Errorf("ncfile: variable %q has unknown type", v.Name)
		}
		if len(v.Dims) == 0 {
			return fmt.Errorf("ncfile: variable %q has no dimensions", v.Name)
		}
		for _, dn := range v.Dims {
			if !seen[dn] {
				return fmt.Errorf("ncfile: variable %q references undeclared dimension %q", v.Name, dn)
			}
		}
		if v.Origin != nil && len(v.Origin) != len(v.Dims) {
			return fmt.Errorf("ncfile: variable %q origin rank %d != %d dims", v.Name, len(v.Origin), len(v.Dims))
		}
	}
	return nil
}

// Describe renders the header in the NetCDF-style notation of the
// paper's Figure 1:
//
//	dimensions:
//	        time = 365;
//	        lat = 250;
//	variables:
//	        double temperature(time, lat);
//	                temperature:units = "degC";
func (h *Header) Describe() string {
	var b strings.Builder
	b.WriteString("dimensions:\n")
	for _, d := range h.Dims {
		fmt.Fprintf(&b, "\t%s = %d;\n", d.Name, d.Length)
	}
	b.WriteString("variables:\n")
	for _, v := range h.Vars {
		fmt.Fprintf(&b, "\t%s %s(%s);\n", v.Type, v.Name, strings.Join(v.Dims, ", "))
		if v.Origin != nil {
			fmt.Fprintf(&b, "\t\t%s:origin = %v;\n", v.Name, v.Origin)
		}
		for _, a := range v.Attrs {
			fmt.Fprintf(&b, "\t\t%s:%s = %q;\n", v.Name, a.Name, a.Value)
		}
	}
	if len(h.Attrs) > 0 {
		b.WriteString("// global attributes:\n")
		for _, a := range h.Attrs {
			fmt.Fprintf(&b, "\t:%s = %q;\n", a.Name, a.Value)
		}
	}
	return b.String()
}

// headerSize returns the encoded byte size of the header including magic
// and version, so payload offsets can be assigned.
func (h *Header) headerSize() int64 {
	attrsSize := func(attrs []Attribute) int64 {
		n := int64(4)
		for _, a := range attrs {
			n += 2 + int64(len(a.Name)) + 2 + int64(len(a.Value))
		}
		return n
	}
	n := int64(4 + 2) // magic + version
	n += 4            // ndims
	for _, d := range h.Dims {
		n += 2 + int64(len(d.Name)) + 8
	}
	n += attrsSize(h.Attrs)
	n += 4 // nvars
	for _, v := range h.Vars {
		n += 2 + int64(len(v.Name)) + 1 + 4 + int64(4*len(v.Dims)) + 8
		n += 4 + int64(8*len(v.Origin)) // origin count + entries
		n += attrsSize(v.Attrs)
	}
	return n
}

// assignOffsets lays variables out back-to-back after the header.
func (h *Header) assignOffsets() error {
	off := h.headerSize()
	for i := range h.Vars {
		h.Vars[i].dataOffset = off
		shape, err := h.VarShape(h.Vars[i].Name)
		if err != nil {
			return err
		}
		off += shape.Size() * h.Vars[i].Type.Size()
	}
	return nil
}

// TotalSize returns the byte size of a complete file with this header.
func (h *Header) TotalSize() (int64, error) {
	if err := h.assignOffsets(); err != nil {
		return 0, err
	}
	if len(h.Vars) == 0 {
		return h.headerSize(), nil
	}
	last := h.Vars[len(h.Vars)-1]
	shape, err := h.VarShape(last.Name)
	if err != nil {
		return 0, err
	}
	return last.dataOffset + shape.Size()*last.Type.Size(), nil
}

// encode writes the header (with magic and version) to w.
func (h *Header) encode(w io.Writer) error {
	if err := h.Validate(); err != nil {
		return err
	}
	if err := h.assignOffsets(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) { var b [2]byte; le.PutUint16(b[:], v); bw.Write(b[:]) }
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeStr := func(s string) { writeU16(uint16(len(s))); bw.WriteString(s) }

	writeAttrs := func(attrs []Attribute) {
		writeU32(uint32(len(attrs)))
		for _, a := range attrs {
			writeStr(a.Name)
			writeStr(a.Value)
		}
	}
	writeU16(Version)
	writeU32(uint32(len(h.Dims)))
	for _, d := range h.Dims {
		writeStr(d.Name)
		writeU64(uint64(d.Length))
	}
	writeAttrs(h.Attrs)
	dimIndex := make(map[string]uint32, len(h.Dims))
	for i, d := range h.Dims {
		dimIndex[d.Name] = uint32(i)
	}
	writeU32(uint32(len(h.Vars)))
	for _, v := range h.Vars {
		writeStr(v.Name)
		bw.WriteByte(byte(v.Type))
		writeU32(uint32(len(v.Dims)))
		for _, dn := range v.Dims {
			writeU32(dimIndex[dn])
		}
		writeU32(uint32(len(v.Origin)))
		for _, o := range v.Origin {
			writeU64(uint64(o))
		}
		writeAttrs(v.Attrs)
		writeU64(uint64(v.dataOffset))
	}
	return bw.Flush()
}

// decodeHeader reads a header from r.
func decodeHeader(r io.Reader) (*Header, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ncfile: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return le.Uint16(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return le.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b[:]), nil
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	const maxEntries = 1 << 20 // guard against corrupt headers
	readAttrs := func() ([]Attribute, error) {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n > maxEntries {
			return nil, fmt.Errorf("ncfile: implausible attribute count %d", n)
		}
		var out []Attribute
		for i := uint32(0); i < n; i++ {
			name, err := readStr()
			if err != nil {
				return nil, err
			}
			value, err := readStr()
			if err != nil {
				return nil, err
			}
			out = append(out, Attribute{Name: name, Value: value})
		}
		return out, nil
	}
	h := &Header{}
	ndims, err := readU32()
	if err != nil {
		return nil, err
	}
	if ndims > maxEntries {
		return nil, fmt.Errorf("ncfile: implausible dimension count %d", ndims)
	}
	for i := uint32(0); i < ndims; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		l, err := readU64()
		if err != nil {
			return nil, err
		}
		h.Dims = append(h.Dims, Dimension{Name: name, Length: int64(l)})
	}
	if h.Attrs, err = readAttrs(); err != nil {
		return nil, err
	}
	nvars, err := readU32()
	if err != nil {
		return nil, err
	}
	if nvars > maxEntries {
		return nil, fmt.Errorf("ncfile: implausible variable count %d", nvars)
	}
	for i := uint32(0); i < nvars; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		nd, err := readU32()
		if err != nil {
			return nil, err
		}
		if nd > coords.MaxRank {
			return nil, fmt.Errorf("ncfile: variable %q rank %d exceeds limit", name, nd)
		}
		dims := make([]string, nd)
		for j := uint32(0); j < nd; j++ {
			idx, err := readU32()
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(h.Dims) {
				return nil, fmt.Errorf("ncfile: variable %q references dimension index %d of %d", name, idx, len(h.Dims))
			}
			dims[j] = h.Dims[idx].Name
		}
		norig, err := readU32()
		if err != nil {
			return nil, err
		}
		if norig > coords.MaxRank {
			return nil, fmt.Errorf("ncfile: variable %q origin rank %d exceeds limit", name, norig)
		}
		var origin []int64
		for j := uint32(0); j < norig; j++ {
			o, err := readU64()
			if err != nil {
				return nil, err
			}
			origin = append(origin, int64(o))
		}
		attrs, err := readAttrs()
		if err != nil {
			return nil, err
		}
		off, err := readU64()
		if err != nil {
			return nil, err
		}
		h.Vars = append(h.Vars, Variable{Name: name, Type: DataType(tb), Dims: dims, Origin: origin, Attrs: attrs, dataOffset: int64(off)})
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// encodeValue converts a float64 to the variable's stored representation.
func encodeValue(t DataType, v float64, b []byte) {
	switch t {
	case Float64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	case Int64:
		binary.LittleEndian.PutUint64(b, uint64(int64(v)))
	}
}

// decodeValue converts stored bytes back to a float64.
func decodeValue(t DataType, b []byte) float64 {
	u := binary.LittleEndian.Uint64(b)
	switch t {
	case Float64:
		return math.Float64frombits(u)
	case Int64:
		return float64(int64(u))
	default:
		return 0
	}
}
