package ncfile

import (
	"path/filepath"
	"testing"

	"sidr/internal/coords"
)

func benchFile(b *testing.B) *File {
	b.Helper()
	h := &Header{
		Dims: []Dimension{{Name: "t", Length: 256}, {Name: "x", Length: 256}},
		Vars: []Variable{{Name: "v", Type: Float64, Dims: []string{"t", "x"}}},
	}
	f, err := CreateEmpty(filepath.Join(b.TempDir(), "bench.ncf"), h)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

func BenchmarkWriteSlab(b *testing.B) {
	f := benchFile(b)
	slab := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(64, 256))
	vals := make([]float64, slab.Size())
	b.SetBytes(slab.Size() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.WriteSlab("v", slab, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSlabContiguous(b *testing.B) {
	f := benchFile(b)
	slab := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(64, 256))
	b.SetBytes(slab.Size() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadSlab("v", slab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSlabStridedColumns(b *testing.B) {
	// A narrow column slab forces one IO run per row — the access
	// pattern sentinel output writing suffers from.
	f := benchFile(b)
	slab := coords.MustSlab(coords.NewCoord(0, 100), coords.NewShape(256, 4))
	b.SetBytes(slab.Size() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadSlab("v", slab); err != nil {
			b.Fatal(err)
		}
	}
}
