package ncfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"sidr/internal/coords"
)

// This file implements the three strategies a Reduce task can use to
// materialise scientific output, evaluated in paper §4.4 / Table 2:
//
//   - Dense: SIDR's path. partition+ keyblocks are contiguous in K', so a
//     task writes a small file shaped exactly like its keyblock, with the
//     global position recorded as the variable's origin.
//   - Sentinel: the stock-Hadoop path for sparse keyblocks. Each task
//     writes a file spanning the ENTIRE output space, filled with a
//     sentinel, then scatters its values in. Cost scales with total
//     output size per task, i.e. with the number of Reduce tasks.
//   - Pairs: explicit ⟨coordinate, value⟩ records; constant per-value
//     overhead but the implicit-coordinate property of dense arrays is
//     lost.

// OutputStrategy names a Reduce-output materialisation strategy.
type OutputStrategy int

const (
	// Dense writes a contiguous sub-array file with an origin (SIDR).
	Dense OutputStrategy = iota
	// Sentinel writes a full-space file with sentinel fill (stock Hadoop).
	Sentinel
	// Pairs writes explicit coordinate/value records.
	Pairs
)

// String names the strategy.
func (s OutputStrategy) String() string {
	switch s {
	case Dense:
		return "dense"
	case Sentinel:
		return "sentinel"
	case Pairs:
		return "pairs"
	default:
		return fmt.Sprintf("OutputStrategy(%d)", int(s))
	}
}

// DefaultSentinel is the fill value marking absent data in sentinel files.
const DefaultSentinel = math.MaxFloat64

// WriteDense writes the values of a contiguous keyblock slab (row-major)
// as a dense file whose variable has shape keyblock.Shape and origin
// keyblock.Corner. It returns the resulting file size in bytes.
func WriteDense(path, varName string, keyblock coords.Slab, values []float64) (int64, error) {
	if int64(len(values)) != keyblock.Size() {
		return 0, fmt.Errorf("ncfile: %d values for keyblock of %d elements", len(values), keyblock.Size())
	}
	h := &Header{}
	dims := make([]string, keyblock.Rank())
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
		h.Dims = append(h.Dims, Dimension{Name: dims[i], Length: keyblock.Shape[i]})
	}
	h.Vars = append(h.Vars, Variable{
		Name:   varName,
		Type:   Float64,
		Dims:   dims,
		Origin: append([]int64(nil), keyblock.Corner...),
	})
	f, err := CreateEmpty(path, h)
	if err != nil {
		return 0, err
	}
	local := coords.Slab{Corner: make(coords.Coord, keyblock.Rank()), Shape: keyblock.Shape}
	if err := f.WriteSlab(varName, local, values); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return 0, err
	}
	return size, f.Close()
}

// WriteSentinel writes a file spanning the entire output space
// (totalSpace), filled with sentinel, then scatters the task's values at
// their global coordinates. keys[i] is the global coordinate of
// values[i]. It returns the resulting file size in bytes.
func WriteSentinel(path, varName string, totalSpace coords.Shape, sentinel float64, keys []coords.Coord, values []float64) (int64, error) {
	if len(keys) != len(values) {
		return 0, fmt.Errorf("ncfile: %d keys for %d values", len(keys), len(values))
	}
	h := &Header{}
	dims := make([]string, totalSpace.Rank())
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
		h.Dims = append(h.Dims, Dimension{Name: dims[i], Length: totalSpace[i]})
	}
	h.Vars = append(h.Vars, Variable{Name: varName, Type: Float64, Dims: dims})
	// The sentinel fill is the expensive part: every byte of the full
	// output space is written, regardless of how little useful data this
	// task holds.
	f, err := Create(path, h, sentinel)
	if err != nil {
		return 0, err
	}
	for i, k := range keys {
		sl := coords.Slab{Corner: k, Shape: make(coords.Shape, k.Rank())}
		for d := range sl.Shape {
			sl.Shape[d] = 1
		}
		if err := f.WriteSlab(varName, sl, values[i:i+1]); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return 0, err
	}
	return size, f.Close()
}

// pairMagic identifies a coordinate/value pair file.
var pairMagic = [4]byte{'N', 'C', 'F', 'P'}

// WritePairs writes explicit ⟨coordinate, value⟩ records:
//
//	magic | u32 rank | u64 count | count × (rank × i64 coord, f64 value)
//
// It returns the resulting file size in bytes.
func WritePairs(path string, rank int, keys []coords.Coord, values []float64) (int64, error) {
	if len(keys) != len(values) {
		return 0, fmt.Errorf("ncfile: %d keys for %d values", len(keys), len(values))
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(f)
	le := binary.LittleEndian
	var b8 [8]byte
	if _, err := bw.Write(pairMagic[:]); err != nil {
		f.Close()
		return 0, err
	}
	var b4 [4]byte
	le.PutUint32(b4[:], uint32(rank))
	bw.Write(b4[:])
	le.PutUint64(b8[:], uint64(len(keys)))
	bw.Write(b8[:])
	for i, k := range keys {
		if k.Rank() != rank {
			f.Close()
			return 0, fmt.Errorf("ncfile: key %v rank != %d", k, rank)
		}
		for _, x := range k {
			le.PutUint64(b8[:], uint64(x))
			if _, err := bw.Write(b8[:]); err != nil {
				f.Close()
				return 0, err
			}
		}
		le.PutUint64(b8[:], math.Float64bits(values[i]))
		if _, err := bw.Write(b8[:]); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	return st.Size(), f.Close()
}

// ReadPairs reads a pair file back, returning keys and values.
func ReadPairs(path string) ([]coords.Coord, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, err
	}
	if magic != pairMagic {
		return nil, nil, ErrBadMagic
	}
	le := binary.LittleEndian
	var b4 [4]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return nil, nil, err
	}
	rank := int(le.Uint32(b4[:]))
	if rank <= 0 || rank > coords.MaxRank {
		return nil, nil, fmt.Errorf("ncfile: implausible pair rank %d", rank)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(br, b8[:]); err != nil {
		return nil, nil, err
	}
	count := le.Uint64(b8[:])
	keys := make([]coords.Coord, 0, count)
	values := make([]float64, 0, count)
	for i := uint64(0); i < count; i++ {
		k := make(coords.Coord, rank)
		for d := 0; d < rank; d++ {
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return nil, nil, err
			}
			k[d] = int64(le.Uint64(b8[:]))
		}
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, nil, err
		}
		keys = append(keys, k)
		values = append(values, math.Float64frombits(le.Uint64(b8[:])))
	}
	return keys, values, nil
}
