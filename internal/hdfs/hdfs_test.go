package hdfs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%02d", i)
	}
	return out
}

func TestNewNamespaceValidation(t *testing.T) {
	if _, err := NewNamespace(nil, Config{}); err == nil {
		t.Fatal("empty node list accepted")
	}
	ns, err := NewNamespace(testNodes(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ns.Replication() != 2 {
		t.Fatalf("replication should clamp to node count, got %d", ns.Replication())
	}
	if ns.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d", ns.BlockSize())
	}
}

func TestAddFileBlocks(t *testing.T) {
	ns, err := NewNamespace(testNodes(5), Config{BlockSize: 100, Replication: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.AddFile("data", 250); err != nil {
		t.Fatal(err)
	}
	if err := ns.AddFile("data", 250); err == nil {
		t.Fatal("duplicate file accepted")
	}
	if err := ns.AddFile("neg", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	blocks, err := ns.Blocks("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	var total int64
	for i, b := range blocks {
		total += b.Length
		if b.Index != i {
			t.Fatalf("block %d has index %d", i, b.Index)
		}
		if b.Offset != int64(i)*100 {
			t.Fatalf("block %d offset %d", i, b.Offset)
		}
		if len(b.Hosts) != 3 {
			t.Fatalf("block %d has %d replicas", i, len(b.Hosts))
		}
		seen := map[string]bool{}
		for _, h := range b.Hosts {
			if seen[h] {
				t.Fatalf("block %d replicates twice on %s", i, h)
			}
			seen[h] = true
		}
	}
	if total != 250 {
		t.Fatalf("block lengths sum to %d", total)
	}
	if blocks[2].Length != 50 {
		t.Fatalf("last block length %d, want 50", blocks[2].Length)
	}
}

func TestLocateRange(t *testing.T) {
	ns, _ := NewNamespace(testNodes(4), Config{BlockSize: 100, Seed: 2})
	if err := ns.AddFile("f", 350); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, length int64
		wantBlocks  int
	}{
		{0, 100, 1},
		{0, 101, 2},
		{99, 2, 2},
		{100, 100, 1},
		{0, 350, 4},
		{0, 10_000, 4}, // clamped to file size
		{340, 100, 1},
		{350, 10, 0}, // past EOF
		{0, 0, 0},
	}
	for _, c := range cases {
		got, err := ns.LocateRange("f", c.off, c.length)
		if err != nil {
			t.Fatalf("LocateRange(%d,%d): %v", c.off, c.length, err)
		}
		if len(got) != c.wantBlocks {
			t.Fatalf("LocateRange(%d,%d) = %d blocks, want %d", c.off, c.length, len(got), c.wantBlocks)
		}
	}
	if _, err := ns.LocateRange("f", -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := ns.LocateRange("missing", 0, 10); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRangeHostsRanked(t *testing.T) {
	ns, _ := NewNamespace(testNodes(6), Config{BlockSize: 100, Replication: 2, Seed: 3})
	if err := ns.AddFile("f", 300); err != nil {
		t.Fatal(err)
	}
	hosts, err := ns.RangeHosts("f", 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) == 0 {
		t.Fatal("no hosts returned")
	}
	// The top-ranked host must hold at least as many bytes as any other;
	// verify ranking by recomputing.
	blocks, _ := ns.Blocks("f")
	byHost := map[string]int64{}
	for _, b := range blocks {
		for _, h := range b.Hosts {
			byHost[h] += b.Length
		}
	}
	for i := 1; i < len(hosts); i++ {
		if byHost[hosts[i-1]] < byHost[hosts[i]] {
			t.Fatalf("hosts not ranked: %v (bytes %v)", hosts, byHost)
		}
	}
}

func TestDeterministicPlacement(t *testing.T) {
	mk := func() []BlockLocation {
		ns, _ := NewNamespace(testNodes(8), Config{BlockSize: 64, Seed: 42})
		ns.AddFile("f", 1000)
		b, _ := ns.Blocks("f")
		return b
	}
	a, b := mk(), mk()
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("placement not deterministic at block %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRemoveAndFileSize(t *testing.T) {
	ns, _ := NewNamespace(testNodes(3), Config{BlockSize: 10})
	ns.AddFile("f", 25)
	if sz, err := ns.FileSize("f"); err != nil || sz != 25 {
		t.Fatalf("FileSize = %d, %v", sz, err)
	}
	if err := ns.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.FileSize("f"); err == nil {
		t.Fatal("removed file still present")
	}
	if err := ns.Remove("f"); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := ns.Blocks("f"); err == nil {
		t.Fatal("Blocks on removed file accepted")
	}
}

func TestQuickBlockCoverage(t *testing.T) {
	// Every byte of a file is covered by exactly one block.
	f := func(seed int64, sz uint16) bool {
		size := int64(sz)
		ns, err := NewNamespace(testNodes(4), Config{BlockSize: 97, Seed: seed})
		if err != nil {
			return false
		}
		if err := ns.AddFile("f", size); err != nil {
			return false
		}
		blocks, _ := ns.Blocks("f")
		var covered int64
		prevEnd := int64(0)
		for _, b := range blocks {
			if b.Offset != prevEnd || b.Length <= 0 {
				return false
			}
			prevEnd = b.Offset + b.Length
			covered += b.Length
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedRandPlacement(t *testing.T) {
	// An injected *rand.Rand overrides Seed: two namespaces driven by
	// rands at the same stream position lay out blocks identically, even
	// when their Seed fields disagree.
	mk := func(seed int64) []BlockLocation {
		ns, err := NewNamespace(testNodes(8), Config{
			BlockSize: 64,
			Seed:      seed * 1000, // must be ignored
			Rand:      rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ns.AddFile("f", 1000); err != nil {
			t.Fatal(err)
		}
		b, _ := ns.Blocks("f")
		return b
	}
	a, b := mk(1), mk(2)
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("injected-rand placement not reproducible at block %d: %v vs %v", i, a[i], b[i])
		}
	}

	// And a rand at a different stream position yields a different
	// layout — the injected source really is the one drawn from.
	other, err := NewNamespace(testNodes(8), Config{BlockSize: 64, Rand: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AddFile("f", 1000); err != nil {
		t.Fatal(err)
	}
	c, _ := other.Blocks("f")
	same := true
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently seeded injected rands produced identical layouts")
	}
}
