// Package hdfs simulates the block-placement and locality metadata of a
// Hadoop Distributed File System: fixed-size blocks, n-way replication
// across datanodes, and byte-range → replica-host lookups. Only the
// metadata layer is modelled — actual bytes live in ordinary local files
// (or are purely synthetic for simulator-scale datasets) — because block
// placement is the only HDFS behaviour the paper's scheduling experiments
// depend on.
package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// DefaultBlockSize matches the paper's HDFS configuration (128 MB).
const DefaultBlockSize = 128 << 20

// DefaultReplication matches the paper's HDFS configuration (3×).
const DefaultReplication = 3

// BlockLocation describes one block of a file and the datanodes holding
// its replicas.
type BlockLocation struct {
	Index  int      // block number within the file
	Offset int64    // first byte of the block
	Length int64    // bytes in this block (last block may be short)
	Hosts  []string // datanodes holding replicas, primary first
}

// fileMeta records a registered file's layout.
type fileMeta struct {
	size   int64
	blocks []BlockLocation
}

// Namespace is a simulated HDFS namespace: a set of datanodes and the
// block maps of registered files. It is safe for concurrent use.
type Namespace struct {
	mu          sync.RWMutex
	blockSize   int64
	replication int
	nodes       []string
	files       map[string]*fileMeta
	rng         *rand.Rand
}

// Config parametrises a Namespace.
type Config struct {
	BlockSize   int64 // defaults to DefaultBlockSize
	Replication int   // defaults to DefaultReplication
	Seed        int64 // placement RNG seed; fixed seed → deterministic layout
	// Rand, when set, is the placement RNG itself and overrides Seed.
	// Injecting one lets tests drive several namespaces from one known
	// stream, or share deterministic placement with a larger simulation.
	// The namespace takes ownership: placement draws are serialised under
	// its lock, but the caller must not draw from it concurrently.
	Rand *rand.Rand
}

// Errors reported by the package.
var (
	ErrNoNodes  = errors.New("hdfs: namespace has no datanodes")
	ErrNotFound = errors.New("hdfs: no such file")
	ErrExists   = errors.New("hdfs: file already exists")
)

// NewNamespace builds a namespace over the given datanodes.
func NewNamespace(nodes []string, cfg Config) (*Namespace, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	rep := cfg.Replication
	if rep <= 0 {
		rep = DefaultReplication
	}
	if rep > len(nodes) {
		rep = len(nodes)
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	ns := &Namespace{
		blockSize:   bs,
		replication: rep,
		nodes:       append([]string(nil), nodes...),
		files:       make(map[string]*fileMeta),
		rng:         rng,
	}
	return ns, nil
}

// BlockSize returns the namespace block size in bytes.
func (ns *Namespace) BlockSize() int64 { return ns.blockSize }

// Replication returns the replica count.
func (ns *Namespace) Replication() int { return ns.replication }

// Nodes returns the datanode names.
func (ns *Namespace) Nodes() []string {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return append([]string(nil), ns.nodes...)
}

// AddFile registers a logical file of the given byte size and assigns
// block placements. Placement follows HDFS's spirit: the primary replica
// rotates across nodes to spread load; further replicas go to distinct
// randomly chosen nodes.
func (ns *Namespace) AddFile(name string, size int64) error {
	if size < 0 {
		return fmt.Errorf("hdfs: negative size %d for %q", size, name)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	meta := &fileMeta{size: size}
	nblocks := int((size + ns.blockSize - 1) / ns.blockSize)
	start := ns.rng.Intn(len(ns.nodes))
	for i := 0; i < nblocks; i++ {
		off := int64(i) * ns.blockSize
		length := ns.blockSize
		if off+length > size {
			length = size - off
		}
		primary := (start + i) % len(ns.nodes)
		hosts := []string{ns.nodes[primary]}
		// Pick replication-1 further distinct nodes.
		perm := ns.rng.Perm(len(ns.nodes))
		for _, p := range perm {
			if len(hosts) == ns.replication {
				break
			}
			if p == primary {
				continue
			}
			hosts = append(hosts, ns.nodes[p])
		}
		meta.blocks = append(meta.blocks, BlockLocation{Index: i, Offset: off, Length: length, Hosts: hosts})
	}
	ns.files[name] = meta
	return nil
}

// AddOrReplaceFile registers a logical file, dropping any existing
// placement under the same name first. Replacement re-rolls block
// placements — callers that re-register a dataset get fresh locality,
// exactly as rewriting a file in HDFS would.
func (ns *Namespace) AddOrReplaceFile(name string, size int64) error {
	if err := ns.Remove(name); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	return ns.AddFile(name, size)
}

// Has reports whether a file is registered.
func (ns *Namespace) Has(name string) bool {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	_, ok := ns.files[name]
	return ok
}

// FileSize returns the registered size of a file.
func (ns *Namespace) FileSize(name string) (int64, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	m, ok := ns.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return m.size, nil
}

// Blocks returns all block locations of a file.
func (ns *Namespace) Blocks(name string) ([]BlockLocation, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	m, ok := ns.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return append([]BlockLocation(nil), m.blocks...), nil
}

// LocateRange returns the blocks overlapping the byte range [off,
// off+length) of a file, in offset order.
func (ns *Namespace) LocateRange(name string, off, length int64) ([]BlockLocation, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("hdfs: invalid range [%d, %d)", off, off+length)
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	m, ok := ns.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if off >= m.size || length == 0 {
		return nil, nil
	}
	end := off + length
	if end > m.size {
		end = m.size
	}
	first := int(off / ns.blockSize)
	last := int((end - 1) / ns.blockSize)
	if last >= len(m.blocks) {
		last = len(m.blocks) - 1
	}
	return append([]BlockLocation(nil), m.blocks[first:last+1]...), nil
}

// RangeHosts returns the hosts holding data for the byte range, ranked by
// the number of bytes of the range they store locally (descending). This
// is the locality hint attached to input splits.
func (ns *Namespace) RangeHosts(name string, off, length int64) ([]string, error) {
	blocks, err := ns.LocateRange(name, off, length)
	if err != nil {
		return nil, err
	}
	byHost := make(map[string]int64)
	end := off + length
	for _, b := range blocks {
		lo := maxI64(off, b.Offset)
		hi := minI64(end, b.Offset+b.Length)
		if hi <= lo {
			continue
		}
		for _, h := range b.Hosts {
			byHost[h] += hi - lo
		}
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool {
		if byHost[hosts[i]] != byHost[hosts[j]] {
			return byHost[hosts[i]] > byHost[hosts[j]]
		}
		return hosts[i] < hosts[j]
	})
	return hosts, nil
}

// Remove unregisters a file.
func (ns *Namespace) Remove(name string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(ns.files, name)
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
