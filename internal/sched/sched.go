// Package sched implements the two task-scheduling policies the paper
// compares (§3.3):
//
//   - Hadoop: Map tasks are eligible immediately and dispensed through a
//     locality tree (node-local first, then any); Reduce tasks are
//     scheduled in monotonically increasing ID order, independent of the
//     Map tasks they depend on, so dependencies are met probabilistically.
//   - SIDR: Reduce tasks are scheduled FIRST (in keyblock order, or a
//     caller-supplied priority order for computational steering); a Map
//     task only becomes eligible once at least one scheduled Reduce task
//     depends on it. Marking dependents costs two pointer dereferences
//     per dependency, as the paper notes.
//
// The schedulers are pure state machines — the cluster simulator and the
// in-process engine both drive them — which keeps the policy logic
// testable in isolation.
package sched

import (
	"fmt"

	"sidr/internal/depgraph"
)

// MapInfo describes one Map task's placement options.
type MapInfo struct {
	// Hosts lists nodes holding the split's data (locality hints).
	Hosts []string
}

// Scheduler dispenses tasks to free slots. Implementations are not safe
// for concurrent use; the discrete-event simulator is single-threaded.
type Scheduler interface {
	// NextMap returns the next Map task to run on host, favouring
	// node-local work, or -1 if no eligible Map task remains.
	NextMap(host string) int
	// NextReduce returns the next Reduce task to assign, or -1.
	NextReduce() int
	// PendingMaps reports how many Map tasks have not been dispensed.
	PendingMaps() int
	// PendingReduces reports how many Reduce tasks have not been
	// dispensed.
	PendingReduces() int
}

// localityTree indexes pending Map tasks by host — the paper's tree of
// locality levels collapsed to two levels (node-local, any), matching a
// single-rack cluster like the evaluation testbed.
type localityTree struct {
	byHost  map[string][]int
	pending map[int]bool
	order   []int // FIFO fallback order
}

func newLocalityTree(maps []MapInfo) *localityTree {
	t := &localityTree{
		byHost:  make(map[string][]int),
		pending: make(map[int]bool, len(maps)),
	}
	for i, m := range maps {
		t.pending[i] = true
		t.order = append(t.order, i)
		for _, h := range m.Hosts {
			t.byHost[h] = append(t.byHost[h], i)
		}
	}
	return t
}

// take removes and returns the first pending task on host satisfying ok,
// falling back to global FIFO order; -1 if none. Consumed entries are
// compacted out of the host list as a side effect, keeping repeated calls
// amortised linear.
func (t *localityTree) take(host string, ok func(int) bool) int {
	list := t.byHost[host]
	w := 0
	found := -1
	for _, id := range list {
		if !t.pending[id] {
			continue // consumed elsewhere; drop
		}
		if found < 0 && ok(id) {
			found = id // taken; drop from the local list
			continue
		}
		list[w] = id
		w++
	}
	t.byHost[host] = list[:w]
	if found >= 0 {
		delete(t.pending, found)
		return found
	}
	// Fallback: any eligible pending task, lowest id first.
	for _, id := range t.order {
		if !t.pending[id] {
			continue
		}
		if ok(id) {
			delete(t.pending, id)
			return id
		}
	}
	return -1
}

func (t *localityTree) remaining() int { return len(t.pending) }

// Hadoop is the stock policy: every Map task eligible from the start,
// Reduce tasks dispensed by ascending ID.
type Hadoop struct {
	tree       *localityTree
	nextReduce int
	reduces    int
}

// NewHadoop builds the stock scheduler for the given Map placements and
// Reduce task count.
func NewHadoop(maps []MapInfo, reduces int) *Hadoop {
	return &Hadoop{tree: newLocalityTree(maps), reduces: reduces}
}

// NextMap implements Scheduler.
func (h *Hadoop) NextMap(host string) int {
	return h.tree.take(host, func(int) bool { return true })
}

// NextReduce implements Scheduler.
func (h *Hadoop) NextReduce() int {
	if h.nextReduce >= h.reduces {
		return -1
	}
	id := h.nextReduce
	h.nextReduce++
	return id
}

// PendingMaps implements Scheduler.
func (h *Hadoop) PendingMaps() int { return h.tree.remaining() }

// PendingReduces implements Scheduler.
func (h *Hadoop) PendingReduces() int { return h.reduces - h.nextReduce }

// SIDR inverts scheduling: Reduce tasks are dispensed first (in priority
// order) and Map tasks become eligible only when a dispensed Reduce task
// depends on them (§3.3).
type SIDR struct {
	tree     *localityTree
	graph    *depgraph.Graph
	priority []int
	nextIdx  int
	eligible []bool
}

// NewSIDR builds the SIDR scheduler. priority optionally orders Reduce
// dispensing (computational-steering prioritisation, §3.4); nil means
// keyblock order. It errors if priority is not a permutation of the
// keyblocks.
func NewSIDR(maps []MapInfo, graph *depgraph.Graph, priority []int) (*SIDR, error) {
	if graph == nil {
		return nil, fmt.Errorf("sched: SIDR scheduler needs a dependency graph")
	}
	if len(maps) != graph.NumSplits() {
		return nil, fmt.Errorf("sched: %d map infos for %d splits", len(maps), graph.NumSplits())
	}
	r := graph.NumKeyblocks()
	if priority == nil {
		priority = make([]int, r)
		for i := range priority {
			priority[i] = i
		}
	} else {
		if len(priority) != r {
			return nil, fmt.Errorf("sched: priority has %d entries for %d keyblocks", len(priority), r)
		}
		seen := make([]bool, r)
		for _, p := range priority {
			if p < 0 || p >= r || seen[p] {
				return nil, fmt.Errorf("sched: priority is not a permutation (entry %d)", p)
			}
			seen[p] = true
		}
		priority = append([]int(nil), priority...)
	}
	return &SIDR{
		tree:     newLocalityTree(maps),
		graph:    graph,
		priority: priority,
		eligible: make([]bool, len(maps)),
	}, nil
}

// NextReduce implements Scheduler. Dispensing a Reduce task marks its
// dependency Map tasks eligible.
func (s *SIDR) NextReduce() int {
	if s.nextIdx >= len(s.priority) {
		return -1
	}
	id := s.priority[s.nextIdx]
	s.nextIdx++
	for _, m := range s.graph.KBToSplits[id] {
		s.eligible[m] = true
	}
	return id
}

// NextMap implements Scheduler: only eligible Map tasks are dispensed.
func (s *SIDR) NextMap(host string) int {
	return s.tree.take(host, func(id int) bool { return s.eligible[id] })
}

// PendingMaps implements Scheduler.
func (s *SIDR) PendingMaps() int { return s.tree.remaining() }

// PendingReduces implements Scheduler.
func (s *SIDR) PendingReduces() int { return len(s.priority) - s.nextIdx }

// DependencyDrivenMapOrder returns a Map execution order that completes
// keyblocks in the given priority order: the dependencies of keyblock
// priority[0] first, then the unprocessed dependencies of priority[1],
// and so on, with any remaining splits appended. The in-process engine
// feeds this to Config.MapOrder to realise SIDR scheduling without a slot
// model.
func DependencyDrivenMapOrder(graph *depgraph.Graph, priority []int) []int {
	if priority == nil {
		priority = make([]int, graph.NumKeyblocks())
		for i := range priority {
			priority[i] = i
		}
	}
	order := make([]int, 0, graph.NumSplits())
	taken := make([]bool, graph.NumSplits())
	for _, l := range priority {
		for _, m := range graph.KBToSplits[l] {
			if !taken[m] {
				taken[m] = true
				order = append(order, m)
			}
		}
	}
	for i := 0; i < graph.NumSplits(); i++ {
		if !taken[i] {
			order = append(order, i)
		}
	}
	return order
}
