package sched

import (
	"testing"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// alignedGraph builds a dependency graph where split i feeds exactly
// keyblock i (4 splits, 4 keyblocks).
func alignedGraph(t *testing.T) *depgraph.Graph {
	t.Helper()
	q, err := query.Parse("avg t[0,0 : 16,4] es {4,4}")
	if err != nil {
		t.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := partition.NewPartitionPlus(space, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	splits, err := q.Input.SplitDim(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		deps := g.Deps(l)
		if len(deps) != 1 || deps[0] != l {
			t.Fatalf("fixture not aligned: deps(%d) = %v", l, deps)
		}
	}
	return g
}

func fourMaps(hosts ...string) []MapInfo {
	out := make([]MapInfo, 4)
	for i := range out {
		if i < len(hosts) && hosts[i] != "" {
			out[i] = MapInfo{Hosts: []string{hosts[i]}}
		}
	}
	return out
}

func TestHadoopReduceOrder(t *testing.T) {
	h := NewHadoop(fourMaps(), 3)
	for want := 0; want < 3; want++ {
		if got := h.NextReduce(); got != want {
			t.Fatalf("NextReduce = %d, want %d", got, want)
		}
	}
	if h.NextReduce() != -1 {
		t.Fatal("exhausted scheduler returned a reduce")
	}
	if h.PendingReduces() != 0 {
		t.Fatalf("PendingReduces = %d", h.PendingReduces())
	}
}

func TestHadoopMapLocality(t *testing.T) {
	h := NewHadoop(fourMaps("a", "b", "a", "b"), 1)
	if got := h.NextMap("b"); got != 1 {
		t.Fatalf("NextMap(b) = %d, want 1 (node-local)", got)
	}
	if got := h.NextMap("b"); got != 3 {
		t.Fatalf("NextMap(b) = %d, want 3 (node-local)", got)
	}
	// b's local work is exhausted; falls back to lowest pending id.
	if got := h.NextMap("b"); got != 0 {
		t.Fatalf("NextMap(b) = %d, want 0 (fallback)", got)
	}
	if got := h.NextMap("a"); got != 2 {
		t.Fatalf("NextMap(a) = %d, want 2", got)
	}
	if h.NextMap("a") != -1 || h.PendingMaps() != 0 {
		t.Fatal("maps not exhausted cleanly")
	}
}

func TestHadoopMapNoDoubleDispense(t *testing.T) {
	h := NewHadoop(fourMaps("a", "a", "a", "a"), 1)
	seen := map[int]bool{}
	for {
		id := h.NextMap("a")
		if id < 0 {
			break
		}
		if seen[id] {
			t.Fatalf("map %d dispensed twice", id)
		}
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("dispensed %d maps", len(seen))
	}
}

func TestSIDRValidation(t *testing.T) {
	g := alignedGraph(t)
	if _, err := NewSIDR(fourMaps(), nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewSIDR(make([]MapInfo, 3), g, nil); err == nil {
		t.Fatal("map count mismatch accepted")
	}
	if _, err := NewSIDR(fourMaps(), g, []int{0, 1}); err == nil {
		t.Fatal("short priority accepted")
	}
	if _, err := NewSIDR(fourMaps(), g, []int{0, 1, 2, 2}); err == nil {
		t.Fatal("duplicate priority accepted")
	}
	if _, err := NewSIDR(fourMaps(), g, []int{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range priority accepted")
	}
}

func TestSIDRMapsGatedByReduces(t *testing.T) {
	g := alignedGraph(t)
	s, err := NewSIDR(fourMaps(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No reduce scheduled yet: no map is eligible (§3.3).
	if got := s.NextMap("a"); got != -1 {
		t.Fatalf("map %d eligible before any reduce", got)
	}
	if r := s.NextReduce(); r != 0 {
		t.Fatalf("NextReduce = %d", r)
	}
	// Scheduling reduce 0 makes exactly its dependency (split 0)
	// eligible.
	if got := s.NextMap("a"); got != 0 {
		t.Fatalf("NextMap = %d, want 0", got)
	}
	if got := s.NextMap("a"); got != -1 {
		t.Fatalf("map %d eligible without a scheduled dependent reduce", got)
	}
	if r := s.NextReduce(); r != 1 {
		t.Fatalf("NextReduce = %d", r)
	}
	if got := s.NextMap("a"); got != 1 {
		t.Fatalf("NextMap = %d, want 1", got)
	}
	if s.PendingMaps() != 2 || s.PendingReduces() != 2 {
		t.Fatalf("pending = %d maps, %d reduces", s.PendingMaps(), s.PendingReduces())
	}
}

func TestSIDRPriorityOrder(t *testing.T) {
	// Computational steering (§3.4): prioritising keyblock 3 schedules
	// its reduce — and thus its maps — first.
	g := alignedGraph(t)
	s, err := NewSIDR(fourMaps(), g, []int{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.NextReduce(); r != 3 {
		t.Fatalf("NextReduce = %d, want 3", r)
	}
	if got := s.NextMap("x"); got != 3 {
		t.Fatalf("NextMap = %d, want 3 (dep of prioritised keyblock)", got)
	}
	if r := s.NextReduce(); r != 1 {
		t.Fatalf("NextReduce = %d, want 1", r)
	}
}

func TestSIDRLocalityStillPreferred(t *testing.T) {
	g := alignedGraph(t)
	s, err := NewSIDR(fourMaps("a", "b", "a", "b"), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.NextReduce() // unlock map 0 (local to a)
	s.NextReduce() // unlock map 1 (local to b)
	if got := s.NextMap("b"); got != 1 {
		t.Fatalf("NextMap(b) = %d, want local eligible map 1", got)
	}
	// Host b has no more local eligible work; falls back to map 0.
	if got := s.NextMap("b"); got != 0 {
		t.Fatalf("NextMap(b) = %d, want fallback 0", got)
	}
}

func TestSIDRLocalIneligibleDoesNotBlockDeeperLocal(t *testing.T) {
	// Host a holds maps 0 and 2. Only reduce 2's map is eligible; the
	// ineligible local map 0 must not hide eligible local map 2.
	g := alignedGraph(t)
	s, err := NewSIDR(fourMaps("a", "b", "a", "b"), g, []int{2, 0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	s.NextReduce() // unlock map 2
	if got := s.NextMap("a"); got != 2 {
		t.Fatalf("NextMap(a) = %d, want 2", got)
	}
}

func TestDependencyDrivenMapOrder(t *testing.T) {
	g := alignedGraph(t)
	order := DependencyDrivenMapOrder(g, []int{2, 0, 3, 1})
	want := []int{2, 0, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Default priority yields keyblock order.
	order = DependencyDrivenMapOrder(g, nil)
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("default order = %v", order)
		}
	}
}

func TestDependencyDrivenMapOrderCoversUnreferencedSplits(t *testing.T) {
	// Splits outside the query input appear in no I_ℓ but must still be
	// ordered (they run as no-ops).
	q, err := query.Parse("avg t[0,0 : 8,4] es {4,4}")
	if err != nil {
		t.Fatal(err)
	}
	dataset := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(16, 4))
	splits, err := dataset.SplitDim(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	space, _ := q.IntermediateSpace()
	pp, _ := partition.NewPartitionPlus(space, 2, 1)
	g, err := depgraph.Build(q, splits, pp)
	if err != nil {
		t.Fatal(err)
	}
	order := DependencyDrivenMapOrder(g, nil)
	if len(order) != 4 {
		t.Fatalf("order %v misses splits", order)
	}
	seen := map[int]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate %d in %v", id, order)
		}
		seen[id] = true
	}
}
