package query

import (
	"strings"
	"testing"

	"sidr/internal/coords"
)

func TestParseQuery1(t *testing.T) {
	// The paper's Query 1 (§4.1).
	q, err := Parse("median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}")
	if err != nil {
		t.Fatal(err)
	}
	if q.Operator != "median" || q.Variable != "windspeed" {
		t.Fatalf("parsed %+v", q)
	}
	if !q.Input.Shape.Equal(coords.NewShape(7200, 360, 720, 50)) {
		t.Fatalf("input shape = %v", q.Input.Shape)
	}
	if !q.Extraction.Shape.Equal(coords.NewShape(2, 36, 36, 10)) {
		t.Fatalf("es = %v", q.Extraction.Shape)
	}
	ks, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !ks.Shape.Equal(coords.NewShape(3600, 10, 20, 5)) {
		t.Fatalf("K' = %v", ks.Shape)
	}
}

func TestParseOptions(t *testing.T) {
	q, err := Parse("filter_gt temp[0,0 : 10,10] es {2,2} stride {3,3} param 4.5 keep-partial")
	if err != nil {
		t.Fatal(err)
	}
	if q.Param != 4.5 || !q.KeepPartial {
		t.Fatalf("parsed %+v", q)
	}
	if !q.Extraction.Stride.Equal(coords.NewShape(3, 3)) {
		t.Fatalf("stride = %v", q.Extraction.Stride)
	}
}

func TestParseSpacesInsideBraces(t *testing.T) {
	q, err := Parse("avg t[0, 0 : 365, 250] es {7, 5}")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Input.Corner.Equal(coords.NewCoord(0, 0)) {
		t.Fatalf("corner = %v", q.Input.Corner)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"median",
		"median x[0:4]",                     // missing es
		"median x[0,0 : 4] es {2}",          // rank mismatch corner/shape
		"nosuchop x[0 : 4] es {2}",          // unknown operator
		"median x(0 : 4) es {2}",            // wrong brackets
		"median x[0 : 4] es",                // es without shape
		"median x[0 : 4] es {2} param",      // param without value
		"median x[0 : 4] es {2} param q",    // non-numeric param
		"median x[0 : 4] es {2} stride",     // stride without shape
		"median x[0 : 4] es {2} bogus",      // trailing junk
		"median x[0 : 4] es {2} stride {1}", // stride < shape
		"median x[0 : 0] es {2}",            // invalid input shape
		"median x[0 : 4] es {2",             // unbalanced braces
		"median x[-1 : 4] es {2}",           // negative corner
		"median x[0 4] es {2}",              // missing colon
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("accepted bad query %q", s)
		}
	}
}

func TestValidateAgainstVariableShape(t *testing.T) {
	q, err := Parse("avg t[0,0 : 365,250] es {7,5}")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(coords.NewShape(365, 250)); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(coords.NewShape(364, 250)); err == nil {
		t.Fatal("oversize input accepted")
	}
	if err := q.Validate(coords.NewShape(365, 250, 10)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}",
		"filter_gt temp[0,0 : 10,10] es {2,2} stride {3,3} param 4.5 keep-partial",
		"avg t[5,6 : 10,20] es {2,4}",
		"filter_range temp[0,0 : 10,10] es {2,2} param 3.5,7.25",
		"filter_range temp[0,0 : 10,10] es {2,2} param -2,0",
	} {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Fatalf("round trip mismatch: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestTwoParamQueries(t *testing.T) {
	q, err := Parse("filter_range t[0,0 : 8,8] es {2,2} param 1,5")
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasParam2 || q.Param != 1 || q.Param2 != 5 {
		t.Fatalf("param clause parsed as %+v", q)
	}
	if got := q.Params(); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("Params() = %v", got)
	}
	// A zero second bound must round-trip (HasParam2 keeps it explicit).
	q2, err := Parse("filter_range t[0,0 : 8,8] es {2,2} param -3,0")
	if err != nil {
		t.Fatal(err)
	}
	if !q2.HasParam2 || q2.Param2 != 0 {
		t.Fatalf("zero upper bound lost: %+v", q2)
	}

	for _, bad := range []string{
		"filter_gt t[0,0 : 8,8] es {2,2} param 1,5",    // one-param op, two values
		"filter_range t[0,0 : 8,8] es {2,2} param 5",   // two-param op, one value
		"filter_range t[0,0 : 8,8] es {2,2} param 5,1", // empty range
		"filter_range t[0,0 : 8,8] es {2,2} param 1,2,3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	single, err := Parse("filter_gt t[0,0 : 8,8] es {2,2} param 4")
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Params(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("single Params() = %v", got)
	}
}

func TestOpResolution(t *testing.T) {
	q, err := Parse("median x[0 : 4] es {2}")
	if err != nil {
		t.Fatal(err)
	}
	op, err := q.Op()
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "median" {
		t.Fatalf("Op = %v", op.Name())
	}
}

func TestStringContainsParts(t *testing.T) {
	q, _ := Parse("avg t[1,2 : 3,4] es {1,2}")
	s := q.String()
	for _, part := range []string{"avg", "t[1,2 : 3,4]", "es {1,2}"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String %q missing %q", s, part)
		}
	}
}
