// Package query defines the structural-query model of SciHadoop/SIDR: an
// operator applied to every extraction-shape tile of a coordinate subset
// of one variable. A small text syntax makes queries expressible on a
// command line:
//
//	median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}
//	filter_gt temp[0,0,0 : 365,250,200] es {1,1,1} param 40
//	avg temp[0,0,0 : 364,250,200] es {7,5,1} stride {7,5,1} keep-partial
//
// The bracket holds "corner : shape". The extraction shape follows `es`;
// `stride`, `param` and `keep-partial` are optional.
//
// A structural join reads two variables — typically from two registered
// datasets — and combines co-keyed tiles of a shared extraction shape:
//
//	join jsum a[0,0 : 512,512] es {16,16} with b[0,0 : 512,512] es {16,16}
//
// Both sides must declare the same extraction (shape and stride); the
// join keyspace is the intersection of the two sides' tile ranges.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"sidr/internal/coords"
	"sidr/internal/ops"
)

// Query is a validated structural query.
type Query struct {
	// Operator is the registered operator name (see package ops).
	Operator string
	// Param is the operator parameter (e.g. filter threshold, or the
	// lower bound of a two-parameter operator).
	Param float64
	// Param2 is the second operator parameter (e.g. filter_range's
	// upper bound); meaningful only when HasParam2 is set.
	Param2 float64
	// HasParam2 records that the query's param clause carried two
	// values ("param lo,hi") — kept explicit so a zero second bound
	// still renders and round-trips.
	HasParam2 bool
	// Variable names the dataset variable the query reads.
	Variable string
	// Input is the coordinate subset of the variable forming the query
	// input set T.
	Input coords.Slab
	// Extraction is the extraction shape tiling Input; each tile is one
	// intermediate key.
	Extraction coords.Extraction
	// KeepPartial keeps trailing partial tiles instead of discarding
	// them (the paper discards the 365th day in its example).
	KeepPartial bool
	// Join marks a two-input structural join; Operator then names a join
	// operator (ops.LookupJoin) and the fields below describe side B.
	Join bool
	// Variable2 names side B's variable (join queries only).
	Variable2 string
	// Input2 is side B's coordinate subset (join queries only).
	Input2 coords.Slab
	// Extraction2 is side B's declared extraction; Validate requires it
	// to equal Extraction so both sides tile into one shared keyspace.
	Extraction2 coords.Extraction
}

// Validate checks the query against itself and, if varShape is non-nil,
// against the (side A) variable's declared shape. Join queries validate
// side B's slab against its variable with ValidateSecond.
func (q *Query) Validate(varShape coords.Shape) error {
	if q.Join {
		return q.validateJoin(varShape)
	}
	if q.Variable == "" {
		return fmt.Errorf("query: missing variable name")
	}
	op, err := ops.Lookup(q.Operator)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	if n := ops.NumParams(op); q.HasParam2 && n < 2 {
		return fmt.Errorf("query: operator %s takes at most %d parameter(s), got 2", q.Operator, n)
	} else if n == 2 && !q.HasParam2 {
		return fmt.Errorf("query: operator %s needs two parameters (param lo,hi)", q.Operator)
	}
	if q.HasParam2 && q.Param > q.Param2 {
		return fmt.Errorf("query: empty param range [%g, %g]", q.Param, q.Param2)
	}
	if err := q.Input.Shape.Validate(); err != nil {
		return fmt.Errorf("query: input slab: %w", err)
	}
	if q.Input.Rank() != q.Extraction.Rank() {
		return fmt.Errorf("query: input rank %d != extraction rank %d", q.Input.Rank(), q.Extraction.Rank())
	}
	for i, c := range q.Input.Corner {
		if c < 0 {
			return fmt.Errorf("query: negative input corner in dim %d", i)
		}
	}
	if varShape != nil {
		full := coords.Slab{Corner: make(coords.Coord, varShape.Rank()), Shape: varShape}
		if varShape.Rank() != q.Input.Rank() {
			return fmt.Errorf("query: input rank %d != variable rank %d", q.Input.Rank(), varShape.Rank())
		}
		if !full.ContainsSlab(q.Input) {
			return fmt.Errorf("query: input %v exceeds variable shape %v", q.Input, varShape)
		}
	}
	return nil
}

// validateJoin checks a two-input join query; varShape, if non-nil,
// constrains side A only.
func (q *Query) validateJoin(varShape coords.Shape) error {
	if q.Variable == "" || q.Variable2 == "" {
		return fmt.Errorf("query: join needs a variable on both sides")
	}
	if _, err := ops.LookupJoin(q.Operator); err != nil {
		return fmt.Errorf("query: %w", err)
	}
	if q.Param != 0 || q.HasParam2 {
		return fmt.Errorf("query: join operators take no parameters")
	}
	if q.KeepPartial {
		return fmt.Errorf("query: keep-partial is not supported in join queries")
	}
	for side, in := range map[string]coords.Slab{"A": q.Input, "B": q.Input2} {
		if err := in.Shape.Validate(); err != nil {
			return fmt.Errorf("query: side %s input slab: %w", side, err)
		}
		for i, c := range in.Corner {
			if c < 0 {
				return fmt.Errorf("query: side %s: negative input corner in dim %d", side, i)
			}
		}
	}
	if q.Input.Rank() != q.Input2.Rank() {
		return fmt.Errorf("query: side ranks differ: %d vs %d", q.Input.Rank(), q.Input2.Rank())
	}
	if q.Input.Rank() != q.Extraction.Rank() {
		return fmt.Errorf("query: input rank %d != extraction rank %d", q.Input.Rank(), q.Extraction.Rank())
	}
	if !shapeEqual(q.Extraction.Shape, q.Extraction2.Shape) || !shapeEqual(q.Extraction.EffectiveStride(), q.Extraction2.EffectiveStride()) {
		return fmt.Errorf("query: join sides declare different extractions (%v vs %v)", q.Extraction, q.Extraction2)
	}
	if _, err := q.IntermediateSpace(); err != nil {
		return err
	}
	if varShape != nil {
		if err := slabWithin(q.Input, varShape); err != nil {
			return fmt.Errorf("query: side A: %w", err)
		}
	}
	return nil
}

// ValidateSecond checks side B's slab against its variable's declared
// shape; single-input queries have no side B and always pass.
func (q *Query) ValidateSecond(varShape coords.Shape) error {
	if !q.Join || varShape == nil {
		return nil
	}
	if err := slabWithin(q.Input2, varShape); err != nil {
		return fmt.Errorf("query: side B: %w", err)
	}
	return nil
}

func slabWithin(in coords.Slab, varShape coords.Shape) error {
	if varShape.Rank() != in.Rank() {
		return fmt.Errorf("input rank %d != variable rank %d", in.Rank(), varShape.Rank())
	}
	full := coords.Slab{Corner: make(coords.Coord, varShape.Rank()), Shape: varShape}
	if !full.ContainsSlab(in) {
		return fmt.Errorf("input %v exceeds variable shape %v", in, varShape)
	}
	return nil
}

func shapeEqual(a, b coords.Shape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Op resolves the query's operator.
func (q *Query) Op() (ops.Operator, error) {
	return ops.Lookup(q.Operator)
}

// JoinOp resolves a join query's operator.
func (q *Query) JoinOp() (ops.JoinOperator, error) {
	if !q.Join {
		return nil, fmt.Errorf("query: %q is not a join query", q.Operator)
	}
	return ops.LookupJoin(q.Operator)
}

// Params returns the operator parameters in positional order, ready to
// splat into ops.Operator.Apply.
func (q *Query) Params() []float64 {
	if q.HasParam2 {
		return []float64{q.Param, q.Param2}
	}
	return []float64{q.Param}
}

// IntermediateSpace returns the query's intermediate keyspace K'^T as a
// slab in K' (SIDR §3, Area 3). The slab's corner is the tile index of
// the input corner; its shape is the tiled extent of the input. For a
// join it is the intersection of the two sides' tile ranges — the join
// keyspace.
func (q *Query) IntermediateSpace() (coords.Slab, error) {
	if !q.Join {
		return q.Extraction.TileRange(q.Input)
	}
	ta, err := q.Extraction.TileRange(q.Input)
	if err != nil {
		return coords.Slab{}, err
	}
	tb, err := q.Extraction.TileRange(q.Input2)
	if err != nil {
		return coords.Slab{}, err
	}
	inter, ok := ta.Intersect(tb)
	if !ok {
		return coords.Slab{}, fmt.Errorf("query: join sides share no tiles (%v vs %v)", ta, tb)
	}
	return inter, nil
}

// String renders the query in the package's text syntax.
func (q *Query) String() string {
	var b strings.Builder
	if q.Join {
		fmt.Fprintf(&b, "join %s %s with %s", q.Operator,
			renderSide(q.Variable, q.Input, q.Extraction),
			renderSide(q.Variable2, q.Input2, q.Extraction2))
		return b.String()
	}
	fmt.Fprintf(&b, "%s %s[%s : %s] es %s",
		q.Operator, q.Variable,
		joinInts(q.Input.Corner), joinInts(coords.Coord(q.Input.Shape)),
		"{"+joinInts(coords.Coord(q.Extraction.Shape))+"}")
	if q.Extraction.Stride != nil {
		fmt.Fprintf(&b, " stride {%s}", joinInts(coords.Coord(q.Extraction.Stride)))
	}
	if q.HasParam2 {
		fmt.Fprintf(&b, " param %g,%g", q.Param, q.Param2)
	} else if q.Param != 0 {
		fmt.Fprintf(&b, " param %g", q.Param)
	}
	if q.KeepPartial {
		b.WriteString(" keep-partial")
	}
	return b.String()
}

func renderSide(variable string, in coords.Slab, es coords.Extraction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s : %s] es %s", variable,
		joinInts(in.Corner), joinInts(coords.Coord(in.Shape)),
		"{"+joinInts(coords.Coord(es.Shape))+"}")
	if es.Stride != nil {
		fmt.Fprintf(&b, " stride {%s}", joinInts(coords.Coord(es.Stride)))
	}
	return b.String()
}

func joinInts(xs coords.Coord) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatInt(x, 10)
	}
	return strings.Join(parts, ",")
}

// Parse parses the text syntax described in the package comment.
func Parse(s string) (*Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	if len(toks) < 3 {
		return nil, fmt.Errorf("query: too few tokens in %q", s)
	}
	if toks[0] == "join" {
		return parseJoin(toks)
	}
	q := &Query{Operator: toks[0]}
	// Second token: var[corner : shape]
	q.Variable, q.Input, err = parseVarSlab(toks[1])
	if err != nil {
		return nil, err
	}

	var esShape, esStride coords.Shape
	i := 2
	for i < len(toks) {
		switch toks[i] {
		case "es":
			if i+1 >= len(toks) {
				return nil, fmt.Errorf("query: es needs a shape")
			}
			esShape, err = coords.ParseShape(toks[i+1])
			if err != nil {
				return nil, err
			}
			i += 2
		case "stride":
			if i+1 >= len(toks) {
				return nil, fmt.Errorf("query: stride needs a shape")
			}
			esStride, err = coords.ParseShape(toks[i+1])
			if err != nil {
				return nil, err
			}
			i += 2
		case "param":
			if i+1 >= len(toks) {
				return nil, fmt.Errorf("query: param needs a number")
			}
			// One value ("param 40") or two comma-separated bounds
			// ("param 10,20") for two-parameter operators.
			parts := strings.Split(toks[i+1], ",")
			if len(parts) > 2 {
				return nil, fmt.Errorf("query: param takes at most two values, got %q", toks[i+1])
			}
			q.Param, err = strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad param %q: %w", toks[i+1], err)
			}
			if len(parts) == 2 {
				q.Param2, err = strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return nil, fmt.Errorf("query: bad param %q: %w", toks[i+1], err)
				}
				q.HasParam2 = true
			}
			i += 2
		case "keep-partial":
			q.KeepPartial = true
			i++
		default:
			return nil, fmt.Errorf("query: unexpected token %q", toks[i])
		}
	}
	if esShape == nil {
		return nil, fmt.Errorf("query: missing extraction shape (es {...})")
	}
	q.Extraction, err = coords.NewExtraction(esShape, esStride)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(nil); err != nil {
		return nil, err
	}
	return q, nil
}

// parseVarSlab parses a "var[corner : shape]" token.
func parseVarSlab(tok string) (string, coords.Slab, error) {
	open := strings.IndexByte(tok, '[')
	if open <= 0 || !strings.HasSuffix(tok, "]") {
		return "", coords.Slab{}, fmt.Errorf("query: expected var[corner : shape], got %q", tok)
	}
	inner := tok[open+1 : len(tok)-1]
	halves := strings.Split(inner, ":")
	if len(halves) != 2 {
		return "", coords.Slab{}, fmt.Errorf("query: expected corner : shape inside brackets, got %q", inner)
	}
	corner, err := coords.ParseCoord(halves[0])
	if err != nil {
		return "", coords.Slab{}, err
	}
	shape, err := coords.ParseShape(halves[1])
	if err != nil {
		return "", coords.Slab{}, err
	}
	slab, err := coords.NewSlab(corner, shape)
	if err != nil {
		return "", coords.Slab{}, fmt.Errorf("query: input slab: %w", err)
	}
	return tok[:open], slab, nil
}

// parseSide parses one join side: var[corner : shape] es {..} [stride {..}].
func parseSide(toks []string) (string, coords.Slab, coords.Extraction, error) {
	var es coords.Extraction
	if len(toks) == 0 {
		return "", coords.Slab{}, es, fmt.Errorf("query: join side is empty")
	}
	variable, slab, err := parseVarSlab(toks[0])
	if err != nil {
		return "", coords.Slab{}, es, err
	}
	var esShape, esStride coords.Shape
	for i := 1; i < len(toks); {
		switch toks[i] {
		case "es":
			if i+1 >= len(toks) {
				return "", coords.Slab{}, es, fmt.Errorf("query: es needs a shape")
			}
			if esShape, err = coords.ParseShape(toks[i+1]); err != nil {
				return "", coords.Slab{}, es, err
			}
			i += 2
		case "stride":
			if i+1 >= len(toks) {
				return "", coords.Slab{}, es, fmt.Errorf("query: stride needs a shape")
			}
			if esStride, err = coords.ParseShape(toks[i+1]); err != nil {
				return "", coords.Slab{}, es, err
			}
			i += 2
		default:
			return "", coords.Slab{}, es, fmt.Errorf("query: unexpected token %q in join side", toks[i])
		}
	}
	if esShape == nil {
		return "", coords.Slab{}, es, fmt.Errorf("query: missing extraction shape (es {...})")
	}
	if es, err = coords.NewExtraction(esShape, esStride); err != nil {
		return "", coords.Slab{}, es, err
	}
	return variable, slab, es, nil
}

// parseJoin parses "join <op> A[c : s] es {..} with B[c : s] es {..}".
func parseJoin(toks []string) (*Query, error) {
	if len(toks) < 7 {
		return nil, fmt.Errorf("query: too few tokens in join query")
	}
	with := -1
	for i, t := range toks {
		if t == "with" {
			with = i
			break
		}
	}
	if with < 0 {
		return nil, fmt.Errorf("query: join query missing 'with'")
	}
	q := &Query{Join: true, Operator: toks[1]}
	var err error
	if q.Variable, q.Input, q.Extraction, err = parseSide(toks[2:with]); err != nil {
		return nil, err
	}
	if q.Variable2, q.Input2, q.Extraction2, err = parseSide(toks[with+1:]); err != nil {
		return nil, err
	}
	if err := q.Validate(nil); err != nil {
		return nil, err
	}
	return q, nil
}

// Canonical parses s and re-renders it in the canonical text form, so
// trivially different spellings of one query — extra whitespace, spaces
// inside bracket groups, "40.0" vs "40", "+1e1" vs "10" — map to one
// string. Every cache keyed on query text (the plan cache, the result
// cache, in-flight collapsing) keys on the canonical form, so textual
// variants of the same query share entries instead of fragmenting them.
func Canonical(s string) (string, error) {
	q, err := Parse(s)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// tokenize splits on whitespace but keeps {...} and [...] groups (which
// may contain spaces) attached to a single token.
func tokenize(s string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch r {
		case '{', '[':
			depth++
			cur.WriteRune(r)
		case '}', ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("query: unbalanced brackets in %q", s)
			}
			cur.WriteRune(r)
		case ' ', '\t', '\n':
			if depth > 0 {
				continue // drop spaces inside groups
			}
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("query: unbalanced brackets in %q", s)
	}
	flush()
	return toks, nil
}
