package query

import (
	"testing"
)

// FuzzParseJoin throws arbitrary text at the two-input join grammar.
// Parse must never panic, and any input it accepts must round-trip
// through the canonical rendering: Parse(q.String()) succeeds and
// renders identically (String is a fixed point), with the structural
// join fields surviving the trip.
func FuzzParseJoin(f *testing.F) {
	f.Add("join jsum a[0,0 : 512,512] es {16,16} with b[0,0 : 512,512] es {16,16}")
	f.Add("join javg a[0,0 : 64,64] es {8,8} with b[0,0 : 48,48] es {8,8}")
	f.Add("join jcorr x[0,0,0 : 10,10,10] es {2,2,2} with y[0,0,0 : 10,10,10] es {2,2,2}")
	f.Add("join jsum a[0 : 8] es {2} with b[0 : 8] es {2}")
	f.Add("join with with with")
	f.Add("join jsum a[0,0 : 4,4] es {2,2}")
	f.Add("avg temp[0,0 : 32,32] es {4,4}")
	f.Add("join jsum a[0,0 : 4,4] es {2,2} with b[9,9 : 4,4] es {2,2}")

	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return // rejected input; only acceptance has invariants
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, s, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("String is not a fixed point: %q -> %q", canon, got)
		}
		if q2.Join != q.Join {
			t.Fatalf("join flag flipped across round-trip of %q", s)
		}
		if q.Join {
			if q2.Variable2 != q.Variable2 {
				t.Fatalf("side-B variable %q became %q across round-trip", q.Variable2, q2.Variable2)
			}
			if !q2.Input2.Equal(q.Input2) {
				t.Fatalf("side-B input %v became %v across round-trip", q.Input2, q2.Input2)
			}
			if _, err := q2.JoinOp(); err != nil {
				t.Fatalf("accepted join %q has no operator: %v", s, err)
			}
		}
	})
}
