package query

import "testing"

// TestCanonicalCollapsesSpellings pins the property the daemon's caches
// rely on: every trivially different spelling of one query canonicalises
// to the same string.
func TestCanonicalCollapsesSpellings(t *testing.T) {
	canon, err := Canonical("avg temp[0,0,0 : 364,250,200] es {7,5,1}")
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{
		"avg temp[0,0,0 : 364,250,200] es {7,5,1}",
		"avg  temp[0,0,0 : 364,250,200]  es  {7,5,1}",
		"avg temp[ 0, 0, 0 : 364, 250, 200 ] es { 7, 5, 1 }",
		"avg\ttemp[0,0,0:364,250,200]\tes\t{7,5,1}",
		"avg temp[0,0,0 :\n364,250,200] es {7,5,1}",
	}
	for _, v := range variants {
		got, err := Canonical(v)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", v, err)
		}
		if got != canon {
			t.Fatalf("Canonical(%q) = %q, want %q", v, got, canon)
		}
	}
}

// TestCanonicalNormalisesParams checks numeric param formatting: trailing
// zeros, explicit plus signs and exponent notation all render as one %g
// form, for one- and two-parameter operators.
func TestCanonicalNormalisesParams(t *testing.T) {
	cases := []struct{ a, b string }{
		{"filter_gt v[0,0 : 8,8] es {2,2} param 40.0",
			"filter_gt v[0,0 : 8,8] es {2,2} param 40"},
		{"filter_gt v[0,0 : 8,8] es {2,2} param +4e1",
			"filter_gt v[0,0 : 8,8] es {2,2} param 40"},
		{"filter_range v[0,0 : 8,8] es {2,2} param 10.0,20.00",
			"filter_range v[0,0 : 8,8] es {2,2} param 10,20"},
		{"filter_range v[0,0 : 8,8] es {2,2} param 0,2e1",
			"filter_range v[0,0 : 8,8] es {2,2} param 0,20"},
	}
	for _, c := range cases {
		ca, err := Canonical(c.a)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", c.a, err)
		}
		cb, err := Canonical(c.b)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", c.b, err)
		}
		if ca != cb {
			t.Fatalf("Canonical(%q) = %q != Canonical(%q) = %q", c.a, ca, c.b, cb)
		}
	}
}

// TestCanonicalFixedPoint: canonicalising a canonical string is the
// identity, and distinct queries stay distinct.
func TestCanonicalFixedPoint(t *testing.T) {
	for _, s := range []string{
		"avg v[0,0 : 32,32] es {4,4}",
		"median w[0,0,0,0 : 144,36,36,10] es {2,36,36,10}",
		"filter_gt v[0,0 : 8,8] es {2,2} param 40",
		"filter_range v[0,0 : 8,8] es {2,2} param 10,20",
		"avg v[0,0 : 32,32] es {4,4} stride {8,8} keep-partial",
	} {
		c1, err := Canonical(s)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", s, err)
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", c1, err)
		}
		if c1 != c2 {
			t.Fatalf("not a fixed point: %q -> %q -> %q", s, c1, c2)
		}
	}
	a, _ := Canonical("avg v[0,0 : 32,32] es {4,4}")
	b, _ := Canonical("avg v[0,0 : 32,32] es {8,8}")
	if a == b {
		t.Fatalf("distinct queries canonicalised to one string: %q", a)
	}
}

// TestCanonicalRejectsInvalid: canonicalisation is parsing, so invalid
// queries fail instead of being cached under a garbage key.
func TestCanonicalRejectsInvalid(t *testing.T) {
	for _, s := range []string{"", "avg", "avg v[0,0 : 8,8]", "nosuchop v[0 : 8] es {2}"} {
		if _, err := Canonical(s); err == nil {
			t.Fatalf("Canonical(%q) succeeded, want error", s)
		}
	}
}
