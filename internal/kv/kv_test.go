package kv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
)

func TestNewValue(t *testing.T) {
	v := NewValue(3, false)
	if v.Count != 1 || v.Sum != 3 || v.Min != 3 || v.Max != 3 || v.SumSq != 9 {
		t.Fatalf("NewValue = %+v", v)
	}
	if v.Samples != nil {
		t.Fatal("samples kept when not requested")
	}
	s := NewValue(3, true)
	if len(s.Samples) != 1 || s.Samples[0] != 3 {
		t.Fatalf("samples = %v", s.Samples)
	}
}

func TestValueAdd(t *testing.T) {
	var v Value
	for _, x := range []float64{5, -2, 9, 0} {
		v.Add(x, true)
	}
	if v.Count != 4 || v.Sum != 12 || v.Min != -2 || v.Max != 9 {
		t.Fatalf("Add = %+v", v)
	}
	if len(v.Samples) != 4 {
		t.Fatalf("samples = %v", v.Samples)
	}
}

func TestValueMerge(t *testing.T) {
	a := NewValue(1, true)
	a.Add(2, true)
	b := NewValue(10, true)
	b.Add(-5, true)
	a.Merge(b)
	if a.Count != 4 || a.Sum != 8 || a.Min != -5 || a.Max != 10 {
		t.Fatalf("Merge = %+v", a)
	}
	if len(a.Samples) != 4 {
		t.Fatalf("samples = %v", a.Samples)
	}
	// Merging an empty value is a no-op.
	before := a.Clone()
	a.Merge(Value{})
	if a.Count != before.Count || a.Sum != before.Sum {
		t.Fatalf("empty merge changed value: %+v", a)
	}
	// Merging into an empty value copies min/max.
	var e Value
	e.Merge(b)
	if e.Min != -5 || e.Max != 10 || e.Count != 2 {
		t.Fatalf("merge into empty = %+v", e)
	}
}

func TestMeanStdDev(t *testing.T) {
	var v Value
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		v.Add(x, false)
	}
	if v.Mean() != 5 {
		t.Fatalf("Mean = %v", v.Mean())
	}
	if math.Abs(v.StdDev()-2) > 1e-12 {
		t.Fatalf("StdDev = %v", v.StdDev())
	}
	var empty Value
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty value stats nonzero")
	}
}

func TestSortedSamplesDoesNotMutate(t *testing.T) {
	var v Value
	v.Add(3, true)
	v.Add(1, true)
	v.Add(2, true)
	s := v.SortedSamples()
	if s[0] != 1 || s[2] != 3 {
		t.Fatalf("sorted = %v", s)
	}
	if v.Samples[0] != 3 {
		t.Fatal("SortedSamples mutated receiver")
	}
}

func TestCloneIndependence(t *testing.T) {
	var v Value
	v.Add(1, true)
	c := v.Clone()
	c.Add(2, true)
	if len(v.Samples) != 1 {
		t.Fatal("clone shares samples")
	}
}

func TestApproxBytes(t *testing.T) {
	var v Value
	if v.ApproxBytes() != 40 {
		t.Fatalf("empty ApproxBytes = %d", v.ApproxBytes())
	}
	v.Add(1, true)
	if v.ApproxBytes() != 48 {
		t.Fatalf("ApproxBytes = %d", v.ApproxBytes())
	}
}

func TestSortMergePairs(t *testing.T) {
	ps := []Pair{
		{Key: coords.NewCoord(1, 0), Value: NewValue(10, false)},
		{Key: coords.NewCoord(0, 1), Value: NewValue(1, false)},
		{Key: coords.NewCoord(0, 1), Value: NewValue(2, false)},
		{Key: coords.NewCoord(0, 0), Value: NewValue(5, false)},
	}
	SortPairs(ps)
	if !ps[0].Key.Equal(coords.NewCoord(0, 0)) || !ps[3].Key.Equal(coords.NewCoord(1, 0)) {
		t.Fatalf("sort order wrong: %v", ps)
	}
	merged := MergePairs(ps)
	if len(merged) != 3 {
		t.Fatalf("merged to %d pairs, want 3", len(merged))
	}
	if merged[1].Value.Count != 2 || merged[1].Value.Sum != 3 {
		t.Fatalf("merged middle = %+v", merged[1].Value)
	}
	if MergePairs(nil) != nil {
		t.Fatal("MergePairs(nil) != nil")
	}
}

func TestMergePairsDoesNotAliasInput(t *testing.T) {
	v := NewValue(1, true)
	ps := []Pair{{Key: coords.NewCoord(0), Value: v}}
	merged := MergePairs(ps)
	merged[0].Value.Add(9, true)
	if len(v.Samples) != 1 {
		t.Fatal("MergePairs aliased input samples")
	}
}

func TestTotalCount(t *testing.T) {
	ps := []Pair{
		{Key: coords.NewCoord(0), Value: Value{Count: 3}},
		{Key: coords.NewCoord(1), Value: Value{Count: 4}},
	}
	if TotalCount(ps) != 7 {
		t.Fatalf("TotalCount = %d", TotalCount(ps))
	}
}

// TestQuickMergeEquivalentToAdds: merging values built from disjoint
// sample sets equals folding all samples into one value — the combiner
// correctness invariant.
func TestQuickMergeEquivalentToAdds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		cut := r.Intn(n)
		var a, b, all Value
		for i, x := range xs {
			if i < cut {
				a.Add(x, true)
			} else {
				b.Add(x, true)
			}
			all.Add(x, true)
		}
		a.Merge(b)
		return a.Count == all.Count &&
			math.Abs(a.Sum-all.Sum) < 1e-9 &&
			a.Min == all.Min && a.Max == all.Max &&
			len(a.Samples) == len(all.Samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCountAnnotationAdditive: the Count annotation is additive
// under any merge tree — the property the Reduce barrier tally relies on.
func TestQuickCountAnnotationAdditive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		vals := make([]Value, n)
		var total int64
		for i := range vals {
			k := 1 + r.Intn(5)
			for j := 0; j < k; j++ {
				vals[i].Add(r.Float64(), false)
			}
			total += int64(k)
		}
		// Merge in random order.
		for len(vals) > 1 {
			i := r.Intn(len(vals) - 1)
			vals[i].Merge(vals[i+1])
			vals = append(vals[:i+1], vals[i+2:]...)
		}
		return vals[0].Count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
