package kv

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sidr/internal/coords"
)

// This file implements spill format v3: the block-framed columnar
// layout the clustered shuffle serves at hardware speed. Where v2
// stores row-oriented pairs behind one whole-payload CRC, v3 frames the
// pairs into fixed-size blocks, lays each block out column-major
// (sorted keys first, then the value columns), optionally DEFLATEs each
// block, and checksums each block independently — so a streaming reader
// rejects a flipped bit as soon as the damaged block arrives, and a
// serving worker moves the file as opaque bytes without re-decoding a
// single pair.
//
// Layout (little-endian):
//
//	file header (28 bytes):
//	  magic "SPIL" | u16 version=3 | u32 rank | u64 sourceCount
//	  | u32 nPairs | u16 flags | u32 nBlocks
//
//	nBlocks × block:
//	  block header (16 bytes):
//	    u32 bPairs | u32 rawLen | u32 encLen | u32 crc
//	  stored payload (encLen bytes; == raw payload unless flag 0 set)
//
//	raw block payload (columnar, rawLen bytes):
//	  rank × bPairs × i64   keys, dimension-major (keys stay sorted)
//	  bPairs × f64          sums
//	  bPairs × f64          sum-of-squares
//	  bPairs × f64          mins
//	  bPairs × f64          maxs
//	  bPairs × i64          counts
//	  bPairs × u32          per-pair sample counts
//	  Σ nSamples × f64      samples, in pair order
//
// The sourceCount annotation keeps v2's byte offset (10..18) and stays
// outside every checksum: the kv-count gate (§3.2.1) verifies it
// independently on the Reduce side. Every other header field is folded
// into each block's CRC as a seed, so a flipped rank/flags/count bit is
// caught by the first block read. Block CRCs cover their own header's
// first 12 bytes plus the stored payload.

const (
	spillVersionV3 uint16 = 3
	// spillHeaderLenV3 is the fixed byte length of the v3 file header.
	spillHeaderLenV3 = 28
	// blockHeaderLen is the per-block frame header length.
	blockHeaderLen = 16
	// V3FlagDeflate marks per-block DEFLATE compression (stdlib
	// compress/flate, BestSpeed — deterministic for a given input).
	V3FlagDeflate uint16 = 1 << 0

	// DefaultBlockPairs is the default pairs-per-block framing.
	DefaultBlockPairs = 4096

	// maxBlockLen caps a single block's claimed raw or stored byte
	// length. The limit defends the decoder against corrupt or hostile
	// length fields (including DEFLATE bombs) long before gigabytes are
	// materialised; real blocks are a few hundred KB.
	maxBlockLen = 1 << 30
)

// V3Options tunes WriteSpillV3.
type V3Options struct {
	// BlockPairs is the pairs-per-block framing (default
	// DefaultBlockPairs). The final block holds the remainder.
	BlockPairs int
	// Compress DEFLATEs each block's columnar payload.
	Compress bool
}

// WriteSpillV3 serialises sorted pairs in the block-framed columnar v3
// format with their source-count annotation.
func WriteSpillV3(w io.Writer, rank int, sourceCount int64, pairs []Pair, opts V3Options) error {
	if rank <= 0 || rank > coords.MaxRank {
		return fmt.Errorf("kv: invalid spill rank %d", rank)
	}
	blockPairs := opts.BlockPairs
	if blockPairs <= 0 {
		blockPairs = DefaultBlockPairs
	}
	var flags uint16
	if opts.Compress {
		flags |= V3FlagDeflate
	}
	nBlocks := (len(pairs) + blockPairs - 1) / blockPairs

	le := binary.LittleEndian
	var hdr [spillHeaderLenV3]byte
	copy(hdr[:4], spillMagic[:])
	le.PutUint16(hdr[4:6], spillVersionV3)
	le.PutUint32(hdr[6:10], uint32(rank))
	le.PutUint64(hdr[10:18], uint64(sourceCount))
	le.PutUint32(hdr[18:22], uint32(len(pairs)))
	le.PutUint16(hdr[22:24], flags)
	le.PutUint32(hdr[24:28], uint32(nBlocks))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	seed := v3HeaderCRCSeed(hdr[:])

	var comp bytes.Buffer
	for off := 0; off < len(pairs); off += blockPairs {
		end := off + blockPairs
		if end > len(pairs) {
			end = len(pairs)
		}
		raw, err := encodeV3Block(rank, pairs[off:end])
		if err != nil {
			return err
		}
		stored := raw
		if opts.Compress {
			comp.Reset()
			fw, err := flate.NewWriter(&comp, flate.BestSpeed)
			if err != nil {
				return err
			}
			if _, err := fw.Write(raw); err != nil {
				return err
			}
			if err := fw.Close(); err != nil {
				return err
			}
			stored = comp.Bytes()
		}
		var bh [blockHeaderLen]byte
		le.PutUint32(bh[0:4], uint32(end-off))
		le.PutUint32(bh[4:8], uint32(len(raw)))
		le.PutUint32(bh[8:12], uint32(len(stored)))
		crc := crc32.Update(seed, castagnoli, bh[0:12])
		crc = crc32.Update(crc, castagnoli, stored)
		le.PutUint32(bh[12:16], crc)
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if _, err := w.Write(stored); err != nil {
			return err
		}
	}
	return nil
}

// v3HeaderCRCSeed folds every file-header field except the sourceCount
// annotation (bytes 10..18, independently verified by the kv-count
// tally) into the seed each block CRC starts from. A flipped bit in
// rank, flags or the counts therefore fails the first block's checksum.
func v3HeaderCRCSeed(hdr []byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdr[0:10])
	return crc32.Update(crc, castagnoli, hdr[18:spillHeaderLenV3])
}

// encodeV3Block lays one block of pairs out column-major.
func encodeV3Block(rank int, pairs []Pair) ([]byte, error) {
	n := len(pairs)
	samples := 0
	for i := range pairs {
		if pairs[i].Key.Rank() != rank {
			return nil, fmt.Errorf("kv: pair key %v rank != %d", pairs[i].Key, rank)
		}
		samples += len(pairs[i].Value.Samples)
	}
	raw := make([]byte, v3BlockRawLen(rank, n, samples))
	le := binary.LittleEndian
	off := 0
	for d := 0; d < rank; d++ {
		for i := range pairs {
			le.PutUint64(raw[off:], uint64(pairs[i].Key[d]))
			off += 8
		}
	}
	cols := []func(*Value) float64{
		func(v *Value) float64 { return v.Sum },
		func(v *Value) float64 { return v.SumSq },
		func(v *Value) float64 { return v.Min },
		func(v *Value) float64 { return v.Max },
	}
	for _, col := range cols {
		for i := range pairs {
			le.PutUint64(raw[off:], math.Float64bits(col(&pairs[i].Value)))
			off += 8
		}
	}
	for i := range pairs {
		le.PutUint64(raw[off:], uint64(pairs[i].Value.Count))
		off += 8
	}
	for i := range pairs {
		le.PutUint32(raw[off:], uint32(len(pairs[i].Value.Samples)))
		off += 4
	}
	for i := range pairs {
		for _, s := range pairs[i].Value.Samples {
			le.PutUint64(raw[off:], math.Float64bits(s))
			off += 8
		}
	}
	return raw, nil
}

// v3BlockRawLen is the exact raw payload length of a block: the fixed
// columns plus the variable sample column.
func v3BlockRawLen(rank, nPairs, nSamples int) int {
	return nPairs*(rank*8+4*8+8+4) + nSamples*8
}

// readSpillV3Body decodes the block stream following a v3 header,
// verifying each block's CRC (seeded by the header fields) before any
// of its pairs are surfaced.
func readSpillV3Body(br *bufio.Reader, h SpillHeader, seed uint32) ([]Pair, error) {
	le := binary.LittleEndian
	// Cap preallocation: counts are untrusted until the blocks that back
	// them actually arrive.
	pairs := make([]Pair, 0, min(h.Pairs, 1024))
	for b := 0; b < h.Blocks; b++ {
		var bh [blockHeaderLen]byte
		if _, err := io.ReadFull(br, bh[:]); err != nil {
			return nil, fmt.Errorf("kv: truncated spill block %d header: %w", b, err)
		}
		bPairs := int(le.Uint32(bh[0:4]))
		rawLen := int(le.Uint32(bh[4:8]))
		encLen := int(le.Uint32(bh[8:12]))
		wantCRC := le.Uint32(bh[12:16])
		if bPairs <= 0 || bPairs > h.Pairs-len(pairs) {
			return nil, fmt.Errorf("kv: spill block %d claims %d pairs with %d remaining: %w",
				b, bPairs, h.Pairs-len(pairs), ErrChecksum)
		}
		if rawLen <= 0 || rawLen > maxBlockLen || encLen <= 0 || encLen > maxBlockLen {
			return nil, fmt.Errorf("kv: spill block %d implausible lengths raw=%d enc=%d: %w",
				b, rawLen, encLen, ErrChecksum)
		}
		stored, err := io.ReadAll(io.LimitReader(br, int64(encLen)))
		if err != nil {
			return nil, fmt.Errorf("kv: reading spill block %d: %w", b, err)
		}
		if len(stored) != encLen {
			return nil, fmt.Errorf("kv: truncated spill block %d: %d of %d bytes", b, len(stored), encLen)
		}
		crc := crc32.Update(seed, castagnoli, bh[0:12])
		crc = crc32.Update(crc, castagnoli, stored)
		if crc != wantCRC {
			return nil, fmt.Errorf("kv: spill block %d crc %08x, header says %08x: %w",
				b, crc, wantCRC, ErrChecksum)
		}
		raw := stored
		if h.Flags&V3FlagDeflate != 0 {
			fr := flate.NewReader(bytes.NewReader(stored))
			raw, err = io.ReadAll(io.LimitReader(fr, int64(rawLen)+1))
			if cerr := fr.Close(); err == nil {
				err = cerr
			}
			if err != nil || len(raw) != rawLen {
				return nil, fmt.Errorf("kv: spill block %d inflates to %d bytes, header says %d (%v): %w",
					b, len(raw), rawLen, err, ErrChecksum)
			}
		} else if encLen != rawLen {
			return nil, fmt.Errorf("kv: uncompressed spill block %d stored %d != raw %d: %w",
				b, encLen, rawLen, ErrChecksum)
		}
		got, err := decodeV3Block(h.Rank, bPairs, raw)
		if err != nil {
			return nil, fmt.Errorf("kv: spill block %d: %w", b, err)
		}
		pairs = append(pairs, got...)
	}
	if len(pairs) != h.Pairs {
		return nil, fmt.Errorf("kv: spill blocks hold %d pairs, header says %d: %w",
			len(pairs), h.Pairs, ErrChecksum)
	}
	return pairs, nil
}

// decodeV3Block parses one block's columnar payload back into pairs.
func decodeV3Block(rank, n int, raw []byte) ([]Pair, error) {
	fixed := n * (rank*8 + 4*8 + 8 + 4)
	if len(raw) < fixed {
		return nil, fmt.Errorf("kv: block payload %d bytes < %d fixed columns: %w",
			len(raw), fixed, ErrChecksum)
	}
	le := binary.LittleEndian
	pairs := make([]Pair, n)
	keys := make(coords.Coord, rank*n) // one backing array for the block's keys
	off := 0
	for d := 0; d < rank; d++ {
		for i := 0; i < n; i++ {
			keys[i*rank+d] = int64(le.Uint64(raw[off:]))
			off += 8
		}
	}
	for i := 0; i < n; i++ {
		pairs[i].Key = keys[i*rank : (i+1)*rank : (i+1)*rank]
	}
	getF := func() float64 {
		f := math.Float64frombits(le.Uint64(raw[off:]))
		off += 8
		return f
	}
	for i := 0; i < n; i++ {
		pairs[i].Value.Sum = getF()
	}
	for i := 0; i < n; i++ {
		pairs[i].Value.SumSq = getF()
	}
	for i := 0; i < n; i++ {
		pairs[i].Value.Min = getF()
	}
	for i := 0; i < n; i++ {
		pairs[i].Value.Max = getF()
	}
	for i := 0; i < n; i++ {
		pairs[i].Value.Count = int64(le.Uint64(raw[off:]))
		off += 8
	}
	totalSamples := 0
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		counts[i] = int(le.Uint32(raw[off:]))
		off += 4
		totalSamples += counts[i]
	}
	if len(raw) != fixed+totalSamples*8 {
		return nil, fmt.Errorf("kv: block payload %d bytes, columns need %d: %w",
			len(raw), fixed+totalSamples*8, ErrChecksum)
	}
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		ss := make([]float64, counts[i])
		for s := range ss {
			ss[s] = getF()
		}
		pairs[i].Value.Samples = ss
	}
	return pairs, nil
}
