package kv

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
)

func samplePairs() []Pair {
	a := NewValue(1.5, true)
	a.Add(-2, true)
	b := NewValue(7, false)
	return []Pair{
		{Key: coords.NewCoord(0, 3), Value: a},
		{Key: coords.NewCoord(1, 0), Value: b},
	}
}

func TestSpillRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pairs := samplePairs()
	if err := WriteSpill(&buf, 2, 3, pairs); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadSpill(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank != 2 || h.SourceCount != 3 || h.Pairs != 2 {
		t.Fatalf("header = %+v", h)
	}
	if len(got) != 2 {
		t.Fatalf("%d pairs", len(got))
	}
	if !got[0].Key.Equal(pairs[0].Key) || got[0].Value.Sum != pairs[0].Value.Sum {
		t.Fatalf("pair 0 = %+v", got[0])
	}
	if len(got[0].Value.Samples) != 2 || got[0].Value.Samples[1] != -2 {
		t.Fatalf("samples = %v", got[0].Value.Samples)
	}
	if got[1].Value.Samples != nil {
		t.Fatal("sampleless value grew samples")
	}
}

func TestSpillHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpill(&buf, 2, 42, samplePairs()); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSpillHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The annotation is readable from the header alone (§3.2.1).
	if h.SourceCount != 42 {
		t.Fatalf("SourceCount = %d", h.SourceCount)
	}
}

func TestSpillValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpill(&buf, 0, 0, nil); err == nil {
		t.Fatal("zero rank accepted")
	}
	if err := WriteSpill(&buf, 1, 0, samplePairs()); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := ReadSpillHeader(bytes.NewReader([]byte("XXXXxxxxxxxx"))); !errors.Is(err, ErrBadSpillMagic) {
		t.Fatalf("err = %v", err)
	}
	bad := []byte{'S', 'P', 'I', 'L', 9, 9}
	if _, err := ReadSpillHeader(bytes.NewReader(bad)); !errors.Is(err, ErrBadSpillVersion) {
		t.Fatalf("err = %v", err)
	}
	// Truncated body.
	var full bytes.Buffer
	if err := WriteSpill(&full, 2, 3, samplePairs()); err != nil {
		t.Fatal(err)
	}
	trunc := full.Bytes()[:full.Len()-4]
	if _, _, err := ReadSpill(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated spill accepted")
	}
}

func TestQuickSpillRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(4)
		n := r.Intn(20)
		src := int64(0)
		pairs := make([]Pair, n)
		for i := range pairs {
			key := make(coords.Coord, rank)
			for d := range key {
				key[d] = r.Int63n(1000)
			}
			var v Value
			k := 1 + r.Intn(4)
			for j := 0; j < k; j++ {
				v.Add(r.NormFloat64(), r.Intn(2) == 0)
			}
			src += int64(k)
			pairs[i] = Pair{Key: key, Value: v}
		}
		var buf bytes.Buffer
		if err := WriteSpill(&buf, rank, src, pairs); err != nil {
			return false
		}
		h, got, err := ReadSpill(&buf)
		if err != nil || h.SourceCount != src || len(got) != n {
			return false
		}
		for i := range pairs {
			a, b := pairs[i], got[i]
			if !a.Key.Equal(b.Key) || a.Value.Count != b.Value.Count ||
				a.Value.Sum != b.Value.Sum || len(a.Value.Samples) != len(b.Value.Samples) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
