package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sidr/internal/coords"
)

// This file implements the on-disk representation of intermediate data:
// the Map output "spill" files Reduce tasks fetch during the shuffle.
// Each file carries a header with the SIDR kv-count annotation — §3.2.1:
// "the addition of a field to the header for each Map output file that
// indicates how many ⟨k,v⟩ are represented by the set of all ⟨k',v'⟩ in
// that file" — so a Reduce task can tally its inputs without parsing
// pair bodies.
//
// Layout (little-endian):
//
//	magic "SPIL" | u16 version | u32 rank | i64 sourceCount | u32 nPairs
//	nPairs × ( rank × i64 key | f64 sum | f64 sumsq | f64 min | f64 max
//	           | i64 count | u32 nSamples | nSamples × f64 )

var spillMagic = [4]byte{'S', 'P', 'I', 'L'}

const spillVersion uint16 = 1

// Errors reported by the codec.
var (
	ErrBadSpillMagic   = errors.New("kv: bad spill magic")
	ErrBadSpillVersion = errors.New("kv: unsupported spill version")
)

// SpillHeader is the metadata of one Map output partition file.
type SpillHeader struct {
	// Rank is the dimensionality of the intermediate keys.
	Rank int
	// SourceCount is the number of source ⟨k,v⟩ pairs the file's
	// contents represent — the SIDR annotation.
	SourceCount int64
	// Pairs is the number of ⟨k',v'⟩ records in the file.
	Pairs int
}

// WriteSpill serialises sorted pairs with their source-count annotation.
func WriteSpill(w io.Writer, rank int, sourceCount int64, pairs []Pair) error {
	if rank <= 0 || rank > coords.MaxRank {
		return fmt.Errorf("kv: invalid spill rank %d", rank)
	}
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var b8 [8]byte
	put64 := func(v uint64) error {
		le.PutUint64(b8[:], v)
		_, err := bw.Write(b8[:])
		return err
	}
	putF := func(v float64) error { return put64(math.Float64bits(v)) }
	put32 := func(v uint32) error {
		var b [4]byte
		le.PutUint32(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}

	if _, err := bw.Write(spillMagic[:]); err != nil {
		return err
	}
	var b2 [2]byte
	le.PutUint16(b2[:], spillVersion)
	if _, err := bw.Write(b2[:]); err != nil {
		return err
	}
	if err := put32(uint32(rank)); err != nil {
		return err
	}
	if err := put64(uint64(sourceCount)); err != nil {
		return err
	}
	if err := put32(uint32(len(pairs))); err != nil {
		return err
	}
	for _, p := range pairs {
		if p.Key.Rank() != rank {
			return fmt.Errorf("kv: pair key %v rank != %d", p.Key, rank)
		}
		for _, x := range p.Key {
			if err := put64(uint64(x)); err != nil {
				return err
			}
		}
		v := p.Value
		for _, f := range []float64{v.Sum, v.SumSq, v.Min, v.Max} {
			if err := putF(f); err != nil {
				return err
			}
		}
		if err := put64(uint64(v.Count)); err != nil {
			return err
		}
		if err := put32(uint32(len(v.Samples))); err != nil {
			return err
		}
		for _, s := range v.Samples {
			if err := putF(s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSpillHeader reads only the header — how a Reduce task learns the
// annotation tally "without having to read and parse those files"
// (§3.2.1).
func ReadSpillHeader(r io.Reader) (SpillHeader, error) {
	br := bufio.NewReaderSize(r, 64)
	return readSpillHeader(br)
}

func readSpillHeader(br *bufio.Reader) (SpillHeader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return SpillHeader{}, err
	}
	if magic != spillMagic {
		return SpillHeader{}, ErrBadSpillMagic
	}
	le := binary.LittleEndian
	var b2 [2]byte
	if _, err := io.ReadFull(br, b2[:]); err != nil {
		return SpillHeader{}, err
	}
	if le.Uint16(b2[:]) != spillVersion {
		return SpillHeader{}, ErrBadSpillVersion
	}
	var b4 [4]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return SpillHeader{}, err
	}
	rank := int(le.Uint32(b4[:]))
	if rank <= 0 || rank > coords.MaxRank {
		return SpillHeader{}, fmt.Errorf("kv: implausible spill rank %d", rank)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(br, b8[:]); err != nil {
		return SpillHeader{}, err
	}
	src := int64(le.Uint64(b8[:]))
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return SpillHeader{}, err
	}
	return SpillHeader{Rank: rank, SourceCount: src, Pairs: int(le.Uint32(b4[:]))}, nil
}

// ReadSpill deserialises a full spill file.
func ReadSpill(r io.Reader) (SpillHeader, []Pair, error) {
	br := bufio.NewReader(r)
	h, err := readSpillHeader(br)
	if err != nil {
		return SpillHeader{}, nil, err
	}
	le := binary.LittleEndian
	var b8 [8]byte
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b8[:]), nil
	}
	getF := func() (float64, error) {
		u, err := get64()
		return math.Float64frombits(u), err
	}
	var b4 [4]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return 0, err
		}
		return le.Uint32(b4[:]), nil
	}

	// Cap preallocation: the header's counts are untrusted input, and a
	// corrupt count must not allocate gigabytes before the truncated
	// stream is noticed. append grows as data actually arrives.
	pairs := make([]Pair, 0, min(h.Pairs, 1024))
	for i := 0; i < h.Pairs; i++ {
		key := make(coords.Coord, h.Rank)
		for d := 0; d < h.Rank; d++ {
			u, err := get64()
			if err != nil {
				return h, nil, fmt.Errorf("kv: truncated spill pair %d: %w", i, err)
			}
			key[d] = int64(u)
		}
		var v Value
		var err error
		if v.Sum, err = getF(); err != nil {
			return h, nil, err
		}
		if v.SumSq, err = getF(); err != nil {
			return h, nil, err
		}
		if v.Min, err = getF(); err != nil {
			return h, nil, err
		}
		if v.Max, err = getF(); err != nil {
			return h, nil, err
		}
		cu, err := get64()
		if err != nil {
			return h, nil, err
		}
		v.Count = int64(cu)
		ns, err := get32()
		if err != nil {
			return h, nil, err
		}
		if ns > 0 {
			v.Samples = make([]float64, 0, min(int(ns), 1024))
			for s := uint32(0); s < ns; s++ {
				f, err := getF()
				if err != nil {
					return h, nil, err
				}
				v.Samples = append(v.Samples, f)
			}
		}
		pairs = append(pairs, Pair{Key: key, Value: v})
	}
	return h, pairs, nil
}
