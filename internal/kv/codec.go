package kv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sidr/internal/coords"
)

// This file implements the on-disk representation of intermediate data:
// the Map output "spill" files Reduce tasks fetch during the shuffle.
// Each file carries a header with the SIDR kv-count annotation — §3.2.1:
// "the addition of a field to the header for each Map output file that
// indicates how many ⟨k,v⟩ are represented by the set of all ⟨k',v'⟩ in
// that file" — so a Reduce task can tally its inputs without parsing
// pair bodies.
//
// Layout (little-endian):
//
//	magic "SPIL" | u16 version | u32 rank | i64 sourceCount | u32 nPairs
//	u32 crc32c(payload)
//	nPairs × ( rank × i64 key | f64 sum | f64 sumsq | f64 min | f64 max
//	           | i64 count | u32 nSamples | nSamples × f64 )
//
// The CRC32C covers only the pair payload, not the header: the
// sourceCount annotation stays independently verifiable by the Reduce
// side's kv-count tally (§3.2.1), while the checksum guards the pair
// bytes that tally cannot see inside.
//
// Version 3 — the block-framed columnar format the clustered shuffle
// writes — lives in codecv3.go. ReadSpill and ReadSpillHeader accept
// both versions.

var spillMagic = [4]byte{'S', 'P', 'I', 'L'}

const spillVersion uint16 = 2

// spillHeaderLen is the fixed byte length of the v2 header:
// magic(4) + version(2) + rank(4) + sourceCount(8) + nPairs(4) + crc(4).
const spillHeaderLen = 26

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the codec.
var (
	ErrBadSpillMagic   = errors.New("kv: bad spill magic")
	ErrBadSpillVersion = errors.New("kv: unsupported spill version")
	// ErrChecksum reports that a spill's pair payload does not match the
	// CRC32C recorded in its header — the bytes were corrupted between
	// the Map task's write and this read.
	ErrChecksum = errors.New("kv: spill payload checksum mismatch")
)

// SpillHeader is the metadata of one Map output partition file.
type SpillHeader struct {
	// Version is the spill format version (2: row-oriented with one
	// whole-payload CRC; 3: block-framed columnar, see codecv3.go).
	Version uint16
	// Rank is the dimensionality of the intermediate keys.
	Rank int
	// SourceCount is the number of source ⟨k,v⟩ pairs the file's
	// contents represent — the SIDR annotation.
	SourceCount int64
	// Pairs is the number of ⟨k',v'⟩ records in the file.
	Pairs int
	// CRC is the CRC32C (Castagnoli) of the pair payload bytes (v2 only;
	// v3 checksums per block).
	CRC uint32
	// Flags holds v3 format flags (V3FlagDeflate).
	Flags uint16
	// Blocks is the v3 block count.
	Blocks int
}

// WriteSpill serialises sorted pairs with their source-count annotation.
// The payload is buffered first because its checksum lives in the
// header, ahead of the bytes it covers.
func WriteSpill(w io.Writer, rank int, sourceCount int64, pairs []Pair) error {
	if rank <= 0 || rank > coords.MaxRank {
		return fmt.Errorf("kv: invalid spill rank %d", rank)
	}
	var payload bytes.Buffer
	if err := writeSpillPayload(&payload, rank, pairs); err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [spillHeaderLen]byte
	copy(hdr[:4], spillMagic[:])
	le.PutUint16(hdr[4:6], spillVersion)
	le.PutUint32(hdr[6:10], uint32(rank))
	le.PutUint64(hdr[10:18], uint64(sourceCount))
	le.PutUint32(hdr[18:22], uint32(len(pairs)))
	le.PutUint32(hdr[22:26], crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

func writeSpillPayload(bw *bytes.Buffer, rank int, pairs []Pair) error {
	le := binary.LittleEndian
	var b8 [8]byte
	put64 := func(v uint64) {
		le.PutUint64(b8[:], v)
		bw.Write(b8[:])
	}
	putF := func(v float64) { put64(math.Float64bits(v)) }
	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	for _, p := range pairs {
		if p.Key.Rank() != rank {
			return fmt.Errorf("kv: pair key %v rank != %d", p.Key, rank)
		}
		for _, x := range p.Key {
			put64(uint64(x))
		}
		v := p.Value
		putF(v.Sum)
		putF(v.SumSq)
		putF(v.Min)
		putF(v.Max)
		put64(uint64(v.Count))
		put32(uint32(len(v.Samples)))
		for _, s := range v.Samples {
			putF(s)
		}
	}
	return nil
}

// ReadSpillHeader reads only the header — how a Reduce task learns the
// annotation tally "without having to read and parse those files"
// (§3.2.1).
func ReadSpillHeader(r io.Reader) (SpillHeader, error) {
	br := bufio.NewReaderSize(r, 64)
	h, _, err := readSpillHeader(br)
	return h, err
}

// readSpillHeader reads the version-dispatching fixed header. Both
// formats share the first 22 bytes (magic, version, rank, sourceCount,
// nPairs); v2 follows with the payload CRC, v3 with flags and the
// block count. rawHdr returns the exact header bytes consumed, which
// the v3 reader folds into its per-block CRC seed.
func readSpillHeader(br *bufio.Reader) (SpillHeader, []byte, error) {
	raw := make([]byte, 0, spillHeaderLenV3)
	take := func(n int) ([]byte, error) {
		off := len(raw)
		raw = raw[:off+n]
		_, err := io.ReadFull(br, raw[off:])
		return raw[off:], err
	}
	if b, err := take(4); err != nil {
		return SpillHeader{}, nil, err
	} else if [4]byte(b) != spillMagic {
		return SpillHeader{}, nil, ErrBadSpillMagic
	}
	le := binary.LittleEndian
	h := SpillHeader{}
	b, err := take(2)
	if err != nil {
		return SpillHeader{}, nil, err
	}
	h.Version = le.Uint16(b)
	if h.Version != spillVersion && h.Version != spillVersionV3 {
		return SpillHeader{}, nil, ErrBadSpillVersion
	}
	if b, err = take(4); err != nil {
		return SpillHeader{}, nil, err
	}
	h.Rank = int(le.Uint32(b))
	if h.Rank <= 0 || h.Rank > coords.MaxRank {
		return SpillHeader{}, nil, fmt.Errorf("kv: implausible spill rank %d", h.Rank)
	}
	if b, err = take(8); err != nil {
		return SpillHeader{}, nil, err
	}
	h.SourceCount = int64(le.Uint64(b))
	if b, err = take(4); err != nil {
		return SpillHeader{}, nil, err
	}
	h.Pairs = int(le.Uint32(b))
	if h.Version == spillVersion {
		if b, err = take(4); err != nil {
			return SpillHeader{}, nil, err
		}
		h.CRC = le.Uint32(b)
		return h, raw, nil
	}
	if b, err = take(2); err != nil {
		return SpillHeader{}, nil, err
	}
	h.Flags = le.Uint16(b)
	if h.Flags&^V3FlagDeflate != 0 {
		// Unknown flag bits would change payload interpretation; and on a
		// blockless (empty) spill no block CRC exists to catch the flip.
		return SpillHeader{}, nil, fmt.Errorf("kv: unknown spill flags %#x: %w", h.Flags, ErrBadSpillVersion)
	}
	if b, err = take(4); err != nil {
		return SpillHeader{}, nil, err
	}
	h.Blocks = int(le.Uint32(b))
	return h, raw, nil
}

// crcReader updates a running CRC32C over exactly the bytes consumed
// through it, so ReadSpill can verify the payload checksum while
// streaming without buffering the file.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	return n, err
}

// ReadSpill deserialises a full spill file of either format, verifying
// the payload checksums (whole-payload for v2, per-block for v3). A
// mismatch returns ErrChecksum — the caller must treat the spill as
// lost, never merge its pairs.
func ReadSpill(r io.Reader) (SpillHeader, []Pair, error) {
	br := bufio.NewReader(r)
	h, rawHdr, err := readSpillHeader(br)
	if err != nil {
		return SpillHeader{}, nil, err
	}
	if h.Version == spillVersionV3 {
		pairs, err := readSpillV3Body(br, h, v3HeaderCRCSeed(rawHdr))
		if err != nil {
			return h, nil, err
		}
		return h, pairs, nil
	}
	cr := &crcReader{r: br}
	le := binary.LittleEndian
	var b8 [8]byte
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(cr, b8[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b8[:]), nil
	}
	getF := func() (float64, error) {
		u, err := get64()
		return math.Float64frombits(u), err
	}
	var b4 [4]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(cr, b4[:]); err != nil {
			return 0, err
		}
		return le.Uint32(b4[:]), nil
	}

	// Cap preallocation: the header's counts are untrusted input, and a
	// corrupt count must not allocate gigabytes before the truncated
	// stream is noticed. append grows as data actually arrives.
	pairs := make([]Pair, 0, min(h.Pairs, 1024))
	for i := 0; i < h.Pairs; i++ {
		key := make(coords.Coord, h.Rank)
		for d := 0; d < h.Rank; d++ {
			u, err := get64()
			if err != nil {
				return h, nil, fmt.Errorf("kv: truncated spill pair %d: %w", i, err)
			}
			key[d] = int64(u)
		}
		var v Value
		var err error
		if v.Sum, err = getF(); err != nil {
			return h, nil, err
		}
		if v.SumSq, err = getF(); err != nil {
			return h, nil, err
		}
		if v.Min, err = getF(); err != nil {
			return h, nil, err
		}
		if v.Max, err = getF(); err != nil {
			return h, nil, err
		}
		cu, err := get64()
		if err != nil {
			return h, nil, err
		}
		v.Count = int64(cu)
		ns, err := get32()
		if err != nil {
			return h, nil, err
		}
		if ns > 0 {
			v.Samples = make([]float64, 0, min(int(ns), 1024))
			for s := uint32(0); s < ns; s++ {
				f, err := getF()
				if err != nil {
					return h, nil, err
				}
				v.Samples = append(v.Samples, f)
			}
		}
		pairs = append(pairs, Pair{Key: key, Value: v})
	}
	if cr.sum != h.CRC {
		return h, nil, fmt.Errorf("kv: spill crc %08x, header says %08x: %w", cr.sum, h.CRC, ErrChecksum)
	}
	return h, pairs, nil
}
