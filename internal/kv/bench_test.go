package kv

import (
	"bytes"
	"math/rand"
	"testing"

	"sidr/internal/coords"
)

// benchStreams builds n sorted streams of m pairs each.
func benchStreams(n, m int) [][]Pair {
	r := rand.New(rand.NewSource(1))
	streams := make([][]Pair, n)
	for s := range streams {
		ps := make([]Pair, m)
		for i := range ps {
			ps[i] = Pair{Key: coords.NewCoord(r.Int63n(1000), r.Int63n(100)), Value: NewValue(r.NormFloat64(), false)}
		}
		SortPairs(ps)
		streams[s] = ps
	}
	return streams
}

func BenchmarkMergeSorted(b *testing.B) {
	streams := benchStreams(16, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := MergeSorted(streams); len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkConcatSortMerge(b *testing.B) {
	// The naive alternative to MergeSorted, for comparison.
	streams := benchStreams(16, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var all []Pair
		for _, s := range streams {
			for _, p := range s {
				all = append(all, Pair{Key: p.Key, Value: p.Value.Clone()})
			}
		}
		SortPairs(all)
		if out := MergePairs(all); len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkSpillWriteRead(b *testing.B) {
	streams := benchStreams(1, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteSpill(&buf, 2, 5000, streams[0]); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadSpill(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
