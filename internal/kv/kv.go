// Package kv defines the intermediate key/value representation flowing
// between Map and Reduce tasks. Keys are coordinates in the intermediate
// keyspace K'; values carry either pre-aggregated state (distributive
// operators), raw samples (holistic operators), or filtered samples.
//
// Every Value carries Count — the number of source ⟨k,v⟩ pairs it
// represents. This is exactly the annotation SIDR's §3.2.1 "approach 2"
// adds to intermediate data so a Reduce task can verify it has received
// all inputs for a key before processing, even after combiners folded an
// unknown number of source pairs together.
package kv

import (
	"fmt"
	"math"
	"sort"

	"sidr/internal/coords"
)

// Value is the intermediate value for one (key, map-task) contribution.
// The zero Value is an empty aggregate ready for Add.
type Value struct {
	// Aggregate state for distributive operators.
	Sum   float64
	SumSq float64
	Min   float64
	Max   float64

	// Count is the number of source ⟨k,v⟩ pairs this value represents
	// (the SIDR correctness annotation). It is maintained by Add and
	// Merge regardless of operator kind.
	Count int64

	// Samples holds raw values for holistic operators and matching
	// values for filters. Nil when the operator runs in aggregate-only
	// mode.
	Samples []float64
}

// NewValue returns a Value seeded with a single observation, keeping the
// raw sample only when keepSample is true.
func NewValue(v float64, keepSample bool) Value {
	val := Value{Sum: v, SumSq: v * v, Min: v, Max: v, Count: 1}
	if keepSample {
		val.Samples = []float64{v}
	}
	return val
}

// Add folds a single observation into the value.
func (v *Value) Add(x float64, keepSample bool) {
	if v.Count == 0 {
		v.Min, v.Max = x, x
	} else {
		if x < v.Min {
			v.Min = x
		}
		if x > v.Max {
			v.Max = x
		}
	}
	v.Sum += x
	v.SumSq += x * x
	v.Count++
	if keepSample {
		v.Samples = append(v.Samples, x)
	}
}

// Merge folds another value into v (the combiner/reducer merge step).
func (v *Value) Merge(o Value) {
	if o.Count == 0 {
		return
	}
	if v.Count == 0 {
		v.Min, v.Max = o.Min, o.Max
	} else {
		if o.Min < v.Min {
			v.Min = o.Min
		}
		if o.Max > v.Max {
			v.Max = o.Max
		}
	}
	v.Sum += o.Sum
	v.SumSq += o.SumSq
	v.Count += o.Count
	if o.Samples != nil {
		v.Samples = append(v.Samples, o.Samples...)
	}
}

// Mean returns the running mean; 0 for an empty value.
func (v *Value) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// StdDev returns the population standard deviation; 0 for fewer than one
// observation.
func (v *Value) StdDev() float64 {
	if v.Count == 0 {
		return 0
	}
	m := v.Mean()
	variance := v.SumSq/float64(v.Count) - m*m
	if variance < 0 {
		variance = 0 // numeric noise
	}
	return math.Sqrt(variance)
}

// SortedSamples returns the samples in ascending order without mutating
// the receiver.
func (v *Value) SortedSamples() []float64 {
	out := append([]float64(nil), v.Samples...)
	sort.Float64s(out)
	return out
}

// Clone returns a deep copy of the value.
func (v Value) Clone() Value {
	out := v
	if v.Samples != nil {
		out.Samples = append([]float64(nil), v.Samples...)
	}
	return out
}

// ApproxBytes estimates the serialised size of the value, used by the
// shuffle accounting and the cluster simulator's data models.
func (v Value) ApproxBytes() int64 {
	return 5*8 + int64(len(v.Samples))*8
}

// Pair is one intermediate ⟨k', v'⟩ record.
type Pair struct {
	Key   coords.Coord
	Value Value
}

// String renders a pair compactly for diagnostics.
func (p Pair) String() string {
	return fmt.Sprintf("<%v: n=%d sum=%g>", p.Key, p.Value.Count, p.Value.Sum)
}

// SortPairs orders pairs by key in row-major order — the sort phase every
// Reduce task applies before merging (§2.3).
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key.Less(ps[j].Key) })
}

// MergePairs collapses sorted pairs with equal keys into one pair per key
// (the Reduce-side merge producing ⟨k', list-of-v'⟩; here the list is
// folded through Value.Merge). ps must already be sorted.
func MergePairs(ps []Pair) []Pair {
	if len(ps) == 0 {
		return nil
	}
	out := make([]Pair, 0, len(ps))
	cur := Pair{Key: ps[0].Key, Value: ps[0].Value.Clone()}
	for _, p := range ps[1:] {
		if p.Key.Equal(cur.Key) {
			cur.Value.Merge(p.Value)
			continue
		}
		out = append(out, cur)
		cur = Pair{Key: p.Key, Value: p.Value.Clone()}
	}
	return append(out, cur)
}

// TotalCount sums the Count annotations of a pair set — the tally a
// Reduce task keeps to know when all source ⟨k,v⟩ pairs have arrived.
func TotalCount(ps []Pair) int64 {
	var n int64
	for _, p := range ps {
		n += p.Value.Count
	}
	return n
}

// MergeSorted performs the Reduce-side k-way merge: each stream is one
// Map task's already-sorted output for this keyblock; the result is the
// fully merged ⟨k', folded-value⟩ list in row-major key order — without
// re-sorting the concatenation. Streams must individually be sorted by
// key (as Map tasks emit them); values of equal keys are folded through
// Value.Merge. Input streams are not modified.
func MergeSorted(streams [][]Pair) []Pair {
	// Heap of stream heads ordered by key, ties by stream index for
	// determinism.
	type head struct {
		stream int
		idx    int
	}
	heads := make([]head, 0, len(streams))
	total := 0
	for s, ps := range streams {
		total += len(ps)
		if len(ps) > 0 {
			heads = append(heads, head{stream: s})
		}
	}
	if total == 0 {
		return nil
	}
	less := func(a, b head) bool {
		c := streams[a.stream][a.idx].Key.Compare(streams[b.stream][b.idx].Key)
		if c != 0 {
			return c < 0
		}
		return a.stream < b.stream
	}
	// Sift-based binary heap over heads.
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heads) && less(heads[l], heads[m]) {
				m = l
			}
			if r < len(heads) && less(heads[r], heads[m]) {
				m = r
			}
			if m == i {
				return
			}
			heads[i], heads[m] = heads[m], heads[i]
			i = m
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		down(i)
	}

	out := make([]Pair, 0, total)
	for len(heads) > 0 {
		h := heads[0]
		p := streams[h.stream][h.idx]
		if n := len(out); n > 0 && out[n-1].Key.Equal(p.Key) {
			out[n-1].Value.Merge(p.Value)
		} else {
			out = append(out, Pair{Key: p.Key, Value: p.Value.Clone()})
		}
		if h.idx+1 < len(streams[h.stream]) {
			heads[0].idx++
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		down(0)
	}
	return out
}
