package kv

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sidr/internal/coords"
)

func TestMergeSortedEmpty(t *testing.T) {
	if got := MergeSorted(nil); got != nil {
		t.Fatalf("MergeSorted(nil) = %v", got)
	}
	if got := MergeSorted([][]Pair{{}, {}}); got != nil {
		t.Fatalf("MergeSorted(empties) = %v", got)
	}
}

func TestMergeSortedSingleStream(t *testing.T) {
	s := []Pair{
		{Key: coords.NewCoord(0), Value: NewValue(1, false)},
		{Key: coords.NewCoord(2), Value: NewValue(2, false)},
	}
	got := MergeSorted([][]Pair{s})
	if len(got) != 2 || !got[1].Key.Equal(coords.NewCoord(2)) {
		t.Fatalf("got %v", got)
	}
	// Must not alias inputs.
	got[0].Value.Add(99, false)
	if s[0].Value.Count != 1 {
		t.Fatal("MergeSorted aliased stream values")
	}
}

func TestMergeSortedInterleavedAndDuplicateKeys(t *testing.T) {
	a := []Pair{
		{Key: coords.NewCoord(0), Value: NewValue(1, false)},
		{Key: coords.NewCoord(4), Value: NewValue(4, false)},
	}
	b := []Pair{
		{Key: coords.NewCoord(0), Value: NewValue(10, false)},
		{Key: coords.NewCoord(2), Value: NewValue(2, false)},
		{Key: coords.NewCoord(4), Value: NewValue(40, false)},
	}
	got := MergeSorted([][]Pair{a, b})
	if len(got) != 3 {
		t.Fatalf("merged to %d keys: %v", len(got), got)
	}
	if got[0].Value.Sum != 11 || got[0].Value.Count != 2 {
		t.Fatalf("key 0 = %+v", got[0].Value)
	}
	if got[1].Value.Sum != 2 {
		t.Fatalf("key 2 = %+v", got[1].Value)
	}
	if got[2].Value.Sum != 44 {
		t.Fatalf("key 4 = %+v", got[2].Value)
	}
}

// TestQuickMergeSortedEqualsSortMerge: the k-way merge agrees with the
// naive concatenate→sort→merge pipeline for random sorted streams.
func TestQuickMergeSortedEqualsSortMerge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nStreams := r.Intn(6)
		streams := make([][]Pair, nStreams)
		var all []Pair
		for s := range streams {
			n := r.Intn(15)
			ps := make([]Pair, 0, n)
			for i := 0; i < n; i++ {
				key := coords.NewCoord(r.Int63n(8), r.Int63n(4))
				v := NewValue(r.NormFloat64(), r.Intn(2) == 0)
				ps = append(ps, Pair{Key: key, Value: v})
			}
			SortPairs(ps)
			streams[s] = ps
			for _, p := range ps {
				all = append(all, Pair{Key: p.Key, Value: p.Value.Clone()})
			}
		}
		got := MergeSorted(streams)
		SortPairs(all)
		want := MergePairs(all)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			// Sum is compared with a tolerance: float addition order
			// differs between the two merge strategies.
			if !got[i].Key.Equal(want[i].Key) ||
				got[i].Value.Count != want[i].Value.Count ||
				abs(got[i].Value.Sum-want[i].Value.Sum) > 1e-9 ||
				got[i].Value.Min != want[i].Value.Min ||
				got[i].Value.Max != want[i].Value.Max ||
				len(got[i].Value.Samples) != len(want[i].Value.Samples) {
				return false
			}
			// Sample multisets must match (merge order may differ).
			a := append([]float64(nil), got[i].Value.Samples...)
			b := append([]float64(nil), want[i].Value.Samples...)
			sort.Float64s(a)
			sort.Float64s(b)
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestQuickMergeSortedOutputSorted: output keys are strictly ascending.
func TestQuickMergeSortedOutputSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		streams := make([][]Pair, 1+r.Intn(4))
		for s := range streams {
			n := 1 + r.Intn(10)
			ps := make([]Pair, 0, n)
			for i := 0; i < n; i++ {
				ps = append(ps, Pair{Key: coords.NewCoord(r.Int63n(6)), Value: NewValue(1, false)})
			}
			SortPairs(ps)
			streams[s] = ps
		}
		got := MergeSorted(streams)
		for i := 1; i < len(got); i++ {
			if !got[i-1].Key.Less(got[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
