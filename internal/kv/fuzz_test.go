package kv

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"sidr/internal/coords"
)

// encodeSpill is a test helper that must never fail for valid inputs.
func encodeSpill(t testing.TB, rank int, sourceCount int64, pairs []Pair) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, rank, sourceCount, pairs); err != nil {
		t.Fatalf("WriteSpill: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadSpill feeds arbitrary bytes to the spill decoder. Two
// properties must hold for every input: the decoder never panics
// (corrupt and truncated spills are rejected with an error), and any
// input it accepts survives an encode→decode→encode round trip as a
// byte-identical fixed point — the codec is the shuffle's wire format,
// so decode must lose nothing WriteSpill can express.
func FuzzReadSpill(f *testing.F) {
	// Well-formed seeds across the codec's shapes: empty, aggregate-only
	// values, sampled values, multiple pairs, special floats.
	f.Add(encodeSpill(f, 1, 0, nil))
	f.Add(encodeSpill(f, 3, 1500, []Pair{
		{Key: coords.NewCoord(0, 1, 2), Value: Value{Sum: 3.5, SumSq: 12.25, Min: 3.5, Max: 3.5, Count: 1}},
		{Key: coords.NewCoord(4, 5, 6), Value: Value{Sum: -1, SumSq: 1, Min: -1, Max: 0, Count: 2}},
	}))
	f.Add(encodeSpill(f, 2, 7, []Pair{
		{Key: coords.NewCoord(9, 9), Value: Value{Count: 3, Samples: []float64{1.5, math.Inf(1), math.NaN()}}},
	}))
	// Corruption seeds: bad magic, bad version, truncated header and body.
	good := encodeSpill(f, 2, 42, []Pair{{Key: coords.NewCoord(1, 2), Value: Value{Sum: 1, Count: 1}}})
	bad := append([]byte(nil), good...)
	copy(bad, "JUNK")
	f.Add(bad)
	badVer := append([]byte(nil), good...)
	badVer[4] = 0xff
	f.Add(badVer)
	f.Add(good[:5])
	f.Add(good[:len(good)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		h, pairs, err := ReadSpill(bytes.NewReader(data))
		if err != nil {
			return // graceful rejection is the required behaviour
		}
		if h.Version != 2 {
			// A mutated input that parses as a v3 spill exercised the
			// decoder for panics; its fixed point is FuzzReadSpillV3's
			// property (re-encoding with WriteSpill would change formats).
			return
		}
		if len(pairs) != h.Pairs {
			t.Fatalf("decoded %d pairs, header says %d", len(pairs), h.Pairs)
		}
		first := encodeSpill(t, h.Rank, h.SourceCount, pairs)
		h2, pairs2, err := ReadSpill(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-decoding accepted spill: %v", err)
		}
		if h2 != h {
			t.Fatalf("header changed across round trip: %+v != %+v", h2, h)
		}
		second := encodeSpill(t, h2.Rank, h2.SourceCount, pairs2)
		if !bytes.Equal(first, second) {
			t.Fatalf("encode→decode→encode is not a fixed point:\n%x\n%x", first, second)
		}
	})
}

// TestReadSpillRejectsBadMagic pins the sentinel error for a foreign
// file handed to the shuffle decoder.
func TestReadSpillRejectsBadMagic(t *testing.T) {
	data := encodeSpill(t, 1, 1, []Pair{{Key: coords.NewCoord(0), Value: Value{Count: 1}}})
	copy(data, "NOPE")
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrBadSpillMagic) {
		t.Fatalf("err = %v, want ErrBadSpillMagic", err)
	}
	if _, err := ReadSpillHeader(bytes.NewReader(data)); !errors.Is(err, ErrBadSpillMagic) {
		t.Fatalf("header err = %v, want ErrBadSpillMagic", err)
	}
}

// TestReadSpillRejectsEveryTruncation: no strict prefix of a valid
// spill may decode successfully — a short read mid-shuffle must surface
// as an error, never as a silently shorter spill.
func TestReadSpillRejectsEveryTruncation(t *testing.T) {
	data := encodeSpill(t, 2, 99, []Pair{
		{Key: coords.NewCoord(1, 2), Value: Value{Sum: 4, SumSq: 16, Min: 4, Max: 4, Count: 1}},
		{Key: coords.NewCoord(3, 4), Value: Value{Count: 2, Samples: []float64{0.5, 0.25}}},
	})
	if _, _, err := ReadSpill(bytes.NewReader(data)); err != nil {
		t.Fatalf("full spill failed to decode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := ReadSpill(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestReadSpillRejectsHugeCounts: implausible header counts must fail
// on the truncated stream without first allocating per-count memory.
func TestReadSpillRejectsHugeCounts(t *testing.T) {
	data := encodeSpill(t, 1, 5, nil)
	// Patch nPairs (u32 at offset 4+2+4+8 = 18) to the u32 maximum.
	for i := 18; i < 22; i++ {
		data[i] = 0xff
	}
	if _, _, err := ReadSpill(bytes.NewReader(data)); err == nil {
		t.Fatal("spill claiming 4 billion pairs decoded without error")
	}
	// And a huge per-pair sample count.
	pair := encodeSpill(t, 1, 1, []Pair{{Key: coords.NewCoord(7), Value: Value{Count: 1}}})
	// nSamples is the final u32 of the single trailing pair.
	for i := len(pair) - 4; i < len(pair); i++ {
		pair[i] = 0xff
	}
	if _, _, err := ReadSpill(bytes.NewReader(pair)); err == nil {
		t.Fatal("pair claiming 4 billion samples decoded without error")
	}
}

// TestReadSpillDetectsBitFlip: flipping any single bit of the pair
// payload must surface as ErrChecksum, and flipping the annotation
// fields in the header must NOT — the kv-count gate owns those bytes,
// and a checksum that covered them would mask count tampering as a
// generic corruption error.
func TestReadSpillDetectsBitFlip(t *testing.T) {
	data := encodeSpill(t, 2, 42, []Pair{
		{Key: coords.NewCoord(1, 2), Value: Value{Sum: 4, SumSq: 16, Min: 4, Max: 4, Count: 1}},
		{Key: coords.NewCoord(3, 4), Value: Value{Count: 2, Samples: []float64{0.5, 0.25}}},
	})
	const headerLen = 26
	for i := headerLen; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), data...)
			flipped[i] ^= 1 << bit
			_, _, err := ReadSpill(bytes.NewReader(flipped))
			if err == nil {
				t.Fatalf("payload flip at byte %d bit %d decoded without error", i, bit)
			}
		}
	}
	// Header tamper: sourceCount (bytes 10..18) is outside the CRC.
	patched := append([]byte(nil), data...)
	patched[10] ^= 0x01
	h, _, err := ReadSpill(bytes.NewReader(patched))
	if err != nil {
		t.Fatalf("sourceCount tamper tripped the payload checksum: %v", err)
	}
	if h.SourceCount == 42 {
		t.Fatal("tamper did not change the annotation")
	}
}

// TestReadSpillChecksumSentinel pins the sentinel error for a clean
// payload corruption (valid structure, wrong bytes).
func TestReadSpillChecksumSentinel(t *testing.T) {
	data := encodeSpill(t, 1, 1, []Pair{{Key: coords.NewCoord(9), Value: Value{Sum: 2, Count: 1}}})
	// Flip one bit inside the key — the structure still parses, so the
	// failure must come from the checksum, not a truncation.
	data[26] ^= 0x80
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestReadSpillHeaderStopsAtHeader: ReadSpillHeader must work on a
// stream that carries only the header bytes (§3.2.1's point is reading
// the annotation without parsing pair bodies).
func TestReadSpillHeaderStopsAtHeader(t *testing.T) {
	data := encodeSpill(t, 3, 12345, []Pair{{Key: coords.NewCoord(1, 2, 3), Value: Value{Count: 5}}})
	const headerLen = 4 + 2 + 4 + 8 + 4 + 4 // ...crc32c
	h, err := ReadSpillHeader(io.LimitReader(bytes.NewReader(data), headerLen))
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank != 3 || h.SourceCount != 12345 || h.Pairs != 1 {
		t.Fatalf("header = %+v", h)
	}
}
