package kv

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"sidr/internal/coords"
)

// encodeSpillV3 is a test helper that must never fail for valid inputs.
func encodeSpillV3(t testing.TB, rank int, sourceCount int64, pairs []Pair, opts V3Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSpillV3(&buf, rank, sourceCount, pairs, opts); err != nil {
		t.Fatalf("WriteSpillV3: %v", err)
	}
	return buf.Bytes()
}

// v3TestPairs builds a deterministic multi-block workload covering the
// codec's shapes: aggregate-only values, sampled values, special floats.
func v3TestPairs(n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		v := Value{Sum: float64(i) * 1.5, SumSq: float64(i * i), Min: -float64(i), Max: float64(i), Count: int64(i + 1)}
		if i%3 == 0 {
			v.Samples = []float64{float64(i) / 7, math.Inf(1)}
		}
		if i%11 == 0 {
			v.Max = math.NaN()
		}
		pairs[i] = Pair{Key: coords.NewCoord(int64(i), int64(i*2), -int64(i)), Value: v}
	}
	return pairs
}

// pairsEqual compares pairs through their serialised v2 bytes, which
// makes NaN-carrying values comparable.
func pairsEqual(t *testing.T, rank int, a, b []Pair) bool {
	t.Helper()
	return bytes.Equal(encodeSpill(t, rank, 0, a), encodeSpill(t, rank, 0, b))
}

// TestSpillV3RoundTrip: every framing (single block, multi block,
// remainder block, empty, compressed) decodes back to the written
// pairs with the header intact.
func TestSpillV3RoundTrip(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opts V3Options
	}{
		{name: "empty", n: 0, opts: V3Options{}},
		{name: "single-block", n: 10, opts: V3Options{}},
		{name: "multi-block", n: 100, opts: V3Options{BlockPairs: 16}},
		{name: "exact-blocks", n: 64, opts: V3Options{BlockPairs: 16}},
		{name: "compressed", n: 100, opts: V3Options{BlockPairs: 16, Compress: true}},
		{name: "compressed-single", n: 5, opts: V3Options{Compress: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pairs := v3TestPairs(tc.n)
			data := encodeSpillV3(t, 3, int64(tc.n)*10+7, pairs, tc.opts)
			h, got, err := ReadSpill(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadSpill: %v", err)
			}
			if h.Version != 3 || h.Rank != 3 || h.SourceCount != int64(tc.n)*10+7 || h.Pairs != tc.n {
				t.Fatalf("header = %+v", h)
			}
			if tc.opts.Compress != (h.Flags&V3FlagDeflate != 0) {
				t.Fatalf("compress flag = %x, opts = %+v", h.Flags, tc.opts)
			}
			if !pairsEqual(t, 3, pairs, got) {
				t.Fatal("decoded pairs differ from written pairs")
			}
		})
	}
}

// TestSpillV3CrossReadMatchesV2: the same pairs written as v2 and v3
// decode to identical contents — the Reduce-side merge cannot tell the
// formats apart, so mixed-version shuffles stay byte-identical.
func TestSpillV3CrossReadMatchesV2(t *testing.T) {
	pairs := v3TestPairs(77)
	v2 := encodeSpill(t, 3, 1234, pairs)
	v3 := encodeSpillV3(t, 3, 1234, pairs, V3Options{BlockPairs: 13, Compress: true})

	h2, got2, err := ReadSpill(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	h3, got3, err := ReadSpill(bytes.NewReader(v3))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Rank != h3.Rank || h2.SourceCount != h3.SourceCount || h2.Pairs != h3.Pairs {
		t.Fatalf("headers disagree: v2 %+v, v3 %+v", h2, h3)
	}
	if !pairsEqual(t, 3, got2, got3) {
		t.Fatal("v2 and v3 decode to different pairs")
	}
	// The annotation shares v2's byte offset, so header-only readers and
	// the kv-count tamper harnesses work on both formats.
	if h, err := ReadSpillHeader(io.LimitReader(bytes.NewReader(v3), spillHeaderLenV3)); err != nil {
		t.Fatalf("v3 header-only read: %v", err)
	} else if h.SourceCount != 1234 || h.Blocks == 0 {
		t.Fatalf("v3 header = %+v", h)
	}
}

// TestSpillV3DetectsBitFlip: flipping any single bit outside the
// sourceCount annotation must be rejected — payload flips by the block
// CRC, header flips by the CRC seed or structural validation. The
// annotation bytes (10..18) stay deliberately unprotected: the §3.2.1
// kv-count gate verifies them independently.
func TestSpillV3DetectsBitFlip(t *testing.T) {
	for _, opts := range []V3Options{{BlockPairs: 4}, {BlockPairs: 4, Compress: true}} {
		data := encodeSpillV3(t, 2, 42, []Pair{
			{Key: coords.NewCoord(1, 2), Value: Value{Sum: 4, SumSq: 16, Min: 4, Max: 4, Count: 1}},
			{Key: coords.NewCoord(3, 4), Value: Value{Count: 2, Samples: []float64{0.5, 0.25}}},
			{Key: coords.NewCoord(5, 6), Value: Value{Sum: -1, Count: 3}},
			{Key: coords.NewCoord(7, 8), Value: Value{Sum: 9, Count: 4}},
			{Key: coords.NewCoord(9, 10), Value: Value{Sum: 1, Count: 5}},
		}, opts)
		for i := 0; i < len(data); i++ {
			if i >= 10 && i < 18 {
				continue // the annotation is the kv-count gate's to verify
			}
			for bit := 0; bit < 8; bit++ {
				flipped := append([]byte(nil), data...)
				flipped[i] ^= 1 << bit
				if _, _, err := ReadSpill(bytes.NewReader(flipped)); err == nil {
					t.Fatalf("flip at byte %d bit %d (compress=%v) decoded without error",
						i, bit, opts.Compress)
				}
			}
		}
		// Annotation tamper must NOT trip a checksum.
		patched := append([]byte(nil), data...)
		patched[10] ^= 0x01
		h, _, err := ReadSpill(bytes.NewReader(patched))
		if err != nil {
			t.Fatalf("sourceCount tamper tripped a checksum: %v", err)
		}
		if h.SourceCount == 42 {
			t.Fatal("tamper did not change the annotation")
		}
	}
}

// TestSpillV3RejectsEveryTruncation: no strict prefix of a valid v3
// spill may decode successfully.
func TestSpillV3RejectsEveryTruncation(t *testing.T) {
	data := encodeSpillV3(t, 3, 99, v3TestPairs(9), V3Options{BlockPairs: 4})
	for n := 0; n < len(data); n++ {
		if _, _, err := ReadSpill(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestSpillV3RejectsHugeCounts: implausible counts in the file or block
// headers must fail without materialising per-count memory.
func TestSpillV3RejectsHugeCounts(t *testing.T) {
	data := encodeSpillV3(t, 1, 5, nil, V3Options{})
	// nPairs (u32 at 18..22) to the maximum; nBlocks stays 0, so the
	// block/pair cross-check must reject it.
	for i := 18; i < 22; i++ {
		data[i] = 0xff
	}
	if _, _, err := ReadSpill(bytes.NewReader(data)); err == nil {
		t.Fatal("v3 spill claiming 4 billion pairs decoded without error")
	}
	// A block claiming a gigantic encoded length must be rejected by the
	// plausibility cap, not buffered.
	one := encodeSpillV3(t, 1, 1, []Pair{{Key: coords.NewCoord(7), Value: Value{Count: 1}}}, V3Options{})
	// encLen is bytes 8..12 of the block header at spillHeaderLenV3.
	for i := spillHeaderLenV3 + 8; i < spillHeaderLenV3+12; i++ {
		one[i] = 0xff
	}
	if _, _, err := ReadSpill(bytes.NewReader(one)); err == nil {
		t.Fatal("block claiming 4GB encoded payload decoded without error")
	}
}

// TestSpillV3ChecksumSentinel pins ErrChecksum for a clean payload
// corruption, so the cluster's corrupt-spill re-execution path
// classifies v3 damage exactly like v2 damage.
func TestSpillV3ChecksumSentinel(t *testing.T) {
	data := encodeSpillV3(t, 1, 1, []Pair{{Key: coords.NewCoord(9), Value: Value{Sum: 2, Count: 1}}}, V3Options{})
	data[len(data)-1] ^= 0x80 // inside the (only) block's stored payload
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// v3ReencodeOpts derives re-encode options from a decoded header. For
// any accepted input, ceil(pairs/blocks) applied twice is a fixed point
// of the framing (ceil(n/ceil(n/ceil(n/k))) = ceil(n/ceil(n/k))), which
// gives the fuzz target a deterministic byte-level fixed point even for
// crafted inputs with irregular block sizes.
func v3ReencodeOpts(h SpillHeader) V3Options {
	bp := 1
	if h.Blocks > 0 {
		bp = (h.Pairs + h.Blocks - 1) / h.Blocks
	}
	if bp <= 0 {
		bp = 1
	}
	return V3Options{BlockPairs: bp, Compress: h.Flags&V3FlagDeflate != 0}
}

// FuzzReadSpillV3 feeds arbitrary bytes to the version-dispatching
// decoder with v3 seeds. Properties: no panics; any accepted v3 input
// re-encodes to a byte-identical fixed point (after one framing
// normalisation pass); and the re-encoded bytes reject every single-bit
// flip outside the sourceCount annotation — the per-block CRC32C keeps
// PR 5's never-commit-corrupt-bytes guarantee.
func FuzzReadSpillV3(f *testing.F) {
	f.Add(encodeSpillV3(f, 1, 0, nil, V3Options{}))
	f.Add(encodeSpillV3(f, 3, 1500, v3TestPairs(20), V3Options{BlockPairs: 8}))
	f.Add(encodeSpillV3(f, 3, 77, v3TestPairs(20), V3Options{BlockPairs: 8, Compress: true}))
	f.Add(encodeSpillV3(f, 2, 9, []Pair{
		{Key: coords.NewCoord(9, 9), Value: Value{Count: 3, Samples: []float64{1.5, math.Inf(1), math.NaN()}}},
	}, V3Options{}))
	// Corruption seeds: a flipped payload bit, a truncated block.
	bad := encodeSpillV3(f, 3, 9, v3TestPairs(6), V3Options{BlockPairs: 2})
	bad[len(bad)-1] ^= 0x01
	f.Add(bad)
	f.Add(bad[:len(bad)-7])
	// And a v2 seed, so the dispatcher's other arm stays covered.
	f.Add(encodeSpill(f, 3, 42, v3TestPairs(3)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, pairs, err := ReadSpill(bytes.NewReader(data))
		if err != nil {
			return // graceful rejection is the required behaviour
		}
		if h.Version != 3 {
			return // v2 fixed point is FuzzReadSpill's property
		}
		if len(pairs) != h.Pairs {
			t.Fatalf("decoded %d pairs, header says %d", len(pairs), h.Pairs)
		}
		var buf bytes.Buffer
		if err := WriteSpillV3(&buf, h.Rank, h.SourceCount, pairs, v3ReencodeOpts(h)); err != nil {
			t.Fatalf("re-encoding accepted spill: %v", err)
		}
		enc1 := append([]byte(nil), buf.Bytes()...)
		h1, pairs1, err := ReadSpill(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-decoding re-encoded spill: %v", err)
		}
		if h1.Rank != h.Rank || h1.SourceCount != h.SourceCount || h1.Pairs != h.Pairs || h1.Flags != h.Flags {
			t.Fatalf("header fields changed across re-encode: %+v != %+v", h1, h)
		}
		buf.Reset()
		if err := WriteSpillV3(&buf, h1.Rank, h1.SourceCount, pairs1, v3ReencodeOpts(h1)); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1, buf.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\n%x\n%x", enc1, buf.Bytes())
		}
		// Per-block CRC: any single-bit flip outside the annotation must
		// reject. TestSpillV3DetectsBitFlip is exhaustive; here a handful
		// of probe positions per input keeps the per-exec cost low enough
		// that corpus minimisation stays productive on one CPU.
		stride := 1 + len(enc1)/16
		for i := 0; i < len(enc1); i += stride {
			if i >= 10 && i < 18 {
				continue // sourceCount: the kv-count gate's bytes
			}
			flipped := append([]byte(nil), enc1...)
			flipped[i] ^= 0x10
			if _, _, err := ReadSpill(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("bit flip at byte %d of re-encoded spill decoded without error", i)
			}
		}
	})
}
