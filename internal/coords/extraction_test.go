package coords

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewExtractionValidation(t *testing.T) {
	if _, err := NewExtraction(NewShape(2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExtraction(NewShape(0), nil); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := NewExtraction(NewShape(2, 2), NewShape(2)); err == nil {
		t.Fatal("stride rank mismatch accepted")
	}
	if _, err := NewExtraction(NewShape(3), NewShape(2)); err == nil {
		t.Fatal("stride < shape accepted")
	}
	if _, err := NewExtraction(NewShape(2), NewShape(5)); err != nil {
		t.Fatal("valid strided extraction rejected")
	}
}

func TestMapKeyPaperExample(t *testing.T) {
	// SIDR §3 Area 2: extraction shape {7,5,1}; key {157,34,82} in K maps
	// to {22,6,82} in K'.
	e := MustExtraction(NewShape(7, 5, 1), nil)
	kp, ok := e.MapKey(NewCoord(157, 34, 82))
	if !ok {
		t.Fatal("MapKey rejected in-tile key")
	}
	if !kp.Equal(NewCoord(22, 6, 82)) {
		t.Fatalf("MapKey = %v, want {22, 6, 82}", kp)
	}
}

func TestMapKeyDownUpSample(t *testing.T) {
	// Figure 6(b): a {2,2} extraction maps four K points to one K' point.
	e := MustExtraction(NewShape(2, 2), nil)
	want := NewCoord(1, 1)
	for _, k := range []Coord{NewCoord(2, 2), NewCoord(2, 3), NewCoord(3, 2), NewCoord(3, 3)} {
		kp, ok := e.MapKey(k)
		if !ok || !kp.Equal(want) {
			t.Fatalf("MapKey(%v) = %v, %v", k, kp, ok)
		}
	}
}

func TestMapKeyStridedGap(t *testing.T) {
	// Shape 2, stride 5: positions 0-1 belong to tile 0, 2-4 are gap,
	// 5-6 tile 1, ...
	e := MustExtraction(NewShape(2), NewShape(5))
	if kp, ok := e.MapKey(NewCoord(6)); !ok || !kp.Equal(NewCoord(1)) {
		t.Fatalf("MapKey(6) = %v, %v", kp, ok)
	}
	if _, ok := e.MapKey(NewCoord(3)); ok {
		t.Fatal("gap coordinate accepted")
	}
	if _, ok := e.MapKey(NewCoord(-1)); ok {
		t.Fatal("negative coordinate accepted")
	}
	if _, ok := e.MapKey(NewCoord(1, 1)); ok {
		t.Fatal("rank mismatch accepted")
	}
}

func TestTileInverseOfMapKey(t *testing.T) {
	e := MustExtraction(NewShape(3, 2), nil)
	tile, err := e.Tile(NewCoord(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := MustSlab(NewCoord(6, 10), NewShape(3, 2))
	if !tile.Equal(want) {
		t.Fatalf("Tile = %v, want %v", tile, want)
	}
	// Every point of the tile maps back to the same K' key.
	tile.Each(func(k Coord) bool {
		kp, ok := e.MapKey(k)
		if !ok || !kp.Equal(NewCoord(2, 5)) {
			t.Fatalf("MapKey(%v) = %v, %v", k, kp, ok)
		}
		return true
	})
	if _, err := e.Tile(NewCoord(-1, 0)); err == nil {
		t.Fatal("negative key accepted")
	}
}

func TestIntermediateSpacePaperExample(t *testing.T) {
	// §3 Area 3: {365,250,200} input with {7,5,1} extraction, discarding
	// the partial 53rd week, gives K'^T = {52,50,200}.
	e := MustExtraction(NewShape(7, 5, 1), nil)
	got, err := e.IntermediateSpace(NewShape(365, 250, 200), false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(NewShape(52, 50, 200)) {
		t.Fatalf("IntermediateSpace = %v", got)
	}
	kept, err := e.IntermediateSpace(NewShape(365, 250, 200), true)
	if err != nil {
		t.Fatal(err)
	}
	if !kept.Equal(NewShape(53, 50, 200)) {
		t.Fatalf("IntermediateSpace keepPartial = %v", kept)
	}
}

func TestIntermediateSpaceQuery1(t *testing.T) {
	// Query 1: {7200,360,720,50} with ES {2,36,36,10} -> {3600,10,20,5},
	// i.e. 3.6M intermediate keys.
	e := MustExtraction(NewShape(2, 36, 36, 10), nil)
	got, err := e.IntermediateSpace(NewShape(7200, 360, 720, 50), true)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(NewShape(3600, 10, 20, 5)) {
		t.Fatalf("IntermediateSpace = %v", got)
	}
	if got.Size() != 3_600_000 {
		t.Fatalf("K' size = %d", got.Size())
	}
}

func TestTileRangeDense(t *testing.T) {
	e := MustExtraction(NewShape(2, 2), nil)
	// Input slab covering rows 1..4, cols 0..1 touches tiles rows 0..2,
	// col 0.
	in := MustSlab(NewCoord(1, 0), NewShape(4, 2))
	tr, err := e.TileRange(in)
	if err != nil {
		t.Fatal(err)
	}
	want := MustSlab(NewCoord(0, 0), NewShape(3, 1))
	if !tr.Equal(want) {
		t.Fatalf("TileRange = %v, want %v", tr, want)
	}
}

func TestTileRangeExactAlignment(t *testing.T) {
	e := MustExtraction(NewShape(7, 5, 1), nil)
	// One aligned week of the temperature dataset maps to exactly one
	// K' row of tiles.
	in := MustSlab(NewCoord(7, 0, 0), NewShape(7, 250, 200))
	tr, err := e.TileRange(in)
	if err != nil {
		t.Fatal(err)
	}
	want := MustSlab(NewCoord(1, 0, 0), NewShape(1, 50, 200))
	if !tr.Equal(want) {
		t.Fatalf("TileRange = %v, want %v", tr, want)
	}
}

func TestTileRangeStrided(t *testing.T) {
	e := MustExtraction(NewShape(2), NewShape(5))
	// Slab [3,5) covers only the gap of tile 0 and the start of tile 1.
	in := MustSlab(NewCoord(3), NewShape(3)) // points 3,4,5
	tr, err := e.TileRange(in)
	if err != nil {
		t.Fatal(err)
	}
	want := MustSlab(NewCoord(1), NewShape(1))
	if !tr.Equal(want) {
		t.Fatalf("TileRange = %v, want %v", tr, want)
	}
	// A slab entirely inside a gap overlaps no tiles.
	gap := MustSlab(NewCoord(2), NewShape(3)) // points 2,3,4
	if _, err := e.TileRange(gap); err == nil {
		t.Fatal("gap-only slab accepted")
	}
}

func TestSourceRangeInverse(t *testing.T) {
	e := MustExtraction(NewShape(2, 3), nil)
	kp := MustSlab(NewCoord(1, 2), NewShape(2, 2))
	src, err := e.SourceRange(kp)
	if err != nil {
		t.Fatal(err)
	}
	want := MustSlab(NewCoord(2, 6), NewShape(4, 6))
	if !src.Equal(want) {
		t.Fatalf("SourceRange = %v, want %v", src, want)
	}
	// Round trip: the tile range of the source range is the original.
	tr, err := e.TileRange(src)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(kp) {
		t.Fatalf("TileRange(SourceRange) = %v, want %v", tr, kp)
	}
}

func TestExtractionString(t *testing.T) {
	if got := MustExtraction(NewShape(2, 2), nil).String(); got != "es{2, 2}" {
		t.Fatalf("String = %q", got)
	}
	if got := MustExtraction(NewShape(2), NewShape(5)).String(); got != "es{2} stride{5}" {
		t.Fatalf("String = %q", got)
	}
}

// TestQuickMapKeyConsistentWithTileRange verifies the central SIDR
// invariant: for every point k of an input slab that maps to some K' key,
// that key lies within TileRange(slab).
func TestQuickMapKeyConsistentWithTileRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		es := make(Shape, rank)
		var stride Shape
		for i := range es {
			es[i] = 1 + r.Int63n(4)
		}
		if r.Intn(2) == 0 {
			stride = make(Shape, rank)
			for i := range stride {
				stride[i] = es[i] + r.Int63n(3)
			}
		}
		e := MustExtraction(es, stride)
		c := make(Coord, rank)
		s := make(Shape, rank)
		for i := range c {
			c[i] = r.Int63n(8)
			s[i] = 1 + r.Int63n(8)
		}
		in := Slab{Corner: c, Shape: s}
		tr, err := e.TileRange(in)
		if err != nil {
			// Legal only for strided extractions where the slab sits in a
			// gap along some dimension; then no point may map.
			ok := true
			in.Each(func(k Coord) bool {
				if _, mapped := e.MapKey(k); mapped {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		ok := true
		in.Each(func(k Coord) bool {
			kp, mapped := e.MapKey(k)
			if mapped && !tr.Contains(kp) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTileRangeTight verifies every tile in TileRange actually
// overlaps the input slab's data region (no spurious dependencies, which
// would weaken SIDR's early-start guarantee for correctness but hurt the
// benefit; tightness matters for Table 3's connection counts).
func TestQuickTileRangeTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(2)
		es := make(Shape, rank)
		for i := range es {
			es[i] = 1 + r.Int63n(4)
		}
		e := MustExtraction(es, nil)
		c := make(Coord, rank)
		s := make(Shape, rank)
		for i := range c {
			c[i] = r.Int63n(8)
			s[i] = 1 + r.Int63n(8)
		}
		in := Slab{Corner: c, Shape: s}
		tr, err := e.TileRange(in)
		if err != nil {
			return false
		}
		ok := true
		tr.Each(func(kp Coord) bool {
			tile, err := e.Tile(kp)
			if err != nil || !tile.Overlaps(in) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
