package coords

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewCoordCopies(t *testing.T) {
	xs := []int64{1, 2, 3}
	c := NewCoord(xs...)
	xs[0] = 99
	if c[0] != 1 {
		t.Fatalf("NewCoord aliased its input: %v", c)
	}
}

func TestCoordAddSub(t *testing.T) {
	a := NewCoord(1, 2, 3)
	b := NewCoord(10, 20, 30)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(NewCoord(11, 22, 33)) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a) {
		t.Fatalf("Sub = %v, want %v", diff, a)
	}
}

func TestCoordAddRankMismatch(t *testing.T) {
	if _, err := NewCoord(1).Add(NewCoord(1, 2)); err == nil {
		t.Fatal("expected rank mismatch error")
	}
	if _, err := NewCoord(1).Sub(NewCoord(1, 2)); err == nil {
		t.Fatal("expected rank mismatch error")
	}
}

func TestCoordCompare(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{NewCoord(0, 0), NewCoord(0, 0), 0},
		{NewCoord(0, 1), NewCoord(0, 2), -1},
		{NewCoord(1, 0), NewCoord(0, 9), 1},
		{NewCoord(1), NewCoord(1, 0), -1},
		{NewCoord(1, 0), NewCoord(1), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := NewShape(1, 2, 3).Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	if err := NewShape(1, 0, 3).Validate(); err == nil {
		t.Fatal("zero extent accepted")
	}
	if err := NewShape(-1).Validate(); err == nil {
		t.Fatal("negative extent accepted")
	}
	if err := (Shape{}).Validate(); err == nil {
		t.Fatal("empty shape accepted")
	}
	big := make(Shape, MaxRank+1)
	for i := range big {
		big[i] = 1
	}
	if err := big.Validate(); err == nil {
		t.Fatal("over-rank shape accepted")
	}
}

func TestShapeSize(t *testing.T) {
	if got := NewShape(20, 50, 50).Size(); got != 50000 {
		t.Fatalf("Size = %d, want 50000", got)
	}
	if got := (Shape{}).Size(); got != 0 {
		t.Fatalf("empty Size = %d, want 0", got)
	}
}

func TestShapeStrides(t *testing.T) {
	got := NewShape(4, 3, 2).Strides()
	want := []int64{6, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Strides = %v, want %v", got, want)
	}
}

func TestLinearizeDelinearizeRoundTrip(t *testing.T) {
	s := NewShape(3, 4, 5)
	for off := int64(0); off < s.Size(); off++ {
		c, err := s.Delinearize(off)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Linearize(c)
		if err != nil {
			t.Fatal(err)
		}
		if back != off {
			t.Fatalf("round trip %d -> %v -> %d", off, c, back)
		}
	}
}

func TestLinearizeRowMajorOrder(t *testing.T) {
	// Row-major means the last dimension varies fastest.
	s := NewShape(2, 3)
	off, err := s.Linearize(NewCoord(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if off != 3 {
		t.Fatalf("Linearize({1,0}) = %d, want 3", off)
	}
}

func TestLinearizeOutOfBounds(t *testing.T) {
	s := NewShape(2, 2)
	if _, err := s.Linearize(NewCoord(2, 0)); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
	if _, err := s.Linearize(NewCoord(0, -1)); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := s.Linearize(NewCoord(0)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := s.Delinearize(4); err == nil {
		t.Fatal("offset == size accepted")
	}
	if _, err := s.Delinearize(-1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestCeilFloorDiv(t *testing.T) {
	// The paper's example: {365, 250, 200} with extraction {7, 5, 1}
	// keeping partial tiles gives {53, 50, 200}; discarding the 365th day
	// gives {52, 50, 200}.
	ks := NewShape(365, 250, 200)
	es := NewShape(7, 5, 1)
	ceil, err := ks.CeilDiv(es)
	if err != nil {
		t.Fatal(err)
	}
	if !ceil.Equal(NewShape(53, 50, 200)) {
		t.Fatalf("CeilDiv = %v", ceil)
	}
	floor, err := ks.FloorDiv(es)
	if err != nil {
		t.Fatal(err)
	}
	if !floor.Equal(NewShape(52, 50, 200)) {
		t.Fatalf("FloorDiv = %v", floor)
	}
}

func TestCeilDivErrors(t *testing.T) {
	if _, err := NewShape(4).CeilDiv(NewShape(2, 2)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := NewShape(4).CeilDiv(NewShape(0)); err == nil {
		t.Fatal("invalid divisor accepted")
	}
}

func TestParseCoordShape(t *testing.T) {
	c, err := ParseCoord("{100, 0, 0}")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(NewCoord(100, 0, 0)) {
		t.Fatalf("ParseCoord = %v", c)
	}
	s, err := ParseShape("20,50,50")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(NewShape(20, 50, 50)) {
		t.Fatalf("ParseShape = %v", s)
	}
	if _, err := ParseShape("{1, 0}"); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := ParseCoord("{}"); err == nil {
		t.Fatal("empty coord accepted")
	}
	if _, err := ParseCoord("{a,b}"); err == nil {
		t.Fatal("non-numeric coord accepted")
	}
}

func TestStringFormats(t *testing.T) {
	if got := NewCoord(1, 2).String(); got != "{1, 2}" {
		t.Fatalf("Coord.String = %q", got)
	}
	if got := NewShape(3).String(); got != "{3}" {
		t.Fatalf("Shape.String = %q", got)
	}
}

// randomShape produces small random shapes for property tests.
func randomShape(r *rand.Rand, rank int) Shape {
	s := make(Shape, rank)
	for i := range s {
		s[i] = 1 + r.Int63n(7)
	}
	return s
}

func TestQuickLinearizeBijective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomShape(r, 1+r.Intn(4))
		seen := make(map[int64]bool)
		ok := true
		Slab{Corner: make(Coord, s.Rank()), Shape: s}.Each(func(c Coord) bool {
			off, err := s.Linearize(c)
			if err != nil || seen[off] || off < 0 || off >= s.Size() {
				ok = false
				return false
			}
			seen[off] = true
			return true
		})
		return ok && int64(len(seen)) == s.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCeilDivBound(t *testing.T) {
	// ceil(a/b)*b >= a and (ceil(a/b)-1)*b < a for all valid shapes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(4)
		a := randomShape(r, rank)
		b := randomShape(r, rank)
		c, err := a.CeilDiv(b)
		if err != nil {
			return false
		}
		for i := range c {
			if c[i]*b[i] < a[i] || (c[i]-1)*b[i] >= a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
