// Package coords provides the n-dimensional coordinate algebra that
// underpins every other subsystem in this repository: logical coordinates
// in a dataset's keyspace K, shapes, slabs (corner+shape regions, the unit
// SciHadoop uses to describe input splits), row-major linearisation, and
// the extraction-shape arithmetic SIDR uses to map the input keyspace K to
// the intermediate keyspace K'.
//
// All types are value-like: operations return new values and never mutate
// their receivers unless the method name says otherwise.
package coords

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxRank is the largest dimensionality supported. Scientific formats in
// practice use small ranks (NetCDF classic caps variables at 1024 but real
// datasets rarely exceed rank 6); a compact bound keeps array copies cheap.
const MaxRank = 16

// Coord is a point in an n-dimensional integer keyspace.
type Coord []int64

// Shape is the extent of a region along each dimension. All entries must
// be positive for a shape to be valid.
type Shape []int64

// ErrRankMismatch is returned when two values of different rank are
// combined.
var ErrRankMismatch = errors.New("coords: rank mismatch")

// ErrInvalidShape is returned when a shape has a non-positive extent.
var ErrInvalidShape = errors.New("coords: shape extents must be positive")

// NewCoord copies xs into a fresh Coord.
func NewCoord(xs ...int64) Coord {
	c := make(Coord, len(xs))
	copy(c, xs)
	return c
}

// NewShape copies xs into a fresh Shape.
func NewShape(xs ...int64) Shape {
	s := make(Shape, len(xs))
	copy(s, xs)
	return s
}

// Rank returns the dimensionality of the coordinate.
func (c Coord) Rank() int { return len(c) }

// Clone returns an independent copy of c.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and d are the same point.
func (c Coord) Equal(d Coord) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Add returns c + d elementwise.
func (c Coord) Add(d Coord) (Coord, error) {
	if len(c) != len(d) {
		return nil, ErrRankMismatch
	}
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] + d[i]
	}
	return out, nil
}

// Sub returns c - d elementwise.
func (c Coord) Sub(d Coord) (Coord, error) {
	if len(c) != len(d) {
		return nil, ErrRankMismatch
	}
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] - d[i]
	}
	return out, nil
}

// Less reports whether c precedes d in row-major (lexicographic) order.
func (c Coord) Less(d Coord) bool {
	n := len(c)
	if len(d) < n {
		n = len(d)
	}
	for i := 0; i < n; i++ {
		if c[i] != d[i] {
			return c[i] < d[i]
		}
	}
	return len(c) < len(d)
}

// Compare returns -1, 0, or +1 as c sorts before, equal to, or after d in
// row-major order. Coordinates of different rank compare by common prefix
// then rank.
func (c Coord) Compare(d Coord) int {
	n := len(c)
	if len(d) < n {
		n = len(d)
	}
	for i := 0; i < n; i++ {
		switch {
		case c[i] < d[i]:
			return -1
		case c[i] > d[i]:
			return 1
		}
	}
	switch {
	case len(c) < len(d):
		return -1
	case len(c) > len(d):
		return 1
	}
	return 0
}

// String renders the coordinate as {a, b, c}.
func (c Coord) String() string { return braceJoin([]int64(c)) }

// Rank returns the dimensionality of the shape.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy of s.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Validate returns ErrInvalidShape unless every extent is positive.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("%w: empty shape", ErrInvalidShape)
	}
	if len(s) > MaxRank {
		return fmt.Errorf("coords: rank %d exceeds MaxRank %d", len(s), MaxRank)
	}
	for i, x := range s {
		if x <= 0 {
			return fmt.Errorf("%w: dim %d has extent %d", ErrInvalidShape, i, x)
		}
	}
	return nil
}

// Size returns the number of points in the shape (the product of extents).
func (s Shape) Size() int64 {
	if len(s) == 0 {
		return 0
	}
	n := int64(1)
	for _, x := range s {
		n *= x
	}
	return n
}

// Equal reports whether s and t have identical extents.
func (s Shape) Equal(t Shape) bool { return Coord(s).Equal(Coord(t)) }

// String renders the shape as {a, b, c}.
func (s Shape) String() string { return braceJoin([]int64(s)) }

// Strides returns the row-major stride of each dimension: the linear
// distance between consecutive points along that dimension.
func (s Shape) Strides() []int64 {
	st := make([]int64, len(s))
	acc := int64(1)
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Contains reports whether c lies within the shape rooted at the origin.
func (s Shape) Contains(c Coord) bool {
	if len(s) != len(c) {
		return false
	}
	for i := range s {
		if c[i] < 0 || c[i] >= s[i] {
			return false
		}
	}
	return true
}

// Linearize converts a coordinate within the shape (origin-rooted) to a
// row-major linear offset. It reports an error when c is out of bounds.
func (s Shape) Linearize(c Coord) (int64, error) {
	if len(s) != len(c) {
		return 0, ErrRankMismatch
	}
	var off int64
	for i := range s {
		if c[i] < 0 || c[i] >= s[i] {
			return 0, fmt.Errorf("coords: coordinate %v outside shape %v", c, s)
		}
		off = off*s[i] + c[i]
	}
	return off, nil
}

// Delinearize converts a row-major linear offset back to a coordinate
// within the shape.
func (s Shape) Delinearize(off int64) (Coord, error) {
	size := s.Size()
	if off < 0 || off >= size {
		return nil, fmt.Errorf("coords: offset %d outside shape %v (size %d)", off, s, size)
	}
	c := make(Coord, len(s))
	for i := len(s) - 1; i >= 0; i-- {
		c[i] = off % s[i]
		off /= s[i]
	}
	return c, nil
}

// CeilDiv returns the shape obtained by dividing each extent of s by the
// corresponding extent of es, rounding up. This is the K -> K' keyspace
// size computation from SIDR §3 (Area 3): the intermediate keyspace for a
// query over keyspace s with extraction shape es.
func (s Shape) CeilDiv(es Shape) (Shape, error) {
	if len(s) != len(es) {
		return nil, ErrRankMismatch
	}
	if err := es.Validate(); err != nil {
		return nil, err
	}
	out := make(Shape, len(s))
	for i := range s {
		out[i] = (s[i] + es[i] - 1) / es[i]
	}
	return out, nil
}

// FloorDiv returns the shape obtained by dividing each extent of s by es,
// rounding down; used when a query discards trailing partial tiles (the
// paper's "throw away the data from the 365-th day" case).
func (s Shape) FloorDiv(es Shape) (Shape, error) {
	if len(s) != len(es) {
		return nil, ErrRankMismatch
	}
	if err := es.Validate(); err != nil {
		return nil, err
	}
	out := make(Shape, len(s))
	for i := range s {
		out[i] = s[i] / es[i]
		if out[i] == 0 {
			out[i] = 1 // a query never has an empty output dimension
		}
	}
	return out, nil
}

// Mul returns s * t elementwise (each extent multiplied).
func (s Shape) Mul(t Shape) (Shape, error) {
	if len(s) != len(t) {
		return nil, ErrRankMismatch
	}
	out := make(Shape, len(s))
	for i := range s {
		out[i] = s[i] * t[i]
	}
	return out, nil
}

// ParseCoord parses "{a, b, c}" or "a,b,c" into a Coord.
func ParseCoord(s string) (Coord, error) {
	xs, err := parseInt64List(s)
	if err != nil {
		return nil, fmt.Errorf("coords: parsing coordinate %q: %w", s, err)
	}
	return Coord(xs), nil
}

// ParseShape parses "{a, b, c}" or "a,b,c" into a Shape and validates it.
func ParseShape(s string) (Shape, error) {
	xs, err := parseInt64List(s)
	if err != nil {
		return nil, fmt.Errorf("coords: parsing shape %q: %w", s, err)
	}
	sh := Shape(xs)
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	return sh, nil
}

func parseInt64List(s string) ([]int64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

func braceJoin(xs []int64) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range xs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatInt(x, 10))
	}
	b.WriteByte('}')
	return b.String()
}
