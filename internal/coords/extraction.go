package coords

import (
	"fmt"
)

// Extraction is the paper's extraction shape (§2.4.2): a tiling of the
// input keyspace K where each tile instance corresponds to one key in the
// intermediate keyspace K'. An optional Stride (≥ Shape elementwise)
// describes strided access — regularly spaced tiles with gaps between
// them; a zero-value Stride means dense tiling (stride == shape).
type Extraction struct {
	Shape  Shape
	Stride Shape // optional; nil means Stride == Shape
}

// NewExtraction validates and builds an extraction shape. stride may be
// nil for dense tiling; when given it must match rank and be >= shape in
// every dimension.
func NewExtraction(shape, stride Shape) (Extraction, error) {
	if err := shape.Validate(); err != nil {
		return Extraction{}, err
	}
	if stride != nil {
		if len(stride) != len(shape) {
			return Extraction{}, ErrRankMismatch
		}
		if err := stride.Validate(); err != nil {
			return Extraction{}, err
		}
		for i := range stride {
			if stride[i] < shape[i] {
				return Extraction{}, fmt.Errorf("coords: stride %v smaller than shape %v in dim %d", stride, shape, i)
			}
		}
	}
	e := Extraction{Shape: shape.Clone()}
	if stride != nil {
		e.Stride = stride.Clone()
	}
	return e, nil
}

// MustExtraction is NewExtraction that panics on error.
func MustExtraction(shape, stride Shape) Extraction {
	e, err := NewExtraction(shape, stride)
	if err != nil {
		panic(err)
	}
	return e
}

// Rank returns the extraction shape's dimensionality.
func (e Extraction) Rank() int { return len(e.Shape) }

// EffectiveStride returns the stride actually used for tiling: the
// explicit stride when present, otherwise the shape itself.
func (e Extraction) EffectiveStride() Shape {
	if e.Stride != nil {
		return e.Stride
	}
	return e.Shape
}

// MapKey maps a key k in the input keyspace K to its key in the
// intermediate keyspace K' (SIDR §3, Area 2): each coordinate is divided
// by the corresponding stride extent. For strided extractions a point may
// fall in the gap between tiles; ok is false in that case.
func (e Extraction) MapKey(k Coord) (kp Coord, ok bool) {
	kp, ok = e.MapKeyInto(k, nil)
	if !ok {
		return nil, false
	}
	return kp, true
}

// MapKeyInto is MapKey writing into buf when it has the capacity (the
// returned coordinate then aliases buf), so per-record loops can map
// keys without allocating.
func (e Extraction) MapKeyInto(k, buf Coord) (kp Coord, ok bool) {
	st := e.EffectiveStride()
	if len(k) != len(st) {
		return nil, false
	}
	if cap(buf) >= len(k) {
		kp = buf[:len(k)]
	} else {
		kp = make(Coord, len(k))
	}
	for i := range k {
		if k[i] < 0 {
			return kp, false
		}
		kp[i] = k[i] / st[i]
		if k[i]%st[i] >= e.Shape[i] {
			return kp, false // in the inter-tile gap of a strided access
		}
	}
	return kp, true
}

// Tile returns the slab in K covered by the tile for intermediate key kp.
func (e Extraction) Tile(kp Coord) (Slab, error) {
	st := e.EffectiveStride()
	if len(kp) != len(st) {
		return Slab{}, ErrRankMismatch
	}
	corner := make(Coord, len(kp))
	for i := range kp {
		if kp[i] < 0 {
			return Slab{}, fmt.Errorf("coords: negative intermediate key %v", kp)
		}
		corner[i] = kp[i] * st[i]
	}
	return Slab{Corner: corner, Shape: e.Shape.Clone()}, nil
}

// IntermediateSpace computes the shape of the intermediate keyspace K'^T
// for a query whose input keyspace (origin-rooted) has shape ks
// (SIDR §3, Area 3). Partial trailing tiles are included (ceil division)
// when keepPartial is true, discarded (floor division) otherwise.
func (e Extraction) IntermediateSpace(ks Shape, keepPartial bool) (Shape, error) {
	st := e.EffectiveStride()
	if len(ks) != len(st) {
		return nil, ErrRankMismatch
	}
	if keepPartial {
		return ks.CeilDiv(st)
	}
	return ks.FloorDiv(st)
}

// TileRange returns the slab of intermediate keys (in K') whose tiles
// overlap the input-space slab in (in K). This is the core of SIDR's
// split→keyblock dependency computation: the set of K' keys an input
// split contributes to is exactly TileRange(split).
//
// For strided extractions a tile overlapping `in` only through its gap is
// still included when the slab's extent covers the tile's data region;
// tiles whose data region lies wholly outside `in` are excluded.
func (e Extraction) TileRange(in Slab) (Slab, error) {
	st := e.EffectiveStride()
	if in.Rank() != len(st) {
		return Slab{}, ErrRankMismatch
	}
	corner := make(Coord, in.Rank())
	shape := make(Shape, in.Rank())
	for i := range corner {
		lo := in.Corner[i]
		hi := in.Corner[i] + in.Shape[i] - 1 // inclusive
		first := lo / st[i]
		if lo%st[i] >= e.Shape[i] {
			// The slab starts inside a gap: the first overlapping tile
			// is the next one.
			first++
		}
		// Tile hi/st always overlaps: its data region starts at or below
		// hi, and the `first` adjustment already excluded tiles whose data
		// region lies entirely below lo.
		last := hi / st[i]
		if last < first {
			return Slab{}, fmt.Errorf("coords: slab %v overlaps no tiles of %v", in, e)
		}
		corner[i] = first
		shape[i] = last - first + 1
	}
	return Slab{Corner: corner, Shape: shape}, nil
}

// SourceRange returns the slab in the input space K whose points map to
// intermediate keys within kpSlab (in K'). It is the inverse of TileRange
// used when a Reduce task re-derives its input dependencies on demand
// (the paper's "store vs re-compute" alternative, §3.2.1).
func (e Extraction) SourceRange(kpSlab Slab) (Slab, error) {
	st := e.EffectiveStride()
	if kpSlab.Rank() != len(st) {
		return Slab{}, ErrRankMismatch
	}
	corner := make(Coord, kpSlab.Rank())
	shape := make(Shape, kpSlab.Rank())
	for i := range corner {
		corner[i] = kpSlab.Corner[i] * st[i]
		// Last tile's data region ends at (corner+shape-1)*st + e.Shape.
		end := (kpSlab.Corner[i]+kpSlab.Shape[i]-1)*st[i] + e.Shape[i]
		shape[i] = end - corner[i]
	}
	return Slab{Corner: corner, Shape: shape}, nil
}

// String renders the extraction shape (with stride when present).
func (e Extraction) String() string {
	if e.Stride == nil {
		return fmt.Sprintf("es%s", e.Shape)
	}
	return fmt.Sprintf("es%s stride%s", e.Shape, e.Stride)
}
