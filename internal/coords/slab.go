package coords

import (
	"fmt"
)

// Slab is a corner+shape region of a keyspace — the unit of work SciHadoop
// uses to describe both input splits and extraction-shape tiles (e.g.
// corner {100,0,0}, shape {20,50,50} is a 50,000-element box rooted at
// {100,0,0}).
type Slab struct {
	Corner Coord
	Shape  Shape
}

// NewSlab builds a slab and validates that corner and shape agree in rank
// and the shape is valid.
func NewSlab(corner Coord, shape Shape) (Slab, error) {
	if len(corner) != len(shape) {
		return Slab{}, ErrRankMismatch
	}
	if err := shape.Validate(); err != nil {
		return Slab{}, err
	}
	return Slab{Corner: corner.Clone(), Shape: shape.Clone()}, nil
}

// MustSlab is NewSlab that panics on error; for tests and package-level
// literals where the inputs are constants.
func MustSlab(corner Coord, shape Shape) Slab {
	s, err := NewSlab(corner, shape)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the slab's dimensionality.
func (s Slab) Rank() int { return len(s.Corner) }

// Size returns the number of points in the slab.
func (s Slab) Size() int64 { return s.Shape.Size() }

// End returns the exclusive upper corner (corner + shape).
func (s Slab) End() Coord {
	out := make(Coord, len(s.Corner))
	for i := range s.Corner {
		out[i] = s.Corner[i] + s.Shape[i]
	}
	return out
}

// Clone returns a deep copy of the slab.
func (s Slab) Clone() Slab {
	return Slab{Corner: s.Corner.Clone(), Shape: s.Shape.Clone()}
}

// Equal reports whether two slabs describe the same region.
func (s Slab) Equal(t Slab) bool {
	return s.Corner.Equal(t.Corner) && s.Shape.Equal(t.Shape)
}

// Contains reports whether the point c lies within the slab.
func (s Slab) Contains(c Coord) bool {
	if len(c) != len(s.Corner) {
		return false
	}
	for i := range c {
		if c[i] < s.Corner[i] || c[i] >= s.Corner[i]+s.Shape[i] {
			return false
		}
	}
	return true
}

// ContainsSlab reports whether t lies entirely within s.
func (s Slab) ContainsSlab(t Slab) bool {
	if s.Rank() != t.Rank() {
		return false
	}
	for i := range s.Corner {
		if t.Corner[i] < s.Corner[i] || t.Corner[i]+t.Shape[i] > s.Corner[i]+s.Shape[i] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of s and t, and whether it is non-empty.
func (s Slab) Intersect(t Slab) (Slab, bool) {
	if s.Rank() != t.Rank() {
		return Slab{}, false
	}
	corner := make(Coord, s.Rank())
	shape := make(Shape, s.Rank())
	for i := range corner {
		lo := max64(s.Corner[i], t.Corner[i])
		hi := min64(s.Corner[i]+s.Shape[i], t.Corner[i]+t.Shape[i])
		if hi <= lo {
			return Slab{}, false
		}
		corner[i] = lo
		shape[i] = hi - lo
	}
	return Slab{Corner: corner, Shape: shape}, true
}

// Overlaps reports whether s and t share at least one point.
func (s Slab) Overlaps(t Slab) bool {
	_, ok := s.Intersect(t)
	return ok
}

// String renders the slab as corner{..} shape{..}.
func (s Slab) String() string {
	return fmt.Sprintf("corner%s shape%s", s.Corner, s.Shape)
}

// Each calls fn for every point in the slab in row-major order. Iteration
// stops early if fn returns false. Every call receives a fresh Coord the
// callback may retain; per-record hot loops that do not retain it should
// use EachReuse.
func (s Slab) Each(fn func(Coord) bool) {
	s.EachReuse(func(c Coord) bool { return fn(c.Clone()) })
}

// EachReuse is Each without the per-point defensive copy: one Coord
// buffer is passed to every call and overwritten in place, so fn must
// neither retain nor mutate it.
func (s Slab) EachReuse(fn func(Coord) bool) {
	if s.Rank() == 0 || s.Size() == 0 {
		return
	}
	cur := s.Corner.Clone()
	end := s.End()
	for {
		if !fn(cur) {
			return
		}
		// Row-major increment with carry.
		i := len(cur) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < end[i] {
				break
			}
			cur[i] = s.Corner[i]
		}
		if i < 0 {
			return
		}
	}
}

// Linearize maps a point inside the slab to its row-major offset relative
// to the slab's corner. It allocates nothing: this sits on the engine's
// per-record path (twice — key linearisation and partition lookup).
func (s Slab) Linearize(c Coord) (int64, error) {
	if len(c) != len(s.Corner) {
		return 0, ErrRankMismatch
	}
	var off int64
	for i := range c {
		rel := c[i] - s.Corner[i]
		if rel < 0 || rel >= s.Shape[i] {
			return 0, fmt.Errorf("coords: coordinate %v outside slab %v", c, s)
		}
		off = off*s.Shape[i] + rel
	}
	return off, nil
}

// Delinearize maps a row-major offset relative to the slab's corner back
// to an absolute coordinate.
func (s Slab) Delinearize(off int64) (Coord, error) {
	rel, err := s.Shape.Delinearize(off)
	if err != nil {
		return nil, err
	}
	return rel.Add(s.Corner)
}

// SplitDim splits the slab into pieces of at most chunk extent along
// dimension dim, preserving row-major ordering of the pieces. It is how
// split generators carve a dataset into contiguous units of work.
func (s Slab) SplitDim(dim int, chunk int64) ([]Slab, error) {
	if dim < 0 || dim >= s.Rank() {
		return nil, fmt.Errorf("coords: split dimension %d out of range for rank %d", dim, s.Rank())
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("coords: split chunk must be positive, got %d", chunk)
	}
	var out []Slab
	for off := int64(0); off < s.Shape[dim]; off += chunk {
		c := s.Corner.Clone()
		c[dim] += off
		sh := s.Shape.Clone()
		sh[dim] = min64(chunk, s.Shape[dim]-off)
		out = append(out, Slab{Corner: c, Shape: sh})
	}
	return out, nil
}

// SplitDimCount splits the slab into exactly n contiguous pieces along
// dimension dim, as evenly as possible: the first (extent mod n) pieces
// get one extra unit. n must not exceed the dimension's extent.
func (s Slab) SplitDimCount(dim, n int) ([]Slab, error) {
	if dim < 0 || dim >= s.Rank() {
		return nil, fmt.Errorf("coords: split dimension %d out of range for rank %d", dim, s.Rank())
	}
	if n <= 0 || int64(n) > s.Shape[dim] {
		return nil, fmt.Errorf("coords: cannot split extent %d into %d pieces", s.Shape[dim], n)
	}
	base := s.Shape[dim] / int64(n)
	rem := s.Shape[dim] % int64(n)
	out := make([]Slab, 0, n)
	off := int64(0)
	for i := 0; i < n; i++ {
		size := base
		if int64(i) < rem {
			size++
		}
		c := s.Corner.Clone()
		c[dim] += off
		sh := s.Shape.Clone()
		sh[dim] = size
		out = append(out, Slab{Corner: c, Shape: sh})
		off += size
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
