package coords

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSlabValidation(t *testing.T) {
	if _, err := NewSlab(NewCoord(0, 0), NewShape(2)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := NewSlab(NewCoord(0), NewShape(0)); err == nil {
		t.Fatal("invalid shape accepted")
	}
	s, err := NewSlab(NewCoord(100, 0, 0), NewShape(20, 50, 50))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 50000 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestSlabEnd(t *testing.T) {
	s := MustSlab(NewCoord(1, 2), NewShape(3, 4))
	if !s.End().Equal(NewCoord(4, 6)) {
		t.Fatalf("End = %v", s.End())
	}
}

func TestSlabContains(t *testing.T) {
	s := MustSlab(NewCoord(10, 10), NewShape(5, 5))
	for _, c := range []Coord{NewCoord(10, 10), NewCoord(14, 14), NewCoord(12, 13)} {
		if !s.Contains(c) {
			t.Errorf("should contain %v", c)
		}
	}
	for _, c := range []Coord{NewCoord(9, 10), NewCoord(15, 10), NewCoord(10, 15), NewCoord(10)} {
		if s.Contains(c) {
			t.Errorf("should not contain %v", c)
		}
	}
}

func TestSlabContainsSlab(t *testing.T) {
	outer := MustSlab(NewCoord(0, 0), NewShape(10, 10))
	inner := MustSlab(NewCoord(2, 3), NewShape(4, 4))
	if !outer.ContainsSlab(inner) {
		t.Fatal("outer should contain inner")
	}
	if inner.ContainsSlab(outer) {
		t.Fatal("inner should not contain outer")
	}
	edge := MustSlab(NewCoord(6, 6), NewShape(4, 4))
	if !outer.ContainsSlab(edge) {
		t.Fatal("edge-flush slab should be contained")
	}
	over := MustSlab(NewCoord(6, 6), NewShape(5, 4))
	if outer.ContainsSlab(over) {
		t.Fatal("overflowing slab should not be contained")
	}
}

func TestSlabIntersect(t *testing.T) {
	a := MustSlab(NewCoord(0, 0), NewShape(4, 4))
	b := MustSlab(NewCoord(2, 2), NewShape(4, 4))
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := MustSlab(NewCoord(2, 2), NewShape(2, 2))
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := MustSlab(NewCoord(4, 0), NewShape(2, 2))
	if _, ok := a.Intersect(c); ok {
		t.Fatal("touching slabs must not intersect")
	}
	if a.Overlaps(c) {
		t.Fatal("Overlaps disagrees with Intersect")
	}
}

func TestSlabEachRowMajor(t *testing.T) {
	s := MustSlab(NewCoord(1, 1), NewShape(2, 2))
	var got []Coord
	s.Each(func(c Coord) bool {
		got = append(got, c)
		return true
	})
	want := []Coord{NewCoord(1, 1), NewCoord(1, 2), NewCoord(2, 1), NewCoord(2, 2)}
	if len(got) != len(want) {
		t.Fatalf("visited %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSlabEachEarlyStop(t *testing.T) {
	s := MustSlab(NewCoord(0), NewShape(100))
	n := 0
	s.Each(func(Coord) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d points, want 5", n)
	}
}

func TestSlabLinearizeRoundTrip(t *testing.T) {
	s := MustSlab(NewCoord(5, 7), NewShape(3, 4))
	for off := int64(0); off < s.Size(); off++ {
		c, err := s.Delinearize(off)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Contains(c) {
			t.Fatalf("Delinearize(%d) = %v not inside slab", off, c)
		}
		back, err := s.Linearize(c)
		if err != nil {
			t.Fatal(err)
		}
		if back != off {
			t.Fatalf("round trip %d -> %v -> %d", off, c, back)
		}
	}
}

func TestSlabSplitDim(t *testing.T) {
	s := MustSlab(NewCoord(0, 0), NewShape(10, 4))
	parts, err := s.SplitDim(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	var total int64
	for i, p := range parts {
		total += p.Size()
		if !s.ContainsSlab(p) {
			t.Fatalf("part %d %v escapes parent", i, p)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Fatalf("parts %d and %d overlap", i, j)
			}
		}
	}
	if total != s.Size() {
		t.Fatalf("parts cover %d points, want %d", total, s.Size())
	}
	if !parts[3].Shape.Equal(NewShape(1, 4)) {
		t.Fatalf("last part shape = %v, want {1, 4}", parts[3].Shape)
	}
}

func TestSlabSplitDimErrors(t *testing.T) {
	s := MustSlab(NewCoord(0), NewShape(10))
	if _, err := s.SplitDim(1, 2); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, err := s.SplitDim(0, 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestQuickIntersectCommutativeAndContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		mk := func() Slab {
			c := make(Coord, rank)
			s := make(Shape, rank)
			for i := range c {
				c[i] = r.Int63n(10)
				s[i] = 1 + r.Int63n(10)
			}
			return Slab{Corner: c, Shape: s}
		}
		a, b := mk(), mk()
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return i1.Equal(i2) && a.ContainsSlab(i1) && b.ContainsSlab(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDimPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		c := make(Coord, rank)
		s := make(Shape, rank)
		for i := range c {
			c[i] = r.Int63n(5)
			s[i] = 1 + r.Int63n(12)
		}
		slab := Slab{Corner: c, Shape: s}
		dim := r.Intn(rank)
		chunk := 1 + r.Int63n(6)
		parts, err := slab.SplitDim(dim, chunk)
		if err != nil {
			return false
		}
		var total int64
		for i, p := range parts {
			total += p.Size()
			if !slab.ContainsSlab(p) {
				return false
			}
			for j := i + 1; j < len(parts); j++ {
				if p.Overlaps(parts[j]) {
					return false
				}
			}
		}
		return total == slab.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
