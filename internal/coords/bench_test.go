package coords

import "testing"

func BenchmarkLinearize(b *testing.B) {
	s := NewShape(7200, 360, 720, 50)
	c := NewCoord(3600, 180, 360, 25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Linearize(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapKey(b *testing.B) {
	e := MustExtraction(NewShape(2, 36, 36, 10), nil)
	k := NewCoord(157, 34, 82, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := e.MapKey(k); !ok {
			b.Fatal("unmapped")
		}
	}
}

func BenchmarkTileRange(b *testing.B) {
	e := MustExtraction(NewShape(2, 36, 36, 10), nil)
	in := MustSlab(NewCoord(100, 0, 0, 0), NewShape(3, 360, 720, 50))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.TileRange(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlabEach(b *testing.B) {
	s := MustSlab(NewCoord(0, 0, 0), NewShape(16, 16, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Each(func(Coord) bool {
			n++
			return true
		})
		if n != 4096 {
			b.Fatal("wrong count")
		}
	}
}
