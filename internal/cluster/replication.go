// Elastic membership: the drain state machine and the spill-replica
// pipeline.
//
// Drain moves a worker through draining → drained instead of letting it
// simply vanish: the worker stops receiving dispatches immediately, its
// in-flight attempts finish, and its hosted spills stay fetchable until
// every dependent reduce has taken them or a verified replica exists on
// another worker. Only then is it released — eviction without the death
// penalty, so the worker's health score never learns to fear orderly
// exits.
//
// Replication makes that cheap: after a Map attempt commits its pack,
// the coordinator asks another healthy worker to pull the whole pack
// (one file per attempt, CRC-verified through the kv v3 checksums at
// install time) so a later death or drain of the primary costs a
// replica re-fetch, not a split re-execution.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sidr/internal/kv"
)

// replicaLoc names one worker holding a verified copy of an attempt's
// pack.
type replicaLoc struct {
	worker string
	url    string
}

// drainPoll is how often a drain watcher re-checks hand-off progress.
const drainPoll = 30 * time.Millisecond

// Drain moves a worker into the draining state and starts the watcher
// that completes the hand-off. Idempotent: draining or already-drained
// workers return nil without a second watcher; unknown or dead workers
// are an error.
func (c *Coordinator) Drain(name string) error {
	c.mu.Lock()
	w := c.workers[name]
	if w == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown worker %q", name)
	}
	if w.drained || (w.draining && !w.evicted) {
		c.mu.Unlock()
		return nil
	}
	if w.evicted {
		c.mu.Unlock()
		return fmt.Errorf("cluster: worker %q is not alive", name)
	}
	w.draining = true
	c.drainGaugeLocked()
	c.mu.Unlock()
	c.logf("worker %q draining", name)
	c.releases.Add(1)
	go func() {
		defer c.releases.Done()
		c.drainWatcher(name)
	}()
	return nil
}

// drainWatcher polls until the draining worker has nothing left to
// hand off — no running dispatches and no hosted attempt a reduce
// could still need without a live replica — then releases it. Each
// pass also schedules replica pushes for hosted attempts that lack
// one, so a drain converges even when the normal post-Map push found
// no target (e.g. the replacement worker registered later).
func (c *Coordinator) drainWatcher(name string) {
	t := time.NewTicker(drainPoll)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		c.mu.Lock()
		w := c.workers[name]
		if w == nil || w.evicted || !w.draining {
			// Died (or re-registered afresh) mid-drain; the ordinary
			// death machinery owns recovery now.
			c.drainGaugeLocked()
			c.mu.Unlock()
			return
		}
		busy := w.running > 0
		jobs := make([]*clusterJob, 0, len(c.active))
		for _, j := range c.active {
			jobs = append(jobs, j)
		}
		c.mu.Unlock()

		for _, j := range jobs {
			if !j.handedOff(name) {
				busy = true
			}
		}
		if busy {
			continue
		}

		c.mu.Lock()
		w = c.workers[name]
		if w == nil || w.evicted || !w.draining {
			c.drainGaugeLocked()
			c.mu.Unlock()
			return
		}
		w.evicted = true
		w.drained = true
		c.pruneLocked(time.Now())
		c.mu.Unlock()
		c.logf("worker %q drained and released", name)
		return
	}
}

// handedOff reports whether the job no longer needs worker name: every
// attempt it hosts either has a live replica or feeds only finalized
// keyblocks. Hosted attempts still lacking a replica get pushes
// scheduled as a side effect.
func (j *clusterJob) handedOff(name string) bool {
	j.mu.Lock()
	if j.resolvedLocked() {
		j.mu.Unlock()
		return true
	}
	ok := true
	var wants []int
	for i := range j.maps {
		m := &j.maps[i]
		if !m.done || m.worker != name {
			continue
		}
		if len(m.replicas) > 0 {
			continue
		}
		needed := false
		for _, kb := range j.plan.Graph.SplitToKB[i] {
			if !j.reduceDone[kb] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		ok = false
		if !m.replInFlight {
			wants = append(wants, i)
		}
	}
	j.mu.Unlock()
	for _, i := range wants {
		j.scheduleReplicas(i)
	}
	return ok
}

// scheduleReplicas launches an async replica push for map task i's
// winning attempt if replication is enabled and the attempt has fewer
// verified replicas than configured. Pushes run under the job context
// (they die at resolve) and are tracked by the coordinator's release
// group so Close joins them.
func (j *clusterJob) scheduleReplicas(i int) {
	c := j.c
	if c.cfg.SpillReplicas <= 0 {
		return
	}
	j.mu.Lock()
	m := &j.maps[i]
	if j.resolvedLocked() || !m.done || m.replInFlight || len(m.replicas) >= c.cfg.SpillReplicas {
		j.mu.Unlock()
		return
	}
	m.replInFlight = true
	attempt, srcWorker, srcURL := m.attempt, m.worker, m.url
	exclude := map[string]bool{srcWorker: true}
	for _, r := range m.replicas {
		exclude[r.worker] = true
	}
	j.mu.Unlock()
	c.releases.Add(1)
	go func() {
		defer c.releases.Done()
		j.pushReplica(i, attempt, srcURL, exclude)
	}()
}

// pushReplica asks up to three candidate workers, in turn, to pull and
// install one attempt's pack. Push failures are logged but never feed
// health scores or trigger rearm: replication is a background bet, and
// the per-spill fetch path remains the sole error authority.
func (j *clusterJob) pushReplica(i, attempt int, srcURL string, exclude map[string]bool) {
	c := j.c
	defer func() {
		j.mu.Lock()
		j.maps[i].replInFlight = false
		j.mu.Unlock()
	}()
	for try := 0; try < 3; try++ {
		if j.ctx.Err() != nil {
			return
		}
		name, url := c.pickReplicaTarget(exclude)
		if name == "" {
			return // nowhere to put it; a drain watcher may retry later
		}
		n, err := c.postReplicate(j.ctx, url, ReplicateRequest{
			JobID: j.spec.ID, Split: i, Attempt: attempt, SourceURL: srcURL,
		})
		if err != nil {
			if j.ctx.Err() != nil {
				return
			}
			c.logf("replica push %s/%d attempt %d -> %q failed: %v", j.spec.ID, i, attempt, name, err)
			exclude[name] = true
			continue
		}
		j.mu.Lock()
		m := &j.maps[i]
		current := !j.resolvedLocked() && m.done && m.attempt == attempt
		if current {
			m.replicas = append(m.replicas, replicaLoc{worker: name, url: url})
			j.counters.ReplicaPushes++
			j.counters.ReplicaBytes += n
		}
		j.mu.Unlock()
		if !current {
			// The attempt was superseded while the push ran; the copy is
			// garbage — reclaim it.
			c.releaseAttempt(url, j.spec.ID, i, attempt)
			return
		}
		c.mReplicaPushes.Inc()
		c.mReplicaBytes.Add(n)
		c.logf("replicated %s/%d attempt %d to %q (%d bytes)", j.spec.ID, i, attempt, name, n)
		return
	}
}

// pickReplicaTarget chooses a worker to host a replica: live, not
// draining, not quarantined, not already holding (or producing) the
// pack; least running tasks, then name. Unlike pickWorker it does not
// reserve a running slot — replica installs are background traffic.
func (c *Coordinator) pickReplicaTarget(exclude map[string]bool) (name, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(time.Now())
	var best *workerState
	for _, w := range c.workers {
		if w.evicted || w.draining || w.quarantined || exclude[w.name] {
			continue
		}
		if best == nil || w.running < best.running || (w.running == best.running && w.name < best.name) {
			best = w
		}
	}
	if best == nil {
		return "", ""
	}
	return best.name, best.url
}

// postReplicate performs one /v1/replicate request against the target
// worker, returning the installed pack's byte size.
func (c *Coordinator) postReplicate(ctx context.Context, baseURL string, rr ReplicateRequest) (int64, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/replicate", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("replicate returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var rresp ReplicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rresp); err != nil {
		return 0, err
	}
	return rresp.Bytes, nil
}

// liveWorker reports whether a worker is registered, not evicted and
// within its heartbeat deadline. Draining counts as live: a draining
// worker still serves its spills.
func (c *Coordinator) liveWorker(name string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	return w != nil && !w.evicted && now.Sub(w.lastSeen) <= c.cfg.HeartbeatTimeout
}

// fetchDep fetches one reduce dependency, failing over to replica
// copies when the chosen source cannot serve it. Intermediate
// candidates' failures apply the per-worker penalty here (markDead on
// connection evidence); only the final failure surfaces to runReduce's
// error taxonomy, attributed to the last worker tried via d.worker. A
// checksum failure surfaces immediately — the attempt's bytes are
// poison and re-execution is the only cure.
func (j *clusterJob) fetchDep(d *reduceDep, l int) ([]kv.Pair, int64, int64, error) {
	c := j.c
	cands := make([]replicaLoc, 0, 1+len(d.alts))
	cands = append(cands, replicaLoc{worker: d.worker, url: d.url})
	for _, alt := range d.alts {
		if alt.worker != d.worker {
			cands = append(cands, alt)
		}
	}
	for ci := 0; ci < len(cands); ci++ {
		cand := cands[ci]
		// A candidate already known dead (evicted, heartbeat expired) with
		// a live one behind it: skip the doomed fetch instead of burning
		// the whole retry budget against a closed socket. The first fetch
		// that discovers a death still pays full price — that is how
		// deaths are detected — but every dependency after it rides the
		// markDead verdict.
		if !c.liveWorker(cand.worker) {
			live := false
			for k := ci + 1; k < len(cands); k++ {
				if c.liveWorker(cands[k].worker) {
					live = true
					break
				}
			}
			if live {
				continue
			}
		}
		d.worker, d.url = cand.worker, cand.url
		pairs, src, n, err := j.fetchSpill(cand.url, d.split, d.attempt, l)
		if err == nil {
			return pairs, src, n, nil
		}
		if j.ctx.Err() != nil || errors.Is(err, kv.ErrChecksum) {
			return nil, 0, 0, err
		}
		next := -1
		for k := ci + 1; k < len(cands); k++ {
			if c.liveWorker(cands[k].worker) {
				next = k
				break
			}
		}
		if next < 0 {
			return nil, 0, 0, err
		}
		if isConnError(err) {
			c.markDead(cand.worker)
		}
		c.noteOutcome(cand.worker, true)
		c.logf("reduce %s/kb%d: split %d attempt %d unavailable on %q (%v); trying replica",
			j.spec.ID, l, d.split, d.attempt, cand.worker, err)
		ci = next - 1
	}
	return nil, 0, 0, ErrRetryExhausted // unreachable: first candidate is always tried
}

// noteFallback counts a dependency that was served from a replica
// rather than the worker that produced it.
func (j *clusterJob) noteFallback(d *reduceDep) {
	if d.worker == d.primary {
		return
	}
	j.c.mReplicaFallbks.Inc()
	j.mu.Lock()
	j.counters.ReplicaFetchFallbacks++
	j.mu.Unlock()
	j.c.logf("reduce %s: split %d attempt %d served by replica on %q (primary %q gone)",
		j.spec.ID, d.split, d.attempt, d.worker, d.primary)
}
