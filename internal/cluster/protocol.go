// Package cluster is the multi-process distributed runtime: a
// coordinator (embedded in sidrd, or standalone) that dispatches Map
// tasks over HTTP to worker processes, and workers that execute them,
// materialise partition+ keyblock spills with the internal/kv codec,
// and serve those spills from a shuffle endpoint.
//
// The runtime realises the paper's cluster-scale claims for real,
// across process boundaries:
//
//   - Reduce tasks fetch only their I_ℓ dependency set — point-to-point
//     streamed HTTP fetches, O(Σ|I_ℓ|) total shuffle connections instead
//     of O(maps×reduces) (§3.3, Fig. 6, Table 3).
//   - Every spill carries the §3.2.1 kv-count annotation in its header;
//     a Reduce task tallies the annotations of its fetched spills
//     against the dependency graph's expected count and is not allowed
//     to finalize on a mismatch.
//   - Early results without a global barrier: each Reduce task runs the
//     moment the splits in its I_ℓ are mapped, driven by the same
//     dependency-counter task graph (on internal/exec) the in-process
//     engine uses, with Reduce-class dispatch outranking queued Map
//     dispatch.
//
// Robustness is part of the subsystem: workers heartbeat and are
// evicted on a deadline, fetches retry with exponential backoff plus
// jitter, Map tasks whose spills were lost with a worker are
// re-executed under a fresh attempt ID, and late results from
// superseded attempts are discarded. When a job resolves the
// coordinator broadcasts a release, dropping the workers' cached job
// state and spills; workers also replace cached state whose job ID is
// reused with a different plan/dataset tuple.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sidr/internal/core"
	"sidr/internal/hdfs"
	"sidr/internal/join"
	"sidr/internal/query"
)

// Errors surfaced by the runtime. The daemon maps them onto the
// wire.Error detail vocabulary ("no-workers", "shuffle-retry-exhausted").
var (
	// ErrNoWorkers means the coordinator has no live worker to dispatch
	// to — every registered worker is gone or evicted.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrRetryExhausted means a dispatch or shuffle fetch kept failing
	// after every retry and re-execution budget was spent.
	ErrRetryExhausted = errors.New("cluster: shuffle retry budget exhausted")
	// ErrCountMismatch means a Reduce task's kv-count annotation tally
	// did not equal the dependency graph's expected source count; the
	// task refused to finalize (§3.2.1).
	ErrCountMismatch = errors.New("cluster: kv-count annotation mismatch")
	// ErrStaleAttempt rejects a Map result carrying a superseded attempt
	// ID (the task was re-dispatched while this attempt ran).
	ErrStaleAttempt = errors.New("cluster: stale map attempt")
	// ErrExecutorClosed means the shared executor (or the job's handle)
	// was closed while the job still had tasks to submit — the daemon is
	// shutting down under the job.
	ErrExecutorClosed = errors.New("cluster: executor closed")
	// ErrSpillCorrupt means a Map task's re-execution budget was spent on
	// spills that kept failing their payload checksum — the job refused
	// to commit corrupt pairs and gave up instead.
	ErrSpillCorrupt = errors.New("cluster: spill integrity failure")
)

// DatasetSpec tells a worker how to open the job's dataset by itself.
// Specs must be resolvable on every worker: a file spec names a path
// visible to the worker process; a synthetic spec names one of the
// deterministic internal/datagen generators, which are pure functions
// of (seed, coordinate) and therefore reproduce bit-identically
// anywhere.
type DatasetSpec struct {
	// Kind is "file" or "synthetic".
	Kind string `json:"kind"`
	// Path is the ncfile container path (file datasets).
	Path string `json:"path,omitempty"`
	// Variable is the ncfile variable to read (file datasets).
	Variable string `json:"variable,omitempty"`
	// Generator names a datagen generator for synthetic datasets:
	// "windspeed", "gaussian", "temperature" or "evenkeyed".
	Generator string `json:"generator,omitempty"`
	// Shape is the synthetic dataset's extents.
	Shape []int64 `json:"shape,omitempty"`
	// Seed seeds the generator.
	Seed int64 `json:"seed,omitempty"`
	// Mean and Std parameterise the gaussian generator (Std 0 means 1).
	Mean float64 `json:"mean,omitempty"`
	Std  float64 `json:"std,omitempty"`
	// Skew parameterises the zipf generator's presence exponent (0 means
	// the datagen default).
	Skew float64 `json:"skew,omitempty"`
}

// JobPlan is the plan-defining tuple shipped with every Map task. A
// plan (splits, K'^T, partitioner, keyblocks, I_ℓ) is a pure function
// of this tuple — SIDR's routing is computable before execution (§3) —
// so the worker re-derives exactly the coordinator's plan from these
// few scalars instead of receiving serialized split geometry.
type JobPlan struct {
	Query       string `json:"query"`
	Engine      string `json:"engine"`
	Reducers    int    `json:"reducers"`
	SplitPoints int64  `json:"split_points"`
	MaxSkew     int64  `json:"max_skew,omitempty"`
	// Pruned, when non-nil, restricts the plan to these indices of the
	// unpruned split generation order: the structural-index keep list
	// the submitter computed (see internal/sidx). Workers hold no
	// index, so the kept list rides in the tuple and every party still
	// derives the identical pruned plan from the same few scalars. No
	// omitempty: an empty non-nil list ("every split pruned") must
	// survive the wire distinct from nil ("unpruned").
	Pruned []int `json:"pruned"`
	// Retile carries a join plan's keyblock layout — the one plan input
	// that is NOT a pure function of the tuple (it was sampled from the
	// data at plan time). Workers rebuild routing from it verbatim and
	// never re-sample, so clustered and in-process runs stay
	// byte-identical. Nil for single-input plans.
	Retile *join.Retile `json:"retile,omitempty"`
}

// NewPlan derives the coordinator-identical core.Plan from the tuple.
func (jp JobPlan) NewPlan() (*core.Plan, error) {
	return jp.newPlan(nil, "")
}

// newPlan optionally attaches HDFS block locations (coordinator side).
// Locality hints never change split geometry, so plans with and without
// them are otherwise identical.
func (jp JobPlan) newPlan(ns *hdfs.Namespace, file string) (*core.Plan, error) {
	engine, err := core.ParseEngine(jp.Engine)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(jp.Query)
	if err != nil {
		return nil, err
	}
	if jp.Reducers < 1 {
		return nil, fmt.Errorf("cluster: job plan needs reducers >= 1, got %d", jp.Reducers)
	}
	if jp.SplitPoints <= 0 {
		return nil, fmt.Errorf("cluster: job plan needs explicit split_points, got %d", jp.SplitPoints)
	}
	return core.NewPlan(q, engine, core.Options{
		Reducers:    jp.Reducers,
		SplitPoints: jp.SplitPoints,
		MaxSkew:     jp.MaxSkew,
		Namespace:   ns,
		File:        file,
		KeepSplits:  jp.Pruned,
		Retile:      jp.Retile,
	})
}

// MapRequest asks a worker to execute one Map task attempt.
type MapRequest struct {
	JobID   string      `json:"job_id"`
	Split   int         `json:"split"`
	Attempt int         `json:"attempt"`
	Plan    JobPlan     `json:"plan"`
	Dataset DatasetSpec `json:"dataset"`
	// Dataset2 is the join's side-B dataset; nil for single-input jobs.
	Dataset2 *DatasetSpec `json:"dataset2,omitempty"`
}

// KeyblockMeta summarises one keyblock's share of a completed Map task:
// the spill's pair count, its kv-count annotation, and its serialised
// size. Keyblocks the task produced no data for are omitted.
type KeyblockMeta struct {
	Keyblock    int   `json:"keyblock"`
	Pairs       int   `json:"pairs"`
	SourceCount int64 `json:"source_count"`
	Bytes       int64 `json:"bytes"`
}

// MapResponse reports a completed Map task attempt. The spills named by
// Outputs are fetchable from the worker's shuffle endpoint until the
// job is released.
type MapResponse struct {
	JobID   string         `json:"job_id"`
	Split   int            `json:"split"`
	Attempt int            `json:"attempt"`
	Records int64          `json:"records"`
	Outputs []KeyblockMeta `json:"outputs"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's stable identity; locality hints match against
	// it. Re-registering an evicted name revives it.
	Name string `json:"name"`
	// URL is the base URL the coordinator dials the worker at.
	URL string `json:"url"`
	// Node is the worker's locality identity: the HDFS-namespace node it
	// claims co-location with. Split host lists match against it (and,
	// as a fallback, against Name). Empty means placement-blind.
	Node string `json:"node,omitempty"`
}

// HeartbeatRequest keeps a registered worker alive.
type HeartbeatRequest struct {
	Name string `json:"name"`
}

// HeartbeatResponse is the coordinator's reply to a heartbeat. Draining
// tells the worker the coordinator has put it into the draining state
// (an operator hit POST /v1/drain naming it); the worker should stop
// accepting Map dispatches and begin its own drain flow. A drained and
// released worker gets a 404 instead — that is its signal to exit.
type HeartbeatResponse struct {
	Draining bool `json:"draining,omitempty"`
}

// DrainRequest asks the coordinator to move one worker into the
// draining state: no new dispatches, in-flight attempts finish, spills
// keep being served until every hosted attempt has been fetched or
// replicated away, then the worker is released (deregistered without
// the death penalty — drain never contributes to health scoring).
type DrainRequest struct {
	Name string `json:"name"`
}

// ReplicateRequest asks a worker to pull one committed pack file from
// another worker and install it in its own spill store, so the spills
// inside survive the source worker's death or drain. The target fetches
// PackPath from SourceURL, verifies every keyblock stream's kv v3
// checksums, and only then registers the pack.
type ReplicateRequest struct {
	JobID     string `json:"job_id"`
	Split     int    `json:"split"`
	Attempt   int    `json:"attempt"`
	SourceURL string `json:"source_url"`
}

// ReplicateResponse reports a completed replica install.
type ReplicateResponse struct {
	Bytes int64 `json:"bytes"`
}

// ReleaseRequest asks a worker to drop one job's cached plan/dataset
// state and delete its spills. The coordinator broadcasts it to live
// workers when a job resolves (success or failure). When Split and
// Attempt are both set, the release is scoped to that single attempt's
// spill directory — used to reclaim a cancelled speculative attempt's
// output while the job keeps running.
type ReleaseRequest struct {
	JobID   string `json:"job_id"`
	Split   *int   `json:"split,omitempty"`
	Attempt *int   `json:"attempt,omitempty"`
}

// WorkerInfo is the coordinator's view of one worker, as listed by
// GET /v1/cluster/workers.
type WorkerInfo struct {
	Name      string  `json:"name"`
	URL       string  `json:"url"`
	Node      string  `json:"node,omitempty"`
	Alive     bool    `json:"alive"`
	Running   int     `json:"running"`
	MapsDone  int64   `json:"maps_done"`
	LastSeenS float64 `json:"last_seen_s"` // seconds since last heartbeat
	// FailScore is the EWMA of recent dispatch/fetch/probe failures
	// (0 = healthy, 1 = every recent interaction failed).
	FailScore float64 `json:"fail_score"`
	// Quarantined workers receive no new dispatches (their spills are
	// still served) until health probes decay the score back down.
	Quarantined bool `json:"quarantined,omitempty"`
	// Draining workers finish in-flight work and serve spills but accept
	// no new dispatches; Drained means the drain completed and the
	// worker was released.
	Draining bool `json:"draining,omitempty"`
	Drained  bool `json:"drained,omitempty"`
}

// ShufflePath returns the worker-relative URL of one spill:
// /v1/shuffle/{job}/{split}/{attempt}/{keyblock}.
func ShufflePath(jobID string, split, attempt, keyblock int) string {
	return fmt.Sprintf("/v1/shuffle/%s/%d/%d/%d", jobID, split, attempt, keyblock)
}

// PackPath returns the worker-relative URL of one committed pack file:
// /v1/pack/{job}/{split}/{attempt}. A replica target streams the whole
// pack from here, so replication moves one file per attempt instead of
// one request per keyblock.
func PackPath(jobID string, split, attempt int) string {
	return fmt.Sprintf("/v1/pack/%s/%d/%d", jobID, split, attempt)
}

// BatchShufflePath is the batched shuffle endpoint: one POST fetches a
// Reduce task's entire I_ℓ subset held by that worker, collapsing the
// per-(reduce, split) request fan-out to one request per (reduce,
// worker) pair. The per-spill GET endpoint stays for retries and
// fault-injection targeting.
const BatchShufflePath = "/v1/shuffle/batch"

// SpillRef names one spill inside a batch fetch; the keyblock is shared
// by the whole request.
type SpillRef struct {
	Split   int `json:"split"`
	Attempt int `json:"attempt"`
}

// BatchFetchRequest asks a worker for several spills of one keyblock in
// a single framed response stream. Spills are returned in request
// order — the fetcher depends on it to keep the Reduce merge's stream
// order (and therefore its tie-breaking) identical to per-spill
// fetching.
type BatchFetchRequest struct {
	JobID    string     `json:"job_id"`
	Keyblock int        `json:"keyblock"`
	Spills   []SpillRef `json:"spills"`
}

// The batch response body is a sequence of frames, one per requested
// spill, in request order:
//
//	magic "SFRM" | u32 split | u32 attempt | u32 keyblock | u64 length
//	length bytes: the spill stream exactly as the per-spill endpoint
//	              would serve it (kv codec v2 or v3)
//
// The response carries an exact Content-Length (Σ frames), computed
// from the spill store's directory before the first byte is written, so
// a Reduce-side reader can detect truncation without trailers and the
// transport's response-header timeout never waits on spill encoding.
var frameMagic = [4]byte{'S', 'F', 'R', 'M'}

const frameHeaderLen = 24

// putFrameHeader encodes one frame header into b.
func putFrameHeader(b []byte, split, attempt, keyblock int, length int64) {
	copy(b[:4], frameMagic[:])
	le := binary.LittleEndian
	le.PutUint32(b[4:8], uint32(split))
	le.PutUint32(b[8:12], uint32(attempt))
	le.PutUint32(b[12:16], uint32(keyblock))
	le.PutUint64(b[16:24], uint64(length))
}

// parseFrameHeader decodes one frame header.
func parseFrameHeader(b []byte) (split, attempt, keyblock int, length int64, err error) {
	if [4]byte(b[:4]) != frameMagic {
		return 0, 0, 0, 0, fmt.Errorf("cluster: bad shuffle frame magic %q", b[:4])
	}
	le := binary.LittleEndian
	split = int(le.Uint32(b[4:8]))
	attempt = int(le.Uint32(b[8:12]))
	keyblock = int(le.Uint32(b[12:16]))
	length = int64(le.Uint64(b[16:24]))
	if split < 0 || attempt < 0 || keyblock < 0 || length < 0 {
		return 0, 0, 0, 0, fmt.Errorf("cluster: implausible shuffle frame %d/%d/%d len=%d",
			split, attempt, keyblock, length)
	}
	return split, attempt, keyblock, length, nil
}
