package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/exec"
	"sidr/internal/hdfs"
	"sidr/internal/join"
	"sidr/internal/kv"
	"sidr/internal/metrics"
	"sidr/internal/ops"
	"sidr/internal/sched"
)

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a worker may go without a heartbeat
	// before it is evicted (default 5s).
	HeartbeatTimeout time.Duration
	// FetchRetries is how many times one shuffle fetch is attempted
	// against a spill's hosting worker before the spill is declared lost
	// (default 4).
	FetchRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries (defaults 25ms and 1s); actual sleeps are jittered.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxTaskAttempts bounds how many attempts one Map task may consume
	// across dispatch retries and loss-driven re-executions (default 5).
	MaxTaskAttempts int
	// SpillReplicas is how many additional workers each committed Map
	// attempt's pack file is pushed to, asynchronously, so a worker
	// death or drain costs a replica re-fetch instead of a split
	// re-execution. 0 means the default of 1; negative disables
	// replication.
	SpillReplicas int
	// Metrics receives the sidrd_cluster_* / sidrd_shuffle_* instruments
	// (default: a private registry).
	Metrics *metrics.Registry
	// Client performs dispatch and shuffle requests. When unset, dispatch
	// uses a plain client (a Map response's headers arrive only after the
	// Map finishes executing, so no response-header timeout applies;
	// per-request contexts bound lifetimes) and shuffle fetches use a
	// pooled keep-alive transport sized for reduce fan-in (NewTransport).
	// When set, it is used for both — chaos/fault-injection tests wrap
	// one transport and must intercept every request.
	Client *http.Client
	// DisableBatchFetch turns off the batched shuffle path: every spill
	// is fetched with its own per-spill GET. The batched path is on by
	// default — one POST /v1/shuffle/batch per (reduce, worker) pair —
	// and falls back to per-spill fetches on any batch-level failure, so
	// this knob exists for A/B benchmarking and fault drills, not
	// correctness.
	DisableBatchFetch bool
	// Seed seeds backoff jitter; 0 uses a fixed seed. Jitter only
	// desynchronises retries, so determinism is harmless.
	Seed int64
	// Logf, when set, receives coordinator lifecycle logging.
	Logf func(format string, args ...any)

	// Speculation enables backup attempts for straggling Map dispatches:
	// when a running attempt's age exceeds SpeculationFactor × the median
	// completed attempt duration (and at least SpeculationMin), and an
	// unsatisfied keyblock depends on its split, a backup attempt is
	// launched on a different worker. First completion wins; the loser is
	// cancelled and its spills released. I_ℓ makes this targeted: splits
	// no open keyblock needs are never speculated on.
	Speculation bool
	// SpeculationFactor is the straggler multiple (default 3).
	SpeculationFactor float64
	// SpeculationMin floors the straggler threshold (default 500ms) so
	// tiny jobs don't speculate on scheduling noise.
	SpeculationMin time.Duration
	// SpeculationInterval is the straggler scan period (default 100ms).
	SpeculationInterval time.Duration

	// HealthAlpha is the EWMA weight of the newest dispatch/fetch/probe
	// outcome in a worker's fail score (default 0.3).
	HealthAlpha float64
	// QuarantineThreshold quarantines a worker whose fail score exceeds
	// it (default 0.5); ReinstateThreshold reinstates a quarantined
	// worker whose score decays below it (default 0.25). The gap is the
	// hysteresis that stops a borderline worker from flapping.
	QuarantineThreshold float64
	ReinstateThreshold  float64
}

// Coordinator owns the worker table and drives clustered jobs: it
// dispatches Map task attempts to workers over HTTP, tracks their
// spills, and runs Reduce tasks that fetch exactly their I_ℓ dependency
// set from the workers' shuffle endpoints.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	// shuffleClient performs shuffle fetches (batched and per-spill).
	// Separate from the dispatch client so shuffle gets pooled
	// keep-alive connections and a response-header timeout without
	// imposing either on long-running Map dispatches.
	shuffleClient *http.Client

	// baseCtx bounds background work that outlives any single job —
	// release broadcasts and quarantine probes. Close cancels it and
	// joins the tracked goroutines.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	releases   sync.WaitGroup

	mu      sync.Mutex
	workers map[string]*workerState
	jobSeq  int64
	// active indexes in-flight clustered jobs by ID so drain watchers
	// can find the attempts a draining worker still hosts.
	active map[string]*clusterJob

	rngMu sync.Mutex
	rng   *rand.Rand

	mWorkersAlive   *metrics.Gauge
	mQuarantinedG   *metrics.Gauge
	mDispatched     *metrics.Counter
	mRetried        *metrics.Counter
	mReexecuted     *metrics.Counter
	mShuffleBytes   *metrics.Counter
	mConnections    *metrics.Counter
	mShuffleReqs    *metrics.Counter
	mBatchReqs      *metrics.Counter
	mBatchFallbacks *metrics.Counter
	mShuffleDials   *metrics.Counter
	mFetchSeconds   *metrics.Histogram
	mSpecLaunched   *metrics.Counter
	mSpecWins       *metrics.Counter
	mSpecCancelled  *metrics.Counter
	mSpillsCorrupt  *metrics.Counter
	mQuarantines    *metrics.Counter
	mReinstates     *metrics.Counter
	mDrainingG      *metrics.Gauge
	mReplicaPushes  *metrics.Counter
	mReplicaBytes   *metrics.Counter
	mReplicaFallbks *metrics.Counter
	mDispatchLocal  *metrics.Counter
	mDispatchRemote *metrics.Counter

	// onMapResult is a test hook observing accepted Map results.
	onMapResult func(jobID string, split int, worker string)
}

// workerState is the coordinator's record of one worker. failScore and
// quarantined survive eviction and re-registration on purpose: a worker
// that keeps failing is remembered by name, not by connection.
type workerState struct {
	name        string
	url         string
	node        string // locality identity; split host lists match it
	lastSeen    time.Time
	evicted     bool
	running     int
	mapsDone    int64
	failScore   float64
	quarantined bool
	// draining workers accept no new dispatches but keep serving spills;
	// drain is membership state, never health evidence, so a draining
	// worker's fail score stays untouched. drained marks a drain that
	// completed — the worker was released cleanly, not lost.
	draining bool
	drained  bool
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.FetchRetries <= 0 {
		cfg.FetchRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.MaxTaskAttempts <= 0 {
		cfg.MaxTaskAttempts = 5
	}
	switch {
	case cfg.SpillReplicas == 0:
		cfg.SpillReplicas = 1
	case cfg.SpillReplicas < 0:
		cfg.SpillReplicas = 0
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	userClient := cfg.Client
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.SpeculationFactor <= 0 {
		cfg.SpeculationFactor = 3
	}
	if cfg.SpeculationMin <= 0 {
		cfg.SpeculationMin = 500 * time.Millisecond
	}
	if cfg.SpeculationInterval <= 0 {
		cfg.SpeculationInterval = 100 * time.Millisecond
	}
	if cfg.HealthAlpha <= 0 || cfg.HealthAlpha > 1 {
		cfg.HealthAlpha = 0.3
	}
	if cfg.QuarantineThreshold <= 0 {
		cfg.QuarantineThreshold = 0.5
	}
	if cfg.ReinstateThreshold <= 0 {
		cfg.ReinstateThreshold = 0.25
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		client:     cfg.Client,
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		workers:    make(map[string]*workerState),
		active:     make(map[string]*clusterJob),
		rng:        rand.New(rand.NewSource(cfg.Seed)),

		mWorkersAlive:   cfg.Metrics.Gauge("sidrd_cluster_workers_alive"),
		mQuarantinedG:   cfg.Metrics.Gauge("sidrd_cluster_workers_quarantined"),
		mDispatched:     cfg.Metrics.Counter("sidrd_cluster_tasks_dispatched_total"),
		mRetried:        cfg.Metrics.Counter("sidrd_cluster_tasks_retried_total"),
		mReexecuted:     cfg.Metrics.Counter("sidrd_cluster_reexecuted_total"),
		mShuffleBytes:   cfg.Metrics.Counter("sidrd_shuffle_bytes_total"),
		mConnections:    cfg.Metrics.Counter("sidrd_shuffle_connections_total"),
		mShuffleReqs:    cfg.Metrics.Counter("sidrd_shuffle_requests_total"),
		mBatchReqs:      cfg.Metrics.Counter("sidrd_shuffle_batch_requests_total"),
		mBatchFallbacks: cfg.Metrics.Counter("sidrd_shuffle_batch_fallbacks_total"),
		mShuffleDials:   cfg.Metrics.Counter("sidrd_shuffle_dials_total"),
		mFetchSeconds: cfg.Metrics.Histogram("sidrd_shuffle_fetch_seconds",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		mSpecLaunched:  cfg.Metrics.Counter("sidrd_cluster_speculative_launched_total"),
		mSpecWins:      cfg.Metrics.Counter("sidrd_cluster_speculative_wins_total"),
		mSpecCancelled: cfg.Metrics.Counter("sidrd_cluster_speculative_cancelled_total"),
		mSpillsCorrupt: cfg.Metrics.Counter("sidrd_cluster_spills_corrupt_total"),
		mQuarantines:   cfg.Metrics.Counter("sidrd_cluster_quarantines_total"),
		mReinstates:    cfg.Metrics.Counter("sidrd_cluster_reinstates_total"),

		mDrainingG:      cfg.Metrics.Gauge("sidrd_cluster_workers_draining"),
		mReplicaPushes:  cfg.Metrics.Counter("sidrd_cluster_replica_pushes_total"),
		mReplicaBytes:   cfg.Metrics.Counter("sidrd_cluster_replica_bytes_total"),
		mReplicaFallbks: cfg.Metrics.Counter("sidrd_cluster_replica_fetch_fallbacks_total"),
		mDispatchLocal:  cfg.Metrics.Counter("sidrd_cluster_dispatch_local_total"),
		mDispatchRemote: cfg.Metrics.Counter("sidrd_cluster_dispatch_remote_total"),
	}
	if userClient != nil {
		c.shuffleClient = userClient
	} else {
		c.shuffleClient = &http.Client{Transport: NewTransportWithStats(0, 0, c.mShuffleDials)}
	}
	return c
}

// Close cancels the coordinator's background work — in-flight release
// broadcasts and attempt releases are cut short and their goroutines
// joined — so a shutting-down daemon cannot leak them.
func (c *Coordinator) Close() {
	c.baseCancel()
	c.releases.Wait()
}

// Start runs the eviction reaper until ctx is done, so workers_alive
// drops even while no job is picking workers. Each tick also probes
// quarantined workers so recovery does not depend on a job happening
// to dispatch to them.
func (c *Coordinator) Start(ctx context.Context) {
	t := time.NewTicker(c.cfg.HeartbeatTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			c.mu.Lock()
			c.pruneLocked(now)
			c.mu.Unlock()
			c.probeQuarantined(ctx)
		}
	}
}

// probeQuarantined health-checks every quarantined live worker and
// feeds the result into its fail score: successful probes decay the
// score toward reinstatement, failures keep it quarantined.
func (c *Coordinator) probeQuarantined(ctx context.Context) {
	type target struct{ name, url string }
	c.mu.Lock()
	var ts []target
	for _, w := range c.workers {
		if w.quarantined && !w.evicted {
			ts = append(ts, target{w.name, w.url})
		}
	}
	c.mu.Unlock()
	for _, t := range ts {
		pctx, cancel := context.WithTimeout(ctx, time.Second)
		ok := false
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, t.url+"/healthz", nil)
		if err == nil {
			if resp, err := c.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		cancel()
		c.noteOutcome(t.name, !ok)
	}
}

// noteOutcome feeds one dispatch/fetch/probe outcome into a worker's
// EWMA fail score and applies the quarantine hysteresis. Draining
// workers are exempt: a drain is orderly membership change, and the
// turbulence it causes (refused dispatches, fetches racing the exit)
// must never quarantine the worker or poison its score for a future
// re-registration.
func (c *Coordinator) noteOutcome(name string, failed bool) {
	if name == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil || w.draining {
		return
	}
	x := 0.0
	if failed {
		x = 1.0
	}
	w.failScore = c.cfg.HealthAlpha*x + (1-c.cfg.HealthAlpha)*w.failScore
	switch {
	case !w.quarantined && w.failScore > c.cfg.QuarantineThreshold:
		w.quarantined = true
		c.mQuarantines.Inc()
		c.logf("worker %q quarantined (fail score %.2f)", name, w.failScore)
	case w.quarantined && w.failScore < c.cfg.ReinstateThreshold:
		w.quarantined = false
		c.mReinstates.Inc()
		c.logf("worker %q reinstated (fail score %.2f)", name, w.failScore)
	}
	c.quarantineGaugeLocked()
}

// quarantineGaugeLocked refreshes the quarantined-workers gauge.
// Caller holds c.mu.
func (c *Coordinator) quarantineGaugeLocked() {
	n := int64(0)
	for _, w := range c.workers {
		if w.quarantined && !w.evicted {
			n++
		}
	}
	c.mQuarantinedG.Set(n)
}

// Register adds (or revives) a worker with no locality identity.
func (c *Coordinator) Register(name, url string) error {
	return c.RegisterNode(name, url, "")
}

// RegisterNode adds (or revives) a worker, recording the namespace node
// it claims co-location with. Registration may happen mid-job: the next
// pickWorker sees the new worker immediately. Re-registering a drained
// or evicted name revives it with a clean membership state (health
// score survives by design).
func (c *Coordinator) RegisterNode(name, url, node string) error {
	if name == "" || url == "" {
		return fmt.Errorf("cluster: register needs name and url")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		w = &workerState{name: name}
		c.workers[name] = w
	}
	w.url = strings.TrimSuffix(url, "/")
	if node != "" {
		w.node = node
	}
	w.lastSeen = time.Now()
	w.evicted = false
	w.draining = false
	w.drained = false
	c.pruneLocked(time.Now())
	c.logf("worker %q registered at %s (node %q)", name, w.url, w.node)
	return nil
}

// Heartbeat refreshes a worker's deadline. ok=false means the worker
// should stop heartbeating under this registration: with draining=true
// it was drained and released (exit, don't rejoin), otherwise it is
// unknown and should re-register. draining with ok=true tells the
// worker the coordinator wants it to drain.
func (c *Coordinator) Heartbeat(name string) (ok, draining bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil || w.evicted {
		// A coordinator-initiated drain of an idle worker can complete
		// before the worker's next heartbeat ever carries the draining
		// flag. Answer "drained, exit" — a plain unknown here would make
		// the worker re-register and silently undo the drain.
		if w != nil && w.drained {
			return false, true
		}
		return false, false
	}
	w.lastSeen = time.Now()
	c.pruneLocked(time.Now())
	return true, w.draining
}

// Workers lists the worker table, alive first then by name.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			Name:        w.name,
			URL:         w.url,
			Node:        w.node,
			Alive:       !w.evicted,
			Running:     w.running,
			MapsDone:    w.mapsDone,
			LastSeenS:   now.Sub(w.lastSeen).Seconds(),
			FailScore:   w.failScore,
			Quarantined: w.quarantined,
			Draining:    w.draining,
			Drained:     w.drained,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Alive != out[j].Alive {
			return out[i].Alive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AliveWorkers returns how many workers are currently live.
func (c *Coordinator) AliveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(time.Now())
	n := 0
	for _, w := range c.workers {
		if !w.evicted {
			n++
		}
	}
	return n
}

// pruneLocked applies deadline-based eviction and refreshes the
// workers_alive gauge. Caller holds c.mu.
func (c *Coordinator) pruneLocked(now time.Time) {
	alive := int64(0)
	for _, w := range c.workers {
		if !w.evicted && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			w.evicted = true
			c.logf("worker %q evicted: no heartbeat for %s", w.name, now.Sub(w.lastSeen).Round(time.Millisecond))
		}
		if !w.evicted {
			alive++
		}
	}
	c.mWorkersAlive.Set(alive)
	c.quarantineGaugeLocked()
	c.drainGaugeLocked()
}

// drainGaugeLocked refreshes the draining-workers gauge. Caller holds
// c.mu.
func (c *Coordinator) drainGaugeLocked() {
	n := int64(0)
	for _, w := range c.workers {
		if w.draining && !w.evicted {
			n++
		}
	}
	c.mDrainingG.Set(n)
}

// markDead evicts a worker on direct evidence (connection failure,
// lost spill) without waiting for the heartbeat deadline.
func (c *Coordinator) markDead(name string) {
	if name == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil && !w.evicted {
		w.evicted = true
		c.logf("worker %q marked dead", name)
	}
	c.pruneLocked(time.Now())
}

// pickWorker chooses a live worker for a Map task, preferring the
// split's block-location hosts — node-local beats any remote worker,
// then least running tasks, then name. not lists worker names to avoid
// (prior failed attempts of the same dispatch, or a speculation
// primary's host). Quarantined workers are a last resort before
// excluded ones: healthy∧allowed, then quarantined∧allowed, then any
// live worker. Draining workers are never picked in any tier: drain
// means no new work, full stop. local reports whether the pick matched
// a host hint; the dispatch_{local,remote} metrics advance only for
// splits that carry hints at all.
func (c *Coordinator) pickWorker(hosts []string, not map[string]bool) (name, url string, local bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(time.Now())
	isLocal := func(w *workerState) bool {
		for _, h := range hosts {
			if h == w.node || h == w.name {
				return true
			}
		}
		return false
	}
	pick := func(allow func(*workerState) bool) (*workerState, bool) {
		var best *workerState
		bestLocal := false
		for _, w := range c.workers {
			if w.evicted || w.draining || !allow(w) {
				continue
			}
			local := isLocal(w)
			switch {
			case best == nil,
				local && !bestLocal,
				local == bestLocal && w.running < best.running,
				local == bestLocal && w.running == best.running && w.name < best.name:
				best, bestLocal = w, local
			}
		}
		return best, bestLocal
	}
	best, bestLocal := pick(func(w *workerState) bool { return !w.quarantined && !not[w.name] })
	if best == nil {
		best, bestLocal = pick(func(w *workerState) bool { return !not[w.name] })
	}
	if best == nil {
		best, bestLocal = pick(func(w *workerState) bool { return true })
	}
	if best == nil {
		return "", "", false, ErrNoWorkers
	}
	best.running++
	if len(hosts) > 0 {
		if bestLocal {
			c.mDispatchLocal.Inc()
		} else {
			c.mDispatchRemote.Inc()
		}
	}
	return best.name, best.url, bestLocal, nil
}

// workerURL resolves a worker name to its last-registered base URL.
func (c *Coordinator) workerURL(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil {
		return w.url
	}
	return ""
}

// releaseWorker undoes pickWorker's running increment, crediting done
// maps on success.
func (c *Coordinator) releaseWorker(name string, mapDone bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil {
		w.running--
		if mapDone {
			w.mapsDone++
		}
	}
}

// backoff returns the jittered exponential delay before retry n (0-based):
// base·2ⁿ capped at RetryMax, then uniformly jittered in [d/2, d).
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.RetryBase << uint(n)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	return d/2 + j
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Mount registers the coordinator's HTTP endpoints on mux:
// POST /v1/cluster/register, POST /v1/cluster/heartbeat,
// GET /v1/cluster/workers, POST /v1/drain.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/cluster/register", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.RegisterNode(req.Name, req.URL, req.Node); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		ok, draining := c.Heartbeat(req.Name)
		if !ok {
			if draining {
				http.Error(rw, "drained; exit", http.StatusGone)
			} else {
				http.Error(rw, "unknown worker; re-register", http.StatusNotFound)
			}
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(HeartbeatResponse{Draining: draining})
	})
	mux.HandleFunc("/v1/drain", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req DrainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Drain(req.Name); err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/cluster/workers", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(rw, "GET only", http.StatusMethodNotAllowed)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(struct {
			Workers []WorkerInfo `json:"workers"`
		}{c.Workers()})
	})
}

// JobSpec describes one clustered job.
type JobSpec struct {
	// ID names the job on the wire and in spill paths; empty generates
	// one.
	ID string
	// Plan is the plan-defining tuple workers re-derive the plan from.
	Plan JobPlan
	// Dataset tells workers how to open the input.
	Dataset DatasetSpec
	// Dataset2 is a join's side-B dataset; nil for single-input jobs.
	// The plan tuple must then carry the join query and its Retile.
	Dataset2 *DatasetSpec
	// Namespace and File optionally attach HDFS block locations to
	// splits for locality-aware placement (coordinator side only; split
	// geometry is unaffected, so worker plans stay identical).
	Namespace *hdfs.Namespace
	File      string
	// Exec runs the job's task graph (required). Reduce tasks outrank
	// queued Map dispatch on it, preserving reduce-first scheduling.
	Exec *exec.Executor
	// Workers caps the job's concurrently running tasks (0 = pool bound).
	Workers int
	// Weight is the job's weighted-fair share of the shared executor
	// (default 1): tenant-weighted scheduling carried down to the task
	// dispatch level.
	Weight int
	// OnPartial receives each keyblock's output the moment it commits.
	// Callbacks may arrive concurrently.
	OnPartial func(ReduceResult)
}

// ReduceResult is one finalized keyblock output.
type ReduceResult struct {
	Keyblock int
	Keys     []coords.Coord
	Values   [][]float64
}

// Counters aggregates one job's bookkeeping.
type Counters struct {
	// MapsDispatched counts Map attempt dispatches sent to workers.
	MapsDispatched int64
	// Retried counts dispatches that failed and were re-sent elsewhere.
	Retried int64
	// Reexecuted counts Map tasks re-executed because their spills were
	// lost with a worker.
	Reexecuted int64
	// Connections counts successful shuffle fetches — Σ_ℓ |I_ℓ| on the
	// happy path (Fig. 6 / Table 3). This is the logical per-spill count:
	// a batched fetch carrying n spills counts n connections, keeping the
	// paper's accounting independent of the transport.
	Connections int64
	// ShuffleRequests counts successful shuffle HTTP requests. With
	// batching this is ≤ one per (reduce, worker) pair; without it, it
	// equals Connections.
	ShuffleRequests int64
	// BatchRequests counts successful batched shuffle requests (a subset
	// of ShuffleRequests).
	BatchRequests int64
	// BatchFallbacks counts batched requests abandoned for the per-spill
	// path (validation failure, transport error, missing spill).
	BatchFallbacks int64
	// ShuffleBytes counts spill bytes fetched.
	ShuffleBytes int64
	// Records counts source records read by accepted Map attempts.
	Records int64
	// Speculated counts backup attempts launched for straggling Maps.
	Speculated int64
	// SpeculativeWins counts Map tasks whose backup attempt finished
	// before the straggling primary.
	SpeculativeWins int64
	// CorruptSpills counts shuffle fetches rejected by the spill payload
	// checksum; each one re-executed its source split.
	CorruptSpills int64
	// ReplicaPushes counts pack replicas successfully installed on
	// another worker; ReplicaBytes their byte volume.
	ReplicaPushes int64
	ReplicaBytes  int64
	// ReplicaFetchFallbacks counts reduce dependencies served from a
	// replica because the hosting worker died or drained — each one is a
	// re-execution that didn't happen.
	ReplicaFetchFallbacks int64
	// DispatchLocal and DispatchRemote count Map dispatches of splits
	// that carried block-location hints, split by whether the pick
	// matched one (node-local placement) or fell back to a remote
	// worker.
	DispatchLocal  int64
	DispatchRemote int64
}

// JobResult is a completed clustered job.
type JobResult struct {
	// Outputs holds every keyblock's finalized output, indexed by
	// keyblock.
	Outputs []ReduceResult
	// Plan is the coordinator-side plan the job ran under.
	Plan     *core.Plan
	Counters Counters
}

// clusterJob is the in-flight state of one Run.
type clusterJob struct {
	c      *Coordinator
	spec   JobSpec
	plan   *core.Plan
	ctx    context.Context
	cancel context.CancelFunc
	handle *exec.Handle

	// partials tracks in-flight OnPartial callbacks; done is only closed
	// after it drains, so Run never returns while a callback is running.
	partials sync.WaitGroup
	// specWG tracks the speculation monitor and backup dispatch
	// goroutines, which run outside the executor handle on purpose: a
	// backup submitted through the handle could queue behind the very
	// hung dispatches it exists to overtake. Run joins it before
	// releasing worker state.
	specWG sync.WaitGroup

	mu          sync.Mutex
	maps        []mapTask
	enqueued    []bool // reduce l submitted (or running)
	outputs     []ReduceResult
	reduceDone  []bool
	reducesLeft int
	durations   []time.Duration // completed Map attempt durations (speculation median)
	counters    Counters
	err         error
	done        chan struct{}
}

// mapTask tracks one Map task's current attempt (plus, under
// speculation, one in-flight backup attempt). The zero value is a valid
// fresh task: attempt 0, no backup, IDs allocated lazily.
type mapTask struct {
	attempt    int    // current primary attempt ID
	done       bool   // a winning attempt completed and its spills are hosted
	worker     string // hosting worker name (done only)
	url        string // hosting worker base URL (done only)
	dispatches int    // attempts consumed, for the MaxTaskAttempts bound
	corrupt    int    // checksum-forced re-executions of this task

	// outputs is the winning attempt's per-keyblock spill metadata
	// (size, pair count, kv-count annotation), reported by the worker at
	// Map time. Batched shuffle fetches validate every received frame
	// against it; a spill with no recorded meta is fetched per-spill.
	outputs map[int]KeyblockMeta

	// replicas lists the workers holding a verified copy of the winning
	// attempt's pack, usable as fetch sources interchangeably with the
	// primary. replInFlight dedupes concurrent push scheduling.
	replicas     []replicaLoc
	replInFlight bool

	next        int                        // next attempt ID to allocate (see allocAttempt)
	started     time.Time                  // when the current primary dispatch began running
	dispWorker  string                     // worker the primary dispatch is posted to (in flight)
	hasSpec     bool                       // a backup attempt is in flight
	specAttempt int                        // backup attempt ID (hasSpec only)
	specWorker  string                     // worker the backup is posted to
	cancels     map[int]context.CancelFunc // per-attempt dispatch cancellation
}

// allocAttempt hands out the next unused attempt ID. Lazy so that
// zero-valued mapTasks (attempt 0 implicitly allocated) stay correct.
func (m *mapTask) allocAttempt() int {
	if m.next <= m.attempt {
		m.next = m.attempt + 1
	}
	if m.hasSpec && m.next <= m.specAttempt {
		m.next = m.specAttempt + 1
	}
	a := m.next
	m.next++
	return a
}

// validAttempt reports whether an attempt ID is one of the task's live
// attempts (current primary or in-flight backup).
func (m *mapTask) validAttempt(a int) bool {
	return a == m.attempt || (m.hasSpec && a == m.specAttempt)
}

// Run executes a clustered job and blocks until it completes or fails.
// Map tasks are dispatched to workers (locality first), Reduce tasks
// run in the coordinator and fetch exactly their I_ℓ spills from the
// workers' shuffle endpoints, validated against the spill headers'
// kv-count annotations before finalizing.
func (c *Coordinator) Run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	if spec.Exec == nil {
		return nil, fmt.Errorf("cluster: job needs an executor")
	}
	if spec.ID == "" {
		c.mu.Lock()
		c.jobSeq++
		spec.ID = fmt.Sprintf("job-%d", c.jobSeq)
		c.mu.Unlock()
	}
	if !validJobID(spec.ID) {
		return nil, fmt.Errorf("cluster: invalid job id %q", spec.ID)
	}
	if c.AliveWorkers() == 0 {
		return nil, ErrNoWorkers
	}
	plan, err := spec.Plan.newPlan(spec.Namespace, spec.File)
	if err != nil {
		return nil, err
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j := &clusterJob{
		c:          c,
		spec:       spec,
		plan:       plan,
		ctx:        jctx,
		cancel:     cancel,
		handle:     spec.Exec.NewHandle(exec.HandleOptions{Weight: spec.Weight, MaxParallel: spec.Workers}),
		maps:       make([]mapTask, len(plan.Splits)),
		enqueued:   make([]bool, plan.Part.NumKeyblocks()),
		outputs:    make([]ReduceResult, plan.Part.NumKeyblocks()),
		reduceDone: make([]bool, plan.Part.NumKeyblocks()),
		done:       make(chan struct{}),
	}
	defer j.handle.Close()
	j.reducesLeft = plan.Part.NumKeyblocks()

	// Keyblocks with no dependencies finalize immediately as empty.
	j.mu.Lock()
	for l := range j.reduceDone {
		if len(plan.Graph.KBToSplits[l]) == 0 {
			j.reduceDone[l] = true
			j.outputs[l] = ReduceResult{Keyblock: l}
			j.reducesLeft--
		}
	}
	resolved := j.reducesLeft == 0
	j.mu.Unlock()
	if resolved {
		return j.result(), nil
	}

	// Index the job for drain watchers (they scan hosted attempts).
	c.mu.Lock()
	c.active[spec.ID] = j
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.active, spec.ID)
		c.mu.Unlock()
	}()

	// Cancellation watchdog.
	go func() {
		<-jctx.Done()
		j.fail(jctx.Err())
	}()

	// Straggler monitor: scans running Map dispatches and launches
	// backup attempts for the ones an unsatisfied keyblock is waiting on.
	if c.cfg.Speculation {
		j.specWG.Add(1)
		go func() {
			defer j.specWG.Done()
			j.speculationLoop()
		}()
	}

	// Submit every Map task in dependency-driven order: splits feeding
	// the front of the keyblock priority list dispatch first (§3.3), so
	// early keyblocks' dependencies complete early.
	order := sched.DependencyDrivenMapOrder(plan.Graph, plan.Priority)
	for pos, split := range order {
		j.submitMap(split, pos)
	}

	<-j.done
	// The job is resolved either way: drop queued tasks, abort in-flight
	// dispatches and fetches, join the speculation goroutines, then
	// release worker-side state (cached plan/dataset and spills) before
	// handing the result back.
	j.handle.Close()
	j.cancel()
	j.specWG.Wait()
	c.releaseJob(spec.ID)
	j.mu.Lock()
	err = j.err
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return j.result(), nil
}

// releaseJob tells every live worker to drop one job's cached state and
// delete its spills. Best-effort with a short deadline derived from the
// coordinator's lifetime — Close cancels in-flight broadcasts instead
// of leaking goroutines for up to the timeout. A worker that misses the
// release still replaces the stale entry on the next job's fingerprint
// mismatch (see Worker.jobFor).
func (c *Coordinator) releaseJob(jobID string) {
	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.evicted {
			urls = append(urls, w.url)
		}
	}
	c.mu.Unlock()
	if len(urls) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		c.releases.Add(1)
		go func(u string) {
			defer wg.Done()
			defer c.releases.Done()
			c.postRelease(ctx, u, ReleaseRequest{JobID: jobID})
		}(u)
	}
	wg.Wait()
}

// releaseAttempt asks one worker to drop a single superseded attempt's
// spills (a cancelled speculation loser, or a straggler that lost the
// race). Fire-and-forget: the job-resolution release sweeps anything
// this misses.
func (c *Coordinator) releaseAttempt(baseURL, jobID string, split, attempt int) {
	if baseURL == "" {
		return
	}
	c.releases.Add(1)
	go func() {
		defer c.releases.Done()
		ctx, cancel := context.WithTimeout(c.baseCtx, 2*time.Second)
		defer cancel()
		c.postRelease(ctx, baseURL, ReleaseRequest{JobID: jobID, Split: &split, Attempt: &attempt})
	}()
}

func (c *Coordinator) postRelease(ctx context.Context, baseURL string, rr ReleaseRequest) {
	body, err := json.Marshal(rr)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/release", strings.NewReader(string(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// result snapshots the completed job.
func (j *clusterJob) result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobResult{Outputs: append([]ReduceResult(nil), j.outputs...), Plan: j.plan, Counters: j.counters}
}

// fail records the job's first error, cancels pending work and resolves
// Run. In-flight OnPartial callbacks are drained before done closes, so
// no callback ever races Run's caller.
func (j *clusterJob) fail(err error) {
	if err == nil {
		return
	}
	j.mu.Lock()
	if j.err != nil || j.reducesLeft <= 0 {
		j.mu.Unlock()
		return
	}
	j.err = err
	j.reducesLeft = -1 // poison: no later success path
	j.handle.Cancel()
	j.cancel()
	j.mu.Unlock()
	j.partials.Wait()
	close(j.done)
}

// failed reports whether the job already resolved (error or success).
func (j *clusterJob) resolvedLocked() bool { return j.reducesLeft <= 0 }

// readyLocked reports whether every I_ℓ dependency of keyblock l is
// satisfied by a completed Map attempt. Readiness is always recomputed
// from maps[].done — never cached in a counter — so re-executed
// attempts can neither double-satisfy nor strand a dependency.
// Caller holds j.mu.
func (j *clusterJob) readyLocked(l int) bool {
	for _, s := range j.plan.Graph.KBToSplits[l] {
		if !j.maps[s].done {
			return false
		}
	}
	return true
}

// submitMap enqueues a dispatch of map task i at its current attempt.
func (j *clusterJob) submitMap(i, priority int) {
	j.mu.Lock()
	attempt := j.maps[i].attempt
	j.mu.Unlock()
	if !j.handle.Submit(exec.Map, priority, func() { j.dispatchAttempt(i, attempt, make(map[string]bool), false) }) {
		j.fail(fmt.Errorf("%w: map task %d rejected", ErrExecutorClosed, i))
	}
}

// speculationLoop periodically scans for straggling Map dispatches
// until the job resolves.
func (j *clusterJob) speculationLoop() {
	t := time.NewTicker(j.c.cfg.SpeculationInterval)
	defer t.Stop()
	for {
		select {
		case <-j.ctx.Done():
			return
		case <-j.done:
			return
		case <-t.C:
			j.scanStragglers()
		}
	}
}

// scanStragglers launches a backup attempt for every running primary
// dispatch older than SpeculationFactor × the median completed attempt
// duration, provided an unsatisfied keyblock depends on its split and
// no backup is already in flight. Backups avoid the primary's worker
// and run in direct goroutines (not through the executor handle), so a
// pool saturated with hung dispatches cannot starve its own rescue.
func (j *clusterJob) scanStragglers() {
	c := j.c
	now := time.Now()
	j.mu.Lock()
	if j.resolvedLocked() || len(j.durations) == 0 {
		j.mu.Unlock()
		return // no baseline yet: the first completions define "normal"
	}
	threshold := time.Duration(float64(medianDuration(j.durations)) * c.cfg.SpeculationFactor)
	if threshold < c.cfg.SpeculationMin {
		threshold = c.cfg.SpeculationMin
	}
	type launch struct {
		split, attempt int
		avoid          string
	}
	var launches []launch
	for i := range j.maps {
		m := &j.maps[i]
		if m.done || m.hasSpec || m.started.IsZero() || now.Sub(m.started) < threshold {
			continue
		}
		needed := false
		for _, kb := range j.plan.Graph.SplitToKB[i] {
			if !j.reduceDone[kb] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		m.hasSpec = true
		m.specAttempt = m.allocAttempt()
		m.specWorker = ""
		j.counters.Speculated++
		launches = append(launches, launch{split: i, attempt: m.specAttempt, avoid: m.dispWorker})
	}
	j.mu.Unlock()
	for _, sp := range launches {
		c.mSpecLaunched.Inc()
		c.logf("speculating map %s/%d as backup attempt %d (primary straggling)", j.spec.ID, sp.split, sp.attempt)
		avoid := make(map[string]bool)
		if sp.avoid != "" {
			avoid[sp.avoid] = true
		}
		j.specWG.Add(1)
		go func(sp launch, avoid map[string]bool) {
			defer j.specWG.Done()
			j.dispatchAttempt(sp.split, sp.attempt, avoid, true)
		}(sp, avoid)
	}
}

// medianDuration returns the median of ds (upper median for even n).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// dispatchAttempt sends one attempt of map task i to a worker, retrying
// on other workers (with backoff) when dispatch fails. Connection-level
// failures mark the worker dead (its spills are unreachable too);
// application-level failures only feed its fail score — the worker
// stays alive, its hosted spills stay valid, and repetition quarantines
// it. Each try runs under a per-attempt context so a speculation winner
// can cancel the loser's in-flight dispatch without touching the job.
func (j *clusterJob) dispatchAttempt(i, attempt int, tried map[string]bool, speculative bool) {
	c := j.c
	j.mu.Lock()
	m := &j.maps[i]
	if j.resolvedLocked() || m.done || !m.validAttempt(attempt) {
		j.mu.Unlock()
		return // stale or already satisfied
	}
	m.dispatches++
	if m.dispatches > c.cfg.MaxTaskAttempts {
		corrupt := m.corrupt
		j.mu.Unlock()
		if corrupt > 0 {
			j.fail(fmt.Errorf("%w: map task %d exceeded %d attempts (%d checksum failures): %w",
				ErrRetryExhausted, i, c.cfg.MaxTaskAttempts, corrupt, ErrSpillCorrupt))
		} else {
			j.fail(fmt.Errorf("%w: map task %d exceeded %d attempts", ErrRetryExhausted, i, c.cfg.MaxTaskAttempts))
		}
		return
	}
	if !speculative {
		m.started = time.Now()
	}
	j.mu.Unlock()

	hosts := j.plan.Splits[i].Hosts
	for try := 0; ; try++ {
		if j.ctx.Err() != nil {
			return
		}
		name, url, local, err := c.pickWorker(hosts, tried)
		if err != nil {
			if speculative {
				// No worker to run the backup on: withdraw it quietly and
				// let a later scan retry once the cluster changes.
				j.clearSpec(i, attempt)
				return
			}
			j.fail(fmt.Errorf("map task %d: %w", i, err))
			return
		}
		if len(hosts) > 0 {
			j.mu.Lock()
			if local {
				j.counters.DispatchLocal++
			} else {
				j.counters.DispatchRemote++
			}
			j.mu.Unlock()
		}

		// Register the in-flight dispatch: per-attempt context (so the
		// losing side of a speculation race is cancellable) and the
		// worker it targets (so backups avoid it and stragglers name it).
		actx, acancel := context.WithCancel(j.ctx)
		j.mu.Lock()
		m = &j.maps[i]
		if j.resolvedLocked() || m.done || !m.validAttempt(attempt) {
			j.mu.Unlock()
			acancel()
			c.releaseWorker(name, false)
			return
		}
		if m.cancels == nil {
			m.cancels = make(map[int]context.CancelFunc)
		}
		m.cancels[attempt] = acancel
		if speculative {
			m.specWorker = name
		} else {
			m.dispWorker = name
		}
		j.mu.Unlock()

		start := time.Now()
		resp, err := j.postMap(actx, url, i, attempt)
		c.releaseWorker(name, err == nil)
		// Capture whether the attempt itself was cancelled before we
		// release its context below.
		lostRace := actx.Err() != nil && j.ctx.Err() == nil
		j.mu.Lock()
		if j.maps[i].cancels[attempt] != nil {
			delete(j.maps[i].cancels, attempt)
		}
		j.mu.Unlock()
		acancel()

		if err == nil {
			c.noteOutcome(name, false)
			j.recordMapResult(i, attempt, name, url, start, resp)
			return
		}
		if j.ctx.Err() != nil {
			return
		}
		if lostRace {
			// Only this attempt was cancelled: it lost a speculation race.
			// Not the worker's fault — no penalty, no retry.
			return
		}
		// Classify the failure. A connection-level error means the worker
		// (and every spill it hosts) is unreachable: mark it dead. An
		// HTTP-level or decode error means the worker is up but failing:
		// penalise its health and retry elsewhere.
		if isConnError(err) {
			c.markDead(name)
		}
		c.noteOutcome(name, true)
		tried[name] = true
		c.mRetried.Inc()
		j.mu.Lock()
		j.counters.Retried++
		j.mu.Unlock()
		c.logf("map %s/%d attempt %d on %q failed (%v); retrying", j.spec.ID, i, attempt, name, err)
		if try >= c.cfg.MaxTaskAttempts {
			if speculative {
				j.clearSpec(i, attempt)
				return
			}
			j.fail(fmt.Errorf("%w: map task %d: %v", ErrRetryExhausted, i, err))
			return
		}
		if sleep(j.ctx, c.backoff(try)) != nil {
			return
		}
	}
}

// clearSpec withdraws an in-flight backup attempt that could not be
// placed or kept failing, so a later straggler scan may try again.
func (j *clusterJob) clearSpec(i, attempt int) {
	j.mu.Lock()
	m := &j.maps[i]
	if m.hasSpec && m.specAttempt == attempt {
		m.hasSpec = false
		m.specWorker = ""
	}
	j.mu.Unlock()
}

// isConnError distinguishes transport-level failures (dial refused,
// reset, injected drop) from application-level ones: http.Client.Do
// wraps the former in *url.Error, while a non-2xx status or a decode
// failure never is one.
func isConnError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// postMap performs one /v1/map dispatch under the attempt's context.
func (j *clusterJob) postMap(ctx context.Context, baseURL string, split, attempt int) (*MapResponse, error) {
	j.c.mDispatched.Inc()
	j.mu.Lock()
	j.counters.MapsDispatched++
	j.mu.Unlock()
	body, err := json.Marshal(MapRequest{
		JobID:    j.spec.ID,
		Split:    split,
		Attempt:  attempt,
		Plan:     j.spec.Plan,
		Dataset:  j.spec.Dataset,
		Dataset2: j.spec.Dataset2,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/map", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var mr MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	return &mr, nil
}

// recordMapResult accepts a completed Map attempt, discarding stale
// attempts (idempotency under re-execution), and enqueues every Reduce
// task whose I_ℓ just completed. Under speculation the first of the
// primary/backup pair to arrive wins: the task commits exactly once,
// the loser's dispatch is cancelled and its spills are released.
func (j *clusterJob) recordMapResult(i, attempt int, worker, url string, start time.Time, resp *MapResponse) {
	c := j.c
	j.mu.Lock()
	m := &j.maps[i]
	if j.resolvedLocked() || m.done || !m.validAttempt(attempt) || resp.Attempt != attempt {
		current := m.attempt
		j.mu.Unlock()
		c.logf("discarding stale map result %s/%d attempt %d (current %d)", j.spec.ID, i, attempt, current)
		// The late attempt's spills will never be fetched; reclaim them.
		c.releaseAttempt(url, j.spec.ID, i, attempt)
		return
	}
	specWin := m.hasSpec && attempt == m.specAttempt
	hadSpec := m.hasSpec
	var loserAttempt int
	var loserWorker string
	if specWin {
		loserAttempt, loserWorker = m.attempt, m.dispWorker
		m.attempt = attempt // shuffle fetches must target the winner's spills
	} else if hadSpec {
		loserAttempt, loserWorker = m.specAttempt, m.specWorker
	}
	if hadSpec {
		if cancel := m.cancels[loserAttempt]; cancel != nil {
			cancel()
		}
		m.hasSpec = false
		m.specWorker = ""
	}
	m.done = true
	m.worker = worker
	m.url = url
	m.outputs = make(map[int]KeyblockMeta, len(resp.Outputs))
	for _, o := range resp.Outputs {
		m.outputs[o.Keyblock] = o
	}
	j.durations = append(j.durations, time.Since(start))
	j.counters.Records += resp.Records
	if specWin {
		j.counters.SpeculativeWins++
	}
	var ready []int
	for _, kb := range j.plan.Graph.SplitToKB[i] {
		if j.reduceDone[kb] || j.enqueued[kb] {
			continue
		}
		if j.readyLocked(kb) {
			j.enqueued[kb] = true
			ready = append(ready, kb)
		}
	}
	j.mu.Unlock()
	if hadSpec {
		c.mSpecCancelled.Inc()
		if specWin {
			c.mSpecWins.Inc()
			c.logf("map %s/%d: backup attempt %d overtook straggling primary %d", j.spec.ID, i, attempt, loserAttempt)
		}
		if loserWorker != "" {
			c.releaseAttempt(c.workerURL(loserWorker), j.spec.ID, i, loserAttempt)
		}
	}
	// Replicate the freshly committed pack before anything can lose it;
	// async, so the reduce pipeline never waits on replication.
	j.scheduleReplicas(i)
	if j.c.onMapResult != nil {
		j.c.onMapResult(j.spec.ID, i, worker)
	}
	for _, kb := range ready {
		j.submitReduce(kb)
	}
}

// submitReduce enqueues reduce task l; Reduce class outranks every
// queued Map dispatch on the handle (reduce-first scheduling, §3.3).
func (j *clusterJob) submitReduce(l int) {
	priority := l
	if j.plan.Priority != nil {
		for pos, kb := range j.plan.Priority {
			if kb == l {
				priority = pos
				break
			}
		}
	}
	if !j.handle.Submit(exec.Reduce, priority, func() { j.runReduce(l) }) {
		j.fail(fmt.Errorf("%w: reduce task %d rejected", ErrExecutorClosed, l))
	}
}

// reduceDep is one entry of a reduce task's I_ℓ dependency set: the
// split whose spill is needed, the attempt that produced it, and where
// it is hosted. meta carries the winning Map attempt's recorded spill
// metadata when available (hasMeta); batched fetches require it.
type reduceDep struct {
	split   int
	attempt int
	worker  string
	url     string
	meta    KeyblockMeta
	hasMeta bool
	// primary is the worker that originally hosted the attempt; worker/
	// url may be rewritten to a replica when the primary is gone, and a
	// fetch that lands anywhere but primary counts a replica fallback.
	// alts are the attempt's verified replica copies, byte-identical to
	// the primary's pack, so meta stays valid across the switch.
	primary string
	alts    []replicaLoc
}

// runReduce fetches keyblock l's I_ℓ spills point-to-point from their
// hosting workers, tallies the kv-count annotations against the
// dependency graph's expected count, and finalizes the keyblock. Lost
// spills trigger Map re-execution instead of finalizing short.
func (j *clusterJob) runReduce(l int) {
	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	deps := make([]reduceDep, 0, len(j.plan.Graph.KBToSplits[l]))
	for _, s := range j.plan.Graph.KBToSplits[l] {
		m := j.maps[s]
		if !m.done {
			// A dependency regressed (its worker died and the task is
			// re-executing), so this enqueue is stale. Clearing
			// enqueued[l] here — in the same critical section that
			// observed the open dependency, before its recordMapResult
			// can run — guarantees the reduce is re-enqueued when the
			// fresh attempt completes.
			j.enqueued[l] = false
			j.mu.Unlock()
			return
		}
		d := reduceDep{split: s, attempt: m.attempt, worker: m.worker, url: m.url, primary: m.worker}
		d.meta, d.hasMeta = m.outputs[l]
		d.alts = append([]replicaLoc(nil), m.replicas...)
		deps = append(deps, d)
	}
	j.mu.Unlock()

	// Route around known-dead primaries up front: a dep whose hosting
	// worker is already gone but has a live replica fetches from the
	// replica directly (batched path included) instead of burning the
	// retry budget against a dead socket first.
	for i := range deps {
		d := &deps[i]
		if len(d.alts) == 0 || j.c.liveWorker(d.worker) {
			continue
		}
		for _, alt := range d.alts {
			if j.c.liveWorker(alt.worker) {
				d.worker, d.url = alt.worker, alt.url
				break
			}
		}
	}

	// Batched path first: one streamed request per hosting worker
	// carrying that worker's whole slice of I_ℓ. Any batch that fails —
	// transport error, frame/meta mismatch, decode error — leaves its
	// deps unfetched and the per-spill loop below picks them up with its
	// full error taxonomy (retry, re-execute, quarantine).
	fetched := make([][]kv.Pair, len(deps))
	srcs := make([]int64, len(deps))
	got := make([]bool, len(deps))
	var batchBytes int64
	if !j.c.cfg.DisableBatchFetch {
		batchBytes = j.fetchBatches(l, deps, fetched, srcs, got)
		if j.ctx.Err() != nil {
			return
		}
	}

	// Fetch I_ℓ in ascending split order so the k-way merge sees streams
	// in the same order as the in-process engine (stream-index
	// tie-breaks make merge output order-sensitive). Batched results
	// fill their slots in the same order.
	streams := make([][]kv.Pair, 0, len(deps))
	var tally int64
	bytes := batchBytes
	for i := range deps {
		d := &deps[i]
		if got[i] {
			j.c.noteOutcome(d.worker, false)
			j.noteFallback(d)
			streams = append(streams, fetched[i])
			tally += srcs[i]
			continue
		}
		pairs, src, n, err := j.fetchDep(d, l)
		if err != nil {
			if j.ctx.Err() != nil {
				return
			}
			c := j.c
			switch {
			case errors.Is(err, kv.ErrChecksum):
				// The worker serves bytes that fail the payload CRC: the
				// attempt's output is poison, never merged. Treat it like
				// a lost attempt — re-execute the source split — without
				// declaring the worker dead (it answers; its other spills
				// may be fine). Repeat offenders fall to quarantine.
				c.mSpillsCorrupt.Inc()
				j.mu.Lock()
				j.counters.CorruptSpills++
				j.mu.Unlock()
				c.noteOutcome(d.worker, true)
				c.logf("reduce %s/kb%d: spill for split %d attempt %d corrupt on %q: %v — re-executing",
					j.spec.ID, l, d.split, d.attempt, d.worker, err)
				j.rearm(l, map[int]int{d.split: d.attempt}, true)
			case isConnError(err):
				// The worker is unreachable: the spill died with it.
				c.logf("reduce %s/kb%d: spill for split %d lost on %q: %v", j.spec.ID, l, d.split, d.worker, err)
				c.markDead(d.worker)
				c.noteOutcome(d.worker, true)
				j.rearm(l, nil, false)
			default:
				// The worker answers but cannot produce this spill (evicted
				// cache, missing file, persistent 5xx): the attempt is lost
				// even though the worker lives.
				c.logf("reduce %s/kb%d: spill for split %d attempt %d unserved by %q: %v — re-executing",
					j.spec.ID, l, d.split, d.attempt, d.worker, err)
				c.noteOutcome(d.worker, true)
				j.rearm(l, map[int]int{d.split: d.attempt}, false)
			}
			return
		}
		j.c.noteOutcome(d.worker, false)
		j.noteFallback(d)
		streams = append(streams, pairs)
		tally += src
		bytes += n
	}

	// The §3.2.1 integrity gate: the annotation tally must equal the
	// planner's expected source count or the reduce never finalizes.
	if want := j.plan.Graph.ExpectedCount[l]; tally != want {
		j.fail(fmt.Errorf("%w: keyblock %d tallied %d source pairs, expected %d", ErrCountMismatch, l, tally, want))
		return
	}

	merged := kv.MergeSorted(streams)
	out := ReduceResult{Keyblock: l}
	if jp := j.plan.Join; jp != nil {
		// Join reduces fold per-side aggregates; the caller assembles
		// share units across keyblocks afterwards.
		out.Keys, out.Values = join.Reduce(jp, l, merged)
	} else {
		op, err := j.plan.Query.Op()
		if err != nil {
			j.fail(err)
			return
		}
		out.Keys = make([]coords.Coord, 0, len(merged))
		out.Values = make([][]float64, 0, len(merged))
		isFilter := op.Kind() == ops.Filter
		params := j.plan.Query.Params()
		for _, p := range merged {
			vals := op.Apply(p.Value, params...)
			if isFilter && len(vals) == 0 {
				// Match the in-process engine: predicated operators omit
				// keys with no surviving samples, keeping pruned and
				// unpruned plans byte-identical.
				continue
			}
			out.Keys = append(out.Keys, p.Key)
			out.Values = append(out.Values, vals)
		}
	}

	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	j.reduceDone[l] = true
	j.outputs[l] = out
	j.counters.ShuffleBytes += bytes
	j.partials.Add(1)
	j.mu.Unlock()

	// OnPartial runs before this reduce is counted done, so done (and
	// with it Run) cannot resolve while any callback is still running.
	if j.spec.OnPartial != nil {
		j.spec.OnPartial(out)
	}
	j.partials.Done()

	j.mu.Lock()
	finished := false
	if j.reducesLeft > 0 { // not poisoned by fail
		j.reducesLeft--
		finished = j.reducesLeft == 0
	}
	j.mu.Unlock()
	if finished {
		close(j.done)
	}
}

// fetchSpill streams one spill from a worker's shuffle endpoint with
// jittered exponential backoff, returning its pairs, kv-count
// annotation and byte size. Only a successful fetch counts as a shuffle
// connection, so a completed job's connection count is exactly Σ|I_ℓ|.
func (j *clusterJob) fetchSpill(baseURL string, split, attempt, kb int) ([]kv.Pair, int64, int64, error) {
	c := j.c
	var lastErr error
	for try := 0; try < c.cfg.FetchRetries; try++ {
		if try > 0 {
			if sleep(j.ctx, c.backoff(try-1)) != nil {
				return nil, 0, 0, j.ctx.Err()
			}
		}
		start := time.Now()
		pairs, src, n, err := j.fetchSpillOnce(baseURL, split, attempt, kb)
		if err == nil {
			c.mFetchSeconds.Observe(time.Since(start).Seconds())
			c.mConnections.Inc()
			c.mShuffleReqs.Inc()
			c.mShuffleBytes.Add(n)
			j.mu.Lock()
			j.counters.Connections++
			j.counters.ShuffleRequests++
			j.mu.Unlock()
			return pairs, src, n, nil
		}
		lastErr = err
		if j.ctx.Err() != nil {
			return nil, 0, 0, j.ctx.Err()
		}
		if errors.Is(err, kv.ErrChecksum) {
			// The bytes on disk are wrong; refetching the same file cannot
			// fix them. Surface immediately so the source re-executes.
			return nil, 0, 0, err
		}
	}
	return nil, 0, 0, fmt.Errorf("%w: %w", ErrRetryExhausted, lastErr)
}

func (j *clusterJob) fetchSpillOnce(baseURL string, split, attempt, kb int) ([]kv.Pair, int64, int64, error) {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet,
		baseURL+ShufflePath(j.spec.ID, split, attempt, kb), nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := j.c.shuffleClient.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, fmt.Errorf("shuffle fetch returned %d", resp.StatusCode)
	}
	cr := &countingReader{r: resp.Body}
	h, pairs, err := kv.ReadSpill(cr)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("spill decode: %w", err)
	}
	return pairs, h.SourceCount, cr.n, nil
}

// fetchBatches runs the batched shuffle path for reduce l: deps are
// grouped by hosting worker (in order of first appearance, which is
// ascending-split order) and each group is fetched with one streamed
// batch request. Successful groups fill their fetched/srcs/got slots;
// a failed group is simply left unfetched for the per-spill loop — a
// batch is a fast path, never an error authority, so it performs no
// rearm, markDead or health accounting. Returns the bytes transferred
// by successful batches.
func (j *clusterJob) fetchBatches(l int, deps []reduceDep, fetched [][]kv.Pair, srcs []int64, got []bool) int64 {
	c := j.c
	var order []string
	groups := make(map[string][]int)
	for i, d := range deps {
		if !d.hasMeta {
			continue // no recorded meta to validate frames against
		}
		if _, ok := groups[d.url]; !ok {
			order = append(order, d.url)
		}
		groups[d.url] = append(groups[d.url], i)
	}
	var total int64
	for _, u := range order {
		idx := groups[u]
		n, err := j.fetchBatchOnce(u, l, idx, deps, fetched, srcs)
		if err != nil {
			if j.ctx.Err() != nil {
				return total
			}
			c.mBatchFallbacks.Inc()
			j.mu.Lock()
			j.counters.BatchFallbacks++
			j.mu.Unlock()
			c.logf("reduce %s/kb%d: batch fetch of %d spills from %s failed (%v); falling back to per-spill",
				j.spec.ID, l, len(idx), u, err)
			for _, i := range idx {
				fetched[i], srcs[i] = nil, 0
			}
			continue
		}
		for _, i := range idx {
			got[i] = true
		}
		total += n
	}
	return total
}

// fetchBatchOnce fetches one worker's slice of I_ℓ as a single framed
// stream and validates every frame against the Map-time spill metadata:
// frame identity and length, then (through the kv codec's own CRC
// gauntlet) the decoded pair count and kv-count annotation. Any
// mismatch fails the whole batch — the per-spill path re-fetches with
// proper error classification. On success the request is accounted
// once (histogram, request counters) while Connections still advances
// by the number of spills carried, keeping Σ|I_ℓ| accounting intact.
func (j *clusterJob) fetchBatchOnce(baseURL string, l int, idx []int, deps []reduceDep, fetched [][]kv.Pair, srcs []int64) (int64, error) {
	c := j.c
	breq := BatchFetchRequest{JobID: j.spec.ID, Keyblock: l, Spills: make([]SpillRef, 0, len(idx))}
	for _, i := range idx {
		breq.Spills = append(breq.Spills, SpillRef{Split: deps[i].split, Attempt: deps[i].attempt})
	}
	body, err := json.Marshal(breq)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(j.ctx, http.MethodPost, baseURL+BatchShufflePath, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.shuffleClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("batch fetch returned %d", resp.StatusCode)
	}
	cr := &countingReader{r: resp.Body}
	for _, i := range idx {
		d := deps[i]
		var fh [frameHeaderLen]byte
		if _, err := io.ReadFull(cr, fh[:]); err != nil {
			return 0, fmt.Errorf("frame header for split %d: %w", d.split, err)
		}
		split, attempt, kb, length, err := parseFrameHeader(fh[:])
		if err != nil {
			return 0, err
		}
		if split != d.split || attempt != d.attempt || kb != l {
			return 0, fmt.Errorf("frame names spill %d/%d kb %d, want %d/%d kb %d",
				split, attempt, kb, d.split, d.attempt, l)
		}
		if length != d.meta.Bytes {
			return 0, fmt.Errorf("split %d frame length %d != recorded spill size %d", d.split, length, d.meta.Bytes)
		}
		// LimitReader contains the decoder's buffered reads within the
		// frame: over-reading would swallow the next frame's header.
		lr := io.LimitReader(cr, length)
		h, pairs, err := kv.ReadSpill(lr)
		if err != nil {
			return 0, fmt.Errorf("split %d spill decode: %w", d.split, err)
		}
		if rest, _ := io.Copy(io.Discard, lr); rest != 0 {
			return 0, fmt.Errorf("split %d frame has %d trailing bytes", d.split, rest)
		}
		if h.SourceCount != d.meta.SourceCount || len(pairs) != d.meta.Pairs {
			return 0, fmt.Errorf("split %d decoded (count=%d pairs=%d) != recorded (count=%d pairs=%d)",
				d.split, h.SourceCount, len(pairs), d.meta.SourceCount, d.meta.Pairs)
		}
		fetched[i] = pairs
		srcs[i] = h.SourceCount
	}
	if extra, _ := io.Copy(io.Discard, cr); extra != 0 {
		return 0, fmt.Errorf("%d trailing bytes after final frame", extra)
	}
	c.mFetchSeconds.Observe(time.Since(start).Seconds())
	c.mShuffleReqs.Inc()
	c.mBatchReqs.Inc()
	c.mConnections.Add(int64(len(idx)))
	c.mShuffleBytes.Add(cr.n)
	j.mu.Lock()
	j.counters.Connections += int64(len(idx))
	j.counters.ShuffleRequests++
	j.counters.BatchRequests++
	j.mu.Unlock()
	return cr.n, nil
}

// countingReader counts bytes for the shuffle-bytes accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// rearm handles a lost spill for reduce l: every I_ℓ dependency whose
// hosting worker is gone — or whose specific attempt is named in lost
// (checksum failure, unserved spill on a live worker) — is reset to a
// fresh attempt ID and re-dispatched, and the reduce re-enqueues (via
// recordMapResult's readiness recomputation) when they complete. lost
// maps split → failed attempt ID; the attempt match guards a fresh
// re-executed attempt from being invalidated by its predecessor's
// stale failure. Sibling keyblocks fed by a reset split are repaired
// too — their enqueued flags are cleared so the fresh attempt
// re-enqueues them instead of recordMapResult skipping them forever.
// Superseded attempts that straggle in are discarded by the attempt
// check in recordMapResult.
func (j *clusterJob) rearm(l int, lost map[int]int, corrupt bool) {
	c := j.c
	now := time.Now()
	c.mu.Lock()
	deadWorker := func(name string) bool {
		w := c.workers[name]
		return w == nil || w.evicted || now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout
	}
	c.mu.Unlock()

	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	type redo struct{ split, priority int }
	var redispatch []redo
	open := 0
	for _, s := range j.plan.Graph.KBToSplits[l] {
		m := &j.maps[s]
		forced := false
		if a, ok := lost[s]; ok && m.attempt == a {
			forced = true
		}
		switch {
		case m.done && (forced || deadWorker(m.worker)):
			// Lost primary, but not a forced invalidation (corrupt or
			// unserved bytes poison the attempt everywhere): a verified
			// replica on a live worker carries the identical pack, so
			// promote it to primary instead of re-executing the split.
			if !forced {
				promoted := false
				for ri, alt := range m.replicas {
					if deadWorker(alt.worker) {
						continue
					}
					c.logf("map %s/%d: worker %q gone; promoting replica on %q (attempt %d kept)",
						j.spec.ID, s, m.worker, alt.worker, m.attempt)
					m.worker, m.url = alt.worker, alt.url
					m.replicas = append(m.replicas[:ri:ri], m.replicas[ri+1:]...)
					// The promotion IS the replica fallback: the re-run
					// reduce sees the replica as primary and counts nothing.
					c.mReplicaFallbks.Inc()
					j.counters.ReplicaFetchFallbacks++
					promoted = true
					break
				}
				if promoted {
					continue
				}
			}
			// The spill died with its worker (or its bytes are poison):
			// invalidate the attempt and re-execute.
			m.attempt = m.allocAttempt()
			m.done = false
			m.worker, m.url = "", ""
			m.replicas = nil
			m.started = time.Time{}
			if forced && corrupt {
				m.corrupt++
			}
			redispatch = append(redispatch, redo{split: s, priority: s})
			open++
			c.mReexecuted.Inc()
			j.counters.Reexecuted++
			c.logf("re-executing map %s/%d as attempt %d", j.spec.ID, s, m.attempt)
		case !m.done:
			// Already being re-executed on behalf of another keyblock.
			open++
		}
	}
	if open == 0 {
		// Every dependency is hosted on a live worker — the failed fetch
		// targeted a superseded attempt. Re-run the reduce against the
		// current attempts.
		j.mu.Unlock()
		j.submitReduce(l)
		return
	}
	j.enqueued[l] = false
	// Repair the sibling keyblocks of every reset split: a sibling whose
	// enqueue consumed the now-invalidated attempt would otherwise be
	// skipped by recordMapResult (enqueued still true) while its queued
	// runReduce early-returns on the open dependency — stranding the
	// job. Clearing the flag lets the fresh attempt re-enqueue it;
	// finalized siblings keep their outputs (any completed attempt's
	// spill is valid data).
	for _, r := range redispatch {
		for _, kb := range j.plan.Graph.SplitToKB[r.split] {
			if !j.reduceDone[kb] {
				j.enqueued[kb] = false
			}
		}
	}
	j.mu.Unlock()
	for _, r := range redispatch {
		j.submitMap(r.split, r.priority)
	}
}
