package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/exec"
	"sidr/internal/hdfs"
	"sidr/internal/kv"
	"sidr/internal/metrics"
	"sidr/internal/sched"
)

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a worker may go without a heartbeat
	// before it is evicted (default 5s).
	HeartbeatTimeout time.Duration
	// FetchRetries is how many times one shuffle fetch is attempted
	// against a spill's hosting worker before the spill is declared lost
	// (default 4).
	FetchRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries (defaults 25ms and 1s); actual sleeps are jittered.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxTaskAttempts bounds how many attempts one Map task may consume
	// across dispatch retries and loss-driven re-executions (default 5).
	MaxTaskAttempts int
	// Metrics receives the sidrd_cluster_* / sidrd_shuffle_* instruments
	// (default: a private registry).
	Metrics *metrics.Registry
	// Client performs dispatch and shuffle requests (default: a plain
	// client; per-request contexts bound lifetimes).
	Client *http.Client
	// Seed seeds backoff jitter; 0 uses a fixed seed. Jitter only
	// desynchronises retries, so determinism is harmless.
	Seed int64
	// Logf, when set, receives coordinator lifecycle logging.
	Logf func(format string, args ...any)
}

// Coordinator owns the worker table and drives clustered jobs: it
// dispatches Map task attempts to workers over HTTP, tracks their
// spills, and runs Reduce tasks that fetch exactly their I_ℓ dependency
// set from the workers' shuffle endpoints.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	jobSeq  int64

	rngMu sync.Mutex
	rng   *rand.Rand

	mWorkersAlive *metrics.Gauge
	mDispatched   *metrics.Counter
	mRetried      *metrics.Counter
	mReexecuted   *metrics.Counter
	mShuffleBytes *metrics.Counter
	mConnections  *metrics.Counter
	mFetchSeconds *metrics.Histogram

	// onMapResult is a test hook observing accepted Map results.
	onMapResult func(jobID string, split int, worker string)
}

// workerState is the coordinator's record of one worker.
type workerState struct {
	name     string
	url      string
	lastSeen time.Time
	evicted  bool
	running  int
	mapsDone int64
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.FetchRetries <= 0 {
		cfg.FetchRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.MaxTaskAttempts <= 0 {
		cfg.MaxTaskAttempts = 5
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		workers: make(map[string]*workerState),
		rng:     rand.New(rand.NewSource(cfg.Seed)),

		mWorkersAlive: cfg.Metrics.Gauge("sidrd_cluster_workers_alive"),
		mDispatched:   cfg.Metrics.Counter("sidrd_cluster_tasks_dispatched_total"),
		mRetried:      cfg.Metrics.Counter("sidrd_cluster_tasks_retried_total"),
		mReexecuted:   cfg.Metrics.Counter("sidrd_cluster_reexecuted_total"),
		mShuffleBytes: cfg.Metrics.Counter("sidrd_shuffle_bytes_total"),
		mConnections:  cfg.Metrics.Counter("sidrd_shuffle_connections_total"),
		mFetchSeconds: cfg.Metrics.Histogram("sidrd_shuffle_fetch_seconds",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
	}
	return c
}

// Start runs the eviction reaper until ctx is done, so workers_alive
// drops even while no job is picking workers.
func (c *Coordinator) Start(ctx context.Context) {
	t := time.NewTicker(c.cfg.HeartbeatTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			c.mu.Lock()
			c.pruneLocked(now)
			c.mu.Unlock()
		}
	}
}

// Register adds (or revives) a worker.
func (c *Coordinator) Register(name, url string) error {
	if name == "" || url == "" {
		return fmt.Errorf("cluster: register needs name and url")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil {
		w = &workerState{name: name}
		c.workers[name] = w
	}
	w.url = strings.TrimSuffix(url, "/")
	w.lastSeen = time.Now()
	w.evicted = false
	c.pruneLocked(time.Now())
	c.logf("worker %q registered at %s", name, w.url)
	return nil
}

// Heartbeat refreshes a worker's deadline; false means the worker is
// unknown (it should re-register).
func (c *Coordinator) Heartbeat(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	if w == nil || w.evicted {
		return false
	}
	w.lastSeen = time.Now()
	c.pruneLocked(time.Now())
	return true
}

// Workers lists the worker table, alive first then by name.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			Name:      w.name,
			URL:       w.url,
			Alive:     !w.evicted,
			Running:   w.running,
			MapsDone:  w.mapsDone,
			LastSeenS: now.Sub(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Alive != out[j].Alive {
			return out[i].Alive
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AliveWorkers returns how many workers are currently live.
func (c *Coordinator) AliveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(time.Now())
	n := 0
	for _, w := range c.workers {
		if !w.evicted {
			n++
		}
	}
	return n
}

// pruneLocked applies deadline-based eviction and refreshes the
// workers_alive gauge. Caller holds c.mu.
func (c *Coordinator) pruneLocked(now time.Time) {
	alive := int64(0)
	for _, w := range c.workers {
		if !w.evicted && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			w.evicted = true
			c.logf("worker %q evicted: no heartbeat for %s", w.name, now.Sub(w.lastSeen).Round(time.Millisecond))
		}
		if !w.evicted {
			alive++
		}
	}
	c.mWorkersAlive.Set(alive)
}

// markDead evicts a worker on direct evidence (connection failure,
// lost spill) without waiting for the heartbeat deadline.
func (c *Coordinator) markDead(name string) {
	if name == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil && !w.evicted {
		w.evicted = true
		c.logf("worker %q marked dead", name)
	}
	c.pruneLocked(time.Now())
}

// pickWorker chooses a live worker for a Map task, preferring the
// split's block-location hosts (locality-aware placement) and breaking
// ties by least running tasks. not lists worker names to avoid (prior
// failed attempts of the same dispatch).
func (c *Coordinator) pickWorker(hosts []string, not map[string]bool) (name, url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(time.Now())
	var best *workerState
	bestLocal := false
	isLocal := func(w *workerState) bool {
		for _, h := range hosts {
			if h == w.name {
				return true
			}
		}
		return false
	}
	for _, w := range c.workers {
		if w.evicted || not[w.name] {
			continue
		}
		local := isLocal(w)
		switch {
		case best == nil,
			local && !bestLocal,
			local == bestLocal && w.running < best.running,
			local == bestLocal && w.running == best.running && w.name < best.name:
			best, bestLocal = w, local
		}
	}
	if best == nil {
		// Fall back to any live worker when every one was excluded.
		for _, w := range c.workers {
			if !w.evicted {
				if best == nil || w.running < best.running ||
					(w.running == best.running && w.name < best.name) {
					best = w
				}
			}
		}
	}
	if best == nil {
		return "", "", ErrNoWorkers
	}
	best.running++
	return best.name, best.url, nil
}

// releaseWorker undoes pickWorker's running increment, crediting done
// maps on success.
func (c *Coordinator) releaseWorker(name string, mapDone bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil {
		w.running--
		if mapDone {
			w.mapsDone++
		}
	}
}

// backoff returns the jittered exponential delay before retry n (0-based):
// base·2ⁿ capped at RetryMax, then uniformly jittered in [d/2, d).
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.RetryBase << uint(n)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	return d/2 + j
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Mount registers the coordinator's HTTP endpoints on mux:
// POST /v1/cluster/register, POST /v1/cluster/heartbeat,
// GET /v1/cluster/workers.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/cluster/register", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Register(req.Name, req.URL); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if !c.Heartbeat(req.Name) {
			http.Error(rw, "unknown worker; re-register", http.StatusNotFound)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/cluster/workers", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(rw, "GET only", http.StatusMethodNotAllowed)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(struct {
			Workers []WorkerInfo `json:"workers"`
		}{c.Workers()})
	})
}

// JobSpec describes one clustered job.
type JobSpec struct {
	// ID names the job on the wire and in spill paths; empty generates
	// one.
	ID string
	// Plan is the plan-defining tuple workers re-derive the plan from.
	Plan JobPlan
	// Dataset tells workers how to open the input.
	Dataset DatasetSpec
	// Namespace and File optionally attach HDFS block locations to
	// splits for locality-aware placement (coordinator side only; split
	// geometry is unaffected, so worker plans stay identical).
	Namespace *hdfs.Namespace
	File      string
	// Exec runs the job's task graph (required). Reduce tasks outrank
	// queued Map dispatch on it, preserving reduce-first scheduling.
	Exec *exec.Executor
	// Workers caps the job's concurrently running tasks (0 = pool bound).
	Workers int
	// OnPartial receives each keyblock's output the moment it commits.
	// Callbacks may arrive concurrently.
	OnPartial func(ReduceResult)
}

// ReduceResult is one finalized keyblock output.
type ReduceResult struct {
	Keyblock int
	Keys     []coords.Coord
	Values   [][]float64
}

// Counters aggregates one job's bookkeeping.
type Counters struct {
	// MapsDispatched counts Map attempt dispatches sent to workers.
	MapsDispatched int64
	// Retried counts dispatches that failed and were re-sent elsewhere.
	Retried int64
	// Reexecuted counts Map tasks re-executed because their spills were
	// lost with a worker.
	Reexecuted int64
	// Connections counts successful shuffle fetches — Σ_ℓ |I_ℓ| on the
	// happy path (Fig. 6 / Table 3).
	Connections int64
	// ShuffleBytes counts spill bytes fetched.
	ShuffleBytes int64
	// Records counts source records read by accepted Map attempts.
	Records int64
}

// JobResult is a completed clustered job.
type JobResult struct {
	// Outputs holds every keyblock's finalized output, indexed by
	// keyblock.
	Outputs []ReduceResult
	// Plan is the coordinator-side plan the job ran under.
	Plan *core.Plan
	Counters Counters
}

// clusterJob is the in-flight state of one Run.
type clusterJob struct {
	c      *Coordinator
	spec   JobSpec
	plan   *core.Plan
	ctx    context.Context
	cancel context.CancelFunc
	handle *exec.Handle

	// partials tracks in-flight OnPartial callbacks; done is only closed
	// after it drains, so Run never returns while a callback is running.
	partials sync.WaitGroup

	mu         sync.Mutex
	maps       []mapTask
	enqueued   []bool // reduce l submitted (or running)
	outputs    []ReduceResult
	reduceDone []bool
	reducesLeft int
	counters   Counters
	err        error
	done       chan struct{}
}

// mapTask tracks one Map task's current attempt.
type mapTask struct {
	attempt    int    // current attempt ID; results from other attempts are stale
	done       bool   // current attempt completed and spills are hosted
	worker     string // hosting worker name (done only)
	url        string // hosting worker base URL (done only)
	dispatches int    // attempts consumed, for the MaxTaskAttempts bound
}

// Run executes a clustered job and blocks until it completes or fails.
// Map tasks are dispatched to workers (locality first), Reduce tasks
// run in the coordinator and fetch exactly their I_ℓ spills from the
// workers' shuffle endpoints, validated against the spill headers'
// kv-count annotations before finalizing.
func (c *Coordinator) Run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	if spec.Exec == nil {
		return nil, fmt.Errorf("cluster: job needs an executor")
	}
	if spec.ID == "" {
		c.mu.Lock()
		c.jobSeq++
		spec.ID = fmt.Sprintf("job-%d", c.jobSeq)
		c.mu.Unlock()
	}
	if !validJobID(spec.ID) {
		return nil, fmt.Errorf("cluster: invalid job id %q", spec.ID)
	}
	if c.AliveWorkers() == 0 {
		return nil, ErrNoWorkers
	}
	plan, err := spec.Plan.newPlan(spec.Namespace, spec.File)
	if err != nil {
		return nil, err
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j := &clusterJob{
		c:      c,
		spec:   spec,
		plan:   plan,
		ctx:    jctx,
		cancel: cancel,
		handle: spec.Exec.NewHandle(exec.HandleOptions{MaxParallel: spec.Workers}),
		maps:   make([]mapTask, len(plan.Splits)),
		enqueued:   make([]bool, plan.Part.NumKeyblocks()),
		outputs:    make([]ReduceResult, plan.Part.NumKeyblocks()),
		reduceDone: make([]bool, plan.Part.NumKeyblocks()),
		done:       make(chan struct{}),
	}
	defer j.handle.Close()
	j.reducesLeft = plan.Part.NumKeyblocks()

	// Keyblocks with no dependencies finalize immediately as empty.
	j.mu.Lock()
	for l := range j.reduceDone {
		if len(plan.Graph.KBToSplits[l]) == 0 {
			j.reduceDone[l] = true
			j.outputs[l] = ReduceResult{Keyblock: l}
			j.reducesLeft--
		}
	}
	resolved := j.reducesLeft == 0
	j.mu.Unlock()
	if resolved {
		return j.result(), nil
	}

	// Cancellation watchdog.
	go func() {
		<-jctx.Done()
		j.fail(jctx.Err())
	}()

	// Submit every Map task in dependency-driven order: splits feeding
	// the front of the keyblock priority list dispatch first (§3.3), so
	// early keyblocks' dependencies complete early.
	order := sched.DependencyDrivenMapOrder(plan.Graph, plan.Priority)
	for pos, split := range order {
		j.submitMap(split, pos)
	}

	<-j.done
	// The job is resolved either way: drop queued tasks, abort in-flight
	// dispatches and fetches, then release worker-side state (cached
	// plan/dataset and spills) before handing the result back.
	j.handle.Close()
	j.cancel()
	c.releaseJob(spec.ID)
	j.mu.Lock()
	err = j.err
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return j.result(), nil
}

// releaseJob tells every live worker to drop one job's cached state and
// delete its spills. Best-effort with a short deadline: a worker that
// misses the release still replaces the stale entry on the next job's
// fingerprint mismatch (see Worker.jobFor).
func (c *Coordinator) releaseJob(jobID string) {
	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.evicted {
			urls = append(urls, w.url)
		}
	}
	c.mu.Unlock()
	if len(urls) == 0 {
		return
	}
	body, err := json.Marshal(ReleaseRequest{JobID: jobID})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/v1/release", strings.NewReader(string(body)))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(u)
	}
	wg.Wait()
}

// result snapshots the completed job.
func (j *clusterJob) result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobResult{Outputs: append([]ReduceResult(nil), j.outputs...), Plan: j.plan, Counters: j.counters}
}

// fail records the job's first error, cancels pending work and resolves
// Run. In-flight OnPartial callbacks are drained before done closes, so
// no callback ever races Run's caller.
func (j *clusterJob) fail(err error) {
	if err == nil {
		return
	}
	j.mu.Lock()
	if j.err != nil || j.reducesLeft <= 0 {
		j.mu.Unlock()
		return
	}
	j.err = err
	j.reducesLeft = -1 // poison: no later success path
	j.handle.Cancel()
	j.cancel()
	j.mu.Unlock()
	j.partials.Wait()
	close(j.done)
}

// failed reports whether the job already resolved (error or success).
func (j *clusterJob) resolvedLocked() bool { return j.reducesLeft <= 0 }

// readyLocked reports whether every I_ℓ dependency of keyblock l is
// satisfied by a completed Map attempt. Readiness is always recomputed
// from maps[].done — never cached in a counter — so re-executed
// attempts can neither double-satisfy nor strand a dependency.
// Caller holds j.mu.
func (j *clusterJob) readyLocked(l int) bool {
	for _, s := range j.plan.Graph.KBToSplits[l] {
		if !j.maps[s].done {
			return false
		}
	}
	return true
}

// submitMap enqueues a dispatch of map task i at its current attempt.
func (j *clusterJob) submitMap(i, priority int) {
	j.mu.Lock()
	attempt := j.maps[i].attempt
	j.mu.Unlock()
	if !j.handle.Submit(exec.Map, priority, func() { j.dispatchMap(i, attempt) }) {
		j.fail(fmt.Errorf("%w: map task %d rejected", ErrExecutorClosed, i))
	}
}

// dispatchMap sends map task i's attempt to a worker, retrying on other
// workers (with backoff) when dispatch fails. Workers that refuse a
// connection are marked dead.
func (j *clusterJob) dispatchMap(i, attempt int) {
	c := j.c
	j.mu.Lock()
	if j.resolvedLocked() || j.maps[i].attempt != attempt || j.maps[i].done {
		j.mu.Unlock()
		return // stale or already satisfied
	}
	j.maps[i].dispatches++
	if j.maps[i].dispatches > c.cfg.MaxTaskAttempts {
		j.mu.Unlock()
		j.fail(fmt.Errorf("%w: map task %d exceeded %d attempts", ErrRetryExhausted, i, c.cfg.MaxTaskAttempts))
		return
	}
	j.mu.Unlock()

	hosts := j.plan.Splits[i].Hosts
	tried := make(map[string]bool)
	for try := 0; ; try++ {
		if j.ctx.Err() != nil {
			return
		}
		name, url, err := c.pickWorker(hosts, tried)
		if err != nil {
			j.fail(fmt.Errorf("map task %d: %w", i, err))
			return
		}
		resp, err := j.postMap(url, i, attempt)
		c.releaseWorker(name, err == nil)
		if err == nil {
			j.recordMapResult(i, attempt, name, url, resp)
			return
		}
		// The worker failed the dispatch: mark it dead (its spills are
		// suspect too) and retry the attempt elsewhere after a jittered
		// backoff.
		c.markDead(name)
		tried[name] = true
		c.mRetried.Inc()
		j.mu.Lock()
		j.counters.Retried++
		j.mu.Unlock()
		c.logf("map %s/%d attempt %d on %q failed (%v); retrying", j.spec.ID, i, attempt, name, err)
		if try >= c.cfg.MaxTaskAttempts {
			j.fail(fmt.Errorf("%w: map task %d: %v", ErrRetryExhausted, i, err))
			return
		}
		if sleep(j.ctx, c.backoff(try)) != nil {
			return
		}
	}
}

// postMap performs one /v1/map dispatch.
func (j *clusterJob) postMap(baseURL string, split, attempt int) (*MapResponse, error) {
	j.c.mDispatched.Inc()
	j.mu.Lock()
	j.counters.MapsDispatched++
	j.mu.Unlock()
	body, err := json.Marshal(MapRequest{
		JobID:   j.spec.ID,
		Split:   split,
		Attempt: attempt,
		Plan:    j.spec.Plan,
		Dataset: j.spec.Dataset,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(j.ctx, http.MethodPost, baseURL+"/v1/map", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var mr MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	return &mr, nil
}

// recordMapResult accepts a completed Map attempt, discarding stale
// attempts (idempotency under re-execution), and enqueues every Reduce
// task whose I_ℓ just completed.
func (j *clusterJob) recordMapResult(i, attempt int, worker, url string, resp *MapResponse) {
	j.mu.Lock()
	if j.resolvedLocked() || j.maps[i].attempt != attempt || resp.Attempt != attempt {
		j.mu.Unlock()
		j.c.logf("discarding stale map result %s/%d attempt %d (current %d)", j.spec.ID, i, attempt, j.maps[i].attempt)
		return
	}
	m := &j.maps[i]
	m.done = true
	m.worker = worker
	m.url = url
	j.counters.Records += resp.Records
	var ready []int
	for _, kb := range j.plan.Graph.SplitToKB[i] {
		if j.reduceDone[kb] || j.enqueued[kb] {
			continue
		}
		if j.readyLocked(kb) {
			j.enqueued[kb] = true
			ready = append(ready, kb)
		}
	}
	j.mu.Unlock()
	if j.c.onMapResult != nil {
		j.c.onMapResult(j.spec.ID, i, worker)
	}
	for _, kb := range ready {
		j.submitReduce(kb)
	}
}

// submitReduce enqueues reduce task l; Reduce class outranks every
// queued Map dispatch on the handle (reduce-first scheduling, §3.3).
func (j *clusterJob) submitReduce(l int) {
	priority := l
	if j.plan.Priority != nil {
		for pos, kb := range j.plan.Priority {
			if kb == l {
				priority = pos
				break
			}
		}
	}
	if !j.handle.Submit(exec.Reduce, priority, func() { j.runReduce(l) }) {
		j.fail(fmt.Errorf("%w: reduce task %d rejected", ErrExecutorClosed, l))
	}
}

// runReduce fetches keyblock l's I_ℓ spills point-to-point from their
// hosting workers, tallies the kv-count annotations against the
// dependency graph's expected count, and finalizes the keyblock. Lost
// spills trigger Map re-execution instead of finalizing short.
func (j *clusterJob) runReduce(l int) {
	type dep struct {
		split   int
		attempt int
		worker  string
		url     string
	}
	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	deps := make([]dep, 0, len(j.plan.Graph.KBToSplits[l]))
	for _, s := range j.plan.Graph.KBToSplits[l] {
		m := j.maps[s]
		if !m.done {
			// A dependency regressed (its worker died and the task is
			// re-executing), so this enqueue is stale. Clearing
			// enqueued[l] here — in the same critical section that
			// observed the open dependency, before its recordMapResult
			// can run — guarantees the reduce is re-enqueued when the
			// fresh attempt completes.
			j.enqueued[l] = false
			j.mu.Unlock()
			return
		}
		deps = append(deps, dep{split: s, attempt: m.attempt, worker: m.worker, url: m.url})
	}
	j.mu.Unlock()

	// Fetch I_ℓ in ascending split order so the k-way merge sees streams
	// in the same order as the in-process engine (stream-index
	// tie-breaks make merge output order-sensitive).
	streams := make([][]kv.Pair, 0, len(deps))
	var tally, bytes int64
	for _, d := range deps {
		pairs, src, n, err := j.fetchSpill(d.url, d.split, d.attempt, l)
		if err != nil {
			if j.ctx.Err() != nil {
				return
			}
			// The spill is lost with its worker: evict it and rearm the
			// reduce — reset + re-dispatch the Map tasks whose spills
			// died with the worker, then wait for redelivery.
			j.c.logf("reduce %s/kb%d: spill for split %d lost on %q: %v", j.spec.ID, l, d.split, d.worker, err)
			j.c.markDead(d.worker)
			j.rearm(l)
			return
		}
		streams = append(streams, pairs)
		tally += src
		bytes += n
	}

	// The §3.2.1 integrity gate: the annotation tally must equal the
	// planner's expected source count or the reduce never finalizes.
	if want := j.plan.Graph.ExpectedCount[l]; tally != want {
		j.fail(fmt.Errorf("%w: keyblock %d tallied %d source pairs, expected %d", ErrCountMismatch, l, tally, want))
		return
	}

	merged := kv.MergeSorted(streams)
	op, err := j.plan.Query.Op()
	if err != nil {
		j.fail(err)
		return
	}
	out := ReduceResult{Keyblock: l, Keys: make([]coords.Coord, 0, len(merged)), Values: make([][]float64, 0, len(merged))}
	for _, p := range merged {
		out.Keys = append(out.Keys, p.Key)
		out.Values = append(out.Values, op.Apply(p.Value, j.plan.Query.Param))
	}

	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	j.reduceDone[l] = true
	j.outputs[l] = out
	j.counters.ShuffleBytes += bytes
	j.partials.Add(1)
	j.mu.Unlock()

	// OnPartial runs before this reduce is counted done, so done (and
	// with it Run) cannot resolve while any callback is still running.
	if j.spec.OnPartial != nil {
		j.spec.OnPartial(out)
	}
	j.partials.Done()

	j.mu.Lock()
	finished := false
	if j.reducesLeft > 0 { // not poisoned by fail
		j.reducesLeft--
		finished = j.reducesLeft == 0
	}
	j.mu.Unlock()
	if finished {
		close(j.done)
	}
}

// fetchSpill streams one spill from a worker's shuffle endpoint with
// jittered exponential backoff, returning its pairs, kv-count
// annotation and byte size. Only a successful fetch counts as a shuffle
// connection, so a completed job's connection count is exactly Σ|I_ℓ|.
func (j *clusterJob) fetchSpill(baseURL string, split, attempt, kb int) ([]kv.Pair, int64, int64, error) {
	c := j.c
	var lastErr error
	for try := 0; try < c.cfg.FetchRetries; try++ {
		if try > 0 {
			if sleep(j.ctx, c.backoff(try-1)) != nil {
				return nil, 0, 0, j.ctx.Err()
			}
		}
		start := time.Now()
		pairs, src, n, err := j.fetchSpillOnce(baseURL, split, attempt, kb)
		if err == nil {
			c.mFetchSeconds.Observe(time.Since(start).Seconds())
			c.mConnections.Inc()
			c.mShuffleBytes.Add(n)
			j.mu.Lock()
			j.counters.Connections++
			j.mu.Unlock()
			return pairs, src, n, nil
		}
		lastErr = err
		if j.ctx.Err() != nil {
			return nil, 0, 0, j.ctx.Err()
		}
	}
	return nil, 0, 0, fmt.Errorf("%w: %v", ErrRetryExhausted, lastErr)
}

func (j *clusterJob) fetchSpillOnce(baseURL string, split, attempt, kb int) ([]kv.Pair, int64, int64, error) {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet,
		baseURL+ShufflePath(j.spec.ID, split, attempt, kb), nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := j.c.client.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, fmt.Errorf("shuffle fetch returned %d", resp.StatusCode)
	}
	cr := &countingReader{r: resp.Body}
	h, pairs, err := kv.ReadSpill(cr)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("spill decode: %w", err)
	}
	return pairs, h.SourceCount, cr.n, nil
}

// countingReader counts bytes for the shuffle-bytes accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// rearm handles a lost spill for reduce l: every I_ℓ dependency whose
// hosting worker is gone is reset to a fresh attempt ID and
// re-dispatched, and the reduce re-enqueues (via recordMapResult's
// readiness recomputation) when they complete. Sibling keyblocks fed by
// a reset split are repaired too — their enqueued flags are cleared so
// the fresh attempt re-enqueues them instead of recordMapResult
// skipping them forever. Superseded attempts that straggle in are
// discarded by the attempt check in recordMapResult.
func (j *clusterJob) rearm(l int) {
	c := j.c
	now := time.Now()
	c.mu.Lock()
	deadWorker := func(name string) bool {
		w := c.workers[name]
		return w == nil || w.evicted || now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout
	}
	c.mu.Unlock()

	j.mu.Lock()
	if j.resolvedLocked() || j.reduceDone[l] {
		j.mu.Unlock()
		return
	}
	type redo struct{ split, priority int }
	var redispatch []redo
	open := 0
	for _, s := range j.plan.Graph.KBToSplits[l] {
		m := &j.maps[s]
		switch {
		case m.done && deadWorker(m.worker):
			// The spill died with its worker: invalidate the attempt and
			// re-execute.
			m.attempt++
			m.done = false
			m.worker, m.url = "", ""
			redispatch = append(redispatch, redo{split: s, priority: s})
			open++
			c.mReexecuted.Inc()
			j.counters.Reexecuted++
			c.logf("re-executing map %s/%d as attempt %d", j.spec.ID, s, m.attempt)
		case !m.done:
			// Already being re-executed on behalf of another keyblock.
			open++
		}
	}
	if open == 0 {
		// Every dependency is hosted on a live worker — the failed fetch
		// targeted a superseded attempt. Re-run the reduce against the
		// current attempts.
		j.mu.Unlock()
		j.submitReduce(l)
		return
	}
	j.enqueued[l] = false
	// Repair the sibling keyblocks of every reset split: a sibling whose
	// enqueue consumed the now-invalidated attempt would otherwise be
	// skipped by recordMapResult (enqueued still true) while its queued
	// runReduce early-returns on the open dependency — stranding the
	// job. Clearing the flag lets the fresh attempt re-enqueue it;
	// finalized siblings keep their outputs (any completed attempt's
	// spill is valid data).
	for _, r := range redispatch {
		for _, kb := range j.plan.Graph.SplitToKB[r.split] {
			if !j.reduceDone[kb] {
				j.enqueued[kb] = false
			}
		}
	}
	j.mu.Unlock()
	for _, r := range redispatch {
		j.submitMap(r.split, r.priority)
	}
}
