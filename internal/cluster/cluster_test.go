package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/datagen"
	"sidr/internal/depgraph"
	"sidr/internal/exec"
	"sidr/internal/metrics"
)

// The tests run a quickstart-shaped structural query — a daily mean over
// a seeded synthetic temperature grid — against real worker HTTP servers
// on distinct loopback ports.
const (
	testQueryText = "avg temp[0,0,0 : 30,24,24] es {1,4,4}"
	testSeed      = 42
)

func testJobPlan() JobPlan {
	return JobPlan{Query: testQueryText, Engine: "sidr", Reducers: 4, SplitPoints: 1500}
}

func testDataset() DatasetSpec {
	return DatasetSpec{Kind: "synthetic", Generator: "temperature", Seed: testSeed, Shape: []int64{30, 24, 24}}
}

// testWorker is one in-process worker instance on its own port.
type testWorker struct {
	w    *Worker
	srv  *httptest.Server
	dir  string
	once sync.Once
}

// kill simulates losing the worker process and its disk.
func (tw *testWorker) kill() {
	tw.once.Do(func() {
		tw.srv.CloseClientConnections()
		tw.srv.Close()
		os.RemoveAll(tw.dir)
	})
}

// startCluster brings up a coordinator and n registered in-process
// workers, each serving on its own port.
func startCluster(t *testing.T, n int, cfg CoordinatorConfig) (*Coordinator, []*testWorker) {
	t.Helper()
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 30 * time.Second // tests drive liveness explicitly
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
		cfg.RetryMax = 20 * time.Millisecond
	}
	c := NewCoordinator(cfg)
	var workers []*testWorker
	for i := 0; i < n; i++ {
		dir := t.TempDir()
		w, err := NewWorker(WorkerConfig{Name: fmt.Sprintf("w%d", i), SpillDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		tw := &testWorker{w: w, srv: httptest.NewServer(w), dir: dir}
		t.Cleanup(tw.kill)
		t.Cleanup(func() { tw.w.Close() })
		if err := c.Register(fmt.Sprintf("w%d", i), tw.srv.URL); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, tw)
	}
	return c, workers
}

func runClusterJob(t *testing.T, c *Coordinator, tweak func(*JobSpec)) (*JobResult, error) {
	t.Helper()
	ex := exec.New(4)
	t.Cleanup(ex.Close)
	spec := JobSpec{Plan: testJobPlan(), Dataset: testDataset(), Exec: ex}
	if tweak != nil {
		tweak(&spec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return c.Run(ctx, spec)
}

// inProcessRun executes the identical query on the in-process engine.
func inProcessRun(t *testing.T) *sidr.Result {
	t.Helper()
	gen := datagen.Temperature(testSeed)
	ds, err := sidr.Synthetic(testDataset().Shape, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		t.Fatal(err)
	}
	q, err := sidr.ParseQuery(testQueryText)
	if err != nil {
		t.Fatal(err)
	}
	jp := testJobPlan()
	res, err := sidr.Run(ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: jp.Reducers, SplitPoints: jp.SplitPoints})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// flatten orders a clustered job's outputs exactly like the sidr facade
// flattens in-process results: global row-major key sort.
func flatten(res *JobResult) ([][]int64, [][]float64) {
	type row struct {
		key  coords.Coord
		vals []float64
	}
	var rows []row
	for _, out := range res.Outputs {
		for i, k := range out.Keys {
			rows = append(rows, row{key: k, vals: out.Values[i]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key.Less(rows[j].key) })
	keys := make([][]int64, len(rows))
	vals := make([][]float64, len(rows))
	for i, r := range rows {
		keys[i] = append([]int64(nil), r.key...)
		vals[i] = r.vals
	}
	return keys, vals
}

// TestClusterMatchesInProcessEngine is the end-to-end acceptance test:
// a job across a coordinator and two worker instances on distinct ports
// must produce byte-identical output to the in-process engine, and its
// Reduce tasks must open exactly Σ_ℓ |I_ℓ| shuffle connections (Fig. 6).
func TestClusterMatchesInProcessEngine(t *testing.T) {
	c, workers := startCluster(t, 2, CoordinatorConfig{})
	var (
		partMu   sync.Mutex
		partials int
	)
	res, err := runClusterJob(t, c, func(spec *JobSpec) {
		spec.OnPartial = func(ReduceResult) {
			partMu.Lock()
			partials++
			partMu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	local := inProcessRun(t)

	// Run must not return before every OnPartial callback has been
	// delivered (one per keyblock with dependencies; empty keyblocks
	// finalize without a callback).
	withDeps := 0
	for _, deps := range res.Plan.Graph.KBToSplits {
		if len(deps) > 0 {
			withDeps++
		}
	}
	partMu.Lock()
	delivered := partials
	partMu.Unlock()
	if delivered != withDeps {
		t.Fatalf("Run returned with %d of %d partial callbacks delivered", delivered, withDeps)
	}

	keys, vals := flatten(res)
	if len(keys) == 0 {
		t.Fatal("cluster job produced no output")
	}
	if !reflect.DeepEqual(keys, local.Keys) {
		t.Fatalf("cluster keys differ from in-process keys: %d vs %d rows", len(keys), len(local.Keys))
	}
	if !reflect.DeepEqual(vals, local.Values) {
		t.Fatal("cluster values differ from in-process values (not byte-identical)")
	}

	want := res.Plan.Graph.SIDRConnections()
	if res.Counters.Connections != want {
		t.Fatalf("shuffle connections = %d, want Σ|I_ℓ| = %d", res.Counters.Connections, want)
	}
	all := int64(len(res.Plan.Splits)) * int64(res.Plan.Part.NumKeyblocks())
	if want >= all {
		t.Fatalf("test query is not structural enough: Σ|I_ℓ| = %d is not < maps×reduces = %d", want, all)
	}
	// Both workers actually executed Map tasks.
	for _, tw := range workers {
		if tw.w.MapsDone() == 0 {
			t.Fatalf("worker did no map work; not a distributed run")
		}
	}
}

// TestShuffleAccountingMetrics pins the counters the daemon exports.
func TestShuffleAccountingMetrics(t *testing.T) {
	reg := metrics.New()
	c, _ := startCluster(t, 2, CoordinatorConfig{Metrics: reg})
	res, err := runClusterJob(t, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sidrd_shuffle_connections_total").Value(); got != res.Plan.Graph.SIDRConnections() {
		t.Fatalf("sidrd_shuffle_connections_total = %d, want %d", got, res.Plan.Graph.SIDRConnections())
	}
	if reg.Counter("sidrd_shuffle_bytes_total").Value() == 0 {
		t.Fatal("sidrd_shuffle_bytes_total stayed zero")
	}
	if reg.Counter("sidrd_cluster_tasks_dispatched_total").Value() < int64(len(res.Plan.Splits)) {
		t.Fatal("dispatched counter below split count")
	}
	// The histogram observes HTTP requests, not logical connections: a
	// batched request carrying n spills is one observation.
	if reg.Histogram("sidrd_shuffle_fetch_seconds", nil).Count() != res.Counters.ShuffleRequests {
		t.Fatal("fetch latency histogram count != shuffle requests")
	}
	if got := reg.Counter("sidrd_shuffle_requests_total").Value(); got != res.Counters.ShuffleRequests {
		t.Fatalf("sidrd_shuffle_requests_total = %d, want %d", got, res.Counters.ShuffleRequests)
	}
	if res.Counters.BatchRequests == 0 {
		t.Fatal("no batched shuffle request succeeded on a healthy cluster")
	}
	if res.Counters.BatchFallbacks != 0 {
		t.Fatalf("%d batch fallbacks on a healthy cluster", res.Counters.BatchFallbacks)
	}
	// Batching bounds requests by (reduce, worker) pairs; per-spill would
	// need Σ|I_ℓ| = Connections of them.
	maxBatched := int64(res.Plan.Part.NumKeyblocks()) * 2 // 2 workers
	if res.Counters.ShuffleRequests > maxBatched {
		t.Fatalf("shuffle requests = %d, want ≤ reduces×workers = %d", res.Counters.ShuffleRequests, maxBatched)
	}
	if res.Counters.ShuffleBytes != reg.Counter("sidrd_shuffle_bytes_total").Value() {
		t.Fatalf("job bytes %d != metric bytes %d", res.Counters.ShuffleBytes,
			reg.Counter("sidrd_shuffle_bytes_total").Value())
	}
}

// tamperSourceCount wraps a worker and lowers every non-zero shuffle
// response's kv-count annotation (the little-endian u64 at header bytes
// 10..18) by one — the §3.2.1 failure a Reduce task must refuse to
// finalize on.
func tamperSourceCount(inner *Worker) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/shuffle/") {
			inner.ServeHTTP(rw, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) >= 18 {
			if src := binary.LittleEndian.Uint64(body[10:18]); src > 0 {
				binary.LittleEndian.PutUint64(body[10:18], src-1)
			}
		}
		rw.WriteHeader(rec.Code)
		rw.Write(body)
	})
}

// TestShortKVCountNeverFinalizes: a reduce whose annotation tally comes
// up short must never finalize — the job fails with ErrCountMismatch and
// no partial is ever delivered.
func TestShortKVCountNeverFinalizes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWorker(WorkerConfig{Name: "w0", SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv := httptest.NewServer(tamperSourceCount(w))
	defer srv.Close()

	c := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout: 30 * time.Second,
		RetryBase:        time.Millisecond,
		RetryMax:         10 * time.Millisecond,
	})
	if err := c.Register("w0", srv.URL); err != nil {
		t.Fatal(err)
	}
	var partials int64
	res, err := runClusterJob(t, c, func(spec *JobSpec) {
		spec.OnPartial = func(ReduceResult) { partials++ }
	})
	if err == nil {
		t.Fatalf("job finalized despite short kv-counts: %+v", res.Counters)
	}
	if !errors.Is(err, ErrCountMismatch) {
		t.Fatalf("err = %v, want ErrCountMismatch", err)
	}
	if partials != 0 {
		t.Fatalf("%d reduces finalized with short kv-counts", partials)
	}
}

// TestWorkerLossReexecution is the fault acceptance test: one worker is
// killed mid-job (its process and spills gone); the coordinator must
// re-execute the lost Map tasks on the survivor and complete the job
// with output identical to the in-process engine.
func TestWorkerLossReexecution(t *testing.T) {
	reg := metrics.New()
	c, workers := startCluster(t, 2, CoordinatorConfig{Metrics: reg})

	// Kill w0 the moment its first Map result is accepted: the result's
	// spills die with it, before any dependent reduce can fetch them.
	c.onMapResult = func(_ string, _ int, worker string) {
		if worker == "w0" {
			workers[0].kill()
		}
	}
	res, err := runClusterJob(t, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Reexecuted == 0 {
		t.Fatal("no map tasks were re-executed after worker loss")
	}
	if got := reg.Counter("sidrd_cluster_reexecuted_total").Value(); got == 0 {
		t.Fatal("sidrd_cluster_reexecuted_total stayed zero")
	}

	local := inProcessRun(t)
	keys, vals := flatten(res)
	if !reflect.DeepEqual(keys, local.Keys) || !reflect.DeepEqual(vals, local.Values) {
		t.Fatal("post-recovery output differs from in-process engine")
	}
}

// TestStaleAttemptDiscarded pins attempt-ID idempotency: a Map result
// from a superseded attempt must not complete the task or decrement
// dependency counters.
func TestStaleAttemptDiscarded(t *testing.T) {
	plan, err := testJobPlan().NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(1)
	defer ex.Close()
	c := NewCoordinator(CoordinatorConfig{})
	j := &clusterJob{
		c:          c,
		spec:       JobSpec{ID: "job-stale", Plan: testJobPlan()},
		plan:       plan,
		ctx:        context.Background(),
		handle:     ex.NewHandle(exec.HandleOptions{}),
		maps:       make([]mapTask, len(plan.Splits)),
		enqueued:   make([]bool, plan.Part.NumKeyblocks()),
		outputs:    make([]ReduceResult, plan.Part.NumKeyblocks()),
		reduceDone: make([]bool, plan.Part.NumKeyblocks()),
		done:       make(chan struct{}),
	}
	defer j.handle.Close()
	j.reducesLeft = plan.Part.NumKeyblocks()
	before := append([]bool(nil), j.enqueued...)

	// The task was re-armed to attempt 1; a late attempt-0 result lands.
	j.maps[0].attempt = 1
	j.recordMapResult(0, 0, "w0", "http://stale", time.Now(), &MapResponse{Split: 0, Attempt: 0})
	if j.maps[0].done {
		t.Fatal("stale attempt completed the task")
	}
	if !reflect.DeepEqual(before, j.enqueued) {
		t.Fatal("stale attempt changed reduce enqueue state")
	}

	// The current attempt is accepted.
	j.recordMapResult(0, 1, "w0", "http://current", time.Now(), &MapResponse{Split: 0, Attempt: 1})
	if !j.maps[0].done || j.maps[0].url != "http://current" {
		t.Fatal("current attempt was not recorded")
	}
}

// TestHeartbeatEviction pins deadline-based eviction and re-registration.
func TestHeartbeatEviction(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: 50 * time.Millisecond})
	if err := c.Register("w0", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if n := c.AliveWorkers(); n != 1 {
		t.Fatalf("alive = %d after register, want 1", n)
	}
	if ok, _ := c.Heartbeat("w0"); !ok {
		t.Fatal("heartbeat for live worker rejected")
	}
	time.Sleep(120 * time.Millisecond)
	if n := c.AliveWorkers(); n != 0 {
		t.Fatalf("alive = %d after deadline, want 0", n)
	}
	if ok, _ := c.Heartbeat("w0"); ok {
		t.Fatal("heartbeat for evicted worker accepted; it must re-register")
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Alive {
		t.Fatalf("workers list = %+v, want one dead entry", ws)
	}
	if err := c.Register("w0", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if n := c.AliveWorkers(); n != 1 {
		t.Fatal("re-registration did not revive the worker")
	}
}

// TestLocalityAwarePlacement: a split whose block locations name a live
// worker must be placed on that worker.
func TestLocalityAwarePlacement(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	for _, n := range []string{"host-a", "host-b", "host-c"} {
		if err := c.Register(n, "http://"+n); err != nil {
			t.Fatal(err)
		}
	}
	name, _, _, err := c.pickWorker([]string{"host-b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "host-b" {
		t.Fatalf("placed on %q, want locality host %q", name, "host-b")
	}
	c.releaseWorker(name, false)

	// Without hints, least-loaded wins.
	n1, _, _, _ := c.pickWorker(nil, nil)
	n2, _, _, _ := c.pickWorker(nil, nil)
	if n1 == n2 {
		t.Fatalf("consecutive placements both chose %q despite load", n1)
	}
}

// TestNoWorkers: a run against an empty worker table fails fast.
func TestNoWorkers(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	_, err := runClusterJob(t, c, nil)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// syntheticJob builds a clusterJob over a hand-written dependency graph
// — 2 splits, each feeding both of 2 keyblocks — for white-box
// scheduling tests that must not depend on planner geometry.
func syntheticJob(c *Coordinator, h *exec.Handle) *clusterJob {
	ctx, cancel := context.WithCancel(context.Background())
	j := &clusterJob{
		c:    c,
		spec: JobSpec{ID: "job-synth"},
		plan: &core.Plan{Graph: &depgraph.Graph{
			SplitToKB:  [][]int{{0, 1}, {0, 1}},
			KBToSplits: [][]int{{0, 1}, {0, 1}},
		}},
		ctx:        ctx,
		cancel:     cancel,
		handle:     h,
		maps:       make([]mapTask, 2),
		enqueued:   make([]bool, 2),
		outputs:    make([]ReduceResult, 2),
		reduceDone: make([]bool, 2),
		done:       make(chan struct{}),
	}
	j.reducesLeft = 2
	return j
}

// TestRearmRepairsSiblingKeyblocks is the regression test for the
// re-execution hang: when rearm resets a split that feeds several
// keyblocks, the sibling keyblocks' enqueued flags must be cleared too,
// or recordMapResult skips them forever and the job never resolves.
func TestRearmRepairsSiblingKeyblocks(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	if err := c.Register("live", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	ex := exec.New(1)
	defer ex.Close()
	h := ex.NewHandle(exec.HandleOptions{})
	h.Close() // redispatches must not actually run during the test
	j := syntheticJob(c, h)

	// Both splits mapped — split 0 on a worker that is now gone, split 1
	// on the live one — and both reduces enqueued.
	j.maps[0] = mapTask{done: true, worker: "gone", url: "http://gone"}
	j.maps[1] = mapTask{done: true, worker: "live", url: "http://127.0.0.1:1"}
	j.enqueued[0], j.enqueued[1] = true, true

	// Reduce 0's fetch of split 0's spill failed; it rearms.
	j.rearm(0, nil, false)

	if j.maps[0].done || j.maps[0].attempt != 1 {
		t.Fatalf("lost split not reset for re-execution: %+v", j.maps[0])
	}
	if !j.maps[1].done || j.maps[1].attempt != 0 {
		t.Fatalf("healthy split was disturbed: %+v", j.maps[1])
	}
	if j.enqueued[0] {
		t.Fatal("rearmed keyblock still marked enqueued")
	}
	if j.enqueued[1] {
		t.Fatal("sibling keyblock not repaired: recordMapResult would skip it forever and the job would hang")
	}
	if j.counters.Reexecuted != 1 {
		t.Fatalf("reexecuted = %d, want 1", j.counters.Reexecuted)
	}
	// The redispatch hit the closed handle, which must fail the job
	// instead of leaving Run blocked on a task that will never run.
	select {
	case <-j.done:
	default:
		t.Fatal("rejected submission did not resolve the job")
	}
	if !errors.Is(j.err, ErrExecutorClosed) {
		t.Fatalf("err = %v, want ErrExecutorClosed", j.err)
	}
}

// TestStaleReduceRunClearsEnqueue: a queued runReduce that observes an
// open (re-executing) dependency must clear its enqueue flag so the
// fresh attempt's recordMapResult re-enqueues it.
func TestStaleReduceRunClearsEnqueue(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	ex := exec.New(1)
	defer ex.Close()
	h := ex.NewHandle(exec.HandleOptions{})
	defer h.Close()
	j := syntheticJob(c, h)
	j.maps[0] = mapTask{attempt: 1} // re-executing, not done
	j.maps[1] = mapTask{done: true, worker: "w", url: "http://w"}
	j.enqueued[0] = true

	j.runReduce(0) // dependency 0 open: must early-return

	if j.enqueued[0] {
		t.Fatal("stale reduce run left enqueued set; the keyblock would never re-enqueue")
	}
}

// TestReexecutedAttemptCannotDoubleSatisfy: readiness is recomputed
// from completed attempts, so a split that completed, was invalidated,
// and completed again counts once — a keyblock must not be enqueued
// while part of its I_ℓ is still open.
func TestReexecutedAttemptCannotDoubleSatisfy(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	ex := exec.New(1)
	defer ex.Close()
	h := ex.NewHandle(exec.HandleOptions{})
	h.Close() // keep enqueued reduces from actually running
	j := syntheticJob(c, h)

	// Split 0's re-executed attempt completes while split 1 is open.
	j.maps[0] = mapTask{attempt: 1}
	j.recordMapResult(0, 1, "w1", "http://w1", time.Now(), &MapResponse{Split: 0, Attempt: 1})
	if j.enqueued[0] || j.enqueued[1] {
		t.Fatal("keyblock enqueued before its full I_ℓ completed (double-satisfied dependency)")
	}
	// Split 1 completes: now both keyblocks are ready.
	j.recordMapResult(1, 0, "w1", "http://w1", time.Now(), &MapResponse{Split: 1, Attempt: 0})
	if !j.enqueued[0] || !j.enqueued[1] {
		t.Fatalf("keyblocks not enqueued after full I_ℓ completed: %v", j.enqueued)
	}
}

// TestClosedExecutorFailsJob: a job whose executor is shut down must
// fail with ErrExecutorClosed instead of blocking on tasks that will
// never run.
func TestClosedExecutorFailsJob(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	if err := c.Register("w0", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	ex := exec.New(1)
	ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Run(ctx, JobSpec{Plan: testJobPlan(), Dataset: testDataset(), Exec: ex})
	if !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("err = %v, want ErrExecutorClosed", err)
	}
}

// TestJobReleaseCleansWorkerState: once Run returns, the workers'
// cached job state and spill directories for that job are gone.
func TestJobReleaseCleansWorkerState(t *testing.T) {
	c, workers := startCluster(t, 1, CoordinatorConfig{})
	if _, err := runClusterJob(t, c, nil); err != nil {
		t.Fatal(err)
	}
	tw := workers[0]
	tw.w.mu.Lock()
	cached := len(tw.w.jobs)
	tw.w.mu.Unlock()
	if cached != 0 {
		t.Fatalf("worker still caches %d job(s) after release", cached)
	}
	entries, err := os.ReadDir(tw.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir not cleaned after release: %d entries", len(entries))
	}
}

// TestJobIDReuseReplacesStaleCache: a restarted coordinator that reuses
// a generated job ID with a different {plan,dataset} tuple must not be
// served the old job's cached plan or spills.
func TestJobIDReuseReplacesStaleCache(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Name: "w0", SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	req1 := &MapRequest{JobID: "job-1", Plan: testJobPlan(), Dataset: testDataset()}
	j1, err := w.jobFor(req1)
	if err != nil {
		t.Fatal(err)
	}
	// A spill the dead coordinator's job left behind.
	stale := w.spillPath("job-1", 0, 0, 0)
	if err := os.MkdirAll(filepath.Dir(stale), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	ds := testDataset()
	ds.Seed++ // a new job wearing the recycled ID
	req2 := &MapRequest{JobID: "job-1", Plan: testJobPlan(), Dataset: ds}
	j2, err := w.jobFor(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j1 == j2 {
		t.Fatal("stale cache entry reused for a different plan/dataset")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spill survived replacement; the new job could be served old data")
	}
	j3, err := w.jobFor(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j3 != j2 {
		t.Fatal("matching fingerprint did not reuse the cache entry")
	}
}
