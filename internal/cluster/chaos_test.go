package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sidr/internal/faultinject"
	"sidr/internal/metrics"
)

// startChaosCluster is startCluster with per-worker knobs: mutate edits
// each worker's config (e.g. attaches a fault injector) and wrap
// optionally interposes on the worker's HTTP handler.
func startChaosCluster(t *testing.T, n int, cfg CoordinatorConfig,
	mutate func(i int, wc *WorkerConfig),
	wrap func(i int, h http.Handler) http.Handler) (*Coordinator, []*testWorker) {
	t.Helper()
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
		cfg.RetryMax = 20 * time.Millisecond
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	var workers []*testWorker
	for i := 0; i < n; i++ {
		dir := t.TempDir()
		wc := WorkerConfig{Name: fmt.Sprintf("w%d", i), SpillDir: dir}
		if mutate != nil {
			mutate(i, &wc)
		}
		w, err := NewWorker(wc)
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = w
		if wrap != nil {
			if wrapped := wrap(i, h); wrapped != nil {
				h = wrapped
			}
		}
		tw := &testWorker{w: w, dir: dir, srv: httptest.NewServer(h)}
		t.Cleanup(tw.kill)
		t.Cleanup(func() { tw.w.Close() })
		if err := c.Register(wc.Name, tw.srv.URL); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, tw)
	}
	return c, workers
}

// assertMatchesInProcess fails unless the clustered result is
// byte-identical to the in-process engine on the same query.
func assertMatchesInProcess(t *testing.T, res *JobResult) {
	t.Helper()
	local := inProcessRun(t)
	keys, vals := flatten(res)
	if !reflect.DeepEqual(keys, local.Keys) || !reflect.DeepEqual(vals, local.Values) {
		t.Fatal("clustered output differs from in-process engine (not byte-identical)")
	}
}

// TestSpeculationOvertakesStraggler: one worker stalls every Map
// dispatch forever. The straggler monitor must launch a backup attempt
// on the other worker, the backup must win, the stalled primary must be
// cancelled, and every keyblock must still commit exactly once with
// byte-identical output.
func TestSpeculationOvertakesStraggler(t *testing.T) {
	reg := metrics.New()
	cfg := CoordinatorConfig{
		Metrics:             reg,
		Speculation:         true,
		SpeculationFactor:   2,
		SpeculationMin:      10 * time.Millisecond,
		SpeculationInterval: 2 * time.Millisecond,
	}
	stall := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/map" {
				// Stall until the coordinator gives up on this attempt. The
				// body must be drained first or the server never notices the
				// client abort (no background read while the body is unread).
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(rw, r)
		})
	}
	c, _ := startChaosCluster(t, 2, cfg, nil, stall)

	var (
		mu      sync.Mutex
		commits = map[int]int{}
	)
	res, err := runClusterJob(t, c, func(spec *JobSpec) {
		spec.OnPartial = func(rr ReduceResult) {
			mu.Lock()
			commits[rr.Keyblock]++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Speculated == 0 {
		t.Fatal("no backup attempt was launched for the stalled primary")
	}
	if res.Counters.SpeculativeWins == 0 {
		t.Fatal("no backup attempt overtook its stalled primary")
	}
	if got := reg.Counter("sidrd_cluster_speculative_launched_total").Value(); got == 0 {
		t.Fatal("sidrd_cluster_speculative_launched_total stayed zero")
	}
	if got := reg.Counter("sidrd_cluster_speculative_wins_total").Value(); got == 0 {
		t.Fatal("sidrd_cluster_speculative_wins_total stayed zero")
	}
	mu.Lock()
	for kb, n := range commits {
		if n != 1 {
			t.Fatalf("keyblock %d committed %d times, want exactly once", kb, n)
		}
	}
	mu.Unlock()
	assertMatchesInProcess(t, res)
}

// corruptAttemptZero interposes on the per-spill shuffle endpoint and
// flips one payload bit of every attempt-0 spill that has blocks.
// Re-executed attempts (attempt >= 1) are served verbatim. The last
// body byte is always inside the final block's CRC-covered payload;
// spills at exactly the 28-byte v3 header (zero blocks) are left alone
// — a header flip would be a structural error, not a checksum failure.
func corruptAttemptZero(h http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/shuffle/"), "/")
		if !strings.HasPrefix(r.URL.Path, "/v1/shuffle/") || len(parts) != 4 || parts[2] != "0" {
			h.ServeHTTP(rw, r)
			return
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) > 28 {
			body[len(body)-1] ^= 0x01
		}
		rw.WriteHeader(rec.Code)
		rw.Write(body)
	})
}

// TestCorruptSpillTriggersReexecution: a spill whose payload fails the
// CRC32C must be treated as a lost attempt — the source split
// re-executes and the job commits byte-identical output. The worker
// stays alive throughout (single-worker cluster: marking it dead would
// fail the job), pinning that checksum failures are not conn failures.
func TestCorruptSpillTriggersReexecution(t *testing.T) {
	reg := metrics.New()
	// Per-spill only: the corruptor targets the per-spill endpoint, and
	// the checksum→re-execute taxonomy under test lives on that path
	// (batches fall back to it rather than classify errors themselves).
	c, _ := startChaosCluster(t, 1, CoordinatorConfig{Metrics: reg, DisableBatchFetch: true}, nil,
		func(i int, h http.Handler) http.Handler { return corruptAttemptZero(h) })

	res, err := runClusterJob(t, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.CorruptSpills == 0 {
		t.Fatal("no fetch was rejected by the payload checksum")
	}
	if res.Counters.Reexecuted == 0 {
		t.Fatal("corrupt spill did not re-execute its source split")
	}
	if got := reg.Counter("sidrd_cluster_spills_corrupt_total").Value(); got == 0 {
		t.Fatal("sidrd_cluster_spills_corrupt_total stayed zero")
	}
	assertMatchesInProcess(t, res)
}

// TestQuarantineHysteresis drives the worker health scoring directly:
// repeated failures quarantine a worker, pickWorker then avoids it
// while a healthy worker exists, health probes decay the score, and the
// worker reinstates only below the (lower) reinstate threshold.
func TestQuarantineHysteresis(t *testing.T) {
	reg := metrics.New()
	healthy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	}))
	defer healthy.Close()

	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute, Metrics: reg})
	defer c.Close()
	if err := c.Register("flaky", healthy.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("good", healthy.URL); err != nil {
		t.Fatal(err)
	}

	// Two straight failures push the EWMA (α=0.3) to 0.51 > 0.5.
	c.noteOutcome("flaky", true)
	c.noteOutcome("flaky", true)
	ws := c.Workers()
	var flaky WorkerInfo
	for _, w := range ws {
		if w.Name == "flaky" {
			flaky = w
		}
	}
	if !flaky.Quarantined || flaky.FailScore <= 0.5 {
		t.Fatalf("flaky not quarantined after repeated failures: %+v", flaky)
	}
	if got := reg.Counter("sidrd_cluster_quarantines_total").Value(); got != 1 {
		t.Fatalf("quarantines_total = %d, want 1", got)
	}
	if got := reg.Gauge("sidrd_cluster_workers_quarantined").Value(); got != 1 {
		t.Fatalf("workers_quarantined gauge = %d, want 1", got)
	}

	// While a healthy worker exists, dispatches never land on the
	// quarantined one — even when the healthy worker is busier.
	for i := 0; i < 3; i++ {
		name, _, _, err := c.pickWorker(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if name != "good" {
			t.Fatalf("pick %d chose quarantined worker %q", i, name)
		}
	}
	// With every healthy worker excluded, the quarantined one is still
	// preferred over nothing.
	name, _, _, err := c.pickWorker(nil, map[string]bool{"good": true})
	if err != nil || name != "flaky" {
		t.Fatalf("fallback pick = %q, %v; want quarantined worker", name, err)
	}

	// One successful probe decays 0.51 to 0.357 — above the reinstate
	// threshold, so hysteresis keeps it quarantined.
	c.probeQuarantined(context.Background())
	if ws := c.Workers(); func() bool {
		for _, w := range ws {
			if w.Name == "flaky" {
				return !w.Quarantined
			}
		}
		return true
	}() {
		t.Fatal("worker reinstated above the reinstate threshold (no hysteresis)")
	}
	// More healthy probes decay it below 0.25: reinstated.
	for i := 0; i < 4; i++ {
		c.probeQuarantined(context.Background())
	}
	for _, w := range c.Workers() {
		if w.Name == "flaky" && w.Quarantined {
			t.Fatalf("worker still quarantined after recovery: %+v", w)
		}
	}
	if got := reg.Counter("sidrd_cluster_reinstates_total").Value(); got != 1 {
		t.Fatalf("reinstates_total = %d, want 1", got)
	}
	if got := reg.Gauge("sidrd_cluster_workers_quarantined").Value(); got != 0 {
		t.Fatalf("workers_quarantined gauge = %d, want 0", got)
	}
}

// TestScoreSurvivesReregistration: health is identity-keyed, so an
// evicted worker that re-registers keeps its fail score instead of
// laundering it through a reconnect.
func TestScoreSurvivesReregistration(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	defer c.Close()
	if err := c.Register("w0", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	c.noteOutcome("w0", true)
	c.noteOutcome("w0", true)
	c.markDead("w0")
	if err := c.Register("w0", "http://127.0.0.1:2"); err != nil {
		t.Fatal(err)
	}
	w := c.Workers()[0]
	if !w.Alive || !w.Quarantined || w.FailScore <= 0.5 {
		t.Fatalf("re-registration laundered the fail score: %+v", w)
	}
}

// TestCloseUnblocksReleaseBroadcast: a release broadcast stuck on an
// unresponsive worker must be cut short by Close instead of pinning its
// goroutines for the full timeout — Close joins them all.
func TestCloseUnblocksReleaseBroadcast(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer hang.Close()

	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	if err := c.Register("w0", hang.URL); err != nil {
		t.Fatal(err)
	}
	c.releaseAttempt(hang.URL, "job-x", 0, 0)
	done := make(chan struct{})
	go func() {
		c.releaseJob("job-x")
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	c.Close() // cancels baseCtx and joins every release goroutine
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("releaseJob still blocked after Close")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %s; the release deadline leaked past cancellation", elapsed)
	}
}

// TestChaosSoak runs the acceptance query under seeded fault schedules
// — dispatch errors, shuffle delays, slow streams, payload bit-flips, a
// worker SIGKILL mid-job, and injected hangs rescued by speculation —
// and requires byte-identical output every time. Each schedule is a
// fixed seed, so a failure reproduces exactly.
func TestChaosSoak(t *testing.T) {
	cases := []struct {
		name         string
		spec         string // coordinator-side transport chaos
		kill         bool   // SIGKILL worker 0 after its 2nd map
		hang         bool   // worker 0 hangs ~20% of maps; speculation rescues
		wantFallback bool   // ≥1 batched fetch must fall back to per-spill
	}{
		{name: "dispatch-errors", spec: "seed=101,delay=0.2:2ms,error=0.15"},
		// match=/v1/shuffle/ covers both the batch POST and the per-spill
		// GETs it falls back to, so flips chase the fetch down both paths.
		{name: "shuffle-flip", spec: "seed=202,match=/v1/shuffle/,flip=0.1"},
		{name: "slow-shuffle", spec: "seed=303,match=/v1/shuffle/,slow=0.3:1ms,delay=0.1:1ms"},
		// Every batch response gets one bit flipped mid-stream; frame/meta
		// validation must reject each and the per-spill path (unmatched by
		// the injector) must complete the job byte-identically.
		{name: "batch-flip", spec: "seed=505,match=/v1/shuffle/batch,flip=1", wantFallback: true},
		// Batch streams trickle out a byte at a time; slow is not an
		// error, so batches must still land without falling back.
		{name: "slow-batch", spec: "seed=606,match=/v1/shuffle/batch,slow=0.5:1ms,delay=0.2:1ms"},
		{name: "kill-worker", kill: true},
		{name: "hang-speculation", hang: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := CoordinatorConfig{}
			if tc.spec != "" {
				spec, err := faultinject.Parse(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Client = &http.Client{
					Transport: faultinject.New(spec).Transport(http.DefaultTransport),
				}
			}
			var workerInj *faultinject.Injector
			mutate := func(i int, wc *WorkerConfig) {
				if i != 0 {
					return
				}
				switch {
				case tc.kill:
					workerInj = faultinject.New(faultinject.Spec{KillAfterMaps: 2})
					wc.Chaos = workerInj
				case tc.hang:
					workerInj = faultinject.New(faultinject.Spec{Seed: 404, HangP: 0.2})
					wc.Chaos = workerInj
				}
			}
			if tc.hang {
				cfg.Speculation = true
				cfg.SpeculationFactor = 2
				cfg.SpeculationMin = 10 * time.Millisecond
				cfg.SpeculationInterval = 2 * time.Millisecond
			}
			c, workers := startChaosCluster(t, 3, cfg, mutate, nil)
			if tc.kill {
				// The injector's exit hook stands in for SIGKILL: the worker's
				// server and spill directory vanish mid-job. Async because a
				// handler cannot join its own server shutdown.
				workerInj.SetExit(func(int) { go workers[0].kill() })
			}
			res, err := runClusterJob(t, c, nil)
			if err != nil {
				t.Fatalf("job failed under %q chaos: %v", tc.name, err)
			}
			assertMatchesInProcess(t, res)
			if tc.kill && res.Counters.Reexecuted == 0 {
				t.Fatal("worker kill caused no re-execution")
			}
			if tc.hang && workerInj.Counts()["hang"] > 0 && res.Counters.Speculated == 0 {
				t.Fatal("injected hangs were never speculated around")
			}
			if tc.wantFallback && res.Counters.BatchFallbacks == 0 {
				t.Fatal("no corrupted batch fell back to the per-spill path")
			}
		})
	}
}
