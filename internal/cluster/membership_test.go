package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sidr/internal/exec"
	"sidr/internal/metrics"
)

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDrainReplicaHandoff is the elastic-membership flagship: with the
// shuffle gated shut, every Map completes and replicates, the worker
// hosting half the spills drains and is released (drain ≠ death), a
// late worker registers mid-reduce, the drained worker is then killed
// outright, and only after that does the shuffle open. Every dependency
// on the dead worker must be served from its replica — zero
// re-executions, byte-identical output — and the late registrant must
// have received no Map work.
func TestDrainReplicaHandoff(t *testing.T) {
	reg := metrics.New()
	gate := make(chan struct{})
	w0dead := make(chan struct{}) // lets w0's gated handlers abort so its server can close
	wrap := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/shuffle") {
				if i == 0 {
					select {
					case <-w0dead:
						http.Error(rw, "killed", http.StatusServiceUnavailable)
						return
					case <-gate:
					}
					select {
					case <-w0dead:
						http.Error(rw, "killed", http.StatusServiceUnavailable)
						return
					default:
					}
				} else {
					select {
					case <-gate:
					case <-r.Context().Done():
						return
					}
				}
			}
			h.ServeHTTP(rw, r)
		})
	}
	c, workers := startChaosCluster(t, 2, CoordinatorConfig{Metrics: reg}, nil, wrap)

	type outcome struct {
		res *JobResult
		err error
	}
	done := make(chan outcome, 1)
	ex := exec.New(4)
	t.Cleanup(ex.Close)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := c.Run(ctx, JobSpec{Plan: testJobPlan(), Dataset: testDataset(), Exec: ex})
		done <- outcome{res, err}
	}()

	// All 15 splits (30 rows / 2 per split) must commit and replicate
	// before anything else moves; the gate keeps every reduce fetch
	// pending meanwhile.
	waitFor(t, 10*time.Second, "all replicas pushed", func() bool {
		return reg.Counter("sidrd_cluster_replica_pushes_total").Value() >= 15
	})

	// Drain w0 and wait for its release. Its spills all have replicas on
	// w1, so the drain must complete even though no reduce has fetched a
	// byte yet — and must not count as a death.
	if err := c.Drain("w0"); err != nil {
		t.Fatalf("Drain(w0): %v", err)
	}
	if err := c.Drain("w0"); err != nil {
		t.Fatalf("second Drain(w0) not idempotent: %v", err)
	}
	waitFor(t, 10*time.Second, "w0 drained", func() bool {
		for _, wi := range c.Workers() {
			if wi.Name == "w0" {
				return wi.Drained
			}
		}
		return false
	})

	// A worker registering mid-reduce joins live membership but gets no
	// Map work — the maps are long done.
	lateDir := t.TempDir()
	late, err := NewWorker(WorkerConfig{Name: "late", SpillDir: lateDir})
	if err != nil {
		t.Fatal(err)
	}
	lateSrv := httptest.NewServer(late)
	t.Cleanup(lateSrv.Close)
	t.Cleanup(func() { late.Close() })
	if err := c.Register("late", lateSrv.URL); err != nil {
		t.Fatal(err)
	}

	// Now the drained worker dies for real; its spills are gone.
	close(w0dead)
	workers[0].kill()
	close(gate)

	out := <-done
	if out.err != nil {
		t.Fatalf("job failed: %v", out.err)
	}
	assertMatchesInProcess(t, out.res)
	if out.res.Counters.Reexecuted != 0 {
		t.Fatalf("Reexecuted = %d; replica fall-back should have avoided all re-execution", out.res.Counters.Reexecuted)
	}
	if out.res.Counters.ReplicaFetchFallbacks == 0 {
		t.Fatal("no dependency was served from a replica despite the primary dying")
	}
	if out.res.Counters.ReplicaPushes < 15 {
		t.Fatalf("ReplicaPushes = %d, want >= 15", out.res.Counters.ReplicaPushes)
	}
	if n := late.MapsDone(); n != 0 {
		t.Fatalf("late worker executed %d maps; mid-reduce registrants must get none", n)
	}
}

// TestDrainLastLocalWorker: when the only split-local worker is
// draining, dispatch must fall back to a healthy remote worker rather
// than the draining one (or fail).
func TestDrainLastLocalWorker(t *testing.T) {
	reg := metrics.New()
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute, Metrics: reg})
	t.Cleanup(c.Close)
	if err := c.RegisterNode("wa", "http://wa", "node-a"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterNode("wb", "http://wb", "node-b"); err != nil {
		t.Fatal(err)
	}
	name, _, local, err := c.pickWorker([]string{"node-a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "wa" || !local {
		t.Fatalf("pick = %q (local=%v), want node-local wa", name, local)
	}
	c.releaseWorker(name, false)

	if err := c.Drain("wa"); err != nil {
		t.Fatal(err)
	}
	name, _, local, err = c.pickWorker([]string{"node-a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "wb" || local {
		t.Fatalf("pick = %q (local=%v), want remote wb while wa drains", name, local)
	}
	c.releaseWorker(name, false)
	if got := reg.Counter("sidrd_cluster_dispatch_local_total").Value(); got != 1 {
		t.Fatalf("dispatch_local_total = %d, want 1", got)
	}
	if got := reg.Counter("sidrd_cluster_dispatch_remote_total").Value(); got != 1 {
		t.Fatalf("dispatch_remote_total = %d, want 1", got)
	}
}

// TestDrainEndpoint drives the drain state machine over HTTP: POST
// /v1/drain is idempotent, 404s for unknown workers, and the heartbeat
// response tells the draining worker about it.
func TestDrainEndpoint(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	t.Cleanup(c.Close)
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	if err := c.Register("w0", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/drain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"name":"nobody"}`); code != http.StatusNotFound {
		t.Fatalf("drain of unknown worker = %d, want 404", code)
	}
	if code := post(`{"name":"w0"}`); code != http.StatusOK {
		t.Fatalf("drain = %d, want 200", code)
	}
	if code := post(`{"name":"w0"}`); code != http.StatusOK {
		t.Fatalf("double drain = %d, want 200 (idempotent)", code)
	}
	ok, draining := c.Heartbeat("w0")
	if ok && !draining {
		t.Fatal("heartbeat of a draining worker did not carry the draining flag")
	}
	if !ok && !draining {
		t.Fatal("released drained worker answered as plain unknown; it would re-register and undo the drain")
	}
	// An idle worker has nothing to hand off, so the watcher releases it
	// within a poll tick. From then on its heartbeats must say "drained,
	// exit" (410 on the wire) — never "unknown, re-register".
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, draining = c.Heartbeat("w0")
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle drained worker never released")
		}
		time.Sleep(drainPoll)
	}
	if !draining {
		t.Fatal("post-release heartbeat lost the draining flag")
	}
	resp, err := http.Post(srv.URL+"/v1/cluster/heartbeat", "application/json",
		strings.NewReader(`{"name":"w0"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("post-release heartbeat = %d, want 410", resp.StatusCode)
	}
}

// TestDrainIdleWorkerExitsInsteadOfRejoining drives the full worker
// loop: a coordinator-initiated drain of an idle worker completes (and
// releases the worker) before the worker's next heartbeat, so the
// worker only ever learns of the drain from the post-release 410. It
// must exit its Start loop rather than re-register as a fresh worker.
func TestDrainIdleWorkerExitsInsteadOfRejoining(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: time.Minute})
	t.Cleanup(c.Close)
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	dir := t.TempDir()
	w, err := NewWorker(WorkerConfig{
		Name: "idle", SpillDir: dir,
		AdvertiseURL:   "http://127.0.0.1:1",
		CoordinatorURL: srv.URL,
		Heartbeat:      200 * time.Millisecond, // >> drainPoll: release wins the race
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	started := make(chan struct{})
	go func() {
		w.Start(ctx)
		close(started)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for c.AliveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Drain("idle"); err != nil {
		t.Fatal(err)
	}

	// The worker's loop must terminate on the drain verdict...
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker loop still running after drain+release")
	}
	select {
	case <-w.DrainSignal():
	default:
		t.Fatal("drain was never signaled to the worker")
	}
	// ...and the worker-side Drain must complete against the released
	// record (idempotent 200, then the 410 release verdict).
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := w.Drain(dctx); err != nil {
		t.Fatalf("worker-side drain after release: %v", err)
	}
	// No fresh registration may have snuck in behind the drain.
	for _, wi := range c.Workers() {
		if wi.Name == "idle" && wi.Alive {
			t.Fatal("drained idle worker re-registered as alive")
		}
	}
}

// TestChurnSoak runs jobs back-to-back while the membership churns
// continuously underneath them — a new worker registers and an old one
// drains every few tens of milliseconds, plus one outright SIGKILL —
// and requires byte-identical output from every job, no orphaned
// spill temp files, and fully released spill directories on the
// workers still alive at the end.
func TestChurnSoak(t *testing.T) {
	reg := metrics.New()
	c, seed := startCluster(t, 3, CoordinatorConfig{Metrics: reg})
	t.Cleanup(c.Close)

	type member struct {
		name string
		tw   *testWorker
	}
	var (
		mu    sync.Mutex
		alive []member
	)
	for i, tw := range seed {
		alive = append(alive, member{fmt.Sprintf("w%d", i), tw})
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	var ticks atomic.Int64
	churn.Add(1)
	go func() {
		defer churn.Done()
		next := 0
		var draining []member
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			ticks.Add(1)
			// Join: a brand-new worker registers mid-job.
			dir, err := os.MkdirTemp(t.TempDir(), "churn-*")
			if err != nil {
				t.Error(err)
				return
			}
			name := fmt.Sprintf("churn-%d", next)
			next++
			w, err := NewWorker(WorkerConfig{Name: name, SpillDir: dir})
			if err != nil {
				t.Error(err)
				return
			}
			tw := &testWorker{w: w, srv: httptest.NewServer(w), dir: dir}
			t.Cleanup(tw.kill)
			t.Cleanup(func() { w.Close() })
			if err := c.Register(name, tw.srv.URL); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			alive = append(alive, member{name, tw})

			// Leave: drain the oldest member (keeping at least two), and
			// once mid-soak kill one with no drain at all.
			if len(alive) > 2 {
				old := alive[0]
				alive = alive[1:]
				if i == 2 {
					old.tw.kill()
				} else if err := c.Drain(old.name); err == nil {
					draining = append(draining, old)
				}
			}
			mu.Unlock()

			// Reap: drained members lose their disk, like a process exit.
			var still []member
			for _, m := range draining {
				released := false
				for _, wi := range c.Workers() {
					if wi.Name == m.name && wi.Drained {
						released = true
					}
				}
				if released {
					m.tw.kill()
				} else {
					still = append(still, m)
				}
			}
			draining = still
		}
	}()

	// Keep running jobs until the churn schedule has demonstrably done
	// its work: at least 8 join/leave cycles, which covers the tick-2
	// hard kill and several drains.
	for round := 0; round < 4 || (ticks.Load() < 8 && round < 40); round++ {
		res, err := runClusterJob(t, c, nil)
		if err != nil {
			t.Fatalf("round %d failed under churn: %v", round, err)
		}
		assertMatchesInProcess(t, res)
	}
	close(stop)
	churn.Wait()
	if ticks.Load() < 8 {
		t.Fatalf("churn driver only ran %d cycles", ticks.Load())
	}

	// Join release broadcasts, then audit the survivors: every job was
	// released, so their spill trees must hold no packs and no temps.
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, m := range alive {
		filepath.WalkDir(m.tw.dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if strings.HasPrefix(d.Name(), ".pack-") {
				t.Errorf("worker %s: orphan temp %s survived the soak", m.name, path)
			} else if strings.HasSuffix(d.Name(), ".pack") {
				t.Errorf("worker %s: unreleased pack %s survived the soak", m.name, path)
			}
			return nil
		})
	}
}
