package cluster

import (
	"context"
	"net"
	"net/http"
	"time"

	"sidr/internal/metrics"
)

// NewTransport builds an http.RoundTripper with phase-scoped timeouts
// instead of a whole-request deadline: dialing (and TLS handshaking)
// and waiting for response headers are each bounded, while reading an
// arbitrarily large response body is not. A blanket http.Client.Timeout
// would cut off slow-but-progressing streams; a half-dead peer that
// accepts the connection and then goes silent is still detected by the
// header timeout. Shuffle responses carry a precomputed Content-Length
// and send headers before streaming, so the header timeout never
// false-positives on a large batch stream.
//
// The pool is sized for shuffle fan-in: a Reduce wave hits every worker
// at once, and keep-alive reuse across waves is what makes the batched
// fetch path one TCP connection per (reduce, worker) stream instead of
// a dial per spill.
//
// Zero durations pick the defaults: 2s dial, 2s TLS handshake, 5s
// response header. A negative headerTimeout disables the header bound
// entirely — used by the dispatch client, whose responses arrive only
// after Map execution finishes.
func NewTransport(dialTimeout, headerTimeout time.Duration) *http.Transport {
	return NewTransportWithStats(dialTimeout, headerTimeout, nil)
}

// NewTransportWithStats is NewTransport with an optional dial counter:
// every new TCP connection increments dials, so pool effectiveness is
// observable (requests served minus dials made = connections reused).
func NewTransportWithStats(dialTimeout, headerTimeout time.Duration, dials *metrics.Counter) *http.Transport {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if headerTimeout == 0 {
		headerTimeout = 5 * time.Second
	} else if headerTimeout < 0 {
		headerTimeout = 0 // net/http: zero disables the bound
	}
	dialer := &net.Dialer{
		Timeout:   dialTimeout,
		KeepAlive: 15 * time.Second,
	}
	dial := dialer.DialContext
	if dials != nil {
		dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := dialer.DialContext(ctx, network, addr)
			if err == nil {
				dials.Inc()
			}
			return conn, err
		}
	}
	return &http.Transport{
		DialContext:           dial,
		TLSHandshakeTimeout:   dialTimeout,
		ResponseHeaderTimeout: headerTimeout,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   32,
		IdleConnTimeout:       30 * time.Second,
	}
}
