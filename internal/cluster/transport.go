package cluster

import (
	"net"
	"net/http"
	"time"
)

// NewTransport builds an http.RoundTripper with phase-scoped timeouts
// instead of a whole-request deadline: dialing (and TLS handshaking)
// and waiting for response headers are each bounded, while reading an
// arbitrarily large response body is not. A blanket http.Client.Timeout
// would cut off slow-but-progressing streams; a half-dead peer that
// accepts the connection and then goes silent is still detected by the
// header timeout.
//
// Zero durations pick the defaults: 2s dial, 2s TLS handshake, 5s
// response header.
func NewTransport(dialTimeout, headerTimeout time.Duration) *http.Transport {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if headerTimeout <= 0 {
		headerTimeout = 5 * time.Second
	}
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   dialTimeout,
			KeepAlive: 15 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   dialTimeout,
		ResponseHeaderTimeout: headerTimeout,
		MaxIdleConnsPerHost:   8,
		IdleConnTimeout:       30 * time.Second,
	}
}
