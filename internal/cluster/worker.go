package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/datagen"
	"sidr/internal/faultinject"
	"sidr/internal/join"
	"sidr/internal/kv"
	"sidr/internal/mapreduce"
	"sidr/internal/ncfile"
	"sidr/internal/spillstore"
)

// WorkerConfig configures one worker process (or in-process instance).
type WorkerConfig struct {
	// Name is the worker's stable identity. Locality hints on input
	// splits are matched against it, so naming workers after the hosts
	// of an hdfs.Namespace gives locality-aware Map placement.
	Name string
	// Node is the worker's locality identity: the hdfs.Namespace node it
	// is co-located with. Split host lists are matched against Node
	// first, then Name. Empty means placement-blind.
	Node string
	// SpillDir is where Map attempt spills are materialised and served
	// from. Required.
	SpillDir string
	// AdvertiseURL is the base URL the coordinator should dial this
	// worker at (e.g. "http://127.0.0.1:7101").
	AdvertiseURL string
	// CoordinatorURL, when set, is registered with and heartbeated by
	// Start.
	CoordinatorURL string
	// Heartbeat is the heartbeat period (default 1s).
	Heartbeat time.Duration
	// Client performs registration/heartbeat requests. The default uses
	// NewTransport's phase-scoped timeouts (dial, TLS handshake,
	// response header) rather than a whole-request deadline, tuned by
	// DialTimeout and HeaderTimeout.
	Client *http.Client
	// DialTimeout bounds dialing and TLS handshaking on the default
	// client (0 = 2s). Ignored when Client is set.
	DialTimeout time.Duration
	// HeaderTimeout bounds the wait for response headers on the default
	// client (0 = 5s). Ignored when Client is set.
	HeaderTimeout time.Duration
	// Chaos, when set, injects worker-side faults into Map execution:
	// scheduled kills, delays and hangs (see internal/faultinject).
	Chaos *faultinject.Injector
	// SpillCompress DEFLATEs each spill block (kv codec v3 per-block
	// compression). Trades Map-side CPU for shuffle bytes; the serving
	// path is unaffected either way (spills are served as opaque bytes).
	SpillCompress bool
	// SpillBlockPairs overrides the v3 codec's pairs-per-block framing
	// (0 = kv.DefaultBlockPairs).
	SpillBlockPairs int
	// Logf, when set, receives worker lifecycle logging.
	Logf func(format string, args ...any)
}

// Worker executes Map task attempts on behalf of a coordinator and
// serves the resulting partition+ keyblock spills over the shuffle
// endpoint. It is an http.Handler; mount it on any server.
type Worker struct {
	cfg      WorkerConfig
	mux      *http.ServeMux
	client   *http.Client
	store    *spillstore.Store
	mapsDone atomic.Int64
	running  atomic.Int64

	// draining refuses new Map dispatches (503) while spills keep being
	// served. drainCh closes (once) when the coordinator asks this
	// worker to drain via the heartbeat response.
	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{}

	mu   sync.Mutex
	jobs map[string]*workerJob
}

// workerJob caches one job's derived plan and opened dataset so every
// Map attempt of the job shares them. The entry is bound to the
// {Plan,Dataset} tuple via fingerprint: a request reusing the job ID
// with a different tuple (a restarted coordinator regenerating IDs)
// replaces the entry — and its spills — instead of silently executing
// against the stale plan. Entries live until released (POST
// /v1/release) or replaced.
type workerJob struct {
	fingerprint string // canonical {Plan,Dataset,Dataset2} encoding
	plan        *core.Plan
	input       mapreduce.MapInput
	closer      io.Closer // ncfile handle for file datasets
	// reader2/closer2 serve a join's side-B dataset (nil otherwise).
	reader2 mapreduce.RecordReader
	closer2 io.Closer
}

// jobFingerprint canonically encodes the plan-and-dataset tuple a job's
// cached state is valid for.
func jobFingerprint(req *MapRequest) string {
	b, _ := json.Marshal(struct {
		Plan     JobPlan      `json:"plan"`
		Dataset  DatasetSpec  `json:"dataset"`
		Dataset2 *DatasetSpec `json:"dataset2,omitempty"`
	}{req.Plan, req.Dataset, req.Dataset2})
	return string(b)
}

// NewWorker builds a worker. SpillDir is created if missing.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if cfg.SpillDir == "" {
		return nil, fmt.Errorf("cluster: worker needs a spill dir")
	}
	if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: NewTransport(cfg.DialTimeout, cfg.HeaderTimeout)}
	}
	store, err := spillstore.New(cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, client: cfg.Client, store: store,
		drainCh: make(chan struct{}), jobs: make(map[string]*workerJob)}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/v1/map", w.handleMap)
	// The exact-path batch pattern outranks the per-spill subtree on the
	// mux (longest pattern wins).
	w.mux.HandleFunc(BatchShufflePath, w.handleShuffleBatch)
	w.mux.HandleFunc("/v1/shuffle/", w.handleShuffle)
	w.mux.HandleFunc("/v1/release", w.handleRelease)
	w.mux.HandleFunc("/v1/replicate", w.handleReplicate)
	w.mux.HandleFunc("/v1/pack/", w.handlePack)
	w.mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return w, nil
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// MapsDone returns how many Map attempts completed successfully.
func (w *Worker) MapsDone() int64 { return w.mapsDone.Load() }

// Close releases cached dataset handles and open spill pack handles.
// Spill files are left on disk; the owner of SpillDir reclaims them.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for id, j := range w.jobs {
		if j.closer != nil {
			if err := j.closer.Close(); err != nil && first == nil {
				first = err
			}
		}
		if j.closer2 != nil {
			if err := j.closer2.Close(); err != nil && first == nil {
				first = err
			}
		}
		delete(w.jobs, id)
	}
	if err := w.store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Start registers with the coordinator and heartbeats until ctx is
// done. It retries registration until it succeeds, and re-registers
// when the coordinator forgets the worker (e.g. after a restart) —
// unless the worker is draining, in which case being forgotten means
// the drain completed and the loop exits instead of rejoining.
func (w *Worker) Start(ctx context.Context) {
	if w.cfg.CoordinatorURL == "" {
		return
	}
	registered := false
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		if !registered {
			registered = w.register(ctx)
		} else if !w.heartbeat(ctx) {
			if w.draining.Load() || w.drainSignaled() {
				return // released (or told to drain): the coordinator let us go
			}
			registered = false
			continue // re-register immediately
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (w *Worker) register(ctx context.Context) bool {
	body, _ := json.Marshal(RegisterRequest{Name: w.cfg.Name, URL: w.cfg.AdvertiseURL, Node: w.cfg.Node})
	ok := w.post(ctx, "/v1/cluster/register", body)
	if ok {
		w.logf("registered with %s as %q", w.cfg.CoordinatorURL, w.cfg.Name)
	}
	return ok
}

// heartbeat returns false when the worker should re-register (or, if
// draining, exit). A heartbeat response carrying the draining flag
// signals a coordinator-initiated drain.
func (w *Worker) heartbeat(ctx context.Context) bool {
	body, _ := json.Marshal(HeartbeatRequest{Name: w.cfg.Name})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(w.cfg.CoordinatorURL, "/")+"/v1/cluster/heartbeat", strings.NewReader(string(body)))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusGone {
		// Drained and released by the coordinator — possibly before we
		// ever saw a draining heartbeat (idle-worker drain completes in
		// one watcher tick). Exit the drain path; never re-register.
		w.signalDrain()
		return false
	}
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var hb HeartbeatResponse
	if json.NewDecoder(resp.Body).Decode(&hb) == nil && hb.Draining {
		w.signalDrain()
	}
	return true
}

// drainSignaled reports whether a drain has been signaled (by SIGTERM,
// Drain, or a coordinator heartbeat) without blocking.
func (w *Worker) drainSignaled() bool {
	select {
	case <-w.drainCh:
		return true
	default:
		return false
	}
}

// signalDrain closes the drain channel exactly once.
func (w *Worker) signalDrain() {
	w.drainOnce.Do(func() { close(w.drainCh) })
}

// DrainSignal is closed when the coordinator asks this worker to drain
// (via the heartbeat response). The process main should then run Drain.
func (w *Worker) DrainSignal() <-chan struct{} { return w.drainCh }

// Draining reports whether the worker is refusing new Map dispatches.
func (w *Worker) Draining() bool { return w.draining.Load() }

// SweepTemps removes orphaned spill temp files older than olderThan.
func (w *Worker) SweepTemps(olderThan time.Duration) int { return w.store.SweepTemps(olderThan) }

// Drain performs the worker side of a graceful exit: stop accepting Map
// dispatches, tell the coordinator to drain this worker (idempotent if
// the drain was coordinator-initiated), sweep orphaned temp files, then
// keep heartbeating — and serving spills — until the coordinator
// releases us (heartbeat 404) or ctx expires. The HTTP server must stay
// up throughout; shut it down only after Drain returns.
func (w *Worker) Drain(ctx context.Context) error {
	w.draining.Store(true)
	w.signalDrain()
	if w.cfg.CoordinatorURL == "" {
		return nil
	}
	body, _ := json.Marshal(DrainRequest{Name: w.cfg.Name})
	if !w.post(ctx, "/v1/drain", body) {
		return fmt.Errorf("cluster: drain request to %s failed", w.cfg.CoordinatorURL)
	}
	w.logf("draining: waiting for spills to be fetched or replicated away")
	w.store.SweepTemps(time.Minute)
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		if !w.heartbeat(ctx) {
			// Released (or the coordinator vanished — either way there is
			// nothing left to hand off to).
			w.logf("drained: released by coordinator")
			return nil
		}
	}
}

func (w *Worker) post(ctx context.Context, path string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(w.cfg.CoordinatorURL, "/")+path, strings.NewReader(string(body)))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// jobFor returns the cached job state, building it from the request's
// plan tuple and dataset spec on first use. A cached entry is reused
// only when its fingerprint matches the request; on mismatch the stale
// entry and its spills are dropped first, so a restarted coordinator
// that reuses a generated job ID never runs against the old job's plan
// or is served its spills.
func (w *Worker) jobFor(req *MapRequest) (*workerJob, error) {
	fp := jobFingerprint(req)
	w.mu.Lock()
	defer w.mu.Unlock()
	if j, ok := w.jobs[req.JobID]; ok {
		if j.fingerprint == fp {
			return j, nil
		}
		w.logf("job %s re-submitted with a different plan/dataset; dropping stale state", req.JobID)
		w.releaseLocked(req.JobID)
	}
	plan, err := req.Plan.NewPlan()
	if err != nil {
		return nil, err
	}
	reader, closer, err := OpenDataset(req.Dataset)
	if err != nil {
		return nil, err
	}
	j := &workerJob{fingerprint: fp, plan: plan, closer: closer}
	if plan.Join != nil {
		if req.Dataset2 == nil {
			if closer != nil {
				closer.Close()
			}
			return nil, fmt.Errorf("cluster: join job %s has no dataset2", req.JobID)
		}
		j.reader2, j.closer2, err = OpenDataset(*req.Dataset2)
		if err != nil {
			if closer != nil {
				closer.Close()
			}
			return nil, err
		}
		j.input = mapreduce.MapInput{Query: plan.Query, Space: plan.Space, Part: plan.Part, Reader: reader}
		w.jobs[req.JobID] = j
		return j, nil
	}
	op, err := plan.Query.Op()
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	j.input = mapreduce.MapInput{
		Query:   plan.Query,
		Op:      op,
		Space:   plan.Space,
		Part:    plan.Part,
		Reader:  reader,
		Combine: true,
	}
	w.jobs[req.JobID] = j
	return j, nil
}

// releaseLocked drops one job's cached state, pack handles and spill
// directory. Caller holds w.mu.
func (w *Worker) releaseLocked(jobID string) {
	if j, ok := w.jobs[jobID]; ok {
		if j.closer != nil {
			j.closer.Close()
		}
		if j.closer2 != nil {
			j.closer2.Close()
		}
		delete(w.jobs, jobID)
	}
	w.store.ReleaseJob(jobID)
	os.RemoveAll(filepath.Join(w.cfg.SpillDir, jobID))
}

// handleRelease drops a resolved job's cached state and spills:
// POST /v1/release {"job_id": ...}. With both "split" and "attempt"
// set, the release is scoped to that single attempt's spill directory —
// the cached job state survives, because the job is still running (a
// speculation loser or superseded attempt is being reclaimed).
// Releasing an unknown job is a no-op (the coordinator broadcasts
// releases to every live worker).
func (w *Worker) handleRelease(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad release request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !validJobID(req.JobID) {
		http.Error(rw, "bad job id", http.StatusBadRequest)
		return
	}
	if req.Split != nil && req.Attempt != nil {
		if *req.Split < 0 || *req.Attempt < 0 {
			http.Error(rw, "bad split/attempt", http.StatusBadRequest)
			return
		}
		w.store.ReleaseAttempt(req.JobID, *req.Split, *req.Attempt)
		os.RemoveAll(filepath.Join(w.cfg.SpillDir, req.JobID,
			fmt.Sprintf("%d-%d", *req.Split, *req.Attempt)))
		// Release is also the natural sweep point for temp files a
		// crashed or aborted attempt orphaned.
		w.store.SweepTemps(time.Minute)
		w.logf("released job %s split %d attempt %d", req.JobID, *req.Split, *req.Attempt)
		rw.WriteHeader(http.StatusOK)
		return
	}
	w.mu.Lock()
	w.releaseLocked(req.JobID)
	w.mu.Unlock()
	w.store.SweepTemps(time.Minute)
	w.logf("released job %s", req.JobID)
	rw.WriteHeader(http.StatusOK)
}

// OpenDataset resolves a DatasetSpec into a record reader. The
// returned closer is non-nil for file datasets.
func OpenDataset(spec DatasetSpec) (mapreduce.RecordReader, io.Closer, error) {
	switch spec.Kind {
	case "file":
		f, err := ncfile.Open(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return &mapreduce.FileReader{File: f, Var: spec.Variable}, f, nil
	case "synthetic":
		fn, err := GeneratorFunc(spec)
		if err != nil {
			return nil, nil, err
		}
		return &mapreduce.FuncReader{Fn: fn}, nil, nil
	default:
		return nil, nil, fmt.Errorf("cluster: unknown dataset kind %q", spec.Kind)
	}
}

// GeneratorFunc resolves a synthetic spec's generator to its pure
// coordinate function. Generators are deterministic in (seed,
// coordinate), so every worker — and the coordinator's own registry —
// reproduces the same dataset bit-identically from the spec alone.
func GeneratorFunc(spec DatasetSpec) (func(coords.Coord) float64, error) {
	switch spec.Generator {
	case "windspeed":
		return datagen.Windspeed(spec.Seed), nil
	case "gaussian":
		mean, std := spec.Mean, spec.Std
		if std == 0 {
			std = 1
		}
		return datagen.Gaussian(spec.Seed, mean, std), nil
	case "temperature":
		return datagen.Temperature(spec.Seed), nil
	case "evenkeyed":
		return datagen.EvenKeyed(spec.Seed), nil
	case "zipf":
		return datagen.Zipf(spec.Seed, spec.Skew), nil
	case "integers":
		return datagen.Integers(spec.Seed), nil
	default:
		return nil, fmt.Errorf("cluster: unknown synthetic generator %q", spec.Generator)
	}
}

// handleMap executes one Map task attempt: run the shared ExecMap path,
// spill each fed keyblock's pairs with the kv codec (kv-count annotation
// in the header), and report the outputs. A spill is written for every
// keyblock in the plan's SplitToKB[split] — even empty ones — so a
// Reduce task performs exactly |I_ℓ| fetches and its annotation tally is
// complete.
func (w *Worker) handleMap(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if w.draining.Load() {
		// Draining: no new work, but existing spills stay fetchable.
		http.Error(rw, "worker is draining", http.StatusServiceUnavailable)
		return
	}
	var req MapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad map request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.JobID == "" || !validJobID(req.JobID) {
		http.Error(rw, "bad job id", http.StatusBadRequest)
		return
	}
	j, err := w.jobFor(&req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Split < 0 || req.Split >= len(j.plan.Splits) {
		http.Error(rw, fmt.Sprintf("split %d out of range [0,%d)", req.Split, len(j.plan.Splits)), http.StatusBadRequest)
		return
	}

	w.running.Add(1)
	defer w.running.Add(-1)
	if w.cfg.Chaos != nil {
		// The injector may delay, hang until the request is abandoned, or
		// kill the process here — before any spill is written, so a
		// chaosed attempt never leaves partial output behind.
		if err := w.cfg.Chaos.BeforeMap(r.Context()); err != nil {
			http.Error(rw, "chaos: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	var outs []mapreduce.MapOut
	var records int64
	rank := j.plan.Space.Shape.Rank()
	if jp := j.plan.Join; jp != nil {
		// Join path: the split index picks the side and its reader; spill
		// keys carry the trailing side bit.
		side := jp.Side(req.Split)
		reader := j.input.Reader
		if side == 1 {
			reader = j.reader2
		}
		jouts, n, err := join.ExecMap(jp, side, reader, j.plan.Splits[req.Split].Slab, r.Context())
		if err != nil {
			http.Error(rw, "join map execution: "+err.Error(), http.StatusInternalServerError)
			return
		}
		outs = make([]mapreduce.MapOut, len(jouts))
		for kb, o := range jouts {
			outs[kb] = mapreduce.MapOut{Pairs: o.Pairs, SourceCount: o.SourceCount}
		}
		records, rank = n, jp.SpillRank()
	} else {
		in := j.input
		in.Ctx = r.Context()
		var err error
		outs, records, err = mapreduce.ExecMap(in, j.plan.Splits[req.Split])
		if err != nil {
			http.Error(rw, "map execution: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	resp := MapResponse{JobID: req.JobID, Split: req.Split, Attempt: req.Attempt, Records: records}
	pw, err := w.store.Begin(req.JobID, req.Split, req.Attempt)
	if err != nil {
		http.Error(rw, "spill store: "+err.Error(), http.StatusInternalServerError)
		return
	}
	opts := kv.V3Options{BlockPairs: w.cfg.SpillBlockPairs, Compress: w.cfg.SpillCompress}
	for _, kb := range j.plan.Graph.SplitToKB[req.Split] {
		out := outs[kb]
		n, err := pw.Append(kb, func(dst io.Writer) error {
			return kv.WriteSpillV3(dst, rank, out.SourceCount, out.Pairs, opts)
		})
		if err != nil {
			pw.Abort()
			http.Error(rw, "spill write: "+err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Outputs = append(resp.Outputs, KeyblockMeta{
			Keyblock:    kb,
			Pairs:       len(out.Pairs),
			SourceCount: out.SourceCount,
			Bytes:       n,
		})
	}
	if err := pw.Commit(); err != nil {
		http.Error(rw, "spill commit: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.mapsDone.Add(1)
	w.logf("map job=%s split=%d attempt=%d records=%d keyblocks=%d",
		req.JobID, req.Split, req.Attempt, records, len(resp.Outputs))
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}

// spillPath is the legacy per-keyblock layout:
// spillDir/job/split-attempt/kb-N.spill. Map attempts no longer write
// it (they append to a spillstore pack), but the serving path still
// falls back to it so pre-pack spills and directly-written fixtures
// stay fetchable.
func (w *Worker) spillPath(jobID string, split, attempt, kb int) string {
	return filepath.Join(w.cfg.SpillDir, jobID,
		fmt.Sprintf("%d-%d", split, attempt), fmt.Sprintf("kb-%d.spill", kb))
}

// validJobID rejects path-traversal in the url-embedded job id.
func validJobID(id string) bool {
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return id != ""
}

// openSpill resolves one spill to a ReadSeeker over its exact on-disk
// bytes: the pack store first (a SectionReader over the shared pack
// handle — zero copy, zero re-decode), then the legacy per-keyblock
// layout. closer is nil for pack entries; the store owns that handle.
func (w *Worker) openSpill(job string, split, attempt, kb int) (src io.ReadSeeker, closer io.Closer, size int64, mtime time.Time, err error) {
	sr, mt, err := w.store.Open(job, split, attempt, kb)
	if err == nil {
		return sr, nil, sr.Size(), mt, nil
	}
	if !errors.Is(err, spillstore.ErrNotFound) {
		return nil, nil, 0, time.Time{}, err
	}
	f, ferr := os.Open(w.spillPath(job, split, attempt, kb))
	if ferr != nil {
		return nil, nil, 0, time.Time{}, spillstore.ErrNotFound
	}
	info, ferr := f.Stat()
	if ferr != nil {
		f.Close()
		return nil, nil, 0, time.Time{}, ferr
	}
	return f, f, info.Size(), info.ModTime(), nil
}

// handleShuffle streams one spill: GET /v1/shuffle/{job}/{split}/{attempt}/{kb}.
// ServeContent sets an exact Content-Length (and handles ranges), so
// the coordinator's response-header timeout never waits on an unsized
// stream.
func (w *Worker) handleShuffle(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "GET only", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/shuffle/"), "/")
	if len(parts) != 4 || !validJobID(parts[0]) {
		http.Error(rw, "want /v1/shuffle/{job}/{split}/{attempt}/{kb}", http.StatusBadRequest)
		return
	}
	nums := make([]int, 3)
	for i, s := range parts[1:] {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(rw, "bad shuffle path component "+s, http.StatusBadRequest)
			return
		}
		nums[i] = n
	}
	src, closer, _, mtime, err := w.openSpill(parts[0], nums[0], nums[1], nums[2])
	if err != nil {
		http.Error(rw, "no such spill", http.StatusNotFound)
		return
	}
	if closer != nil {
		defer closer.Close()
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(rw, r, "", mtime, src)
}

// handlePack streams one attempt's entire pack file:
// GET /v1/pack/{job}/{split}/{attempt}. The replica install path pulls
// this — one transfer per attempt instead of one per keyblock — and the
// pack's own directory + CRC trailer make the copy self-validating.
func (w *Worker) handlePack(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "GET only", http.StatusMethodNotAllowed)
		return
	}
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/pack/"), "/")
	if len(parts) != 3 || !validJobID(parts[0]) {
		http.Error(rw, "want /v1/pack/{job}/{split}/{attempt}", http.StatusBadRequest)
		return
	}
	nums := make([]int, 2)
	for i, s := range parts[1:] {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(rw, "bad pack path component "+s, http.StatusBadRequest)
			return
		}
		nums[i] = n
	}
	src, mtime, err := w.store.OpenPack(parts[0], nums[0], nums[1])
	if err != nil {
		http.Error(rw, "no such pack", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(rw, r, "", mtime, src)
}

// handleReplicate installs a replica of another worker's attempt pack:
// POST /v1/replicate {job_id, split, attempt, source_url}. The worker
// pulls the pack from the source, installs it through the store's
// structural validation (directory + CRC trailer), then re-verifies
// every keyblock through the kv v3 checksum path before acknowledging —
// a replica the coordinator counts on must be provably servable.
func (w *Worker) handleReplicate(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ReplicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad replicate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !validJobID(req.JobID) || req.Split < 0 || req.Attempt < 0 || req.SourceURL == "" {
		http.Error(rw, "bad replicate request", http.StatusBadRequest)
		return
	}
	url := strings.TrimSuffix(req.SourceURL, "/") + PackPath(req.JobID, req.Split, req.Attempt)
	get, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		http.Error(rw, "bad source url: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := w.client.Do(get)
	if err != nil {
		http.Error(rw, "pull pack: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		http.Error(rw, fmt.Sprintf("source returned %d", resp.StatusCode), http.StatusBadGateway)
		return
	}
	n, kbs, err := w.store.Install(req.JobID, req.Split, req.Attempt, resp.Body)
	if err != nil {
		http.Error(rw, "install pack: "+err.Error(), http.StatusBadGateway)
		return
	}
	for _, kb := range kbs {
		sr, _, err := w.store.Open(req.JobID, req.Split, req.Attempt, kb)
		if err == nil {
			_, _, err = kv.ReadSpill(sr)
		}
		if err != nil {
			w.store.ReleaseAttempt(req.JobID, req.Split, req.Attempt)
			http.Error(rw, fmt.Sprintf("replica verify kb %d: %v", kb, err), http.StatusBadGateway)
			return
		}
	}
	w.logf("installed replica %s/%d attempt %d (%d bytes, %d keyblocks) from %s",
		req.JobID, req.Split, req.Attempt, n, len(kbs), req.SourceURL)
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(ReplicateResponse{Bytes: n})
}

// handleShuffleBatch streams a Reduce task's whole spill subset from
// this worker in one response: POST /v1/shuffle/batch with a
// BatchFetchRequest body. Frames are emitted in request order — the
// coordinator's merge is order-sensitive — each a 24-byte SFRM header
// followed by the spill's exact on-disk bytes. Every spill is resolved
// before the status line is written, so a 200 always carries an exact
// precomputed Content-Length and every requested frame; the request
// context is checked between frames so an abandoned fetch stops
// consuming disk bandwidth.
func (w *Worker) handleShuffleBatch(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchFetchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad batch request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !validJobID(req.JobID) || req.Keyblock < 0 || len(req.Spills) == 0 {
		http.Error(rw, "bad batch request", http.StatusBadRequest)
		return
	}
	type frame struct {
		ref    SpillRef
		src    io.ReadSeeker
		closer io.Closer
		size   int64
	}
	frames := make([]frame, 0, len(req.Spills))
	closeAll := func() {
		for _, fr := range frames {
			if fr.closer != nil {
				fr.closer.Close()
			}
		}
	}
	var total int64
	for _, ref := range req.Spills {
		if ref.Split < 0 || ref.Attempt < 0 {
			closeAll()
			http.Error(rw, "bad split/attempt", http.StatusBadRequest)
			return
		}
		src, closer, size, _, err := w.openSpill(req.JobID, ref.Split, ref.Attempt, req.Keyblock)
		if err != nil {
			closeAll()
			http.Error(rw, fmt.Sprintf("no spill %d/%d for keyblock %d", ref.Split, ref.Attempt, req.Keyblock), http.StatusNotFound)
			return
		}
		frames = append(frames, frame{ref: ref, src: src, closer: closer, size: size})
		total += frameHeaderLen + size
	}
	defer closeAll()
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.FormatInt(total, 10))
	var hdr [frameHeaderLen]byte
	for _, fr := range frames {
		if r.Context().Err() != nil {
			return // client gone; abandon the stream
		}
		putFrameHeader(hdr[:], fr.ref.Split, fr.ref.Attempt, req.Keyblock, fr.size)
		if _, err := rw.Write(hdr[:]); err != nil {
			return
		}
		if _, err := io.Copy(rw, fr.src); err != nil {
			return
		}
	}
}
