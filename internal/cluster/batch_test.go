package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"sidr/internal/metrics"
)

// TestBatchedVsPerSpillParity runs the same job over both shuffle
// paths and requires byte-identical output — the batched path is a
// transport optimisation, never a semantic one — while pinning the
// request accounting: batching needs at most one request per (reduce,
// worker) pair, per-spill needs exactly Σ|I_ℓ|.
func TestBatchedVsPerSpillParity(t *testing.T) {
	run := func(disable bool) *JobResult {
		c, _ := startCluster(t, 2, CoordinatorConfig{Metrics: metrics.New(), DisableBatchFetch: disable})
		res, err := runClusterJob(t, c, nil)
		if err != nil {
			t.Fatalf("job (DisableBatchFetch=%v) failed: %v", disable, err)
		}
		return res
	}
	batched, legacy := run(false), run(true)

	bk, bv := flatten(batched)
	lk, lv := flatten(legacy)
	if !reflect.DeepEqual(bk, lk) || !reflect.DeepEqual(bv, lv) {
		t.Fatal("batched and per-spill outputs differ (not byte-identical)")
	}

	want := batched.Plan.Graph.SIDRConnections()
	if batched.Counters.Connections != want || legacy.Counters.Connections != want {
		t.Fatalf("connections batched=%d legacy=%d, want Σ|I_ℓ|=%d both ways",
			batched.Counters.Connections, legacy.Counters.Connections, want)
	}
	if legacy.Counters.ShuffleRequests != want || legacy.Counters.BatchRequests != 0 {
		t.Fatalf("per-spill path made %d requests (%d batched), want %d per-spill only",
			legacy.Counters.ShuffleRequests, legacy.Counters.BatchRequests, want)
	}
	maxBatched := int64(batched.Plan.Part.NumKeyblocks()) * 2 // reduces × workers
	if batched.Counters.ShuffleRequests > maxBatched {
		t.Fatalf("batched path made %d requests, want ≤ reduces×workers = %d",
			batched.Counters.ShuffleRequests, maxBatched)
	}
	if batched.Counters.ShuffleRequests >= legacy.Counters.ShuffleRequests {
		t.Fatalf("batching saved nothing: %d requests vs %d per-spill",
			batched.Counters.ShuffleRequests, legacy.Counters.ShuffleRequests)
	}
	if batched.Counters.BatchFallbacks != 0 {
		t.Fatalf("%d batch fallbacks on a healthy cluster", batched.Counters.BatchFallbacks)
	}
}

// TestBatchEndpointFraming drives POST /v1/shuffle/batch directly and
// checks the wire contract: frames in request order, each spill's
// exact bytes behind a 24-byte SFRM header, an exact Content-Length,
// and clean rejections for missing spills and bad requests.
func TestBatchEndpointFraming(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Name: "w0", SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv := httptest.NewServer(w)
	defer srv.Close()

	// Seed spills through the legacy layout (the serving path's
	// fallback), with distinct sizes so frame lengths are telling.
	payloads := map[int][]byte{
		0: []byte("split zero spill bytes"),
		1: bytes.Repeat([]byte{0xAB}, 1000),
		2: {}, // empty spill still gets a frame
	}
	for split, b := range payloads {
		p := w.spillPath("job-x", split, 0, 5)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	post := func(req BatchFetchRequest) *http.Response {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+BatchShufflePath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Deliberately not ascending: frames must come back in request order.
	order := []int{1, 0, 2}
	refs := make([]SpillRef, len(order))
	for i, s := range order {
		refs[i] = SpillRef{Split: s, Attempt: 0}
	}
	resp := post(BatchFetchRequest{JobID: "job-x", Keyblock: 5, Spills: refs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch returned %d", resp.StatusCode)
	}
	var wantLen int64
	for _, b := range payloads {
		wantLen += frameHeaderLen + int64(len(b))
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.FormatInt(wantLen, 10) {
		t.Fatalf("Content-Length = %q, want %d", got, wantLen)
	}
	stream := make([]byte, 0, wantLen)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		stream = append(stream, buf[:n]...)
		if err != nil {
			break
		}
	}
	if int64(len(stream)) != wantLen {
		t.Fatalf("stream length %d, want %d", len(stream), wantLen)
	}
	off := 0
	for _, s := range order {
		split, attempt, kb, length, err := parseFrameHeader(stream[off : off+frameHeaderLen])
		if err != nil {
			t.Fatalf("frame header at %d: %v", off, err)
		}
		if split != s || attempt != 0 || kb != 5 || length != int64(len(payloads[s])) {
			t.Fatalf("frame = (%d,%d,%d,%d), want (%d,0,5,%d)", split, attempt, kb, length, s, len(payloads[s]))
		}
		off += frameHeaderLen
		if !bytes.Equal(stream[off:off+int(length)], payloads[s]) {
			t.Fatalf("split %d frame bytes differ from spill file", s)
		}
		off += int(length)
	}

	// One missing spill fails the whole batch before any byte streams.
	if resp := post(BatchFetchRequest{JobID: "job-x", Keyblock: 5,
		Spills: []SpillRef{{Split: 0, Attempt: 0}, {Split: 9, Attempt: 0}}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing spill → %d, want 404", resp.StatusCode)
	}
	if resp := post(BatchFetchRequest{JobID: "job-x", Keyblock: -1,
		Spills: []SpillRef{{Split: 0, Attempt: 0}}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative keyblock → %d, want 400", resp.StatusCode)
	}
	if resp := post(BatchFetchRequest{JobID: "job-x", Keyblock: 5}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty spill list → %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + BatchShufflePath)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on batch endpoint → %d, want 405", getResp.StatusCode)
	}
}

// TestBatchUnsupportedWorkerFallsBack pins rolling-upgrade behavior: a
// worker whose batch endpoint errors (an old binary would 404 it) must
// degrade to per-spill fetches, and the job must still finish with the
// full Σ|I_ℓ| accounting and byte-identical output.
func TestBatchUnsupportedWorkerFallsBack(t *testing.T) {
	noBatch := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == BatchShufflePath {
				http.Error(rw, "batch shuffle unsupported", http.StatusNotFound)
				return
			}
			h.ServeHTTP(rw, r)
		})
	}
	c, _ := startChaosCluster(t, 2, CoordinatorConfig{Metrics: metrics.New()}, nil, noBatch)
	res, err := runClusterJob(t, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesInProcess(t, res)
	if res.Counters.BatchFallbacks == 0 {
		t.Fatal("no batch request fell back on batch-less workers")
	}
	if res.Counters.BatchRequests != 0 {
		t.Fatalf("%d batch requests succeeded against batch-less workers", res.Counters.BatchRequests)
	}
	if want := res.Plan.Graph.SIDRConnections(); res.Counters.Connections != want {
		t.Fatalf("connections = %d, want Σ|I_ℓ| = %d", res.Counters.Connections, want)
	}
}
