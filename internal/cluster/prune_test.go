package cluster

import (
	"reflect"
	"testing"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/datagen"
	"sidr/internal/mapreduce"
	"sidr/internal/query"
	"sidr/internal/sidx"
)

// Temperature at testSeed over 30 days stays below ~4.5 early on and
// only the last days' rows can exceed 5, so this threshold keeps a
// minority of leading-dimension splits.
const pruneQueryText = "filter_gt temp[0,0,0 : 30,24,24] es {1,4,4} param 5"

// TestClusterPrunedMatchesUnpruned runs the same selective filter job
// with and without the JobPlan.Pruned kept-split list: the pruned job
// must dispatch exactly the kept Map tasks and produce byte-identical
// output to both the unpruned clustered run and the in-process engine.
func TestClusterPrunedMatchesUnpruned(t *testing.T) {
	gen := datagen.Temperature(testSeed)
	shape := coords.NewShape(testDataset().Shape...)
	vi, err := sidx.BuildVar("*", shape, &mapreduce.FuncReader{Fn: gen}, sidx.BuildOptions{Blocks: 15})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(pruneQueryText)
	if err != nil {
		t.Fatal(err)
	}
	jp := testJobPlan()
	jp.Query = pruneQueryText
	keep, total, pruned, err := core.PruneSplits(q, jp.SplitPoints, vi)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned || len(keep) == 0 || len(keep) == total {
		t.Fatalf("prune ineffective: kept %d of %d (pruned=%v)", len(keep), total, pruned)
	}

	c, _ := startCluster(t, 3, CoordinatorConfig{})
	unpruned, err := runClusterJob(t, c, func(spec *JobSpec) { spec.Plan = jp })
	if err != nil {
		t.Fatalf("unpruned cluster run: %v", err)
	}
	jpPruned := jp
	jpPruned.Pruned = keep
	prunedRes, err := runClusterJob(t, c, func(spec *JobSpec) { spec.Plan = jpPruned })
	if err != nil {
		t.Fatalf("pruned cluster run: %v", err)
	}

	if got, want := prunedRes.Counters.MapsDispatched, int64(len(keep)); got != want {
		t.Fatalf("pruned job dispatched %d Map tasks, want %d", got, want)
	}
	if unpruned.Counters.MapsDispatched != int64(total) {
		t.Fatalf("unpruned job dispatched %d Map tasks, want %d", unpruned.Counters.MapsDispatched, total)
	}

	uKeys, uVals := flatten(unpruned)
	pKeys, pVals := flatten(prunedRes)
	if !reflect.DeepEqual(uKeys, pKeys) || !reflect.DeepEqual(uVals, pVals) {
		t.Fatalf("pruned cluster output diverges: %d rows vs %d rows", len(pKeys), len(uKeys))
	}

	// Triple agreement: the in-process engine, fed the same plan scalars,
	// must match too.
	ds, err := sidr.Synthetic(testDataset().Shape, func(k []int64) float64 { return gen(coords.Coord(k)) })
	if err != nil {
		t.Fatal(err)
	}
	fq, err := sidr.ParseQuery(pruneQueryText)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sidr.Run(ds, fq, sidr.RunOptions{Engine: sidr.SIDR, Reducers: jp.Reducers, SplitPoints: jp.SplitPoints})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.Keys, pKeys) || !reflect.DeepEqual(local.Values, pVals) {
		t.Fatalf("pruned cluster output diverges from in-process engine: %d rows vs %d rows", len(pKeys), len(local.Keys))
	}
}

// TestFullyPrunedClusterJob: an empty (non-nil) kept list resolves
// without dispatching any Map task and yields an empty result.
func TestFullyPrunedClusterJob(t *testing.T) {
	c, _ := startCluster(t, 2, CoordinatorConfig{})
	jp := testJobPlan()
	jp.Query = pruneQueryText
	jp.Pruned = []int{}
	res, err := runClusterJob(t, c, func(spec *JobSpec) { spec.Plan = jp })
	if err != nil {
		t.Fatalf("fully pruned run: %v", err)
	}
	if res.Counters.MapsDispatched != 0 {
		t.Fatalf("fully pruned job dispatched %d Map tasks", res.Counters.MapsDispatched)
	}
	keys, _ := flatten(res)
	if len(keys) != 0 {
		t.Fatalf("fully pruned job produced %d rows", len(keys))
	}
}
