// Package wire defines the JSON wire format shared by the daemon
// (internal/server) and the CLIs (cmd/sidrquery -json), so a query
// result serialises identically whether it travelled over HTTP or
// stdout.
package wire

import (
	"time"

	"sidr"
)

// Error is the JSON error envelope on every non-2xx response. Detail,
// when present, narrows the cause: a 429 carries whether the rejection
// is pure admission saturation (job queue full, executor has spare
// capacity) or the task executor itself is saturated, so clients can
// tell "too many jobs" apart from "not enough workers".
type Error struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

// Detail vocabulary for cluster/shuffle saturation. Clients match these
// exact strings, so they are part of the wire contract.
const (
	// DetailNoWorkers: the distributed runtime has no live worker — the
	// job cannot be dispatched (or lost its last worker mid-run).
	DetailNoWorkers = "no-workers"
	// DetailShuffleRetryExhausted: a shuffle fetch or task dispatch kept
	// failing after every retry and re-execution budget was spent.
	DetailShuffleRetryExhausted = "shuffle-retry-exhausted"
	// DetailSpillCorrupt: a Map task's re-execution budget was spent on
	// spills that kept failing their payload checksum — the job refused
	// to commit corrupt data.
	DetailSpillCorrupt = "spill-corrupt"
	// DetailTenantQuota: the submitting tenant (X-SIDR-Tenant header) is
	// at its max-in-flight quota; retry after one of its jobs finishes.
	DetailTenantQuota = "tenant-quota"
)

// VariableInfo describes one queryable variable of a registered
// dataset on GET /v1/datasets.
type VariableInfo struct {
	Name  string  `json:"name"` // "*" for synthetic datasets (any name resolves)
	Shape []int64 `json:"shape"`
	// Splits is how many Map input splits a default-granularity plan
	// over the full variable generates — the denominator for judging
	// how much the structural index pruned.
	Splits int `json:"splits"`
	// IndexStatus tells whether a structural block-range index
	// (internal/sidx) backs the variable: "built" (scanned at
	// registration), "loaded" (deserialized from a .sidx sidecar next
	// to the container), or "none".
	IndexStatus string `json:"index_status"`
	// IndexBlocks, IndexBytes and IndexBuildMs describe the index when
	// IndexStatus is not "none": its block count, serialized size, and
	// how long the registration-time build (or sidecar load) took.
	IndexBlocks  int     `json:"index_blocks,omitempty"`
	IndexBytes   int64   `json:"index_bytes,omitempty"`
	IndexBuildMs float64 `json:"index_build_ms,omitempty"`
}

// DatasetInfo is one registered dataset on GET /v1/datasets.
type DatasetInfo struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"` // "file" or "synthetic"
	Path      string         `json:"path,omitempty"`
	Variables []VariableInfo `json:"variables"`
}

// Result is the JSON form of a completed sidr.Result.
type Result struct {
	Keys        [][]int64   `json:"keys"`
	Values      [][]float64 `json:"values"`
	Rows        int         `json:"rows"`
	Partials    int         `json:"partials"`
	FirstMillis float64     `json:"first_result_ms"`
	ElapsedMS   float64     `json:"elapsed_ms"`
	Connections int64       `json:"connections"`
}

// FromResult converts a sidr.Result.
func FromResult(r *sidr.Result) *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		Keys:        r.Keys,
		Values:      r.Values,
		Rows:        len(r.Keys),
		Partials:    len(r.Partials),
		FirstMillis: float64(r.FirstResult) / float64(time.Millisecond),
		ElapsedMS:   float64(r.Elapsed) / float64(time.Millisecond),
		Connections: r.Connections,
	}
	if out.Keys == nil {
		out.Keys = [][]int64{}
	}
	if out.Values == nil {
		out.Values = [][]float64{}
	}
	return out
}

// Partial is the JSON form of one committed keyblock — SIDR's early
// correct partial result (§4, Figure 4b) as a stream event payload.
type Partial struct {
	Keyblock int         `json:"keyblock"`
	Keys     [][]int64   `json:"keys"`
	Values   [][]float64 `json:"values"`
	At       time.Time   `json:"at"`
}

// FromPartial converts a sidr.PartialResult.
func FromPartial(pr sidr.PartialResult) Partial {
	p := Partial{Keyblock: pr.Keyblock, Keys: pr.Keys, Values: pr.Values, At: pr.At}
	if p.Keys == nil {
		p.Keys = [][]int64{}
	}
	if p.Values == nil {
		p.Values = [][]float64{}
	}
	return p
}

// Stream event types, one per NDJSON line on GET /v1/jobs/{id}/stream.
const (
	EventPartial   = "partial"
	EventDone      = "done"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
)

// StreamEvent is one NDJSON line of a job stream: every committed
// keyblock arrives as a "partial" event the moment its dependencies are
// met, and exactly one terminal event ("done" with the assembled result,
// "failed" with the error, or "cancelled") closes the stream.
type StreamEvent struct {
	Type    string   `json:"type"`
	JobID   string   `json:"job_id,omitempty"`
	Partial *Partial `json:"partial,omitempty"`
	Result  *Result  `json:"result,omitempty"`
	Error   string   `json:"error,omitempty"`
	// Detail carries the same saturation vocabulary as Error.Detail on
	// "failed" events (e.g. DetailNoWorkers).
	Detail string `json:"detail,omitempty"`
}
