package trace

import (
	"math"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	tr := &Trace{}
	tr.Add(Map, 0, 10)
	tr.Add(Map, 1, 20)
	tr.Add(Reduce, 0, 25)
	tr.Add(Map, 2, 30)
	tr.Add(Reduce, 1, 50)
	return tr
}

func TestTimesSorted(t *testing.T) {
	tr := &Trace{}
	tr.Add(Map, 0, 30)
	tr.Add(Map, 1, 10)
	tr.Add(Map, 2, 20)
	ts := tr.MapTimes()
	if ts[0] != 10 || ts[1] != 20 || ts[2] != 30 {
		t.Fatalf("MapTimes = %v", ts)
	}
}

func TestFirstResultAndMakespan(t *testing.T) {
	tr := sampleTrace()
	if tr.FirstResult() != 25 {
		t.Fatalf("FirstResult = %v", tr.FirstResult())
	}
	if tr.Makespan() != 50 {
		t.Fatalf("Makespan = %v", tr.Makespan())
	}
	empty := &Trace{}
	if !math.IsNaN(empty.FirstResult()) || !math.IsNaN(empty.Makespan()) {
		t.Fatal("empty trace should be NaN")
	}
	if empty.Len() != 0 || tr.Len() != 5 {
		t.Fatal("Len wrong")
	}
}

func TestSeries(t *testing.T) {
	tr := sampleTrace()
	s := tr.SeriesOf(Map)
	if len(s.Times) != 3 {
		t.Fatalf("series = %+v", s)
	}
	if s.Fractions[0] != 1.0/3 || s.Fractions[2] != 1 {
		t.Fatalf("fractions = %v", s.Fractions)
	}
	if got := s.FractionAt(5); got != 0 {
		t.Fatalf("FractionAt(5) = %v", got)
	}
	if got := s.FractionAt(20); got != 2.0/3 {
		t.Fatalf("FractionAt(20) = %v", got)
	}
	if got := s.FractionAt(1000); got != 1 {
		t.Fatalf("FractionAt(1000) = %v", got)
	}
	if got := s.TimeAtFraction(1); got != 30 {
		t.Fatalf("TimeAtFraction(1) = %v", got)
	}
	if got := s.TimeAtFraction(0.01); got != 10 {
		t.Fatalf("TimeAtFraction(0.01) = %v", got)
	}
	if !math.IsNaN((Series{}).TimeAtFraction(0.5)) {
		t.Fatal("empty TimeAtFraction not NaN")
	}
	if (Series{}).FractionAt(10) != 0 {
		t.Fatal("empty FractionAt != 0")
	}
}

func TestRender(t *testing.T) {
	s := sampleTrace().SeriesOf(Reduce)
	out := s.Render("reduce completion")
	if !strings.HasPrefix(out, "# reduce completion\n") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "25.0\t0.5000") {
		t.Fatalf("render = %q", out)
	}
}

func TestVarianceAcross(t *testing.T) {
	runs := []Series{
		{Times: []float64{10, 20}},
		{Times: []float64{14, 20}},
	}
	vs, err := VarianceAcross(runs)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Mean[0] != 12 || vs.Mean[1] != 20 {
		t.Fatalf("Mean = %v", vs.Mean)
	}
	if vs.StdDev[0] != 2 || vs.StdDev[1] != 0 {
		t.Fatalf("StdDev = %v", vs.StdDev)
	}
	if vs.MaxStdDev() != 2 {
		t.Fatalf("MaxStdDev = %v", vs.MaxStdDev())
	}
	if vs.MeanStdDev() != 1 {
		t.Fatalf("MeanStdDev = %v", vs.MeanStdDev())
	}
	if _, err := VarianceAcross(nil); err == nil {
		t.Fatal("empty runs accepted")
	}
	if _, err := VarianceAcross([]Series{{Times: []float64{1}}, {Times: []float64{1, 2}}}); err == nil {
		t.Fatal("ragged runs accepted")
	}
	if (VarianceStats{}).MeanStdDev() != 0 {
		t.Fatal("empty MeanStdDev != 0")
	}
}
