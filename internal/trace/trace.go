// Package trace records task-completion traces and converts them into the
// series the paper's figures plot: fraction of Map/Reduce tasks complete
// over time (Figures 9-11, 13), first-result times, and cross-run
// variance statistics (Figure 12).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TaskType distinguishes trace entries.
type TaskType int

const (
	// Map marks a Map task completion.
	Map TaskType = iota
	// Reduce marks a Reduce task completion (its output is committed and
	// available — the paper's "results available" metric).
	Reduce
)

// Completion is one task completing at a virtual or wall-clock time (in
// seconds).
type Completion struct {
	Type TaskType
	ID   int
	At   float64
}

// Trace is an ordered set of completions.
type Trace struct {
	completions []Completion
}

// Add records a completion.
func (t *Trace) Add(typ TaskType, id int, at float64) {
	t.completions = append(t.completions, Completion{Type: typ, ID: id, At: at})
}

// Len returns the number of completions recorded.
func (t *Trace) Len() int { return len(t.completions) }

// times returns sorted completion times of one task type.
func (t *Trace) times(typ TaskType) []float64 {
	var out []float64
	for _, c := range t.completions {
		if c.Type == typ {
			out = append(out, c.At)
		}
	}
	sort.Float64s(out)
	return out
}

// MapTimes returns sorted Map completion times.
func (t *Trace) MapTimes() []float64 { return t.times(Map) }

// ReduceTimes returns sorted Reduce completion times.
func (t *Trace) ReduceTimes() []float64 { return t.times(Reduce) }

// FirstResult returns the time the first Reduce output became available,
// or NaN if none completed.
func (t *Trace) FirstResult() float64 {
	rs := t.ReduceTimes()
	if len(rs) == 0 {
		return math.NaN()
	}
	return rs[0]
}

// Makespan returns the completion time of the last task, or NaN for an
// empty trace.
func (t *Trace) Makespan() float64 {
	m := math.NaN()
	for _, c := range t.completions {
		if math.IsNaN(m) || c.At > m {
			m = c.At
		}
	}
	return m
}

// Series is a fraction-complete-over-time curve: Fractions[i] of the
// tasks had completed by Times[i]. It is exactly the data behind the
// paper's task-completion figures.
type Series struct {
	Times     []float64
	Fractions []float64
}

// SeriesOf builds the completion curve for one task type.
func (t *Trace) SeriesOf(typ TaskType) Series {
	ts := t.times(typ)
	s := Series{Times: ts, Fractions: make([]float64, len(ts))}
	n := float64(len(ts))
	for i := range ts {
		s.Fractions[i] = float64(i+1) / n
	}
	return s
}

// FractionAt returns the fraction complete at time x (step function).
func (s Series) FractionAt(x float64) float64 {
	idx := sort.SearchFloat64s(s.Times, x)
	// idx is the count of times strictly below x; include equal times.
	for idx < len(s.Times) && s.Times[idx] <= x {
		idx++
	}
	if len(s.Times) == 0 {
		return 0
	}
	return float64(idx) / float64(len(s.Times))
}

// TimeAtFraction returns the earliest time the series reaches fraction f
// (0 < f <= 1), or NaN for an empty series.
func (s Series) TimeAtFraction(f float64) float64 {
	if len(s.Times) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(f*float64(len(s.Times)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.Times) {
		idx = len(s.Times) - 1
	}
	return s.Times[idx]
}

// Render prints the curve as "time fraction" rows sampled at each
// completion, in the format the benchmark harness emits for plotting.
func (s Series) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", label)
	for i := range s.Times {
		fmt.Fprintf(&b, "%.1f\t%.4f\n", s.Times[i], s.Fractions[i])
	}
	return b.String()
}

// VarianceStats summarises cross-run variation of completion times at
// each task rank: Mean[i] and StdDev[i] are the statistics of the i-th
// completion across runs (Figure 12's error bars).
type VarianceStats struct {
	Mean   []float64
	StdDev []float64
}

// VarianceAcross computes per-rank mean and standard deviation across
// runs of the same configuration. All runs must have the same task count;
// it errors otherwise.
func VarianceAcross(runs []Series) (VarianceStats, error) {
	if len(runs) == 0 {
		return VarianceStats{}, fmt.Errorf("trace: no runs")
	}
	n := len(runs[0].Times)
	for i, r := range runs {
		if len(r.Times) != n {
			return VarianceStats{}, fmt.Errorf("trace: run %d has %d tasks, want %d", i, len(r.Times), n)
		}
	}
	vs := VarianceStats{Mean: make([]float64, n), StdDev: make([]float64, n)}
	for i := 0; i < n; i++ {
		var sum, sumSq float64
		for _, r := range runs {
			sum += r.Times[i]
			sumSq += r.Times[i] * r.Times[i]
		}
		m := sum / float64(len(runs))
		vs.Mean[i] = m
		v := sumSq/float64(len(runs)) - m*m
		if v < 0 {
			v = 0
		}
		vs.StdDev[i] = math.Sqrt(v)
	}
	return vs, nil
}

// MaxStdDev returns the largest per-rank standard deviation — the
// headline variance number Figure 12 compares across Reduce counts.
func (v VarianceStats) MaxStdDev() float64 {
	m := 0.0
	for _, s := range v.StdDev {
		if s > m {
			m = s
		}
	}
	return m
}

// MeanStdDev returns the average per-rank standard deviation.
func (v VarianceStats) MeanStdDev() float64 {
	if len(v.StdDev) == 0 {
		return 0
	}
	var sum float64
	for _, s := range v.StdDev {
		sum += s
	}
	return sum / float64(len(v.StdDev))
}
