// Package metrics is a dependency-free registry of named counters,
// gauges and histograms with an expvar-style plain-text exposition.
// The daemon (cmd/sidrd) serves it at GET /metrics; every instrument is
// safe for concurrent use and get-or-create registration is idempotent,
// so packages can look instruments up by name at the call site without
// coordinating initialisation order.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 level (queue depths, open handles).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into cumulative buckets
// with a sum and count, Prometheus-style.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefBuckets covers query latencies from 1 ms to ~2 min.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 120}

// Registry holds named instruments. The zero value is not usable; call
// New.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil means DefBuckets). Later calls
// keep the original buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// WriteText renders every instrument sorted by name. Counters and gauges
// are one "name value" line each; a histogram is a contiguous block of
// cumulative name_bucket{le="..."} lines in ascending bound order with
// le="+Inf" last, then name_sum and name_count.
func (r *Registry) WriteText(w io.Writer) error {
	type entry struct {
		name  string
		lines []string
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		entries = append(entries, entry{name, []string{fmt.Sprintf("%s %d", name, c.Value())}})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name, []string{fmt.Sprintf("%s %d", name, g.Value())}})
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		lines := make([]string, 0, len(h.bounds)+3)
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i]
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, formatBound(b), cum))
		}
		cum += h.counts[len(h.bounds)]
		lines = append(lines, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", name, cum))
		lines = append(lines, fmt.Sprintf("%s_sum %g", name, h.sum))
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.count))
		h.mu.Unlock()
		entries = append(entries, entry{name, lines})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		for _, l := range e.lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}
