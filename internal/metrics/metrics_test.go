package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("Counter is not idempotent")
	}
	g := r.Gauge("queue_depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
		"latency_seconds_sum 56.05",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := New()
	r.Counter("b_total").Inc()
	r.Counter("a_total").Inc()
	r.Gauge("c_level").Set(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{"a_total 1", "b_total 1", "c_level 2"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d", len(lines), len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestHistogramBlockOrder(t *testing.T) {
	// Bucket lines must form a contiguous block in ascending bound order
	// with le="+Inf" last — not interleaved lexically (where "+Inf"
	// sorts before digits and "30" before "5").
	r := New()
	r.Counter("a_total").Inc()
	r.Counter("z_total").Inc()
	h := r.Histogram("lat", []float64{5, 30})
	for _, v := range []float64{1, 20, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{
		"a_total 1",
		`lat_bucket{le="5"} 1`,
		`lat_bucket{le="30"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 121",
		"lat_count 3",
		"z_total 1",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), b.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total").Inc()
				r.Gauge("level").Add(1)
				r.Histogram("obs", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("obs", nil).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}
