package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sidr"
	"sidr/internal/cluster"
	"sidr/internal/datagen"
	"sidr/internal/jobs"
	"sidr/internal/metrics"
	"sidr/internal/wire"
)

// clusterRegistry builds a registry with one generator-backed synthetic
// dataset that cluster workers can reproduce from its spec.
func clusterRegistry(t *testing.T) *Registry {
	t.Helper()
	registry := NewRegistry()
	if err := registry.AddGenerated("temp", cluster.DatasetSpec{
		Kind:      "synthetic",
		Generator: "temperature",
		Shape:     []int64{30, 24, 24},
		Seed:      7,
	}); err != nil {
		t.Fatal(err)
	}
	return registry
}

// startServerWorkers spawns n in-process cluster workers on distinct
// httptest ports and registers them with the coordinator.
func startServerWorkers(t *testing.T, coord *cluster.Coordinator, n int) []*httptest.Server {
	t.Helper()
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name:     fmt.Sprintf("srvw%d", i),
			SpillDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		if err := coord.Register(fmt.Sprintf("srvw%d", i), srv.URL); err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	return servers
}

func postQuery(t *testing.T, url string, req jobs.Request) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

var clusterReq = jobs.Request{
	Dataset:     "temp",
	Query:       "avg temp[0,0,0 : 30,24,24] es {1,4,4}",
	Engine:      "sidr",
	Reducers:    4,
	SplitPoints: 1500,
	Cluster:     true,
}

// TestClusterSubmitNoWorkers pins the wire contract for a cluster
// submission with an empty worker table: 503 and a JSON error envelope
// whose detail is exactly "no-workers".
func TestClusterSubmitNoWorkers(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{HeartbeatTimeout: time.Hour, Metrics: metrics.New()})
	f := newFixtureCfg(t, clusterRegistry(t), jobs.Config{Cluster: coord})

	resp := postQuery(t, f.ts.URL, clusterReq)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"detail":"no-workers"`) {
		t.Fatalf("response %q does not carry detail \"no-workers\"", raw)
	}
	var we wire.Error
	if err := json.Unmarshal(raw, &we); err != nil {
		t.Fatal(err)
	}
	if we.Detail != wire.DetailNoWorkers {
		t.Fatalf("detail = %q, want %q", we.Detail, wire.DetailNoWorkers)
	}
	if we.Error == "" {
		t.Fatal("error envelope lost its message")
	}
}

// TestClusterSubmitDisabled rejects cluster jobs when the daemon has no
// coordinator at all — a client error, not a retryable 503.
func TestClusterSubmitDisabled(t *testing.T) {
	f := newFixtureCfg(t, clusterRegistry(t), jobs.Config{})
	resp := postQuery(t, f.ts.URL, clusterReq)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var we wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Detail != "" {
		t.Fatalf("disabled-cluster rejection carries detail %q, want none", we.Detail)
	}
}

// TestErrorDetailVocabulary pins errorDetail's mapping and the JSON
// encoding of the detail vocabulary itself.
func TestErrorDetailVocabulary(t *testing.T) {
	if d := errorDetail(fmt.Errorf("submit: %w", cluster.ErrNoWorkers)); d != wire.DetailNoWorkers {
		t.Fatalf("ErrNoWorkers detail = %q", d)
	}
	if d := errorDetail(fmt.Errorf("map task 3: %w: dial refused", cluster.ErrRetryExhausted)); d != wire.DetailShuffleRetryExhausted {
		t.Fatalf("ErrRetryExhausted detail = %q", d)
	}
	// An exhausted budget caused by checksum failures wraps BOTH
	// sentinels; the integrity detail must win.
	corrupt := fmt.Errorf("%w: map task 3 exceeded 5 attempts (2 checksum failures): %w",
		cluster.ErrRetryExhausted, cluster.ErrSpillCorrupt)
	if d := errorDetail(corrupt); d != wire.DetailSpillCorrupt {
		t.Fatalf("ErrSpillCorrupt detail = %q, want %q", d, wire.DetailSpillCorrupt)
	}
	if d := errorDetail(fmt.Errorf("some other failure")); d != "" {
		t.Fatalf("unrelated error detail = %q, want empty", d)
	}
	b, err := json.Marshal(wire.Error{Error: "boom", Detail: wire.DetailShuffleRetryExhausted})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"error":"boom","detail":"shuffle-retry-exhausted"}`; string(b) != want {
		t.Fatalf("wire.Error JSON = %s, want %s", b, want)
	}
}

// TestClusterEndToEndThroughDaemon is the daemon-path acceptance test:
// a cluster job submitted over HTTP runs across two worker processes
// (in-process instances on distinct ports), streams partials, and its
// terminal result is byte-identical to the in-process engine's answer
// for the same request.
func TestClusterEndToEndThroughDaemon(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: time.Hour,
		RetryBase:        time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		Metrics:          metrics.New(),
	})
	startServerWorkers(t, coord, 2)
	f := newFixtureCfg(t, clusterRegistry(t), jobs.Config{Cluster: coord})

	resp := postQuery(t, f.ts.URL, clusterReq)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !snap.Cluster {
		t.Fatal("snapshot does not mark the job as clustered")
	}

	stream, err := http.Get(f.ts.URL + "/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	partials := 0
	var done *wire.StreamEvent
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case wire.EventPartial:
			partials++
		case wire.EventDone:
			done = &ev
		default:
			t.Fatalf("unexpected stream event %+v", ev)
		}
		if done != nil {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil || done.Result == nil {
		t.Fatal("stream ended without a done event carrying the result")
	}
	if partials == 0 {
		t.Fatal("no partial events streamed before the terminal event")
	}

	// The in-process engine over the exact same generated dataset.
	gen := datagen.Temperature(7)
	ds, err := sidr.Synthetic([]int64{30, 24, 24}, func(k []int64) float64 { return gen(k) })
	if err != nil {
		t.Fatal(err)
	}
	q, err := sidr.ParseQuery(clusterReq.Query)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sidr.Run(ds, q, sidr.RunOptions{
		Engine:      sidr.SIDR,
		Reducers:    clusterReq.Reducers,
		SplitPoints: clusterReq.SplitPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Result.Keys) != len(direct.Keys) {
		t.Fatalf("cluster result has %d rows, in-process %d", len(done.Result.Keys), len(direct.Keys))
	}
	for i := range direct.Keys {
		if fmt.Sprint(done.Result.Keys[i]) != fmt.Sprint(direct.Keys[i]) ||
			fmt.Sprint(done.Result.Values[i]) != fmt.Sprint(direct.Values[i]) {
			t.Fatalf("row %d: cluster %v=%v, in-process %v=%v", i,
				done.Result.Keys[i], done.Result.Values[i], direct.Keys[i], direct.Values[i])
		}
	}
	if done.Result.Connections <= 0 {
		t.Fatal("cluster result reports no shuffle connections")
	}
}

// TestClusterJoinEndToEndThroughDaemon runs a two-dataset structural
// join through the whole daemon stack — HTTP submission with dataset2,
// coordinator dispatch to two worker processes, dual-sided shuffle,
// skew-adaptive re-tiling sampled from a zipf-skewed side B — and
// demands the terminal result be byte-identical (Float64bits) to the
// in-process join over the same generated data. It also pins the
// serving-tier behaviours: the snapshot carries dataset2 and a skew
// summary, and an identical resubmission hits the result cache.
func TestClusterJoinEndToEndThroughDaemon(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: time.Hour,
		RetryBase:        time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		Metrics:          metrics.New(),
	})
	startServerWorkers(t, coord, 2)
	registry := NewRegistry()
	if err := registry.AddGenerated("left", cluster.DatasetSpec{
		Kind: "synthetic", Generator: "integers", Shape: []int64{48, 32}, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}
	if err := registry.AddGenerated("right", cluster.DatasetSpec{
		Kind: "synthetic", Generator: "zipf", Shape: []int64{48, 32}, Seed: 23, Skew: 1.3,
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixtureCfg(t, registry, jobs.Config{Cluster: coord})

	joinReq := jobs.Request{
		Dataset:  "left",
		Dataset2: "right",
		Query:    "join javg a[0,0 : 48,32] es {8,8} with b[0,0 : 48,32] es {8,8}",
		Engine:   "sidr",
		Reducers: 4,
		MaxSkew:  16,
		Cluster:  true,
	}
	resp := postQuery(t, f.ts.URL, joinReq)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Dataset2 != "right" {
		t.Fatalf("snapshot dataset2 = %q, want \"right\"", snap.Dataset2)
	}

	stream, err := http.Get(f.ts.URL + "/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var done *wire.StreamEvent
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == wire.EventDone {
			done = &ev
			break
		}
		if ev.Type != wire.EventPartial {
			t.Fatalf("unexpected stream event %+v", ev)
		}
	}
	if done == nil || done.Result == nil {
		t.Fatal("stream ended without a done event carrying the result")
	}

	// The in-process engine over the exact same generated datasets.
	genA, genB := datagen.Integers(11), datagen.Zipf(23, 1.3)
	dsA, err := sidr.Synthetic([]int64{48, 32}, func(k []int64) float64 { return genA(k) })
	if err != nil {
		t.Fatal(err)
	}
	dsB, err := sidr.Synthetic([]int64{48, 32}, func(k []int64) float64 { return genB(k) })
	if err != nil {
		t.Fatal(err)
	}
	q, err := sidr.ParseQuery(joinReq.Query)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sidr.RunJoin(dsA, dsB, q, sidr.RunOptions{
		Engine: sidr.SIDR, Reducers: joinReq.Reducers, MaxSkew: joinReq.MaxSkew,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Result.Keys) != len(direct.Keys) || len(direct.Keys) == 0 {
		t.Fatalf("cluster join has %d rows, in-process %d", len(done.Result.Keys), len(direct.Keys))
	}
	for i := range direct.Keys {
		if fmt.Sprint(done.Result.Keys[i]) != fmt.Sprint(direct.Keys[i]) {
			t.Fatalf("row %d key: cluster %v, in-process %v", i, done.Result.Keys[i], direct.Keys[i])
		}
		for v := range direct.Values[i] {
			got, want := math.Float64bits(done.Result.Values[i][v]), math.Float64bits(direct.Values[i][v])
			if got != want {
				t.Fatalf("row %d value %d: cluster %v (bits %x), in-process %v (bits %x)",
					i, v, done.Result.Values[i][v], got, direct.Values[i][v], want)
			}
		}
	}

	// The finished job's snapshot carries the sampled skew summary.
	jresp, err := http.Get(f.ts.URL + "/v1/jobs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		jobs.Snapshot
	}
	if err := json.NewDecoder(jresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if view.Skew == nil || view.Skew.Keyblocks <= 0 {
		t.Fatalf("finished clustered join has no skew summary: %+v", view.Skew)
	}

	// An identical resubmission is served from the result cache — the key
	// pins both dataset versions.
	resp2 := postQuery(t, f.ts.URL, joinReq)
	var snap2 jobs.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !snap2.ResultHit && time.Now().Before(deadline) {
		jr, err := http.Get(f.ts.URL + "/v1/jobs/" + snap2.ID)
		if err != nil {
			t.Fatal(err)
		}
		snap2 = jobs.Snapshot{}
		if err := json.NewDecoder(jr.Body).Decode(&snap2); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if snap2.State == "done" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !snap2.ResultHit {
		t.Fatal("identical clustered join resubmission missed the result cache")
	}
}

// TestClusterFailedStreamCarriesDetail: a worker that dies between
// registration and dispatch makes the job fail mid-run with no live
// workers left; the failed terminal stream event must carry the
// "no-workers" detail.
func TestClusterFailedStreamCarriesDetail(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: time.Hour,
		RetryBase:        time.Millisecond,
		RetryMax:         5 * time.Millisecond,
		Metrics:          metrics.New(),
	})
	servers := startServerWorkers(t, coord, 1)
	f := newFixtureCfg(t, clusterRegistry(t), jobs.Config{Cluster: coord})
	servers[0].Close() // dies after registering: dispatch will find nobody

	resp := postQuery(t, f.ts.URL, clusterReq)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(f.ts.URL + "/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var final *wire.StreamEvent
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != wire.EventPartial {
			final = &ev
			break
		}
	}
	if final == nil {
		t.Fatal("stream ended without a terminal event")
	}
	if final.Type != wire.EventFailed {
		t.Fatalf("terminal event type = %q, want failed", final.Type)
	}
	if final.Detail != wire.DetailNoWorkers {
		t.Fatalf("failed event detail = %q (error %q), want %q", final.Detail, final.Error, wire.DetailNoWorkers)
	}
}
