package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sidr"
	"sidr/internal/cluster"
	"sidr/internal/coords"
	"sidr/internal/ncfile"
)

// VariableInfo describes one queryable variable of a dataset.
type VariableInfo struct {
	Name  string  `json:"name"`
	Shape []int64 `json:"shape"`
}

// DatasetInfo is the /v1/datasets wire form of one registered dataset.
type DatasetInfo struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"` // "file" or "synthetic"
	Path      string         `json:"path,omitempty"`
	Variables []VariableInfo `json:"variables"`
}

// source is a registered dataset not yet opened.
type source struct {
	info  DatasetInfo
	path  string                    // file datasets
	shape []int64                   // synthetic datasets
	fn    func(k []int64) float64   // synthetic datasets
	spec  *cluster.DatasetSpec      // generator-backed synthetics (cluster-resolvable)
}

// handle is one refcounted open dataset, keyed by (dataset, variable).
type handle struct {
	ds   *sidr.Dataset
	refs int
}

// Registry maps dataset names to open sidr.Datasets. Handles are opened
// lazily on first Acquire, refcounted, and kept open across jobs so
// concurrent queries share one ncfile handle (positional reads make the
// files safe for concurrent readers). Close tears down idle handles
// immediately and busy ones as their last user releases them.
type Registry struct {
	mu      sync.Mutex
	sources map[string]*source
	open    map[string]*handle // key: name + "\x00" + variable
	closing bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]*source), open: make(map[string]*handle)}
}

// AddFile registers an ncfile container under the given name, reading
// its header to list variables.
func (r *Registry) AddFile(name, path string) error {
	f, err := ncfile.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info := DatasetInfo{Name: name, Kind: "file", Path: path}
	for _, v := range f.Header().Vars {
		shape, err := f.Header().VarShape(v.Name)
		if err != nil {
			return err
		}
		info.Variables = append(info.Variables, VariableInfo{Name: v.Name, Shape: shape})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.sources[name] = &source{info: info, path: path}
	return nil
}

// AddSynthetic registers a pure-function dataset of the given shape;
// any variable name resolves to it.
func (r *Registry) AddSynthetic(name string, shape []int64, fn func(k []int64) float64) error {
	if fn == nil {
		return fmt.Errorf("server: nil synthetic dataset function")
	}
	info := DatasetInfo{Name: name, Kind: "synthetic",
		Variables: []VariableInfo{{Name: "*", Shape: append([]int64(nil), shape...)}}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.sources[name] = &source{info: info, shape: append([]int64(nil), shape...), fn: fn}
	return nil
}

// AddGenerated registers a synthetic dataset backed by one of the
// deterministic datagen generators. Unlike AddSynthetic's opaque
// function, a generated dataset is described by a cluster.DatasetSpec,
// so sidr-worker processes can reproduce it bit-identically from the
// spec alone and cluster-routed jobs can use it.
func (r *Registry) AddGenerated(name string, spec cluster.DatasetSpec) error {
	if spec.Kind != "synthetic" {
		return fmt.Errorf("server: generated dataset %q needs kind \"synthetic\", got %q", name, spec.Kind)
	}
	if len(spec.Shape) == 0 {
		return fmt.Errorf("server: generated dataset %q needs a shape", name)
	}
	fn, err := cluster.GeneratorFunc(spec)
	if err != nil {
		return err
	}
	info := DatasetInfo{Name: name, Kind: "synthetic",
		Variables: []VariableInfo{{Name: "*", Shape: append([]int64(nil), spec.Shape...)}}}
	specCopy := spec
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.sources[name] = &source{
		info:  info,
		shape: append([]int64(nil), spec.Shape...),
		fn:    func(k []int64) float64 { return fn(coords.Coord(k)) },
		spec:  &specCopy,
	}
	return nil
}

// DatasetSpec describes a registered dataset in a form a cluster worker
// can resolve by itself: file datasets by path+variable, generated
// synthetics by their generator spec. Opaque AddSynthetic functions are
// not describable. Implements jobs.DatasetSpecProvider.
func (r *Registry) DatasetSpec(name, variable string) (cluster.DatasetSpec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[name]
	if !ok {
		return cluster.DatasetSpec{}, fmt.Errorf("server: unknown dataset %q", name)
	}
	switch {
	case src.spec != nil:
		return *src.spec, nil
	case src.path != "":
		return cluster.DatasetSpec{Kind: "file", Path: src.path, Variable: variable}, nil
	default:
		return cluster.DatasetSpec{}, fmt.Errorf("server: synthetic dataset %q has no generator spec; cluster workers cannot reproduce it", name)
	}
}

// ScanDir registers every *.ncf file in dir under its basename (without
// extension), returning how many were added.
func (r *Registry) ScanDir(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ncf"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".ncf")
		if err := r.AddFile(name, p); err != nil {
			return n, fmt.Errorf("server: registering %s: %w", p, err)
		}
		n++
	}
	return n, nil
}

// List returns the registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Acquire opens (or reuses) the dataset's handle for the variable and
// bumps its refcount; the returned release func must be called when the
// job is done with it. Implements jobs.DatasetProvider.
func (r *Registry) Acquire(name, variable string) (*sidr.Dataset, func(), error) {
	key := name + "\x00" + variable
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closing {
		return nil, nil, fmt.Errorf("server: registry closed")
	}
	if h, ok := r.open[key]; ok {
		h.refs++
		return h.ds, r.releaseFunc(key), nil
	}
	src, ok := r.sources[name]
	if !ok {
		return nil, nil, fmt.Errorf("server: unknown dataset %q", name)
	}
	var ds *sidr.Dataset
	var err error
	if src.fn != nil {
		ds, err = sidr.Synthetic(src.shape, src.fn)
	} else {
		ds, err = sidr.Open(src.path, variable)
	}
	if err != nil {
		return nil, nil, err
	}
	r.open[key] = &handle{ds: ds, refs: 1}
	return ds, r.releaseFunc(key), nil
}

// releaseFunc returns a once-only decrement for the handle. Caller holds
// r.mu.
func (r *Registry) releaseFunc(key string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			h := r.open[key]
			if h == nil {
				return
			}
			h.refs--
			if h.refs <= 0 && r.closing {
				h.ds.Close()
				delete(r.open, key)
			}
		})
	}
}

// OpenHandles returns the number of currently open dataset handles.
func (r *Registry) OpenHandles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Close stops further Acquires and closes every handle whose refcount is
// zero; handles still in use close when their last user releases them.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closing = true
	var first error
	for key, h := range r.open {
		if h.refs <= 0 {
			if err := h.ds.Close(); err != nil && first == nil {
				first = err
			}
			delete(r.open, key)
		}
	}
	return first
}
