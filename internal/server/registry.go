package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sidr"
	"sidr/internal/cluster"
	"sidr/internal/coords"
	"sidr/internal/hdfs"
	"sidr/internal/mapreduce"
	"sidr/internal/ncfile"
	"sidr/internal/sidx"
	"sidr/internal/wire"
)

// VariableInfo and DatasetInfo are the /v1/datasets wire forms; the
// documented JSON shape lives in internal/wire.
type (
	VariableInfo = wire.VariableInfo
	DatasetInfo  = wire.DatasetInfo
)

// source is a registered dataset not yet opened.
type source struct {
	info  DatasetInfo
	path  string                    // file datasets
	shape []int64                   // synthetic datasets
	fn    func(k []int64) float64   // synthetic datasets
	spec  *cluster.DatasetSpec      // generator-backed synthetics (cluster-resolvable)
	idx   map[string]*sidx.VarIndex // structural indexes by variable name
}

// handle is one refcounted open dataset, keyed by (dataset, variable).
type handle struct {
	ds      *sidr.Dataset
	refs    int
	retired bool // source removed or replaced; close on last release
}

// Registry maps dataset names to open sidr.Datasets. Handles are opened
// lazily on first Acquire, refcounted, and kept open across jobs so
// concurrent queries share one ncfile handle (positional reads make the
// files safe for concurrent readers). Close tears down idle handles
// immediately and busy ones as their last user releases them.
type Registry struct {
	mu      sync.Mutex
	sources map[string]*source
	open    map[string]*handle // key: name + "\x00" + variable
	// gens counts registrations per dataset name, surviving Remove:
	// re-registering a name always yields a new generation, so version
	// tokens from the old contents can never collide with the new.
	gens         map[string]uint64
	onInvalidate func(name string)
	closing      bool
	// ns, when set, mirrors every registered dataset as a logical HDFS
	// file so cluster jobs get block-location locality hints.
	ns *hdfs.Namespace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]*source), open: make(map[string]*handle), gens: make(map[string]uint64)}
}

// SetOnInvalidate installs the hook fired (outside the registry lock)
// whenever a dataset is removed — including the removal half of a
// re-registration. The server points it at the job manager's
// InvalidateDataset so cached results die with the dataset version
// that produced them.
func (r *Registry) SetOnInvalidate(fn func(name string)) {
	r.mu.Lock()
	r.onInvalidate = fn
	r.mu.Unlock()
}

// SetNamespace attaches a simulated HDFS namespace. Every dataset —
// already registered or added later — is mirrored into it as a logical
// file sized to its largest variable (row-major float64 layout), giving
// cluster jobs block-location locality hints. The namespace itself is
// handed on to the job manager via Namespace.
func (r *Registry) SetNamespace(ns *hdfs.Namespace) {
	r.mu.Lock()
	r.ns = ns
	sizes := make(map[string]int64, len(r.sources))
	for name, src := range r.sources {
		sizes[name] = datasetBytes(src)
	}
	r.mu.Unlock()
	if ns == nil {
		return
	}
	for name, size := range sizes {
		_ = ns.AddOrReplaceFile(name, size)
	}
}

// Namespace returns the attached block namespace (nil if none).
func (r *Registry) Namespace() *hdfs.Namespace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ns
}

// datasetBytes sizes a dataset's logical HDFS file: its largest
// variable's element count at 8 bytes per point — the same row-major
// layout GenerateSplits assumes when mapping splits to block ranges.
func datasetBytes(src *source) int64 {
	var max int64
	for _, v := range src.info.Variables {
		if n := coords.NewShape(v.Shape...).Size() * 8; n > max {
			max = n
		}
	}
	return max
}

// nsMirrorLocked registers one dataset in the attached namespace.
// Caller holds r.mu; the namespace has its own lock and never calls
// back into the registry.
func (r *Registry) nsMirrorLocked(name string, src *source) {
	if r.ns != nil {
		_ = r.ns.AddOrReplaceFile(name, datasetBytes(src))
	}
}

// AddFile registers an ncfile container under the given name, reading
// its header to list variables. Each variable gets a structural
// block-range index: a matching .sidx sidecar next to the container is
// loaded, otherwise the variable is scanned once (in parallel) and the
// fresh index persisted back to the sidecar best-effort. Index trouble
// never fails registration — the dataset just runs unpruned.
func (r *Registry) AddFile(name, path string) error {
	f, err := ncfile.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info := DatasetInfo{Name: name, Kind: "file", Path: path}
	idx := make(map[string]*sidx.VarIndex)
	sidecar := path + ".sidx"
	loaded := make(map[string]*sidx.VarIndex)
	if ix, lerr := sidx.Load(sidecar); lerr == nil {
		for _, vi := range ix.Vars {
			loaded[vi.Variable] = vi
		}
	}
	rebuilt := false
	for _, v := range f.Header().Vars {
		shape, err := f.Header().VarShape(v.Name)
		if err != nil {
			return err
		}
		vi := VariableInfo{Name: v.Name, Shape: shape, Splits: defaultSplitCount(shape), IndexStatus: "none"}
		start := time.Now()
		ix := loaded[v.Name]
		if ix != nil && ix.Shape.Equal(shape) {
			vi.IndexStatus = "loaded"
		} else {
			ix, err = sidx.BuildVar(v.Name, shape, &mapreduce.FileReader{File: f, Var: v.Name}, sidx.BuildOptions{})
			if err != nil {
				info.Variables = append(info.Variables, vi)
				continue
			}
			vi.IndexStatus = "built"
			rebuilt = true
		}
		vi.IndexBlocks = len(ix.Blocks)
		vi.IndexBytes = (&sidx.Index{Vars: []*sidx.VarIndex{ix}}).EncodedSize()
		vi.IndexBuildMs = float64(time.Since(start)) / float64(time.Millisecond)
		idx[v.Name] = ix
		info.Variables = append(info.Variables, vi)
	}
	if rebuilt {
		all := &sidx.Index{}
		for _, v := range f.Header().Vars { // header order keeps the sidecar deterministic
			if ix := idx[v.Name]; ix != nil {
				all.Vars = append(all.Vars, ix)
			}
		}
		_ = all.Save(sidecar) // best-effort; a read-only data dir is fine
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.gens[name]++
	src := &source{info: info, path: path, idx: idx}
	r.sources[name] = src
	r.nsMirrorLocked(name, src)
	return nil
}

// defaultSplitCount reports how many Map input splits the default
// granularity (sidr.Prepare's Input.Size()/8+1 target) generates over
// the full variable; listed so clients can judge pruning ratios.
func defaultSplitCount(shape coords.Shape) int {
	slab := coords.Slab{Corner: make(coords.Coord, shape.Rank()), Shape: shape}
	splits, err := mapreduce.GenerateSplits(slab, slab.Size()/8+1, nil, "", 8)
	if err != nil {
		return 0
	}
	return len(splits)
}

// buildSyntheticIndex scans a synthetic dataset once and summarises it;
// synthetic sources answer any variable name, so the index is filed
// under "*".
func buildSyntheticIndex(shape coords.Shape, fn func(coords.Coord) float64) (*sidx.VarIndex, error) {
	return sidx.BuildVar("*", shape, &mapreduce.FuncReader{Fn: fn}, sidx.BuildOptions{})
}

// syntheticInfo fills the "*" variable's registration metadata from a
// build attempt (ix nil means the source runs unpruned).
func syntheticInfo(shape []int64, ix *sidx.VarIndex, took time.Duration) VariableInfo {
	vi := VariableInfo{
		Name:   "*",
		Shape:  append([]int64(nil), shape...),
		Splits: defaultSplitCount(coords.NewShape(shape...)),
	}
	vi.IndexStatus = "none"
	if ix != nil {
		vi.IndexStatus = "built"
		vi.IndexBlocks = len(ix.Blocks)
		vi.IndexBytes = (&sidx.Index{Vars: []*sidx.VarIndex{ix}}).EncodedSize()
		vi.IndexBuildMs = float64(took) / float64(time.Millisecond)
	}
	return vi
}

// AddSynthetic registers a pure-function dataset of the given shape;
// any variable name resolves to it.
func (r *Registry) AddSynthetic(name string, shape []int64, fn func(k []int64) float64) error {
	if fn == nil {
		return fmt.Errorf("server: nil synthetic dataset function")
	}
	// No index for opaque functions: registration may not invoke caller
	// code (a fn may block, be expensive, or have side effects), so only
	// file and generator-backed datasets — whose data the registry owns —
	// are scanned. IndexStatus stays "none" and queries run unpruned.
	info := DatasetInfo{Name: name, Kind: "synthetic",
		Variables: []VariableInfo{syntheticInfo(shape, nil, 0)}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.gens[name]++
	src := &source{info: info, shape: append([]int64(nil), shape...), fn: fn}
	r.sources[name] = src
	r.nsMirrorLocked(name, src)
	return nil
}

// AddGenerated registers a synthetic dataset backed by one of the
// deterministic datagen generators. Unlike AddSynthetic's opaque
// function, a generated dataset is described by a cluster.DatasetSpec,
// so sidr-worker processes can reproduce it bit-identically from the
// spec alone and cluster-routed jobs can use it.
func (r *Registry) AddGenerated(name string, spec cluster.DatasetSpec) error {
	if spec.Kind != "synthetic" {
		return fmt.Errorf("server: generated dataset %q needs kind \"synthetic\", got %q", name, spec.Kind)
	}
	if len(spec.Shape) == 0 {
		return fmt.Errorf("server: generated dataset %q needs a shape", name)
	}
	fn, err := cluster.GeneratorFunc(spec)
	if err != nil {
		return err
	}
	start := time.Now()
	ix, _ := buildSyntheticIndex(coords.NewShape(spec.Shape...), fn)
	info := DatasetInfo{Name: name, Kind: "synthetic",
		Variables: []VariableInfo{syntheticInfo(spec.Shape, ix, time.Since(start))}}
	idx := make(map[string]*sidx.VarIndex)
	if ix != nil {
		idx["*"] = ix
	}
	specCopy := spec
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.gens[name]++
	src := &source{
		info:  info,
		shape: append([]int64(nil), spec.Shape...),
		fn:    func(k []int64) float64 { return fn(coords.Coord(k)) },
		spec:  &specCopy,
		idx:   idx,
	}
	r.sources[name] = src
	r.nsMirrorLocked(name, src)
	return nil
}

// DatasetSpec describes a registered dataset in a form a cluster worker
// can resolve by itself: file datasets by path+variable, generated
// synthetics by their generator spec. Opaque AddSynthetic functions are
// not describable. Implements jobs.DatasetSpecProvider.
func (r *Registry) DatasetSpec(name, variable string) (cluster.DatasetSpec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[name]
	if !ok {
		return cluster.DatasetSpec{}, fmt.Errorf("server: unknown dataset %q", name)
	}
	switch {
	case src.spec != nil:
		return *src.spec, nil
	case src.path != "":
		return cluster.DatasetSpec{Kind: "file", Path: src.path, Variable: variable}, nil
	default:
		return cluster.DatasetSpec{}, fmt.Errorf("server: synthetic dataset %q has no generator spec; cluster workers cannot reproduce it", name)
	}
}

// ScanDir registers every *.ncf file in dir under its basename (without
// extension), returning how many were added.
func (r *Registry) ScanDir(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ncf"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".ncf")
		if err := r.AddFile(name, p); err != nil {
			return n, fmt.Errorf("server: registering %s: %w", p, err)
		}
		n++
	}
	return n, nil
}

// List returns the registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove unregisters the dataset and fires the invalidation hook. Open
// handles are retired: idle ones close immediately, busy ones close as
// their last user releases them — in-flight jobs finish against the
// contents they started with. Returns false for unknown names.
// Re-registration is Remove followed by Add*: the name's generation
// keeps counting up, so cached results keyed on the old version can
// never be served against the new contents.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	_, ok := r.sources[name]
	if !ok {
		r.mu.Unlock()
		return false
	}
	delete(r.sources, name)
	if r.ns != nil {
		_ = r.ns.Remove(name)
	}
	prefix := name + "\x00"
	for key, h := range r.open {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		h.retired = true
		if h.refs <= 0 {
			h.ds.Close()
		}
		delete(r.open, key)
	}
	fn := r.onInvalidate
	r.mu.Unlock()
	if fn != nil {
		fn(name)
	}
	return true
}

// DatasetVersion returns an opaque token pinning the dataset variable's
// current contents: registration generation, variable shape, and the
// structural index fingerprint (a content summary for file and
// generated datasets). Any re-registration bumps the generation, so the
// token changes whenever the answer to a query could. Implements
// jobs.VersionProvider. Returns false for unknown datasets or
// variables — such requests bypass the result cache entirely, which is
// also how opaque AddSynthetic functions without indexes stay safe:
// their token still changes per registration via the generation.
func (r *Registry) DatasetVersion(name, variable string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[name]
	if !ok {
		return "", false
	}
	var vi *VariableInfo
	for i := range src.info.Variables {
		if src.info.Variables[i].Name == variable || src.info.Variables[i].Name == "*" {
			vi = &src.info.Variables[i]
			break
		}
	}
	if vi == nil {
		return "", false
	}
	var fp uint32
	if src.idx != nil {
		if ix := src.idx[variable]; ix != nil {
			fp = ix.Fingerprint()
		} else if ix := src.idx["*"]; ix != nil {
			fp = ix.Fingerprint()
		}
	}
	return fmt.Sprintf("%s#%d|%v|%08x", name, r.gens[name], vi.Shape, fp), true
}

// Acquire opens (or reuses) the dataset's handle for the variable and
// bumps its refcount; the returned release func must be called when the
// job is done with it. Implements jobs.DatasetProvider.
func (r *Registry) Acquire(name, variable string) (*sidr.Dataset, func(), error) {
	key := name + "\x00" + variable
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closing {
		return nil, nil, fmt.Errorf("server: registry closed")
	}
	if h, ok := r.open[key]; ok {
		h.refs++
		return h.ds, r.releaseFunc(key, h), nil
	}
	src, ok := r.sources[name]
	if !ok {
		return nil, nil, fmt.Errorf("server: unknown dataset %q", name)
	}
	var ds *sidr.Dataset
	var err error
	if src.fn != nil {
		ds, err = sidr.Synthetic(src.shape, src.fn)
	} else {
		ds, err = sidr.Open(src.path, variable)
	}
	if err != nil {
		return nil, nil, err
	}
	h := &handle{ds: ds, refs: 1}
	r.open[key] = h
	return ds, r.releaseFunc(key, h), nil
}

// releaseFunc returns a once-only decrement for the handle. It captures
// the handle itself, not just the key: after a Remove and
// re-registration the key may map to a fresh handle, and releasing the
// retired one must not touch its replacement. Caller holds r.mu.
func (r *Registry) releaseFunc(key string, h *handle) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			h.refs--
			if h.refs > 0 {
				return
			}
			if h.retired {
				// Already out of r.open (Remove evicted it); just close.
				h.ds.Close()
				return
			}
			if r.closing {
				h.ds.Close()
				if r.open[key] == h {
					delete(r.open, key)
				}
			}
		})
	}
}

// Index returns the structural block-range index for the dataset
// variable, or nil when none was built. Synthetic sources answer any
// variable name with their "*" index. Implements jobs.IndexProvider.
func (r *Registry) Index(name, variable string) *sidx.VarIndex {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[name]
	if !ok || src.idx == nil {
		return nil
	}
	if vi := src.idx[variable]; vi != nil {
		return vi
	}
	return src.idx["*"]
}

// IndexBytes returns the total serialized size of every registered
// structural index; the server exposes it as a gauge.
func (r *Registry) IndexBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, src := range r.sources {
		for _, ix := range src.idx {
			total += (&sidx.Index{Vars: []*sidx.VarIndex{ix}}).EncodedSize()
		}
	}
	return total
}

// OpenHandles returns the number of currently open dataset handles.
func (r *Registry) OpenHandles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Close stops further Acquires and closes every handle whose refcount is
// zero; handles still in use close when their last user releases them.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closing = true
	var first error
	for key, h := range r.open {
		if h.refs <= 0 {
			if err := h.ds.Close(); err != nil && first == nil {
				first = err
			}
			delete(r.open, key)
		}
	}
	return first
}
