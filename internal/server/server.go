// Package server exposes the query engine over HTTP. It is the wire
// surface of sidrd:
//
//	POST   /v1/query            submit a query; 202 + job snapshot
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/stream NDJSON: each keyblock's output the
//	                            moment it commits (SIDR's early correct
//	                            results over the wire), then a terminal
//	                            done/failed/cancelled event
//	GET    /v1/datasets         registered datasets and their variables
//	GET    /metrics             plain-text metrics exposition
//	GET    /healthz             liveness probe
//
// Query-API responses (JSON and the NDJSON stream) are gzip-compressed
// when the client sends Accept-Encoding: gzip; the stream's compressor
// is flushed with every partial so compression never delays an early
// result. Submissions are attributed to the tenant named by the
// X-SIDR-Tenant header (default "default") for per-tenant admission
// quotas and weighted scheduling; quota breaches answer 429 with
// detail "tenant-quota".
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sidr"
	"sidr/internal/cluster"
	"sidr/internal/jobs"
	"sidr/internal/metrics"
	"sidr/internal/wire"
)

// Server routes daemon HTTP traffic. Create with New.
type Server struct {
	mgr      *jobs.Manager
	registry *Registry
	metrics  *metrics.Registry
	mux      *http.ServeMux
	requests *metrics.Counter
}

// New wires the handler set. The first three dependencies are required;
// coord may be nil for a daemon without clustering. When set, the
// coordinator's worker endpoints (/v1/cluster/register, heartbeat,
// workers) are mounted alongside the query API.
func New(mgr *jobs.Manager, registry *Registry, reg *metrics.Registry, coord *cluster.Coordinator) *Server {
	s := &Server{
		mgr:      mgr,
		registry: registry,
		metrics:  reg,
		mux:      http.NewServeMux(),
		requests: reg.Counter("sidrd_http_requests_total"),
	}
	s.mux.HandleFunc("POST /v1/query", gzipped(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", gzipped(s.handleListJobs))
	s.mux.HandleFunc("GET /v1/jobs/{id}", gzipped(s.handleGetJob))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", gzipped(s.handleStream))
	s.mux.HandleFunc("GET /v1/datasets", gzipped(s.handleDatasets))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if coord != nil {
		coord.Mount(s.mux)
	}
	// A re-registered or removed dataset invalidates its cached results;
	// version-keying already prevents stale hits, this reclaims the bytes.
	registry.SetOnInvalidate(func(name string) { mgr.InvalidateDataset(name) })
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, wire.Error{Error: err.Error(), Detail: errorDetail(err)})
}

// errorDetail maps runtime errors onto the wire detail vocabulary so
// clients can react to cluster saturation without parsing error text.
func errorDetail(err error) string {
	switch {
	case errors.Is(err, cluster.ErrNoWorkers):
		return wire.DetailNoWorkers
	// ErrSpillCorrupt is checked before ErrRetryExhausted: an attempt
	// budget spent on checksum failures wraps both sentinels, and the
	// integrity cause is the one clients need to see.
	case errors.Is(err, cluster.ErrSpillCorrupt):
		return wire.DetailSpillCorrupt
	case errors.Is(err, cluster.ErrRetryExhausted):
		return wire.DetailShuffleRetryExhausted
	case errors.Is(err, jobs.ErrTenantQuota):
		return wire.DetailTenantQuota
	}
	return ""
}

// rejectFull answers a queue-full submission with a 429 whose detail
// separates executor saturation from pure admission saturation: the job
// queue being full with an idle executor means jobs are arriving faster
// than workers pick them up, while a saturated executor means the
// machine is out of task capacity.
func (s *Server) rejectFull(w http.ResponseWriter, err error) {
	st := s.mgr.ExecStats()
	var detail string
	if st.Queued > 0 || st.Running >= st.Workers {
		detail = fmt.Sprintf("executor saturated: %d/%d workers busy, %d tasks queued",
			st.Running, st.Workers, st.Queued)
	} else {
		detail = fmt.Sprintf("admission queue full; executor has capacity (%d/%d workers busy)",
			st.Running, st.Workers)
	}
	writeJSON(w, http.StatusTooManyRequests, wire.Error{Error: err.Error(), Detail: detail})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// The header is the authoritative tenant identity: it overrides a
	// body field so a proxy stamping X-SIDR-Tenant cannot be bypassed by
	// request payloads.
	if t := r.Header.Get("X-SIDR-Tenant"); t != "" {
		req.Tenant = t
	}
	j, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.rejectFull(w, err)
	case errors.Is(err, jobs.ErrTenantQuota):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, cluster.ErrNoWorkers):
		// The cluster has no live worker: retryable once workers
		// register, so 503 rather than a client error.
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Jobs())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	// Completed jobs carry the assembled result inline.
	type jobView struct {
		jobs.Snapshot
		Result *wire.Result `json:"result,omitempty"`
	}
	writeJSON(w, http.StatusOK, jobView{Snapshot: j.Snapshot(), Result: wire.FromResult(j.Result())})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	flush() // commit headers before the first keyblock lands

	state, err := j.Stream(r.Context(), func(pr sidr.PartialResult) error {
		p := wire.FromPartial(pr)
		if err := enc.Encode(wire.StreamEvent{Type: wire.EventPartial, JobID: j.ID, Partial: &p}); err != nil {
			return err
		}
		flush()
		return nil
	})
	if err != nil {
		return // client gone or write failed; nothing more to say
	}
	final := wire.StreamEvent{JobID: j.ID}
	switch state {
	case jobs.Done:
		final.Type = wire.EventDone
		final.Result = wire.FromResult(j.Result())
	case jobs.Cancelled:
		final.Type = wire.EventCancelled
		if jerr := j.Err(); jerr != nil {
			final.Error = jerr.Error()
		}
	default:
		final.Type = wire.EventFailed
		if jerr := j.Err(); jerr != nil {
			final.Error = jerr.Error()
			final.Detail = errorDetail(jerr)
		}
	}
	enc.Encode(final)
	flush()
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Gauge("sidrd_datasets_open").Set(int64(s.registry.OpenHandles()))
	s.metrics.Gauge("sidrd_sidx_index_bytes").Set(s.registry.IndexBytes())
	st := s.mgr.ExecStats()
	s.metrics.Gauge("sidrd_exec_workers").Set(int64(st.Workers))
	s.metrics.Gauge("sidrd_exec_queue_depth").Set(int64(st.Queued))
	s.metrics.Gauge("sidrd_exec_tasks_runnable").Set(int64(st.Runnable))
	s.metrics.Gauge("sidrd_exec_tasks_running").Set(int64(st.Running))
	s.metrics.Gauge("sidrd_exec_peak_running").Set(int64(st.PeakRunning))
	disp := s.metrics.Counter("sidrd_exec_tasks_dispatched_total")
	disp.Add(st.Dispatched - disp.Value()) // sync the counter to the executor's total
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
