package server

import (
	"compress/gzip"
	"net/http"
	"strings"
)

// gzipWriter layers a gzip compressor over the response while keeping
// the streaming contract: Flush drains the compressor's buffer as a
// complete deflate block and then flushes the HTTP layer, so an NDJSON
// partial written before a Flush is decodable by the client the moment
// it is sent — compression must not hold early results hostage.
type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipWriter) Write(p []byte) (int, error) { return g.gz.Write(p) }

func (g *gzipWriter) Flush() {
	g.gz.Flush()
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// acceptsGzip reports whether the request's Accept-Encoding allows a
// gzip response (a "gzip" token not disabled with q=0).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) != "gzip" {
			continue
		}
		q := strings.TrimSpace(params)
		return !(strings.HasPrefix(q, "q=0") && !strings.HasPrefix(q, "q=0."))
	}
	return false
}

// gzipped wraps a handler so clients that ask for gzip get it — JSON
// results and NDJSON streams alike — and clients that don't are served
// identity bytes. The Content-Length is necessarily dropped (the
// compressed size isn't known up front); streaming responses never had
// one anyway.
func gzipped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !acceptsGzip(r) {
			h(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		h(&gzipWriter{ResponseWriter: w, gz: gz}, r)
	}
}
