package server

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sidr/internal/cluster"
	"sidr/internal/jobs"
	"sidr/internal/wire"
)

// resultBytes fetches a finished job and returns the raw JSON of its
// "result" field — the wire bytes a client actually compares.
func resultBytes(t *testing.T, f *fixture, id string) string {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	res, ok := doc["result"]
	if !ok {
		t.Fatalf("job %s response has no result field", id)
	}
	return string(res)
}

func tempSpec(seed int64) cluster.DatasetSpec {
	return cluster.DatasetSpec{Kind: "synthetic", Generator: "temperature", Shape: []int64{24, 16}, Seed: seed}
}

// TestReregistrationDropsCachedResults is the serving tier's
// correctness spine over HTTP: repeat query → recorded cache hit with
// byte-identical result; re-register the dataset with different
// contents → the cache entry dies and a fresh execution answers with
// the new contents.
func TestReregistrationDropsCachedResults(t *testing.T) {
	registry := NewRegistry()
	if err := registry.AddGenerated("temp", tempSpec(7)); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)

	req := jobs.Request{Dataset: "temp", Query: "avg v[0,0 : 24,16] es {4,4}", Reducers: 4}
	run := func() jobs.Snapshot {
		t.Helper()
		snap := f.submit(req)
		f.waitState(snap.ID, "done")
		return snap
	}

	first := run()
	second := run()
	if !second.ResultHit {
		t.Fatalf("repeat query not served from cache: %+v", second)
	}
	if a, b := resultBytes(t, f, first.ID), resultBytes(t, f, second.ID); a != b {
		t.Fatalf("cached result bytes differ from original:\n%s\nvs\n%s", a, b)
	}

	// Re-registration: same name, different seed — different contents.
	if !registry.Remove("temp") {
		t.Fatal("Remove returned false for a registered dataset")
	}
	if err := registry.AddGenerated("temp", tempSpec(8)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.metricsText(), "sidrd_resultcache_evictions_total 1") {
		t.Fatalf("re-registration did not evict the cached entry:\n%s", f.metricsText())
	}

	third := run()
	if third.ResultHit {
		t.Fatal("query after re-registration served stale cache entry")
	}
	if a, b := resultBytes(t, f, first.ID), resultBytes(t, f, third.ID); a == b {
		t.Fatal("new contents returned the old dataset's bytes")
	}

	// And the new version caches in its own right, byte-identically.
	fourth := run()
	if !fourth.ResultHit {
		t.Fatal("repeat against re-registered dataset missed the cache")
	}
	if a, b := resultBytes(t, f, third.ID), resultBytes(t, f, fourth.ID); a != b {
		t.Fatal("cached bytes differ from the fresh execution after re-registration")
	}
}

func TestTenantQuota429(t *testing.T) {
	gate := make(chan struct{})
	gateClosed := false
	defer func() {
		if !gateClosed {
			close(gate)
		}
	}()
	registry := NewRegistry()
	if err := registry.AddSynthetic("gated", []int64{16}, func(k []int64) float64 {
		<-gate
		return float64(k[0])
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixtureCfg(t, registry, jobs.Config{
		Tenants: map[string]jobs.TenantPolicy{"acme": {MaxInFlight: 1}},
	})

	post := func(query, tenant string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(jobs.Request{Dataset: "gated", Query: query, Workers: 1})
		hr, err := http.NewRequest("POST", f.ts.URL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			hr.Header.Set("X-SIDR-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("avg v[0 : 16] es {4}", "acme")
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first acme submit = %d, want 202", resp.StatusCode)
	}
	if snap.Tenant != "acme" {
		t.Fatalf("snapshot tenant = %q, want acme (header attribution)", snap.Tenant)
	}
	f.waitState(snap.ID, "running")

	// Distinct query (no collapse) from the same tenant: over quota.
	resp = post("sum v[0 : 16] es {4}", "acme")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	var we wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Detail != wire.DetailTenantQuota {
		t.Fatalf("429 detail = %q, want %q", we.Detail, wire.DetailTenantQuota)
	}

	// The default tenant is not subject to acme's quota.
	resp2 := post("sum v[0 : 16] es {4}", "")
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("default-tenant submit = %d, want 202", resp2.StatusCode)
	}

	gateClosed = true
	close(gate)
	f.waitState(snap.ID, "done")
}

// TestGzipStreamDeliversEarlyPartials asserts the flush-aware gzip
// path: with Accept-Encoding: gzip the NDJSON stream is compressed, yet
// early partials are decodable while the job is demonstrably still
// running — compression must not buffer first results until job end.
func TestGzipStreamDeliversEarlyPartials(t *testing.T) {
	gate := make(chan struct{})
	gateClosed := false
	defer func() {
		if !gateClosed {
			close(gate)
		}
	}()
	registry := NewRegistry()
	if err := registry.AddSynthetic("blocky", []int64{64}, func(k []int64) float64 {
		if k[0] >= 48 {
			<-gate
		}
		return float64(k[0]%7) + 0.5
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)

	req := jobs.Request{Dataset: "blocky", Query: "avg v[0 : 64] es {4}", Reducers: 4, Workers: 1, SplitPoints: 8}
	snap := f.submit(req)

	hr, err := http.NewRequest("GET", f.ts.URL+"/v1/jobs/"+snap.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Set explicitly so the client does NOT transparently decompress; we
	// want to see the encoded stream.
	hr.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("stream Content-Encoding = %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("opening gzip stream: %v", err)
	}
	defer zr.Close()

	scanner := bufio.NewScanner(zr)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	partials := 0
	var done *wire.StreamEvent
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case wire.EventPartial:
			partials++
			if partials == 2 {
				// Two compressed partials decoded; the job must still be
				// running — its last keyblock is gated. This is the
				// first-partial-latency guarantee under compression.
				if st := f.jobState(snap.ID); st != "running" {
					t.Fatalf("after 2 gzip partials job state = %q, want running", st)
				}
				gateClosed = true
				close(gate)
			}
		case wire.EventDone:
			done = &ev
		default:
			t.Fatalf("unexpected stream event %+v", ev)
		}
		if done != nil {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if partials < 2 || done == nil || done.Result == nil {
		t.Fatalf("gzip stream: %d partials, done=%v", partials, done)
	}
}

// TestGzipJSONMatchesIdentity asserts a gzip job fetch decodes to the
// identity response's exact bytes.
func TestGzipJSONMatchesIdentity(t *testing.T) {
	registry := NewRegistry()
	if err := registry.AddGenerated("temp", tempSpec(7)); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)
	snap := f.submit(jobs.Request{Dataset: "temp", Query: "avg v[0,0 : 24,16] es {4,4}", Reducers: 4})
	f.waitState(snap.ID, "done")

	get := func(gzipOn bool) []byte {
		t.Helper()
		hr, err := http.NewRequest("GET", f.ts.URL+"/v1/jobs/"+snap.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gzipOn {
			hr.Header.Set("Accept-Encoding", "gzip")
		} else {
			hr.Header.Set("Accept-Encoding", "identity")
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r io.Reader = resp.Body
		if gzipOn {
			if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
				t.Fatalf("Content-Encoding = %q, want gzip", ce)
			}
			zr, err := gzip.NewReader(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			defer zr.Close()
			r = zr
		} else if ce := resp.Header.Get("Content-Encoding"); ce != "" {
			t.Fatalf("identity request got Content-Encoding %q", ce)
		}
		b, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain, zipped := get(false), get(true)
	if !bytes.Equal(plain, zipped) {
		t.Fatalf("gzip payload decodes differently:\n%s\nvs\n%s", zipped, plain)
	}
}
