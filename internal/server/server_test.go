package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/jobs"
	"sidr/internal/metrics"
	"sidr/internal/wire"
)

// fixture wires a full daemon stack against an httptest server.
type fixture struct {
	t        *testing.T
	ts       *httptest.Server
	mgr      *jobs.Manager
	registry *Registry
	metrics  *metrics.Registry
}

func newFixture(t *testing.T, registry *Registry) *fixture {
	t.Helper()
	return newFixtureCfg(t, registry, jobs.Config{})
}

// newFixtureCfg is newFixture with manager knobs (queue depth, worker
// counts) under test control; cfg.Datasets and cfg.Metrics are set here.
func newFixtureCfg(t *testing.T, registry *Registry, cfg jobs.Config) *fixture {
	t.Helper()
	reg := metrics.New()
	cfg.Datasets = registry
	cfg.Metrics = reg
	mgr, err := jobs.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mgr, registry, reg, cfg.Cluster))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
		registry.Close()
	})
	return &fixture{t: t, ts: ts, mgr: mgr, registry: registry, metrics: reg}
}

func (f *fixture) submit(req jobs.Request) jobs.Snapshot {
	f.t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(f.ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		f.t.Fatal(err)
	}
	return snap
}

func (f *fixture) jobState(id string) string {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		f.t.Fatal(err)
	}
	return snap.State
}

func (f *fixture) waitState(id, want string) {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.jobState(id); st == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.t.Fatalf("job %s never reached state %q (now %q)", id, want, f.jobState(id))
}

func (f *fixture) metricsText() string {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestStreamingEndToEnd is the acceptance path: a SIDR query whose last
// keyblock's inputs are gated, so early keyblocks stream while the job
// is demonstrably still running; the assembled stream must equal a
// direct sidr.Run, and a second identical submission must hit the plan
// cache.
func TestStreamingEndToEnd(t *testing.T) {
	gate := make(chan struct{})
	gateClosed := false
	defer func() {
		if !gateClosed {
			close(gate)
		}
	}()
	registry := NewRegistry()
	if err := registry.AddSynthetic("blocky", []int64{64}, func(k []int64) float64 {
		if k[0] >= 48 {
			<-gate // hold back the last keyblock's inputs
		}
		return float64(k[0]%7) + 0.5
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)

	req := jobs.Request{
		Dataset:     "blocky",
		Query:       "avg v[0 : 64] es {4}",
		Engine:      "sidr",
		Reducers:    4,
		Workers:     1,
		SplitPoints: 8,
	}
	snap := f.submit(req)

	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var partials []wire.Partial
	var done *wire.StreamEvent
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case wire.EventPartial:
			partials = append(partials, *ev.Partial)
			if len(partials) == 2 {
				// Two early results have arrived over the wire; the job
				// must still be running — its last keyblock is gated.
				if st := f.jobState(snap.ID); st != "running" {
					t.Fatalf("after 2 partial events job state = %q, want running", st)
				}
				gateClosed = true
				close(gate)
			}
		case wire.EventDone:
			done = &ev
		default:
			t.Fatalf("unexpected stream event %+v", ev)
		}
		if done != nil {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(partials) < 2 {
		t.Fatalf("got %d partial events before done, want >= 2", len(partials))
	}
	if done == nil || done.Result == nil {
		t.Fatal("stream ended without a done event carrying the result")
	}

	// The assembled stream must equal a direct in-process run.
	ds, err := sidr.Synthetic([]int64{64}, func(k []int64) float64 { return float64(k[0]%7) + 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	q, err := sidr.ParseQuery(req.Query)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sidr.Run(ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: 4, SplitPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Result.Keys) != len(direct.Keys) {
		t.Fatalf("streamed result has %d rows, direct run %d", len(done.Result.Keys), len(direct.Keys))
	}
	for i := range direct.Keys {
		if fmt.Sprint(done.Result.Keys[i]) != fmt.Sprint(direct.Keys[i]) ||
			fmt.Sprint(done.Result.Values[i]) != fmt.Sprint(direct.Values[i]) {
			t.Fatalf("row %d: stream %v=%v, direct %v=%v", i,
				done.Result.Keys[i], done.Result.Values[i], direct.Keys[i], direct.Values[i])
		}
	}
	// Every key of the final result must have arrived in some partial.
	streamed := make(map[string][]float64)
	for _, p := range partials {
		for i := range p.Keys {
			streamed[fmt.Sprint(p.Keys[i])] = p.Values[i]
		}
	}
	for i, k := range direct.Keys {
		vals, ok := streamed[fmt.Sprint(k)]
		if !ok || fmt.Sprint(vals) != fmt.Sprint(direct.Values[i]) {
			t.Fatalf("key %v missing or wrong in partial stream", k)
		}
	}

	// Second identical submission: served from the result cache without
	// re-executing.
	snap2 := f.submit(req)
	f.waitState(snap2.ID, "done")
	if !strings.Contains(f.metricsText(), "sidrd_resultcache_hits_total 1") {
		t.Fatalf("metrics do not record a result-cache hit:\n%s", f.metricsText())
	}

	// The same query against a different dataset of the same shape misses
	// the result cache (version differs) but reuses the prepared plan —
	// plans are a function of shape, not contents.
	if err := registry.AddSynthetic("blocky2", []int64{64}, func(k []int64) float64 { return float64(k[0]) }); err != nil {
		t.Fatal(err)
	}
	req3 := req
	req3.Dataset = "blocky2"
	snap3 := f.submit(req3)
	f.waitState(snap3.ID, "done")
	if !strings.Contains(f.metricsText(), "sidrd_plan_cache_hits_total 1") {
		t.Fatalf("metrics do not record a plan-cache hit:\n%s", f.metricsText())
	}
}

// TestCancellation verifies DELETE stops a running job promptly, the job
// surfaces ctx.Err(), and no goroutines leak.
func TestCancellation(t *testing.T) {
	registry := NewRegistry()
	if err := registry.AddSynthetic("slow", []int64{1 << 20}, func(k []int64) float64 {
		time.Sleep(50 * time.Microsecond)
		return float64(k[0])
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)

	before := runtime.NumGoroutine()
	snap := f.submit(jobs.Request{
		Dataset: "slow",
		Query:   fmt.Sprintf("avg v[0 : %d] es {16}", 1<<20),
		Workers: 2,
	})
	f.waitState(snap.ID, "running")

	httpReq, err := http.NewRequest(http.MethodDelete, f.ts.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	f.waitState(snap.ID, "cancelled")
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
	j, err := f.mgr.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Err() == nil || !strings.Contains(j.Err().Error(), context.Canceled.Error()) {
		t.Fatalf("job error = %v, want context.Canceled", j.Err())
	}

	// The engine's goroutines must unwind after cancellation. Idle
	// keep-alive client connections are torn down first so only engine
	// goroutines are counted.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before cancel run, %d after", before, n)
	}
	if !strings.Contains(f.metricsText(), "sidrd_jobs_cancelled_total 1") {
		t.Fatalf("metrics missing cancelled count:\n%s", f.metricsText())
	}
}

// readStream consumes a job's NDJSON stream and returns the events.
func (f *fixture) readStream(id string) []wire.StreamEvent {
	f.t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []wire.StreamEvent
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			f.t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		f.t.Fatal(err)
	}
	return events
}

// TestStreamFailedJob pins the wire contract that a failing job's stream
// still closes with exactly one terminal event, of type "failed".
func TestStreamFailedJob(t *testing.T) {
	f := newFixture(t, NewRegistry())
	snap := f.submit(jobs.Request{Dataset: "nope", Query: "avg v[0 : 16] es {4}"})
	f.waitState(snap.ID, "failed")

	events := f.readStream(snap.ID)
	if len(events) != 1 {
		t.Fatalf("failed-job stream = %+v, want exactly one terminal event", events)
	}
	ev := events[0]
	if ev.Type != wire.EventFailed || ev.JobID != snap.ID {
		t.Fatalf("terminal event = %+v, want type %q for job %s", ev, wire.EventFailed, snap.ID)
	}
	if ev.Error == "" {
		t.Fatal("failed event carries no error")
	}
}

// TestStreamCancelledJob verifies a cancelled job's live stream ends with
// a "cancelled" terminal event surfacing ctx.Err().
func TestStreamCancelledJob(t *testing.T) {
	registry := NewRegistry()
	if err := registry.AddSynthetic("slow", []int64{1 << 20}, func(k []int64) float64 {
		time.Sleep(50 * time.Microsecond)
		return float64(k[0])
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, registry)
	snap := f.submit(jobs.Request{
		Dataset: "slow",
		Query:   fmt.Sprintf("avg v[0 : %d] es {16}", 1<<20),
		Workers: 2,
	})
	f.waitState(snap.ID, "running")

	streamed := make(chan []wire.StreamEvent, 1)
	go func() { streamed <- f.readStream(snap.ID) }()

	httpReq, err := http.NewRequest(http.MethodDelete, f.ts.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var events []wire.StreamEvent
	select {
	case events = <-streamed:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after cancellation")
	}
	if len(events) == 0 {
		t.Fatal("cancelled-job stream closed with no events")
	}
	last := events[len(events)-1]
	if last.Type != wire.EventCancelled {
		t.Fatalf("terminal event = %+v, want type %q", last, wire.EventCancelled)
	}
	if !strings.Contains(last.Error, context.Canceled.Error()) {
		t.Fatalf("cancelled event error = %q, want it to surface %v", last.Error, context.Canceled)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != wire.EventPartial {
			t.Fatalf("non-partial event %+v before the terminal one", ev)
		}
	}
}

func TestFileDatasetAndListing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "temp.ncf")
	if err := datagen.WriteDataset(path, "temp", coords.NewShape(28, 10), datagen.Temperature(1)); err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry()
	n, err := registry.ScanDir(dir)
	if err != nil || n != 1 {
		t.Fatalf("ScanDir = %d, %v; want 1", n, err)
	}
	f := newFixture(t, registry)

	resp, err := http.Get(f.ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "temp" || infos[0].Kind != "file" {
		t.Fatalf("datasets = %+v", infos)
	}
	if len(infos[0].Variables) != 1 || infos[0].Variables[0].Name != "temp" {
		t.Fatalf("variables = %+v", infos[0].Variables)
	}

	// Two concurrent jobs over the file share one refcounted handle.
	snapA := f.submit(jobs.Request{Dataset: "temp", Query: "avg temp[0,0 : 28,10] es {7,5}"})
	snapB := f.submit(jobs.Request{Dataset: "temp", Query: "max temp[0,0 : 28,10] es {7,5}"})
	f.waitState(snapA.ID, "done")
	f.waitState(snapB.ID, "done")
	if got := registry.OpenHandles(); got != 1 {
		t.Fatalf("open handles = %d, want 1 shared handle", got)
	}
}

func TestHTTPErrorsAndHealth(t *testing.T) {
	registry := NewRegistry()
	f := newFixture(t, registry)

	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(f.ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(f.ts.URL+"/v1/query", "application/json", strings.NewReader(`{"dataset":"x","query":"garbage"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", resp.StatusCode)
	}

	if !strings.Contains(f.metricsText(), "sidrd_http_requests_total") {
		t.Fatal("metrics missing request counter")
	}
}

// TestQueueFullDetailAndExecGauges drives the daemon to admission
// rejection while the shared executor is busy: the 429 must carry a
// detail separating executor saturation from queue saturation
// (satellite 6), and /metrics must expose the executor gauges.
func TestQueueFullDetailAndExecGauges(t *testing.T) {
	gate := make(chan struct{})
	gateClosed := false
	defer func() {
		if !gateClosed {
			close(gate)
		}
	}()
	registry := NewRegistry()
	if err := registry.AddSynthetic("gated", []int64{16}, func(k []int64) float64 {
		<-gate
		return float64(k[0])
	}); err != nil {
		t.Fatal(err)
	}
	f := newFixtureCfg(t, registry, jobs.Config{MaxConcurrent: 1, ExecWorkers: 1, QueueDepth: 1})

	req := jobs.Request{Dataset: "gated", Query: "avg v[0 : 16] es {4}", Workers: 1}
	running := f.submit(req)
	f.waitState(running.ID, "running")
	// Distinct queries: identical ones would collapse onto the running
	// leader instead of consuming queue slots.
	req2 := req
	req2.Query = "avg v[0 : 16] es {8}"
	f.submit(req2) // fills the depth-1 queue

	// Third submission must be rejected with a structured 429.
	req3 := req
	req3.Query = "avg v[0 : 16] es {2}"
	body, _ := json.Marshal(req3)
	resp, err := http.Post(f.ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission = %d, want 429", resp.StatusCode)
	}
	var we wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Error == "" || we.Detail == "" {
		t.Fatalf("429 envelope incomplete: %+v", we)
	}
	if !strings.Contains(we.Detail, "executor saturated") {
		t.Fatalf("429 detail = %q, want executor saturation called out", we.Detail)
	}

	text := f.metricsText()
	for _, m := range []string{
		"sidrd_exec_workers 1",
		"sidrd_exec_queue_depth",
		"sidrd_exec_tasks_runnable",
		"sidrd_exec_tasks_running 1",
		"sidrd_exec_peak_running 1",
		"sidrd_exec_tasks_dispatched_total",
	} {
		if !strings.Contains(text, m) {
			t.Fatalf("metrics missing %q:\n%s", m, text)
		}
	}

	close(gate)
	gateClosed = true
	f.waitState(running.ID, "done")
}
