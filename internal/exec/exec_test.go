package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drain waits until the pool is idle.
func drain(t *testing.T, e *Executor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Stats()
		if s.Queued == 0 && s.Running == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool never drained: %+v", e.Stats())
}

func TestPoolBoundsConcurrency(t *testing.T) {
	// Satellite 3a: 4 concurrent jobs on a 4-worker pool never have more
	// than 4 tasks live at once.
	const workers, jobs, tasksPerJob = 4, 4, 32
	e := New(workers)
	defer e.Close()

	var live, peak atomic.Int64
	var wg sync.WaitGroup
	for jb := 0; jb < jobs; jb++ {
		h := e.NewHandle(HandleOptions{})
		defer h.Close()
		for i := 0; i < tasksPerJob; i++ {
			wg.Add(1)
			h.Submit(Map, i, func() {
				defer wg.Done()
				n := live.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
				live.Add(-1)
			})
		}
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("live tasks peaked at %d, pool size %d", p, workers)
	}
	if s := e.Stats(); s.PeakRunning > workers {
		t.Fatalf("PeakRunning %d exceeds pool size %d", s.PeakRunning, workers)
	}
	if s := e.Stats(); s.Dispatched != jobs*tasksPerJob {
		t.Fatalf("dispatched %d tasks, want %d", s.Dispatched, jobs*tasksPerJob)
	}
}

func TestCancelRemovesPendingWithoutStarvingPeers(t *testing.T) {
	// Satellite 3b: cancelling one handle's queued tasks must not run
	// them, and the surviving handle's work still completes.
	e := New(1) // single worker serialises dispatch
	defer e.Close()

	gate := make(chan struct{})
	victim := e.NewHandle(HandleOptions{})
	defer victim.Close()
	peer := e.NewHandle(HandleOptions{})
	defer peer.Close()

	var victimRan, peerRan atomic.Int64
	blocking := make(chan struct{})
	victim.Submit(Map, 0, func() { close(blocking); <-gate }) // occupies the only worker
	<-blocking
	for i := 0; i < 16; i++ {
		victim.Submit(Map, i+1, func() { victimRan.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		peer.Submit(Map, i, func() { defer wg.Done(); peerRan.Add(1) })
	}

	if n := victim.Cancel(); n != 16 {
		t.Fatalf("Cancel dropped %d tasks, want 16", n)
	}
	close(gate)
	wg.Wait()
	drain(t, e)
	if victimRan.Load() != 0 {
		t.Fatalf("%d cancelled tasks ran", victimRan.Load())
	}
	if peerRan.Load() != 8 {
		t.Fatalf("peer completed %d tasks, want 8", peerRan.Load())
	}
	if d := victim.Dispatched(); d != 1 {
		t.Fatalf("victim dispatched %d, want 1", d)
	}
}

func TestClassAndPriorityOrder(t *testing.T) {
	// With one worker, dispatch follows (class, priority, seq): every
	// Reduce precedes every Map, and priorities order within a class.
	e := New(1)
	defer e.Close()
	h := e.NewHandle(HandleOptions{})
	defer h.Close()

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	record := func(id int) func() {
		wg.Add(1)
		return func() { defer wg.Done(); mu.Lock(); order = append(order, id); mu.Unlock() }
	}
	wg.Add(1)
	h.Submit(Map, -1, func() { defer wg.Done(); <-gate }) // hold the worker while we queue
	h.Submit(Map, 2, record(102))
	h.Submit(Map, 0, record(100))
	h.Submit(Reduce, 1, record(1))
	h.Submit(Map, 1, record(101))
	h.Submit(Reduce, 0, record(0))
	close(gate)
	wg.Wait()

	want := []int{0, 1, 100, 101, 102}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMaxParallelCapsHandle(t *testing.T) {
	// A MaxParallel=1 handle on a 4-worker pool never runs two tasks at
	// once, and the throttled tasks show up as Queued but not Runnable.
	e := New(4)
	defer e.Close()
	h := e.NewHandle(HandleOptions{MaxParallel: 1})
	defer h.Close()

	started := make(chan struct{}, 16)
	release := make(chan struct{})
	var live, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		h.Submit(Map, i, func() {
			defer wg.Done()
			n := live.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			started <- struct{}{}
			<-release
			live.Add(-1)
		})
	}
	<-started // one task is holding its slot; the rest must be throttled
	s := e.Stats()
	if s.Running != 1 {
		t.Fatalf("Running = %d, want 1", s.Running)
	}
	if s.Queued != 5 || s.Runnable != 0 {
		t.Fatalf("Queued = %d Runnable = %d, want 5 and 0", s.Queued, s.Runnable)
	}
	close(release)
	wg.Wait()
	drain(t, e)
	if p := peak.Load(); p != 1 {
		t.Fatalf("capped handle peaked at %d concurrent tasks", p)
	}
}

func TestWeightedFairness(t *testing.T) {
	// A weight-3 handle gets three consecutive dispatches per ring pass; a
	// single worker makes the interleave deterministic.
	e := New(1)
	defer e.Close()
	heavy := e.NewHandle(HandleOptions{Weight: 3})
	defer heavy.Close()
	light := e.NewHandle(HandleOptions{})
	defer light.Close()

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	record := func(tag string) func() {
		wg.Add(1)
		return func() { defer wg.Done(); mu.Lock(); order = append(order, tag); mu.Unlock() }
	}
	wg.Add(1)
	heavy.Submit(Map, -1, func() { defer wg.Done(); <-gate })
	for i := 0; i < 6; i++ {
		heavy.Submit(Map, i, record("H"))
	}
	for i := 0; i < 2; i++ {
		light.Submit(Map, i, record("L"))
	}
	close(gate)
	wg.Wait()

	got := ""
	for _, tag := range order {
		got += tag
	}
	// The blocker consumed one unit of heavy's credit, so the first pass
	// grants it two more before the ring advances.
	if got != "HHLHHHLH" {
		t.Fatalf("dispatch order %q, want HHLHHHLH", got)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	e := New(2)
	h := e.NewHandle(HandleOptions{})
	h.Close()
	if h.Submit(Map, 0, func() {}) {
		t.Fatal("Submit on closed handle succeeded")
	}
	e.Close()
	h2 := e.NewHandle(HandleOptions{})
	if h2.Submit(Map, 0, func() {}) {
		t.Fatal("Submit on closed executor succeeded")
	}
}
