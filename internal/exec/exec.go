// Package exec is the process-wide execution core: a bounded worker pool
// that runs tasks submitted through per-job handles. It realises SIDR's
// scheduling model (§3.3) in the runtime itself — readiness is decided by
// the submitter (the mapreduce task graph enqueues a Reduce task the
// moment its dependency counter hits zero), and the pool merely dispatches
// runnable tasks, so no task goroutine ever parks on a barrier.
//
// Dispatch policy:
//
//   - Across handles (jobs): weighted round-robin over handles that have
//     runnable work, so one job cannot starve its peers.
//   - Within a handle: tasks pop in (Class, Priority, submission) order.
//     Class Reduce sorts before Class Map — a Reduce task that becomes
//     ready is dispatched before queued Map work, SIDR's reduce-first
//     scheduling — and Priority carries MapOrder/ReduceOrder steering.
//   - A handle's MaxParallel caps how many of its tasks run at once,
//     preserving per-job concurrency bounds on a shared pool.
//
// One Executor is shared by every job in a daemon (internal/jobs sizes it
// with one knob), while library callers without an injected executor get
// a private pool per Run.
package exec

import (
	"container/heap"
	"sync"
)

// Class coarsely orders a handle's tasks: all pending Reduce tasks
// dispatch before any pending Map task.
type Class int

const (
	// Reduce tasks are dispatched first — under SIDR a ready Reduce task
	// is the scheduling priority (§3.3).
	Reduce Class = iota
	// Map tasks fill the remaining capacity.
	Map
)

// task is one unit of queued work.
type task struct {
	class    Class
	priority int
	seq      int64 // submission order breaks ties (FIFO)
	fn       func()
}

// taskHeap is a min-heap over (class, priority, seq).
type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any          { old := *h; n := len(old); t := old[n-1]; old[n-1].fn = nil; *h = old[:n-1]; return t }

// Stats is a point-in-time view of the pool.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Queued counts tasks submitted but not yet running.
	Queued int
	// Runnable counts queued tasks eligible for immediate dispatch (their
	// handle is below its MaxParallel cap). Queued − Runnable is work
	// throttled by per-job caps rather than by pool capacity.
	Runnable int
	// Running counts tasks currently executing.
	Running int
	// PeakRunning is the high-water mark of Running (bounded by Workers).
	PeakRunning int
	// Dispatched counts tasks ever started across all handles.
	Dispatched int64
}

// Executor is a bounded shared worker pool. Create with New.
type Executor struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for runnable work
	handles []*Handle  // round-robin ring of live handles
	rr      int        // ring position of the next handle to serve
	closed  bool
	wg      sync.WaitGroup

	workers     int
	queued      int
	running     int
	peakRunning int
	dispatched  int64
}

// New starts a pool of the given size (minimum 1).
func New(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{workers: workers}
	e.cond = sync.NewCond(&e.mu)
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Stats returns a snapshot of the pool.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Workers:     e.workers,
		Queued:      e.queued,
		Running:     e.running,
		PeakRunning: e.peakRunning,
		Dispatched:  e.dispatched,
	}
	for _, h := range e.handles {
		n := h.pending.Len()
		if h.opts.MaxParallel > 0 {
			if room := h.opts.MaxParallel - h.running; room < n {
				n = room
			}
		}
		if n > 0 {
			s.Runnable += n
		}
	}
	return s
}

// Close stops the pool: remaining runnable tasks are drained, then the
// workers exit. Submissions after Close are rejected. Close blocks until
// every worker has returned.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// HandleOptions tunes one handle's share of the pool.
type HandleOptions struct {
	// Weight is the handle's round-robin share: a handle with weight w may
	// dispatch up to w consecutive tasks before the scan advances to the
	// next handle (default 1).
	Weight int
	// MaxParallel caps the handle's concurrently running tasks; 0 means
	// bounded only by the pool.
	MaxParallel int
}

// Handle is one job's submission interface to the pool.
type Handle struct {
	ex   *Executor
	opts HandleOptions

	// All fields below are guarded by ex.mu.
	pending    taskHeap
	running    int
	credit     int // remaining consecutive dispatches before RR advances
	seq        int64
	closed     bool
	dispatched int64
}

// NewHandle registers a new handle on the pool.
func (e *Executor) NewHandle(opts HandleOptions) *Handle {
	if opts.Weight < 1 {
		opts.Weight = 1
	}
	h := &Handle{ex: e, opts: opts, credit: opts.Weight}
	e.mu.Lock()
	e.handles = append(e.handles, h)
	e.mu.Unlock()
	return h
}

// Submit enqueues fn; false means the handle or pool is closed and fn
// will never run.
func (h *Handle) Submit(class Class, priority int, fn func()) bool {
	e := h.ex
	e.mu.Lock()
	if h.closed || e.closed {
		e.mu.Unlock()
		return false
	}
	heap.Push(&h.pending, task{class: class, priority: priority, seq: h.seq, fn: fn})
	h.seq++
	e.queued++
	e.cond.Signal()
	e.mu.Unlock()
	return true
}

// Cancel drops every pending (not yet dispatched) task and returns how
// many were dropped. Tasks already running are unaffected. The handle
// stays usable.
func (h *Handle) Cancel() int {
	e := h.ex
	e.mu.Lock()
	n := h.pending.Len()
	h.pending = nil
	e.queued -= n
	e.mu.Unlock()
	return n
}

// Dispatched returns how many of the handle's tasks have been started.
func (h *Handle) Dispatched() int64 {
	e := h.ex
	e.mu.Lock()
	defer e.mu.Unlock()
	return h.dispatched
}

// Close drops the handle's pending tasks and detaches it from the pool;
// further Submits are rejected. Running tasks finish normally.
func (h *Handle) Close() {
	e := h.ex
	e.mu.Lock()
	if !h.closed {
		h.closed = true
		e.queued -= h.pending.Len()
		h.pending = nil
		for i, hh := range e.handles {
			if hh == h {
				e.handles = append(e.handles[:i], e.handles[i+1:]...)
				if e.rr > i {
					e.rr--
				}
				break
			}
		}
	}
	e.mu.Unlock()
}

// eligible reports whether the handle has a dispatchable task. Caller
// holds ex.mu.
func (h *Handle) eligible() bool {
	if h.pending.Len() == 0 {
		return false
	}
	return h.opts.MaxParallel <= 0 || h.running < h.opts.MaxParallel
}

// pick chooses the next (handle, task) under weighted round-robin.
// Caller holds ex.mu; ok is false when nothing is runnable.
func (e *Executor) pick() (*Handle, task, bool) {
	n := len(e.handles)
	for k := 0; k < n; k++ {
		i := (e.rr + k) % n
		h := e.handles[i]
		if !h.eligible() {
			continue
		}
		t := heap.Pop(&h.pending).(task)
		h.credit--
		if h.credit <= 0 || !h.eligible() {
			h.credit = h.opts.Weight
			e.rr = (i + 1) % n
		} else {
			e.rr = i
		}
		return h, t, true
	}
	return nil, task{}, false
}

// worker is the run loop of one pool goroutine.
func (e *Executor) worker() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		h, t, ok := e.pick()
		if !ok {
			if e.closed {
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
			continue
		}
		e.queued--
		e.running++
		if e.running > e.peakRunning {
			e.peakRunning = e.running
		}
		e.dispatched++
		h.running++
		h.dispatched++
		e.mu.Unlock()

		t.fn()

		e.mu.Lock()
		e.running--
		h.running--
		// Finishing may free a MaxParallel slot, making previously capped
		// work runnable for the waiting workers.
		e.cond.Broadcast()
	}
}
