package join

import (
	"math"

	"sidr/internal/coords"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// SampleStride is the plan-time sampling factor: every SampleStride-th
// leading-dimension row of each split is read and each present (non-NaN)
// cell contributes SampleStride to its tile's estimated load. Fixed and
// deterministic, so the coordinator and an in-process run derive the
// same re-tiling from the same data.
const SampleStride = 16

// sampleSide accumulates one side's estimated per-tile load into loads
// (indexed by K'-linear offset in space).
func sampleSide(q *query.Query, space, input coords.Slab, reader Reader, splits []coords.Slab, loads []int64) error {
	kpBuf := make(coords.Coord, 0, space.Rank())
	for _, split := range splits {
		live, ok := split.Intersect(input)
		if !ok {
			continue
		}
		rows, err := live.SplitDim(0, 1)
		if err != nil {
			return err
		}
		for j, row := range rows {
			if j%SampleStride != 0 {
				continue
			}
			err := reader.ReadSplit(row, func(k coords.Coord, v float64) error {
				if math.IsNaN(v) {
					return nil // missing cell
				}
				kp, mapped := q.Extraction.MapKeyInto(k, kpBuf)
				if kp != nil {
					kpBuf = kp[:0]
				}
				if !mapped || !space.Contains(kp) {
					return nil
				}
				off, err := space.Linearize(kp)
				if err != nil {
					return err
				}
				loads[off] += SampleStride
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// loadBound derives the tolerated per-keyblock expected load: no better
// than the mean over reducers is achievable, and MaxSkew (partition+'s
// skew-tolerance knob, here in sampled pairs) raises the bound when the
// operator tolerates coarser balance.
func loadBound(total int64, reducers int, maxSkew int64) int64 {
	target := total / int64(reducers)
	if target < 1 {
		target = 1
	}
	if maxSkew > target {
		return maxSkew
	}
	return target
}

// retile re-tiles the base partition+ layout against sampled loads: a
// block whose load exceeds the bound is split into load-weighted
// contiguous sub-ranges, and a single tile heavier than the bound is
// carved into SharesSkew shares (heavy side cell-partitioned, light side
// replicated) — unless the operator needs raw samples, in which case the
// tile stays whole (sub-aggregates would lose positional alignment) and
// becomes its own range.
func retile(q *query.Query, blocks []partition.Keyblock, loads, loadsA, loadsB []int64, reducers int, maxSkew int64, needSamples bool) []Unit {
	var total int64
	for _, l := range loads {
		total += l
	}
	bound := loadBound(total, reducers, maxSkew)
	tileSize := q.Extraction.Shape.Size()

	var units []Unit
	// emitRange splits [lo, hi) into load-weighted contiguous chunks of
	// at most bound estimated load each.
	emitRange := func(lo, hi int64) {
		if lo >= hi {
			return
		}
		var load int64
		for k := lo; k < hi; k++ {
			load += loads[k]
		}
		m := int64(1)
		if load > bound {
			m = (load + bound - 1) / bound
		}
		if m > hi-lo {
			m = hi - lo // at most one unit per tile
		}
		start, acc, part := lo, int64(0), int64(1)
		for k := lo; k < hi; k++ {
			acc += loads[k]
			// Cut after tile k once this part's share of the load is met,
			// keeping at least one tile per remaining part.
			if part < m && acc*m >= load*part && (hi-k-1) >= (m-part) {
				units = append(units, Unit{Lo: start, Hi: k + 1})
				start = k + 1
				part++
			}
		}
		units = append(units, Unit{Lo: start, Hi: hi})
	}
	emitShares := func(k int64) {
		s := (loads[k] + bound - 1) / bound
		if s > int64(reducers) {
			s = int64(reducers)
		}
		if s > tileSize {
			s = tileSize
		}
		if s < 2 {
			s = 2
		}
		heavy := 0
		if loadsB[k] > loadsA[k] {
			heavy = 1
		}
		kp, err := spaceDelin(q, k)
		if err != nil {
			// Unreachable for in-range k; keep the tile whole.
			units = append(units, Unit{Lo: k, Hi: k + 1})
			return
		}
		for i := int64(0); i < s; i++ {
			units = append(units, Unit{
				Lo: k, Hi: k + 1, Tile: kp,
				OffLo: tileSize * i / s, OffHi: tileSize * (i + 1) / s,
				Heavy: heavy,
			})
		}
	}

	for _, b := range blocks {
		cursor := b.Lo
		if !needSamples {
			for k := b.Lo; k < b.Hi; k++ {
				if loads[k] > bound && tileSize > 1 {
					emitRange(cursor, k)
					emitShares(k)
					cursor = k + 1
				}
			}
		}
		emitRange(cursor, b.Hi)
	}
	return units
}

func spaceDelin(q *query.Query, k int64) (coords.Coord, error) {
	space, err := q.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	return space.Delinearize(k)
}

// estLoads computes the per-unit estimated load: a plain range sums its
// tiles; a share takes its offset-proportional slice of the heavy side
// plus the whole replicated light side.
func estLoads(q *query.Query, units []Unit, loads, loadsA, loadsB []int64) []int64 {
	space, err := q.IntermediateSpace()
	if err != nil {
		return nil
	}
	tileSize := q.Extraction.Shape.Size()
	out := make([]int64, len(units))
	for i, u := range units {
		if !u.Shared() {
			var sum int64
			for k := u.Lo; k < u.Hi; k++ {
				sum += loads[k]
			}
			out[i] = sum
			continue
		}
		k, err := space.Linearize(u.Tile)
		if err != nil {
			continue
		}
		heavy, light := loadsA[k], loadsB[k]
		if u.Heavy == 1 {
			heavy, light = light, heavy
		}
		out[i] = heavy*(u.OffHi-u.OffLo)/tileSize + light
	}
	return out
}
