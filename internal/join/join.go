// Package join implements SIDR's structural join subsystem: a two-input
// query whose join keys are tiles of a shared extraction shape, executed
// on the same readiness-driven task graph as single-input queries.
//
// Both inputs' splits live in one combined index space — side A's splits
// occupy [0, SideBoundary), side B's the rest — so dispatch, shuffle and
// per-split spill addressing work unchanged; the side is derived from
// the split index and carried as a trailing coordinate on every spill
// key. Each keyblock's dependency set I_ℓ is the union of contributing
// splits from both datasets (depgraph.Builder).
//
// Because partition+'s uniform-tile assumption breaks when per-tile load
// is value-dependent (missing data, selective sides), the planner
// samples per-keyblock expected load from both inputs at plan time and
// re-tiles hot keyblocks (Fan et al.): a keyblock whose sampled load
// exceeds the MaxSkew-derived bound is split into load-weighted
// contiguous sub-keyblocks, and a truly heavy single tile is carved into
// shares SharesSkew-style (Afrati et al.) — the heavy side's cells are
// range-partitioned across the shares by row-major cell offset while the
// light side is replicated into every share. Re-tiling decisions are
// recorded in the plan (Retile) so clustered workers rebuild the exact
// same routing without re-sampling, keeping results byte-identical to an
// in-process run.
package join

import (
	"fmt"
	"sort"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// Reader is the record-reader contract (structurally identical to
// mapreduce.RecordReader, restated here to avoid an import cycle).
type Reader interface {
	ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error
}

// Unit is one keyblock of a join plan. A plain unit owns the contiguous
// row-major K'-range [Lo, Hi) of the join keyspace. A share unit (Tile
// non-nil) owns one heavy tile's cells whose row-major offset within the
// full tile falls in [OffLo, OffHi) on the heavy side; the light side is
// replicated into every share of the tile.
type Unit struct {
	Lo    int64        `json:"lo"`
	Hi    int64        `json:"hi"`
	Tile  coords.Coord `json:"tile,omitempty"`
	OffLo int64        `json:"off_lo,omitempty"`
	OffHi int64        `json:"off_hi,omitempty"`
	// Heavy is the cell-partitioned side of a share unit (0 = A, 1 = B).
	Heavy int `json:"heavy,omitempty"`
}

// Shared reports whether the unit is a heavy-tile share.
func (u Unit) Shared() bool { return u.Tile != nil }

// Retile records the planner's keyblock layout so remote workers rebuild
// identical routing without re-sampling. EstLoads is the sampled
// expected load per unit (source pairs, replication included), the
// vector skew statistics and the bench report summarize.
type Retile struct {
	Units    []Unit  `json:"units"`
	EstLoads []int64 `json:"est_loads,omitempty"`
}

// Plan is a fully resolved join execution plan.
type Plan struct {
	Q  *query.Query
	Op ops.JoinOperator
	// Space is the join keyspace K'^T: the intersection of both sides'
	// tile ranges.
	Space coords.Slab
	// SideBoundary splits the combined split index space: indexes below
	// it read side A, the rest side B.
	SideBoundary int
	// Units is the keyblock layout; the slice index is the keyblock id.
	Units []Unit
	// EstLoads is the sampled expected load per unit (nil when the plan
	// was built without sampling).
	EstLoads []int64

	// shares maps a shared tile's K'-linear offset to its share unit
	// ids, ascending by OffLo.
	shares map[int64][]int
	// rangeLo/rangeIdx index plain units for binary search by Lo.
	rangeLo  []int64
	rangeIdx []int
}

// Options configure join planning.
type Options struct {
	Reducers int
	// MaxSkew bounds a keyblock's tolerated expected load (partition+'s
	// MaxSkew semantics, applied to sampled pairs instead of tile
	// counts). Zero means partition.DefaultMaxSkew.
	MaxSkew int64
	// NoRetile keeps the base partition+ layout verbatim — the naive
	// baseline the bench compares against. Loads are still sampled when
	// readers are supplied, so the skew of the naive layout is reported.
	NoRetile bool
}

// maxSampledTiles bounds the per-tile load vector; join keyspaces beyond
// it skip sampling (and therefore re-tiling) rather than materialize an
// unbounded vector.
const maxSampledTiles = 1 << 20

// Build plans a join over the two sides' splits. When both readers are
// non-nil, per-tile loads are sampled from the data and hot keyblocks
// re-tiled; otherwise the base partition+ layout is kept.
func Build(q *query.Query, opts Options, readerA, readerB Reader, splitsA, splitsB []coords.Slab) (*Plan, error) {
	if q == nil || !q.Join {
		return nil, fmt.Errorf("join: not a join query")
	}
	op, err := q.JoinOp()
	if err != nil {
		return nil, err
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	if opts.Reducers < 1 {
		return nil, fmt.Errorf("join: need at least one reducer, got %d", opts.Reducers)
	}
	maxSkew := opts.MaxSkew
	if maxSkew <= 0 {
		maxSkew = partition.DefaultMaxSkew
	}
	pp, err := partition.NewPartitionPlus(space, opts.Reducers, maxSkew)
	if err != nil {
		return nil, err
	}

	var loads, loadsA, loadsB []int64
	if readerA != nil && readerB != nil && space.Size() <= maxSampledTiles {
		loadsA = make([]int64, space.Size())
		loadsB = make([]int64, space.Size())
		if err := sampleSide(q, space, q.Input, readerA, splitsA, loadsA); err != nil {
			return nil, fmt.Errorf("join: sampling side A: %w", err)
		}
		if err := sampleSide(q, space, q.Input2, readerB, splitsB, loadsB); err != nil {
			return nil, fmt.Errorf("join: sampling side B: %w", err)
		}
		loads = make([]int64, space.Size())
		for i := range loads {
			loads[i] = loadsA[i] + loadsB[i]
		}
	}

	var units []Unit
	if loads == nil || opts.NoRetile {
		units = make([]Unit, len(pp.Blocks))
		for i, b := range pp.Blocks {
			units[i] = Unit{Lo: b.Lo, Hi: b.Hi}
		}
	} else {
		units = retile(q, pp.Blocks, loads, loadsA, loadsB, opts.Reducers, maxSkew, op.NeedsSamples())
	}
	rt := Retile{Units: units}
	if loads != nil {
		rt.EstLoads = estLoads(q, units, loads, loadsA, loadsB)
	}
	return Rebuild(q, len(splitsA), rt)
}

// Rebuild reconstructs a plan from recorded re-tiling decisions —
// clustered workers call this with the Retile shipped in the job plan
// and never re-sample.
func Rebuild(q *query.Query, sideBoundary int, rt Retile) (*Plan, error) {
	if q == nil || !q.Join {
		return nil, fmt.Errorf("join: not a join query")
	}
	op, err := q.JoinOp()
	if err != nil {
		return nil, err
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	if len(rt.Units) == 0 {
		return nil, fmt.Errorf("join: plan has no keyblock units")
	}
	p := &Plan{
		Q:            q,
		Op:           op,
		Space:        space,
		SideBoundary: sideBoundary,
		Units:        rt.Units,
		EstLoads:     rt.EstLoads,
		shares:       make(map[int64][]int),
	}
	for i, u := range p.Units {
		if u.Shared() {
			k, err := space.Linearize(u.Tile)
			if err != nil {
				return nil, fmt.Errorf("join: share tile %v outside keyspace: %w", u.Tile, err)
			}
			p.shares[k] = append(p.shares[k], i)
		} else {
			p.rangeLo = append(p.rangeLo, u.Lo)
			p.rangeIdx = append(p.rangeIdx, i)
		}
	}
	for _, ids := range p.shares {
		sort.Slice(ids, func(a, b int) bool { return p.Units[ids[a]].OffLo < p.Units[ids[b]].OffLo })
	}
	return p, nil
}

// Retiling returns the serializable re-tiling record for the plan.
func (p *Plan) Retiling() Retile { return Retile{Units: p.Units, EstLoads: p.EstLoads} }

// NumKeyblocks returns the keyblock count.
func (p *Plan) NumKeyblocks() int { return len(p.Units) }

// SpillRank is the coordinate rank of spill keys: the keyspace rank plus
// the trailing side bit.
func (p *Plan) SpillRank() int { return p.Space.Rank() + 1 }

// Side returns which input the combined split index reads (0 = A).
func (p *Plan) Side(split int) int {
	if split < p.SideBoundary {
		return 0
	}
	return 1
}

// SideInput returns the given side's input slab.
func (p *Plan) SideInput(side int) coords.Slab {
	if side == 0 {
		return p.Q.Input
	}
	return p.Q.Input2
}

// rangeUnit resolves the plain unit owning K'-linear offset k; callers
// guarantee k is not a carved (shared) tile.
func (p *Plan) rangeUnit(k int64) int {
	i := sort.Search(len(p.rangeLo), func(i int) bool { return p.rangeLo[i] > k }) - 1
	if i < 0 {
		return p.rangeIdx[0]
	}
	return p.rangeIdx[i]
}

// shareByOffset resolves the share unit owning cell offset off of the
// shared tile with linear key k.
func (p *Plan) shareByOffset(k, off int64) int {
	ids := p.shares[k]
	for _, id := range ids {
		if off >= p.Units[id].OffLo && off < p.Units[id].OffHi {
			return id
		}
	}
	return ids[len(ids)-1]
}

// Partitioner adapts the plan to the partition.Partitioner interface for
// generic consumers (task ordering, diagnostics). Shared tiles resolve
// to their first share; the join map path routes per cell and never goes
// through this adapter.
func (p *Plan) Partitioner() partition.Partitioner { return planPartitioner{p} }

type planPartitioner struct{ p *Plan }

func (pp planPartitioner) Name() string      { return "join-retile" }
func (pp planPartitioner) NumKeyblocks() int { return len(pp.p.Units) }
func (pp planPartitioner) Partition(kp coords.Coord) (int, error) {
	k, err := pp.p.Space.Linearize(kp)
	if err != nil {
		return 0, err
	}
	if ids, ok := pp.p.shares[k]; ok {
		return ids[0], nil
	}
	return pp.p.rangeUnit(k), nil
}

// Keyblocks renders the units as partition.Keyblock ranges for plan
// introspection; share units collapse to their tile's single-key range.
func (p *Plan) Keyblocks() []partition.Keyblock {
	out := make([]partition.Keyblock, len(p.Units))
	for i, u := range p.Units {
		kb := partition.Keyblock{Index: i, Lo: u.Lo, Hi: u.Hi}
		if u.Shared() {
			k, err := p.Space.Linearize(u.Tile)
			if err == nil {
				kb.Lo, kb.Hi = k, k+1
			}
		}
		out[i] = kb
	}
	return out
}

// BuildGraph derives the dependency graph: for every split of both
// sides, the geometric contribution to each keyblock (replication
// included), then I_ℓ as the union across sides. The same counting runs
// on workers to annotate spills, so the §3.2.1 tally holds exactly.
func BuildGraph(p *Plan, splitsA, splitsB []coords.Slab) (*depgraph.Graph, error) {
	b := depgraph.NewBuilder(len(splitsA)+len(splitsB), len(p.Units))
	add := func(base, side int, splits []coords.Slab) error {
		for i, split := range splits {
			live, ok := split.Intersect(p.SideInput(side))
			if !ok {
				continue
			}
			counts, err := RouteCounts(p, side, live)
			if err != nil {
				return fmt.Errorf("join: split %d: %w", base+i, err)
			}
			for kb, n := range counts {
				b.Add(base+i, kb, n)
			}
		}
		return nil
	}
	if err := add(0, 0, splitsA); err != nil {
		return nil, err
	}
	if err := add(len(splitsA), 1, splitsB); err != nil {
		return nil, err
	}
	return b.Graph(), nil
}

// RouteCounts computes the geometric per-keyblock source-pair count of
// one side's live region: how many cells route to each unit, counting a
// replicated light-side cell once per share. It is a pure function of
// the plan and the region — the spill annotation and the plan-time
// expectation agree by construction, independent of data content.
func RouteCounts(p *Plan, side int, live coords.Slab) (map[int]int64, error) {
	counts := make(map[int]int64)
	tiles, err := p.Q.Extraction.TileRange(live)
	if err != nil {
		return counts, nil // live region entirely inside stride gaps
	}
	var iterErr error
	tiles.Each(func(kp coords.Coord) bool {
		if !p.Space.Contains(kp) {
			return true
		}
		tile, err := p.Q.Extraction.Tile(kp)
		if err != nil {
			iterErr = err
			return false
		}
		overlap, ok := tile.Intersect(live)
		if !ok {
			return true
		}
		k, err := p.Space.Linearize(kp)
		if err != nil {
			iterErr = err
			return false
		}
		ids, shared := p.shares[k]
		switch {
		case !shared:
			counts[p.rangeUnit(k)] += overlap.Size()
		case side == p.Units[ids[0]].Heavy:
			overlap.EachReuse(func(c coords.Coord) bool {
				off, err := tile.Linearize(c)
				if err != nil {
					iterErr = err
					return false
				}
				counts[p.shareByOffset(k, off)]++
				return true
			})
		default:
			for _, id := range ids {
				counts[id] += overlap.Size()
			}
		}
		return iterErr == nil
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return counts, nil
}
