package join

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sidr/internal/coords"
	"sidr/internal/kv"
	"sidr/internal/ops"
)

// MapOut is one keyblock's share of a join Map task's output: sorted
// pairs keyed [kp..., side] plus the §3.2.1 source-count annotation. The
// annotation is geometric (RouteCounts) — independent of data content —
// so the reduce-side tally validates transport completeness exactly even
// though NaN cells are never accumulated.
type MapOut struct {
	Pairs       []kv.Pair
	SourceCount int64
}

// ExecMap runs one join Map task: read the split's live region on the
// given side, accumulate per-(tile, keyblock) aggregates (skipping NaN
// missing cells), and emit side-tagged sorted pairs per keyblock. The
// returned slice is indexed by keyblock; the second return value is the
// number of source records that mapped into the join keyspace.
func ExecMap(p *Plan, side int, reader Reader, split coords.Slab, ctx context.Context) ([]MapOut, int64, error) {
	outs := make([]MapOut, len(p.Units))
	live, ok := split.Intersect(p.SideInput(side))
	if !ok {
		return outs, 0, nil
	}
	counts, err := RouteCounts(p, side, live)
	if err != nil {
		return nil, 0, err
	}
	for kb, n := range counts {
		outs[kb].SourceCount = n
	}

	needSamples := p.Op.NeedsSamples()
	rank := p.Space.Rank()
	accums := make(map[int]map[int64]*kv.Value) // keyblock -> K'-linear -> agg
	acc := func(kb int, k int64) *kv.Value {
		m := accums[kb]
		if m == nil {
			m = make(map[int64]*kv.Value)
			accums[kb] = m
		}
		v := m[k]
		if v == nil {
			v = &kv.Value{}
			m[k] = v
		}
		return v
	}

	// Per-tile routing is resolved once per tile and cached across the
	// row-major record loop (runs of cells share a tile).
	var (
		curKey   int64 = -1
		curIDs   []int
		curHeavy bool
		curTile  coords.Slab
	)
	kpBuf := make(coords.Coord, 0, rank)
	var records, seen int64
	err = reader.ReadSplit(live, func(c coords.Coord, v float64) error {
		if seen&63 == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		seen++
		kp, mapped := p.Q.Extraction.MapKeyInto(c, kpBuf)
		if kp != nil {
			kpBuf = kp[:0]
		}
		if !mapped || !p.Space.Contains(kp) {
			return nil
		}
		records++
		if math.IsNaN(v) {
			return nil // missing cell: counted by the annotation, never aggregated
		}
		k, err := p.Space.Linearize(kp)
		if err != nil {
			return err
		}
		if k != curKey {
			curKey = k
			curIDs, curHeavy = nil, false
			if ids, shared := p.shares[k]; shared {
				curIDs = ids
				curHeavy = side == p.Units[ids[0]].Heavy
				if curTile, err = p.Q.Extraction.Tile(kp); err != nil {
					return err
				}
			}
		}
		switch {
		case curIDs == nil:
			acc(p.rangeUnit(k), k).Add(v, needSamples)
		case curHeavy:
			off, err := curTile.Linearize(c)
			if err != nil {
				return err
			}
			acc(p.shareByOffset(k, off), k).Add(v, needSamples)
		default:
			for _, id := range curIDs {
				acc(id, k).Add(v, needSamples)
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	for kb, m := range accums {
		pairs := make([]kv.Pair, 0, len(m))
		for k, val := range m {
			kp, err := p.Space.Delinearize(k)
			if err != nil {
				return nil, 0, err
			}
			key := append(kp, int64(side))
			pairs = append(pairs, kv.Pair{Key: key, Value: *val})
		}
		kv.SortPairs(pairs)
		outs[kb].Pairs = pairs
	}
	return outs, records, nil
}

// Reduce evaluates keyblock l from its fully merged side-tagged pairs.
// Plain units pair both sides per tile and emit final rows; share units
// emit one partial row per tile — [heavySum, heavyCount, lightSum,
// lightCount] — that Assemble folds across the tile's shares.
func Reduce(p *Plan, l int, merged []kv.Pair) (keys []coords.Coord, values [][]float64) {
	rank := p.Space.Rank()
	unit := p.Units[l]
	flush := func(kp coords.Coord, vA, vB *kv.Value) {
		if kp == nil {
			return
		}
		if unit.Shared() {
			h, li := vA, vB
			if unit.Heavy == 1 {
				h, li = vB, vA
			}
			var row [4]float64
			if h != nil {
				row[0], row[1] = h.Sum, float64(h.Count)
			}
			if li != nil {
				row[2], row[3] = li.Sum, float64(li.Count)
			}
			keys = append(keys, kp)
			values = append(values, row[:])
			return
		}
		var a, b ops.SideAgg
		if vA != nil {
			a = ops.SideAgg{Sum: vA.Sum, Count: vA.Count, Samples: vA.Samples}
		}
		if vB != nil {
			b = ops.SideAgg{Sum: vB.Sum, Count: vB.Count, Samples: vB.Samples}
		}
		if out, ok := p.Op.Combine(a, b); ok {
			keys = append(keys, kp)
			values = append(values, out)
		}
	}
	var kp coords.Coord
	var vA, vB *kv.Value
	for i := range merged {
		pr := &merged[i]
		tile := pr.Key[:rank]
		if kp == nil || !coordEqual(kp, tile) {
			flush(kp, vA, vB)
			kp = append(coords.Coord(nil), tile...)
			vA, vB = nil, nil
		}
		if pr.Key[rank] == 0 {
			vA = &pr.Value
		} else {
			vB = &pr.Value
		}
	}
	flush(kp, vA, vB)
	return keys, values
}

func coordEqual(a, b coords.Coord) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Row is one reduce-output row tagged with its keyblock, the unit of
// final result assembly.
type Row struct {
	KB     int
	Key    coords.Coord
	Values []float64
}

// Assemble folds share-unit partial rows into final rows — summing the
// heavy side's cell-partitioned moments across the tile's shares in
// ascending keyblock order and taking the replicated light side from the
// first share — then returns all rows sorted row-major by key. Both the
// in-process engine and the clustered coordinator assemble through this
// one function, so their results are byte-identical by construction.
func Assemble(p *Plan, rows []Row) ([]Row, error) {
	var out []Row
	partials := make(map[int64][]Row)
	for _, r := range rows {
		k, err := p.Space.Linearize(r.Key)
		if err != nil {
			return nil, fmt.Errorf("join: assembling row %v: %w", r.Key, err)
		}
		if _, shared := p.shares[k]; shared {
			partials[k] = append(partials[k], r)
			continue
		}
		out = append(out, r)
	}
	for _, shares := range partials {
		sort.Slice(shares, func(a, b int) bool { return shares[a].KB < shares[b].KB })
		unit := p.Units[shares[0].KB]
		var heavy, light ops.SideAgg
		for i, r := range shares {
			if len(r.Values) != 4 {
				return nil, fmt.Errorf("join: share row for tile %v has %d values, want 4", r.Key, len(r.Values))
			}
			heavy.Sum += r.Values[0]
			heavy.Count += int64(r.Values[1])
			if i == 0 {
				light.Sum, light.Count = r.Values[2], int64(r.Values[3])
			}
		}
		a, b := heavy, light
		if unit.Heavy == 1 {
			a, b = light, heavy
		}
		if vals, ok := p.Op.Combine(a, b); ok {
			out = append(out, Row{KB: shares[0].KB, Key: shares[0].Key, Values: vals})
		}
	}
	sort.Slice(out, func(i, j int) bool { return coordLess(out[i].Key, out[j].Key) })
	return out, nil
}

func coordLess(a, b coords.Coord) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
