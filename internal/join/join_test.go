package join

import (
	"testing"

	"sidr/internal/coords"
	"sidr/internal/query"
	"sidr/internal/skew"
)

type funcReader struct{ fn func(coords.Coord) float64 }

func (r funcReader) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	var err error
	slab.Each(func(k coords.Coord) bool {
		err = emit(k, r.fn(k))
		return err == nil
	})
	return err
}

func mustQuery(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return q
}

func bandSplits(t *testing.T, input coords.Slab, n int64) []coords.Slab {
	t.Helper()
	rows, err := input.SplitDim(0, (input.Shape[0]+n-1)/n)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// hotCorner concentrates all load in the first tile: dense in the 8x8
// corner, missing elsewhere.
func hotCorner(k coords.Coord) float64 {
	if k[0] < 8 && k[1] < 8 {
		return float64(k[0]*100 + k[1])
	}
	return nan()
}

func nan() float64 {
	var z float64
	return 0 / z
}

func dense(k coords.Coord) float64 { return float64(k[0] + k[1]) }

// TestRetileReducesSkew plans a join whose load concentrates in one tile
// and checks that re-tiling yields a strictly more balanced layout than
// the base partition+ blocks, with the hot tile carved into shares.
func TestRetileReducesSkew(t *testing.T) {
	q := mustQuery(t, "join jsum a[0,0 : 64,64] es {8,8} with b[0,0 : 64,64] es {8,8}")
	splits := bandSplits(t, q.Input, 16)
	opts := Options{Reducers: 4, MaxSkew: 8}

	naive, err := Build(q, Options{Reducers: opts.Reducers, MaxSkew: opts.MaxSkew, NoRetile: true},
		funcReader{hotCorner}, funcReader{hotCorner}, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	retiled, err := Build(q, opts, funcReader{hotCorner}, funcReader{hotCorner}, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	if len(retiled.Units) <= len(naive.Units) {
		t.Fatalf("retiled layout has %d units, naive %d — expected more", len(retiled.Units), len(naive.Units))
	}
	shares := 0
	for _, u := range retiled.Units {
		if u.Shared() {
			shares++
		}
	}
	if shares < 2 {
		t.Fatalf("hot tile not carved into shares: %d share units", shares)
	}
	sNaive := skew.Summarize(naive.EstLoads)
	sRetiled := skew.Summarize(retiled.EstLoads)
	if sRetiled.MaxOverMean >= sNaive.MaxOverMean {
		t.Fatalf("retiling did not reduce skew: MaxOverMean %v -> %v", sNaive.MaxOverMean, sRetiled.MaxOverMean)
	}
}

// TestRebuildDeterministic checks the worker path: rebuilding from the
// recorded Retile yields the identical unit layout and routing without
// re-sampling.
func TestRebuildDeterministic(t *testing.T) {
	q := mustQuery(t, "join javg a[0,0 : 64,64] es {8,8} with b[0,0 : 64,64] es {8,8}")
	splits := bandSplits(t, q.Input, 16)
	p, err := Build(q, Options{Reducers: 4, MaxSkew: 8}, funcReader{hotCorner}, funcReader{dense}, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rebuild(q, p.SideBoundary, p.Retiling())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Units) != len(p.Units) {
		t.Fatalf("rebuild has %d units, original %d", len(r.Units), len(p.Units))
	}
	for i := range p.Units {
		a, b := p.Units[i], r.Units[i]
		if a.Lo != b.Lo || a.Hi != b.Hi || a.OffLo != b.OffLo || a.OffHi != b.OffHi || a.Heavy != b.Heavy {
			t.Fatalf("unit %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestGraphCountsCoverInputs checks the §3.2.1 invariant the tally
// barrier relies on: summed expected counts equal each side's live cell
// count, with replicated light-side cells counted once per share.
func TestGraphCountsCoverInputs(t *testing.T) {
	q := mustQuery(t, "join jsum a[0,0 : 64,64] es {8,8} with b[0,0 : 64,64] es {8,8}")
	splits := bandSplits(t, q.Input, 16)

	// Uniform loads: no shares, so counts must cover both inputs exactly.
	p, err := Build(q, Options{Reducers: 4}, funcReader{dense}, funcReader{dense}, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(p, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range g.ExpectedCount {
		total += c
	}
	want := 2 * q.Input.Size()
	if total != want {
		t.Fatalf("expected counts total %d, want %d", total, want)
	}

	// Each side's splits contribute exactly that side's cells.
	var sideA int64
	for i := 0; i < p.SideBoundary; i++ {
		sideA += g.SplitPoints[i]
	}
	if sideA != q.Input.Size() {
		t.Fatalf("side A contributes %d points, want %d", sideA, q.Input.Size())
	}
}

// TestRouteCountsMatchExecMap checks that the geometric spill annotation
// a worker derives (RouteCounts inside ExecMap) matches the plan-time
// expectation per split, share replication included.
func TestRouteCountsMatchExecMap(t *testing.T) {
	q := mustQuery(t, "join jsum a[0,0 : 64,64] es {8,8} with b[0,0 : 64,64] es {8,8}")
	splits := bandSplits(t, q.Input, 16)
	p, err := Build(q, Options{Reducers: 4, MaxSkew: 8}, funcReader{hotCorner}, funcReader{dense}, splits, splits)
	if err != nil {
		t.Fatal(err)
	}
	for side, fn := range map[int]func(coords.Coord) float64{0: hotCorner, 1: dense} {
		for si, split := range splits {
			outs, _, err := ExecMap(p, side, funcReader{fn}, split, nil)
			if err != nil {
				t.Fatalf("side %d split %d: %v", side, si, err)
			}
			live, ok := split.Intersect(p.SideInput(side))
			if !ok {
				continue
			}
			counts, err := RouteCounts(p, side, live)
			if err != nil {
				t.Fatal(err)
			}
			for kb, o := range outs {
				if o.SourceCount != counts[kb] {
					t.Fatalf("side %d split %d kb %d: annotation %d, geometric %d",
						side, si, kb, o.SourceCount, counts[kb])
				}
			}
		}
	}
}
