package mapreduce

import (
	"testing"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/partition"
)

func TestMoreReducersThanKeys(t *testing.T) {
	// 4 intermediate keys spread over 8 reducers: the extra Reduce tasks
	// commit empty outputs without wedging either barrier mode.
	q := mustParse(t, "avg t[0 : 16] es {4}")
	for _, sidr := range []bool{false, true} {
		cfg := buildJob(t, q, 8, sidr, true)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("sidr=%v: %v", sidr, err)
		}
		keys := 0
		for _, out := range res.Outputs {
			keys += len(out.Keys)
		}
		if keys != 4 {
			t.Fatalf("sidr=%v: %d keys", sidr, keys)
		}
	}
}

func TestSingleSplitSingleReducer(t *testing.T) {
	q := mustParse(t, "sum t[0,0 : 8,8] es {8,8}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 1, true, true)
	if len(cfg.Splits) < 1 {
		t.Fatal("no splits")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}

func TestFilterWithNoSurvivors(t *testing.T) {
	// A filter nobody passes emits no keys at all — predicated operators
	// omit keys with no surviving samples (so index-pruned and unpruned
	// plans agree byte-for-byte) — yet the count barrier must still be
	// satisfied before the empty keyblocks commit.
	q := mustParse(t, "filter_gt t[0,0 : 16,4] es {4,4} param 1e18")
	cfg := buildJob(t, q, 2, true, true)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range res.Outputs {
		if len(out.Keys) != 0 {
			t.Fatalf("survivor-free filter emitted keys %v", out.Keys)
		}
	}
	if res.Counters.OutputValues != 0 {
		t.Fatalf("OutputValues = %d", res.Counters.OutputValues)
	}
}

func TestSplitsBeyondQueryInput(t *testing.T) {
	// Splits cover a dataset larger than the query input: out-of-query
	// splits are read as no-ops and the dependency barrier still clears.
	q := mustParse(t, "avg t[0,0 : 16,4] es {4,4}")
	ref := referenceResults(t, q, synthValue)
	dataset := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(64, 4))
	slabs, err := dataset.SplitDim(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	splits := make([]InputSplit, len(slabs))
	for i, s := range slabs {
		splits[i] = InputSplit{ID: i, Slab: s}
	}
	space, _ := q.IntermediateSpace()
	pp, err := partition.NewPartitionPlus(space, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(q, slabs, pp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Query:          q,
		Splits:         splits,
		Reader:         &FuncReader{Fn: synthValue},
		Part:           pp,
		Graph:          g,
		Barrier:        DependencyBarrier,
		ValidateCounts: true,
		Combine:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}

func TestShuffleBytesCounter(t *testing.T) {
	q := mustParse(t, "median t[0,0 : 28,10] es {7,5}")
	res, err := Run(buildJob(t, q, 2, true, true))
	if err != nil {
		t.Fatal(err)
	}
	// Median ships all samples: at least 8 bytes per source point plus
	// per-value headers.
	if res.Counters.ShuffleBytes < q.Input.Size()*8 {
		t.Fatalf("ShuffleBytes = %d, want >= %d", res.Counters.ShuffleBytes, q.Input.Size()*8)
	}
}

func TestStridedQueryEndToEnd(t *testing.T) {
	// Strided extraction through the whole engine, both barrier modes.
	q := mustParse(t, "max t[0 : 40] es {2} stride {5}")
	ref := referenceResults(t, q, synthValue)
	for _, sidr := range []bool{false, true} {
		res, err := Run(buildJob(t, q, 2, sidr, true))
		if err != nil {
			t.Fatalf("sidr=%v: %v", sidr, err)
		}
		checkAgainstReference(t, res, ref)
	}
}
