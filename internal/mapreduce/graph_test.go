package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sidr/internal/coords"
	"sidr/internal/exec"
)

// TestNoBarrierParkedGoroutines pins the refactor's core property: a
// Reduce task whose dependencies are unmet occupies no goroutine and no
// executor slot — readiness is a counter decremented on Map completion,
// not a condition variable being awaited. The last split's Map task is
// gated inside its reader; once every other task has settled, the only
// live task in the whole engine is that gated Map, and no goroutine is
// parked in a mapreduce condition wait.
func TestNoBarrierParkedGoroutines(t *testing.T) {
	q := mustParse(t, "avg temp[0,0 : 64,8] es {4,4}")
	cfg := buildJob(t, q, 4, true, true)
	ref := referenceResults(t, q, synthValue)
	lastSplit := cfg.Splits[len(cfg.Splits)-1].Slab

	// Keyblocks not depending on the last split must all commit before
	// the stack check; the rest must still be waiting (as counters).
	last := len(cfg.Splits) - 1
	wantEarly := 0
	dependsOnLast := make(map[int]bool)
	for l := range cfg.Graph.KBToSplits {
		for _, s := range cfg.Graph.KBToSplits[l] {
			if s == last {
				dependsOnLast[l] = true
			}
		}
		if !dependsOnLast[l] {
			wantEarly++
		}
	}
	if wantEarly == 0 || len(dependsOnLast) == 0 {
		t.Fatal("test premise broken: need both early and gated keyblocks")
	}

	ex := exec.New(4)
	defer ex.Close()
	cfg.Exec = ex

	var mu sync.Mutex
	mapEnds, earlyEnds := 0, 0
	settled := make(chan struct{})
	settledOnce := sync.Once{}
	cfg.OnEvent = func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case e.Kind == MapEnd:
			mapEnds++
		case e.Kind == ReduceEnd && !dependsOnLast[e.Detail]:
			earlyEnds++
		}
		if mapEnds == last && earlyEnds == wantEarly {
			settledOnce.Do(func() { close(settled) })
		}
	}

	release := make(chan struct{})
	inner := &FuncReader{Fn: synthValue}
	cfg.Reader = readerFunc(func(slab coords.Slab, emit func(coords.Coord, float64) error) error {
		if slab.Corner.Equal(lastSplit.Corner) {
			select {
			case <-release:
			case <-time.After(30 * time.Second):
				return errors.New("gate never released")
			}
		}
		return inner.ReadSplit(slab, emit)
	})

	checked := make(chan error, 1)
	go func() {
		select {
		case <-settled:
		case <-time.After(30 * time.Second):
			checked <- errors.New("early keyblocks never settled")
			close(release)
			return
		}
		// Let the final early Reduce fn unwind, then the engine must be
		// quiescent: one Running task (the gated Map), nothing queued —
		// the unmet Reduce tasks exist only as dependency counters.
		deadline := time.Now().Add(5 * time.Second)
		for {
			s := ex.Stats()
			if s.Running == 1 && s.Queued == 0 {
				break
			}
			if time.Now().After(deadline) {
				checked <- fmt.Errorf("engine never quiesced at the gate: %+v", s)
				close(release)
				return
			}
			time.Sleep(time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		for _, g := range strings.Split(stacks, "\n\n") {
			if strings.Contains(g, "sync.(*Cond).Wait") && strings.Contains(g, "internal/mapreduce") {
				checked <- fmt.Errorf("goroutine parked in a mapreduce cond wait:\n%s", g)
				close(release)
				return
			}
		}
		checked <- nil
		close(release)
	}()

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-checked; err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
	wantTasks := int64(len(cfg.Splits) + len(cfg.Graph.KBToSplits))
	if res.Counters.TasksDispatched != wantTasks {
		t.Fatalf("dispatched %d tasks, want %d", res.Counters.TasksDispatched, wantTasks)
	}
}

// TestGlobalBarrierDeterministic asserts the global-barrier path's output
// is byte-identical run to run and across worker counts — the seed
// engine's behaviour, preserved through the task-graph refactor.
func TestGlobalBarrierDeterministic(t *testing.T) {
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	render := func(workers int) string {
		cfg := buildJob(t, q, 3, false, true)
		cfg.Barrier = GlobalBarrier
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstReference(t, res, ref)
		var b strings.Builder
		for _, out := range res.Outputs {
			fmt.Fprintf(&b, "kb=%d\n", out.Keyblock)
			for i, k := range out.Keys {
				fmt.Fprintf(&b, "%v=%v\n", k, out.Values[i])
			}
		}
		return b.String()
	}
	serial := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != serial {
			t.Fatalf("global-barrier output differs between 1 and %d workers:\n%s\nvs\n%s", w, serial, got)
		}
	}
	if serial == "" {
		t.Fatal("rendered output empty")
	}
}
