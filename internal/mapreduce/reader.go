package mapreduce

import (
	"fmt"

	"sidr/internal/coords"
	"sidr/internal/hdfs"
	"sidr/internal/ncfile"
)

// FileReader reads splits from an ncfile container — the SciHadoop
// record reader whose input and output both live in logical coordinate
// space (§2.4.1). Reads stream one leading-dimension row at a time, so
// memory stays bounded by a row rather than the whole split.
type FileReader struct {
	File *ncfile.File
	Var  string
}

// ReadSplit implements RecordReader.
func (r *FileReader) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	rows, err := slab.SplitDim(0, 1)
	if err != nil {
		return err
	}
	for _, row := range rows {
		vals, err := r.File.ReadSlab(r.Var, row)
		if err != nil {
			return err
		}
		i := 0
		var emitErr error
		row.EachReuse(func(k coords.Coord) bool {
			if err := emit(k, vals[i]); err != nil {
				emitErr = err
				return false
			}
			i++
			return true
		})
		if emitErr != nil {
			return emitErr
		}
	}
	return nil
}

// FuncReader synthesises values from a pure function of the coordinate —
// datasets too large to materialise (or defined analytically) without a
// file.
type FuncReader struct {
	Fn func(coords.Coord) float64
}

// ReadSplit implements RecordReader.
func (r *FuncReader) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	var emitErr error
	slab.EachReuse(func(k coords.Coord) bool {
		if err := emit(k, r.Fn(k)); err != nil {
			emitErr = err
			return false
		}
		return true
	})
	return emitErr
}

// GenerateSplits carves the query input into contiguous leading-dimension
// bands of roughly targetPoints points each — SciHadoop's
// logical-coordinate split generation. When ns and file are given, each
// split gets locality hints from the block store assuming a row-major
// byte layout of bytesPerPoint bytes per element.
func GenerateSplits(input coords.Slab, targetPoints int64, ns *hdfs.Namespace, file string, bytesPerPoint int64) ([]InputSplit, error) {
	if targetPoints <= 0 {
		return nil, fmt.Errorf("mapreduce: targetPoints must be positive, got %d", targetPoints)
	}
	rowSize := input.Shape.Size() / input.Shape[0]
	rows := targetPoints / rowSize
	if rows < 1 {
		rows = 1
	}
	slabs, err := input.SplitDim(0, rows)
	if err != nil {
		return nil, err
	}
	splits := make([]InputSplit, len(slabs))
	for i, s := range slabs {
		splits[i] = InputSplit{ID: i, Slab: s}
		if ns != nil && file != "" {
			off, err := input.Linearize(s.Corner)
			if err != nil {
				return nil, err
			}
			hosts, err := ns.RangeHosts(file, off*bytesPerPoint, s.Size()*bytesPerPoint)
			if err != nil {
				return nil, err
			}
			splits[i].Hosts = hosts
		}
	}
	return splits, nil
}

// Slabs extracts the slab of each split, the form the dependency planner
// consumes.
func Slabs(splits []InputSplit) []coords.Slab {
	out := make([]coords.Slab, len(splits))
	for i, s := range splits {
		out[i] = s.Slab
	}
	return out
}
