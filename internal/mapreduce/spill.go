package mapreduce

import (
	"fmt"
	"os"
	"path/filepath"

	"sidr/internal/kv"
)

// spill writes a Map task's per-keyblock outputs as annotated spill
// files and replaces the in-memory pairs with file references. Empty
// partitions produce no file.
func (j *job) spill(mapID int, outs []mapOutput) error {
	rank := j.space.Rank()
	if j.cfg.Join != nil {
		rank = j.cfg.Join.SpillRank() // join keys carry a trailing side bit
	}
	for l := range outs {
		if len(outs[l].pairs) == 0 && outs[l].sourceCount == 0 {
			continue
		}
		path := filepath.Join(j.cfg.SpillDir, fmt.Sprintf("spill-m%05d-r%05d.bin", mapID, l))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("mapreduce: creating spill: %w", err)
		}
		if err := kv.WriteSpill(f, rank, outs[l].sourceCount, outs[l].pairs); err != nil {
			f.Close()
			return fmt.Errorf("mapreduce: writing spill %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		outs[l] = mapOutput{path: path, sourceCount: outs[l].sourceCount}
	}
	return nil
}

// readSpillFile reads one spill file back, returning its pairs and the
// header's source-count annotation. The header is decoded first — the
// same two-phase access a Reduce task uses to tally its inputs before
// deciding to parse bodies (§3.2.1).
func readSpillFile(path string) ([]kv.Pair, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("mapreduce: opening spill: %w", err)
	}
	defer f.Close()
	h, err := kv.ReadSpillHeader(f)
	if err != nil {
		return nil, 0, fmt.Errorf("mapreduce: spill header %s: %w", path, err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, err
	}
	h2, pairs, err := kv.ReadSpill(f)
	if err != nil {
		return nil, 0, fmt.Errorf("mapreduce: spill body %s: %w", path, err)
	}
	if h2.SourceCount != h.SourceCount {
		return nil, 0, fmt.Errorf("mapreduce: spill %s header changed between reads", path)
	}
	return pairs, h.SourceCount, nil
}
