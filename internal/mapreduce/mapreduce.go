// Package mapreduce implements an in-process MapReduce runtime for
// structural queries — the repository's stand-in for Hadoop 1.0. Map
// tasks read logical-coordinate input splits (SciHadoop-style), emit
// intermediate ⟨k',v'⟩ pairs keyed by extraction-shape tile, optionally
// combine them, and partition them into keyblocks; Reduce tasks wait on a
// barrier (global, as stock Hadoop, or per-keyblock data dependencies, as
// SIDR), fetch and merge their pairs, validate kv-count annotations, and
// apply the query operator.
//
// Tasks run on real goroutine worker pools over real data, so barrier
// semantics, shuffle connection counts, early results and the count
// annotations are all exercised end-to-end rather than simulated.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/kv"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// InputSplit is a unit of Map work: a logical-coordinate slab of the
// dataset plus the hosts holding it (locality hints).
type InputSplit struct {
	ID    int
	Slab  coords.Slab
	Hosts []string
}

// RecordReader produces the ⟨k, v⟩ pairs of one input split. Readers
// must be safe for concurrent calls on distinct splits.
type RecordReader interface {
	// ReadSplit invokes emit for every point of the slab, in row-major
	// order, stopping on the first error.
	ReadSplit(slab coords.Slab, emit func(k coords.Coord, v float64) error) error
}

// BarrierMode selects how Reduce tasks synchronise with Map tasks.
type BarrierMode int

const (
	// GlobalBarrier makes every Reduce task wait for all Map tasks —
	// stock Hadoop semantics (Figure 4a).
	GlobalBarrier BarrierMode = iota
	// DependencyBarrier lets each Reduce task start once the splits in
	// its I_ℓ are processed — SIDR semantics (Figure 4b). Requires
	// Config.Graph.
	DependencyBarrier
)

// String names the mode.
func (b BarrierMode) String() string {
	if b == GlobalBarrier {
		return "global"
	}
	return "dependency"
}

// EventKind enumerates trace events.
type EventKind int

const (
	// MapStart and MapEnd bracket a Map task (Detail = split id).
	MapStart EventKind = iota
	MapEnd
	// ReduceStart marks a Reduce task's barrier being satisfied and
	// processing beginning; ReduceEnd marks its output being committed
	// (Detail = keyblock id).
	ReduceStart
	ReduceEnd
	// ReduceRecovered marks a Reduce attempt that failed and was
	// re-executed (Detail = keyblock id).
	ReduceRecovered
)

// Event is one timestamped runtime event.
type Event struct {
	Kind   EventKind
	Detail int
	At     time.Time
}

// Counters aggregates runtime statistics.
type Counters struct {
	MapRecordsIn   int64 // source points read by Map tasks
	MapPairsOut    int64 // intermediate pairs after combining
	ReducePairsIn  int64 // pairs fetched by Reduce tasks
	ShuffleBytes   int64 // approximate bytes crossing the shuffle
	OutputValues   int64 // values emitted by Reduce tasks
	Connections    int64 // shuffle fetches (Table 3's metric)
	RecomputedMaps int64 // Map tasks re-executed for failure recovery
}

// ReduceOutput is the committed output of one Reduce task: the keys of
// its keyblock in row-major order with the operator's values for each.
type ReduceOutput struct {
	Keyblock int
	Keys     []coords.Coord
	Values   [][]float64
}

// Result is a completed job.
type Result struct {
	Outputs  []ReduceOutput // indexed by keyblock
	Counters Counters
	Events   []Event
	Started  time.Time
	Finished time.Time
}

// Config parametrises a job.
type Config struct {
	Query  *query.Query
	Splits []InputSplit
	Reader RecordReader
	Part   partition.Partitioner

	// Ctx, when set, cancels the job: Map record loops, Reduce barrier
	// waits and worker dispatch all abort promptly once it is done, and
	// Run returns ctx.Err(). Nil means no cancellation.
	Ctx context.Context

	// Graph supplies I_ℓ and expected counts; required for
	// DependencyBarrier and for count validation.
	Graph   *depgraph.Graph
	Barrier BarrierMode

	// ValidateCounts makes each Reduce task verify the kv-count annotation
	// tally against the expected source count before applying the
	// operator (§3.2.1 approach 2). Requires Graph.
	ValidateCounts bool

	// Combine runs map-side combining (lossless for distributive and
	// filter operators; skipped automatically for holistic ones).
	Combine bool

	// MapWorkers and ReduceWorkers bound task concurrency; both default
	// to runtime.GOMAXPROCS(0) so the engine scales with the machine.
	MapWorkers    int
	ReduceWorkers int

	// MapOrder optionally reorders Map task execution (SIDR's scheduler
	// feeds dependency-driven order); nil runs splits in slice order.
	MapOrder []int

	// ReduceOrder optionally reorders Reduce task dispatch (SIDR's
	// keyblock prioritisation, §3.4); nil dispatches by ascending
	// keyblock id, Hadoop's policy.
	ReduceOrder []int

	// FailReduceOnce lists keyblocks whose Reduce task fails on its
	// first attempt, exercising the failure-recovery path. With
	// RecoverByRecompute the engine re-runs the Map tasks in I_ℓ instead
	// of refetching persisted intermediate data.
	FailReduceOnce     map[int]bool
	RecoverByRecompute bool

	// OnEvent, when set, receives every event as it happens (in addition
	// to Result.Events).
	OnEvent func(Event)

	// OnReduceOutput, when set, receives each Reduce task's committed
	// output the moment it is available — SIDR's early, correct,
	// partial results. Callbacks may arrive concurrently from multiple
	// Reduce workers.
	OnReduceOutput func(ReduceOutput)

	// SpillDir, when set, materialises Map outputs as on-disk spill
	// files (one per Map task and keyblock, with the §3.2.1 kv-count
	// annotation in the file header) that Reduce tasks read back during
	// the shuffle — Hadoop's real intermediate-data path. Empty keeps
	// intermediate data in memory.
	SpillDir string

	// SortBufferRecords bounds the Map-side accumulation buffer,
	// modelling Hadoop's io.sort.mb: when a Map task has buffered this
	// many source records it seals the buffer into a sorted segment and
	// starts a new one; segments are k-way merged map-side before the
	// output is published. Zero means unbounded (a single segment).
	SortBufferRecords int64
}

// Errors reported by Run.
var (
	ErrNoQuery       = errors.New("mapreduce: config needs a query")
	ErrNoReader      = errors.New("mapreduce: config needs a record reader")
	ErrNoPartitioner = errors.New("mapreduce: config needs a partitioner")
	ErrNeedsGraph    = errors.New("mapreduce: dependency barrier and count validation need a dependency graph")
	ErrCountMismatch = errors.New("mapreduce: kv-count annotation mismatch")
	ErrBadMapOrder   = errors.New("mapreduce: MapOrder must permute split indices")
)

// mapOutput is the materialised output of one Map task for one keyblock —
// one partition of a Map output file. sourceCount is the file-header
// annotation of §3.2.1: the number of source ⟨k,v⟩ pairs the (possibly
// combined) pairs represent. In spill mode pairs is nil and path names
// the on-disk spill file.
type mapOutput struct {
	pairs       []kv.Pair
	path        string
	sourceCount int64
}

// job carries the shared state of one run.
type job struct {
	cfg   Config
	op    ops.Operator
	space coords.Slab // K'^T

	mu       sync.Mutex
	cond     *sync.Cond
	mapDone  []bool
	nDone    int
	outputs  [][]mapOutput // [split][keyblock]
	events   []Event
	counters Counters
	failed   error
}

// Run executes the job and blocks until completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Query == nil {
		return nil, ErrNoQuery
	}
	if cfg.Reader == nil {
		return nil, ErrNoReader
	}
	if cfg.Part == nil {
		return nil, ErrNoPartitioner
	}
	if (cfg.Barrier == DependencyBarrier || cfg.ValidateCounts || cfg.RecoverByRecompute) && cfg.Graph == nil {
		return nil, ErrNeedsGraph
	}
	if cfg.MapWorkers <= 0 {
		cfg.MapWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.ReduceWorkers <= 0 {
		cfg.ReduceWorkers = runtime.GOMAXPROCS(0)
	}
	op, err := cfg.Query.Op()
	if err != nil {
		return nil, err
	}
	space, err := cfg.Query.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	order := cfg.MapOrder
	if order == nil {
		order = make([]int, len(cfg.Splits))
		for i := range order {
			order[i] = i
		}
	} else if err := checkPermutation(order, len(cfg.Splits)); err != nil {
		return nil, err
	}
	rOrder := cfg.ReduceOrder
	if rOrder == nil {
		rOrder = make([]int, cfg.Part.NumKeyblocks())
		for i := range rOrder {
			rOrder[i] = i
		}
	} else if err := checkPermutation(rOrder, cfg.Part.NumKeyblocks()); err != nil {
		return nil, err
	}

	j := &job{
		cfg:     cfg,
		op:      op,
		space:   space,
		mapDone: make([]bool, len(cfg.Splits)),
		outputs: make([][]mapOutput, len(cfg.Splits)),
	}
	j.cond = sync.NewCond(&j.mu)
	started := time.Now()

	// Cancellation: record ctx.Err() as the job failure and wake every
	// barrier waiter the moment the context is done. Workers observe the
	// failure between tasks and inside Map record loops.
	if cfg.Ctx != nil {
		stop := context.AfterFunc(cfg.Ctx, func() { j.fail(cfg.Ctx.Err()) })
		defer stop()
	}

	r := cfg.Part.NumKeyblocks()
	results := make([]ReduceOutput, r)
	reduceErrs := make([]error, r)

	var wg sync.WaitGroup
	// Reduce workers start first — under SIDR scheduling Reduce tasks are
	// scheduled before the Map tasks they depend on (§3.3).
	reduceCh := make(chan int)
	for w := 0; w < cfg.ReduceWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range reduceCh {
				if err := j.aborted(); err != nil {
					results[l] = ReduceOutput{Keyblock: l}
					reduceErrs[l] = err
					continue
				}
				out, err := j.runReduce(l)
				if err != nil {
					j.fail(err)
				}
				results[l] = out
				reduceErrs[l] = err
			}
		}()
	}
	mapCh := make(chan int)
	for w := 0; w < cfg.MapWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range mapCh {
				if j.aborted() != nil {
					continue
				}
				if err := j.runMap(i); err != nil {
					j.fail(err)
				}
			}
		}()
	}

	go func() {
		for _, l := range rOrder {
			reduceCh <- l
		}
		close(reduceCh)
	}()
	for _, i := range order {
		mapCh <- i
	}
	close(mapCh)
	wg.Wait()

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		// A cancelled job surfaces ctx.Err() itself, not a task-level
		// wrapping of it, so callers can compare with errors.Is/==.
		if cfg.Ctx != nil {
			if cerr := cfg.Ctx.Err(); cerr != nil && errors.Is(j.failed, cerr) {
				return nil, cerr
			}
		}
		return nil, j.failed
	}
	for _, err := range reduceErrs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Outputs:  results,
		Counters: j.counters,
		Events:   j.events,
		Started:  started,
		Finished: time.Now(),
	}, nil
}

// fail records the first error and wakes all waiters.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed == nil {
		j.failed = err
	}
	j.cond.Broadcast()
}

// aborted returns the job's recorded failure, if any.
func (j *job) aborted() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

func (j *job) emit(e Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	cb := j.cfg.OnEvent
	j.mu.Unlock()
	if cb != nil {
		cb(e)
	}
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("%w: %d entries for %d splits", ErrBadMapOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("%w: bad entry %d", ErrBadMapOrder, i)
		}
		seen[i] = true
	}
	return nil
}
