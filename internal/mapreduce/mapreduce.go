// Package mapreduce implements an in-process MapReduce runtime for
// structural queries — the repository's stand-in for Hadoop 1.0. Map
// tasks read logical-coordinate input splits (SciHadoop-style), emit
// intermediate ⟨k',v'⟩ pairs keyed by extraction-shape tile, optionally
// combine them, and partition them into keyblocks; Reduce tasks wait on a
// barrier (global, as stock Hadoop, or per-keyblock data dependencies, as
// SIDR), fetch and merge their pairs, validate kv-count annotations, and
// apply the query operator.
//
// The runtime is an explicit task graph on a bounded executor
// (internal/exec): every keyblock's Reduce task carries a
// remaining-dependency counter seeded from the dependency graph's I_ℓ
// (or the split count under the global barrier), and a Map task's
// completion decrements its dependents and enqueues each Reduce task the
// moment its counter reaches zero. Readiness is therefore computed, not
// discovered — no task ever parks on a condition variable waiting for
// its barrier — which is SIDR's §3.3 scheduling model realised in the
// runtime itself. Barrier semantics, shuffle connection counts, early
// results and the count annotations are all exercised end-to-end over
// real data rather than simulated.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/exec"
	"sidr/internal/join"
	"sidr/internal/kv"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// InputSplit is a unit of Map work: a logical-coordinate slab of the
// dataset plus the hosts holding it (locality hints).
type InputSplit struct {
	ID    int
	Slab  coords.Slab
	Hosts []string
}

// RecordReader produces the ⟨k, v⟩ pairs of one input split. Readers
// must be safe for concurrent calls on distinct splits.
type RecordReader interface {
	// ReadSplit invokes emit for every point of the slab, in row-major
	// order, stopping on the first error. The coordinate is only valid
	// for the duration of the emit call — readers may reuse its storage
	// between records — so consumers that keep it must Clone it.
	ReadSplit(slab coords.Slab, emit func(k coords.Coord, v float64) error) error
}

// BarrierMode selects how Reduce tasks synchronise with Map tasks.
type BarrierMode int

const (
	// GlobalBarrier makes every Reduce task wait for all Map tasks —
	// stock Hadoop semantics (Figure 4a).
	GlobalBarrier BarrierMode = iota
	// DependencyBarrier lets each Reduce task start once the splits in
	// its I_ℓ are processed — SIDR semantics (Figure 4b). Requires
	// Config.Graph.
	DependencyBarrier
)

// String names the mode.
func (b BarrierMode) String() string {
	if b == GlobalBarrier {
		return "global"
	}
	return "dependency"
}

// EventKind enumerates trace events.
type EventKind int

const (
	// MapStart and MapEnd bracket a Map task (Detail = split id).
	MapStart EventKind = iota
	MapEnd
	// ReduceStart marks a Reduce task's barrier being satisfied and
	// processing beginning; ReduceEnd marks its output being committed
	// (Detail = keyblock id).
	ReduceStart
	ReduceEnd
	// ReduceRecovered marks a Reduce attempt that failed and was
	// re-executed (Detail = keyblock id).
	ReduceRecovered
)

// Event is one timestamped runtime event.
type Event struct {
	Kind   EventKind
	Detail int
	At     time.Time
}

// Counters aggregates runtime statistics.
type Counters struct {
	MapRecordsIn    int64 // source points read by Map tasks
	MapPairsOut     int64 // intermediate pairs after combining
	ReducePairsIn   int64 // pairs fetched by Reduce tasks
	ShuffleBytes    int64 // approximate bytes crossing the shuffle
	OutputValues    int64 // values emitted by Reduce tasks
	Connections     int64 // shuffle fetches (Table 3's metric)
	RecomputedMaps  int64 // Map tasks re-executed for failure recovery
	TasksDispatched int64 // Map and Reduce tasks dispatched by the executor
}

// ReduceOutput is the committed output of one Reduce task: the keys of
// its keyblock in row-major order with the operator's values for each.
type ReduceOutput struct {
	Keyblock int
	Keys     []coords.Coord
	Values   [][]float64
}

// Result is a completed job.
type Result struct {
	Outputs  []ReduceOutput // indexed by keyblock
	Counters Counters
	Events   []Event
	Started  time.Time
	Finished time.Time
}

// Config parametrises a job.
type Config struct {
	Query  *query.Query
	Splits []InputSplit
	Reader RecordReader
	Part   partition.Partitioner

	// Join, when set, runs the job as a structural join: Splits is the
	// combined two-sided split list (side derived from the index against
	// the join plan's SideBoundary), Reader serves side A and Reader2
	// side B, and Map/Reduce bodies dispatch to internal/join. The task
	// graph, barriers, shuffle and count validation work unchanged.
	Join    *join.Plan
	Reader2 RecordReader

	// Ctx, when set, cancels the job: Map record loops, pending task
	// dispatch and Reduce execution all abort promptly once it is done,
	// and Run returns ctx.Err(). Nil means no cancellation.
	Ctx context.Context

	// Graph supplies I_ℓ and expected counts; required for
	// DependencyBarrier and for count validation.
	Graph   *depgraph.Graph
	Barrier BarrierMode

	// ValidateCounts makes each Reduce task verify the kv-count annotation
	// tally against the expected source count before applying the
	// operator (§3.2.1 approach 2). Requires Graph.
	ValidateCounts bool

	// Combine runs map-side combining (lossless for distributive and
	// filter operators; skipped automatically for holistic ones).
	Combine bool

	// Workers bounds the job's task concurrency. Without an injected
	// executor it sizes the job's private worker pool (default
	// runtime.GOMAXPROCS(0)); with Exec set it caps how many of the
	// job's tasks run concurrently on the shared pool (0 leaves the job
	// bounded only by the pool itself).
	Workers int

	// Exec, when set, runs the job's tasks on a shared executor instead
	// of a private pool, so J concurrent jobs are bounded by one
	// process-wide worker count rather than J pools. The executor must
	// outlive the Run call.
	Exec *exec.Executor

	// Weight is the job's weighted-fair share of the shared executor:
	// when several jobs have runnable tasks, a weight-w job dispatches up
	// to w consecutive tasks per round-robin turn (default 1; only
	// meaningful with Exec).
	Weight int

	// MapOrder optionally reorders Map task execution (SIDR's scheduler
	// feeds dependency-driven order); nil runs splits in slice order.
	MapOrder []int

	// ReduceOrder optionally reorders Reduce task dispatch (SIDR's
	// keyblock prioritisation, §3.4); nil dispatches by ascending
	// keyblock id, Hadoop's policy.
	ReduceOrder []int

	// FailReduceOnce lists keyblocks whose Reduce task fails on its
	// first attempt, exercising the failure-recovery path. With
	// RecoverByRecompute the engine re-runs the Map tasks in I_ℓ instead
	// of refetching persisted intermediate data.
	FailReduceOnce     map[int]bool
	RecoverByRecompute bool

	// OnEvent, when set, receives every event as it happens (in addition
	// to Result.Events).
	OnEvent func(Event)

	// OnReduceOutput, when set, receives each Reduce task's committed
	// output the moment it is available — SIDR's early, correct,
	// partial results. Callbacks may arrive concurrently from multiple
	// Reduce workers.
	OnReduceOutput func(ReduceOutput)

	// SpillDir, when set, materialises Map outputs as on-disk spill
	// files (one per Map task and keyblock, with the §3.2.1 kv-count
	// annotation in the file header) that Reduce tasks read back during
	// the shuffle — Hadoop's real intermediate-data path. Empty keeps
	// intermediate data in memory.
	SpillDir string

	// SortBufferRecords bounds the Map-side accumulation buffer,
	// modelling Hadoop's io.sort.mb: when a Map task has buffered this
	// many source records it seals the buffer into a sorted segment and
	// starts a new one; segments are k-way merged map-side before the
	// output is published. Zero means unbounded (a single segment).
	SortBufferRecords int64
}

// Errors reported by Run.
var (
	ErrNoQuery       = errors.New("mapreduce: config needs a query")
	ErrNoReader      = errors.New("mapreduce: config needs a record reader")
	ErrNoReader2     = errors.New("mapreduce: join config needs a second record reader")
	ErrNoPartitioner = errors.New("mapreduce: config needs a partitioner")
	ErrNeedsGraph    = errors.New("mapreduce: dependency barrier and count validation need a dependency graph")
	ErrCountMismatch = errors.New("mapreduce: kv-count annotation mismatch")
	ErrBadMapOrder   = errors.New("mapreduce: MapOrder must permute split indices")
)

// mapOutput is the materialised output of one Map task for one keyblock —
// one partition of a Map output file. sourceCount is the file-header
// annotation of §3.2.1: the number of source ⟨k,v⟩ pairs the (possibly
// combined) pairs represent. In spill mode pairs is nil and path names
// the on-disk spill file.
type mapOutput struct {
	pairs       []kv.Pair
	path        string
	sourceCount int64
}

// job carries the shared state of one run: the task graph (dependency
// counters, enqueue flags) plus the accumulated outputs and telemetry.
type job struct {
	cfg    Config
	op     ops.Operator
	space  coords.Slab // K'^T
	h      *exec.Handle
	rOrder []int

	mu       sync.Mutex
	mapDone  []bool
	nDone    int
	outputs  [][]mapOutput // [split][keyblock]
	events   []Event
	counters Counters
	failed   error

	// Task-graph state, all guarded by mu. remaining[l] is Reduce task
	// l's dependency counter: the number of Map tasks that must complete
	// before l is runnable (|I_ℓ| under the dependency barrier, the split
	// count under the global one). outstanding counts unresolved tasks —
	// every Map and Reduce task resolves exactly once, by running, by
	// being dropped from the queue on failure, or (a Reduce never
	// enqueued) directly in failLocked — and done closes at zero.
	remaining   []int
	enqueued    []bool
	reduceRank  []int // keyblock → position in rOrder (dispatch priority)
	results     []ReduceOutput
	reduceErrs  []error
	outstanding int
	done        chan struct{}
	doneClosed  bool
}

// Run executes the job and blocks until completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Query == nil {
		return nil, ErrNoQuery
	}
	if cfg.Reader == nil {
		return nil, ErrNoReader
	}
	if cfg.Part == nil {
		return nil, ErrNoPartitioner
	}
	if (cfg.Barrier == DependencyBarrier || cfg.ValidateCounts || cfg.RecoverByRecompute) && cfg.Graph == nil {
		return nil, ErrNeedsGraph
	}
	var op ops.Operator
	if cfg.Join == nil {
		var err error
		op, err = cfg.Query.Op()
		if err != nil {
			return nil, err
		}
	} else if cfg.Reader2 == nil {
		return nil, ErrNoReader2
	}
	space, err := cfg.Query.IntermediateSpace()
	if err != nil {
		return nil, err
	}
	order := cfg.MapOrder
	if order == nil {
		order = make([]int, len(cfg.Splits))
		for i := range order {
			order[i] = i
		}
	} else if err := checkPermutation(order, len(cfg.Splits)); err != nil {
		return nil, err
	}
	rOrder := cfg.ReduceOrder
	if rOrder == nil {
		rOrder = make([]int, cfg.Part.NumKeyblocks())
		for i := range rOrder {
			rOrder[i] = i
		}
	} else if err := checkPermutation(rOrder, cfg.Part.NumKeyblocks()); err != nil {
		return nil, err
	}

	r := cfg.Part.NumKeyblocks()
	j := &job{
		cfg:         cfg,
		op:          op,
		space:       space,
		rOrder:      rOrder,
		mapDone:     make([]bool, len(cfg.Splits)),
		outputs:     make([][]mapOutput, len(cfg.Splits)),
		remaining:   make([]int, r),
		enqueued:    make([]bool, r),
		reduceRank:  make([]int, r),
		results:     make([]ReduceOutput, r),
		reduceErrs:  make([]error, r),
		outstanding: len(cfg.Splits) + r,
		done:        make(chan struct{}),
	}
	for rank, l := range rOrder {
		j.reduceRank[l] = rank
	}

	// Without an injected executor the job runs on a private pool sized
	// by Workers; with one, Workers becomes the job's MaxParallel cap on
	// the shared pool.
	ex := cfg.Exec
	maxPar := 0
	if ex == nil {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		ex = exec.New(w)
		defer ex.Close()
	} else {
		maxPar = cfg.Workers
	}
	j.h = ex.NewHandle(exec.HandleOptions{Weight: cfg.Weight, MaxParallel: maxPar})
	defer j.h.Close()

	started := time.Now()

	// Cancellation: record ctx.Err() as the job failure, drop every
	// pending task and resolve the owed ones the moment the context is
	// done. Running Map record loops observe the failure inside their
	// amortised cancellation checks.
	if cfg.Ctx != nil {
		stop := context.AfterFunc(cfg.Ctx, func() { j.fail(cfg.Ctx.Err()) })
		defer stop()
	}

	// Seed the task graph. Reduce tasks whose dependency counter is
	// already zero (empty keyblocks; any keyblock when there are no
	// splits) enqueue immediately — under SIDR scheduling Reduce tasks
	// are scheduled before the Map tasks they depend on (§3.3), which
	// exec.Class ordering guarantees for every later enqueue too.
	j.mu.Lock()
	for _, l := range rOrder {
		if cfg.Barrier == DependencyBarrier {
			j.remaining[l] = len(cfg.Graph.KBToSplits[l])
		} else {
			j.remaining[l] = len(cfg.Splits)
		}
		if j.remaining[l] == 0 {
			j.enqueueReduceLocked(l)
		}
	}
	for prio, i := range order {
		i := i
		j.h.Submit(exec.Map, prio, func() {
			err := j.aborted()
			if err == nil {
				err = j.runMap(i)
			}
			j.mapFinished(i, err)
		})
	}
	j.resolveLocked(0) // a splitless, reducerless job is already done
	j.mu.Unlock()

	<-j.done

	j.mu.Lock()
	defer j.mu.Unlock()
	j.counters.TasksDispatched = j.h.Dispatched()
	if j.failed != nil {
		// A cancelled job surfaces ctx.Err() itself, not a task-level
		// wrapping of it, so callers can compare with errors.Is/==.
		if cfg.Ctx != nil {
			if cerr := cfg.Ctx.Err(); cerr != nil && errors.Is(j.failed, cerr) {
				return nil, cerr
			}
		}
		return nil, j.failed
	}
	for _, err := range j.reduceErrs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Outputs:  j.results,
		Counters: j.counters,
		Events:   j.events,
		Started:  started,
		Finished: time.Now(),
	}, nil
}

// mapFinished resolves Map task i: on success it publishes completion to
// the task graph, decrementing every dependent Reduce task's counter and
// enqueueing those that become ready.
func (j *job) mapFinished(i int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.failLocked(err)
	} else if j.failed == nil && !j.mapDone[i] {
		j.mapDone[i] = true
		j.nDone++
		if j.cfg.Barrier == DependencyBarrier {
			for _, l := range j.cfg.Graph.SplitToKB[i] {
				j.remaining[l]--
				if j.remaining[l] == 0 {
					j.enqueueReduceLocked(l)
				}
			}
		} else {
			// Global barrier: every Reduce task depends on every split.
			for _, l := range j.rOrder {
				j.remaining[l]--
				if j.remaining[l] == 0 {
					j.enqueueReduceLocked(l)
				}
			}
		}
	}
	j.resolveLocked(1)
}

// enqueueReduceLocked submits Reduce task l, whose dependencies are now
// met. Caller holds j.mu. Class Reduce outranks queued Map work, and the
// keyblock's rOrder rank carries ReduceOrder steering into dispatch.
func (j *job) enqueueReduceLocked(l int) {
	if j.enqueued[l] {
		return
	}
	j.enqueued[l] = true
	j.h.Submit(exec.Reduce, j.reduceRank[l], func() {
		out := ReduceOutput{Keyblock: l}
		err := j.aborted()
		if err == nil {
			out, err = j.runReduce(l)
		}
		j.mu.Lock()
		j.results[l] = out
		j.reduceErrs[l] = err
		if err != nil {
			j.failLocked(err)
		}
		j.resolveLocked(1)
		j.mu.Unlock()
	})
}

// resolveLocked accounts n resolved tasks and completes the job when no
// task remains outstanding. Caller holds j.mu.
func (j *job) resolveLocked(n int) {
	j.outstanding -= n
	if j.outstanding <= 0 && !j.doneClosed {
		j.doneClosed = true
		close(j.done)
	}
}

// failLocked records the first error, drops every pending task from the
// executor queue, and resolves the Reduce tasks that were never enqueued
// so the job can complete. Caller holds j.mu.
func (j *job) failLocked(err error) {
	if j.failed != nil {
		return
	}
	j.failed = err
	// Dropped tasks (queued Maps and enqueued-but-undispatched Reduces)
	// will never run; account them resolved here. Tasks already running
	// resolve themselves when their fn returns.
	j.resolveLocked(j.h.Cancel())
	for _, l := range j.rOrder {
		if !j.enqueued[l] {
			j.enqueued[l] = true
			j.results[l] = ReduceOutput{Keyblock: l}
			j.reduceErrs[l] = err
			j.resolveLocked(1)
		}
	}
}

// fail records the first error and releases every owed task.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failLocked(err)
}

// aborted returns the job's recorded failure, if any.
func (j *job) aborted() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

func (j *job) emit(e Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	cb := j.cfg.OnEvent
	j.mu.Unlock()
	if cb != nil {
		cb(e)
	}
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("%w: %d entries for %d splits", ErrBadMapOrder, len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("%w: bad entry %d", ErrBadMapOrder, i)
		}
		seen[i] = true
	}
	return nil
}
