package mapreduce

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpillModeMatchesInMemory(t *testing.T) {
	queries := []string{
		"median temp[0,0 : 28,10] es {7,5}",
		"avg temp[0,0 : 28,10] es {7,5}",
		"filter_gt temp[0,0 : 20,20] es {4,4} param 30",
	}
	for _, qs := range queries {
		q := mustParse(t, qs)
		ref := referenceResults(t, q, synthValue)
		cfg := buildJob(t, q, 3, true, true)
		cfg.SpillDir = t.TempDir()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		checkAgainstReference(t, res, ref)
		// Spill files must actually exist on disk.
		entries, err := os.ReadDir(cfg.SpillDir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "spill-") {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("%s: no spill files written", qs)
		}
	}
}

func TestSpillModeCountValidationStillWorks(t *testing.T) {
	q := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	cfg := buildJob(t, q, 2, true, true)
	cfg.SpillDir = t.TempDir()
	cfg.Graph.ExpectedCount[0]++ // poison the expectation
	if _, err := Run(cfg); err == nil {
		t.Fatal("count mismatch undetected in spill mode")
	}
}

func TestSpillModeGlobalBarrier(t *testing.T) {
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 3, false, false)
	cfg.SpillDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}

func TestSpillCorruptionDetected(t *testing.T) {
	q := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	cfg := buildJob(t, q, 2, true, true)
	dir := t.TempDir()
	cfg.SpillDir = dir
	// Corrupt every spill file as soon as its map finishes, before the
	// reduces consume them: truncate to garbage via an event hook.
	cfg.OnEvent = func(e Event) {
		if e.Kind != MapEnd {
			return
		}
		entries, _ := os.ReadDir(dir)
		for _, ent := range entries {
			os.WriteFile(filepath.Join(dir, ent.Name()), []byte("junk"), 0o644)
		}
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("corrupted spill files accepted")
	}
}

func TestSpillFailureRecoveryRefetch(t *testing.T) {
	// Persisted spills survive a Reduce failure: recovery refetches them
	// without re-running maps.
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 2, true, true)
	cfg.SpillDir = t.TempDir()
	cfg.FailReduceOnce = map[int]bool{0: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
	if res.Counters.RecomputedMaps != 0 {
		t.Fatalf("refetch recovery recomputed %d maps", res.Counters.RecomputedMaps)
	}
}
