package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sidr/internal/coords"
	"sidr/internal/join"
	"sidr/internal/kv"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// runMap executes Map task i: read the split's live region, map every
// source key into K' via the extraction shape, accumulate per-keyblock
// intermediate pairs (combining when configured), and publish the outputs
// with their source-count annotations. Completion bookkeeping (dependency
// decrements, reduce enqueues) happens in mapFinished after MapEnd.
func (j *job) runMap(i int) error {
	j.emit(Event{Kind: MapStart, Detail: i, At: time.Now()})
	outs, records, err := j.execMap(i)
	if err != nil {
		return err
	}
	var pairsOut int64
	for _, o := range outs {
		pairsOut += int64(len(o.pairs))
	}
	if j.cfg.SpillDir != "" {
		if err := j.spill(i, outs); err != nil {
			return err
		}
	}
	j.mu.Lock()
	j.outputs[i] = outs
	j.counters.MapRecordsIn += records
	j.counters.MapPairsOut += pairsOut
	j.mu.Unlock()
	j.emit(Event{Kind: MapEnd, Detail: i, At: time.Now()})
	return nil
}

// scratchChunk sizes the mapScratch value slab's allocation unit.
const scratchChunk = 512

// mapScratch is reusable per-Map-task accumulation state: the
// per-keyblock accumulator maps (buckets retained across tasks), a bump
// slab for kv.Value cells, and a freelist of pair slices for sealed
// segments that do not escape the task. Pooled process-wide so repeated
// Map tasks stop paying per-split allocation churn.
type mapScratch struct {
	accums   []map[int64]*kv.Value
	segments [][][]kv.Pair
	chunks   [][]kv.Value
	ci, cn   int // bump position: chunk index, offset within chunk
	free     [][]kv.Pair
	kp       coords.Coord // MapKeyInto buffer for the record loop
}

var scratchPool = sync.Pool{New: func() any { return &mapScratch{} }}

// reset prepares the scratch for a task with r keyblocks. Previously
// handed-out slab cells are zeroed: their Samples headers may alias
// arrays that escaped into published pairs, and a zeroed cell starts a
// fresh array on its first Add instead of appending into a shared one.
func (s *mapScratch) reset(r int) {
	for i := 0; i < s.ci && i < len(s.chunks); i++ {
		c := s.chunks[i]
		for k := range c {
			c[k] = kv.Value{}
		}
	}
	if s.ci < len(s.chunks) {
		c := s.chunks[s.ci]
		for k := 0; k < s.cn; k++ {
			c[k] = kv.Value{}
		}
	}
	s.ci, s.cn = 0, 0
	if cap(s.accums) < r {
		s.accums = make([]map[int64]*kv.Value, r)
	} else {
		s.accums = s.accums[:r]
	}
	for i, m := range s.accums {
		if m != nil {
			clear(m)
		} else {
			s.accums[i] = make(map[int64]*kv.Value)
		}
	}
	if cap(s.segments) < r {
		s.segments = make([][][]kv.Pair, r)
	} else {
		s.segments = s.segments[:r]
		for i := range s.segments {
			for k := range s.segments[i] {
				s.segments[i][k] = nil // drop references to published pairs
			}
			s.segments[i] = s.segments[i][:0]
		}
	}
}

// value hands out a zeroed kv.Value cell from the slab.
func (s *mapScratch) value() *kv.Value {
	if s.ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]kv.Value, scratchChunk))
	}
	c := s.chunks[s.ci]
	v := &c[s.cn]
	s.cn++
	if s.cn == len(c) {
		s.ci++
		s.cn = 0
	}
	return v
}

// pairBuf returns an empty pair slice, reusing a recycled segment when
// one with capacity is available.
func (s *mapScratch) pairBuf(n int) []kv.Pair {
	for i := len(s.free) - 1; i >= 0; i-- {
		if cap(s.free[i]) >= n {
			buf := s.free[i][:0]
			s.free = append(s.free[:i], s.free[i+1:]...)
			return buf
		}
	}
	return make([]kv.Pair, 0, n)
}

// recycle returns segment slices that did not escape the task (they were
// merged into a fresh output slice) to the freelist.
func (s *mapScratch) recycle(segs [][]kv.Pair) {
	if len(s.free) >= 16 {
		return
	}
	s.free = append(s.free, segs...)
}

// MapInput bundles everything one Map task needs to execute outside a
// full job. The distributed runtime (internal/cluster) uses it to run
// single Map tasks on remote worker processes through exactly the same
// map path — accumulation, combining, sort-buffer sealing — the
// in-process engine uses, so a clustered job's intermediate data is
// bit-identical to a local run's.
type MapInput struct {
	Query  *query.Query
	Op     ops.Operator
	Space  coords.Slab // K'^T, the intermediate keyspace
	Part   partition.Partitioner
	Reader RecordReader

	// Combine enables map-side combining (applied only when lossless for
	// the operator).
	Combine bool
	// SortBufferRecords bounds the map-side accumulation buffer (see
	// Config.SortBufferRecords). Zero means unbounded.
	SortBufferRecords int64
	// Ctx, when set, aborts the record loop when done.
	Ctx context.Context
}

// MapOut is one keyblock's share of a standalone Map task's output:
// the sorted intermediate pairs plus the §3.2.1 kv-count annotation.
type MapOut struct {
	Pairs       []kv.Pair
	SourceCount int64
}

// execMap is the side-effect-free body of a Map task, shared by normal
// execution and failure-recovery re-execution. Join jobs route through
// the join Map body with the side derived from the split index.
func (j *job) execMap(i int) ([]mapOutput, int64, error) {
	if jp := j.cfg.Join; jp != nil {
		side := jp.Side(i)
		reader := j.cfg.Reader
		if side == 1 {
			reader = j.cfg.Reader2
		}
		outs, records, err := join.ExecMap(jp, side, reader, j.cfg.Splits[i].Slab, j.cfg.Ctx)
		if err != nil {
			return nil, 0, fmt.Errorf("mapreduce: join map task %d: %w", i, err)
		}
		converted := make([]mapOutput, len(outs))
		for l, o := range outs {
			converted[l] = mapOutput{pairs: o.Pairs, sourceCount: o.SourceCount}
		}
		return converted, records, nil
	}
	in := MapInput{
		Query:             j.cfg.Query,
		Op:                j.op,
		Space:             j.space,
		Part:              j.cfg.Part,
		Reader:            j.cfg.Reader,
		Combine:           j.cfg.Combine,
		SortBufferRecords: j.cfg.SortBufferRecords,
		Ctx:               j.cfg.Ctx,
	}
	outs, records, err := ExecMap(in, j.cfg.Splits[i])
	if err != nil {
		return nil, 0, fmt.Errorf("mapreduce: map task %d: %w", i, err)
	}
	converted := make([]mapOutput, len(outs))
	for l, o := range outs {
		converted[l] = mapOutput{pairs: o.Pairs, sourceCount: o.SourceCount}
	}
	return converted, records, nil
}

// ExecMap runs one Map task standalone: read the split's live region,
// map every source key into K' via the extraction shape, accumulate
// per-keyblock intermediate pairs (combining when configured), and
// return the per-keyblock outputs with their source-count annotations.
// The returned slice is indexed by keyblock. The second return value is
// the number of source records read.
func ExecMap(in MapInput, split InputSplit) ([]MapOut, int64, error) {
	q := in.Query
	live, ok := split.Slab.Intersect(q.Input)
	if !ok {
		return make([]MapOut, in.Part.NumKeyblocks()), 0, nil
	}
	needSamples := in.Op.NeedsSamples()
	combine := in.Combine && ops.CombinerLossless(in.Op)

	r := in.Part.NumKeyblocks()
	outs := make([]MapOut, r)
	// Per-keyblock accumulation keyed by the K' key's row-major offset.
	// When SortBufferRecords bounds the buffer, full buffers are sealed
	// into sorted segments (Hadoop's io.sort.mb spills) and merged
	// map-side after the split is consumed. Maps, value cells and
	// (non-escaping) segment slices come from pooled scratch.
	scratch := scratchPool.Get().(*mapScratch)
	scratch.reset(r)
	defer scratchPool.Put(scratch)
	accums := scratch.accums
	segments := scratch.segments
	var records, buffered, seen int64

	// sealSegment converts one keyblock's accumulated buffer into a
	// sorted pair segment. Single-segment keyblocks publish the segment
	// directly, so seal buffers are only drawn from the freelist when a
	// map-side merge will replace them (multi-segment case) — a direct
	// publish must own fresh memory.
	sealSegment := func(kb int) error {
		m := accums[kb]
		if len(m) == 0 {
			return nil
		}
		var pairs []kv.Pair
		if len(segments[kb]) > 0 || in.SortBufferRecords > 0 {
			pairs = scratch.pairBuf(len(m))
		} else {
			pairs = make([]kv.Pair, 0, len(m))
		}
		for off, val := range m {
			kp, err := in.Space.Delinearize(off)
			if err != nil {
				return err
			}
			out := *val
			if combine && in.Op.Kind() == ops.Filter {
				out = ops.PreFilter(in.Op, out, q.Params()...)
			}
			if !combine && out.Count > 1 && out.Samples != nil {
				// Without a combiner each source pair ships separately;
				// emit one pair per sample to model the uncombined byte
				// volume. Aggregate-only operators still fold (their
				// values are indistinguishable), matching Hadoop jobs
				// that always configure combiners for such operators.
				for _, s := range out.Samples {
					pairs = append(pairs, kv.Pair{Key: kp, Value: kv.NewValue(s, true)})
				}
				continue
			}
			pairs = append(pairs, kv.Pair{Key: kp, Value: out})
		}
		kv.SortPairs(pairs)
		segments[kb] = append(segments[kb], pairs)
		clear(m)
		return nil
	}
	sealAll := func() error {
		for kb := range accums {
			if err := sealSegment(kb); err != nil {
				return err
			}
		}
		buffered = 0
		return nil
	}

	err := in.Reader.ReadSplit(live, func(k coords.Coord, v float64) error {
		// Cancellation check amortised over the record loop so slow
		// readers abort promptly without a per-point atomic.
		if seen&63 == 0 && in.Ctx != nil {
			if err := in.Ctx.Err(); err != nil {
				return err
			}
		}
		seen++
		kp, mapped := q.Extraction.MapKeyInto(k, scratch.kp)
		if kp != nil {
			scratch.kp = kp[:0]
		}
		if !mapped {
			return nil // stride gap
		}
		if !in.Space.Contains(kp) {
			return nil // discarded partial tile (KeepPartial == false semantics)
		}
		records++
		kb, err := in.Part.Partition(kp)
		if err != nil {
			return err
		}
		off, err := in.Space.Linearize(kp)
		if err != nil {
			return err
		}
		m := accums[kb]
		val := m[off]
		if val == nil {
			val = scratch.value()
			m[off] = val
		}
		val.Add(v, needSamples)
		outs[kb].SourceCount++
		buffered++
		if in.SortBufferRecords > 0 && buffered >= in.SortBufferRecords {
			return sealAll()
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if err := sealAll(); err != nil {
		return nil, 0, err
	}

	for kb, segs := range segments {
		switch {
		case len(segs) == 0:
			// No data for this keyblock.
		case len(segs) == 1:
			outs[kb].Pairs = segs[0]
		case combine:
			// Map-side merge folds equal keys across segments — the
			// combiner applied during Hadoop's spill merge. The merged
			// slice is fresh, so the segments return to the freelist.
			outs[kb].Pairs = kv.MergeSorted(segs)
			scratch.recycle(segs)
		default:
			// Without a combiner segments are concatenated and re-sorted
			// so downstream streams stay key-ordered but unfolded.
			all := make([]kv.Pair, 0, totalPairs(segs))
			for _, s := range segs {
				all = append(all, s...)
			}
			kv.SortPairs(all)
			outs[kb].Pairs = all
			scratch.recycle(segs)
		}
	}
	return outs, records, nil
}

func totalPairs(segs [][]kv.Pair) int {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	return n
}

// runReduce executes Reduce task l. Its dependency barrier was already
// satisfied when the task graph enqueued it — readiness is computed from
// I_ℓ counters, never awaited — so the task fetches and merges its
// intermediate data, validates the kv-count annotation tally, applies
// the operator per key, and commits the output.
func (j *job) runReduce(l int) (ReduceOutput, error) {
	j.emit(Event{Kind: ReduceStart, Detail: l, At: time.Now()})

	out, err := j.execReduce(l)
	if err != nil {
		return ReduceOutput{Keyblock: l}, err
	}

	// Failure injection: the first attempt is discarded and the task
	// re-executed, optionally re-running its dependent Map tasks instead
	// of relying on persisted intermediate data (paper §6 future work).
	j.mu.Lock()
	shouldFail := j.cfg.FailReduceOnce[l]
	if shouldFail {
		delete(j.cfg.FailReduceOnce, l)
	}
	j.mu.Unlock()
	if shouldFail {
		if j.cfg.RecoverByRecompute {
			for _, s := range j.cfg.Graph.KBToSplits[l] {
				outs, _, err := j.execMap(s)
				if err != nil {
					return ReduceOutput{Keyblock: l}, err
				}
				j.mu.Lock()
				j.outputs[s] = outs
				j.counters.RecomputedMaps++
				j.mu.Unlock()
			}
		}
		j.emit(Event{Kind: ReduceRecovered, Detail: l, At: time.Now()})
		out, err = j.execReduce(l)
		if err != nil {
			return ReduceOutput{Keyblock: l}, err
		}
	}

	if j.cfg.OnReduceOutput != nil {
		j.cfg.OnReduceOutput(out)
	}
	j.emit(Event{Kind: ReduceEnd, Detail: l, At: time.Now()})
	return out, nil
}

// execReduce fetches, merges and reduces keyblock l's data.
func (j *job) execReduce(l int) (ReduceOutput, error) {
	if j.cfg.Ctx != nil {
		if err := j.cfg.Ctx.Err(); err != nil {
			return ReduceOutput{Keyblock: l}, err
		}
	}
	// Shuffle: under the dependency barrier only the Map tasks in I_ℓ
	// are contacted; under the global barrier every Map task is (stock
	// Hadoop's all-to-all fetch), which is what Table 3 counts.
	var sources []int
	if j.cfg.Barrier == DependencyBarrier {
		sources = j.cfg.Graph.KBToSplits[l]
	} else {
		sources = make([]int, len(j.cfg.Splits))
		for i := range sources {
			sources[i] = i
		}
	}

	// Each Map task's output for this keyblock is an independently
	// sorted stream; collect them for the k-way merge.
	var streams [][]kv.Pair
	var tally, pairsIn, bytesIn int64
	var spills []string
	j.mu.Lock()
	for _, s := range sources {
		j.counters.Connections++
		o := j.outputs[s]
		if l >= len(o) {
			continue
		}
		if o[l].path != "" {
			spills = append(spills, o[l].path)
			continue
		}
		if len(o[l].pairs) == 0 && o[l].sourceCount == 0 {
			continue
		}
		streams = append(streams, o[l].pairs)
		tally += o[l].sourceCount
		pairsIn += int64(len(o[l].pairs))
		for _, p := range o[l].pairs {
			bytesIn += p.Value.ApproxBytes()
		}
	}
	j.mu.Unlock()
	for _, path := range spills {
		filePairs, src, err := readSpillFile(path)
		if err != nil {
			return ReduceOutput{}, err
		}
		streams = append(streams, filePairs)
		tally += src
		pairsIn += int64(len(filePairs))
		for _, p := range filePairs {
			bytesIn += p.Value.ApproxBytes()
		}
	}
	j.mu.Lock()
	j.counters.ReducePairsIn += pairsIn
	j.counters.ShuffleBytes += bytesIn
	j.mu.Unlock()

	if j.cfg.ValidateCounts {
		want := j.cfg.Graph.ExpectedCount[l]
		if tally != want {
			return ReduceOutput{}, fmt.Errorf("%w: keyblock %d received %d source pairs, expected %d",
				ErrCountMismatch, l, tally, want)
		}
	}

	// The Reduce-side sort/merge (§2.3): Map outputs arrive as sorted
	// streams, so a k-way merge yields the ⟨k', merged-value⟩ list
	// without a global re-sort — Hadoop's actual merge structure.
	merged := kv.MergeSorted(streams)
	out := ReduceOutput{Keyblock: l, Keys: make([]coords.Coord, 0, len(merged)), Values: make([][]float64, 0, len(merged))}
	var produced int64
	if jp := j.cfg.Join; jp != nil {
		out.Keys, out.Values = join.Reduce(jp, l, merged)
		for _, vals := range out.Values {
			produced += int64(len(vals))
		}
		j.mu.Lock()
		j.counters.OutputValues += produced
		j.mu.Unlock()
		return out, nil
	}
	isFilter := j.op.Kind() == ops.Filter
	params := j.cfg.Query.Params()
	for _, p := range merged {
		vals := j.op.Apply(p.Value, params...)
		if isFilter && len(vals) == 0 {
			// Predicated operators omit keys with no surviving samples.
			// This makes index-pruned and unpruned plans byte-identical
			// by construction: a key fed only by pruned splits (which
			// provably contribute no survivors) simply never appears.
			continue
		}
		out.Keys = append(out.Keys, p.Key)
		out.Values = append(out.Values, vals)
		produced += int64(len(vals))
	}
	j.mu.Lock()
	j.counters.OutputValues += produced
	j.mu.Unlock()
	return out, nil
}
