package mapreduce

import "testing"

// TestSortBufferBoundedMatchesUnbounded: bounding the Map-side sort
// buffer (forcing multiple sealed segments plus a map-side merge) must
// not change any result, for every operator class and barrier mode.
func TestSortBufferBoundedMatchesUnbounded(t *testing.T) {
	queries := []string{
		"median temp[0,0 : 28,10] es {7,5}",
		"avg temp[0,0 : 28,10] es {7,5}",
		"filter_gt temp[0,0 : 20,20] es {4,4} param 30",
		"sort temp[0,0 : 12,6] es {3,3}",
	}
	for _, qs := range queries {
		for _, sidr := range []bool{false, true} {
			for _, combine := range []bool{false, true} {
				for _, bound := range []int64{1, 7, 64} {
					q := mustParse(t, qs)
					ref := referenceResults(t, q, synthValue)
					cfg := buildJob(t, q, 3, sidr, combine)
					cfg.SortBufferRecords = bound
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("%s sidr=%v combine=%v bound=%d: %v", qs, sidr, combine, bound, err)
					}
					checkAgainstReference(t, res, ref)
				}
			}
		}
	}
}

// TestSortBufferAffectsUncombinedPairCount: with combining disabled, a
// tight buffer cannot fold pairs across segments, so the shuffle carries
// at least as many pairs as the unbounded run; with combining enabled
// the map-side merge restores the fully folded count.
func TestSortBufferAffectsUncombinedPairCount(t *testing.T) {
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	unbounded := buildJob(t, q, 2, true, true)
	r1, err := Run(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	bounded := buildJob(t, q, 2, true, true)
	bounded.SortBufferRecords = 5
	r2, err := Run(bounded)
	if err != nil {
		t.Fatal(err)
	}
	// Median is holistic: combining is skipped either way, so segments
	// seal partial per-key values that cannot be folded map-side.
	if r2.Counters.MapPairsOut < r1.Counters.MapPairsOut {
		t.Fatalf("bounded buffer folded more than unbounded: %d vs %d",
			r2.Counters.MapPairsOut, r1.Counters.MapPairsOut)
	}
	// A distributive operator with combining recovers the folded count.
	qa := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	a1, err := Run(buildJob(t, qa, 2, true, true))
	if err != nil {
		t.Fatal(err)
	}
	ab := buildJob(t, qa, 2, true, true)
	ab.SortBufferRecords = 5
	a2, err := Run(ab)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Counters.MapPairsOut != a1.Counters.MapPairsOut {
		t.Fatalf("map-side merge did not restore folded count: %d vs %d",
			a2.Counters.MapPairsOut, a1.Counters.MapPairsOut)
	}
}

// TestSortBufferWithSpillDir: segments, map-side merge and on-disk spill
// files compose.
func TestSortBufferWithSpillDir(t *testing.T) {
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 2, true, true)
	cfg.SortBufferRecords = 13
	cfg.SpillDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}
