package mapreduce

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// slowReader wraps FuncReader with a per-point delay so a run is slow
// enough to cancel mid-flight.
type slowReader struct {
	inner FuncReader
	delay time.Duration
}

func (r *slowReader) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	return r.inner.ReadSplit(slab, func(k coords.Coord, v float64) error {
		time.Sleep(r.delay)
		return emit(k, v)
	})
}

func cancelConfig(t *testing.T, barrier BarrierMode) Config {
	t.Helper()
	q, err := query.Parse("avg v[0,0 : 64,64] es {8,8}")
	if err != nil {
		t.Fatal(err)
	}
	splits, err := GenerateSplits(q.Input, 512, nil, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := partition.NewPartitionPlus(space, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(q, Slabs(splits), pp)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Query:   q,
		Splits:  splits,
		Reader:  &slowReader{inner: FuncReader{Fn: func(k coords.Coord) float64 { return float64(k[0]) }}, delay: 200 * time.Microsecond},
		Part:    pp,
		Graph:   g,
		Barrier: barrier,
	}
}

func TestRunCancelled(t *testing.T) {
	for _, barrier := range []BarrierMode{GlobalBarrier, DependencyBarrier} {
		t.Run(barrier.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			cfg := cancelConfig(t, barrier)
			ctx, cancel := context.WithCancel(context.Background())
			cfg.Ctx = ctx
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := Run(cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("cancellation took %v, want prompt abort", elapsed)
			}
			// All worker goroutines must have exited.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Fatalf("goroutines leaked: %d before, %d after", before, n)
			}
		})
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	cfg := cancelConfig(t, DependencyBarrier)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	if _, err := Run(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

func TestRunNilContextUnchanged(t *testing.T) {
	cfg := cancelConfig(t, DependencyBarrier)
	cfg.Reader = &FuncReader{Fn: func(k coords.Coord) float64 { return float64(k[0]) }}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("got %d outputs, want 4", len(res.Outputs))
	}
}
