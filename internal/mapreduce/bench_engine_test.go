package mapreduce

import (
	"testing"

	"sidr/internal/depgraph"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// benchConfig assembles a SIDR-engine job over the synthetic dataset for
// the end-to-end engine benchmark. Kept apart from buildJob so the
// benchmark does not depend on *testing.T helpers.
func benchConfig(b *testing.B, qs string, reducers int, sortBuf int64) Config {
	b.Helper()
	q, err := query.Parse(qs)
	if err != nil {
		b.Fatal(err)
	}
	splits, err := GenerateSplits(q.Input, q.Input.Size()/7+1, nil, "", 8)
	if err != nil {
		b.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.NewPartitionPlus(space, reducers, 0)
	if err != nil {
		b.Fatal(err)
	}
	g, err := depgraph.Build(q, Slabs(splits), part)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Query:             q,
		Splits:            splits,
		Reader:            &FuncReader{Fn: synthValue},
		Part:              part,
		Graph:             g,
		Barrier:           DependencyBarrier,
		ValidateCounts:    true,
		Combine:           true,
		SortBufferRecords: sortBuf,
	}
}

// BenchmarkEngine measures a full Run of the SIDR engine (dependency
// barrier, count validation, combining) over a 256×64 synthetic input —
// the satellite-2 allocation target: per-split accumulator maps and pair
// slices dominate the allocation profile.
func BenchmarkEngine(b *testing.B) {
	cases := []struct {
		name    string
		sortBuf int64
	}{
		{"unbounded", 0},
		{"sortbuf512", 512}, // forces multi-segment seal/merge per split
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := benchConfig(b, "avg temp[0,0 : 256,64] es {8,8}", 4, c.sortBuf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
