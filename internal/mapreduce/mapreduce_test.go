package mapreduce

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"sidr/internal/coords"
	"sidr/internal/depgraph"
	"sidr/internal/kv"
	"sidr/internal/ncfile"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
)

// synthValue is a deterministic pseudo-random dataset defined over
// coordinates.
func synthValue(k coords.Coord) float64 {
	var h uint64 = 1469598103934665603
	for _, x := range k {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return float64(h%1000)/10 - 50
}

// referenceResults computes the expected output of a query sequentially:
// for each K' key, fold every in-tile input point and apply the operator.
func referenceResults(t *testing.T, q *query.Query, value func(coords.Coord) float64) map[string][]float64 {
	t.Helper()
	op, err := q.Op()
	if err != nil {
		t.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	isFilter := op.Kind() == ops.Filter
	out := make(map[string][]float64)
	space.Each(func(kp coords.Coord) bool {
		tile, err := q.Extraction.Tile(kp)
		if err != nil {
			t.Fatal(err)
		}
		live, ok := tile.Intersect(q.Input)
		if !ok {
			return true
		}
		var v kv.Value
		live.Each(func(k coords.Coord) bool {
			v.Add(value(k), true)
			return true
		})
		vals := op.Apply(v, q.Params()...)
		if isFilter && len(vals) == 0 {
			return true // predicated operators omit survivor-free keys
		}
		out[kp.String()] = vals
		return true
	})
	return out
}

// checkAgainstReference verifies a job result against the sequential
// reference.
func checkAgainstReference(t *testing.T, res *Result, ref map[string][]float64) {
	t.Helper()
	got := make(map[string][]float64)
	for _, out := range res.Outputs {
		for i, k := range out.Keys {
			if _, dup := got[k.String()]; dup {
				t.Fatalf("key %v produced by two Reduce tasks", k)
			}
			got[k.String()] = out.Values[i]
		}
	}
	if len(got) != len(ref) {
		t.Fatalf("produced %d keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missing key %s", k)
		}
		if len(g) != len(want) {
			t.Fatalf("key %s: %d values, want %d", k, len(g), len(want))
		}
		for i := range want {
			if math.Abs(g[i]-want[i]) > 1e-9 {
				t.Fatalf("key %s value %d: got %v want %v", k, i, g[i], want[i])
			}
		}
	}
}

// buildJob assembles a config for a query over the synthetic dataset.
func buildJob(t *testing.T, q *query.Query, reducers int, sidr bool, combine bool) Config {
	t.Helper()
	splits, err := GenerateSplits(q.Input, q.Input.Size()/7+1, nil, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	space, err := q.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	var part partition.Partitioner
	if sidr {
		pp, err := partition.NewPartitionPlus(space, reducers, 0)
		if err != nil {
			t.Fatal(err)
		}
		part = pp
	} else {
		m, err := partition.NewModulo(reducers, partition.TileIndexEncoding{Space: space})
		if err != nil {
			t.Fatal(err)
		}
		part = m
	}
	g, err := depgraph.Build(q, Slabs(splits), part)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Query:   q,
		Splits:  splits,
		Reader:  &FuncReader{Fn: synthValue},
		Part:    part,
		Graph:   g,
		Combine: combine,
	}
	if sidr {
		cfg.Barrier = DependencyBarrier
		cfg.ValidateCounts = true
	}
	return cfg
}

func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConfigValidation(t *testing.T) {
	q := mustParse(t, "avg t[0 : 8] es {2}")
	if _, err := Run(Config{}); !errors.Is(err, ErrNoQuery) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(Config{Query: q}); !errors.Is(err, ErrNoReader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(Config{Query: q, Reader: &FuncReader{Fn: synthValue}}); !errors.Is(err, ErrNoPartitioner) {
		t.Fatalf("err = %v", err)
	}
	cfg := buildJob(t, q, 2, true, true)
	cfg.Graph = nil
	if _, err := Run(cfg); !errors.Is(err, ErrNeedsGraph) {
		t.Fatalf("err = %v", err)
	}
	cfg = buildJob(t, q, 2, true, true)
	cfg.MapOrder = []int{0}
	if _, err := Run(cfg); !errors.Is(err, ErrBadMapOrder) {
		t.Fatalf("err = %v", err)
	}
	cfg.MapOrder = []int{0, 0}
	if _, err := Run(cfg); !errors.Is(err, ErrBadMapOrder) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnginesAgreeWithReference(t *testing.T) {
	queries := []string{
		"avg temp[0,0 : 28,10] es {7,5}",
		"median temp[0,0 : 28,10] es {7,5}",
		"sum temp[3,2 : 21,8] es {3,4}",
		"max temp[0,0 : 30,9] es {4,3}", // partial trailing tiles
		"stddev temp[0,0 : 16,16] es {2,2}",
		"filter_gt temp[0,0 : 20,20] es {4,4} param 30",
		"sort temp[0,0 : 12,6] es {3,3}",
		"avg temp[0 : 64] es {2} stride {4}",
	}
	for _, qs := range queries {
		for _, sidr := range []bool{false, true} {
			for _, combine := range []bool{false, true} {
				q := mustParse(t, qs)
				ref := referenceResults(t, q, synthValue)
				cfg := buildJob(t, q, 3, sidr, combine)
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s sidr=%v combine=%v: %v", qs, sidr, combine, err)
				}
				checkAgainstReference(t, res, ref)
			}
		}
	}
}

func TestFileReaderEndToEnd(t *testing.T) {
	// Same query through a real ncfile container must match FuncReader.
	q := mustParse(t, "median temp[0,0 : 21,10] es {7,5}")
	path := filepath.Join(t.TempDir(), "data.ncf")
	h := &ncfile.Header{
		Dims: []ncfile.Dimension{{Name: "time", Length: 21}, {Name: "lat", Length: 10}},
		Vars: []ncfile.Variable{{Name: "temp", Type: ncfile.Float64, Dims: []string{"time", "lat"}}},
	}
	f, err := ncfile.Create(path, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(21, 10))
	vals := make([]float64, full.Size())
	i := 0
	full.Each(func(k coords.Coord) bool {
		vals[i] = synthValue(k)
		i++
		return true
	})
	if err := f.WriteSlab("temp", full, vals); err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 2, true, true)
	cfg.Reader = &FileReader{File: f, Var: "temp"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}

func TestDependencyBarrierEnablesEarlyReduces(t *testing.T) {
	// Structural proof of early results (Figure 4b): the Map task for
	// the LAST split refuses to proceed until Reduce task 0 has
	// committed its output. Under the dependency barrier this completes
	// (keyblock 0 does not depend on the last split); under a global
	// barrier it would deadlock.
	q := mustParse(t, "avg temp[0,0 : 64,8] es {4,4}")
	cfg := buildJob(t, q, 4, true, true)
	ref := referenceResults(t, q, synthValue)
	lastSplit := cfg.Splits[len(cfg.Splits)-1].Slab
	for _, dep := range cfg.Graph.KBToSplits[0] {
		if dep == len(cfg.Splits)-1 {
			t.Fatal("test premise broken: keyblock 0 depends on the last split")
		}
	}
	reduce0Done := make(chan struct{})
	cfg.OnEvent = func(e Event) {
		if e.Kind == ReduceEnd && e.Detail == 0 {
			close(reduce0Done)
		}
	}
	inner := &FuncReader{Fn: synthValue}
	cfg.Reader = readerFunc(func(slab coords.Slab, emit func(coords.Coord, float64) error) error {
		if slab.Corner.Equal(lastSplit.Corner) {
			select {
			case <-reduce0Done:
			case <-time.After(30 * time.Second):
				return errors.New("reduce 0 never finished early: dependency barrier broken")
			}
		}
		return inner.ReadSplit(slab, emit)
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
}

func TestGlobalBarrierBlocksAllReduces(t *testing.T) {
	// Under the global barrier no ReduceStart may precede the last
	// MapEnd (Figure 4a).
	q := mustParse(t, "avg temp[0,0 : 64,8] es {4,4}")
	cfg := buildJob(t, q, 4, false, true)
	cfg.Barrier = GlobalBarrier
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastMapEnd := -1
	for idx, e := range res.Events {
		if e.Kind == MapEnd {
			lastMapEnd = idx
		}
	}
	for idx, e := range res.Events {
		if e.Kind == ReduceStart && idx < lastMapEnd {
			t.Fatalf("ReduceStart (event %d) before last MapEnd (event %d) under global barrier", idx, lastMapEnd)
		}
	}
}

func TestShuffleConnectionCounts(t *testing.T) {
	// Table 3's effect at engine level: the global barrier contacts
	// M×R sources, the dependency barrier only Σ|I_ℓ|.
	q := mustParse(t, "avg temp[0,0 : 64,8] es {4,4}")
	sidrCfg := buildJob(t, q, 4, true, true)
	sidrRes, err := Run(sidrCfg)
	if err != nil {
		t.Fatal(err)
	}
	hCfg := buildJob(t, q, 4, false, true)
	hRes, err := Run(hCfg)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(len(hCfg.Splits))
	if hRes.Counters.Connections != m*4 {
		t.Fatalf("Hadoop connections = %d, want %d", hRes.Counters.Connections, m*4)
	}
	if sidrRes.Counters.Connections != sidrCfg.Graph.SIDRConnections() {
		t.Fatalf("SIDR connections = %d, want %d", sidrRes.Counters.Connections, sidrCfg.Graph.SIDRConnections())
	}
	if sidrRes.Counters.Connections >= hRes.Counters.Connections {
		t.Fatalf("SIDR connections %d not below Hadoop %d", sidrRes.Counters.Connections, hRes.Counters.Connections)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	// A filter pre-combiner discards non-matching samples map-side;
	// without it every source sample ships as its own pair.
	q := mustParse(t, "filter_gt temp[0,0 : 28,10] es {7,5} param 30")
	with, err := Run(buildJob(t, q, 2, true, true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(buildJob(t, q, 2, true, false))
	if err != nil {
		t.Fatal(err)
	}
	if with.Counters.MapPairsOut >= without.Counters.MapPairsOut {
		t.Fatalf("combiner did not reduce pairs: %d vs %d", with.Counters.MapPairsOut, without.Counters.MapPairsOut)
	}
	if with.Counters.MapRecordsIn != without.Counters.MapRecordsIn {
		t.Fatalf("record counts differ: %d vs %d", with.Counters.MapRecordsIn, without.Counters.MapRecordsIn)
	}
}

func TestCountAnnotationDetectsLoss(t *testing.T) {
	// Corrupt the dependency graph's expectation to prove the annotation
	// barrier actually validates.
	q := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	cfg := buildJob(t, q, 2, true, true)
	cfg.Graph.ExpectedCount[0]++ // expectation now impossible to meet
	_, err := Run(cfg)
	if !errors.Is(err, ErrCountMismatch) {
		t.Fatalf("err = %v, want count mismatch", err)
	}
}

func TestFailureRecoveryRefetch(t *testing.T) {
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 2, true, true)
	cfg.FailReduceOnce = map[int]bool{0: true, 1: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
	if res.Counters.RecomputedMaps != 0 {
		t.Fatalf("refetch recovery recomputed %d maps", res.Counters.RecomputedMaps)
	}
	recovered := 0
	for _, e := range res.Events {
		if e.Kind == ReduceRecovered {
			recovered++
		}
	}
	if recovered != 2 {
		t.Fatalf("recovered %d tasks, want 2", recovered)
	}
}

func TestFailureRecoveryRecompute(t *testing.T) {
	// §6 future work: re-execute only the Map subset a failed Reduce
	// task depends on.
	q := mustParse(t, "median temp[0,0 : 28,10] es {7,5}")
	ref := referenceResults(t, q, synthValue)
	cfg := buildJob(t, q, 2, true, true)
	cfg.FailReduceOnce = map[int]bool{1: true}
	cfg.RecoverByRecompute = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, res, ref)
	want := int64(len(cfg.Graph.KBToSplits[1]))
	if res.Counters.RecomputedMaps != want {
		t.Fatalf("recomputed %d maps, want %d (only I_ℓ)", res.Counters.RecomputedMaps, want)
	}
	if want >= int64(len(cfg.Splits)) {
		t.Fatalf("test not meaningful: keyblock depends on all %d splits", len(cfg.Splits))
	}
}

func TestMapOrderRespected(t *testing.T) {
	q := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	cfg := buildJob(t, q, 2, true, true)
	n := len(cfg.Splits)
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	cfg.MapOrder = order
	cfg.Workers = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var starts []int
	for _, e := range res.Events {
		if e.Kind == MapStart {
			starts = append(starts, e.Detail)
		}
	}
	for i := range starts {
		if starts[i] != order[i] {
			t.Fatalf("map order = %v, want %v", starts, order)
		}
	}
}

func TestReaderErrorPropagates(t *testing.T) {
	q := mustParse(t, "avg temp[0,0 : 28,10] es {7,5}")
	cfg := buildJob(t, q, 2, true, true)
	boom := errors.New("disk on fire")
	n := 0
	cfg.Reader = &FuncReader{Fn: func(k coords.Coord) float64 {
		n++
		return 0
	}}
	cfg.Reader = readerFunc(func(slab coords.Slab, emit func(coords.Coord, float64) error) error {
		return boom
	})
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want propagated reader error", err)
	}
}

// readerFunc adapts a function to RecordReader.
type readerFunc func(coords.Slab, func(coords.Coord, float64) error) error

func (f readerFunc) ReadSplit(s coords.Slab, emit func(coords.Coord, float64) error) error {
	return f(s, emit)
}

func TestGenerateSplits(t *testing.T) {
	input := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(100, 10))
	splits, err := GenerateSplits(input, 250, nil, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	// 250 points / 10 per row = 25 rows per split -> 4 splits.
	if len(splits) != 4 {
		t.Fatalf("%d splits", len(splits))
	}
	var total int64
	for i, s := range splits {
		if s.ID != i {
			t.Fatalf("split %d has ID %d", i, s.ID)
		}
		total += s.Slab.Size()
	}
	if total != input.Size() {
		t.Fatalf("splits cover %d points", total)
	}
	if _, err := GenerateSplits(input, 0, nil, "", 8); err == nil {
		t.Fatal("zero target accepted")
	}
	// Tiny targets clamp to one row.
	tiny, err := GenerateSplits(input, 1, nil, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) != 100 {
		t.Fatalf("%d splits for one-row target", len(tiny))
	}
}

func TestRandomizedEnginesAgree(t *testing.T) {
	// Randomised cross-check of Hadoop-mode and SIDR-mode execution.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		rows := int64(8 + r.Intn(40))
		cols := int64(4 + r.Intn(12))
		es0 := int64(1 + r.Intn(5))
		es1 := int64(1 + r.Intn(4))
		opNames := []string{"avg", "sum", "min", "max", "median", "count"}
		op := opNames[r.Intn(len(opNames))]
		q := &query.Query{
			Operator:   op,
			Variable:   "v",
			Input:      coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(rows, cols)),
			Extraction: coords.MustExtraction(coords.NewShape(es0, es1), nil),
		}
		if err := q.Validate(nil); err != nil {
			t.Fatal(err)
		}
		reducers := 1 + r.Intn(5)
		ref := referenceResults(t, q, synthValue)
		for _, sidr := range []bool{false, true} {
			cfg := buildJob(t, q, reducers, sidr, r.Intn(2) == 0)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("trial %d sidr=%v: %v", trial, sidr, err)
			}
			checkAgainstReference(t, res, ref)
		}
	}
}
