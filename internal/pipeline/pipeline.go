// Package pipeline implements the paper's second future-work item (§6):
// "integrating SIDR's ability to produce early, orderable, correct
// results for portions of the total output into pipe-lined
// computations."
//
// A pipeline chains structural queries: stage n+1's input keyspace is
// stage n's output keyspace K'^T. Because SIDR's partial results are
// correct — not estimates — a downstream Map task may start as soon as
// the upstream keyblocks covering its input split have committed,
// overlapping the stages instead of running them back to back. The
// gating reuses the same geometry machinery as SIDR's own barrier: an
// upstream keyblock feeds a downstream split iff their regions overlap.
package pipeline

import (
	"fmt"
	"sync"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/mapreduce"
	"sidr/internal/query"
)

// Stage is one structural query in a pipeline. The first stage reads the
// source dataset; each later stage reads the previous stage's output
// array. Aggregate operators contribute their single value per key;
// multi-valued outputs (sort, filters) contribute their first value and
// absent keys read as zero, so pipelines normally chain aggregates.
type Stage struct {
	Query    *query.Query
	Reducers int
	// MaxSkew bounds partition+ skew for this stage (0 = default).
	MaxSkew int64
}

// Result is a completed pipeline.
type Result struct {
	// Final is the last stage's result.
	Final *mapreduce.Result
	// StageResults holds every stage's result in order.
	StageResults []*mapreduce.Result
	// OverlappedStarts counts downstream Map tasks that started before
	// their upstream stage had fully completed — the pipelining win.
	OverlappedStarts int
}

// stageBuffer accumulates one stage's output as a virtual array and
// gates downstream reads on upstream keyblock commits.
type stageBuffer struct {
	space coords.Slab // the stage's output keyspace K'^T

	mu        sync.Mutex
	cond      *sync.Cond
	values    map[int64]float64 // linearised K' offset -> value
	committed []coords.Slab     // committed keyblock regions
	allDone   bool
	err       error
}

func newStageBuffer(space coords.Slab) *stageBuffer {
	b := &stageBuffer{space: space, values: make(map[int64]float64)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// commit publishes one upstream keyblock's output.
func (b *stageBuffer) commit(region coords.Slab, out mapreduce.ReduceOutput) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, k := range out.Keys {
		off, err := b.space.Linearize(k)
		if err != nil {
			return err
		}
		if len(out.Values[i]) > 0 {
			b.values[off] = out.Values[i][0]
		}
	}
	b.committed = append(b.committed, region)
	b.cond.Broadcast()
	return nil
}

// finish marks the upstream stage complete (or failed).
func (b *stageBuffer) finish(err error) {
	b.mu.Lock()
	b.allDone = true
	if err != nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// covered reports whether the slab lies entirely within committed
// regions. Caller holds b.mu. Regions are contiguous keyblocks, so a
// per-point containment check against the union suffices and slabs are
// small (one split's tile range).
func (b *stageBuffer) covered(slab coords.Slab) bool {
	ok := true
	slab.Each(func(k coords.Coord) bool {
		for _, r := range b.committed {
			if r.Contains(k) {
				return true
			}
		}
		ok = false
		return false
	})
	return ok
}

// waitFor blocks until the slab's data is available; returns false if
// the upstream stage finished without covering it (it then reads as
// written, with absent keys zero).
func (b *stageBuffer) waitFor(slab coords.Slab) (early bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.err != nil {
			return false, b.err
		}
		if b.covered(slab) {
			return !b.allDone, nil
		}
		if b.allDone {
			return false, nil
		}
		b.cond.Wait()
	}
}

// value reads one point; absent keys are zero. Used after waitFor.
func (b *stageBuffer) value(k coords.Coord) (float64, error) {
	off, err := b.space.Linearize(k)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.values[off], nil
}

// bufferReader adapts a stageBuffer to the engine's RecordReader,
// blocking each split read until its region has committed upstream.
type bufferReader struct {
	buf     *stageBuffer
	overlap *int
	mu      *sync.Mutex
}

// ReadSplit implements mapreduce.RecordReader.
func (r *bufferReader) ReadSplit(slab coords.Slab, emit func(coords.Coord, float64) error) error {
	early, err := r.buf.waitFor(slab)
	if err != nil {
		return err
	}
	if early {
		r.mu.Lock()
		*r.overlap++
		r.mu.Unlock()
	}
	var emitErr error
	slab.Each(func(k coords.Coord) bool {
		v, err := r.buf.value(k)
		if err != nil {
			emitErr = err
			return false
		}
		if err := emit(k, v); err != nil {
			emitErr = err
			return false
		}
		return true
	})
	return emitErr
}

// Options tunes pipeline execution.
type Options struct {
	// OnEvent, when set, receives every engine event of every stage with
	// its stage index — observability into the cross-stage overlap.
	OnEvent func(stage int, e mapreduce.Event)
}

// Run executes the pipeline over the source reader. Every stage runs
// with SIDR semantics; stages overlap whenever dependencies allow.
func Run(source mapreduce.RecordReader, stages []Stage) (*Result, error) {
	return RunWithOptions(source, stages, Options{})
}

// RunWithOptions is Run with execution options.
func RunWithOptions(source mapreduce.RecordReader, stages []Stage, opts Options) (*Result, error) {
	if source == nil {
		return nil, fmt.Errorf("pipeline: nil source reader")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	// Validate stage chaining: stage n+1's input must equal stage n's
	// output keyspace.
	plans := make([]*core.Plan, len(stages))
	var prevSpace coords.Slab
	for i, st := range stages {
		if st.Query == nil {
			return nil, fmt.Errorf("pipeline: stage %d has no query", i)
		}
		if st.Reducers <= 0 {
			return nil, fmt.Errorf("pipeline: stage %d needs reducers", i)
		}
		if i > 0 {
			want := coords.Slab{Corner: make(coords.Coord, prevSpace.Rank()), Shape: prevSpace.Shape}
			if !st.Query.Input.Equal(want) && !prevSpace.ContainsSlab(st.Query.Input) {
				return nil, fmt.Errorf("pipeline: stage %d input %v does not chain from stage %d output space %v",
					i, st.Query.Input, i-1, prevSpace)
			}
		}
		plan, err := core.NewPlan(st.Query, core.EngineSIDR, core.Options{
			Reducers:    st.Reducers,
			SplitPoints: st.Query.Input.Size()/8 + 1,
			MaxSkew:     st.MaxSkew,
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %d: %w", i, err)
		}
		plans[i] = plan
		prevSpace, err = st.Query.IntermediateSpace()
		if err != nil {
			return nil, err
		}
	}

	res := &Result{StageResults: make([]*mapreduce.Result, len(stages))}
	var overlapMu sync.Mutex

	// Launch all stages concurrently; stage n+1 blocks per split until
	// its upstream keyblocks commit.
	readers := make([]mapreduce.RecordReader, len(stages))
	buffers := make([]*stageBuffer, len(stages))
	readers[0] = source
	for i := 1; i < len(stages); i++ {
		space, err := stages[i-1].Query.IntermediateSpace()
		if err != nil {
			return nil, err
		}
		buffers[i] = newStageBuffer(space)
		readers[i] = &bufferReader{buf: buffers[i], overlap: &res.OverlappedStarts, mu: &overlapMu}
	}

	errs := make([]error, len(stages))
	var wg sync.WaitGroup
	for i := range stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan := plans[i]
			downstream := i+1 < len(stages)
			mrRes, err := plan.RunLocal(readers[i], func(cfg *mapreduce.Config) {
				if opts.OnEvent != nil {
					cfg.OnEvent = func(e mapreduce.Event) { opts.OnEvent(i, e) }
				}
				if !downstream {
					return
				}
				cfg.OnReduceOutput = func(out mapreduce.ReduceOutput) {
					region, ok := plan.KeyblockSlab(out.Keyblock)
					if !ok {
						// Non-rectangular or empty keyblock: synthesise a
						// covering region from the keys themselves.
						if len(out.Keys) == 0 {
							return
						}
						region = boundingSlab(out.Keys)
					}
					if err := buffers[i+1].commit(region, out); err != nil {
						buffers[i+1].finish(err)
					}
				}
			})
			errs[i] = err
			res.StageResults[i] = mrRes
			if downstream {
				buffers[i+1].finish(err)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %d: %w", i, err)
		}
	}
	res.Final = res.StageResults[len(stages)-1]
	return res, nil
}

// boundingSlab returns the minimal slab covering the keys.
func boundingSlab(keys []coords.Coord) coords.Slab {
	lo := keys[0].Clone()
	hi := keys[0].Clone()
	for _, k := range keys[1:] {
		for d := range k {
			if k[d] < lo[d] {
				lo[d] = k[d]
			}
			if k[d] > hi[d] {
				hi[d] = k[d]
			}
		}
	}
	shape := make(coords.Shape, len(lo))
	for d := range shape {
		shape[d] = hi[d] - lo[d] + 1
	}
	return coords.Slab{Corner: lo, Shape: shape}
}
