package pipeline

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"sidr/internal/coords"
	"sidr/internal/kv"
	"sidr/internal/mapreduce"
	"sidr/internal/query"
)

func synth(k coords.Coord) float64 {
	var h uint64 = 1469598103934665603
	for _, x := range k {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return float64(h%1000)/10 - 50
}

func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// twoStage builds: stage 1 = weekly/5-lat averages over {364, 10};
// stage 2 = averages of 4×2 blocks of stage 1's {52, 2} output.
func twoStage(t *testing.T) []Stage {
	t.Helper()
	return []Stage{
		{Query: mustParse(t, "avg temp[0,0 : 364,10] es {7,5}"), Reducers: 4},
		{Query: mustParse(t, "avg s1[0,0 : 52,2] es {4,2}"), Reducers: 2},
	}
}

// reference computes the two-stage composition sequentially.
func reference(t *testing.T) map[string]float64 {
	t.Helper()
	// Stage 1.
	s1 := map[string]float64{}
	s1space := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(52, 2))
	s1space.Each(func(kp coords.Coord) bool {
		var v kv.Value
		tile := coords.MustSlab(coords.NewCoord(kp[0]*7, kp[1]*5), coords.NewShape(7, 5))
		tile.Each(func(k coords.Coord) bool {
			v.Add(synth(k), false)
			return true
		})
		s1[kp.String()] = v.Mean()
		return true
	})
	// Stage 2.
	out := map[string]float64{}
	s2space := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(13, 1))
	s2space.Each(func(kp coords.Coord) bool {
		var v kv.Value
		tile := coords.MustSlab(coords.NewCoord(kp[0]*4, kp[1]*2), coords.NewShape(4, 2))
		tile.Each(func(k coords.Coord) bool {
			v.Add(s1[k.String()], false)
			return true
		})
		out[kp.String()] = v.Mean()
		return true
	})
	return out
}

func TestRunValidation(t *testing.T) {
	stages := twoStage(t)
	if _, err := Run(nil, stages); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := Run(&mapreduce.FuncReader{Fn: synth}, nil); err == nil {
		t.Fatal("no stages accepted")
	}
	bad := twoStage(t)
	bad[1].Reducers = 0
	if _, err := Run(&mapreduce.FuncReader{Fn: synth}, bad); err == nil {
		t.Fatal("zero reducers accepted")
	}
	mis := twoStage(t)
	mis[1].Query = mustParse(t, "avg s1[0,0 : 99,2] es {4,2}")
	if _, err := Run(&mapreduce.FuncReader{Fn: synth}, mis); err == nil {
		t.Fatal("mis-chained stages accepted")
	}
	noQ := twoStage(t)
	noQ[0].Query = nil
	if _, err := Run(&mapreduce.FuncReader{Fn: synth}, noQ); err == nil {
		t.Fatal("nil stage query accepted")
	}
}

func TestTwoStageMatchesSequentialComposition(t *testing.T) {
	res, err := Run(&mapreduce.FuncReader{Fn: synth}, twoStage(t))
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t)
	got := map[string]float64{}
	for _, out := range res.Final.Outputs {
		for i, k := range out.Keys {
			got[k.String()] = out.Values[i][0]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Fatalf("key %s: got %v want %v", k, got[k], w)
		}
	}
	if len(res.StageResults) != 2 || res.StageResults[0] == nil {
		t.Fatal("missing stage results")
	}
}

func TestSingleStagePipeline(t *testing.T) {
	res, err := Run(&mapreduce.FuncReader{Fn: synth}, twoStage(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final.Outputs) != 4 {
		t.Fatalf("%d outputs", len(res.Final.Outputs))
	}
	if res.OverlappedStarts != 0 {
		t.Fatal("single stage cannot overlap")
	}
}

func TestThreeStagePipeline(t *testing.T) {
	stages := append(twoStage(t), Stage{
		Query:    mustParse(t, "max s2[0,0 : 13,1] es {13,1}"),
		Reducers: 1,
	})
	res, err := Run(&mapreduce.FuncReader{Fn: synth}, stages)
	if err != nil {
		t.Fatal(err)
	}
	// The final stage reduces everything to a single max value; verify
	// against the reference's max.
	want := math.Inf(-1)
	for _, v := range reference(t) {
		if v > want {
			want = v
		}
	}
	out := res.Final.Outputs[0]
	if len(out.Keys) != 1 || math.Abs(out.Values[0][0]-want) > 1e-9 {
		t.Fatalf("final = %v, want %v", out.Values, want)
	}
}

func TestStagesActuallyOverlap(t *testing.T) {
	// Structural proof of pipelining: stage 1's LAST split refuses to
	// proceed until stage 2 has COMMITTED its first keyblock. Stage 2's
	// keyblock 0 depends only on the front of stage 1's output, so an
	// overlapping pipeline completes; stages run back to back would
	// deadlock (tripping the 30 s timeout error instead).
	//
	// Stage 2 uses extraction {1,2}, so its keyblock 0 covers stage 1's
	// output rows 0-25 — stage 1 keyblocks 0-1, fed by input rows < 182,
	// well clear of the gated final split.
	stages := []Stage{
		{Query: mustParse(t, "avg temp[0,0 : 364,10] es {7,5}"), Reducers: 4},
		{Query: mustParse(t, "avg s1[0,0 : 52,2] es {1,2}"), Reducers: 2},
	}
	inner := &mapreduce.FuncReader{Fn: synth}
	stage2Committed := make(chan struct{})
	var once sync.Once

	// Stage 1's input {364, 10} is split into 8 row bands; the last
	// band starts at row 364 - ceil(364/8) + 1 or later — gating on
	// corner row >= 310 isolates exactly the final split.
	gate := readerFunc(func(slab coords.Slab, emit func(coords.Coord, float64) error) error {
		if slab.Corner[0] >= 310 {
			select {
			case <-stage2Committed:
			case <-time.After(30 * time.Second):
				return errors.New("pipeline never overlapped stages")
			}
		}
		return inner.ReadSplit(slab, emit)
	})
	res, err := RunWithOptions(gate, stages, Options{
		OnEvent: func(stage int, e mapreduce.Event) {
			if stage == 1 && e.Kind == mapreduce.ReduceEnd {
				once.Do(func() { close(stage2Committed) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlappedStarts == 0 {
		t.Fatal("no downstream task started early despite forced overlap")
	}
	// Results must still be correct under the contrived interleaving:
	// each output key's value is the mean of its stage-1 {1,2} tile.
	s1 := stage1Reference(t)
	for _, out := range res.Final.Outputs {
		for i, k := range out.Keys {
			want := (s1[coords.NewCoord(k[0], 0).String()] + s1[coords.NewCoord(k[0], 1).String()]) / 2
			if math.Abs(out.Values[i][0]-want) > 1e-9 {
				t.Fatalf("key %v wrong under overlap", k)
			}
		}
	}
}

// stage1Reference computes stage 1's output directly.
func stage1Reference(t *testing.T) map[string]float64 {
	t.Helper()
	s1 := map[string]float64{}
	space := coords.MustSlab(coords.NewCoord(0, 0), coords.NewShape(52, 2))
	space.Each(func(kp coords.Coord) bool {
		var v kv.Value
		tile := coords.MustSlab(coords.NewCoord(kp[0]*7, kp[1]*5), coords.NewShape(7, 5))
		tile.Each(func(k coords.Coord) bool {
			v.Add(synth(k), false)
			return true
		})
		s1[kp.String()] = v.Mean()
		return true
	})
	return s1
}

type readerFunc func(coords.Slab, func(coords.Coord, float64) error) error

func (f readerFunc) ReadSplit(s coords.Slab, emit func(coords.Coord, float64) error) error {
	return f(s, emit)
}
