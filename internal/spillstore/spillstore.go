// Package spillstore implements the worker-side spill pack: one
// append-only file per (job, split, attempt) holding every keyblock
// spill that Map attempt produced, with an in-memory keyblock →
// (offset, length) directory for serving.
//
// The pack replaces the one-file-per-keyblock layout
// (job/split-attempt/kb-N.spill): a Map attempt with k keyblocks costs
// one create + one rename instead of k of each, and the shuffle serves
// a spill as a byte-range copy off the pack — the worker never
// re-decodes a pair it already encoded.
//
// On-disk layout:
//
//	root/<job>/<split>-<attempt>.pack
//
//	entry bytes (each a complete kv spill stream, v2 or v3)
//	directory:
//	  u32 nEntries
//	  nEntries × ( u32 keyblock | u64 offset | u64 length )
//	trailer (12 bytes):
//	  u32 dirLen   (bytes of the directory block above)
//	  u32 crc32c   (of the directory block)
//	  magic "SPKF"
//
// The directory lives at the tail so writes stay strictly append-only;
// a reader recovers it by reading the fixed trailer, then the dirLen
// bytes before it. Packs are written to a ".pack-*" temp and renamed on
// Commit, so a concurrent fetch never observes a partial pack; Abort
// removes the temp, and SweepTemps reclaims any orphans left by a
// crashed attempt.
package spillstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

var packMagic = [4]byte{'S', 'P', 'K', 'F'}

const (
	trailerLen  = 12
	dirEntryLen = 20
	// maxDirLen caps the directory size a reader will buffer; a pack
	// directory is ~20 bytes per keyblock, so even huge plans stay far
	// below this.
	maxDirLen = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the store.
var (
	// ErrNotFound reports that no pack (or no entry within the pack)
	// exists for the requested spill.
	ErrNotFound = errors.New("spillstore: spill not found")
	// ErrCorruptPack reports a pack whose trailer or directory fails
	// validation.
	ErrCorruptPack = errors.New("spillstore: corrupt pack")
)

type packKey struct {
	job            string
	split, attempt int
}

type dirEntry struct {
	off, length int64
}

// pack is one committed, immutable pack file held open for serving.
// Concurrent readers share the *os.File through io.SectionReader
// (ReadAt is safe for concurrent use).
type pack struct {
	f     *os.File
	dir   map[int]dirEntry
	size  int64
	mtime time.Time
}

// Store manages the pack files under one root directory.
type Store struct {
	root string

	mu     sync.Mutex
	packs  map[packKey]*pack
	closed bool
}

// New opens (creating if needed) a store rooted at dir. Existing pack
// files are loaded lazily on first Open.
func New(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("spillstore: empty root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &Store{root: root, packs: make(map[packKey]*pack)}, nil
}

func (s *Store) packPath(k packKey) string {
	return filepath.Join(s.root, k.job, fmt.Sprintf("%d-%d.pack", k.split, k.attempt))
}

// PackWriter accumulates one Map attempt's keyblock spills into a pack
// temp file. Exactly one of Commit or Abort must be called.
type PackWriter struct {
	s     *Store
	k     packKey
	f     *os.File
	bw    *bufio.Writer
	off   int64
	kbs   []int
	ents  []dirEntry
	done  bool
	mtime time.Time
}

// Begin starts writing the pack for one (job, split, attempt).
func (s *Store) Begin(job string, split, attempt int) (*PackWriter, error) {
	dir := filepath.Join(s.root, job)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, ".pack-*")
	if err != nil {
		return nil, err
	}
	return &PackWriter{
		s:  s,
		k:  packKey{job: job, split: split, attempt: attempt},
		f:  f,
		bw: bufio.NewWriterSize(f, 1<<16),
	}, nil
}

// countWriter tracks bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Append writes one keyblock's spill via fn and records it in the
// directory. Returns the entry's byte length.
func (pw *PackWriter) Append(keyblock int, fn func(io.Writer) error) (int64, error) {
	cw := &countWriter{w: pw.bw}
	if err := fn(cw); err != nil {
		return 0, err
	}
	pw.kbs = append(pw.kbs, keyblock)
	pw.ents = append(pw.ents, dirEntry{off: pw.off, length: cw.n})
	pw.off += cw.n
	return cw.n, nil
}

// Commit appends the directory and trailer, renames the temp into
// place, and registers the pack for serving. A pack committed for a
// (job, split, attempt) that already has one replaces it — duplicate
// Map attempts are idempotent re-writes.
func (pw *PackWriter) Commit() error {
	if pw.done {
		return fmt.Errorf("spillstore: pack writer already finished")
	}
	pw.done = true
	le := binary.LittleEndian
	dir := make([]byte, 4+dirEntryLen*len(pw.ents))
	le.PutUint32(dir[0:4], uint32(len(pw.ents)))
	for i, e := range pw.ents {
		p := dir[4+i*dirEntryLen:]
		le.PutUint32(p[0:4], uint32(pw.kbs[i]))
		le.PutUint64(p[4:12], uint64(e.off))
		le.PutUint64(p[12:20], uint64(e.length))
	}
	var trailer [trailerLen]byte
	le.PutUint32(trailer[0:4], uint32(len(dir)))
	le.PutUint32(trailer[4:8], crc32.Checksum(dir, castagnoli))
	copy(trailer[8:12], packMagic[:])
	if _, err := pw.bw.Write(dir); err != nil {
		return pw.fail(err)
	}
	if _, err := pw.bw.Write(trailer[:]); err != nil {
		return pw.fail(err)
	}
	if err := pw.bw.Flush(); err != nil {
		return pw.fail(err)
	}

	final := pw.s.packPath(pw.k)
	if err := os.Rename(pw.f.Name(), final); err != nil {
		return pw.fail(err)
	}
	m := make(map[int]dirEntry, len(pw.ents))
	for i, kb := range pw.kbs {
		m[kb] = pw.ents[i]
	}
	size := pw.off + int64(len(dir)) + trailerLen
	p := &pack{f: pw.f, dir: m, size: size, mtime: time.Now()}

	s := pw.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		p.f.Close()
		os.Remove(final)
		return fmt.Errorf("spillstore: store closed")
	}
	if old, ok := s.packs[pw.k]; ok {
		old.f.Close()
	}
	s.packs[pw.k] = p
	return nil
}

func (pw *PackWriter) fail(err error) error {
	pw.f.Close()
	os.Remove(pw.f.Name())
	return err
}

// Abort discards the pack temp file. Safe after Commit (no-op).
func (pw *PackWriter) Abort() {
	if pw.done {
		return
	}
	pw.done = true
	pw.f.Close()
	os.Remove(pw.f.Name())
}

// Open returns a reader over one keyblock's spill bytes plus the
// pack's modification time (for http.ServeContent). The returned
// SectionReader stays valid until the pack is released; concurrent
// Opens share the underlying file.
func (s *Store) Open(job string, split, attempt, keyblock int) (*io.SectionReader, time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, time.Time{}, fmt.Errorf("spillstore: store closed")
	}
	k := packKey{job: job, split: split, attempt: attempt}
	p, ok := s.packs[k]
	if !ok {
		var err error
		if p, err = loadPack(s.packPath(k)); err != nil {
			if os.IsNotExist(err) {
				return nil, time.Time{}, ErrNotFound
			}
			return nil, time.Time{}, err
		}
		s.packs[k] = p
	}
	e, ok := p.dir[keyblock]
	if !ok {
		return nil, time.Time{}, fmt.Errorf("%w: keyblock %d not in pack %s/%d-%d",
			ErrNotFound, keyblock, job, split, attempt)
	}
	return io.NewSectionReader(p.f, e.off, e.length), p.mtime, nil
}

// OpenPack returns a reader over one attempt's entire pack file (entry
// bytes + directory + trailer) plus its modification time — the unit of
// replication. The SectionReader stays valid until the pack is
// released.
func (s *Store) OpenPack(job string, split, attempt int) (*io.SectionReader, time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, time.Time{}, fmt.Errorf("spillstore: store closed")
	}
	k := packKey{job: job, split: split, attempt: attempt}
	p, ok := s.packs[k]
	if !ok {
		var err error
		if p, err = loadPack(s.packPath(k)); err != nil {
			if os.IsNotExist(err) {
				return nil, time.Time{}, ErrNotFound
			}
			return nil, time.Time{}, err
		}
		s.packs[k] = p
	}
	return io.NewSectionReader(p.f, 0, p.size), p.mtime, nil
}

// Install writes a pack streamed from another worker (a replica push)
// to a temp file, validates its trailer and directory, renames it into
// place and registers it for serving — the receive half of OpenPack.
// Returns the pack's byte size and the keyblocks it holds. A pack
// already installed for the (job, split, attempt) is replaced.
func (s *Store) Install(job string, split, attempt int, r io.Reader) (int64, []int, error) {
	dir := filepath.Join(s.root, job)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, nil, err
	}
	f, err := os.CreateTemp(dir, ".pack-*")
	if err != nil {
		return 0, nil, err
	}
	discard := func(err error) (int64, []int, error) {
		f.Close()
		os.Remove(f.Name())
		return 0, nil, err
	}
	n, err := io.Copy(f, r)
	if err != nil {
		return discard(err)
	}
	p, err := parsePack(f)
	if err != nil {
		return discard(err)
	}
	k := packKey{job: job, split: split, attempt: attempt}
	final := s.packPath(k)
	if err := os.Rename(f.Name(), final); err != nil {
		return discard(err)
	}
	kbs := make([]int, 0, len(p.dir))
	for kb := range p.dir {
		kbs = append(kbs, kb)
	}
	sort.Ints(kbs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		p.f.Close()
		os.Remove(final)
		return 0, nil, fmt.Errorf("spillstore: store closed")
	}
	if old, ok := s.packs[k]; ok {
		old.f.Close()
	}
	s.packs[k] = p
	return n, kbs, nil
}

// loadPack opens an existing pack file and rebuilds its directory from
// the trailer.
func loadPack(path string) (*pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := parsePack(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func parsePack(f *os.File) (*pack, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size < trailerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorruptPack, size)
	}
	var trailer [trailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, err
	}
	if [4]byte(trailer[8:12]) != packMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorruptPack)
	}
	le := binary.LittleEndian
	dirLen := int64(le.Uint32(trailer[0:4]))
	if dirLen < 4 || dirLen > maxDirLen || dirLen > size-trailerLen {
		return nil, fmt.Errorf("%w: implausible directory length %d", ErrCorruptPack, dirLen)
	}
	dir := make([]byte, dirLen)
	dataEnd := size - trailerLen - dirLen
	if _, err := f.ReadAt(dir, dataEnd); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(dir, castagnoli), le.Uint32(trailer[4:8]); got != want {
		return nil, fmt.Errorf("%w: directory crc %08x, trailer says %08x", ErrCorruptPack, got, want)
	}
	n := int(le.Uint32(dir[0:4]))
	if int64(4+n*dirEntryLen) != dirLen {
		return nil, fmt.Errorf("%w: %d entries need %d directory bytes, have %d",
			ErrCorruptPack, n, 4+n*dirEntryLen, dirLen)
	}
	m := make(map[int]dirEntry, n)
	for i := 0; i < n; i++ {
		p := dir[4+i*dirEntryLen:]
		kb := int(le.Uint32(p[0:4]))
		e := dirEntry{off: int64(le.Uint64(p[4:12])), length: int64(le.Uint64(p[12:20]))}
		if e.off < 0 || e.length < 0 || e.off+e.length > dataEnd {
			return nil, fmt.Errorf("%w: entry kb=%d [%d,+%d) outside data bytes [0,%d)",
				ErrCorruptPack, kb, e.off, e.length, dataEnd)
		}
		m[kb] = e
	}
	return &pack{f: f, dir: m, size: size, mtime: info.ModTime()}, nil
}

// ReleaseJob closes and forgets every pack of one job. It does not
// remove files — callers that own the root remove the job directory.
func (s *Store) ReleaseJob(job string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, p := range s.packs {
		if k.job == job {
			p.f.Close()
			delete(s.packs, k)
		}
	}
}

// ReleaseAttempt closes, forgets and deletes one attempt's pack (a
// speculation loser or superseded attempt being reclaimed).
func (s *Store) ReleaseAttempt(job string, split, attempt int) {
	k := packKey{job: job, split: split, attempt: attempt}
	s.mu.Lock()
	if p, ok := s.packs[k]; ok {
		p.f.Close()
		delete(s.packs, k)
	}
	s.mu.Unlock()
	os.Remove(s.packPath(k))
}

// SweepTemps removes orphaned ".pack-*" and ".spill-*" temp files under
// the root that are older than olderThan — the leavings of attempts
// that died mid-write. Returns how many were removed.
func (s *Store) SweepTemps(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		if !strings.HasPrefix(name, ".pack-") && !strings.HasPrefix(name, ".spill-") {
			return nil
		}
		info, err := d.Info()
		if err != nil || info.ModTime().After(cutoff) {
			return nil
		}
		if os.Remove(path) == nil {
			removed++
		}
		return nil
	})
	return removed
}

// Close closes every open pack handle. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for k, p := range s.packs {
		if err := p.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.packs, k)
	}
	s.closed = true
	return first
}
