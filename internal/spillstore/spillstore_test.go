package spillstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeEntry(t *testing.T, pw *PackWriter, kb int, payload string) {
	t.Helper()
	n, err := pw.Append(kb, func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	})
	if err != nil {
		t.Fatalf("Append(%d): %v", kb, err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("Append(%d) = %d bytes, want %d", kb, n, len(payload))
	}
}

func readAll(t *testing.T, s *Store, job string, split, attempt, kb int) string {
	t.Helper()
	sr, _, err := s.Open(job, split, attempt, kb)
	if err != nil {
		t.Fatalf("Open(%s/%d-%d kb=%d): %v", job, split, attempt, kb, err)
	}
	b, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPackRoundTrip: entries written through a PackWriter come back
// byte-identical through Open, from both the committing store and a
// fresh store that must recover the directory from the trailer.
func TestPackRoundTrip(t *testing.T) {
	root := t.TempDir()
	s, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pw, err := s.Begin("job1", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeEntry(t, pw, 0, "keyblock zero bytes")
	writeEntry(t, pw, 7, "")
	writeEntry(t, pw, 3, strings.Repeat("x", 70_000)) // spans bufio flushes
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}

	check := func(s *Store) {
		t.Helper()
		if got := readAll(t, s, "job1", 2, 0, 0); got != "keyblock zero bytes" {
			t.Fatalf("kb 0 = %q", got)
		}
		if got := readAll(t, s, "job1", 2, 0, 7); got != "" {
			t.Fatalf("kb 7 = %q, want empty", got)
		}
		if got := readAll(t, s, "job1", 2, 0, 3); len(got) != 70_000 {
			t.Fatalf("kb 3 length = %d", len(got))
		}
	}
	check(s)

	// A fresh store over the same root rebuilds the directory from disk.
	s2, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2)

	// No temp files remain.
	if n := countTemps(t, root); n != 0 {
		t.Fatalf("%d temp files left after commit", n)
	}
}

// TestOpenMissing pins ErrNotFound for absent packs and absent entries.
func TestOpenMissing(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Open("nope", 0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing pack err = %v, want ErrNotFound", err)
	}
	pw, _ := s.Begin("job", 0, 0)
	writeEntry(t, pw, 1, "one")
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open("job", 0, 0, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry err = %v, want ErrNotFound", err)
	}
}

// TestAbortRemovesTemp: an aborted attempt leaves nothing behind — the
// temp-file leak the per-keyblock layout had on WriteSpill failure.
func TestAbortRemovesTemp(t *testing.T) {
	root := t.TempDir()
	s, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pw, err := s.Begin("job", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeEntry(t, pw, 0, "doomed")
	boom := errors.New("boom")
	if _, err := pw.Append(1, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v", err)
	}
	pw.Abort()
	if n := countTemps(t, root); n != 0 {
		t.Fatalf("%d temp files left after abort", n)
	}
	if _, _, err := s.Open("job", 0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted pack served: err = %v", err)
	}
}

// TestSweepTemps reclaims orphans a crashed attempt would leave.
func TestSweepTemps(t *testing.T) {
	root := t.TempDir()
	s, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dir := filepath.Join(root, "job")
	os.MkdirAll(dir, 0o755)
	for _, name := range []string{".pack-orphan1", ".spill-orphan2"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A live pack and a non-temp file must survive.
	pw, _ := s.Begin("job", 1, 0)
	writeEntry(t, pw, 0, "live")
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := s.SweepTemps(0); n != 2 {
		t.Fatalf("swept %d temps, want 2", n)
	}
	if got := readAll(t, s, "job", 1, 0, 0); got != "live" {
		t.Fatalf("live pack damaged by sweep: %q", got)
	}
	// Fresh temps inside the age guard survive.
	if err := os.WriteFile(filepath.Join(dir, ".pack-fresh"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := s.SweepTemps(time.Hour); n != 0 {
		t.Fatalf("swept %d fresh temps, want 0", n)
	}
}

// TestReleaseAttempt removes exactly one attempt's pack.
func TestReleaseAttempt(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for attempt := 0; attempt < 2; attempt++ {
		pw, _ := s.Begin("job", 0, attempt)
		writeEntry(t, pw, 0, fmt.Sprintf("attempt %d", attempt))
		if err := pw.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.ReleaseAttempt("job", 0, 0)
	if _, _, err := s.Open("job", 0, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("released attempt still served: %v", err)
	}
	if got := readAll(t, s, "job", 0, 1, 0); got != "attempt 1" {
		t.Fatalf("surviving attempt = %q", got)
	}
}

// TestCorruptTrailerRejected: truncations and flipped directory bits
// must fail pack recovery, never misdirect a byte-range.
func TestCorruptTrailerRejected(t *testing.T) {
	root := t.TempDir()
	s, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := s.Begin("job", 0, 0)
	writeEntry(t, pw, 0, "payload bytes here")
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(root, "job", "0-0.pack")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(b []byte) error {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := New(root)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		_, _, err = s2.Open("job", 0, 0, 0)
		return err
	}
	// Directory byte flip → crc mismatch.
	bad := append([]byte(nil), good...)
	bad[len(bad)-trailerLen-3] ^= 0x01
	if err := reopen(bad); !errors.Is(err, ErrCorruptPack) {
		t.Fatalf("flipped directory accepted: %v", err)
	}
	// Truncated trailer.
	if err := reopen(good[:len(good)-5]); !errors.Is(err, ErrCorruptPack) {
		t.Fatalf("truncated trailer accepted: %v", err)
	}
	// Intact file still loads.
	if err := reopen(good); err != nil {
		t.Fatalf("intact pack rejected: %v", err)
	}
}

// TestConcurrentOpens: many readers share one pack file safely.
func TestConcurrentOpens(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pw, _ := s.Begin("job", 0, 0)
	for kb := 0; kb < 8; kb++ {
		writeEntry(t, pw, kb, strings.Repeat(fmt.Sprintf("<%d>", kb), 1000))
	}
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kb := g % 8
			want := strings.Repeat(fmt.Sprintf("<%d>", kb), 1000)
			for i := 0; i < 50; i++ {
				sr, _, err := s.Open("job", 0, 0, kb)
				if err != nil {
					t.Errorf("Open: %v", err)
					return
				}
				b, err := io.ReadAll(sr)
				if err != nil || string(b) != want {
					t.Errorf("kb %d read %d bytes, err=%v", kb, len(b), err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func countTemps(t *testing.T, root string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".pack-") {
			n++
		}
		return nil
	})
	return n
}

// TestInstallReplicatesPack: a pack streamed out of one store via
// OpenPack installs into a second store byte-identically (the replica
// path), a corrupted stream is rejected without registering anything,
// and Install replaces an existing pack atomically.
func TestInstallReplicatesPack(t *testing.T) {
	src, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	pw, err := src.Begin("job1", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	writeEntry(t, pw, 2, "alpha")
	writeEntry(t, pw, 5, strings.Repeat("b", 9_000))
	if err := pw.Commit(); err != nil {
		t.Fatal(err)
	}

	whole := func() []byte {
		sr, _, err := src.OpenPack("job1", 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	if len(whole) == 0 {
		t.Fatal("OpenPack returned an empty pack")
	}
	if _, _, err := src.OpenPack("job1", 4, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("OpenPack(missing) = %v, want ErrNotFound", err)
	}

	dstRoot := t.TempDir()
	dst, err := New(dstRoot)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	n, kbs, err := dst.Install("job1", 4, 1, strings.NewReader(string(whole)))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(whole)) {
		t.Fatalf("Install = %d bytes, want %d", n, len(whole))
	}
	if want := []int{2, 5}; !strings.HasPrefix(fmt.Sprint(kbs), fmt.Sprint(want)) {
		t.Fatalf("Install keyblocks = %v, want %v", kbs, want)
	}
	if got := readAll(t, dst, "job1", 4, 1, 2); got != "alpha" {
		t.Fatalf("installed kb 2 = %q", got)
	}
	if got := readAll(t, dst, "job1", 4, 1, 5); len(got) != 9_000 {
		t.Fatalf("installed kb 5 length = %d", len(got))
	}
	// A re-install over the same key replaces the pack, and the replica
	// survives a store restart (the file is durable, not cache state).
	if _, _, err := dst.Install("job1", 4, 1, strings.NewReader(string(whole))); err != nil {
		t.Fatalf("re-install: %v", err)
	}
	dst2, err := New(dstRoot)
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.Close()
	if got := readAll(t, dst2, "job1", 4, 1, 2); got != "alpha" {
		t.Fatalf("reloaded kb 2 = %q", got)
	}

	// Truncated and directory-corrupted streams must be rejected and
	// leave no pack (and no temp) behind. (Payload bytes are outside the
	// pack trailer's CRC — their integrity is the kv codec's job, which
	// the replica install path re-verifies per keyblock.)
	bad, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, _, err := bad.Install("job1", 4, 1, strings.NewReader(string(whole[:len(whole)-3]))); err == nil {
		t.Fatal("truncated pack installed without error")
	}
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-20] ^= 0x40 // inside the CRC-protected directory
	if _, _, err := bad.Install("job1", 4, 1, strings.NewReader(string(flipped))); err == nil {
		t.Fatal("directory-corrupted pack installed without error")
	}
	if _, _, err := bad.Open("job1", 4, 1, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected install left a readable pack: %v", err)
	}
	if n := countTemps(t, t.TempDir()); n != 0 {
		t.Fatalf("%d temps after rejected installs", n)
	}
}
