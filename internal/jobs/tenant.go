package jobs

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultTenantName is the tenant requests without an X-SIDR-Tenant
// header (or Request.Tenant field) are accounted to.
const DefaultTenantName = "default"

// TenantPolicy is one tenant's admission and scheduling contract.
type TenantPolicy struct {
	// MaxInFlight caps the tenant's non-terminal jobs (queued, running
	// and attached collapse subscribers). 0 means unlimited. Submissions
	// beyond the cap fail with ErrTenantQuota (HTTP 429,
	// detail:"tenant-quota").
	MaxInFlight int
	// Weight is the tenant's weighted-fair share of the shared task
	// executor: a weight-w tenant's jobs dispatch up to w consecutive
	// tasks per scheduling turn when contending (default 1).
	Weight int
}

// ParseTenantPolicy parses "MAXINFLIGHT" or "MAXINFLIGHT:WEIGHT",
// e.g. "8" or "8:4". 0 for either field keeps its default (unlimited /
// weight 1).
func ParseTenantPolicy(s string) (TenantPolicy, error) {
	var p TenantPolicy
	quota, weight, hasWeight := s, "", false
	if i := strings.IndexByte(s, ':'); i >= 0 {
		quota, weight, hasWeight = s[:i], s[i+1:], true
	}
	q, err := strconv.Atoi(strings.TrimSpace(quota))
	if err != nil || q < 0 {
		return p, fmt.Errorf("jobs: bad tenant max-in-flight %q", quota)
	}
	p.MaxInFlight = q
	if hasWeight {
		w, err := strconv.Atoi(strings.TrimSpace(weight))
		if err != nil || w < 0 {
			return p, fmt.Errorf("jobs: bad tenant weight %q", weight)
		}
		p.Weight = w
	}
	return p, nil
}

// ParseTenantSpec parses "NAME=MAXINFLIGHT[:WEIGHT]" (the sidrd -tenant
// flag grammar) into a name and policy.
func ParseTenantSpec(s string) (string, TenantPolicy, error) {
	name, rest, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", TenantPolicy{}, fmt.Errorf("jobs: tenant spec %q needs NAME=MAXINFLIGHT[:WEIGHT]", s)
	}
	p, err := ParseTenantPolicy(rest)
	if err != nil {
		return "", TenantPolicy{}, err
	}
	return name, p, nil
}

// tenantPolicy resolves the effective policy for a tenant name.
func (m *Manager) tenantPolicy(tenant string) TenantPolicy {
	if p, ok := m.cfg.Tenants[tenant]; ok {
		return p
	}
	return m.cfg.TenantDefault
}

// tenantWeight is the executor weight the tenant's jobs run with.
func (m *Manager) tenantWeight(tenant string) int {
	if w := m.tenantPolicy(tenant).Weight; w > 0 {
		return w
	}
	return 1
}
