package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sidr"
	"sidr/internal/metrics"
	"sidr/internal/wire"
)

// versionedProvider is a fakeProvider that also implements
// VersionProvider, unlocking the result-cache and collapse fast paths.
// bump simulates a re-registration; gate, when set, blocks every point
// read until released so runs stay in flight under test control.
type versionedProvider struct {
	mu    sync.Mutex
	gens  map[string]int
	shape []int64
	gate  chan struct{}
}

func newVersionedProvider(shape []int64) *versionedProvider {
	return &versionedProvider{gens: make(map[string]int), shape: shape}
}

func (p *versionedProvider) Acquire(name, variable string) (*sidr.Dataset, func(), error) {
	p.mu.Lock()
	gen := p.gens[name]
	gate := p.gate
	p.mu.Unlock()
	ds, err := sidr.Synthetic(p.shape, func(k []int64) float64 {
		if gate != nil {
			<-gate
		}
		// Contents depend on the generation, like a re-registered file.
		return float64(k[0] + int64(gen)*1000)
	})
	if err != nil {
		return nil, nil, err
	}
	return ds, func() { ds.Close() }, nil
}

func (p *versionedProvider) DatasetVersion(name, variable string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("%s#%d", name, p.gens[name]), true
}

func (p *versionedProvider) bump(name string) {
	p.mu.Lock()
	p.gens[name]++
	p.mu.Unlock()
}

// wireBytes renders a result exactly as the HTTP layer would: the final
// result document plus the replayed partial sequence.
func wireBytes(t *testing.T, res *sidr.Result) string {
	t.Helper()
	b, err := json.Marshal(wire.FromResult(res))
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for i := range res.Partials {
		p := wire.FromPartial(res.Partials[i])
		pb, err := json.Marshal(&p)
		if err != nil {
			t.Fatal(err)
		}
		out += "\n" + string(pb)
	}
	return out
}

func TestResultCacheServesByteIdenticalRepeat(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{Datasets: newVersionedProvider([]int64{32, 32}), Metrics: reg})

	j1, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j1.Wait(context.Background()); st != Done {
		t.Fatalf("first run state = %v", st)
	}

	// Textual variant of the same query: canonicalization must land it on
	// the same cache entry.
	j2, err := m.Submit(Request{Dataset: "d", Query: "avg   v[ 0,0 : 32,32 ]  es {4,4}", Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j2.Wait(context.Background()); st != Done {
		t.Fatalf("cached run state = %v", st)
	}
	if !j2.Snapshot().ResultHit {
		t.Fatal("second identical submission not marked result_cache_hit")
	}
	if got, want := wireBytes(t, j2.Result()), wireBytes(t, j1.Result()); got != want {
		t.Fatalf("cached wire bytes differ from original:\n%s\nvs\n%s", got, want)
	}
	if got := reg.Counter("sidrd_jobs_done_total").Value(); got != 1 {
		t.Fatalf("executions = %d, want 1 (repeat must not re-run)", got)
	}
	if got := reg.Counter("sidrd_resultcache_hits_total").Value(); got != 1 {
		t.Fatalf("result-cache hits = %d, want 1", got)
	}
	// The cached job replays the full partial sequence.
	if got, want := j2.Snapshot().Partials, j1.Snapshot().Partials; got != want {
		t.Fatalf("cached job replays %d partials, original had %d", got, want)
	}
}

func TestReregistrationInvalidatesResultCache(t *testing.T) {
	reg := metrics.New()
	p := newVersionedProvider([]int64{32, 32})
	m := newTestManager(t, Config{Datasets: p, Metrics: reg})

	run := func() *Job {
		t.Helper()
		j, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("state = %v", st)
		}
		return j
	}

	first := run()
	// Re-register: new generation, new contents, and the eager drop.
	p.bump("d")
	if n := m.InvalidateDataset("d"); n != 1 {
		t.Fatalf("InvalidateDataset dropped %d entries, want 1", n)
	}
	if got := reg.Gauge("sidrd_resultcache_entries").Value(); got != 0 {
		t.Fatalf("entries after invalidation = %d, want 0", got)
	}

	second := run()
	if second.Snapshot().ResultHit {
		t.Fatal("post-re-registration run served from cache")
	}
	if got, old := wireBytes(t, second.Result()), wireBytes(t, first.Result()); got == old {
		t.Fatal("re-registered dataset produced the old contents' result")
	}
	if got := reg.Counter("sidrd_jobs_done_total").Value(); got != 2 {
		t.Fatalf("executions = %d, want 2", got)
	}

	// A repeat against the new version is a fresh cache hit,
	// byte-identical to the fresh execution.
	third := run()
	if !third.Snapshot().ResultHit {
		t.Fatal("repeat against new version missed the cache")
	}
	if got, want := wireBytes(t, third.Result()), wireBytes(t, second.Result()); got != want {
		t.Fatal("cached bytes differ from the fresh execution's")
	}
}

func TestCollapseConcurrentIdenticalQueries(t *testing.T) {
	const n = 8
	reg := metrics.New()
	p := newVersionedProvider([]int64{32, 32})
	p.gate = make(chan struct{})
	m := newTestManager(t, Config{Datasets: p, Metrics: reg, MaxConcurrent: 4})

	jobsOut := make([]*Job, n)
	var wg sync.WaitGroup
	var submitMu sync.Mutex
	var submitErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
			if err != nil {
				submitMu.Lock()
				submitErr = err
				submitMu.Unlock()
				return
			}
			jobsOut[i] = j
		}(i)
	}
	wg.Wait()
	if submitErr != nil {
		t.Fatal(submitErr)
	}
	close(p.gate) // release the one real execution

	leaderBytes, leaderPartials := "", -1
	for i, j := range jobsOut {
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("job %d state = %v", i, st)
		}
		// Every subscriber sees the complete partial sequence and the same
		// wire bytes, whether it led, followed, or hit the cache.
		b := wireBytes(t, j.Result())
		np := j.Snapshot().Partials
		if leaderPartials == -1 {
			leaderBytes, leaderPartials = b, np
			continue
		}
		if b != leaderBytes {
			t.Fatalf("job %d wire bytes differ from leader's", i)
		}
		if np != leaderPartials {
			t.Fatalf("job %d saw %d partials, leader saw %d", i, np, leaderPartials)
		}
	}
	if leaderPartials == 0 {
		t.Fatal("no partials streamed at all")
	}
	if got := reg.Counter("sidrd_jobs_done_total").Value(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d identical submissions", got, n)
	}
	if got := reg.Counter("sidrd_jobs_submitted_total").Value(); got != n {
		t.Fatalf("submissions = %d, want %d", got, n)
	}
	// Everyone after the leader either collapsed onto it or (having
	// arrived after it finished) hit the result cache.
	collapsed := reg.Counter("sidrd_collapse_followers_total").Value()
	hits := reg.Counter("sidrd_resultcache_hits_total").Value()
	if collapsed+hits != n-1 {
		t.Fatalf("collapsed %d + cache hits %d != %d", collapsed, hits, n-1)
	}
}

func TestCollapsedFollowerCancelLeavesLeaderRunning(t *testing.T) {
	reg := metrics.New()
	p := newVersionedProvider([]int64{32, 32})
	p.gate = make(chan struct{})
	m := newTestManager(t, Config{Datasets: p, Metrics: reg})

	leader, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the leader actually runs so the next submit collapses.
	deadline := time.Now().Add(5 * time.Second)
	for leader.State() != Running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	follower, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := follower.Snapshot().CollapsedInto; got != leader.ID {
		t.Fatalf("follower collapsed into %q, want %q", got, leader.ID)
	}

	follower.Cancel()
	if st, _ := follower.Wait(context.Background()); st != Cancelled {
		t.Fatalf("cancelled follower state = %v", st)
	}
	if st := leader.State(); st.Terminal() {
		t.Fatalf("cancelling a follower terminalised the leader (state %v)", st)
	}

	close(p.gate)
	if st, _ := leader.Wait(context.Background()); st != Done {
		t.Fatalf("leader state = %v, want Done despite follower cancel", st)
	}
	if leader.Result() == nil {
		t.Fatal("leader lost its result")
	}
}

func TestTenantQuotaRejects(t *testing.T) {
	reg := metrics.New()
	p := newVersionedProvider([]int64{32, 32})
	p.gate = make(chan struct{})
	m := newTestManager(t, Config{
		Datasets: p,
		Metrics:  reg,
		Tenants:  map[string]TenantPolicy{"acme": {MaxInFlight: 1, Weight: 2}},
	})

	j1, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	// A different query (no collapse) from the same tenant breaches the
	// quota of 1.
	_, err = m.Submit(Request{Dataset: "d", Query: "sum v[0,0 : 32,32] es {4,4}", Reducers: 4, Tenant: "acme"})
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit err = %v, want ErrTenantQuota", err)
	}
	if got := reg.Counter("sidrd_tenant_rejected_total").Value(); got != 1 {
		t.Fatalf("tenant rejections = %d, want 1", got)
	}
	// Other tenants are unaffected (default policy: unlimited).
	if _, err := m.Submit(Request{Dataset: "d", Query: "sum v[0,0 : 32,32] es {4,4}", Reducers: 4}); err != nil {
		t.Fatalf("default-tenant submit rejected: %v", err)
	}

	close(p.gate)
	if st, _ := j1.Wait(context.Background()); st != Done {
		t.Fatalf("state = %v", st)
	}
	// The slot frees on completion; the tenant can submit again.
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("manager never went idle")
	}
	if _, err := m.Submit(Request{Dataset: "d", Query: "sum v[0,0 : 32,32] es {4,4}", Reducers: 4, Tenant: "acme"}); err != nil {
		t.Fatalf("post-completion submit rejected: %v", err)
	}
}
