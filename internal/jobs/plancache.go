package jobs

import (
	"container/list"
	"fmt"
	"sync"

	"sidr"
	"sidr/internal/metrics"
)

// planCache is an LRU of prepared execution plans. SIDR routing is a
// pure function of (dataset shape, query, engine, reducers, split
// granularity, skew bound) — §3's precomputability — so identical
// requests, even against different datasets of the same shape, reuse
// the splits, partition+ keyblocks and dependency graph instead of
// re-deriving them.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	// Canonical instrument names. The manager additionally keeps the
	// legacy sidrd_plan_cache_* spellings for dashboards that predate
	// the serving tier; these are the documented ones.
	hits, misses, evictions *metrics.Counter
}

type planEntry struct {
	key  string
	prep *sidr.Prepared
}

func newPlanCache(capacity int, reg *metrics.Registry) *planCache {
	return &planCache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter("sidrd_plancache_hits_total"),
		misses:    reg.Counter("sidrd_plancache_misses_total"),
		evictions: reg.Counter("sidrd_plancache_evictions_total"),
	}
}

// planKey canonicalises the plan-determining inputs. An index-pruned
// plan is additionally a function of the index contents, so the index
// fingerprint is mixed in: without it, re-registering a dataset with
// different data (same shape, same query) would serve a stale pruned
// split set from the cache.
func planKey(shape []int64, query string, engine sidr.Engine, opts sidr.RunOptions) string {
	var fp uint32
	if opts.Index != nil {
		fp = opts.Index.Fingerprint()
	}
	return fmt.Sprintf("%v|%s|%d|%d|%d|%d|%08x", shape, query, engine, opts.Reducers, opts.SplitPoints, opts.MaxSkew, fp)
}

// get returns the cached plan and bumps its recency.
func (c *planCache) get(key string) (*sidr.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*planEntry).prep, true
}

// put inserts a plan, evicting the least recently used entry when over
// capacity. It reports how many entries were evicted.
func (c *planCache) put(key string, prep *sidr.Prepared) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planEntry).prep = prep
		return 0
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, prep: prep})
	evicted := 0
	for c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planEntry).key)
		c.evictions.Inc()
		evicted++
	}
	return evicted
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
