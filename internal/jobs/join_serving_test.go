package jobs

import (
	"context"
	"strings"
	"testing"

	"sidr/internal/metrics"
)

const testJoinQuery = "join jsum a[0,0 : 32,32] es {8,8} with b[0,0 : 32,32] es {8,8}"

// TestJoinSubmitValidation checks the two-dataset contract at the door:
// a join query must carry dataset2, and dataset2 means nothing without
// a join query.
func TestJoinSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newVersionedProvider([]int64{32, 32})})

	if _, err := m.Submit(Request{Dataset: "a", Query: testJoinQuery}); err == nil ||
		!strings.Contains(err.Error(), "dataset2") {
		t.Fatalf("join without dataset2 accepted (err = %v)", err)
	}
	if _, err := m.Submit(Request{Dataset: "a", Dataset2: "b", Query: testQuery}); err == nil ||
		!strings.Contains(err.Error(), "dataset2") {
		t.Fatalf("dataset2 on a single-input query accepted (err = %v)", err)
	}
}

// TestJoinResultCacheKeyedOnBothDatasets is the regression test for the
// fast-path keying bug: the result-cache / collapse key must pin the
// version of EVERY input dataset. Re-registering the side-B dataset
// must miss the cache (previously only side A's version was keyed, so
// the stale join result would have been served), and invalidating
// either side must drop the join's entries.
func TestJoinResultCacheKeyedOnBothDatasets(t *testing.T) {
	reg := metrics.New()
	p := newVersionedProvider([]int64{32, 32})
	m := newTestManager(t, Config{Datasets: p, Metrics: reg})

	run := func() *Job {
		t.Helper()
		j, err := m.Submit(Request{Dataset: "a", Dataset2: "b", Query: testJoinQuery, Reducers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("state = %v (err %v)", st, j.Err())
		}
		return j
	}

	first := run()
	if first.Snapshot().Dataset2 != "b" {
		t.Fatalf("snapshot dataset2 = %q, want \"b\"", first.Snapshot().Dataset2)
	}
	if first.Snapshot().Skew == nil {
		t.Fatal("finished join job has no skew summary in its snapshot")
	}
	if kb := first.Snapshot().Skew.Keyblocks; kb <= 0 {
		t.Fatalf("skew summary covers %d keyblocks", kb)
	}

	// Identical repeat: both versions unchanged, so the cache serves it.
	repeat := run()
	if !repeat.Snapshot().ResultHit {
		t.Fatal("identical join repeat missed the result cache")
	}

	// Re-register ONLY the side-B dataset. The key must change: a cached
	// hit here would serve a result computed from b's old contents.
	p.bump("b")
	fresh := run()
	if fresh.Snapshot().ResultHit {
		t.Fatal("join served from cache after side-B re-registration")
	}
	if got, old := wireBytes(t, fresh.Result()), wireBytes(t, first.Result()); got == old {
		t.Fatal("re-registered side-B produced the old contents' result")
	}
	if got := reg.Counter("sidrd_jobs_done_total").Value(); got != 2 {
		t.Fatalf("executions = %d, want 2 (repeat cached, re-registration re-ran)", got)
	}

	// Invalidating the secondary dataset drops every join entry that read
	// it — both the old-version and new-version results.
	if n := m.InvalidateDataset("b"); n != 2 {
		t.Fatalf("InvalidateDataset(b) dropped %d entries, want 2", n)
	}
	if got := reg.Gauge("sidrd_resultcache_entries").Value(); got != 0 {
		t.Fatalf("entries after invalidation = %d, want 0", got)
	}
	after := run()
	if after.Snapshot().ResultHit {
		t.Fatal("join served from cache after side-B invalidation")
	}
}

// TestJoinSkewMetricsPublished checks the per-job skew gauges: after a
// join finishes, the last-job skew gauges reflect its plan's keyblock
// loads.
func TestJoinSkewMetricsPublished(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{Datasets: newVersionedProvider([]int64{32, 32}), Metrics: reg})

	j, err := m.Submit(Request{Dataset: "a", Dataset2: "b", Query: testJoinQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j.Wait(context.Background()); st != Done {
		t.Fatalf("state = %v (err %v)", st, j.Err())
	}
	if got := reg.Gauge("sidrd_job_skew_keyblocks").Value(); got <= 0 {
		t.Fatalf("sidrd_job_skew_keyblocks = %d, want > 0", got)
	}
	// A perfectly balanced dense join still has max/mean == 1.0 == 1000
	// milli-units; anything at 0 means the gauge was never published.
	if got := reg.Gauge("sidrd_job_skew_max_over_mean_milli").Value(); got < 1000 {
		t.Fatalf("sidrd_job_skew_max_over_mean_milli = %d, want >= 1000", got)
	}
}
