package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sidr"
	"sidr/internal/metrics"
)

// fakeProvider serves synthetic datasets by name; a per-point delay and
// an optional gate make runs slow or controllable.
type fakeProvider struct {
	mu       sync.Mutex
	acquired map[string]int
	shape    []int64
	delay    time.Duration
}

func newFakeProvider(shape []int64, delay time.Duration) *fakeProvider {
	return &fakeProvider{acquired: make(map[string]int), shape: shape, delay: delay}
}

func (p *fakeProvider) Acquire(name, variable string) (*sidr.Dataset, func(), error) {
	if name == "missing" {
		return nil, nil, fmt.Errorf("no dataset %q", name)
	}
	p.mu.Lock()
	p.acquired[name]++
	p.mu.Unlock()
	ds, err := sidr.Synthetic(p.shape, func(k []int64) float64 {
		if p.delay > 0 {
			time.Sleep(p.delay)
		}
		return float64(k[0])
	})
	if err != nil {
		return nil, nil, err
	}
	return ds, func() { ds.Close() }, nil
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

const testQuery = "avg v[0,0 : 32,32] es {4,4}"

func TestJobLifecycleDone(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0), Metrics: reg})
	j, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := j.Wait(context.Background())
	if err != nil || st != Done {
		t.Fatalf("Wait = %v, %v; want Done", st, err)
	}
	res := j.Result()
	if res == nil || len(res.Keys) != 64 {
		t.Fatalf("result keys = %v, want 64 rows", res)
	}
	snap := j.Snapshot()
	if snap.State != "done" || snap.Partials != 4 {
		t.Fatalf("snapshot = %+v, want done with 4 partials", snap)
	}
	if got := reg.Counter("sidrd_jobs_done_total").Value(); got != 1 {
		t.Fatalf("done counter = %d, want 1", got)
	}
}

func TestJobFailure(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	j, err := m.Submit(Request{Dataset: "missing", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := j.Wait(context.Background())
	if st != Failed {
		t.Fatalf("state = %v, want Failed", st)
	}
	if j.Err() == nil {
		t.Fatal("failed job has nil error")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	if _, err := m.Submit(Request{Dataset: "d", Query: "not a query"}); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := m.Submit(Request{Dataset: "d", Query: testQuery, Engine: "spark"}); err == nil {
		t.Error("bad engine accepted")
	}
	if _, err := m.Submit(Request{Query: testQuery}); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestAdmissionControl(t *testing.T) {
	// One worker, queue depth 2, slow jobs: the 4th+ submission must be
	// rejected while the first is still running.
	reg := metrics.New()
	m := newTestManager(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    2,
		Datasets:      newFakeProvider([]int64{16, 16}, 50*time.Microsecond),
		Metrics:       reg,
	})
	var jobs []*Job
	var rejected int
	for i := 0; i < 8; i++ {
		j, err := m.Submit(Request{Dataset: "d", Query: "avg v[0,0 : 16,16] es {4,4}", Workers: 1})
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatal("no submission was rejected")
	}
	if got := reg.Counter("sidrd_jobs_rejected_total").Value(); got != int64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", got, rejected)
	}
	for _, j := range jobs {
		if st, err := j.Wait(context.Background()); err != nil || st != Done {
			t.Fatalf("job %s = %v, %v", j.ID, st, err)
		}
	}
}

func TestCancelRunning(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{256, 256}, 100*time.Microsecond), Metrics: reg})
	j, err := m.Submit(Request{Dataset: "d", Query: "avg v[0,0 : 256,256] es {4,4}", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for it to start running, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for j.State() == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	j.Cancel()
	st, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st != Cancelled {
		t.Fatalf("state = %v, want Cancelled", st)
	}
	if !errors.Is(j.Err(), context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", j.Err())
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
	if got := reg.Counter("sidrd_jobs_cancelled_total").Value(); got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

func TestCancelQueued(t *testing.T) {
	m := newTestManager(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		Datasets:      newFakeProvider([]int64{16, 16}, 100*time.Microsecond),
	})
	blocker, err := m.Submit(Request{Dataset: "d", Query: "avg v[0,0 : 16,16] es {4,4}", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{Dataset: "d", Query: "avg v[0,0 : 16,16] es {4,4}", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != Cancelled {
		t.Fatalf("queued job state = %v, want Cancelled immediately", st)
	}
	if st, _ := blocker.Wait(context.Background()); st != Done {
		t.Fatalf("blocker = %v, want Done", st)
	}
}

func TestPlanCacheHitAndEviction(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{PlanCacheSize: 2, Datasets: newFakeProvider([]int64{32, 32}, 0), Metrics: reg})
	run := func(query string) {
		t.Helper()
		j, err := m.Submit(Request{Dataset: "d", Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("job = %v (%v)", st, j.Err())
		}
	}
	q1 := "avg v[0,0 : 32,32] es {4,4}"
	q2 := "max v[0,0 : 32,32] es {8,8}"
	q3 := "min v[0,0 : 32,32] es {2,2}"
	run(q1) // miss
	run(q1) // hit
	run(q2) // miss
	run(q3) // miss → evicts q1
	run(q1) // miss again
	hits := reg.Counter("sidrd_plan_cache_hits_total").Value()
	misses := reg.Counter("sidrd_plan_cache_misses_total").Value()
	evicted := reg.Counter("sidrd_plan_cache_evictions_total").Value()
	if hits != 1 || misses != 4 || evicted < 1 {
		t.Fatalf("hits=%d misses=%d evicted=%d; want 1/4/≥1", hits, misses, evicted)
	}
	if got := reg.Gauge("sidrd_plan_cache_size").Value(); got != 2 {
		t.Fatalf("plan cache size = %d, want 2", got)
	}
}

func TestPlanCacheHitMatchesMissResult(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	var results []*sidr.Result
	for i := 0; i < 2; i++ {
		j, err := m.Submit(Request{Dataset: "d", Query: testQuery})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("job = %v (%v)", st, j.Err())
		}
		results = append(results, j.Result())
	}
	if len(results[0].Keys) != len(results[1].Keys) {
		t.Fatalf("row counts differ: %d vs %d", len(results[0].Keys), len(results[1].Keys))
	}
	for i := range results[0].Keys {
		if fmt.Sprint(results[0].Keys[i]) != fmt.Sprint(results[1].Keys[i]) ||
			fmt.Sprint(results[0].Values[i]) != fmt.Sprint(results[1].Values[i]) {
			t.Fatalf("row %d differs between cached and uncached run", i)
		}
	}
}

func TestStreamReplaysAndFollows(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	j, err := m.Submit(Request{Dataset: "d", Query: testQuery, Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j.Wait(context.Background()); st != Done {
		t.Fatalf("job = %v", st)
	}
	// Subscribe after completion: the full partial log replays.
	var got int32
	st, err := j.Stream(context.Background(), func(pr sidr.PartialResult) error {
		atomic.AddInt32(&got, 1)
		return nil
	})
	if err != nil || st != Done {
		t.Fatalf("Stream = %v, %v", st, err)
	}
	if got != 4 {
		t.Fatalf("replayed %d partials, want 4", got)
	}
}

func TestStreamFailedJobDrainsCleanly(t *testing.T) {
	// Stream's error reports transport problems only: draining a failed
	// job returns a nil error so callers can emit a terminal event; the
	// job's own error stays on Err.
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	j, err := m.Submit(Request{Dataset: "missing", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j.Wait(context.Background()); st != Failed {
		t.Fatalf("state = %v, want Failed", st)
	}
	st, err := j.Stream(context.Background(), func(pr sidr.PartialResult) error { return nil })
	if st != Failed || err != nil {
		t.Fatalf("Stream = %v, %v; want Failed, nil", st, err)
	}
	if j.Err() == nil {
		t.Fatal("failed job lost its error")
	}
}

func TestStreamAbortsOnContextDone(t *testing.T) {
	m := newTestManager(t, Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	j, err := m.Submit(Request{Dataset: "d", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := j.Wait(context.Background()); st != Done {
		t.Fatalf("job = %v", st)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Stream(ctx, func(pr sidr.PartialResult) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream with done ctx = %v, want context.Canceled", err)
	}
}

func TestJobTableRetention(t *testing.T) {
	reg := metrics.New()
	m := newTestManager(t, Config{RetainJobs: 2, Datasets: newFakeProvider([]int64{16, 16}, 0), Metrics: reg})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Submit(Request{Dataset: "d", Query: "avg v[0,0 : 16,16] es {4,4}"})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("job %d = %v (%v)", i, st, j.Err())
		}
		ids = append(ids, j.ID)
	}
	// The worker prunes right after finishing each job; wait for the
	// table to settle at the cap.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(m.Jobs()) > 2 {
		time.Sleep(2 * time.Millisecond)
	}
	snaps := m.Jobs()
	if len(snaps) != 2 {
		t.Fatalf("job table holds %d jobs, want 2", len(snaps))
	}
	if snaps[0].ID != ids[3] || snaps[1].ID != ids[4] {
		t.Fatalf("retained %s, %s; want the newest %s, %s", snaps[0].ID, snaps[1].ID, ids[3], ids[4])
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job still resolvable: %v", err)
	}
	if got := reg.Counter("sidrd_jobs_evicted_total").Value(); got != 3 {
		t.Fatalf("evicted counter = %d, want 3", got)
	}
}

func TestSharedExecutorBoundsConcurrency(t *testing.T) {
	// Four jobs in flight at once, every Map/Reduce task of all of them
	// on one four-worker executor: task concurrency must never exceed
	// the pool size, however many jobs run.
	m := newTestManager(t, Config{
		MaxConcurrent: 4,
		ExecWorkers:   4,
		Datasets:      newFakeProvider([]int64{32, 32}, 5*time.Microsecond),
	})
	var js []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(Request{Dataset: fmt.Sprintf("d%d", i), Query: "avg v[0,0 : 32,32] es {8,8}", Reducers: 4})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		if st, _ := j.Wait(context.Background()); st != Done {
			t.Fatalf("job %s = %v (%v)", j.ID, st, j.Err())
		}
	}
	st := m.ExecStats()
	if st.Workers != 4 {
		t.Fatalf("executor workers = %d, want 4", st.Workers)
	}
	if st.PeakRunning > 4 {
		t.Fatalf("peak task concurrency %d exceeded the 4-worker pool", st.PeakRunning)
	}
	if st.Dispatched == 0 {
		t.Fatal("shared executor dispatched no tasks")
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("executor not quiescent after jobs drained: %+v", st)
	}
}

func TestShutdownRejectsAndDrains(t *testing.T) {
	m, err := NewManager(Config{Datasets: newFakeProvider([]int64{32, 32}, 0)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Request{Dataset: "d", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if st := j.State(); !st.Terminal() {
		t.Fatalf("job not terminal after shutdown: %v", st)
	}
	if _, err := m.Submit(Request{Dataset: "d", Query: testQuery}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
}
