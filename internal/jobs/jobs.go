// Package jobs runs queries as managed jobs on a bounded worker pool:
// admission control at submit, a lifecycle FSM
// (queued→running→done/failed/cancelled) with per-job context
// cancellation, an LRU plan cache exploiting SIDR's precomputable
// routing, and a partial-result log that late subscribers replay — the
// daemon-side substrate for streaming SIDR's early correct results.
package jobs

import (
	"context"
	"sync"
	"time"

	"sidr"
)

// State is a job's lifecycle position.
type State int

const (
	// Queued means admitted but not yet claimed by a worker.
	Queued State = iota
	// Running means a worker is executing the query.
	Running
	// Done means the query completed and Result is set.
	Done
	// Failed means the query errored; Err is set.
	Failed
	// Cancelled means the job was cancelled while queued or running.
	Cancelled
)

// String names the state as it appears on the wire.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Request describes one query submission.
type Request struct {
	// Dataset names a dataset in the manager's provider.
	Dataset string `json:"dataset"`
	// Dataset2 names the side-B dataset of a structural join query;
	// required for (and only valid with) the `join ...` grammar. Both
	// datasets' versions enter the result-cache and collapse keys.
	Dataset2 string `json:"dataset2,omitempty"`
	// Query is the structural query text.
	Query string `json:"query"`
	// Engine is "hadoop", "scihadoop" or "sidr" (default).
	Engine string `json:"engine,omitempty"`
	// Reducers is the Reduce task count (default 4).
	Reducers int `json:"reducers,omitempty"`
	// Workers bounds Map/Reduce concurrency (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// SplitPoints is the input-split granularity in points (default:
	// input split into ~8 pieces).
	SplitPoints int64 `json:"split_points,omitempty"`
	// MaxSkew bounds partition+ keyblock skew (SIDR engine only).
	MaxSkew int64 `json:"max_skew,omitempty"`
	// Cluster routes the job through the distributed runtime: Map tasks
	// dispatch to registered sidr-worker processes and Reduce tasks fetch
	// their I_ℓ spills over the networked shuffle. Requires the manager
	// to be configured with a coordinator.
	Cluster bool `json:"cluster,omitempty"`
	// Tenant is the tenant the job is accounted to for quota and
	// weighted-fair scheduling; the server fills it from the
	// X-SIDR-Tenant header, and empty means DefaultTenantName.
	Tenant string `json:"tenant,omitempty"`
}

// SkewStats is the per-job keyblock load-imbalance summary, computed
// from the plan's expected per-keyblock loads (sampled estimates for
// join plans, geometric expected counts otherwise). It is the wire form
// of skew.Summary.
type SkewStats struct {
	Keyblocks   int     `json:"keyblocks"`
	Total       int64   `json:"total"`
	Starved     int     `json:"starved"`
	Max         int64   `json:"max"`
	Min         int64   `json:"min"`
	MaxOverMean float64 `json:"max_over_mean"`
	CV          float64 `json:"cv"`
	Gini        float64 `json:"gini"`
}

// Snapshot is a point-in-time view of a job for status responses.
type Snapshot struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Dataset  string `json:"dataset"`
	Dataset2 string `json:"dataset2,omitempty"`
	Query    string `json:"query"`
	Engine   string `json:"engine"`
	Reducers int    `json:"reducers"`
	Cluster  bool   `json:"cluster,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Partials int    `json:"partials"`
	PlanHit  bool   `json:"plan_cache_hit"`
	// Skew summarises the plan's per-keyblock load balance; set once the
	// job has executed (absent for cache hits and collapse followers).
	Skew *SkewStats `json:"skew,omitempty"`
	// ResultHit marks a job served entirely from the versioned result
	// cache: it was terminal at submission and never executed.
	ResultHit bool `json:"result_cache_hit,omitempty"`
	// CollapsedInto names the in-flight job this submission attached to
	// as a collapse subscriber (empty for jobs that executed).
	CollapsedInto string    `json:"collapsed_into,omitempty"`
	Error         string    `json:"error,omitempty"`
	Created       time.Time `json:"created"`
	Started       time.Time `json:"started"`
	Finished      time.Time `json:"finished"`
}

// Job is one managed query execution. All exported methods are safe for
// concurrent use.
//
// A job is usually a leader: it owns an execution and its partial log is
// the bounded replay buffer late stream subscribers read from. A job can
// instead be a collapse follower — an identical concurrent submission
// that attached to a running leader: it never executes, its partial log
// mirrors the leader's (already-committed partials replayed at attach,
// live ones forwarded as they commit), and it terminalises when the
// leader does. Cancelling a follower detaches only that subscriber; the
// shared execution and its other subscribers are unaffected.
type Job struct {
	ID  string
	Req Request

	ctx    context.Context
	cancel context.CancelFunc

	// cacheKey is the fast-path identity {dataset version, canonical
	// query, engine, reducers, ...} the manager collapses and caches on
	// (empty when the dataset provider is unversioned). notify fires
	// exactly once when the job turns terminal, with no job lock held —
	// the manager uses it for tenant in-flight and collapse-map cleanup.
	cacheKey   string
	follower   bool
	notify     func()
	notifyOnce sync.Once

	mu            sync.Mutex
	cond          *sync.Cond
	state         State
	err           error
	result        *sidr.Result
	partials      []sidr.PartialResult
	followers     []*Job
	planHit       bool
	resultHit     bool
	skewStats     *SkewStats
	collapsedInto string
	created       time.Time
	started       time.Time
	finished      time.Time
}

func newJob(id string, req Request) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{ID: id, Req: req, ctx: ctx, cancel: cancel, created: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil unless Failed or Cancelled).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the completed result, or nil before Done.
func (j *Job) Result() *sidr.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Snapshot captures the job's current status.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:            j.ID,
		State:         j.state.String(),
		Dataset:       j.Req.Dataset,
		Dataset2:      j.Req.Dataset2,
		Query:         j.Req.Query,
		Engine:        j.Req.Engine,
		Reducers:      j.Req.Reducers,
		Cluster:       j.Req.Cluster,
		Tenant:        j.Req.Tenant,
		Partials:      len(j.partials),
		PlanHit:       j.planHit,
		ResultHit:     j.resultHit,
		Skew:          j.skewStats,
		CollapsedInto: j.collapsedInto,
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Cancel moves the job to Cancelled if it is still queued and signals
// the run context; a running job transitions once the engine unwinds.
// Cancelling a collapse follower detaches only that subscriber — the
// leader's execution and its other subscribers keep going.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == Queued || (j.follower && !j.state.Terminal()) {
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		j.cond.Broadcast()
	}
	j.mu.Unlock()
	j.cancel()
	j.notifyTerminal()
}

// notifyTerminal fires the manager's cleanup hook exactly once, with no
// job lock held, but only once the job is actually terminal.
func (j *Job) notifyTerminal() {
	if !j.State().Terminal() {
		return
	}
	j.notifyOnce.Do(func() {
		if j.notify != nil {
			j.notify()
		}
	})
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// returning the state observed.
func (j *Job) Wait(ctx context.Context) (State, error) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	if err := ctx.Err(); err != nil && !j.state.Terminal() {
		return j.state, err
	}
	return j.state, nil
}

// Stream calls fn for every partial result — replaying already committed
// ones first, then delivering new ones as keyblocks commit — and returns
// the job's terminal state once the job finishes and the log is drained.
// The error reports stream transport problems only: non-nil when fn
// failed or ctx was done. A drained Failed or Cancelled job returns a
// nil error; the job's own terminal error stays on Err, so callers can
// still emit a terminal event after a clean drain.
func (j *Job) Stream(ctx context.Context, fn func(sidr.PartialResult) error) (State, error) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	i := 0
	for {
		j.mu.Lock()
		for i >= len(j.partials) && !j.state.Terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		if err := ctx.Err(); err != nil {
			st := j.state
			j.mu.Unlock()
			return st, err
		}
		if i < len(j.partials) {
			pr := j.partials[i]
			i++
			j.mu.Unlock()
			if err := fn(pr); err != nil {
				return j.State(), err
			}
			continue
		}
		st := j.state
		j.mu.Unlock()
		return st, nil
	}
}

// addPartial appends one committed keyblock, wakes subscribers, and
// forwards the partial to every attached collapse follower. The lock
// order is strictly leader→follower (followers never lock their leader),
// and forwarding happens under the leader's lock so a follower can never
// observe the terminal state before its last partial — every subscriber
// sees the complete partial sequence.
func (j *Job) addPartial(pr sidr.PartialResult) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.partials = append(j.partials, pr)
	for _, f := range j.followers {
		f.addPartial(pr)
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// attach registers f as a collapse follower: already-committed partials
// are replayed into f's log, then live ones arrive via addPartial and
// the leader's terminal state propagates on finish. It reports false
// when the leader is already terminal (the caller should execute or
// serve from the result cache instead). Callers must not attach a job to
// itself or build follower chains; the manager only attaches fresh jobs
// to in-flight leaders.
func (j *Job) attach(f *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	f.mu.Lock()
	f.follower = true
	f.collapsedInto = j.ID
	f.state = Running // being served by the leader's execution
	f.started = time.Now()
	f.partials = append(f.partials, j.partials...)
	f.cond.Broadcast()
	f.mu.Unlock()
	j.followers = append(j.followers, f)
	return true
}

// start transitions Queued→Running; false means the job was already
// cancelled and must not run.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = time.Now()
	j.cond.Broadcast()
	return true
}

// finish records the terminal state, wakes all waiters, and propagates
// the outcome to attached collapse followers. Followers terminalise
// under the leader's lock — after the last forwarded partial, never
// before it — while the manager-facing notify hooks run afterwards with
// no lock held.
func (j *Job) finish(state State, res *sidr.Result, err error) {
	j.mu.Lock()
	var fws []*Job
	if !j.state.Terminal() {
		j.state = state
		j.result = res
		j.err = err
		j.finished = time.Now()
		fws = j.followers
		j.followers = nil
		for _, f := range fws {
			f.deliverTerminal(state, res, err)
		}
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	j.notifyTerminal()
	for _, f := range fws {
		f.notifyTerminal()
	}
}

// deliverTerminal is a follower's share of its leader's finish: record
// the state and wake waiters. A follower its subscriber already
// cancelled stays cancelled. The manager notify hook is NOT fired here —
// the leader fires it lock-free after unwinding.
func (j *Job) deliverTerminal(state State, res *sidr.Result, err error) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = state
		j.result = res
		j.err = err
		j.finished = time.Now()
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel()
}

func (j *Job) setPlanHit(hit bool) {
	j.mu.Lock()
	j.planHit = hit
	j.mu.Unlock()
}

func (j *Job) setSkew(s *SkewStats) {
	j.mu.Lock()
	j.skewStats = s
	j.mu.Unlock()
}
